#!/usr/bin/env bash
# End-to-end smoke for model serving with continuous batching, run in CI:
# boots pimserve with the DS2-small LSTM stack resident on a 2-shard
# pool, checks the sequence-path HTTP taxonomy and the /v1/models
# inventory, then pushes mixed-length sequences through the continuous
# batcher with full client-side oracle verification — every step of
# every sequence must be bit-identical to the host session, zero wrong
# answers. Complements the in-process tests in internal/serve and
# internal/nn by exercising the actual binaries over TCP.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -o "$tmp/pimserve" ./cmd/pimserve
go build -o "$tmp/pimload" ./cmd/pimload

"$tmp/pimserve" -addr 127.0.0.1:0 -shards 2 -channels 4 \
    -seq-models ds2-small -max-seqlen 32 -timeout 60s \
    >"$tmp/stdout" 2>"$tmp/stderr" &
pid=$!

for _ in $(seq 100); do
    grep -q '^listening on ' "$tmp/stdout" 2>/dev/null && break
    sleep 0.1
done
addr=$(sed -n 's/^listening on //p' "$tmp/stdout")
[ -n "$addr" ] || { echo "pimserve never came up"; cat "$tmp/stderr"; exit 1; }
base="http://$addr"
echo "pimserve up at $base"

code() { curl -s -o "$tmp/body" -w '%{http_code}' "$@"; }
expect() { # expect <want-code> <name> <curl args...>
    want=$1; name=$2; shift 2
    got=$(code "$@")
    if [ "$got" != "$want" ]; then
        echo "FAIL: $name: got $got, want $want"; cat "$tmp/body"; echo; exit 1
    fi
    echo "ok: $name -> $got"
}

# /v1/models must list the resident stack with its placement split.
expect 200 "models listing" "$base/v1/models"
grep -q '"name":"ds2-small"' "$tmp/body" || { echo "FAIL: ds2-small not listed"; exit 1; }
grep -q '"type":"sequence"' "$tmp/body" || { echo "FAIL: no sequence entry"; exit 1; }
grep -q '"layers":6' "$tmp/body" || { echo "FAIL: wrong layer count"; exit 1; }

# Sequence-path taxonomy over real HTTP.
expect 404 "unknown seq model" -X POST -d '{"model":"nope","frames":[[1]]}' "$base/v1/infer"
expect 400 "frames to gemv model" -X POST -d '{"model":"micro-256x256","frames":[[1]]}' "$base/v1/infer"
expect 400 "input to seq model" -X POST -d '{"model":"ds2-small","input":[1]}' "$base/v1/infer"
expect 400 "empty frames" -X POST -d '{"model":"ds2-small","frames":[]}' "$base/v1/infer"
python3 -c 'print("{\"model\":\"ds2-small\",\"frames\":[%s]}" % ",".join(["[0.5]"]*64))' >"$tmp/long.json"
expect 400 "over max-seqlen" -X POST --data-binary "@$tmp/long.json" "$base/v1/infer"

# Mixed-length sequences through the continuous batcher, every step
# verified against the host oracle. Zero wrong answers or the smoke fails
# (pimload exits nonzero on any bad output).
"$tmp/pimload" -url "$base" -seq -model ds2-small \
    -seqs 16 -conc 6 -seqlen-dist uniform:4:12 | tee "$tmp/seq"
grep -q ' 0 bad outputs, 0 failures' "$tmp/seq" || { echo "FAIL: sequence run lost or corrupted answers"; exit 1; }
echo "ok: mixed-length sequences bit-exact against the host oracle"

# Sequence metrics must be live.
curl -s "$base/metrics" >"$tmp/body"
for m in serve_seq_admitted_total serve_seq_completed_total serve_seq_steps_total; do
    grep -q "$m" "$tmp/body" || { echo "FAIL: /metrics missing $m"; exit 1; }
done

kill -TERM "$pid"
wait "$pid" || { echo "FAIL: pimserve exited nonzero on SIGTERM"; cat "$tmp/stderr"; exit 1; }
unset pid
grep -q 'drained cleanly' "$tmp/stderr" || { echo "FAIL: no clean drain"; cat "$tmp/stderr"; exit 1; }
echo "ok: graceful shutdown drained cleanly"
echo "model smoke passed"

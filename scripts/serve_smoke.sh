#!/usr/bin/env bash
# End-to-end smoke for the serving stack, run in CI: boots pimserve on a
# random port, checks the response taxonomy (200/400/429) over real HTTP,
# pushes ~100 concurrent verified requests through the dynamic batcher,
# and asserts a clean graceful shutdown. Complements the in-process tests
# in internal/serve by exercising the actual binaries over TCP.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -o "$tmp/pimserve" ./cmd/pimserve
go build -o "$tmp/pimload" ./cmd/pimload
go build -o "$tmp/pimtop" ./cmd/pimtop

"$tmp/pimserve" -addr 127.0.0.1:0 -shards 1 -channels 2 -queue-depth 32 \
    >"$tmp/stdout" 2>"$tmp/stderr" &
pid=$!

for _ in $(seq 100); do
    grep -q '^listening on ' "$tmp/stdout" 2>/dev/null && break
    sleep 0.1
done
addr=$(sed -n 's/^listening on //p' "$tmp/stdout")
[ -n "$addr" ] || { echo "pimserve never came up"; cat "$tmp/stderr"; exit 1; }
base="http://$addr"
echo "pimserve up at $base"

code() { curl -s -o "$tmp/body" -w '%{http_code}' "$@"; }
expect() { # expect <want-code> <name> <curl args...>
    want=$1; name=$2; shift 2
    got=$(code "$@")
    if [ "$got" != "$want" ]; then
        echo "FAIL: $name: got $got, want $want"; cat "$tmp/body"; echo; exit 1
    fi
    echo "ok: $name -> $got"
}

expect 200 "healthz" "$base/healthz"
expect 400 "malformed json" -X POST -d '{"model": "tiny", "input": [' "$base/v1/infer"
expect 404 "unknown model" -X POST -d '{"model":"nope","input":[1,2]}' "$base/v1/infer"
expect 200 "models listing" "$base/v1/models"
grep -q '"type":"gemv"' "$tmp/body" || { echo "FAIL: /v1/models missing gemv entries"; exit 1; }
expect 400 "wrong input shape" -X POST -d '{"model":"micro-256x256","input":[1,2,3]}' "$base/v1/infer"
python3 -c 'print("{\"model\":\"micro-256x256\",\"input\":[%s]}" % ",".join(["0.125"]*3000000))' >"$tmp/huge.json"
expect 400 "oversized body" -X POST --data-binary "@$tmp/huge.json" "$base/v1/infer"
expect 405 "GET infer" "$base/v1/infer"
expect 200 "metrics" "$base/metrics"
grep -q serve_batch_size "$tmp/body" || { echo "FAIL: /metrics missing serve_batch_size"; exit 1; }

# The ops surface is always on: /debug/ops must be well-formed JSON with
# the windowed view and shard health (no slo section without -slo).
expect 200 "debug ops" "$base/debug/ops"
python3 - "$tmp/body" <<'EOF'
import json, sys
ops = json.load(open(sys.argv[1]))
assert "window" in ops and "wall_p99_us" in ops["window"], "ops missing window section"
assert ops["shards_healthy"] == ops["shards"] == 1, f"ops shard health wrong: {ops}"
assert "slo" not in ops, "slo section present without -slo"
EOF
echo "ok: /debug/ops well-formed"
expect 404 "debug slow without slo" "$base/debug/slow"

# pimtop -once renders a frame from the live endpoints and exits zero.
"$tmp/pimtop" -url "$base" -once > "$tmp/frame"
grep -q 'shards 1/1 healthy' "$tmp/frame" || {
    echo "FAIL: pimtop frame missing shard health"; cat "$tmp/frame"; exit 1; }
grep -q 'totals' "$tmp/frame" || {
    echo "FAIL: pimtop frame missing totals"; cat "$tmp/frame"; exit 1; }
echo "ok: pimtop -once renders"

# ~100 concurrent verified requests through the dynamic batcher.
"$tmp/pimload" -url "$base" -model micro-256x256 -requests 104 -conc 13 -bench | tee "$tmp/closed"
grep -q ' 0 rejected 0 timeouts' "$tmp/closed" || { echo "FAIL: closed loop lost requests"; exit 1; }

# Open-loop blast at far beyond service rate: the 32-deep queue must shed
# load as 429s while every accepted request still completes.
"$tmp/pimload" -url "$base" -model micro-256x256 -mode open -rate 4000 -requests 200 -bench | tee "$tmp/open"
if grep -q ' 0 rejected' "$tmp/open"; then
    echo "FAIL: overload produced no 429 backpressure"; exit 1
fi
echo "ok: backpressure sheds load with 429"

kill -TERM "$pid"
wait "$pid" || { echo "FAIL: pimserve exited nonzero on SIGTERM"; cat "$tmp/stderr"; exit 1; }
unset pid
grep -q 'drained cleanly' "$tmp/stderr" || { echo "FAIL: no clean drain"; cat "$tmp/stderr"; exit 1; }
echo "ok: graceful shutdown drained cleanly"
echo "serve smoke passed"

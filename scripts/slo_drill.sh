#!/usr/bin/env bash
# Live half of `make slo-drill`: boots the real pimserve binary with
# objectives and the hedge controller armed, pushes verified load
# through it, then captures GET /debug/ops and asserts the document is
# well-formed — windowed quantiles populated, every SLO series present
# and evaluated. The snapshot is written to $1 (default slo_ops.json);
# CI uploads it so every run leaves an inspectable ops document behind.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-slo_ops.json}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -o "$tmp/pimserve" ./cmd/pimserve
go build -o "$tmp/pimload" ./cmd/pimload

"$tmp/pimserve" -addr 127.0.0.1:0 -shards 2 -channels 2 \
    -slo 'p99=500ms,avail=0.99' -hedge-delay 8ms -slo-hedge \
    -slo-hedge-min 1ms -slo-hedge-max 64ms \
    >"$tmp/stdout" 2>"$tmp/stderr" &
pid=$!

for _ in $(seq 100); do
    grep -q '^listening on ' "$tmp/stdout" 2>/dev/null && break
    sleep 0.1
done
addr=$(sed -n 's/^listening on //p' "$tmp/stdout")
[ -n "$addr" ] || { echo "pimserve never came up"; cat "$tmp/stderr"; exit 1; }
base="http://$addr"
echo "pimserve up at $base (slo armed)"

grep -q 'slo objective armed' "$tmp/stderr" || {
    echo "FAIL: boot log missing 'slo objective armed'"; cat "$tmp/stderr"; exit 1; }
grep -q 'slo hedge controller armed' "$tmp/stderr" || {
    echo "FAIL: boot log missing 'slo hedge controller armed'"; cat "$tmp/stderr"; exit 1; }

# Verified load with the generous objective gated in-process: the run
# itself fails on an SLO violation, and its verdict line is pinned here.
"$tmp/pimload" -url "$base" -model micro-256x256 -requests 64 -conc 8 \
    -slo 'p99=500ms,avail=0.99' -bench | tee "$tmp/load"
grep -q '^SLO verdict=pass ' "$tmp/load" || {
    echo "FAIL: pimload printed no passing SLO verdict"; exit 1; }

# Give the 2s evaluation loop one tick over the traffic, then snapshot.
sleep 2.5
curl -sf "$base/debug/ops" > "$out"

python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    ops = json.load(f)
w = ops["window"]
assert w["admitted"] >= 64, f"window admitted {w['admitted']}, want >= 64"
assert w["requests"] >= 64, f"window requests {w['requests']}, want >= 64"
assert w["wall_p99_us"] > 0, "windowed p99 not populated"
assert ops["shards_healthy"] == ops["shards"] == 2, "shard health wrong"
slo = ops["slo"]
assert slo["series"], "no SLO series after traffic"
s = slo["series"][0]
assert s["state"] == "ok", f"series state {s['state']}, want ok under light load"
assert s["window_total"] >= 64, f"slo window total {s['window_total']}"
assert slo["hedge_delay_us"], "no live hedge targets with -slo-hedge armed"
for model, us in slo["hedge_delay_us"].items():
    assert 1000 <= us <= 64000, f"hedge target {model}={us}us outside [min,max]"
print("ops document well-formed:",
      f"p99={w['wall_p99_us']:.0f}us state={s['state']}",
      f"hedge={slo['hedge_delay_us']}")
EOF

kill -TERM "$pid"
wait "$pid" || { echo "FAIL: pimserve exited nonzero"; cat "$tmp/stderr"; exit 1; }
unset pid
echo "slo drill passed; ops snapshot in $out"

#!/usr/bin/env bash
# End-to-end smoke for the observability stack, run in CI: exports a
# simulator command timeline with pimsim -timeline, boots pimserve with
# the flight recorder armed, drives traced traffic through it, pulls
# /debug/trace live, and validates every produced artifact against the
# Chrome trace-event schema with tools/tracecheck. Artifacts land in
# $OUT_DIR (default: a temp dir) so CI can upload them.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
out="${OUT_DIR:-$tmp/artifacts}"
mkdir -p "$out"
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -o "$tmp/pimsim" ./cmd/pimsim
go build -o "$tmp/pimserve" ./cmd/pimserve
go build -o "$tmp/pimload" ./cmd/pimload
go build -o "$tmp/tracecheck" ./tools/tracecheck

# --- Simulator timeline: a functional GEMV's command occupancy.
"$tmp/pimsim" -kernel gemv -m 256 -k 512 -functional \
    -timeline "$out/timeline.json" | tee "$tmp/simout"
grep -q 'verify:   PASS' "$tmp/simout" || { echo "FAIL: traced GEMV did not verify"; exit 1; }
grep -q '^timeline: ' "$tmp/simout" || { echo "FAIL: pimsim reported no timeline"; exit 1; }
# A 256x512 GEMV issues thousands of commands; demand a real timeline,
# not an empty envelope.
"$tmp/tracecheck" -min-events 1000 "$out/timeline.json"

# --- Traced serving: boot with the flight recorder armed.
"$tmp/pimserve" -addr 127.0.0.1:0 -shards 1 -channels 2 \
    -trace -trace-dir "$out" -slow-request 1ns \
    >"$tmp/stdout" 2>"$tmp/stderr" &
pid=$!
for _ in $(seq 100); do
    grep -q '^listening on ' "$tmp/stdout" 2>/dev/null && break
    sleep 0.1
done
addr=$(sed -n 's/^listening on //p' "$tmp/stdout")
[ -n "$addr" ] || { echo "FAIL: pimserve never came up"; cat "$tmp/stderr"; exit 1; }
base="http://$addr"
echo "traced pimserve up at $base"

"$tmp/pimload" -url "$base" -model micro-256x256 -requests 8 -conc 2 -bench >"$tmp/load"
grep -q ' 0 rejected 0 timeouts' "$tmp/load" || { echo "FAIL: traced load lost requests"; cat "$tmp/load"; exit 1; }

# Every response must carry a request ID.
rid=$(curl -s -D - -o /dev/null -X POST \
    -d '{"model":"micro-256x256","input":['"$(python3 -c 'print(",".join(["0.125"]*256))')"']}' \
    "$base/v1/infer" | sed -n 's/^X-Request-Id: //Ip' | tr -d '\r')
[ -n "$rid" ] || { echo "FAIL: response missing X-Request-ID"; exit 1; }
echo "ok: X-Request-ID $rid"

# The live flight recorder over HTTP.
curl -sf "$base/debug/trace" >"$out/debug-trace.json"
"$tmp/tracecheck" -min-events 10 "$out/debug-trace.json"

# Access logs are structured JSON with request IDs.
grep -q '"msg":"infer"' "$tmp/stderr" || { echo "FAIL: no structured access log"; cat "$tmp/stderr"; exit 1; }
grep -q "\"req\":\"$rid\"" "$tmp/stderr" || { echo "FAIL: access log missing request $rid"; exit 1; }
echo "ok: structured access logs carry request IDs"

# Graceful shutdown dumps the recorder to -trace-dir.
kill -TERM "$pid"
wait "$pid" || { echo "FAIL: pimserve exited nonzero"; cat "$tmp/stderr"; exit 1; }
unset pid
[ -f "$out/spans.json" ] || { echo "FAIL: no spans.json dumped on shutdown"; exit 1; }
"$tmp/tracecheck" -min-events 10 "$out/spans.json"

# The 1ns slow-request threshold must have dumped at least one tree.
slow=$(ls "$out"/slow-*.json 2>/dev/null | head -1)
[ -n "$slow" ] || { echo "FAIL: no slow-request dump at a 1ns threshold"; exit 1; }
"$tmp/tracecheck" "$out"/slow-*.json

echo "trace artifacts in $out:"
ls -l "$out"
echo "trace smoke passed"

package pimsim

// Engine determinism goldens. The parallel per-pCH engine may only change
// wall-clock time, never simulated behaviour: each channel is a closed
// synchronous system, so a run under engine.Parallel must be bit-for-bit
// identical to engine.Serial at any GOMAXPROCS — outputs, cycle counts,
// device stats, fault-injection decisions, and every event the
// observability timeline records. These tests run the same kernel through
// both engines across GOMAXPROCS 1/2/N with tracing and fault injection
// armed, and compare everything. Run them under -race to also prove the
// parallel engine is data-race free.

import (
	"hash/fnv"
	goruntime "runtime"
	"testing"

	"pimsim/internal/blas"
	"pimsim/internal/engine"
	"pimsim/internal/fault"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/obs"
	"pimsim/internal/runtime"
)

// engineRun is everything observable from one kernel run. All fields are
// comparable, so two runs match iff the structs are ==.
type engineRun struct {
	outHash   uint64
	cycles    int64
	triggers  int64
	fences    int64
	stats     hbm.Stats
	flips     int64
	corrected int64
	spikes    int64
	tlHash    uint64
	tlEvents  int
}

// timelineHash folds every recorded event of every channel, in channel
// order, into one digest — the bit-for-bit identity of the trace.
func timelineHash(tl *obs.Timeline, channels int) uint64 {
	h := fnv.New64a()
	w64 := func(v uint64) {
		h.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
			byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56)})
	}
	for ch := 0; ch < channels; ch++ {
		c := tl.Channel(ch)
		w64(uint64(ch))
		for _, e := range c.Cmds() {
			w64(uint64(e.Cycle))
			h.Write([]byte(e.Kind))
			w64(uint64(e.BG)<<48 | uint64(e.Bank)<<32 | uint64(e.Row))
			w64(uint64(e.Col))
			if e.Broadcast {
				h.Write([]byte{1})
			}
		}
		for _, e := range c.Modes() {
			w64(uint64(e.Cycle))
			h.Write([]byte(e.Mode))
		}
		for _, e := range c.PIMs() {
			w64(uint64(e.Cycle))
			w64(uint64(e.Instr))
		}
	}
	return h.Sum64()
}

// runEngineGemv executes one fully instrumented GEMV under the named
// engine at the given GOMAXPROCS. functional toggles the bit-exact
// datapath (with ECC + seeded bit flips) versus the timing-only fast
// path (with seeded command-latency spikes via the Delayer hook).
func runEngineGemv(t *testing.T, engineName string, procs int, functional bool) engineRun {
	t.Helper()
	defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(procs))

	cfg := hbm.PIMHBMConfig(1200)
	cfg.PseudoChannels = 4
	cfg.Functional = functional
	cfg.ECC = functional
	dev := hbm.MustNewDevice(cfg)

	var inj *fault.Injector
	if functional {
		inj = fault.New(fault.Config{Seed: 7, FlipRate: 1e-3})
		dev.AttachFault(inj)
	} else {
		inj = fault.New(fault.Config{Seed: 11, SpikeEvery: 64, SpikeCycles: 9})
	}

	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	if !functional {
		for _, ch := range rt.Chans {
			ch.Delay = inj
		}
	}
	eng, err := engine.New(engineName, rt.NumChannels())
	if err != nil {
		t.Fatal(err)
	}
	rt.UseEngine(eng)
	defer rt.CloseEngine()

	tl := obs.FromHBM(cfg, rt.EffectiveChannels(), 0)
	rt.AttachTimeline(tl)

	const M, K = 256, 512
	var W, x fp16.Vector
	if functional {
		W = fp16.NewVector(M * K)
		x = fp16.NewVector(K)
		for i := range W {
			W[i] = fp16.FromFloat32(float32(i%13) * 0.1)
		}
		for i := range x {
			x[i] = fp16.FromFloat32(float32(i%7) * 0.2)
		}
	}
	y, ks, err := blas.PimGemv(rt, W, M, K, x)
	if err != nil {
		t.Fatal(err)
	}

	r := engineRun{
		cycles:   ks.Cycles,
		triggers: ks.Triggers,
		fences:   ks.Fences,
		stats:    dev.Stats(),
		flips:    inj.Counters().BitFlips,
		spikes:   inj.Counters().Spikes,
		tlHash:   timelineHash(tl, rt.EffectiveChannels()),
		tlEvents: tl.Events(),
	}
	if functional {
		h := fnv.New64a()
		for _, v := range y {
			h.Write([]byte{byte(v), byte(v >> 8)})
		}
		r.outHash = h.Sum64()
		r.corrected = dev.Stats().ECCCorrected
	}
	return r
}

// engineMatrix is the serial-oracle comparison: parallel at GOMAXPROCS
// 1, 2 and NumCPU must reproduce the serial run exactly.
func engineMatrix(t *testing.T, functional bool) {
	oracle := runEngineGemv(t, "serial", 1, functional)
	if oracle.tlEvents == 0 {
		t.Fatal("timeline recorded nothing — the tracing path is not armed")
	}
	if functional && oracle.flips == 0 {
		t.Fatal("fault injector flipped no bits — the injection path is not armed")
	}
	if !functional && oracle.spikes == 0 {
		t.Fatal("fault injector spiked no commands — the delay path is not armed")
	}
	for _, tc := range []struct {
		engine string
		procs  int
	}{
		{"serial", goruntime.NumCPU()},
		{"parallel", 1},
		{"parallel", 2},
		{"parallel", goruntime.NumCPU()},
	} {
		got := runEngineGemv(t, tc.engine, tc.procs, functional)
		if got != oracle {
			t.Errorf("%s@GOMAXPROCS=%d diverged from serial oracle:\n got  %+v\n want %+v",
				tc.engine, tc.procs, got, oracle)
		}
	}
}

// TestGoldenEngineDeterminismFunctional: bit-exact GEMV with ECC, seeded
// transient bit flips and full command tracing — serial vs parallel,
// GOMAXPROCS 1/2/N.
func TestGoldenEngineDeterminismFunctional(t *testing.T) {
	engineMatrix(t, true)
}

// TestGoldenEngineDeterminismTimingOnly: the event-driven fast path
// (lockstep executor engaged) with seeded command-latency spikes and
// full command tracing — serial vs parallel, GOMAXPROCS 1/2/N.
func TestGoldenEngineDeterminismTimingOnly(t *testing.T) {
	engineMatrix(t, false)
}

package pimsim

// Determinism goldens. The simulator is a model of a synchronous JEDEC
// device: given a configuration and a command stream, every cycle count,
// every stat, and (in functional mode) every output bit is fully
// determined. Performance work on the simulator must therefore be
// invisible in its outputs — these tests pin full runs against values
// captured from the pre-optimization implementation, so any change that
// alters a simulated cycle or a numeric result fails loudly instead of
// silently drifting the reproduced paper figures.

import (
	"hash/fnv"
	"testing"

	"pimsim/internal/blas"
	"pimsim/internal/fault"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/memctrl"
	"pimsim/internal/runtime"
)

// TestGoldenFunctionalGemv runs a bit-exact GEMV through the device model
// and checks the output vector hash, kernel timing, and the full command
// census against the recorded golden run.
func TestGoldenFunctionalGemv(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1200)
	cfg.PseudoChannels = 2
	cfg.Functional = true
	const M, K = 256, 512
	W := fp16.NewVector(M * K)
	x := fp16.NewVector(K)
	for i := range W {
		W[i] = fp16.FromFloat32(float32(i%13) * 0.1)
	}
	for i := range x {
		x[i] = fp16.FromFloat32(float32(i%7) * 0.2)
	}
	dev := hbm.MustNewDevice(cfg)
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	y, ks, err := blas.PimGemv(rt, W, M, K, x)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, v := range y {
		h.Write([]byte{byte(v), byte(v >> 8)})
	}
	if got, want := h.Sum64(), uint64(0xe8f7a69c9c990aad); got != want {
		t.Errorf("output vector hash = %#x, want %#x", got, want)
	}
	if ks.Cycles != 11486 || ks.Triggers != 2048 || ks.Fences != 256 {
		t.Errorf("kernel stats = cycles %d triggers %d fences %d, want 11486/2048/256",
			ks.Cycles, ks.Triggers, ks.Fences)
	}
	st := dev.Stats()
	golden := []struct {
		name string
		got  int64
		want int64
	}{
		{"PIMInstr", st.PIMInstr, 33808},
		{"PIMArith", st.PIMArith, 8192},
		{"BankReads", st.BankReads, 8192},
		{"BankWrites", st.BankWrites, 8192},
		{"ACT", st.ACT, 152},
		{"ABACT", st.ABACT, 24},
		{"ABRD", st.ABRD, 1024},
		{"ABWR", st.ABWR, 1058},
		{"RD", st.RD, 128},
		{"WR", st.WR, 8196},
		{"REF", st.REF, 4},
		{"OffChipBytes", st.OffChipBytes, 299136},
		{"ModeSwitches", st.ModeSwitches, 8},
		{"RegWrites", st.RegWrites, 272},
	}
	for _, g := range golden {
		if g.got != g.want {
			t.Errorf("device stat %s = %d, want %d", g.name, g.got, g.want)
		}
	}
}

// TestGoldenFaultInjectionReplay pins the fault layer itself: the same
// functional GEMV as TestGoldenFunctionalGemv, with on-die ECC enabled
// and a seeded transient-flip injector attached. Injection decisions are
// pure functions of (seed, address, readout sequence), so two runs must
// produce the identical fault pattern — and because every injected flip
// is a single-bit upset, ECC corrects all of them and the output hash
// and kernel cycle count stay exactly the clean golden values. Faults
// cost corrections, never correctness and never (readout corruption is
// post-array, pre-decode) simulated time.
func TestGoldenFaultInjectionReplay(t *testing.T) {
	run := func() (hash uint64, cycles, corrected, flips int64) {
		cfg := hbm.PIMHBMConfig(1200)
		cfg.PseudoChannels = 2
		cfg.Functional = true
		cfg.ECC = true
		const M, K = 256, 512
		W := fp16.NewVector(M * K)
		x := fp16.NewVector(K)
		for i := range W {
			W[i] = fp16.FromFloat32(float32(i%13) * 0.1)
		}
		for i := range x {
			x[i] = fp16.FromFloat32(float32(i%7) * 0.2)
		}
		dev := hbm.MustNewDevice(cfg)
		inj := fault.New(fault.Config{Seed: 7, FlipRate: 1e-3})
		dev.AttachFault(inj)
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			t.Fatal(err)
		}
		y, ks, err := blas.PimGemv(rt, W, M, K, x)
		if err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		for _, v := range y {
			h.Write([]byte{byte(v), byte(v >> 8)})
		}
		return h.Sum64(), ks.Cycles, dev.Stats().ECCCorrected, inj.Counters().BitFlips
	}

	hash, cycles, corrected, flips := run()
	if want := uint64(0xe8f7a69c9c990aad); hash != want {
		t.Errorf("output hash under correctable faults = %#x, want the clean golden %#x", hash, want)
	}
	if cycles != 11486 {
		t.Errorf("kernel cycles under faults = %d, want the clean golden 11486", cycles)
	}
	if flips == 0 {
		t.Error("injector flipped no bits — flip rate 1e-3 over this run cannot miss")
	}
	if corrected != flips {
		t.Errorf("ECC corrected %d words but the injector flipped %d — every single-bit upset must be corrected", corrected, flips)
	}

	hash2, cycles2, corrected2, flips2 := run()
	if hash2 != hash || cycles2 != cycles || corrected2 != corrected || flips2 != flips {
		t.Errorf("replay diverged: (%#x, %d, %d, %d) then (%#x, %d, %d, %d)",
			hash, cycles, corrected, flips, hash2, cycles2, corrected2, flips2)
	}
}

// TestGoldenTimingOnlyGemv pins the event-driven fast path used by the
// experiment sweeps: a large timing-only GEMV with single-channel
// simulation plus stat extrapolation.
func TestGoldenTimingOnlyGemv(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1200)
	cfg.Functional = false
	dev := hbm.MustNewDevice(cfg)
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	rt.SimChannels = 1
	_, ks, err := blas.PimGemv(rt, nil, 4096, 8192, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Cycles != 349267 || ks.Triggers != 32768 || ks.Fences != 4096 {
		t.Errorf("kernel stats = cycles %d triggers %d fences %d, want 349267/32768/4096",
			ks.Cycles, ks.Triggers, ks.Fences)
	}
	st := dev.Stats()
	if st.PIMInstr != 540800 || st.ABACT != 334 || st.ABRD != 16384 || st.ABWR != 16418 || st.REF != 74 {
		t.Errorf("device stats = PIMInstr %d ABACT %d ABRD %d ABWR %d REF %d, want 540800/334/16384/16418/74",
			st.PIMInstr, st.ABACT, st.ABRD, st.ABWR, st.REF)
	}
}

// TestGoldenSchedulerReplay drives the FR-FCFS scheduler with a fixed
// splitmix64 pseudo-random access stream and pins the end cycle plus
// every scheduling decision counter (hits, misses, reorders, speculative
// activates, refreshes).
func TestGoldenSchedulerReplay(t *testing.T) {
	cfg := hbm.HBM2Config(1200)
	cfg.Functional = false
	dev := hbm.MustNewDevice(cfg)
	ch := memctrl.NewChannel(dev.PCH(0), cfg)
	s := memctrl.NewScheduler(ch, cfg)
	am := memctrl.NewAddrMap(16, cfg.BankGroups, cfg.BanksPerGroup,
		cfg.Rows, cfg.ColumnsPerRow(), cfg.AccessBytes)
	var state uint64
	next := func() uint64 { // splitmix64: avalanched, reproducible
		state += 0x9E3779B97F4A7C15
		z := state
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		return z ^ z>>31
	}
	var end int64
	for i := 0; i < 4096; i++ {
		addr := (next() % am.Capacity()) &^ 31
		loc, err := am.Decode(addr)
		if err != nil {
			t.Fatal(err)
		}
		loc.Channel = 0
		s.Enqueue(next()%4 == 0, loc, nil)
		if i%64 == 63 {
			e, err := s.Drain()
			if err != nil {
				t.Fatal(err)
			}
			end = e
		}
	}
	e, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if e > end {
		end = e
	}
	if end != 115138 {
		t.Errorf("end cycle = %d, want 115138", end)
	}
	golden := []struct {
		name string
		got  int64
		want int64
	}{
		{"completed", s.Completed(), 4096},
		{"rowHits", s.RowHits(), 4029},
		{"rowMisses", s.RowMisses(), 66},
		{"rowOpens", s.RowOpens(), 1},
		{"reordered", s.Reordered(), 206},
		{"aheadOpens", s.AheadOpens(), 4027},
		{"aheadCloses", s.AheadCloses(), 4012},
		{"refreshes", ch.Refreshes(), 8},
	}
	for _, g := range golden {
		if g.got != g.want {
			t.Errorf("scheduler stat %s = %d, want %d", g.name, g.got, g.want)
		}
	}
}

package fp16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripAllValues(t *testing.T) {
	// Every binary16 bit pattern except NaNs must survive a round trip
	// through float32 unchanged.
	for i := 0; i <= 0xFFFF; i++ {
		h := F16(i)
		if h.IsNaN() {
			continue
		}
		got := FromFloat32(h.Float32())
		if got != h {
			t.Fatalf("round trip 0x%04x -> %v -> 0x%04x", i, h.Float32(), uint16(got))
		}
	}
}

func TestNaNRoundTrip(t *testing.T) {
	for _, h := range []F16{NaN, 0x7C01, 0xFE00, 0xFFFF} {
		if !h.IsNaN() {
			t.Fatalf("0x%04x should be NaN", uint16(h))
		}
		f := h.Float32()
		if f == f {
			t.Fatalf("0x%04x.Float32() = %v, want NaN", uint16(h), f)
		}
		if !FromFloat32(f).IsNaN() {
			t.Fatalf("FromFloat32(NaN) not NaN")
		}
	}
}

// nearestRef finds the correctly rounded binary16 for f by brute force over
// all finite encodings, breaking ties toward the even significand.
func nearestRef(f float32) F16 {
	if math.IsNaN(float64(f)) {
		return NaN
	}
	best := F16(0)
	bestDiff := math.Inf(1)
	for i := 0; i <= 0xFFFF; i++ {
		h := F16(i)
		if h.IsNaN() || h.IsInf(0) {
			continue
		}
		d := math.Abs(float64(f) - h.Float64())
		switch {
		case d < bestDiff:
			best, bestDiff = h, d
		case d == bestDiff:
			// ties-to-even on the significand (lower magnitude encoding is
			// even iff its last bit is 0)
			if best&1 == 1 && h&1 == 0 {
				best = h
			}
		}
	}
	// Values at or beyond the halfway point past MaxVal round to infinity:
	// the tie candidate 65536 has an even significand, so RNE rounds up.
	limit := MaxVal.Float64() + (MaxVal.Float64()-F16(0x7BFE).Float64())/2
	if float64(f) >= limit {
		return PosInf
	}
	if float64(f) <= -limit {
		return NegInf
	}
	if bestDiff == math.Inf(1) {
		if f > 0 {
			return PosInf
		}
		return NegInf
	}
	// Preserve the sign of zero.
	if best.IsZero() && math.Signbit(float64(f)) {
		return NegZero
	}
	return best
}

func TestFromFloat32MatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(f float32) {
		t.Helper()
		want := nearestRef(f)
		got := FromFloat32(f)
		if got != want {
			t.Fatalf("FromFloat32(%v) = 0x%04x (%v), want 0x%04x (%v)",
				f, uint16(got), got, uint16(want), want)
		}
	}
	// Targeted edge values.
	for _, f := range []float32{
		0, float32(math.Copysign(0, -1)), 1, -1, 65504, 65505, 65519, 65520, 65536,
		-65520, 5.96e-8, 2.98e-8, 2.9802322e-8, 6.1e-5, 6.097e-5,
		1.0009765625, 1.0004883, 0.333333333, 1e-30, -1e-30, 1e30,
	} {
		check(f)
	}
	// Random halves perturbed slightly (stresses rounding boundaries).
	for i := 0; i < 400; i++ {
		h := F16(rng.Intn(0x7C00)) // random positive finite
		base := h.Float32()
		for _, eps := range []float32{0, 1e-5, -1e-5, 1e-4, -1e-4} {
			check(base * (1 + eps))
			check(-base * (1 + eps))
		}
	}
	// Random uniform floats across the binary16 range.
	for i := 0; i < 300; i++ {
		f := float32(rng.NormFloat64() * 100)
		check(f)
	}
}

func TestExactHalfwayTies(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 (even) and 1+2^-10; it must
	// round down to 1.0.
	f := float32(1) + float32(math.Ldexp(1, -11))
	if got := FromFloat32(f); got != One {
		t.Fatalf("halfway tie: got 0x%04x want 0x%04x", uint16(got), uint16(One))
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 (odd) and 1+2^-9 (even); it
	// must round up.
	f = float32(1) + 3*float32(math.Ldexp(1, -11))
	if got, want := FromFloat32(f), F16(0x3C02); got != want {
		t.Fatalf("halfway tie up: got 0x%04x want 0x%04x", uint16(got), uint16(want))
	}
}

func TestOverflowUnderflow(t *testing.T) {
	cases := []struct {
		in   float32
		want F16
	}{
		{math.MaxFloat32, PosInf},
		{-math.MaxFloat32, NegInf},
		{float32(math.Inf(1)), PosInf},
		{float32(math.Inf(-1)), NegInf},
		{1e-10, Zero},
		{-1e-10, NegZero},
		{float32(math.Ldexp(1, -24)), MinPos},          // smallest subnormal exactly
		{float32(math.Ldexp(1, -25)), Zero},            // halfway to zero: ties to even -> 0
		{float32(math.Ldexp(1, -25)) * 1.0001, MinPos}, // just above halfway
		{65504, MaxVal},
		{65519, MaxVal}, // just below the rounding boundary to Inf
		{65520, PosInf}, // exactly halfway; 0x7BFF is odd so ties round up to Inf
	}
	for _, c := range cases {
		if got := FromFloat32(c.in); got != c.want {
			t.Errorf("FromFloat32(%v) = 0x%04x, want 0x%04x", c.in, uint16(got), uint16(c.want))
		}
	}
}

func TestSubnormals(t *testing.T) {
	for i := 1; i <= 0x3FF; i++ {
		h := F16(i)
		if !h.IsSubnormal() {
			t.Fatalf("0x%04x should be subnormal", i)
		}
		want := float64(i) * math.Ldexp(1, -24)
		if got := h.Float64(); got != want {
			t.Fatalf("subnormal 0x%04x = %g, want %g", i, got, want)
		}
	}
	if F16(0x400).IsSubnormal() {
		t.Fatal("0x0400 is the smallest normal, not subnormal")
	}
}

func TestArithmeticBasics(t *testing.T) {
	two := FromFloat32(2)
	three := FromFloat32(3)
	if got := Add(two, three); got.Float32() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := Mul(two, three); got.Float32() != 6 {
		t.Errorf("2*3 = %v", got)
	}
	if got := Sub(two, three); got.Float32() != -1 {
		t.Errorf("2-3 = %v", got)
	}
	if got := Div(three, two); got.Float32() != 1.5 {
		t.Errorf("3/2 = %v", got)
	}
	if got := MAC(One, two, three); got.Float32() != 7 {
		t.Errorf("1+2*3 = %v", got)
	}
	if got := MAD(two, three, One); got.Float32() != 7 {
		t.Errorf("2*3+1 = %v", got)
	}
}

func TestAddCorrectlyRounded(t *testing.T) {
	// Exhaustive-ish check of correct rounding for Add over random pairs:
	// the exact sum is computed in float64 (exact for any two binary16
	// values) and rounded by the brute-force reference.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := F16(rng.Intn(0x7C00))
		b := F16(rng.Intn(0x7C00))
		if rng.Intn(2) == 0 {
			a ^= signMask
		}
		if rng.Intn(2) == 0 {
			b ^= signMask
		}
		exact := a.Float64() + b.Float64()
		want := nearestRef(float32(exact)) // exact fits float32: |sum| < 2^17
		got := Add(a, b)
		if !Eq(got, want) && got != want {
			t.Fatalf("Add(%v,%v) = %v (0x%04x), want %v (0x%04x)",
				a, b, got, uint16(got), want, uint16(want))
		}
	}
}

func TestSpecialArithmetic(t *testing.T) {
	if !Add(PosInf, NegInf).IsNaN() {
		t.Error("Inf + -Inf should be NaN")
	}
	if !Mul(Zero, PosInf).IsNaN() {
		t.Error("0 * Inf should be NaN")
	}
	if got := Add(PosInf, One); got != PosInf {
		t.Errorf("Inf + 1 = %v", got)
	}
	if got := Div(One, Zero); got != PosInf {
		t.Errorf("1/0 = %v", got)
	}
	if got := Div(One.Neg(), Zero); got != NegInf {
		t.Errorf("-1/0 = %v", got)
	}
	if !Div(Zero, Zero).IsNaN() {
		t.Error("0/0 should be NaN")
	}
}

func TestReLU(t *testing.T) {
	cases := []struct {
		in, want F16
	}{
		{FromFloat32(3.5), FromFloat32(3.5)},
		{FromFloat32(-3.5), Zero},
		{Zero, Zero},
		{NegZero, Zero}, // sign-bit mux: -0 -> +0
		{PosInf, PosInf},
		{NegInf, Zero},
		{NaN, NaN},             // positive NaN passes through the mux
		{NaN | signMask, Zero}, // negative NaN is squashed by the sign bit
	}
	for _, c := range cases {
		if got := ReLU(c.in); got != c.want {
			t.Errorf("ReLU(0x%04x) = 0x%04x, want 0x%04x", uint16(c.in), uint16(got), uint16(c.want))
		}
	}
}

func TestQuickProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	// Addition commutes for non-NaN values.
	comm := func(x, y uint16) bool {
		a, b := F16(x), F16(y)
		if a.IsNaN() || b.IsNaN() {
			return true
		}
		s1, s2 := Add(a, b), Add(b, a)
		return s1 == s2 || (s1.IsNaN() && s2.IsNaN())
	}
	if err := quick.Check(comm, cfg); err != nil {
		t.Error(err)
	}

	// Multiplication commutes.
	mcomm := func(x, y uint16) bool {
		a, b := F16(x), F16(y)
		if a.IsNaN() || b.IsNaN() {
			return true
		}
		p1, p2 := Mul(a, b), Mul(b, a)
		return p1 == p2 || (p1.IsNaN() && p2.IsNaN())
	}
	if err := quick.Check(mcomm, cfg); err != nil {
		t.Error(err)
	}

	// x + 0 == x for non-NaN x (except -0 + 0 == +0).
	ident := func(x uint16) bool {
		a := F16(x)
		if a.IsNaN() {
			return true
		}
		got := Add(a, Zero)
		if a == NegZero {
			return got == Zero
		}
		return got == a
	}
	if err := quick.Check(ident, cfg); err != nil {
		t.Error(err)
	}

	// Neg is an involution and Abs clears the sign.
	neg := func(x uint16) bool {
		a := F16(x)
		return a.Neg().Neg() == a && !a.Abs().Signbit()
	}
	if err := quick.Check(neg, cfg); err != nil {
		t.Error(err)
	}

	// ReLU is idempotent.
	relu := func(x uint16) bool {
		a := F16(x)
		return ReLU(ReLU(a)) == ReLU(a)
	}
	if err := quick.Check(relu, cfg); err != nil {
		t.Error(err)
	}

	// Conversion monotonicity: for finite a <= b, FromFloat32 preserves order.
	mono := func(x, y float32) bool {
		if math.IsNaN(float64(x)) || math.IsNaN(float64(y)) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		hx, hy := FromFloat32(x), FromFloat32(y)
		return !Less(hy, hx)
	}
	if err := quick.Check(mono, cfg); err != nil {
		t.Error(err)
	}
}

func TestPredicates(t *testing.T) {
	if !PosInf.IsInf(1) || !PosInf.IsInf(0) || PosInf.IsInf(-1) {
		t.Error("PosInf predicates wrong")
	}
	if !NegInf.IsInf(-1) || !NegInf.IsInf(0) || NegInf.IsInf(1) {
		t.Error("NegInf predicates wrong")
	}
	if One.IsInf(0) || One.IsNaN() || One.IsZero() {
		t.Error("One predicates wrong")
	}
	if !Zero.IsZero() || !NegZero.IsZero() {
		t.Error("zero predicates wrong")
	}
	if !Eq(Zero, NegZero) {
		t.Error("+0 must equal -0")
	}
	if Eq(NaN, NaN) {
		t.Error("NaN must not equal NaN")
	}
	if !Less(One.Neg(), One) || Less(One, One) {
		t.Error("Less wrong")
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		h    F16
		want string
	}{
		{One, "1"},
		{FromFloat32(-2.5), "-2.5"},
		{PosInf, "+Inf"},
		{NegInf, "-Inf"},
		{NaN, "NaN"},
	}
	for _, c := range cases {
		if got := c.h.String(); got != c.want {
			t.Errorf("String(0x%04x) = %q, want %q", uint16(c.h), got, c.want)
		}
	}
}

package fp16

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Vector is a slice of binary16 values, the unit of data the 256-bit PIM
// datapath moves and computes on (16 lanes x 16 bits).
type Vector []F16

// Lanes is the SIMD width of one PIM execution unit.
const Lanes = 16

// NewVector allocates a zeroed vector of n elements.
func NewVector(n int) Vector { return make(Vector, n) }

// FromFloat32s converts a float32 slice elementwise.
func FromFloat32s(fs []float32) Vector {
	v := make(Vector, len(fs))
	for i, f := range fs {
		v[i] = FromFloat32(f)
	}
	return v
}

// Float32s converts back to float32 elementwise.
func (v Vector) Float32s() []float32 {
	fs := make([]float32, len(v))
	for i, h := range v {
		fs[i] = h.Float32()
	}
	return fs
}

// AddVec computes dst[i] = a[i] + b[i] over the shortest common length and
// returns dst.
func AddVec(dst, a, b Vector) Vector {
	n := min(len(dst), min(len(a), len(b)))
	for i := 0; i < n; i++ {
		dst[i] = Add(a[i], b[i])
	}
	return dst
}

// MulVec computes dst[i] = a[i] * b[i].
func MulVec(dst, a, b Vector) Vector {
	n := min(len(dst), min(len(a), len(b)))
	for i := 0; i < n; i++ {
		dst[i] = Mul(a[i], b[i])
	}
	return dst
}

// MACVec computes dst[i] += a[i] * b[i] with the PIM pipeline's two-step
// rounding.
func MACVec(dst, a, b Vector) Vector {
	n := min(len(dst), min(len(a), len(b)))
	for i := 0; i < n; i++ {
		dst[i] = MAC(dst[i], a[i], b[i])
	}
	return dst
}

// ReLUVec computes dst[i] = ReLU(a[i]).
func ReLUVec(dst, a Vector) Vector {
	n := min(len(dst), len(a))
	for i := 0; i < n; i++ {
		dst[i] = ReLU(a[i])
	}
	return dst
}

// ReduceAdd sums the vector left to right in binary16 (the reduction order
// the host uses when folding GRF partial sums).
func (v Vector) ReduceAdd() F16 {
	acc := Zero
	for _, h := range v {
		acc = Add(acc, h)
	}
	return acc
}

// Bytes serializes the vector little-endian, 2 bytes per lane, the DRAM
// burst layout.
func (v Vector) Bytes() []byte {
	b := make([]byte, 2*len(v))
	for i, h := range v {
		binary.LittleEndian.PutUint16(b[2*i:], uint16(h))
	}
	return b
}

// PutBytes serializes into an existing buffer; it panics if b is shorter
// than 2*len(v).
func (v Vector) PutBytes(b []byte) {
	for i, h := range v {
		binary.LittleEndian.PutUint16(b[2*i:], uint16(h))
	}
}

// VectorFromBytes parses little-endian 16-bit lanes from b (len(b)/2
// elements).
func VectorFromBytes(b []byte) Vector {
	v := make(Vector, len(b)/2)
	return v.DecodeBytes(b)
}

// DecodeBytes fills v in place from little-endian 16-bit lanes in b,
// decoding min(len(v), len(b)/2) elements, and returns v. It is the
// allocation-free counterpart of VectorFromBytes for reusable buffers.
func (v Vector) DecodeBytes(b []byte) Vector {
	n := min(len(v), len(b)/2)
	for i := 0; i < n; i++ {
		v[i] = F16(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return v
}

// String renders the vector like "[1 2.5 -0.125]".
func (v Vector) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, h := range v {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(h.String())
	}
	sb.WriteByte(']')
	return sb.String()
}

func trimFloat(f float32) string {
	s := strconv.FormatFloat(float64(f), 'g', -1, 32)
	return s
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b interpreted as float64, useful for approximate comparisons in
// tests. It panics if the lengths differ.
func MaxAbsDiff(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("fp16: MaxAbsDiff length mismatch %d != %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		d := a[i].Float64() - b[i].Float64()
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

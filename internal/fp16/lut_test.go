package fp16

import (
	"math"
	"math/rand"
	"testing"
)

// TestFloat32LUTExhaustive checks the 65,536-entry widening table against
// the reference conversion for every binary16 bit pattern, comparing raw
// float32 bits so NaN payloads are included.
func TestFloat32LUTExhaustive(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := F16(i)
		got := math.Float32bits(h.Float32())
		want := math.Float32bits(h.float32Ref())
		if got != want {
			t.Fatalf("Float32(0x%04x) = 0x%08x, reference 0x%08x", i, got, want)
		}
	}
}

// TestFromFloat32TableExhaustiveF16 narrows every exactly-representable
// binary16 value through both conversion paths. Together with the directed
// sweep below this exercises every exponent class and rounding case of the
// shift-indexed tables.
func TestFromFloat32TableExhaustiveF16(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		f := F16(i).float32Ref()
		got, want := FromFloat32(f), fromFloat32Ref(f)
		if got != want {
			t.Fatalf("FromFloat32(%v from 0x%04x) = 0x%04x, reference 0x%04x",
				f, i, uint16(got), uint16(want))
		}
	}
}

// directedFracs returns fraction patterns that hit every rounding decision:
// all-zero/all-one fractions, and for every shift amount the tables use,
// the exact tie (round bit set, sticky clear) with even and odd quotients,
// plus one-above and one-below the tie.
func directedFracs() []uint32 {
	fracs := []uint32{0, 1, 2, 0x3FF, 0x400, 0x401, 0x3FFFFF, 0x400000, 0x400001, 0x555555, 0x2AAAAA, 0x7FFFFE, 0x7FFFFF}
	for s := uint32(13); s <= 26; s++ {
		half := uint32(1) << (s - 1)
		for _, v := range []uint32{half, half - 1, half + 1, half | 1<<s, 3 * half} {
			fracs = append(fracs, v&0x7FFFFF)
		}
	}
	return fracs
}

// TestFromFloat32TableDirected sweeps all 512 sign+exponent classes —
// including float32 subnormals, ±Inf and NaN payloads — crossed with the
// directed fraction patterns, proving the table path matches the reference
// on every class boundary and round-to-nearest-even tie.
func TestFromFloat32TableDirected(t *testing.T) {
	fracs := directedFracs()
	for se := uint32(0); se < 512; se++ {
		for _, fr := range fracs {
			b := se<<23 | fr
			f := math.Float32frombits(b)
			got, want := FromFloat32(f), fromFloat32Ref(f)
			if got != want {
				t.Fatalf("FromFloat32(bits 0x%08x) = 0x%04x, reference 0x%04x",
					b, uint16(got), uint16(want))
			}
		}
	}
}

// TestFromFloat32TableRandom fuzzes uniformly random float32 bit patterns
// through both paths.
func TestFromFloat32TableRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 2_000_000
	if testing.Short() {
		n = 100_000
	}
	for i := 0; i < n; i++ {
		b := rng.Uint32()
		f := math.Float32frombits(b)
		got, want := FromFloat32(f), fromFloat32Ref(f)
		if got != want {
			t.Fatalf("FromFloat32(bits 0x%08x) = 0x%04x, reference 0x%04x",
				b, uint16(got), uint16(want))
		}
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	fs := make([]float32, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := range fs {
		fs[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	var acc F16
	for i := 0; i < b.N; i++ {
		acc ^= FromFloat32(fs[i&4095])
	}
	_ = acc
}

func BenchmarkFloat32(b *testing.B) {
	var acc float32
	for i := 0; i < b.N; i++ {
		acc += F16(i & 0x7BFF).Float32()
	}
	_ = acc
}

func BenchmarkMAC(b *testing.B) {
	x := FromFloat32(1.5)
	y := FromFloat32(0.25)
	acc := Zero
	for i := 0; i < b.N; i++ {
		acc = MAC(acc, x, y)
	}
	_ = acc
}

package fp16

import "math"

// Table-driven conversions. The simulator converts between binary16 and
// float32 on every lane of every ALU operation, so these two functions
// dominate the functional-mode profile. Both are exact replacements for
// the branchy reference implementations in fp16.go:
//
//   - F16 -> float32 is a single load from a 65,536-entry table built at
//     init by float32Ref, so it is bit-identical by construction.
//   - float32 -> F16 uses a 512-entry table indexed by the float32 sign and
//     exponent bits (Fabian Giesen's float-to-half trick): each exponent
//     class maps to a base bit pattern plus a right-shift applied to the
//     24-bit significand with round-to-nearest-even. Only the Inf/NaN
//     class stays on a branch because its result depends on the fraction
//     payload, not just the exponent.
//
// The equivalence of both paths with the reference is enforced by an
// exhaustive 2^16 test plus a directed float32 sweep in fp16_test.go.

// Concurrency: all three tables are written only by this package's
// init() and are read-only afterwards. The Go runtime completes every
// init() before main (or any test) starts, so concurrent readers — the
// serving layer drives many device shards from worker goroutines — need
// no sync.Once or other guard; this is audited by blas's
// TestConcurrentShardsGemv under -race.

// f16to32 holds float32(h) for every binary16 bit pattern (256 KiB).
var f16to32 [1 << 16]float32

// f32to16base/f32to16shift are indexed by the top 9 bits of a float32
// (sign + biased exponent). The conversion of a finite float32 b is
//
//	base[se] + roundShift(significand(b), shift[se])
//
// where significand includes the hidden bit. Overflow-to-infinity on
// rounding works out arithmetically: in the largest normal class the base
// plus a carried-out significand lands exactly on the infinity encoding.
var (
	f32to16base  [512]uint16
	f32to16shift [512]uint8
)

func init() {
	for i := range f16to32 {
		f16to32[i] = F16(i).float32Ref()
	}
	for se := 0; se < 512; se++ {
		sign := uint16(se>>8) << 15
		e := int32(se&0xFF) - 127 // unbiased float32 exponent
		switch {
		case se&0xFF == 0 || e < -25:
			// Signed zero, float32 subnormals (< 2^-126) and deep underflow
			// all round to signed zero: shifting the significand past its
			// round bit leaves nothing.
			f32to16base[se] = sign
			f32to16shift[se] = 26
		case e > 15:
			// Overflow to infinity (also covers the Inf/NaN exponent class,
			// which FromFloat32 handles on a branch before the table).
			f32to16base[se] = sign | expMask
			f32to16shift[se] = 26
		case e >= -14:
			// Normal binary16 range: shift out 13 significand bits and fold
			// the hidden bit into the exponent field by pre-subtracting it.
			f32to16base[se] = sign | (uint16(e+expBias) << expShift) - (1 << expShift)
			f32to16shift[se] = 13
		default:
			// Subnormal binary16 range, e in [-25, -15]: denormalize by
			// shifting (-14 - e) extra bits; the base is just the sign.
			f32to16base[se] = sign
			f32to16shift[se] = uint8(13 + (-14 - e))
		}
	}
}

// FromFloat32 converts a float32 to binary16 with round-to-nearest-even.
// Overflow produces an infinity; underflow produces a (possibly zero)
// subnormal. NaN payloads are quieted. Bit-identical to fromFloat32Ref.
func FromFloat32(f float32) F16 {
	b := math.Float32bits(f)
	se := b >> 23 // sign + exponent, 9 bits
	if se&0xFF == 0xFF {
		// Inf or NaN: the result depends on the fraction payload.
		sign := uint16(b>>16) & signMask
		if frac := b & 0x7FFFFF; frac != 0 {
			return F16(sign | expMask | 0x0200 | uint16(frac>>13)&fracMask)
		}
		return F16(sign | expMask)
	}
	sig := uint64(b&0x7FFFFF | 0x800000)
	return F16(f32to16base[se] + uint16(roundShift(sig, uint32(f32to16shift[se]))))
}

// Float32 converts a binary16 value to float32 exactly (binary16 is a
// subset of binary32). Served from a table built at init by float32Ref.
func (h F16) Float32() float32 { return f16to32[h] }

package fp16

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = FromFloat32(float32(rng.NormFloat64()))
	}
	return v
}

func TestVectorBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 15, 16, 33} {
		v := randVec(rng, n)
		got := VectorFromBytes(v.Bytes())
		if len(got) != len(v) {
			t.Fatalf("n=%d: length %d", n, len(got))
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("n=%d lane %d: 0x%04x != 0x%04x", n, i, uint16(got[i]), uint16(v[i]))
			}
		}
	}
}

func TestVectorBytesLittleEndian(t *testing.T) {
	v := Vector{F16(0x1234)}
	b := v.Bytes()
	if b[0] != 0x34 || b[1] != 0x12 {
		t.Fatalf("bytes = %x, want 3412", b)
	}
}

func TestPutBytesMatchesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := randVec(rng, Lanes)
	buf := make([]byte, 2*Lanes)
	v.PutBytes(buf)
	want := v.Bytes()
	for i := range buf {
		if buf[i] != want[i] {
			t.Fatalf("byte %d: %02x != %02x", i, buf[i], want[i])
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randVec(rng, Lanes)
	b := randVec(rng, Lanes)

	sum := AddVec(NewVector(Lanes), a, b)
	prod := MulVec(NewVector(Lanes), a, b)
	for i := 0; i < Lanes; i++ {
		if sum[i] != Add(a[i], b[i]) {
			t.Errorf("AddVec lane %d mismatch", i)
		}
		if prod[i] != Mul(a[i], b[i]) {
			t.Errorf("MulVec lane %d mismatch", i)
		}
	}

	acc := randVec(rng, Lanes)
	want := make(Vector, Lanes)
	copy(want, acc)
	for i := range want {
		want[i] = MAC(want[i], a[i], b[i])
	}
	MACVec(acc, a, b)
	for i := range acc {
		if acc[i] != want[i] {
			t.Errorf("MACVec lane %d mismatch", i)
		}
	}

	r := ReLUVec(NewVector(Lanes), a)
	for i := range r {
		if r[i] != ReLU(a[i]) {
			t.Errorf("ReLUVec lane %d mismatch", i)
		}
	}
}

func TestReduceAddOrder(t *testing.T) {
	// Left-to-right order matters in fp16; verify against explicit folding.
	v := FromFloat32s([]float32{1000, 1, 1, 1, 1, 1, 1, 1})
	acc := Zero
	for _, h := range v {
		acc = Add(acc, h)
	}
	if got := v.ReduceAdd(); got != acc {
		t.Fatalf("ReduceAdd = %v, want %v", got, acc)
	}
}

func TestFromFloat32sRoundTrip(t *testing.T) {
	fs := []float32{0, 1, -1, 0.5, 1024, -65504}
	v := FromFloat32s(fs)
	back := v.Float32s()
	for i := range fs {
		if back[i] != fs[i] {
			t.Errorf("element %d: %v != %v", i, back[i], fs[i])
		}
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromFloat32s([]float32{1, 2, 3})
	b := FromFloat32s([]float32{1, 2.5, 3})
	if got := MaxAbsDiff(a, b); got != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", got)
	}
	if got := MaxAbsDiff(a, a); got != 0 {
		t.Fatalf("self diff = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	MaxAbsDiff(a, a[:2])
}

func TestVectorQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		v := make(Vector, len(raw))
		for i, r := range raw {
			v[i] = F16(r)
		}
		got := VectorFromBytes(v.Bytes())
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

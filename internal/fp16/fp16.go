// Package fp16 implements IEEE 754 binary16 ("half precision") arithmetic
// in software. It is the number format of the PIM execution unit's SIMD
// datapath: the paper's PIM-HBM implements FP16 multiply and add units
// (Section III-C chooses FP16 over BFLOAT16 for compatibility with legacy
// FP16 libraries).
//
// Arithmetic is performed by converting to float32, operating, and rounding
// back once. Because binary32 carries p' = 24 significand bits and binary16
// needs p = 11, p' >= 2p+2 holds, so the double rounding is innocuous
// (Figueroa's theorem): every Add, Sub, Mul and Div below is correctly
// rounded to nearest-even in binary16. Mul is additionally exact in the
// intermediate (22-bit product in a 24-bit significand).
package fp16

import "math"

// F16 is an IEEE 754 binary16 value: 1 sign bit, 5 exponent bits,
// 10 fraction bits.
type F16 uint16

// Special values.
const (
	PosInf  F16 = 0x7C00
	NegInf  F16 = 0xFC00
	NaN     F16 = 0x7E00 // a quiet NaN
	Zero    F16 = 0x0000
	NegZero F16 = 0x8000
	One     F16 = 0x3C00
	MaxVal  F16 = 0x7BFF // 65504
	MinPos  F16 = 0x0001 // smallest positive subnormal, 2^-24
)

const (
	signMask = 0x8000
	expMask  = 0x7C00
	fracMask = 0x03FF
	expShift = 10
	expBias  = 15
)

// fromFloat32Ref is the branchy reference conversion to binary16 with
// round-to-nearest-even. Overflow produces an infinity; underflow produces
// a (possibly zero) subnormal. NaN payloads are quieted.
//
// The exported FromFloat32 (lut.go) is the table-driven fast path; this
// function is kept as the oracle that the tables are built from and
// exhaustively checked against in tests.
func fromFloat32Ref(f float32) F16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask
	exp := int32(b>>23) & 0xFF
	frac := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if frac != 0 {
			return F16(sign | expMask | 0x0200 | uint16(frac>>13)&fracMask&^0x0200 | 0x0200)
		}
		return F16(sign | expMask)
	case exp == 0 && frac == 0: // signed zero
		return F16(sign)
	}

	// Unbiased exponent of the float32 value. Subnormal float32 inputs are
	// far below the binary16 subnormal range (< 2^-126), so they flush to
	// zero through the generic underflow path below.
	e := exp - 127

	switch {
	case e > 15: // overflow to infinity
		return F16(sign | expMask)
	case e >= -14: // normal binary16 range
		// 24-bit significand (implicit leading 1) must be rounded to 11 bits:
		// shift out 13 bits with round-to-nearest-even.
		sig := frac | 0x800000 // 24-bit significand with hidden bit
		rounded := roundShift(uint64(sig), 13)
		// Rounding may carry out (e.g. 0x7FFFFF -> 0x800), bumping the
		// exponent; rounded occupies 11 or 12 bits.
		he := uint16(e+expBias) << expShift
		out := uint32(he) + uint32(rounded) - (1 << expShift) // fold hidden bit into exponent field
		if out >= uint32(expMask) {
			return F16(sign | expMask) // rounded up to infinity
		}
		return F16(sign | uint16(out))
	case e >= -25: // subnormal binary16 range (including rounding up to MinPos)
		// Denormalize: significand is shifted right by (-14 - e) extra bits.
		sig := uint64(frac | 0x800000)
		shift := uint32(13 + (-14 - e))
		rounded := roundShift(sig, shift)
		// rounded fits in 11 bits; a carry into bit 10 yields the smallest
		// normal number, which the plain bit pattern already encodes.
		return F16(sign | uint16(rounded))
	default: // underflow to signed zero
		return F16(sign)
	}
}

// roundShift shifts v right by s bits, rounding to nearest with ties to
// even. s must be in [1, 63].
func roundShift(v uint64, s uint32) uint64 {
	half := uint64(1) << (s - 1)
	mask := (uint64(1) << s) - 1
	q := v >> s
	r := v & mask
	if r > half || (r == half && q&1 == 1) {
		q++
	}
	return q
}

// float32Ref is the branchy reference widening to float32 (exact: binary16
// is a subset of binary32). The exported Float32 (lut.go) serves the same
// values from a table built by this function at init.
func (h F16) float32Ref() float32 {
	sign := uint32(h&signMask) << 16
	exp := uint32(h&expMask) >> expShift
	frac := uint32(h & fracMask)

	switch exp {
	case 0:
		if frac == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: value = frac * 2^-24. Normalize into binary32: with the
		// leading 1 shifted up to bit 10, the value is 2^(-14-k) * 1.xxx
		// where k is the shift count, so the biased exponent is 113-k.
		e := uint32(113)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask
		return math.Float32frombits(sign | e<<23 | frac<<13)
	case 0x1F:
		if frac == 0 {
			return math.Float32frombits(sign | 0xFF<<23)
		}
		return math.Float32frombits(sign | 0xFF<<23 | frac<<13 | 1<<22) // quiet NaN
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | frac<<13)
	}
}

// Float64 converts to float64 exactly.
func (h F16) Float64() float64 { return float64(h.Float32()) }

// FromFloat64 converts a float64 to binary16. The conversion goes through
// float32 first; since binary32 keeps >= 2p+2 bits of binary16 precision,
// the result is still correctly rounded for all values representable in
// float32 without intermediate overflow, which covers the binary16 range.
func FromFloat64(f float64) F16 { return FromFloat32(float32(f)) }

// IsNaN reports whether h is a NaN.
func (h F16) IsNaN() bool { return h&expMask == expMask && h&fracMask != 0 }

// IsInf reports whether h is an infinity. sign > 0 tests +Inf, sign < 0
// tests -Inf, sign == 0 tests either.
func (h F16) IsInf(sign int) bool {
	if h&expMask != expMask || h&fracMask != 0 {
		return false
	}
	switch {
	case sign > 0:
		return h&signMask == 0
	case sign < 0:
		return h&signMask != 0
	default:
		return true
	}
}

// IsZero reports whether h is +0 or -0.
func (h F16) IsZero() bool { return h&^signMask == 0 }

// IsSubnormal reports whether h is a nonzero subnormal.
func (h F16) IsSubnormal() bool { return h&expMask == 0 && h&fracMask != 0 }

// Sign reports the sign bit: true when negative (including -0 and -NaN).
func (h F16) Signbit() bool { return h&signMask != 0 }

// Neg returns h with the sign flipped (including for NaN, matching IEEE
// negate semantics).
func (h F16) Neg() F16 { return h ^ signMask }

// Abs returns h with the sign cleared.
func (h F16) Abs() F16 { return h &^ signMask }

// Add returns the correctly rounded binary16 sum a+b.
func Add(a, b F16) F16 { return FromFloat32(a.Float32() + b.Float32()) }

// Sub returns the correctly rounded binary16 difference a-b.
func Sub(a, b F16) F16 { return FromFloat32(a.Float32() - b.Float32()) }

// Mul returns the correctly rounded binary16 product a*b.
func Mul(a, b F16) F16 { return FromFloat32(a.Float32() * b.Float32()) }

// Div returns the correctly rounded binary16 quotient a/b.
func Div(a, b F16) F16 { return FromFloat32(a.Float32() / b.Float32()) }

// MAC returns acc + a*b the way the PIM pipeline computes it: the MULT
// stage rounds the product to binary16, then the ADD stage rounds the sum
// to binary16 (two rounding steps, matching a multiplier feeding an adder
// through a 16-bit pipeline register, Section IV-B).
func MAC(acc, a, b F16) F16 { return Add(acc, Mul(a, b)) }

// MAD returns a*b + c with the same two-step rounding as MAC.
func MAD(a, b, c F16) F16 { return Add(Mul(a, b), c) }

// ReLU returns max(h, 0), implemented exactly as the hardware does: a
// 2-to-1 multiplexer controlled by the sign bit (Section III-C). Negative
// inputs, including -0 and negative NaNs, yield +0.
func ReLU(h F16) F16 {
	if h&signMask != 0 {
		return Zero
	}
	return h
}

// Eq reports numeric equality: +0 == -0, NaN != NaN.
func Eq(a, b F16) bool {
	if a.IsNaN() || b.IsNaN() {
		return false
	}
	if a.IsZero() && b.IsZero() {
		return true
	}
	return a == b
}

// Less reports a < b under IEEE ordering (false if either is NaN).
func Less(a, b F16) bool {
	if a.IsNaN() || b.IsNaN() {
		return false
	}
	return a.Float32() < b.Float32()
}

// Bits returns the raw 16-bit encoding.
func (h F16) Bits() uint16 { return uint16(h) }

// FromBits builds an F16 from its raw encoding.
func FromBits(b uint16) F16 { return F16(b) }

// String renders the value in decimal (via float32).
func (h F16) String() string {
	switch {
	case h.IsNaN():
		return "NaN"
	case h == PosInf:
		return "+Inf"
	case h == NegInf:
		return "-Inf"
	}
	return trimFloat(h.Float32())
}

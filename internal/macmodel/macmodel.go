// Package macmodel estimates the silicon area and energy per operation of
// multiply-accumulate units in a 20nm DRAM logic process, reproducing
// Table I of the paper. The paper uses the table to justify choosing FP16
// over FP32 (too large) and over BFLOAT16 (FP16 has broader legacy
// support at nearly the same cost).
//
// The area model is structural: an array multiplier costs O(m^2) in the
// significand width m, an accumulator/adder costs O(w) in its width, and
// floating-point formats add alignment/normalization shifter stages of
// O(m log m) plus exponent datapath of O(e). The energy model follows
// measured CMOS practice where switching energy grows sublinearly with
// datapath area once clocking and control overheads are included. The
// coefficients are calibrated once against the paper's INT16 and FP32
// corners and documented below; the package test checks every Table I
// entry within tolerance.
package macmodel

import (
	"fmt"
	"math"
)

// Format describes a MAC unit's number format.
type Format struct {
	Name string
	// Integer formats: Bits is the operand width and AccBits the
	// accumulator width. Float formats: Mant is the significand width
	// including the hidden bit, Exp the exponent width.
	Integer bool
	Bits    int
	AccBits int
	Mant    int
	Exp     int
}

// The Table I formats.
var (
	INT16Acc48 = Format{Name: "INT16 (w/ 48-bit Acc.)", Integer: true, Bits: 16, AccBits: 48}
	INT8Acc48  = Format{Name: "INT8 (w/ 48-bit Acc.)", Integer: true, Bits: 8, AccBits: 48}
	INT8Acc32  = Format{Name: "INT8 (w/ 32-bit Acc.)", Integer: true, Bits: 8, AccBits: 32}
	FP16       = Format{Name: "FP16", Mant: 11, Exp: 5}
	BFLOAT16   = Format{Name: "BFLOAT16", Mant: 8, Exp: 8}
	FP32       = Format{Name: "FP32", Mant: 24, Exp: 8}
)

// TableIFormats lists the formats in the paper's row order.
func TableIFormats() []Format {
	return []Format{INT16Acc48, INT8Acc48, INT8Acc32, FP16, BFLOAT16, FP32}
}

// Model coefficients, normalized so that Area(INT16Acc48) == 1.
//
// alpha: multiplier array cost per significand-bit^2
// beta:  accumulator/adder cost per bit
// delta: FP alignment + normalization shifter cost per m*log2(2m)
// eps:   exponent datapath cost per bit
// zeta:  FP control offset
//
// alpha and beta are fixed by the three integer rows; delta, eps, zeta by
// the three floating-point rows.
const (
	alpha = 0.7 / 256.0
	beta  = 0.3 / 48.0
	delta = 0.013824
	eps   = 0.073630
	zeta  = -0.056470
)

// Area returns the estimated area of a MAC unit in f, normalized to the
// INT16/48-bit-accumulator unit.
func Area(f Format) float64 {
	if f.Integer {
		return alpha*float64(f.Bits*f.Bits) + beta*float64(f.AccBits)
	}
	m := float64(f.Mant)
	mul := alpha * m * m
	shift := delta * m * math.Log2(2*m)
	expo := eps * float64(f.Exp)
	return mul + shift + expo + zeta
}

// Energy coefficients: switching energy grows with the log of datapath
// area on top of a fixed clock/control floor; narrow-exponent FP formats
// (FP16's 5-bit exponent) pay extra alignment/normalization activity
// because typical operands need longer relative mantissa shifts.
const (
	eLogCoeff     = 0.23
	eNarrowExpPen = 0.14
)

// Energy returns the estimated energy per MAC operation, normalized to
// the INT16/48-bit-accumulator unit.
func Energy(f Format) float64 {
	e := 1 + eLogCoeff*math.Log(Area(f))
	if !f.Integer && f.Exp < 8 {
		e += eNarrowExpPen
	}
	return e
}

// TableIRow is one row of the reproduced Table I.
type TableIRow struct {
	Format       Format
	Area, Energy float64 // model outputs
	PaperArea    float64 // the paper's measured values
	PaperEnergy  float64
}

// paperTableI holds the published numbers for comparison.
var paperTableI = map[string][2]float64{
	INT16Acc48.Name: {1, 1},
	INT8Acc48.Name:  {0.45, 0.81},
	INT8Acc32.Name:  {0.35, 0.77},
	FP16.Name:       {1.32, 1.21},
	BFLOAT16.Name:   {1.15, 1.04},
	FP32.Name:       {3.96, 1.34},
}

// TableI reproduces the full table: model estimate next to paper value.
func TableI() []TableIRow {
	rows := make([]TableIRow, 0, 6)
	for _, f := range TableIFormats() {
		p := paperTableI[f.Name]
		rows = append(rows, TableIRow{
			Format:      f,
			Area:        Area(f),
			Energy:      Energy(f),
			PaperArea:   p[0],
			PaperEnergy: p[1],
		})
	}
	return rows
}

// Paper returns the published (area, energy) pair for a format.
func Paper(f Format) (area, energy float64, err error) {
	p, ok := paperTableI[f.Name]
	if !ok {
		return 0, 0, fmt.Errorf("macmodel: %q is not a Table I format", f.Name)
	}
	return p[0], p[1], nil
}

package macmodel

import (
	"math"
	"testing"
)

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / want
}

// TestTableIWithinTolerance checks every model estimate against the
// paper's published Table I within 10%.
func TestTableIWithinTolerance(t *testing.T) {
	for _, row := range TableI() {
		if e := relErr(row.Area, row.PaperArea); e > 0.10 {
			t.Errorf("%s area: model %.3f vs paper %.2f (%.1f%% off)",
				row.Format.Name, row.Area, row.PaperArea, 100*e)
		}
		if e := relErr(row.Energy, row.PaperEnergy); e > 0.10 {
			t.Errorf("%s energy: model %.3f vs paper %.2f (%.1f%% off)",
				row.Format.Name, row.Energy, row.PaperEnergy, 100*e)
		}
	}
}

// TestNormalization: INT16/48 is the unit of both scales.
func TestNormalization(t *testing.T) {
	if a := Area(INT16Acc48); math.Abs(a-1) > 1e-9 {
		t.Errorf("Area(INT16) = %v", a)
	}
	if e := Energy(INT16Acc48); math.Abs(e-1) > 1e-9 {
		t.Errorf("Energy(INT16) = %v", e)
	}
}

// TestPaperConclusions verifies the architectural arguments the paper
// draws from Table I hold in the model.
func TestPaperConclusions(t *testing.T) {
	// FP32 is too large for DRAM integration: ~3-4x an INT16 MAC.
	if r := Area(FP32) / Area(INT16Acc48); r < 3 {
		t.Errorf("FP32/INT16 area ratio %.2f, want > 3", r)
	}
	// BFLOAT16 is slightly smaller and more energy-efficient than FP16.
	if Area(BFLOAT16) >= Area(FP16) {
		t.Error("BFLOAT16 should be smaller than FP16")
	}
	if Energy(BFLOAT16) >= Energy(FP16) {
		t.Error("BFLOAT16 should use less energy than FP16")
	}
	// FP16 remains comparable to INT16 (within ~40%), which is why it is
	// implementable at all.
	if r := Area(FP16) / Area(INT16Acc48); r > 1.5 {
		t.Errorf("FP16/INT16 area ratio %.2f, want < 1.5", r)
	}
	// Wider accumulators cost area: INT8/48 > INT8/32.
	if Area(INT8Acc48) <= Area(INT8Acc32) {
		t.Error("48-bit accumulator should cost more than 32-bit")
	}
}

func TestMonotonicity(t *testing.T) {
	// Area grows with significand width for FP formats.
	if !(Area(BFLOAT16) < Area(FP16) && Area(FP16) < Area(FP32)) {
		t.Error("FP area not monotone in mantissa width")
	}
	// Energy grows with area across the integer family.
	if !(Energy(INT8Acc32) < Energy(INT8Acc48) && Energy(INT8Acc48) < Energy(INT16Acc48)) {
		t.Error("INT energy not monotone")
	}
}

func TestPaperLookup(t *testing.T) {
	a, e, err := Paper(FP16)
	if err != nil || a != 1.32 || e != 1.21 {
		t.Errorf("Paper(FP16) = %v, %v, %v", a, e, err)
	}
	if _, _, err := Paper(Format{Name: "INT4"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestTableIRowOrder(t *testing.T) {
	rows := TableI()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Format.Name != INT16Acc48.Name || rows[5].Format.Name != FP32.Name {
		t.Error("rows not in the paper's order")
	}
}

package serve

// The live ops surface and the SLO control loop.
//
// GET /debug/ops is the one-stop JSON snapshot an operator (or cmd/pimtop)
// polls: what the last window of traffic looked like (windowed wall-time
// quantiles, admit rate, batch sizes), shard health, batcher occupancy,
// and — when the server was built with Config.SLO — every evaluated
// objective's state, burn rates and budget, the recent transition log,
// and the current per-model hedge-delay targets.
//
// GET /debug/slow resolves burning objectives to evidence: for every
// series in warn or page it returns the exemplar request IDs and, when
// tracing is on, the flight-recorder span trees those IDs name. The
// chain is: SLO burns → exemplar carries X-Request-ID → /debug/slow
// returns the offending spans.
//
// sloLoop is the only writer of model.hedgeNs after boot: each tick it
// evaluates the engine and applies the controller's per-model targets,
// which dispatch() reads on every batch. Tests drive sloTick directly on
// a fake clock (EvalEvery < 0 keeps the loop off) — see slo_serve_test.go.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"pimsim/internal/obs"
	"pimsim/internal/slo"
)

// OpsWindow summarizes the sliding-window server metrics.
type OpsWindow struct {
	WidthMs      int64   `json:"width_ms"`
	Admitted     int64   `json:"admitted"`
	AdmitPerSec  float64 `json:"admit_per_sec"`
	Requests     int64   `json:"requests"`
	WallP50Us    float64 `json:"wall_p50_us"`
	WallP95Us    float64 `json:"wall_p95_us"`
	WallP99Us    float64 `json:"wall_p99_us"`
	Batches      int64   `json:"batches"`
	MeanBatch    float64 `json:"mean_batch"`
	BatchP99     float64 `json:"batch_p99"`
	OccupancyPct float64 `json:"occupancy_pct"` // mean batch / max batch
}

// OpsQueue is one model queue's instantaneous occupancy.
type OpsQueue struct {
	Model string `json:"model"`
	Depth int    `json:"depth"`
	Bound int    `json:"bound"`
}

// OpsSLO is the SLO engine's contribution to the report.
type OpsSLO struct {
	Series      []slo.SeriesStatus `json:"series"`
	Transitions []slo.Transition   `json:"transitions"`
	HedgeUs     map[string]int64   `json:"hedge_delay_us,omitempty"`
	Objectives  []slo.Objective    `json:"objectives"`
}

// OpsReport is the GET /debug/ops body.
type OpsReport struct {
	Now           time.Time  `json:"now"`
	Window        OpsWindow  `json:"window"`
	Shards        int        `json:"shards"`
	ShardsHealthy int        `json:"shards_healthy"`
	ShardStates   []string   `json:"shard_states"`
	QueueDepth    int64      `json:"queue_depth"`
	Queues        []OpsQueue `json:"queues"`
	SLO           *OpsSLO    `json:"slo,omitempty"`
}

// opsReport assembles the snapshot. Exported through /debug/ops; tests
// call it directly.
func (s *Server) opsReport() OpsReport {
	width := s.winWallUs.Width()
	wall := s.winWallUs.Snapshot(0)
	batch := s.winBatch.Snapshot(0)
	rep := OpsReport{
		Now: time.Now(),
		Window: OpsWindow{
			WidthMs:     width.Milliseconds(),
			Admitted:    s.winAdmit.Total(0),
			AdmitPerSec: s.winAdmit.Rate(0),
			Requests:    wall.Count,
			WallP50Us:   wall.Quantile(0.50),
			WallP95Us:   wall.Quantile(0.95),
			WallP99Us:   wall.Quantile(0.99),
			Batches:     batch.Count,
			BatchP99:    batch.Quantile(0.99),
		},
		Shards:        s.cfg.Shards,
		ShardsHealthy: s.HealthyShards(),
		ShardStates:   s.ShardStates(),
		QueueDepth:    s.queueDepth.Value(),
	}
	if batch.Count > 0 {
		rep.Window.MeanBatch = float64(batch.Sum) / float64(batch.Count)
		rep.Window.OccupancyPct = 100 * rep.Window.MeanBatch / float64(s.cfg.MaxBatch)
	}
	for name, m := range s.mods {
		rep.Queues = append(rep.Queues, OpsQueue{Model: name, Depth: m.q.len(), Bound: m.depth})
	}
	for name, m := range s.seqMods {
		rep.Queues = append(rep.Queues, OpsQueue{Model: name, Depth: m.q.len(), Bound: m.depth})
	}
	sort.Slice(rep.Queues, func(i, j int) bool { return rep.Queues[i].Model < rep.Queues[j].Model })
	if s.slo != nil {
		sl := &OpsSLO{
			Series:      s.slo.Status(),
			Transitions: s.slo.Transitions(),
			Objectives:  s.slo.Config().Objectives,
		}
		if ht := s.slo.HedgeTargets(); len(ht) > 0 {
			sl.HedgeUs = make(map[string]int64, len(ht))
			for name, d := range ht {
				sl.HedgeUs[name] = d.Microseconds()
			}
		}
		rep.SLO = sl
	}
	return rep
}

// handleDebugOps is GET /debug/ops. Always available — without an SLO
// config the report simply omits the slo section.
func (s *Server) handleDebugOps(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.opsReport())
}

// SlowSeries is one burning objective on GET /debug/slow: the exemplar
// request IDs and (tracing on) their span trees.
type SlowSeries struct {
	Tenant    string         `json:"tenant"`
	Model     string         `json:"model"`
	State     string         `json:"state"`
	Exemplars []slo.Exemplar `json:"exemplars"`
	Spans     []obs.Span     `json:"spans,omitempty"`
}

// handleDebugSlow is GET /debug/slow: burning objectives resolved to
// evidence. 404 when the server has no SLO engine.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if s.slo == nil {
		s.fail(w, time.Now(), http.StatusNotFound, fmt.Errorf("slo engine disabled (start the server with Config.SLO)"))
		return
	}
	out := struct {
		Burning []SlowSeries `json:"burning"`
	}{Burning: []SlowSeries{}}
	for _, b := range s.slo.Burning() {
		ss := SlowSeries{Tenant: b.Tenant, Model: b.Model, State: b.State, Exemplars: b.Exemplars}
		if s.tracer != nil {
			seen := make(map[string]bool, len(b.Exemplars))
			for _, x := range b.Exemplars {
				if x.ReqID == "" || seen[x.ReqID] {
					continue
				}
				seen[x.ReqID] = true
				ss.Spans = append(ss.Spans, s.tracer.Tree(x.ReqID)...)
			}
		}
		out.Burning = append(out.Burning, ss)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// recordSLO classifies one finished /v1/infer request for the engine.
// Client errors (bad body, wrong shape, unknown model) are not SLO
// events — a 404 must not burn anyone's budget — so only 200/429/5xx
// for a model the server actually serves are recorded. The engine
// refines a slow 200 to OutcomeSlow against the matched objective.
func (s *Server) recordSLO(o *inferOutcome, wall time.Duration, id string) {
	if s.slo == nil || o.model == "" {
		return
	}
	if s.mods[o.model] == nil && s.seqMods[o.model] == nil {
		return
	}
	var out slo.Outcome
	switch {
	case o.status == http.StatusOK:
		out = slo.OutcomeOK
	case o.status == http.StatusTooManyRequests:
		out = slo.OutcomeShed
	case o.status >= 500:
		out = slo.OutcomeError
	default:
		return
	}
	s.slo.RecordRequest(s.tenantFor(o.tenant).spec.Name, o.model, wall, out, id)
}

// sloLoop ticks the engine on its configured cadence until Close.
func (s *Server) sloLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.slo.Config().EvalEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sloTick()
		case <-s.quit:
			return
		}
	}
}

// sloTick runs one evaluation and closes the loop: the controller's
// per-model hedge targets land in model.hedgeNs, where dispatch() picks
// them up on the next batch. Transitions go to the structured log.
func (s *Server) sloTick() {
	fired := s.slo.Evaluate()
	for name, d := range s.slo.HedgeTargets() {
		if m := s.mods[name]; m != nil {
			m.hedgeNs.Store(int64(d))
		}
	}
	if s.logger != nil {
		for _, tr := range fired {
			s.logger.Warn("slo-transition",
				"tenant", tr.Tenant, "model", tr.Model,
				"from", tr.From, "to", tr.To,
				"fast_burn", tr.FastBurn, "slow_burn", tr.SlowBurn)
		}
	}
}

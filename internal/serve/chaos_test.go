package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pimsim/internal/blas"
	"pimsim/internal/fault"
)

// The chaos matrix: every test injects a deterministic fault profile and
// asserts the serving layer's contract under it — no accepted request is
// ever lost or answered with wrong data; faults cost availability (503)
// or latency, never correctness.

func tinyOracle(t *testing.T, seed int64) ([]float64, []float64) {
	t.Helper()
	in, x16 := testInput(tiny.K, seed)
	want := blas.RefGemvPIMOrder(tiny.Weights(), tiny.M, tiny.K, x16, 8)
	out := make([]float64, len(want))
	for i, v := range want {
		out[i] = float64(v.Float32())
	}
	return in, out
}

func checkOutput(t *testing.T, body []byte, want []float64) {
	t.Helper()
	var ir InferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("bad response body: %v: %s", err, body)
	}
	if len(ir.Output) != len(want) {
		t.Fatalf("output length %d, want %d", len(ir.Output), len(want))
	}
	for i := range want {
		if ir.Output[i] != want[i] {
			t.Fatalf("output[%d] = %v, want %v (a fault leaked into served data)", i, ir.Output[i], want[i])
		}
	}
}

// TestChaosShardDeathRedispatch: a shard dies mid-service and never
// revives. Every request must still be answered 200 with correct data —
// the failed batch is re-dispatched to the surviving shard — and the
// dead shard must end up evicted.
func TestChaosShardDeathRedispatch(t *testing.T) {
	fc := &fault.Config{
		Seed:      1,
		DeadShard: 0, DieAfterBatches: 1, ReviveAfterProbes: 0,
	}
	s := newTestServer(t, Config{
		Shards: 2, Channels: 2, Models: []ModelSpec{tiny},
		BatchWait: time.Millisecond,
		Fault:     fc, EvictAfter: 1, MaxRetries: 3,
		RetryBackoff: time.Millisecond, ProbeInterval: 5 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, want := tinyOracle(t, 11)
	for i := 0; i < 8; i++ {
		resp, body := postInfer(t, ts, inferBody(t, "tiny", in))
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d (%s) — request lost to the outage", i, resp.StatusCode, body)
		}
		checkOutput(t, body, want)
	}

	if got := s.evictions.Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if s.retries.Value() < 1 || s.redispatched.Value() < 1 {
		t.Errorf("retries = %d, redispatched = %d; the dead shard's batch was not re-dispatched",
			s.retries.Value(), s.redispatched.Value())
	}
	if got := s.HealthyShards(); got != 1 {
		t.Errorf("healthy shards = %d, want 1", got)
	}
	if st := s.ShardStates(); st[0] != "evicted" {
		t.Errorf("shard states = %v, want shard 0 evicted", st)
	}
}

// TestChaosAllShardsEvicted: with the only shard dead and revival
// disabled, in-flight work fails 503 (bounded, not hung), new work is
// refused 503 at admission, and healthz reports unavailable.
func TestChaosAllShardsEvicted(t *testing.T) {
	fc := &fault.Config{
		Seed:      2,
		DeadShard: 0, DieAfterBatches: 1, ReviveAfterProbes: 0,
	}
	s := newTestServer(t, Config{
		Shards: 1, Channels: 1, Models: []ModelSpec{tiny},
		BatchWait: time.Millisecond,
		Fault:     fc, EvictAfter: 1, MaxRetries: 1,
		RetryBackoff: time.Millisecond, RetryLeaseWait: 30 * time.Millisecond,
		ProbeInterval: 5 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := tinyOracle(t, 12)
	resp, body := postInfer(t, ts, inferBody(t, "tiny", in))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	waitFor(t, func() bool { return s.HealthyShards() == 0 })

	// Admission now fails fast: there is no device to run on.
	resp, body = postInfer(t, ts, inferBody(t, "tiny", in))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission with zero healthy shards: status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if hz, _ := ts.Client().Get(ts.URL + "/healthz"); hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with zero healthy shards: %d, want 503", hz.StatusCode)
	}
}

// TestChaosOutageRecovery: the only shard dies, the prober's probation
// probes ride out the outage, and the shard revives — the in-flight
// request survives the whole episode and completes 200.
func TestChaosOutageRecovery(t *testing.T) {
	fc := &fault.Config{
		Seed:      3,
		DeadShard: 0, DieAfterBatches: 1, ReviveAfterProbes: 2,
	}
	s := newTestServer(t, Config{
		Shards: 1, Channels: 1, Models: []ModelSpec{tiny},
		BatchWait: time.Millisecond,
		Fault:     fc, EvictAfter: 1, MaxRetries: 5,
		RetryBackoff: time.Millisecond, RetryLeaseWait: 5 * time.Second,
		ProbeInterval: 2 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, want := tinyOracle(t, 13)
	resp, body := postInfer(t, ts, inferBody(t, "tiny", in))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d (%s) — request did not survive the outage", resp.StatusCode, body)
	}
	checkOutput(t, body, want)

	if got := s.revivals.Value(); got != 1 {
		t.Errorf("revivals = %d, want 1", got)
	}
	if got := s.HealthyShards(); got != 1 {
		t.Errorf("healthy shards after revival = %d, want 1", got)
	}
	// Post-recovery the shard serves directly, no retries needed.
	resp, body = postInfer(t, ts, inferBody(t, "tiny", in))
	if resp.StatusCode != 200 {
		t.Fatalf("post-recovery status %d (%s)", resp.StatusCode, body)
	}
	checkOutput(t, body, want)
	if hz, _ := ts.Client().Get(ts.URL + "/healthz"); hz.StatusCode != 200 {
		t.Errorf("healthz after recovery: %d, want 200", hz.StatusCode)
	}
}

// TestChaosLatencySpikeSuspect: a shard whose every command issues late
// is demoted to suspect by the latency baseline — but keeps serving, so
// no in-flight work is lost.
func TestChaosLatencySpikeSuspect(t *testing.T) {
	// Every 4th command pays 3000 extra cycles — painful but below tREFI,
	// so refresh still keeps up (a spike of a full tREFI on every command
	// would wedge the channel, which is the outage test's territory).
	fc := &fault.Config{
		Seed:       4,
		SpikeShard: -1, SpikeEvery: 4, SpikeCycles: 3000,
	}
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2, Models: []ModelSpec{tiny},
		BatchWait: time.Millisecond,
		Fault:     fc, SuspectCycleFactor: 3,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Pretend the model's fault-free latency baseline is known (every
	// batch in this test is spiked, so the baseline could never form).
	s.mods["tiny"].minCycles.Store(100)

	in, want := tinyOracle(t, 14)
	resp, body := postInfer(t, ts, inferBody(t, "tiny", in))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d (%s) — slow is not broken; the request must complete", resp.StatusCode, body)
	}
	checkOutput(t, body, want)

	if st := s.ShardStates(); st[0] != "suspect" {
		t.Errorf("shard state = %v, want suspect after a spiked batch", st)
	}
	if got := s.suspects.Value(); got < 1 {
		t.Errorf("suspect demotions = %d, want >= 1", got)
	}
	if got := s.HealthyShards(); got != 1 {
		t.Errorf("healthy shards = %d, want 1 (suspect still serves)", got)
	}
}

// TestChaosUncorrectableQuarantineRelocate: a permanently stuck pair of
// bits in one ECC word of the model's first weight row. Batches on it
// fail typed (never silently wrong), the shard is evicted, and the
// probe-driven recovery quarantines the poisoned row and relocates the
// weights — after which the same request succeeds with correct data.
func TestChaosUncorrectableQuarantineRelocate(t *testing.T) {
	fc := &fault.Config{
		Seed: 5,
		// Two stuck bits in word 0 of (bank 0, row 2048, col 0): row 2048
		// is the first PIM row, where first-fit puts tiny's weights.
		Stuck: []fault.StuckBit{
			{Shard: -1, Channel: -1, Bank: 0, Row: 2048, Col: 0, Bit: 3},
			{Shard: -1, Channel: -1, Bank: 0, Row: 2048, Col: 0, Bit: 12},
		},
	}
	s := newTestServer(t, Config{
		Shards: 1, Channels: 1, Models: []ModelSpec{tiny},
		BatchWait: time.Millisecond,
		Fault:     fc, EvictAfter: 2, MaxRetries: 4,
		RetryBackoff: time.Millisecond, RetryLeaseWait: 5 * time.Second,
		ProbeInterval: 2 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base, _ := s.shards[0].loaded["tiny"].RowRange()
	if base != 2048 {
		t.Fatalf("tiny's weights at row %d, want 2048 — stuck-cell address no longer matches the layout", base)
	}

	in, want := tinyOracle(t, 15)
	resp, body := postInfer(t, ts, inferBody(t, "tiny", in))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d (%s) — recovery did not rescue the request", resp.StatusCode, body)
	}
	checkOutput(t, body, want)

	drv := s.shards[0].rt.Drv
	if got := drv.PIMRowsQuarantined(); got != 1 {
		t.Errorf("quarantined rows = %d, want 1", got)
	}
	if newBase, _ := s.shards[0].loaded["tiny"].RowRange(); newBase == 2048 {
		t.Error("weights still resident on the poisoned row after relocation")
	}
	if got := s.evictions.Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := s.revivals.Value(); got != 1 {
		t.Errorf("revivals = %d, want 1", got)
	}
	if got := s.eccUncorrC.Value(); got < 2 {
		t.Errorf("serve_ecc_uncorrectable_total = %d, want >= 2", got)
	}
	// The relocated weights serve cleanly.
	resp, body = postInfer(t, ts, inferBody(t, "tiny", in))
	if resp.StatusCode != 200 {
		t.Fatalf("post-relocation status %d (%s)", resp.StatusCode, body)
	}
	checkOutput(t, body, want)
}

// TestChaosCorrectedFlipsInvisible: a heavy single-bit flip rate under
// ECC must be completely invisible to clients — every response correct,
// no retries, only the corrected counter moves.
func TestChaosCorrectedFlipsInvisible(t *testing.T) {
	fc := &fault.Config{Seed: 6, FlipRate: 1e-2}
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2, Models: []ModelSpec{tiny},
		BatchWait: time.Millisecond, Fault: fc,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, want := tinyOracle(t, 16)
	for i := 0; i < 4; i++ {
		resp, body := postInfer(t, ts, inferBody(t, "tiny", in))
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, body)
		}
		checkOutput(t, body, want)
	}
	if got := s.eccCorrC.Value(); got == 0 {
		t.Error("flip rate 1e-2 produced zero ECC corrections — the injector is not wired into the serve path")
	}
	if got := s.retries.Value(); got != 0 {
		t.Errorf("corrected flips caused %d retries, want 0", got)
	}
	if got := s.evictions.Value(); got != 0 {
		t.Errorf("corrected flips caused %d evictions, want 0", got)
	}
}

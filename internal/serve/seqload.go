package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pimsim/internal/fp16"
	"pimsim/internal/metrics"
	"pimsim/internal/models"
	"pimsim/internal/nn"
)

// SeqLenDist is a parsed sequence-length distribution: "fixed:N" (every
// sequence N frames) or "uniform:A:B" (lengths drawn uniformly from
// [A, B], inclusive, per sequence from the run's seeded RNG).
type SeqLenDist struct {
	Kind string // "fixed" or "uniform"
	A, B int
}

// ParseSeqLenDist parses a -seqlen-dist flag value.
func ParseSeqLenDist(s string) (SeqLenDist, error) {
	parts := strings.Split(s, ":")
	switch {
	case len(parts) == 2 && parts[0] == "fixed":
		n, err := strconv.Atoi(parts[1])
		if err != nil || n <= 0 {
			return SeqLenDist{}, fmt.Errorf("seqlen-dist: bad fixed length %q", parts[1])
		}
		return SeqLenDist{Kind: "fixed", A: n, B: n}, nil
	case len(parts) == 3 && parts[0] == "uniform":
		a, err1 := strconv.Atoi(parts[1])
		b, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || a <= 0 || b < a {
			return SeqLenDist{}, fmt.Errorf("seqlen-dist: bad uniform range %q", s)
		}
		return SeqLenDist{Kind: "uniform", A: a, B: b}, nil
	default:
		return SeqLenDist{}, fmt.Errorf("seqlen-dist: want fixed:N or uniform:A:B, got %q", s)
	}
}

func (d SeqLenDist) draw(rng *rand.Rand) int {
	if d.A == d.B {
		return d.A
	}
	return d.A + rng.Intn(d.B-d.A+1)
}

func (d SeqLenDist) String() string {
	if d.Kind == "fixed" {
		return fmt.Sprintf("fixed:%d", d.A)
	}
	return fmt.Sprintf("%s:%d:%d", d.Kind, d.A, d.B)
}

// SeqLoadConfig drives one sequence-workload run against a serve
// endpoint's continuous-batching path.
type SeqLoadConfig struct {
	BaseURL string
	Model   models.Config // the served sequence model (shape + seed)

	Seqs        int           // total sequences to send (default 64)
	Concurrency int           // closed-loop in-flight sequences (default 8)
	LenDist     SeqLenDist    // per-sequence frame counts (default fixed:16)
	EOS         int           // EOS class sent with each request; <0 disables (default -1)
	Seed        int64         // frame/length RNG seed (default 1)
	Timeout     time.Duration // per-request client timeout (default 30s)

	// Verify recomputes every response against the host-session oracle
	// (the client regenerates the weights from Model.Seed and replays the
	// exact frames it sent). VerifyGRF is the device GRF depth (default 8).
	Verify    bool
	VerifyGRF int

	Client *http.Client
}

func (c *SeqLoadConfig) applyDefaults() error {
	if c.BaseURL == "" || c.Model.Name == "" {
		return fmt.Errorf("seqload: BaseURL and Model are required")
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Seqs <= 0 {
		c.Seqs = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.LenDist.Kind == "" {
		c.LenDist = SeqLenDist{Kind: "fixed", A: 16, B: 16}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.VerifyGRF <= 0 {
		c.VerifyGRF = 8
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Timeout}
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	return nil
}

// SeqReport is the outcome of a sequence load run. Step latency is the
// per-sequence wall time amortized over its executed steps (the client
// cannot see individual step boundaries over HTTP); device step time is
// exact, from the server's per-step cycle attribution.
type SeqReport struct {
	Model       string `json:"model"`
	LenDist     string `json:"len_dist"`
	Concurrency int    `json:"concurrency"`

	Sent        int `json:"sent"`
	OK          int `json:"ok"`
	Rejected    int `json:"rejected"`
	Timeouts    int `json:"timeouts"`
	Unavailable int `json:"unavailable"`
	BadOutputs  int `json:"bad_outputs"`
	Failures    int `json:"failures"`

	Steps      int64 `json:"steps"`       // executed timesteps across OK sequences
	EOSRetired int   `json:"eos_retired"` // sequences that stopped on EOS
	Migrations int64 `json:"migrations"`  // shard migrations across OK sequences

	WallSeconds   float64 `json:"wall_seconds"`
	SeqPerSec     float64 `json:"seq_per_sec"`       // OK sequences / wall
	SimStepPerSec float64 `json:"sim_steps_per_sec"` // steps / attributed device time

	StepP50Us float64 `json:"step_p50_us"` // wall per-step (seq wall / steps)
	StepP95Us float64 `json:"step_p95_us"`
	StepP99Us float64 `json:"step_p99_us"`

	SeqP50Us float64 `json:"seq_p50_us"` // wall per-sequence
	SeqP95Us float64 `json:"seq_p95_us"`
	SeqP99Us float64 `json:"seq_p99_us"`

	DevStepP50Us float64 `json:"dev_step_p50_us"` // device time per step
}

// RunSeqLoad sends cfg.Seqs multi-step sequences through /v1/infer in a
// closed loop and aggregates latency, throughput, and (with Verify) full
// per-step bit-exactness against the host oracle.
func RunSeqLoad(cfg SeqLoadConfig) (*SeqReport, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}

	var plan *nn.Plan
	if cfg.Verify {
		w, err := nn.GenWeights(cfg.Model)
		if err != nil {
			return nil, err
		}
		if plan, err = nn.Compile(w); err != nil {
			return nil, err
		}
	}

	// Pre-draw every sequence's length and frames from one seeded RNG so
	// the workload is reproducible and each worker owns disjoint
	// sequences without coordination.
	rng := rand.New(rand.NewSource(cfg.Seed))
	type seqJob struct {
		frames []fp16.Vector
		body   []byte
	}
	jobs := make([]seqJob, cfg.Seqs)
	for i := range jobs {
		n := cfg.LenDist.draw(rng)
		f16 := make([]fp16.Vector, n)
		f64 := make([][]float64, n)
		for t := range f16 {
			x := fp16.NewVector(cfg.Model.Input)
			row := make([]float64, cfg.Model.Input)
			for j := range x {
				x[j] = fp16.FromFloat32(float32(rng.NormFloat64() * 0.5))
				row[j] = float64(x[j].Float32())
			}
			f16[t] = x
			f64[t] = row
		}
		req := InferRequest{Model: cfg.Model.Name, Frames: f64}
		if cfg.EOS >= 0 {
			eos := cfg.EOS
			req.EOS = &eos
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		jobs[i] = seqJob{frames: f16, body: b}
	}

	reg := metrics.New(cfg.Concurrency)
	stepH := reg.Histogram("step_us", metrics.ExpBuckets(1, 2, 30))
	seqH := reg.Histogram("seq_us", metrics.ExpBuckets(1, 2, 30))
	devH := reg.Histogram("dev_step_us", metrics.ExpBuckets(1, 2, 30))

	var okN, rejN, toN, unavN, badN, failN int64
	var stepsN, migN, eosN int64
	var busyNs uint64

	shoot := func(wkr, i int) {
		job := jobs[i]
		start := time.Now()
		resp, err := cfg.Client.Post(cfg.BaseURL+"/v1/infer", "application/json", bytes.NewReader(job.body))
		seqUs := time.Since(start).Microseconds()
		if err != nil {
			atomic.AddInt64(&failN, 1)
			return
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			atomic.AddInt64(&failN, 1)
			return
		}
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			atomic.AddInt64(&rejN, 1)
			return
		case http.StatusGatewayTimeout:
			atomic.AddInt64(&toN, 1)
			return
		case http.StatusServiceUnavailable:
			atomic.AddInt64(&unavN, 1)
			return
		default:
			atomic.AddInt64(&failN, 1)
			return
		}
		var ir InferResponse
		if err := json.Unmarshal(raw, &ir); err != nil || ir.Steps <= 0 || len(ir.StepOutputs) != ir.Steps {
			atomic.AddInt64(&failN, 1)
			return
		}
		if plan != nil {
			// Replay exactly the frames the server executed: with EOS the
			// sequence may have retired early, so truncate before the oracle.
			want, err := plan.HostOracle(job.frames[:ir.Steps], cfg.VerifyGRF)
			if err != nil {
				atomic.AddInt64(&failN, 1)
				return
			}
			for step := range want {
				if !outputsMatch(ir.StepOutputs[step], want[step]) {
					atomic.AddInt64(&badN, 1)
					return
				}
			}
		}
		atomic.AddInt64(&okN, 1)
		atomic.AddInt64(&stepsN, int64(ir.Steps))
		atomic.AddInt64(&migN, int64(ir.Migrations))
		if ir.EOSStep != nil {
			atomic.AddInt64(&eosN, 1)
		}
		seqH.Observe(wkr, seqUs)
		stepH.Observe(wkr, seqUs/int64(ir.Steps))
		if ir.DeviceNs > 0 {
			atomic.AddUint64(&busyNs, uint64(ir.DeviceNs))
			devH.Observe(wkr, int64(ir.DeviceNs/float64(ir.Steps)/1e3))
		}
	}

	startWall := time.Now()
	var next int64 = -1
	var wg sync.WaitGroup
	for wkr := 0; wkr < cfg.Concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= cfg.Seqs {
					return
				}
				shoot(wkr, i)
			}
		}(wkr)
	}
	wg.Wait()
	wall := time.Since(startWall)

	snap := reg.Snapshot()
	stepS, seqS, devS := snap.Histograms["step_us"], snap.Histograms["seq_us"], snap.Histograms["dev_step_us"]

	rep := &SeqReport{
		Model:       cfg.Model.Name,
		LenDist:     cfg.LenDist.String(),
		Concurrency: cfg.Concurrency,
		Sent:        cfg.Seqs,
		OK:          int(okN),
		Rejected:    int(rejN),
		Timeouts:    int(toN),
		Unavailable: int(unavN),
		BadOutputs:  int(badN),
		Failures:    int(failN),
		Steps:       stepsN,
		EOSRetired:  int(eosN),
		Migrations:  migN,
		WallSeconds: wall.Seconds(),

		StepP50Us: stepS.Quantile(0.50),
		StepP95Us: stepS.Quantile(0.95),
		StepP99Us: stepS.Quantile(0.99),
		SeqP50Us:  seqS.Quantile(0.50),
		SeqP95Us:  seqS.Quantile(0.95),
		SeqP99Us:  seqS.Quantile(0.99),

		DevStepP50Us: devS.Quantile(0.50),
	}
	if rep.OK > 0 {
		rep.SeqPerSec = float64(rep.OK) / wall.Seconds()
		if busyNs > 0 {
			rep.SimStepPerSec = float64(stepsN) / (float64(busyNs) / 1e9)
		}
	}
	if got := rep.OK + rep.Rejected + rep.Timeouts + rep.Unavailable + rep.BadOutputs + rep.Failures; got != rep.Sent {
		return rep, fmt.Errorf("seqload: dropped responses: sent %d, accounted %d", rep.Sent, got)
	}
	return rep, nil
}

// String renders the report for terminals.
func (r *SeqReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sequence closed loop, model %s, lengths %s, %d in flight\n",
		r.Model, r.LenDist, r.Concurrency)
	fmt.Fprintf(&b, "  sent %d: %d ok, %d rejected (429), %d timeouts (504), %d unavailable (503), %d bad outputs, %d failures\n",
		r.Sent, r.OK, r.Rejected, r.Timeouts, r.Unavailable, r.BadOutputs, r.Failures)
	fmt.Fprintf(&b, "  steps %d (%d sequences EOS-retired, %d migrations)\n", r.Steps, r.EOSRetired, r.Migrations)
	fmt.Fprintf(&b, "  throughput  %.1f seq/s wall, %.0f steps/s simulated-device\n", r.SeqPerSec, r.SimStepPerSec)
	fmt.Fprintf(&b, "  seq latency   p50 %.0fus  p95 %.0fus  p99 %.0fus\n", r.SeqP50Us, r.SeqP95Us, r.SeqP99Us)
	fmt.Fprintf(&b, "  step latency  p50 %.0fus  p95 %.0fus  p99 %.0fus  (device p50 %.1fus)\n",
		r.StepP50Us, r.StepP95Us, r.StepP99Us, r.DevStepP50Us)
	return b.String()
}

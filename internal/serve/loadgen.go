package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/metrics"
)

// LoadConfig drives one load-generation run against a serve endpoint.
type LoadConfig struct {
	BaseURL string // e.g. http://127.0.0.1:8080
	Model   string
	K       int // input vector length (must match the model)

	Mode        string        // "closed" (default) or "open"
	Concurrency int           // closed-loop in-flight requests (default 8)
	Requests    int           // total requests to send (default 256)
	RatePerSec  float64       // open-loop arrival rate (required for open)
	Timeout     time.Duration // per-request client timeout (default 10s)

	// Verify, when set, recomputes every response against the software
	// oracle (the spec regenerates the weights) and counts mismatches as
	// failures. VerifyGRF is the device's GRF depth (default 8, the base
	// PIM-HBM part).
	Verify    *ModelSpec
	VerifyGRF int

	Client *http.Client
}

func (c *LoadConfig) applyDefaults() error {
	if c.BaseURL == "" || c.Model == "" || c.K <= 0 {
		return fmt.Errorf("loadgen: BaseURL, Model and K are required")
	}
	if c.Mode == "" {
		c.Mode = "closed"
	}
	if c.Mode != "closed" && c.Mode != "open" {
		return fmt.Errorf("loadgen: unknown mode %q", c.Mode)
	}
	if c.Mode == "open" && c.RatePerSec <= 0 {
		return fmt.Errorf("loadgen: open loop needs RatePerSec")
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Requests <= 0 {
		c.Requests = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.VerifyGRF <= 0 {
		c.VerifyGRF = 8
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Timeout}
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	return nil
}

// Report is the outcome of a load run. Latency quantiles come from the
// shared metrics.HistogramSnapshot.Quantile estimator; simulated-device
// numbers come from the per-response kernel stats (deterministic), wall
// numbers from the host clock.
type Report struct {
	Mode        string  `json:"mode"`
	Model       string  `json:"model"`
	Concurrency int     `json:"concurrency"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`

	Sent        int `json:"sent"`
	OK          int `json:"ok"`
	Rejected    int `json:"rejected"`    // 429 backpressure
	Timeouts    int `json:"timeouts"`    // 504 deadline
	Unavailable int `json:"unavailable"` // 503 no healthy shards / retries exhausted
	BadOutputs  int `json:"bad_outputs"` // 200s whose data failed oracle verification
	Failures    int `json:"failures"`    // transport errors and other 5xx

	WallSeconds      float64 `json:"wall_seconds"`
	ThroughputRPS    float64 `json:"throughput_rps"`     // OK / wall
	SimThroughputRPS float64 `json:"sim_throughput_rps"` // OK / device-busy time

	WallP50Us float64 `json:"wall_p50_us"`
	WallP95Us float64 `json:"wall_p95_us"`
	WallP99Us float64 `json:"wall_p99_us"`

	QueueP50Us float64 `json:"queue_p50_us"`
	QueueP99Us float64 `json:"queue_p99_us"`

	CyclesP50 float64 `json:"kernel_cycles_p50"`
	CyclesP95 float64 `json:"kernel_cycles_p95"`
	CyclesP99 float64 `json:"kernel_cycles_p99"`

	AvgBatch       float64          `json:"avg_batch"`
	BatchHistogram map[string]int64 `json:"batch_histogram"`
	MaxQueueDepth  int64            `json:"max_queue_depth"`
}

// RunLoad sends cfg.Requests inferences and aggregates the outcome. The
// closed loop keeps Concurrency requests in flight back-to-back (peak
// sustainable throughput); the open loop fires at RatePerSec regardless
// of completions (latency under a fixed arrival process, the
// backpressure/timeout regime).
func RunLoad(cfg LoadConfig) (*Report, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}

	reg := metrics.New(cfg.Concurrency)
	wallH := reg.Histogram("wall_us", metrics.ExpBuckets(1, 2, 30))
	queueH := reg.Histogram("queue_us", metrics.ExpBuckets(1, 2, 30))
	cycH := reg.Histogram("kernel_cycles", metrics.ExpBuckets(64, 2, 26))

	var okN, rejN, toN, unavN, badN, failN, batchSum int64
	var busyNs uint64 // device-busy ns attributable to OK responses, *1000 fixed point
	var batchMu sync.Mutex
	batchHist := map[int]int64{}

	// Inputs: one deterministic vector per worker slot; data does not
	// affect timing, and a fixed input lets Verify precompute the oracle.
	inputs := make([][]float64, cfg.Concurrency)
	oracle := make([]fp16.Vector, cfg.Concurrency)
	var W fp16.Vector
	if cfg.Verify != nil {
		W = cfg.Verify.Weights()
	}
	for wkr := 0; wkr < cfg.Concurrency; wkr++ {
		rng := rand.New(rand.NewSource(int64(1000 + wkr)))
		x16 := fp16.NewVector(cfg.K)
		in := make([]float64, cfg.K)
		for i := range in {
			x16[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
			in[i] = float64(x16[i].Float32())
		}
		inputs[wkr] = in
		if cfg.Verify != nil {
			oracle[wkr] = blas.RefGemvPIMOrder(W, cfg.Verify.M, cfg.Verify.K, x16, cfg.VerifyGRF)
		}
	}

	body := func(wkr int) []byte {
		b, _ := json.Marshal(InferRequest{Model: cfg.Model, Input: inputs[wkr]})
		return b
	}

	shoot := func(wkr int) {
		shard := wkr % cfg.Concurrency
		start := time.Now()
		resp, err := cfg.Client.Post(cfg.BaseURL+"/v1/infer", "application/json", bytes.NewReader(body(wkr)))
		wallUs := time.Since(start).Microseconds()
		if err != nil {
			atomic.AddInt64(&failN, 1)
			return
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			atomic.AddInt64(&failN, 1)
			return
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var ir InferResponse
			if err := json.Unmarshal(raw, &ir); err != nil {
				atomic.AddInt64(&failN, 1)
				return
			}
			if cfg.Verify != nil && !outputsMatch(ir.Output, oracle[wkr]) {
				// A 200 carrying wrong data is the one outcome the fault
				// machinery may never produce; count it apart from mundane
				// failures so chaos runs can assert exactly zero.
				atomic.AddInt64(&badN, 1)
				return
			}
			atomic.AddInt64(&okN, 1)
			wallH.Observe(shard, wallUs)
			queueH.Observe(shard, ir.QueueUs)
			cycH.Observe(shard, ir.KernelCycles)
			atomic.AddInt64(&batchSum, int64(ir.BatchSize))
			if ir.BatchSize > 0 {
				// Per-request device time: the batch's kernel amortized
				// over its members.
				atomic.AddUint64(&busyNs, uint64(ir.KernelNs/float64(ir.BatchSize)))
			}
			batchMu.Lock()
			batchHist[ir.BatchSize]++
			batchMu.Unlock()
		case http.StatusTooManyRequests:
			atomic.AddInt64(&rejN, 1)
		case http.StatusGatewayTimeout:
			atomic.AddInt64(&toN, 1)
		case http.StatusServiceUnavailable:
			atomic.AddInt64(&unavN, 1)
		default:
			atomic.AddInt64(&failN, 1)
		}
	}

	// Sample the server's queue-depth gauge while the run is live.
	var maxDepth int64
	stopSampling := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopSampling:
				return
			case <-t.C:
				if d, err := fetchQueueDepth(cfg.Client, cfg.BaseURL); err == nil && d > atomic.LoadInt64(&maxDepth) {
					atomic.StoreInt64(&maxDepth, d)
				}
			}
		}
	}()

	startWall := time.Now()
	var wg sync.WaitGroup
	switch cfg.Mode {
	case "closed":
		var next int64
		for wkr := 0; wkr < cfg.Concurrency; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				for {
					if atomic.AddInt64(&next, 1) > int64(cfg.Requests) {
						return
					}
					shoot(wkr)
				}
			}(wkr)
		}
	case "open":
		interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
		t := time.NewTicker(interval)
		for i := 0; i < cfg.Requests; i++ {
			<-t.C
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				shoot(wkr)
			}(i % cfg.Concurrency)
		}
		t.Stop()
	}
	wg.Wait()
	wall := time.Since(startWall)
	close(stopSampling)
	samplerWG.Wait()

	snap := reg.Snapshot()
	wallS, queueS, cycS := snap.Histograms["wall_us"], snap.Histograms["queue_us"], snap.Histograms["kernel_cycles"]

	rep := &Report{
		Mode:        cfg.Mode,
		Model:       cfg.Model,
		Concurrency: cfg.Concurrency,
		RatePerSec:  cfg.RatePerSec,
		Sent:        cfg.Requests,
		OK:          int(okN),
		Rejected:    int(rejN),
		Timeouts:    int(toN),
		Unavailable: int(unavN),
		BadOutputs:  int(badN),
		Failures:    int(failN),
		WallSeconds: wall.Seconds(),
		WallP50Us:   wallS.Quantile(0.50),
		WallP95Us:   wallS.Quantile(0.95),
		WallP99Us:   wallS.Quantile(0.99),
		QueueP50Us:  queueS.Quantile(0.50),
		QueueP99Us:  queueS.Quantile(0.99),
		CyclesP50:   cycS.Quantile(0.50),
		CyclesP95:   cycS.Quantile(0.95),
		CyclesP99:   cycS.Quantile(0.99),

		BatchHistogram: map[string]int64{},
		MaxQueueDepth:  maxDepth,
	}
	if rep.OK > 0 {
		rep.ThroughputRPS = float64(rep.OK) / wall.Seconds()
		rep.AvgBatch = float64(batchSum) / float64(rep.OK)
		if busyNs > 0 {
			rep.SimThroughputRPS = float64(rep.OK) / (float64(busyNs) / 1e9)
		}
	}
	for b, n := range batchHist {
		rep.BatchHistogram[fmt.Sprint(b)] = n
	}
	if got := rep.OK + rep.Rejected + rep.Timeouts + rep.Unavailable + rep.BadOutputs + rep.Failures; got != rep.Sent {
		return rep, fmt.Errorf("loadgen: dropped responses: sent %d, accounted %d", rep.Sent, got)
	}
	return rep, nil
}

func outputsMatch(got []float64, want fp16.Vector) bool {
	if len(got) != len(want) {
		return false
	}
	for i, v := range got {
		if fp16.FromFloat32(float32(v)) != want[i] {
			return false
		}
	}
	return true
}

func fetchQueueDepth(c *http.Client, base string) (int64, error) {
	resp, err := c.Get(base + "/metrics.json")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, err
	}
	return snap.Gauge("serve_queue_depth"), nil
}

// String renders the report for terminals.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s loop, model %s, %d in flight", r.Mode, r.Model, r.Concurrency)
	if r.RatePerSec > 0 {
		fmt.Fprintf(&b, ", %.0f req/s offered", r.RatePerSec)
	}
	fmt.Fprintf(&b, "\n  sent %d: %d ok, %d rejected (429), %d timeouts (504), %d unavailable (503), %d bad outputs, %d failures\n",
		r.Sent, r.OK, r.Rejected, r.Timeouts, r.Unavailable, r.BadOutputs, r.Failures)
	fmt.Fprintf(&b, "  throughput  %.1f req/s wall, %.1f req/s simulated-device\n",
		r.ThroughputRPS, r.SimThroughputRPS)
	fmt.Fprintf(&b, "  wall latency  p50 %.0fus  p95 %.0fus  p99 %.0fus\n", r.WallP50Us, r.WallP95Us, r.WallP99Us)
	fmt.Fprintf(&b, "  queue wait    p50 %.0fus  p99 %.0fus   max depth %d\n", r.QueueP50Us, r.QueueP99Us, r.MaxQueueDepth)
	fmt.Fprintf(&b, "  kernel cycles p50 %.0f  p95 %.0f  p99 %.0f\n", r.CyclesP50, r.CyclesP95, r.CyclesP99)
	fmt.Fprintf(&b, "  batch size    avg %.2f  histogram %s\n", r.AvgBatch, batchHistString(r.BatchHistogram))
	return b.String()
}

func batchHistString(h map[string]int64) string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, h[k]))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

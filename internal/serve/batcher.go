package serve

import (
	"fmt"
	"net/http"
	"time"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/obs"
)

// batcher is the per-model pipeline stage between admission and the shard
// pool. It blocks on the model's queue, then collects followers until the
// batch is full (maxBatch, itself clamped to the channel count — the PIM
// kernel carries one request per pseudo channel) or BatchWait elapses,
// whichever first. It then leases a shard — blocking here is what turns a
// busy pool into queue growth and, at QueueDepth, into 429s — and hands
// the batch to a worker goroutine so the next batch can form while the
// kernel runs. Exits when the queue is closed AND drained, which is how
// Close guarantees zero dropped accepted requests.
func (s *Server) batcher(m *model) {
	defer s.wg.Done()
	// One straggler timer serves every batch this goroutine forms;
	// allocating a fresh time.Timer per flush cycle churned the heap and
	// leaned on GC to collect still-armed timers.
	var ft flushTimer
	for {
		first, ok := <-m.queue
		if !ok {
			return
		}
		s.queueDepth.Add(0, -1)
		first.qspan.End()
		batch := s.collect(m, first, &ft)
		sh := s.lease()
		if sh == nil {
			s.failBatch(batch, http.StatusServiceUnavailable, errDrainNoShards)
			continue
		}
		s.wg.Add(1)
		go s.runBatch(m, sh, batch)
	}
}

// lease blocks until a shard is free. During a drain an empty pool may
// never refill (its shards are evicted and the prober has stopped), so
// after Close the wait is bounded and nil means "fail the batch 503" —
// the zero-drop contract still holds, just with an honest error.
func (s *Server) lease() *shard {
	select {
	case sh := <-s.pool:
		return sh
	case <-s.quit:
	}
	t := time.NewTimer(s.cfg.RetryLeaseWait)
	defer t.Stop()
	select {
	case sh := <-s.pool:
		return sh
	case <-t.C:
		return nil
	}
}

var errDrainNoShards = errTxt("draining with no shard available")

type errTxt string

func (e errTxt) Error() string { return string(e) }

// failBatch answers every request in the batch with one terminal error.
func (s *Server) failBatch(batch []*request, status int, err error) {
	for _, r := range batch {
		r.resp <- response{status: status, err: err}
	}
}

// batchTimer is the minimal timer surface the batcher needs. The
// indirection (Server.newTimer) lets tests drive flushes with a
// deterministic clock instead of sleeping through real BatchWait
// windows.
type batchTimer interface {
	C() <-chan time.Time
	Reset(d time.Duration)
	Stop() bool
}

type realTimer struct{ t *time.Timer }

func newRealTimer(d time.Duration) batchTimer { return realTimer{time.NewTimer(d)} }

func (r realTimer) C() <-chan time.Time   { return r.t.C }
func (r realTimer) Reset(d time.Duration) { r.t.Reset(d) }
func (r realTimer) Stop() bool            { return r.t.Stop() }

// flushTimer reuses one batchTimer across batches with the Stop-and-drain
// discipline timer reuse requires: a Reset is only safe once the previous
// arming is stopped and any tick it parked in the channel is consumed.
// Without the drain, a tick that fired between the last queue receive and
// disarm would survive into the next batch and flush it instantly —
// collapsing every subsequent batch to size one under light load.
type flushTimer struct {
	timer batchTimer
	fired bool // the current arming's tick was received from C
}

func (f *flushTimer) arm(newTimer func(time.Duration) batchTimer, d time.Duration) <-chan time.Time {
	if f.timer == nil {
		f.timer = newTimer(d)
	} else {
		f.timer.Reset(d)
	}
	f.fired = false
	return f.timer.C()
}

// expired records that the current arming's tick was consumed, so disarm
// knows there is nothing left to drain.
func (f *flushTimer) expired() { f.fired = true }

// disarm stops the timer after a batch completes. Stop reporting false
// with no tick consumed means the tick is parked in the channel (old
// asynchronous-timer semantics) — drain it non-blockingly, which is also
// correct under Go 1.23+ synchronous timers where Stop discards the tick.
func (f *flushTimer) disarm() {
	if f.timer == nil {
		return
	}
	if !f.timer.Stop() && !f.fired {
		select {
		case <-f.timer.C():
		default:
		}
	}
}

// collect gathers up to maxBatch-1 followers behind first, waiting at
// most the model's straggler deadline (ModelSpec.BatchWait, falling back
// to Config.BatchWait). A closed queue flushes immediately.
func (s *Server) collect(m *model, first *request, ft *flushTimer) []*request {
	batch := []*request{first}
	if m.maxBatch <= 1 {
		return batch
	}
	tick := ft.arm(s.newTimer, m.wait)
	defer ft.disarm()
	for len(batch) < m.maxBatch {
		select {
		case r, ok := <-m.queue:
			if !ok {
				return batch
			}
			s.queueDepth.Add(0, -1)
			r.qspan.End()
			batch = append(batch, r)
		case <-tick:
			ft.expired()
			return batch
		}
	}
	return batch
}

// runBatch is the worker: it owns a leased shard for one kernel launch,
// and on a retryable device fault (uncorrectable ECC error, shard
// outage) re-dispatches the surviving requests to another shard — up to
// MaxRetries times with exponential, jittered backoff. Requests whose
// context expired are answered 504 and never touch a device; every
// other request gets exactly one terminal response here.
func (s *Server) runBatch(m *model, sh *shard, batch []*request) {
	defer s.wg.Done()

	live := batch
	for attempt := 0; ; attempt++ {
		// Re-filter per attempt: a deadline can expire during backoff.
		now := time.Now()
		kept := live[:0]
		for _, r := range live {
			if r.ctx.Err() != nil {
				r.resp <- response{status: http.StatusGatewayTimeout, err: r.ctx.Err()}
				continue
			}
			kept = append(kept, r)
		}
		live = kept
		if len(live) == 0 {
			s.pool <- sh
			return
		}

		// Exec spans: one child per request (each hangs off its own root),
		// closed with the kernel's cycle cost and phase breakdown. All
		// attribute construction sits behind the tracer check.
		var execs []obs.SpanHandle
		if s.tracer != nil {
			execs = make([]obs.SpanHandle, len(live))
			for i, r := range live {
				execs[i] = r.root.Child("exec").WithShard(sh.id)
			}
			sh.rt.BeginPhaseObs()
		}
		ys, ks, err := s.attempt(m, sh, live)
		if s.tracer != nil {
			pb := sh.rt.TakePhaseObs()
			attrs := fmt.Sprintf("attempt=%d batch=%d %s", attempt, len(live), pb.Summary())
			for _, h := range execs {
				h.EndWith(ks.Cycles, attrs, err)
			}
		}
		if err == nil {
			kernelNs := sh.rt.Cfg.Timing.CyclesToNs(ks.Cycles)
			s.noteSuccess(m, sh, ks.Cycles)
			s.pool <- sh
			s.reply(sh.id, live, ys, ks, kernelNs, now)
			return
		}

		canRetry := retryable(err) && attempt < s.cfg.MaxRetries
		failedShard := sh.id
		s.recoverShard(sh)     // the abort left banks open / PIM mode on
		s.noteFailure(sh, err) // hands the shard to the pool or the prober
		if !canRetry {
			s.failBatch(live, statusFor(err), err)
			return
		}
		s.retries.Inc(0)
		s.redispatched.Add(0, int64(len(live)))
		if s.tracer != nil {
			for _, r := range live {
				s.tracer.Event(r.id, "redispatch",
					fmt.Sprintf("attempt=%d shard=%d err=%v", attempt, failedShard, err))
			}
		}
		time.Sleep(s.backoff(attempt))
		if sh = s.leaseRetry(); sh == nil {
			s.failBatch(live, http.StatusServiceUnavailable, err)
			return
		}
	}
}

// attempt runs one kernel launch for the batch on one shard, folding
// the shard's ECC counter movement into the serving metrics either way.
func (s *Server) attempt(m *model, sh *shard, live []*request) ([]fp16.Vector, blas.KernelStats, error) {
	if sh.inj != nil {
		if err := sh.inj.BatchErr(); err != nil {
			return nil, blas.KernelStats{}, err
		}
	}
	xs := make([]fp16.Vector, len(live))
	for i, r := range live {
		xs[i] = r.x
	}
	ys, ks, err := sh.loaded[m.spec.Name].RunBatch(sh.rt, xs)
	s.collectShardECC(sh)
	return ys, ks, err
}

// reply delivers the batch's success responses and accounts metrics.
func (s *Server) reply(shardID int, live []*request, ys []fp16.Vector, ks blas.KernelStats, kernelNs float64, now time.Time) {
	s.batches.Inc(0)
	s.deviceCycles.Add(0, ks.Cycles)
	s.served.Add(0, int64(len(live)))
	s.batchSize.Observe(0, int64(len(live)))
	s.kernelCyc.Observe(0, ks.Cycles)
	for i, r := range live {
		waitUs := now.Sub(r.enq).Microseconds()
		s.queueWait.Observe(0, waitUs)
		r.resp <- response{
			y:            ys[i],
			status:       http.StatusOK,
			batch:        len(live),
			shard:        shardID,
			kernelCycles: ks.Cycles,
			kernelNs:     kernelNs,
			queueUs:      waitUs,
		}
	}
}

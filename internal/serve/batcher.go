package serve

import (
	"fmt"
	"net/http"
	"time"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/obs"
)

// batcher is the per-model pipeline stage between admission and the shard
// pool. It blocks on the model's fair queue (WFQ across tenant lanes, EDF
// within a lane — see qos.go), then collects followers until the batch is
// full (maxBatch, itself clamped to the channel count — the PIM kernel
// carries one request per pseudo channel) or BatchWait elapses, whichever
// first. It then leases a shard — blocking here is what turns a busy pool
// into queue growth and, at QueueDepth, into 429s — and hands the batch
// to a worker goroutine so the next batch can form while the kernel runs.
// Exits when the queue is closed AND drained, which is how Close
// guarantees zero dropped accepted requests.
//
// Concurrency contract: this goroutine is the queue's only consumer; the
// fairQueue notify protocol (qos.go) depends on that.
func (s *Server) batcher(m *model) {
	defer s.wg.Done()
	// One straggler timer serves every batch this goroutine forms;
	// allocating a fresh time.Timer per flush cycle churned the heap and
	// leaned on GC to collect still-armed timers.
	var ft flushTimer
	for {
		first, ok := m.q.popWait()
		if !ok {
			return
		}
		s.queueDepth.Add(0, -1)
		first.qspan.End()
		batch := s.collect(m, first, &ft)
		sh := s.lease()
		if sh == nil {
			s.failBatch(batch, http.StatusServiceUnavailable, errDrainNoShards)
			continue
		}
		s.wg.Add(1)
		go s.runBatch(m, sh, batch)
	}
}

// lease blocks until a shard is free. During a drain an empty pool may
// never refill (its shards are evicted and the prober has stopped), so
// after Close the wait is bounded and nil means "fail the batch 503" —
// the zero-drop contract still holds, just with an honest error.
func (s *Server) lease() *shard {
	select {
	case sh := <-s.pool:
		return sh
	case <-s.quit:
	}
	t := time.NewTimer(s.cfg.RetryLeaseWait)
	defer t.Stop()
	select {
	case sh := <-s.pool:
		return sh
	case <-t.C:
		return nil
	}
}

// tryLease grabs a shard only if one is idle right now — the hedge path
// must never steal capacity a queued batch is already waiting for.
func (s *Server) tryLease() *shard {
	select {
	case sh := <-s.pool:
		return sh
	default:
		return nil
	}
}

var errDrainNoShards = errTxt("draining with no shard available")

type errTxt string

func (e errTxt) Error() string { return string(e) }

// failBatch answers every request in the batch with one terminal error.
func (s *Server) failBatch(batch []*request, status int, err error) {
	for _, r := range batch {
		r.resp <- response{status: status, err: err}
	}
}

// batchTimer is the minimal timer surface the batcher needs. The
// indirection (Server.newTimer) lets tests drive flushes with a
// deterministic clock instead of sleeping through real BatchWait
// windows.
type batchTimer interface {
	C() <-chan time.Time
	Reset(d time.Duration)
	Stop() bool
}

type realTimer struct{ t *time.Timer }

func newRealTimer(d time.Duration) batchTimer { return realTimer{time.NewTimer(d)} }

func (r realTimer) C() <-chan time.Time   { return r.t.C }
func (r realTimer) Reset(d time.Duration) { r.t.Reset(d) }
func (r realTimer) Stop() bool            { return r.t.Stop() }

// flushTimer reuses one batchTimer across batches with the Stop-and-drain
// discipline timer reuse requires: a Reset is only safe once the previous
// arming is stopped and any tick it parked in the channel is consumed.
// Without the drain, a tick that fired between the last queue receive and
// disarm would survive into the next batch and flush it instantly —
// collapsing every subsequent batch to size one under light load.
type flushTimer struct {
	timer batchTimer
	fired bool // the current arming's tick was received from C
}

func (f *flushTimer) arm(newTimer func(time.Duration) batchTimer, d time.Duration) <-chan time.Time {
	if f.timer == nil {
		f.timer = newTimer(d)
	} else {
		f.timer.Reset(d)
	}
	f.fired = false
	return f.timer.C()
}

// expired records that the current arming's tick was consumed, so disarm
// knows there is nothing left to drain.
func (f *flushTimer) expired() { f.fired = true }

// disarm stops the timer after a batch completes. Stop reporting false
// with no tick consumed means the tick is parked in the channel (old
// asynchronous-timer semantics) — drain it non-blockingly, which is also
// correct under Go 1.23+ synchronous timers where Stop discards the tick.
func (f *flushTimer) disarm() {
	if f.timer == nil {
		return
	}
	if !f.timer.Stop() && !f.fired {
		select {
		case <-f.timer.C():
		default:
		}
	}
}

// collect gathers up to maxBatch-1 followers behind first, waiting at
// most the model's straggler deadline (ModelSpec.BatchWait, falling back
// to Config.BatchWait). Followers pop in WFQ/EDF order, so the batch is
// deadline-sorted across tenants. A closed queue flushes immediately.
func (s *Server) collect(m *model, first *request, ft *flushTimer) []*request {
	batch := []*request{first}
	if m.maxBatch <= 1 {
		return batch
	}
	tick := ft.arm(s.newTimer, m.wait)
	defer ft.disarm()
	for len(batch) < m.maxBatch {
		if r, ok := m.q.tryPop(); ok {
			s.queueDepth.Add(0, -1)
			r.qspan.End()
			batch = append(batch, r)
			continue
		}
		if m.q.drained() {
			return batch
		}
		select {
		case <-m.q.notify:
			// State changed: new work, or the queue closed. Re-check.
		case <-tick:
			ft.expired()
			return batch
		}
	}
	return batch
}

// runBatch is the worker: it owns a leased shard for one kernel launch,
// and on a retryable device fault (uncorrectable ECC error, shard
// outage) re-dispatches the surviving requests to another shard — up to
// MaxRetries times with exponential, jittered backoff. Requests whose
// context expired are answered 504 (reason deadline-expired) and never
// touch a device; every other request gets exactly one terminal response
// here. With HedgeDelay set, a straggling attempt is duplicated onto an
// idle shard and the first result wins (see dispatch).
func (s *Server) runBatch(m *model, sh *shard, batch []*request) {
	defer s.wg.Done()

	live := batch
	for attempt := 0; ; attempt++ {
		// Re-filter per attempt: a deadline can expire during backoff.
		now := time.Now()
		kept := live[:0]
		for _, r := range live {
			if r.ctx.Err() != nil {
				r.ten.shed[ShedDeadlineExpired].Inc(0)
				s.shedTotal.Inc(0)
				r.resp <- response{status: http.StatusGatewayTimeout,
					err: &ShedError{Reason: ShedDeadlineExpired, Detail: r.ctx.Err().Error()}}
				continue
			}
			kept = append(kept, r)
		}
		live = kept
		if len(live) == 0 {
			s.pool <- sh
			return
		}

		primary := sh.id
		ys, ks, winner, err := s.dispatch(m, sh, live, attempt)
		if err == nil {
			kernelNs := winner.rt.Cfg.Timing.CyclesToNs(ks.Cycles)
			s.noteSuccess(m, winner, ks.Cycles)
			s.pool <- winner
			s.reply(winner.id, live, ys, ks, kernelNs, now)
			return
		}

		// dispatch already ran the failed shard(s) through the health
		// machine; this loop only decides whether the batch retries.
		canRetry := retryable(err) && attempt < s.cfg.MaxRetries
		if !canRetry {
			s.failBatch(live, statusFor(err), err)
			return
		}
		s.retries.Inc(0)
		s.redispatched.Add(0, int64(len(live)))
		if s.tracer != nil {
			for _, r := range live {
				s.tracer.Event(r.id, "redispatch",
					fmt.Sprintf("attempt=%d shard=%d err=%v", attempt, primary, err))
			}
		}
		time.Sleep(s.backoff(attempt))
		if sh = s.leaseRetry(); sh == nil {
			s.failBatch(live, http.StatusServiceUnavailable, err)
			return
		}
	}
}

// dispatchResult is one attempt's outcome inside dispatch.
type dispatchResult struct {
	ys  []fp16.Vector
	ks  blas.KernelStats
	err error
	sh  *shard
}

// dispatch runs one batch attempt, hedging it onto an idle shard when
// the primary straggles past Config.HedgeDelay. The first success wins
// (the simulated kernels are deterministic, so primary and hedge results
// are bit-identical — hedging can only cut tail latency, never change
// answers); a still-running loser is reaped in the background. Contract:
// on success the returned shard is the winner and still ours to return
// to the pool; on error every shard this call leased has already been
// handed to the health machine (recoverShard + noteFailure).
func (s *Server) dispatch(m *model, sh *shard, live []*request, attempt int) ([]fp16.Vector, blas.KernelStats, *shard, error) {
	// The hedge delay is per-model and live: seeded from Config.HedgeDelay
	// and retargeted each evaluation by the SLO engine's controller when
	// one is armed (sloTick), so a model whose windowed p99 degrades hedges
	// sooner without a restart.
	hedgeDelay := time.Duration(m.hedgeNs.Load())
	if hedgeDelay <= 0 {
		ys, ks, err := s.attemptTraced(m, sh, live, attempt, true)
		if err != nil {
			s.recoverShard(sh)
			s.noteFailure(sh, err)
			return nil, blas.KernelStats{}, nil, err
		}
		return ys, ks, sh, nil
	}

	results := make(chan dispatchResult, 2)
	run := func(sh *shard, spans bool) {
		ys, ks, err := s.attemptTraced(m, sh, live, attempt, spans)
		results <- dispatchResult{ys: ys, ks: ks, err: err, sh: sh}
	}
	launched := 1
	go run(sh, true)

	ht := s.newHedgeTimer(hedgeDelay)
	defer ht.Stop()
	hedgeTick := ht.C()

	var firstFail *dispatchResult
	for launched > 0 {
		select {
		case r := <-results:
			launched--
			if r.err == nil {
				if r.sh != sh {
					s.hedgeWins.Inc(0)
				}
				if launched > 0 {
					s.reapLoser(m, results)
				}
				if firstFail != nil {
					// The other attempt already failed; its shard goes
					// through the health machine like any failed batch.
					s.recoverShard(firstFail.sh)
					s.noteFailure(firstFail.sh, firstFail.err)
				}
				return r.ys, r.ks, r.sh, nil
			}
			if firstFail == nil {
				cp := r
				firstFail = &cp
			} else {
				s.recoverShard(r.sh)
				s.noteFailure(r.sh, r.err)
			}
		case <-hedgeTick:
			hedgeTick = nil // one hedge per attempt
			if firstFail != nil {
				continue // primary already failed; a duplicate won't help
			}
			if spare := s.tryLease(); spare != nil {
				s.hedges.Inc(0)
				launched++
				go run(spare, false)
			}
		}
	}
	// Every launched attempt failed; account the first failure here and
	// report it (later failures were accounted as they arrived).
	s.recoverShard(firstFail.sh)
	s.noteFailure(firstFail.sh, firstFail.err)
	return nil, blas.KernelStats{}, nil, firstFail.err
}

// reapLoser waits (in the background, tracked by the drain WaitGroup)
// for the losing hedge attempt and routes its shard home: to the pool on
// success, through the health machine on failure.
func (s *Server) reapLoser(m *model, results chan dispatchResult) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		r := <-results
		if r.err == nil {
			s.noteSuccess(m, r.sh, r.ks.Cycles)
			s.pool <- r.sh
			return
		}
		s.recoverShard(r.sh)
		s.noteFailure(r.sh, r.err)
	}()
}

// attemptTraced wraps attempt with the per-request exec spans. Hedge
// attempts pass spans=false: only the primary records spans, so a
// request never carries two concurrent exec children.
func (s *Server) attemptTraced(m *model, sh *shard, live []*request, attempt int, spans bool) ([]fp16.Vector, blas.KernelStats, error) {
	var execs []obs.SpanHandle
	traced := spans && s.tracer != nil
	if traced {
		execs = make([]obs.SpanHandle, len(live))
		for i, r := range live {
			execs[i] = r.root.Child("exec").WithShard(sh.id)
		}
		sh.rt.BeginPhaseObs()
	}
	ys, ks, err := s.attempt(m, sh, live)
	if traced {
		pb := sh.rt.TakePhaseObs()
		attrs := fmt.Sprintf("attempt=%d batch=%d %s", attempt, len(live), pb.Summary())
		for _, h := range execs {
			h.EndWith(ks.Cycles, attrs, err)
		}
	}
	return ys, ks, err
}

// attempt runs one kernel launch for the batch on one shard, folding
// the shard's ECC counter movement into the serving metrics either way.
func (s *Server) attempt(m *model, sh *shard, live []*request) ([]fp16.Vector, blas.KernelStats, error) {
	if sh.inj != nil {
		if err := sh.inj.BatchErr(); err != nil {
			return nil, blas.KernelStats{}, err
		}
	}
	xs := make([]fp16.Vector, len(live))
	for i, r := range live {
		xs[i] = r.x
	}
	ys, ks, err := sh.loaded[m.spec.Name].RunBatch(sh.rt, xs)
	s.collectShardECC(sh)
	return ys, ks, err
}

// reply delivers the batch's success responses and accounts metrics.
func (s *Server) reply(shardID int, live []*request, ys []fp16.Vector, ks blas.KernelStats, kernelNs float64, now time.Time) {
	s.batches.Inc(0)
	s.deviceCycles.Add(0, ks.Cycles)
	s.served.Add(0, int64(len(live)))
	s.batchSize.Observe(0, int64(len(live)))
	s.winBatch.Observe(int64(len(live)))
	s.kernelCyc.Observe(0, ks.Cycles)
	for i, r := range live {
		waitUs := now.Sub(r.enq).Microseconds()
		s.queueWait.Observe(0, waitUs)
		r.ten.served.Inc(0)
		r.ten.queueWait.Observe(0, waitUs)
		r.resp <- response{
			y:            ys[i],
			status:       http.StatusOK,
			batch:        len(live),
			shard:        shardID,
			kernelCycles: ks.Cycles,
			kernelNs:     kernelNs,
			queueUs:      waitUs,
		}
	}
}

package serve

import (
	"net/http"
	"time"

	"pimsim/internal/fp16"
)

// batcher is the per-model pipeline stage between admission and the shard
// pool. It blocks on the model's queue, then collects followers until the
// batch is full (maxBatch, itself clamped to the channel count — the PIM
// kernel carries one request per pseudo channel) or BatchWait elapses,
// whichever first. It then leases a shard — blocking here is what turns a
// busy pool into queue growth and, at QueueDepth, into 429s — and hands
// the batch to a worker goroutine so the next batch can form while the
// kernel runs. Exits when the queue is closed AND drained, which is how
// Close guarantees zero dropped accepted requests.
func (s *Server) batcher(m *model) {
	defer s.wg.Done()
	for {
		first, ok := <-m.queue
		if !ok {
			return
		}
		s.queueDepth.Add(0, -1)
		batch := s.collect(m, first)
		sh := <-s.pool
		s.wg.Add(1)
		go s.runBatch(m, sh, batch)
	}
}

// collect gathers up to maxBatch-1 followers behind first, waiting at
// most BatchWait for stragglers. A closed queue flushes immediately.
func (s *Server) collect(m *model, first *request) []*request {
	batch := []*request{first}
	if m.maxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWait)
	defer timer.Stop()
	for len(batch) < m.maxBatch {
		select {
		case r, ok := <-m.queue:
			if !ok {
				return batch
			}
			s.queueDepth.Add(0, -1)
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// runBatch is the worker: it owns the leased shard for one kernel launch.
// Requests whose context expired while queued are answered 504 and never
// touch the device; the survivors run as one ResidentGemv batch, one
// request per channel.
func (s *Server) runBatch(m *model, sh *shard, batch []*request) {
	defer s.wg.Done()
	defer func() { s.pool <- sh }()

	now := time.Now()
	live := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			r.resp <- response{status: http.StatusGatewayTimeout, err: r.ctx.Err()}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}

	xs := make([]fp16.Vector, len(live))
	for i, r := range live {
		xs[i] = r.x
	}
	ys, ks, err := sh.loaded[m.spec.Name].RunBatch(sh.rt, xs)
	if err != nil {
		for _, r := range live {
			r.resp <- response{status: http.StatusInternalServerError, err: err}
		}
		return
	}

	kernelNs := sh.rt.Cfg.Timing.CyclesToNs(ks.Cycles)
	s.batches.Inc(0)
	s.deviceCycles.Add(0, ks.Cycles)
	s.served.Add(0, int64(len(live)))
	s.batchSize.Observe(0, int64(len(live)))
	s.kernelCyc.Observe(0, ks.Cycles)
	for i, r := range live {
		waitUs := now.Sub(r.enq).Microseconds()
		s.queueWait.Observe(0, waitUs)
		r.resp <- response{
			y:            ys[i],
			status:       http.StatusOK,
			batch:        len(live),
			shard:        sh.id,
			kernelCycles: ks.Cycles,
			kernelNs:     kernelNs,
			queueUs:      waitUs,
		}
	}
}

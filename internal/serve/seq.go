package serve

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/models"
	"pimsim/internal/nn"
	"pimsim/internal/obs"
)

// Continuous batching for sequence models.
//
// The flush-on-size batcher (batcher.go) is the wrong shape for
// recurrent models: a sequence is not one kernel launch but T dependent
// timesteps, and forming fixed batches would force every member to enter
// and leave together — a long sequence would hold short ones hostage
// (head-of-line blocking) and a short one would strand its channel idle
// for the rest of the batch. The stepper instead runs a *step loop*: it
// leases a shard while at least one sequence is in flight, assigns each
// sequence a slot (= pseudo channel; its recurrent state lives in that
// channel's nn.Resident), and between timesteps admits newly arrived
// sequences into free slots and retires finished ones (frames exhausted
// or EOS argmax). Device occupancy tracks offered load step by step
// instead of batch boundary by batch boundary.
//
// Fault handling preserves the serving contract (no accepted request
// lost, no wrong data): StepSlots stages its state commit, so a step
// that dies mid-layer leaves every slot's recurrence pristine. On a
// retryable fault the stepper exports all live slot states, hands the
// shard to the health machine, leases a replacement, imports the states
// into the same slot indices, and re-executes the step — a mid-sequence
// migration the client only sees as latency (and a migrations count in
// the response).

// seqModel is one continuously batched sequence workload.
type seqModel struct {
	cfg   models.Config
	plan  *nn.Plan
	q     *fairQueue[*seqRequest] // WFQ admission queue (qos.go)
	depth int                     // configured queue bound
	admit int                     // max concurrently active slots (Config.SeqAdmit)
}

// seqRequest is one admitted sequence on its way through the step loop.
type seqRequest struct {
	ctx    context.Context
	frames []fp16.Vector
	eos    int // class index that retires the sequence early; -1 disables
	ten    *tenant
	enq    time.Time
	resp   chan seqResponse

	id    string
	root  obs.SpanHandle
	qspan obs.SpanHandle
}

// seqResponse is the terminal outcome of one sequence request.
type seqResponse struct {
	steps      []fp16.Vector // logits per executed step
	err        error
	status     int
	shard      int
	cycles     int64   // device cycles attributed to this sequence (share of each step)
	ns         float64 // the same, in nanoseconds
	queueUs    int64
	migrations int
	eosAt      int // step index that hit EOS, -1 otherwise
}

// seqSlot is one occupied slot of the running step loop.
type seqSlot struct {
	req        *seqRequest
	admitted   time.Time // when the sequence entered a slot (queue wait ends)
	pos        int       // frames consumed
	out        []fp16.Vector
	cycles     int64
	migrations int
}

// enqueueSeq admits one sequence into its model's fair queue, mirroring
// enqueue's taxonomy: 404 unknown model, 400 wrong shape, 429 full
// queue (*ShedError with reason), 503 draining or no healthy shards.
func (s *Server) enqueueSeq(ctx context.Context, name, tenantName string, frames []fp16.Vector, eos int, enq time.Time, id string, root obs.SpanHandle) (*seqRequest, int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server draining")
	}
	m := s.seqMods[name]
	if m == nil {
		if s.mods[name] != nil {
			return nil, http.StatusBadRequest,
				fmt.Errorf("model %q is a gemv model: post input, not frames", name)
		}
		return nil, http.StatusNotFound, fmt.Errorf("unknown model %q", name)
	}
	if len(frames) > s.cfg.MaxSeqLen {
		return nil, http.StatusBadRequest,
			fmt.Errorf("sequence of %d frames exceeds the %d-frame cap", len(frames), s.cfg.MaxSeqLen)
	}
	for t, f := range frames {
		if len(f) != m.cfg.Input {
			return nil, http.StatusBadRequest,
				fmt.Errorf("model %s takes %d-element frames, frame %d has %d", name, m.cfg.Input, t, len(f))
		}
	}
	if eos >= m.cfg.Output {
		return nil, http.StatusBadRequest,
			fmt.Errorf("eos class %d out of range (model %s has %d outputs)", eos, name, m.cfg.Output)
	}
	healthy := int(s.healthy.Load())
	if healthy <= 0 {
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("no healthy shards (probation probes running)")
	}
	ten := s.tenantFor(tenantName)
	req := &seqRequest{ctx: ctx, frames: frames, eos: eos, ten: ten, enq: enq,
		resp: make(chan seqResponse, 1), id: id, root: root}
	req.qspan = root.Child("queue")
	if ok, reason := m.q.push(req, ten, m.depth); !ok {
		ten.shed[reason].Inc(0)
		s.shedTotal.Inc(0)
		return nil, http.StatusTooManyRequests, &ShedError{
			Reason: reason,
			Detail: fmt.Sprintf("model %s admission queue full for tenant %s (%d deep)", name, ten.spec.Name, m.depth),
		}
	}
	s.seqAdmitted.Inc(0)
	ten.admitted.Inc(0)
	s.queueDepth.Add(0, 1)
	s.winAdmit.Inc()
	s.slo.RecordAdmit(ten.spec.Name, name)
	return req, http.StatusOK, nil
}

// stepper is the per-sequence-model pipeline stage: each blocking
// receive starts one continuous-batching episode (runSeq), which owns a
// shard until every admitted sequence has retired. Exits when the queue
// is closed and drained — the zero-drop contract, same as batcher. Like
// the batcher, the stepper is its fair queue's only consumer.
func (s *Server) stepper(m *seqModel) {
	defer s.wg.Done()
	for {
		first, ok := m.q.popWait()
		if !ok {
			return
		}
		s.queueDepth.Add(0, -1)
		first.qspan.End()
		s.runSeq(m, first)
	}
}

// runSeq drives the step loop for one episode.
func (s *Server) runSeq(m *seqModel, first *seqRequest) {
	sh := s.lease()
	if sh == nil {
		first.resp <- seqResponse{status: http.StatusServiceUnavailable, err: errDrainNoShards}
		return
	}
	r := sh.seq[m.cfg.Name]
	slots := make([]*seqSlot, r.Slots())
	active := 0

	reply := func(i int, resp seqResponse) {
		sl := slots[i]
		resp.shard = sh.id
		resp.cycles = sl.cycles
		resp.ns = sh.rt.Cfg.Timing.CyclesToNs(sl.cycles)
		resp.migrations = sl.migrations
		resp.queueUs = sl.admitted.Sub(sl.req.enq).Microseconds()
		sl.req.resp <- resp
		slots[i] = nil
		active--
	}

	admitOne := func(req *seqRequest) {
		if req.ctx.Err() != nil {
			// Shed before the sequence ever touches a slot: the deadline
			// expired while queued.
			req.ten.shed[ShedDeadlineExpired].Inc(0)
			s.shedTotal.Inc(0)
			req.resp <- seqResponse{status: http.StatusGatewayTimeout, eosAt: -1,
				err: &ShedError{Reason: ShedDeadlineExpired, Detail: req.ctx.Err().Error()}}
			return
		}
		for i := range slots {
			if slots[i] != nil {
				continue
			}
			_ = r.ResetSlot(i)
			slots[i] = &seqSlot{req: req, admitted: time.Now()}
			active++
			waitUs := time.Since(req.enq).Microseconds()
			s.queueWait.Observe(0, waitUs)
			req.ten.queueWait.Observe(0, waitUs)
			return
		}
	}

	pending := first
	stepRetries := 0
	for {
		// Admission window: between timesteps, fill free slots (bounded by
		// SeqAdmit) from the fair queue without blocking the running loop.
		// Pops arrive in WFQ/EDF order, so slots go to the tenant whose
		// turn it is and, within a tenant, to the tightest deadline.
		for active < m.admit {
			var req *seqRequest
			if pending != nil {
				req, pending = pending, nil
			} else {
				q, ok := m.q.tryPop()
				if !ok {
					break // empty (or closed and drained): run what's here
				}
				s.queueDepth.Add(0, -1)
				q.qspan.End()
				req = q
			}
			admitOne(req)
		}
		// Per-step deadline: a sequence whose context expired mid-flight is
		// answered 504 now; its remaining steps never touch the device.
		for i, sl := range slots {
			if sl != nil && sl.req.ctx.Err() != nil {
				reply(i, seqResponse{status: http.StatusGatewayTimeout, err: sl.req.ctx.Err(),
					steps: sl.out, eosAt: -1})
			}
		}
		if active == 0 {
			break
		}

		xs := make([]fp16.Vector, len(slots))
		for i, sl := range slots {
			if sl != nil {
				xs[i] = sl.req.frames[sl.pos]
			}
		}
		logits, ks, err := s.attemptStep(m, sh, r, xs)
		if err != nil {
			sh, r = s.migrateSeq(m, sh, slots, &active, err, stepRetries)
			if sh == nil {
				return // every slot was answered by migrateSeq
			}
			stepRetries++
			continue // re-execute the step: the staged commit kept state pristine
		}
		stepRetries = 0

		s.seqSteps.Inc(0)
		s.deviceCycles.Add(0, ks.Cycles)
		s.seqStepCyc.Observe(0, ks.Cycles)
		s.seqOccupancy.Observe(0, int64(active))
		share := ks.Cycles / int64(active)
		for i, sl := range slots {
			if sl == nil {
				continue
			}
			sl.out = append(sl.out, logits[i])
			sl.cycles += share
			sl.pos++
			eosHit := sl.req.eos >= 0 && nn.Argmax(logits[i]) == sl.req.eos
			if eosHit || sl.pos == len(sl.req.frames) {
				eosAt := -1
				if eosHit {
					eosAt = sl.pos - 1
					s.seqEOS.Inc(0)
				}
				s.seqCompleted.Inc(0)
				s.served.Inc(0)
				sl.req.ten.served.Inc(0)
				reply(i, seqResponse{steps: sl.out, status: http.StatusOK, eosAt: eosAt})
			}
		}
	}
	s.pool <- sh
}

// attemptStep runs one timestep on the leased shard, arming the fault
// injector and folding ECC counters exactly like the batch path.
func (s *Server) attemptStep(m *seqModel, sh *shard, r *nn.Resident, xs []fp16.Vector) ([]fp16.Vector, blas.KernelStats, error) {
	if sh.inj != nil {
		if err := sh.inj.BatchErr(); err != nil {
			return nil, blas.KernelStats{}, err
		}
	}
	logits, ks, err := r.StepSlots(sh.rt, xs)
	s.collectShardECC(sh)
	return logits, ks, err
}

// migrateSeq handles a failed step: dispose of the faulted shard via the
// health machine, and — if the error is retryable and the retry budget
// holds — move every live sequence's recurrent state to a replacement
// shard so the step can re-execute there. Returns the new shard and
// resident, or (nil, nil) after answering every live slot with a
// terminal error. Either way the old shard has been handed away.
func (s *Server) migrateSeq(m *seqModel, sh *shard, slots []*seqSlot, active *int, stepErr error, attempt int) (*shard, *nn.Resident) {
	fail := func(status int, err error) {
		for i, sl := range slots {
			if sl == nil {
				continue
			}
			sl.req.resp <- seqResponse{status: status, err: err, steps: sl.out,
				shard: sh.id, cycles: sl.cycles, migrations: sl.migrations, eosAt: -1}
			slots[i] = nil
			*active -= 1
		}
	}
	canRetry := retryable(stepErr) && attempt < s.cfg.MaxRetries
	var states map[int]*nn.SlotState
	if canRetry {
		// Export before the shard leaves our hands: after noteFailure the
		// prober may own it.
		r := sh.seq[m.cfg.Name]
		states = make(map[int]*nn.SlotState, *active)
		for i, sl := range slots {
			if sl == nil {
				continue
			}
			st, err := r.ExportState(i)
			if err != nil {
				canRetry = false
				break
			}
			states[i] = st
		}
	}
	failedShard := sh.id
	s.recoverShard(sh)
	s.noteFailure(sh, stepErr)
	if !canRetry {
		fail(statusFor(stepErr), stepErr)
		return nil, nil
	}
	s.retries.Inc(0)
	if s.tracer != nil {
		for _, sl := range slots {
			if sl != nil {
				s.tracer.Event(sl.req.id, "migrate",
					fmt.Sprintf("attempt=%d shard=%d err=%v", attempt, failedShard, stepErr))
			}
		}
	}
	time.Sleep(s.backoff(attempt))
	next := s.leaseRetry()
	if next == nil {
		fail(http.StatusServiceUnavailable, stepErr)
		return nil, nil
	}
	r := next.seq[m.cfg.Name]
	migrated := int64(0)
	for i, sl := range slots {
		if sl == nil {
			continue
		}
		_ = r.ResetSlot(i)
		if err := r.ImportState(i, states[i]); err != nil {
			// Cannot happen for same-plan residents; fail honestly if it does.
			s.recoverShard(next)
			s.noteFailure(next, err)
			fail(http.StatusInternalServerError, err)
			return nil, nil
		}
		sl.migrations++
		migrated++
	}
	s.seqMigrations.Add(0, migrated)
	return next, r
}

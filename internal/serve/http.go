package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"pimsim/internal/fp16"
	"pimsim/internal/obs"
)

// InferRequest is the POST /v1/infer body. Exactly one of Input (a single
// K-element vector), Inputs (a batch of them), or Frames (a sequence for
// a continuously batched sequence model) must be set. TimeoutMs can only
// tighten the server's RequestTimeout, never extend it.
type InferRequest struct {
	Model     string      `json:"model"`
	Input     []float64   `json:"input,omitempty"`
	Inputs    [][]float64 `json:"inputs,omitempty"`
	TimeoutMs int         `json:"timeout_ms,omitempty"`

	// Tenant selects the QoS lane (Config.Tenants). The X-Tenant header
	// is the fallback when this field is empty; unknown or absent names
	// land in the "default" lane.
	Tenant string `json:"tenant,omitempty"`

	// Sequence form: Frames is the ordered input-frame list; EOS, when
	// set, names the output class whose argmax retires the sequence
	// before its frames run out.
	Frames [][]float64 `json:"frames,omitempty"`
	EOS    *int        `json:"eos,omitempty"`
}

// InferResponse is the success body. Single-input requests fill the
// scalar fields; batched requests fill the per-input slices. BatchSize is
// the size of the device batch the request was packed into (other
// clients' requests included), not the request's own input count.
type InferResponse struct {
	Model   string      `json:"model"`
	Output  []float64   `json:"output,omitempty"`
	Outputs [][]float64 `json:"outputs,omitempty"`

	BatchSize    int     `json:"batch_size,omitempty"`
	Shard        int     `json:"shard,omitempty"`
	KernelCycles int64   `json:"kernel_cycles,omitempty"`
	KernelNs     float64 `json:"kernel_ns,omitempty"`
	QueueUs      int64   `json:"queue_us,omitempty"`

	BatchSizes   []int     `json:"batch_sizes,omitempty"`
	Shards       []int     `json:"shards,omitempty"`
	KernelCycled []int64   `json:"kernel_cycles_each,omitempty"`
	KernelNsEach []float64 `json:"kernel_ns_each,omitempty"`
	QueueUsEach  []int64   `json:"queue_us_each,omitempty"`

	// Sequence responses: per-step logits, executed step count (short of
	// len(frames) when EOS retired the sequence), the step index that hit
	// EOS, attributed device time, and how many times the sequence
	// migrated shards mid-flight.
	Steps        int         `json:"steps,omitempty"`
	StepOutputs  [][]float64 `json:"step_outputs,omitempty"`
	EOSStep      *int        `json:"eos_step,omitempty"`
	DeviceCycles int64       `json:"device_cycles,omitempty"`
	DeviceNs     float64     `json:"device_ns,omitempty"`
	Migrations   int         `json:"migrations,omitempty"`
}

// ErrorResponse is the body of every non-200 reply. Reason is the
// machine-readable shed taxonomy on 429/504 responses ("queue-full",
// "shed-by-priority", "deadline-expired") so load generators can assert
// the shedding order; it is empty on errors that are not sheds.
type ErrorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// Handler returns the service's HTTP mux. It is safe to serve from
// multiple listeners; all state lives in the Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/debug/trace", s.handleDebugTrace)
	mux.HandleFunc("/debug/ops", s.handleDebugOps)
	mux.HandleFunc("/debug/slow", s.handleDebugSlow)
	return mux
}

// handleDebugTrace snapshots the flight recorder as Chrome trace-event
// JSON (loadable in Perfetto directly). 404 when tracing is disabled.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		s.fail(w, time.Now(), http.StatusNotFound, fmt.Errorf("tracing disabled (start the server with a Tracer)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteSpans(w, s.tracer.Snapshot())
}

// inferOutcome is what one /v1/infer request resolved to — the access
// log record and the root span's closing attributes.
type inferOutcome struct {
	status  int
	model   string
	tenant  string
	inputs  int   // input vectors in the HTTP request
	batch   int   // device batch size the (first) input was packed into
	shard   int   // shard the (first) input executed on
	queueUs int64 // queue wait of the first input
	err     error
}

// reqTenant resolves the request's QoS lane: the body's `tenant` field
// wins, then the X-Tenant header; empty means the default lane.
func reqTenant(req *InferRequest, r *http.Request) string {
	if req.Tenant != "" {
		return req.Tenant
	}
	return r.Header.Get("X-Tenant")
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	// Every request gets an ID — with tracing off it still names the
	// request in the access log and the X-Request-ID response header.
	id := obs.NewRequestID()
	w.Header().Set("X-Request-ID", id)
	root := s.tracer.Start(id, "request")
	o := s.doInfer(w, r, start, id, root)
	wall := time.Since(start)
	s.winWallUs.Observe(wall.Microseconds())
	s.recordSLO(&o, wall, id)
	if root.Enabled() {
		root.EndWith(0, fmt.Sprintf("model=%s inputs=%d batch=%d status=%d",
			o.model, o.inputs, o.batch, o.status), o.err)
	}
	if s.logger != nil {
		attrs := []any{
			"req", id,
			"model", o.model,
			"tenant", o.tenant,
			"inputs", o.inputs,
			"batch", o.batch,
			"shard", o.shard,
			"queue_us", o.queueUs,
			"status", o.status,
			"wall_us", time.Since(start).Microseconds(),
		}
		if o.err != nil {
			attrs = append(attrs, "err", o.err.Error())
			s.logger.Warn("infer", attrs...)
		} else {
			s.logger.Info("infer", attrs...)
		}
	}
}

// doInfer runs the request through admit -> wait -> respond and reports
// the outcome. It always writes exactly one HTTP response.
func (s *Server) doInfer(w http.ResponseWriter, r *http.Request, start time.Time, id string, root obs.SpanHandle) inferOutcome {
	o := inferOutcome{status: http.StatusOK, shard: -1}
	if r.Method != http.MethodPost {
		o.status, o.err = http.StatusMethodNotAllowed, fmt.Errorf("use POST")
		s.fail(w, start, o.status, o.err)
		return o
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		// Oversized bodies surface here as http.MaxBytesError; both
		// malformed JSON and too-large are client errors.
		o.status, o.err = http.StatusBadRequest, fmt.Errorf("bad request body: %v", err)
		s.fail(w, start, o.status, o.err)
		return o
	}
	o.model = req.Model
	o.tenant = reqTenant(&req, r)

	forms := 0
	for _, set := range []bool{req.Input != nil, req.Inputs != nil, req.Frames != nil} {
		if set {
			forms++
		}
	}
	if forms > 1 {
		o.status, o.err = http.StatusBadRequest, fmt.Errorf("set exactly one of input, inputs or frames")
		s.fail(w, start, o.status, o.err)
		return o
	}
	if req.Frames != nil {
		return s.doInferSeq(w, r, &req, start, id, root, o)
	}

	var inputs [][]float64
	single := false
	switch {
	case req.Input != nil:
		inputs, single = [][]float64{req.Input}, true
	case len(req.Inputs) > 0:
		inputs = req.Inputs
	default:
		o.status, o.err = http.StatusBadRequest, fmt.Errorf("missing input")
		s.fail(w, start, o.status, o.err)
		return o
	}
	o.inputs = len(inputs)

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Admit everything first; a rejection mid-way still waits for the
	// vectors already admitted (they each get a terminal response).
	reqs := make([]*request, 0, len(inputs))
	rejStatus := 0
	var rejErr error
	for _, in := range inputs {
		x := fp16.NewVector(len(in))
		for i, v := range in {
			x[i] = fp16.FromFloat32(float32(v))
		}
		q, status, err := s.enqueue(ctx, req.Model, o.tenant, x, start, id, root)
		if err != nil {
			rejStatus, rejErr = status, err
			break
		}
		reqs = append(reqs, q)
	}

	resps := make([]response, len(reqs))
	for i, q := range reqs {
		select {
		case resps[i] = <-q.resp:
		case <-ctx.Done():
			resps[i] = response{status: http.StatusGatewayTimeout, err: ctx.Err()}
		}
	}
	if len(resps) > 0 {
		o.batch, o.shard, o.queueUs = resps[0].batch, resps[0].shard, resps[0].queueUs
	}

	if rejErr != nil {
		o.status, o.err = rejStatus, rejErr
		s.fail(w, start, o.status, o.err)
		return o
	}
	for _, rp := range resps {
		if rp.status != http.StatusOK {
			o.status, o.err = rp.status, rp.err
			s.fail(w, start, o.status, o.err)
			return o
		}
	}

	out := InferResponse{Model: req.Model}
	if single {
		rp := resps[0]
		out.Output = toF64(rp.y)
		out.BatchSize, out.Shard = rp.batch, rp.shard
		out.KernelCycles, out.KernelNs, out.QueueUs = rp.kernelCycles, rp.kernelNs, rp.queueUs
	} else {
		for _, rp := range resps {
			out.Outputs = append(out.Outputs, toF64(rp.y))
			out.BatchSizes = append(out.BatchSizes, rp.batch)
			out.Shards = append(out.Shards, rp.shard)
			out.KernelCycled = append(out.KernelCycled, rp.kernelCycles)
			out.KernelNsEach = append(out.KernelNsEach, rp.kernelNs)
			out.QueueUsEach = append(out.QueueUsEach, rp.queueUs)
		}
	}
	s.respond(w, start, http.StatusOK, out)
	return o
}

// doInferSeq is the sequence branch of doInfer: convert the frames,
// admit into the model's continuous-batching queue, and wait for the
// stepper's terminal response.
func (s *Server) doInferSeq(w http.ResponseWriter, r *http.Request, req *InferRequest, start time.Time, id string, root obs.SpanHandle, o inferOutcome) inferOutcome {
	if len(req.Frames) == 0 {
		o.status, o.err = http.StatusBadRequest, fmt.Errorf("empty frames")
		s.fail(w, start, o.status, o.err)
		return o
	}
	o.inputs = len(req.Frames)
	frames := make([]fp16.Vector, len(req.Frames))
	for t, f := range req.Frames {
		x := fp16.NewVector(len(f))
		for i, v := range f {
			x[i] = fp16.FromFloat32(float32(v))
		}
		frames[t] = x
	}
	eos := -1
	if req.EOS != nil {
		if *req.EOS < 0 {
			o.status, o.err = http.StatusBadRequest, fmt.Errorf("negative eos class")
			s.fail(w, start, o.status, o.err)
			return o
		}
		eos = *req.EOS
	}

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	q, status, err := s.enqueueSeq(ctx, req.Model, o.tenant, frames, eos, start, id, root)
	if err != nil {
		o.status, o.err = status, err
		s.fail(w, start, o.status, o.err)
		return o
	}
	var rp seqResponse
	select {
	case rp = <-q.resp:
	case <-ctx.Done():
		rp = seqResponse{status: http.StatusGatewayTimeout, err: ctx.Err()}
	}
	o.shard, o.queueUs = rp.shard, rp.queueUs
	if rp.status != http.StatusOK {
		o.status, o.err = rp.status, rp.err
		s.fail(w, start, o.status, o.err)
		return o
	}

	out := InferResponse{
		Model:        req.Model,
		Steps:        len(rp.steps),
		Shard:        rp.shard,
		QueueUs:      rp.queueUs,
		DeviceCycles: rp.cycles,
		DeviceNs:     rp.ns,
		Migrations:   rp.migrations,
	}
	for _, step := range rp.steps {
		out.StepOutputs = append(out.StepOutputs, toF64(step))
	}
	if n := len(rp.steps); n > 0 {
		out.Output = toF64(rp.steps[n-1]) // final-step logits, for convenience
	}
	if rp.eosAt >= 0 {
		e := rp.eosAt
		out.EOSStep = &e
	}
	s.respond(w, start, http.StatusOK, out)
	return o
}

func toF64(y fp16.Vector) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = float64(v.Float32())
	}
	return out
}

// handleModels is GET /v1/models: the servable inventory — every GEMV
// and sequence model with its shape, resident footprint, and host/PIM
// placement split — plus the shard-0 PIM row budget (live, free,
// quarantined; every shard holds the same resident layouts).
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, time.Now(), http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	type modelInfo struct {
		Name          string         `json:"name"`
		Type          string         `json:"type"` // "gemv" or "sequence"
		M             int            `json:"m,omitempty"`
		K             int            `json:"k,omitempty"`
		Input         int            `json:"input,omitempty"`
		Hidden        []int          `json:"hidden,omitempty"`
		Output        int            `json:"output,omitempty"`
		Layers        int            `json:"layers,omitempty"`
		ResidentBytes int64          `json:"resident_bytes"`
		StateBytes    int            `json:"state_bytes_per_slot,omitempty"`
		Slots         int            `json:"slots,omitempty"`
		BatchWaitNs   int64          `json:"batch_wait_ns,omitempty"`
		Placement     map[string]int `json:"placement"`
	}
	list := make([]modelInfo, 0, len(s.mods)+len(s.seqMods))
	for name, m := range s.mods {
		list = append(list, modelInfo{
			Name: name, Type: "gemv",
			M: m.spec.M, K: m.spec.K,
			ResidentBytes: 2 * int64(m.spec.M) * int64(m.spec.K),
			BatchWaitNs:   m.wait.Nanoseconds(),
			Placement:     map[string]int{"pim": 1, "host": 0},
		})
	}
	for name, m := range s.seqMods {
		res := s.shards[0].seq[name]
		list = append(list, modelInfo{
			Name: name, Type: "sequence",
			Input: m.cfg.Input, Hidden: m.cfg.Hidden, Output: m.cfg.Output,
			Layers:        m.plan.Layers(),
			ResidentBytes: res.ResidentBytes(),
			StateBytes:    m.plan.StateBytesPerSlot,
			Slots:         res.Slots(),
			Placement:     map[string]int{"pim": m.plan.PIMOps, "host": m.plan.HostOps},
		})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	drv := s.shards[0].rt.Drv
	s.respond(w, time.Now(), http.StatusOK, map[string]any{
		"models": list,
		"rows": map[string]int{
			"live":        drv.PIMRowsLive(),
			"free":        drv.PIMRowsFree(),
			"quarantined": drv.PIMRowsQuarantined(),
		},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		s.respond(w, time.Now(), http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	status, code := "ok", http.StatusOK
	healthy := s.HealthyShards()
	switch {
	case healthy == 0:
		// Still alive (the prober is working on revival), but serving
		// nothing: load balancers should stop sending traffic.
		status, code = "unavailable", http.StatusServiceUnavailable
	case healthy < s.cfg.Shards:
		status = "degraded"
	}
	s.respond(w, time.Now(), code, map[string]any{
		"status":         status,
		"shards":         s.cfg.Shards,
		"shards_healthy": healthy,
		"shard_states":   s.ShardStates(),
		"channels":       s.cfg.Channels,
		"max_batch":      s.cfg.MaxBatch,
		"models":         s.Models(),
		"tenants":        s.cfg.Tenants,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.Snapshot().WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.reg.Snapshot())
}

// respond writes a JSON body and accounts the status code + wall time.
func (s *Server) respond(w http.ResponseWriter, start time.Time, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
	if c := s.codes[status]; c != nil {
		c.Inc(0)
	}
	s.wallUs.Observe(0, time.Since(start).Microseconds())
}

// fail writes the error taxonomy: 400 client errors, 404 unknown model,
// 429 backpressure (with Retry-After so well-behaved clients pace
// themselves), 503 draining, 504 deadline, 500 device faults. Shed
// responses (429/504) additionally carry the machine-readable reason:
// a *ShedError names it exactly; a 429/504 from any other path maps to
// the queue-full / deadline-expired fallback, so every shed is
// classifiable by clients.
func (s *Server) fail(w http.ResponseWriter, start time.Time, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		retry := s.cfg.BatchWait * 4
		secs := int(retry / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	msg := "internal error"
	if err != nil {
		msg = err.Error()
	}
	reason := ""
	var shed *ShedError
	if errors.As(err, &shed) {
		reason = shed.Reason
	} else {
		switch status {
		case http.StatusTooManyRequests:
			reason = ShedQueueFull
		case http.StatusGatewayTimeout:
			reason = ShedDeadlineExpired
		}
	}
	s.respond(w, start, status, ErrorResponse{Error: msg, Status: status, Reason: reason})
}

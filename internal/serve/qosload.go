package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/metrics"
)

// The QoS scenario matrix: four canned multi-tenant workloads, each with
// pinned assertions, that together prove the admission-control story —
// weighted fairness under overload, honest shedding under bursts,
// priority displacement under mixed traffic, and per-lane isolation
// against a flooding tenant. `pimload -qos` and `make qos-drill` run
// these; TestQoSScenarioMatrix runs them under -race.
//
// Determinism is by construction, not by timing. An open-loop load
// generator cannot force a queue to backlog on an arbitrarily loaded
// host (offered rate self-equalizes with service rate), so instead each
// scenario withholds the shard pool, builds the exact queue state it
// wants to test — seeded batch parked at the lease, lanes filled with
// racing concurrent pushes whose admission outcome is provably
// order-independent — and only then releases the device and watches the
// drain. Every count below is pinned exactly.
const (
	ScenarioOverload      = "overload"
	ScenarioBursty        = "bursty"
	ScenarioMixedPriority = "mixed-priority"
	ScenarioSlowTenant    = "slow-tenant"
)

// QoSScenarioNames lists the scenario matrix in canonical run order.
func QoSScenarioNames() []string {
	return []string{ScenarioOverload, ScenarioBursty, ScenarioMixedPriority, ScenarioSlowTenant}
}

// QoSTenantReport is one tenant's view of a scenario run, classified by
// the machine-readable shed taxonomy the server attaches to every
// rejection (ErrorResponse.Reason).
type QoSTenantReport struct {
	Tenant   string `json:"tenant"`
	Weight   int    `json:"weight"`
	Priority int    `json:"priority"`

	Sent           int `json:"sent"`
	OK             int `json:"ok"`
	ShedQueueFull  int `json:"shed_queue_full"`       // 429 reason=queue-full
	ShedByPriority int `json:"shed_by_priority"`      // 429 reason=shed-by-priority
	ShedDeadline   int `json:"shed_deadline_expired"` // 504 reason=deadline-expired
	ReasonMissing  int `json:"reason_missing"`        // 429/504 without a reason: a taxonomy bug
	Unavailable    int `json:"unavailable"`           // 503
	BadOutputs     int `json:"bad_outputs"`           // 200s that failed oracle verification
	Failures       int `json:"failures"`              // transport errors, other statuses

	WallP50Us  float64 `json:"wall_p50_us"`
	WallP99Us  float64 `json:"wall_p99_us"`
	QueueP50Us float64 `json:"queue_p50_us"`
	QueueP99Us float64 `json:"queue_p99_us"`
}

func (t *QoSTenantReport) rejected() int {
	return t.ShedQueueFull + t.ShedByPriority + t.ReasonMissing
}

func (t *QoSTenantReport) accounted() int {
	return t.OK + t.rejected() + t.ShedDeadline + t.Unavailable + t.BadOutputs + t.Failures
}

// QoSReport is the outcome of one scenario: per-tenant quantile rows plus
// the scenario's pinned assertions, rendered as violations when they
// fail. An empty Violations slice is the pass condition `make qos-drill`
// gates on.
type QoSReport struct {
	Scenario    string  `json:"scenario"`
	Seed        int64   `json:"seed"`
	WallSeconds float64 `json:"wall_seconds"`

	// FairnessRatio is the heavy:light served ratio sampled mid-drain,
	// while both lanes are still backlogged (overload scenario only);
	// with 3:1 weights it must land in [2.2, 4.6].
	FairnessRatio float64 `json:"fairness_ratio,omitempty"`

	Tenants    []QoSTenantReport `json:"tenants"`
	Violations []string          `json:"violations"`
}

// Pass reports whether every pinned assertion held.
func (r *QoSReport) Pass() bool { return len(r.Violations) == 0 }

func (r *QoSReport) tenant(name string) *QoSTenantReport {
	for i := range r.Tenants {
		if r.Tenants[i].Tenant == name {
			return &r.Tenants[i]
		}
	}
	return nil
}

func (r *QoSReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// String renders the report for terminals.
func (r *QoSReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (seed %d): ", r.Scenario, r.Seed)
	if r.Pass() {
		b.WriteString("PASS\n")
	} else {
		fmt.Fprintf(&b, "FAIL (%d violations)\n", len(r.Violations))
	}
	if r.FairnessRatio > 0 {
		fmt.Fprintf(&b, "  fairness ratio %.2f\n", r.FairnessRatio)
	}
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  %-8s w%d p%d  sent %d: %d ok, %d queue-full, %d shed-by-priority, %d deadline, %d unavailable, %d bad, %d failures\n",
			t.Tenant, t.Weight, t.Priority, t.Sent, t.OK, t.ShedQueueFull, t.ShedByPriority,
			t.ShedDeadline+t.ReasonMissing, t.Unavailable, t.BadOutputs, t.Failures)
		fmt.Fprintf(&b, "  %-8s wall p50 %.0fus p99 %.0fus  queue p50 %.0fus p99 %.0fus\n",
			"", t.WallP50Us, t.WallP99Us, t.QueueP50Us, t.QueueP99Us)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
	}
	return b.String()
}

// RunQoSScenario runs one named scenario and evaluates its pins. The
// returned error covers infrastructure failures (server would not boot,
// a phase stalled, responses dropped); assertion failures land in
// Report.Violations so a caller can render every broken pin, not just
// the first.
func RunQoSScenario(name string, seed int64) (*QoSReport, error) {
	switch name {
	case ScenarioOverload:
		return qosOverload(seed)
	case ScenarioBursty:
		return qosBursty(seed)
	case ScenarioMixedPriority:
		return qosMixedPriority(seed)
	case ScenarioSlowTenant:
		return qosSlowTenant(seed)
	default:
		return nil, fmt.Errorf("qos: unknown scenario %q (have %s)", name, strings.Join(QoSScenarioNames(), ", "))
	}
}

// qosWallP99Bound is the generous-but-pinned wall p99 every scenario
// asserts. The workloads finish in well under a second on an idle host;
// the bound only exists to catch pathological stalls (a stuck lane, a
// lost wakeup) without making the drill timing-flaky under -race.
const qosWallP99Bound = 5 * time.Second

// qosModel is the scenario workload: small enough that ten batches
// drain in tens of milliseconds even under -race, big enough that the
// oracle check is a real bit-exactness proof.
var qosModel = ModelSpec{Name: "qos-256x256", M: 256, K: 256, Seed: 7}

// ---------------------------------------------------------------------
// Environment: one booted server plus per-tenant outcome accounting
// ---------------------------------------------------------------------

type qosStat struct {
	rep   *QoSTenantReport
	wall  *metrics.Histogram
	queue *metrics.Histogram
}

// qosEnv is one scenario's harness: an in-process server whose shard
// pool the scenario holds hostage, an HTTP front door, one shared
// deterministic input with its precomputed oracle, and per-tenant
// outcome counters fed by detached client goroutines.
type qosEnv struct {
	scenario string
	s        *Server
	hs       *http.Server
	base     string
	client   *http.Client

	input  []float64
	oracle fp16.Vector

	reg *metrics.Registry // scenario-side latency histograms (shard 0, under mu)

	mu    sync.Mutex
	stats map[string]*qosStat
	onOK  func(tenant string) // completion-order hook; runs under mu

	clients sync.WaitGroup
	rep     *QoSReport
	start   time.Time
}

func newQoSEnv(scenario string, cfg Config, seed int64) (*qosEnv, error) {
	cfg.Models = []ModelSpec{qosModel}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)

	rng := rand.New(rand.NewSource(seed*1_000_003 + 17))
	x16 := fp16.NewVector(qosModel.K)
	in := make([]float64, qosModel.K)
	for i := range in {
		x16[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
		in[i] = float64(x16[i].Float32())
	}
	return &qosEnv{
		scenario: scenario,
		s:        s,
		hs:       hs,
		base:     "http://" + ln.Addr().String(),
		client:   &http.Client{Timeout: 30 * time.Second},
		input:    in,
		oracle:   blas.RefGemvPIMOrder(qosModel.Weights(), qosModel.M, qosModel.K, x16, 8),
		reg:      metrics.New(1),
		stats:    make(map[string]*qosStat),
		rep:      &QoSReport{Scenario: scenario, Seed: seed, Violations: []string{}},
		start:    time.Now(),
	}, nil
}

// statLocked returns (creating on first use) the accounting row for a
// resolved tenant name. Caller holds e.mu.
func (e *qosEnv) statLocked(name string) *qosStat {
	st := e.stats[name]
	if st == nil {
		ten := e.s.tenantFor(name)
		st = &qosStat{
			rep: &QoSTenantReport{
				Tenant:   name,
				Weight:   ten.spec.Weight,
				Priority: ten.spec.Priority,
			},
			wall:  e.reg.Histogram("wall_us_"+name, metrics.ExpBuckets(1, 2, 30)),
			queue: e.reg.Histogram("queue_us_"+name, metrics.ExpBuckets(1, 2, 30)),
		}
		e.stats[name] = st
	}
	return st
}

// shoot sends one inference request attributed to tenant (empty string
// drives the default lane), verifies a 200 against the oracle, and
// classifies every other outcome by the shed taxonomy.
func (e *qosEnv) shoot(tenant string) {
	name := tenant
	if name == "" {
		name = DefaultTenant
	}
	body, _ := json.Marshal(InferRequest{Model: qosModel.Name, Input: e.input, Tenant: tenant})
	start := time.Now()
	resp, err := e.client.Post(e.base+"/v1/infer", "application/json", bytes.NewReader(body))
	wallUs := time.Since(start).Microseconds()

	var raw []byte
	if err == nil {
		raw, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.statLocked(name)
	st.rep.Sent++
	if err != nil {
		st.rep.Failures++
		return
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var ir InferResponse
		if err := json.Unmarshal(raw, &ir); err != nil || !outputsMatch(ir.Output, e.oracle) {
			st.rep.BadOutputs++
			return
		}
		st.rep.OK++
		st.wall.Observe(0, wallUs)
		st.queue.Observe(0, ir.QueueUs)
		if e.onOK != nil {
			e.onOK(name)
		}
	case http.StatusTooManyRequests, http.StatusGatewayTimeout:
		var er ErrorResponse
		_ = json.Unmarshal(raw, &er)
		switch er.Reason {
		case ShedQueueFull:
			st.rep.ShedQueueFull++
		case ShedByPriority:
			st.rep.ShedByPriority++
		case ShedDeadlineExpired:
			st.rep.ShedDeadline++
		default:
			st.rep.ReasonMissing++
		}
	case http.StatusServiceUnavailable:
		st.rep.Unavailable++
	default:
		st.rep.Failures++
	}
}

// send fires n concurrent requests for tenant and returns without
// waiting; finish (and per-round waits) collect the goroutines.
func (e *qosEnv) send(tenant string, n int) {
	for i := 0; i < n; i++ {
		e.clients.Add(1)
		go func() {
			defer e.clients.Done()
			e.shoot(tenant)
		}()
	}
}

// qosWaitUntil polls cond (a server-side counter predicate) every
// millisecond; a scenario phase that has not converged in 15s is stuck.
func (e *qosEnv) qosWaitUntil(what string, cond func() bool) error {
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("qos %s: timed out waiting for %s", e.scenario, what)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// seedBatch, with the shard pool withheld, sends k requests (k ==
// Channels) and waits until the batcher has admitted and popped all of
// them: the batch is formed and the batcher is parked at the shard
// lease, leaving the queue empty for the scenario to shape.
func (e *qosEnv) seedBatch(tenant string, k int) error {
	ten := e.s.tenantFor(tenant)
	base := ten.admitted.Value()
	e.send(tenant, k)
	return e.qosWaitUntil(fmt.Sprintf("seed batch of %d to form", k), func() bool {
		return ten.admitted.Value() == base+int64(k) && e.s.queueDepth.Value() == 0
	})
}

// waitResolved waits until every one of the tenant's pushes so far has
// resolved at admission: cumulative admitted plus queue-full rejections
// reaches pushes. (Priority displacement and deadline expiry happen
// after admission, so they never count here.)
func (e *qosEnv) waitResolved(tenant string, pushes int) error {
	ten := e.s.tenantFor(tenant)
	return e.qosWaitUntil(fmt.Sprintf("%d pushes to resolve for %s", pushes, ten.spec.Name), func() bool {
		return ten.admitted.Value()+ten.shed[ShedQueueFull].Value() >= int64(pushes)
	})
}

// finish waits for every client, drains the server (zero-drop), and
// assembles the per-tenant report rows with their latency quantiles.
func (e *qosEnv) finish() error {
	e.clients.Wait()
	sdCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	e.hs.Shutdown(sdCtx)
	if err := e.s.Close(sdCtx); err != nil {
		return fmt.Errorf("qos %s: drain: %w", e.scenario, err)
	}
	e.rep.WallSeconds = time.Since(e.start).Seconds()

	snap := e.reg.Snapshot()
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, st := range e.stats {
		if h, ok := snap.Histograms["wall_us_"+name]; ok {
			st.rep.WallP50Us = h.Quantile(0.50)
			st.rep.WallP99Us = h.Quantile(0.99)
		}
		if h, ok := snap.Histograms["queue_us_"+name]; ok {
			st.rep.QueueP50Us = h.Quantile(0.50)
			st.rep.QueueP99Us = h.Quantile(0.99)
		}
		e.rep.Tenants = append(e.rep.Tenants, *st.rep)
	}
	sort.Slice(e.rep.Tenants, func(i, j int) bool { return e.rep.Tenants[i].Tenant < e.rep.Tenants[j].Tenant })
	return nil
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

// qosOverload backs up two same-priority lanes (weights 3:1) behind a
// withheld shard, then releases the device and samples the served ratio
// mid-drain, while both lanes still hold work. WFQ must interleave
// three heavy requests per light one — the drain order is
// heavy,heavy,heavy,light repeating — so when the heavy tenant crosses
// 22 served, the light tenant has ~6; the pinned band [2.2, 4.6]
// excludes FIFO (light would be 0), round-robin (ratio 1.0), and
// light-first (ratio 2.0) orders. Admission itself must be lossless:
// both waves fit inside the lanes' weighted caps.
func qosOverload(seed int64) (*QoSReport, error) {
	cfg := Config{
		Shards: 1, Channels: 4, QueueDepth: 40,
		BatchWait:      time.Hour, // batches flush on size only: totals are multiples of 4
		RequestTimeout: 30 * time.Second,
		Tenants: []TenantSpec{
			{Name: "heavy", Weight: 3},
			{Name: "light", Weight: 1},
		},
	}
	e, err := newQoSEnv(ScenarioOverload, cfg, seed)
	if err != nil {
		return nil, err
	}

	// Snapshot the light tenant's progress the moment the heavy tenant
	// crosses 22 served (4 seeded + 18 of its 27 queued). Responses
	// within one 4-wide batch race, but batches complete in strict
	// device order, so the snapshot lands within one batch of the ideal.
	const heavyMark = 22
	var heavyOK, lightOK, lightAtMark int
	e.onOK = func(tenant string) {
		switch tenant {
		case "heavy":
			heavyOK++
			if heavyOK == heavyMark {
				lightAtMark = lightOK
			}
		case "light":
			lightOK++
		}
	}

	sh := <-e.s.pool
	phaseErr := func() error {
		if err := e.seedBatch("heavy", 4); err != nil {
			return err
		}
		e.send("heavy", 27)
		if err := e.waitResolved("heavy", 31); err != nil {
			return err
		}
		e.send("light", 9)
		return e.waitResolved("light", 9)
	}()
	e.s.pool <- sh
	if ferr := e.finish(); phaseErr == nil {
		phaseErr = ferr
	}
	if phaseErr != nil {
		return e.rep, phaseErr
	}

	rep := e.rep
	if lightAtMark > 0 {
		rep.FairnessRatio = float64(heavyMark-4) / float64(lightAtMark)
	}
	if rep.FairnessRatio < 2.2 || rep.FairnessRatio > 4.6 {
		rep.violate("fairness ratio %.2f outside [2.2, 4.6] for 3:1 weights (light served %d when heavy hit %d)",
			rep.FairnessRatio, lightAtMark, heavyMark)
	}
	heavy, light := rep.tenant("heavy"), rep.tenant("light")
	if heavy.OK != 31 || heavy.rejected() != 0 {
		rep.violate("overload: heavy served %d of 31 with %d rejections; both waves fit under the caps", heavy.OK, heavy.rejected())
	}
	if light.OK != 9 || light.rejected() != 0 {
		rep.violate("overload: light served %d of 9 with %d rejections; both waves fit under the caps", light.OK, light.rejected())
	}
	qosCommonPins(rep)
	return rep, nil
}

// qosBursty fires rounds of simultaneous arrivals into a queue smaller
// than the burst, with both shards withheld so every round's overflow is
// decided by admission alone: 4 seeded + 12 admitted + 4 shed per
// round, exactly. Overflow must shed honestly (429 + reason=queue-full),
// never silently, and every survivor must verify against the oracle.
// Hedged redispatch is enabled so the p99 tail machinery runs under
// burst pressure (its win/loss counts are pinned by unit test, not
// here — they depend on device timing).
func qosBursty(seed int64) (*QoSReport, error) {
	cfg := Config{
		Shards: 2, Channels: 4, QueueDepth: 12,
		BatchWait:      time.Hour,
		RequestTimeout: 30 * time.Second,
		HedgeDelay:     5 * time.Millisecond,
	}
	e, err := newQoSEnv(ScenarioBursty, cfg, seed)
	if err != nil {
		return nil, err
	}

	const rounds = 8
	phaseErr := func() error {
		for r := 0; r < rounds; r++ {
			sh0, sh1 := <-e.s.pool, <-e.s.pool
			err := func() error {
				if err := e.seedBatch("", 4); err != nil {
					return err
				}
				e.send("", 16) // 12 fit the queue, 4 must bounce
				return e.waitResolved("", (r+1)*20)
			}()
			e.s.pool <- sh0
			e.s.pool <- sh1
			if err != nil {
				return err
			}
			e.clients.Wait() // round drains fully before the next burst
		}
		return nil
	}()
	if ferr := e.finish(); phaseErr == nil {
		phaseErr = ferr
	}
	if phaseErr != nil {
		return e.rep, phaseErr
	}

	rep := e.rep
	t := rep.tenant(DefaultTenant)
	if t.OK != rounds*16 {
		rep.violate("bursty: served %d, want %d (16 per round)", t.OK, rounds*16)
	}
	if t.ShedQueueFull != rounds*4 {
		rep.violate("bursty: %d queue-full sheds, want %d (4 per 16-wide burst into a 12-deep queue)", t.ShedQueueFull, rounds*4)
	}
	if t.OK < t.Sent/2 {
		rep.violate("bursty: served %d of %d, below the 50%% floor", t.OK, t.Sent)
	}
	qosCommonPins(rep)
	return rep, nil
}

// qosMixedPriority fills the low-priority free lane to its cap and past
// the queue bound, then lands three high-priority gold arrivals. The
// pinned shedding order: the free flood takes exactly 5 queue-full
// bounces at its lane cap, gold's first arrival uses the last queue
// slot, and gold's other two displace queued free work (429
// reason=shed-by-priority) — graduated shedding drops lowest-priority
// work first, and gold loses nothing.
func qosMixedPriority(seed int64) (*QoSReport, error) {
	cfg := Config{
		Shards: 1, Channels: 4, QueueDepth: 8,
		BatchWait:      time.Hour,
		RequestTimeout: 30 * time.Second,
		Tenants: []TenantSpec{
			{Name: "gold", Weight: 4, Priority: 10},
			{Name: "free", Weight: 8, Priority: 0},
		},
	}
	e, err := newQoSEnv(ScenarioMixedPriority, cfg, seed)
	if err != nil {
		return nil, err
	}

	sh := <-e.s.pool
	phaseErr := func() error {
		if err := e.seedBatch("free", 4); err != nil {
			return err
		}
		e.send("free", 12) // lane cap 7: exactly 7 admitted, 5 queue-full
		if err := e.waitResolved("free", 16); err != nil {
			return err
		}
		e.send("gold", 3) // queue at 7/8: one fits, two displace free work
		return e.waitResolved("gold", 3)
	}()
	e.s.pool <- sh
	if ferr := e.finish(); phaseErr == nil {
		phaseErr = ferr
	}
	if phaseErr != nil {
		return e.rep, phaseErr
	}

	rep := e.rep
	gold, free := rep.tenant("gold"), rep.tenant("free")
	if gold.OK != 3 || gold.rejected() != 0 {
		rep.violate("mixed-priority: gold served %d of 3 with %d rejections; priority must shed free first", gold.OK, gold.rejected())
	}
	if free.ShedQueueFull != 5 {
		rep.violate("mixed-priority: free hit %d queue-full sheds, want 5 (12 pushes into a 7-slot lane)", free.ShedQueueFull)
	}
	if free.ShedByPriority != 2 {
		rep.violate("mixed-priority: %d free requests displaced by gold arrivals, want 2", free.ShedByPriority)
	}
	if free.OK != 9 {
		rep.violate("mixed-priority: free served %d, want 9 (16 sent - 5 queue-full - 2 displaced)", free.OK)
	}
	qosCommonPins(rep)
	return rep, nil
}

// qosSlowTenant checks per-lane isolation with equal weights and equal
// priority: a tenant flooding three times its fair share is capped at
// its own lane — exactly 8 of its 12-wide wave bounce queue-full —
// while the well-behaved tenant, arriving after the flood, is admitted
// and served in full with zero rejections.
func qosSlowTenant(seed int64) (*QoSReport, error) {
	cfg := Config{
		Shards: 1, Channels: 4, QueueDepth: 8,
		BatchWait:      time.Hour,
		RequestTimeout: 30 * time.Second,
		Tenants: []TenantSpec{
			{Name: "fast", Weight: 1},
			{Name: "slow", Weight: 1},
		},
	}
	e, err := newQoSEnv(ScenarioSlowTenant, cfg, seed)
	if err != nil {
		return nil, err
	}

	sh := <-e.s.pool
	phaseErr := func() error {
		if err := e.seedBatch("slow", 4); err != nil {
			return err
		}
		e.send("slow", 12) // lane cap 4: exactly 4 admitted, 8 queue-full
		if err := e.waitResolved("slow", 16); err != nil {
			return err
		}
		e.send("fast", 4) // fits its own lane despite the flood
		return e.waitResolved("fast", 4)
	}()
	e.s.pool <- sh
	if ferr := e.finish(); phaseErr == nil {
		phaseErr = ferr
	}
	if phaseErr != nil {
		return e.rep, phaseErr
	}

	rep := e.rep
	fast, slow := rep.tenant("fast"), rep.tenant("slow")
	if fast.OK != 4 || fast.rejected() != 0 {
		rep.violate("slow-tenant: fast served %d of 4 with %d rejections; lane caps must isolate it", fast.OK, fast.rejected())
	}
	if slow.ShedQueueFull != 8 {
		rep.violate("slow-tenant: flood hit %d queue-full sheds, want 8 (12 pushes into a 4-slot lane)", slow.ShedQueueFull)
	}
	if slow.ShedByPriority != 0 {
		rep.violate("slow-tenant: %d displacements among equal-priority tenants, want 0", slow.ShedByPriority)
	}
	if slow.OK != 8 {
		rep.violate("slow-tenant: flood served %d, want 8 (its lane's worth)", slow.OK)
	}
	qosCommonPins(rep)
	return rep, nil
}

// qosCommonPins applies the assertions every scenario shares: oracle
// bit-exactness, no transport failures, a machine-readable reason on
// every shed, exact accounting, and the pinned wall p99.
func qosCommonPins(rep *QoSReport) {
	for i := range rep.Tenants {
		t := &rep.Tenants[i]
		if t.BadOutputs > 0 {
			rep.violate("%s: %d responses failed oracle verification", t.Tenant, t.BadOutputs)
		}
		if t.Failures > 0 {
			rep.violate("%s: %d transport/5xx failures", t.Tenant, t.Failures)
		}
		if t.Unavailable > 0 {
			rep.violate("%s: %d unexpected 503s (no faults injected)", t.Tenant, t.Unavailable)
		}
		if t.ReasonMissing > 0 {
			rep.violate("%s: %d sheds carried no machine-readable reason", t.Tenant, t.ReasonMissing)
		}
		if got := t.accounted(); got != t.Sent {
			rep.violate("%s: dropped responses: sent %d, accounted %d", t.Tenant, t.Sent, got)
		}
		if bound := float64(qosWallP99Bound.Microseconds()); t.WallP99Us > bound {
			rep.violate("%s: wall p99 %.0fus above pinned bound %.0fus", t.Tenant, t.WallP99Us, bound)
		}
	}
}

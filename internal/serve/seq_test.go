package serve

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pimsim/internal/fault"
	"pimsim/internal/fp16"
	"pimsim/internal/models"
	"pimsim/internal/nn"
)

// tinySeq is a fast two-layer LSTM stack for sequence-pipeline tests.
var tinySeq = models.Config{Name: "tinyseq", Input: 16, Hidden: []int{32, 16}, Output: 8, Seed: 42}

// seqOracle computes the expected per-step logits for a frame sequence.
func seqOracle(t *testing.T, cfg models.Config, frames []fp16.Vector) []fp16.Vector {
	t.Helper()
	w, err := nn.GenWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := nn.Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.HostOracle(frames, 8)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func seqFrames(seed int64, n, dim int) ([]fp16.Vector, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	f16 := make([]fp16.Vector, n)
	f64 := make([][]float64, n)
	for t := range f16 {
		x := fp16.NewVector(dim)
		row := make([]float64, dim)
		for i := range x {
			x[i] = fp16.FromFloat32(float32(rng.NormFloat64() * 0.5))
			row[i] = float64(x[i].Float32())
		}
		f16[t] = x
		f64[t] = row
	}
	return f16, f64
}

func seqBody(t *testing.T, model string, frames [][]float64, eos *int) string {
	t.Helper()
	b, err := json.Marshal(InferRequest{Model: model, Frames: frames, EOS: eos})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func checkSeqResponse(t *testing.T, body []byte, want []fp16.Vector) *InferResponse {
	t.Helper()
	var ir InferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("bad response body: %v: %s", err, body)
	}
	if ir.Steps != len(want) || len(ir.StepOutputs) != len(want) {
		t.Fatalf("steps = %d (%d outputs), want %d", ir.Steps, len(ir.StepOutputs), len(want))
	}
	for step := range want {
		if !outputsMatch(ir.StepOutputs[step], want[step]) {
			t.Fatalf("step %d output mismatch: got %v, want oracle", step, ir.StepOutputs[step])
		}
	}
	return &ir
}

// TestSeqInferCorrectness: a full multi-step sequence served over HTTP is
// bit-exact against the host-session oracle at every step.
func TestSeqInferCorrectness(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Channels: 2, SeqModels: []models.Config{tinySeq}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	f16, f64 := seqFrames(7, 5, tinySeq.Input)
	resp, body := postInfer(t, ts, seqBody(t, "tinyseq", f64, nil))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ir := checkSeqResponse(t, body, seqOracle(t, tinySeq, f16))
	if ir.DeviceCycles <= 0 || ir.DeviceNs <= 0 {
		t.Errorf("no device time attributed: cycles=%d ns=%f", ir.DeviceCycles, ir.DeviceNs)
	}
	if ir.EOSStep != nil {
		t.Errorf("eos_step set without eos in the request")
	}
	if got := s.seqCompleted.Value(); got != 1 {
		t.Errorf("seq_completed = %d, want 1", got)
	}
	if got := s.seqSteps.Value(); got != 5 {
		t.Errorf("seq_steps = %d, want 5", got)
	}
}

// TestSeqContinuousBatching: concurrent sequences of different lengths
// share the step loop — occupancy exceeds one — and every response stays
// bit-exact against its own oracle.
func TestSeqContinuousBatching(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Channels: 4, SeqModels: []models.Config{tinySeq}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lengths := []int{9, 4, 7, 5, 6, 3}
	var wg sync.WaitGroup
	for i, n := range lengths {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			f16, f64 := seqFrames(int64(100+i), n, tinySeq.Input)
			resp, body := postInfer(t, ts, seqBody(t, "tinyseq", f64, nil))
			if resp.StatusCode != 200 {
				t.Errorf("seq %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			checkSeqResponse(t, body, seqOracle(t, tinySeq, f16))
		}(i, n)
	}
	wg.Wait()

	if got := s.seqCompleted.Value(); got != int64(len(lengths)) {
		t.Errorf("seq_completed = %d, want %d", got, len(lengths))
	}
	// At least one step must have run with >1 active slot, or this was
	// sequential execution in disguise. (Scheduling is timing-dependent,
	// so assert via the occupancy histogram's upper buckets.)
	snap := s.Metrics().Snapshot()
	occ := snap.Histograms["serve_seq_occupancy"]
	if occ.Count == 0 {
		t.Fatal("occupancy histogram empty")
	}
	if occ.Quantile(1.0) <= 1 {
		t.Logf("warning: peak occupancy %.0f — continuous batching never overlapped (timing-dependent)", occ.Quantile(1.0))
	}
}

// TestSeqEOSRetirement: a sequence whose argmax hits the EOS class
// retires early — fewer executed steps than frames, eos_step set.
func TestSeqEOSRetirement(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Channels: 2, SeqModels: []models.Config{tinySeq}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	f16, f64 := seqFrames(21, 12, tinySeq.Input)
	want := seqOracle(t, tinySeq, f16)
	// Pick the class the first step's argmax lands on: retirement at step 0.
	eos := nn.Argmax(want[0])
	resp, body := postInfer(t, ts, seqBody(t, "tinyseq", f64, &eos))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ir := checkSeqResponse(t, body, want[:1])
	if ir.EOSStep == nil || *ir.EOSStep != 0 {
		t.Errorf("eos_step = %v, want 0", ir.EOSStep)
	}
	if got := s.seqEOS.Value(); got != 1 {
		t.Errorf("seq_eos = %d, want 1", got)
	}
}

// TestSeqTaxonomy: the sequence-path error taxonomy — 404 for unknown
// models, 400 for shape errors and form confusion on both model kinds.
func TestSeqTaxonomy(t *testing.T) {
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2,
		Models:    []ModelSpec{tiny},
		SeqModels: []models.Config{tinySeq},
		MaxSeqLen: 8,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, f64 := seqFrames(3, 4, tinySeq.Input)
	_, long := seqFrames(3, 9, tinySeq.Input)
	_, narrow := seqFrames(3, 4, tinySeq.Input-1)
	in, _ := testInput(tiny.K, 5)
	neg := -2
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown model", seqBody(t, "nope", f64, nil), 404},
		{"frames to gemv model", seqBody(t, "tiny", f64, nil), 400},
		{"input to seq model", inferBody(t, "tinyseq", in), 400},
		{"wrong frame width", seqBody(t, "tinyseq", narrow, nil), 400},
		{"over max seq len", seqBody(t, "tinyseq", long, nil), 400},
		{"empty frames", `{"model":"tinyseq","frames":[]}`, 400},
		{"frames and input", `{"model":"tinyseq","frames":[[1]],"input":[1]}`, 400},
		{"negative eos", seqBody(t, "tinyseq", f64, &neg), 400},
	}
	for _, c := range cases {
		resp, body := postInfer(t, ts, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.want)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not in taxonomy form: %s", c.name, body)
		}
	}
	eosBig := tinySeq.Output
	if resp, body := postInfer(t, ts, seqBody(t, "tinyseq", f64, &eosBig)); resp.StatusCode != 400 {
		t.Errorf("eos out of range: status %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestModelsEndpoint: GET /v1/models lists both model kinds with shape,
// resident footprint, placement split, and the shard row budget.
func TestModelsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2,
		Models:    []ModelSpec{tiny},
		SeqModels: []models.Config{tinySeq},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got struct {
		Models []struct {
			Name          string         `json:"name"`
			Type          string         `json:"type"`
			Layers        int            `json:"layers"`
			ResidentBytes int64          `json:"resident_bytes"`
			Placement     map[string]int `json:"placement"`
		} `json:"models"`
		Rows map[string]int `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Models) != 2 {
		t.Fatalf("listed %d models, want 2", len(got.Models))
	}
	byName := map[string]int{}
	for i, m := range got.Models {
		byName[m.Name] = i
	}
	g := got.Models[byName["tiny"]]
	if g.Type != "gemv" || g.ResidentBytes != 2*int64(tiny.M)*int64(tiny.K) {
		t.Errorf("gemv entry wrong: %+v", g)
	}
	q := got.Models[byName["tinyseq"]]
	if q.Type != "sequence" || q.Layers != 2 {
		t.Errorf("sequence entry wrong: %+v", q)
	}
	if q.Placement["pim"] != 5 || q.Placement["host"] == 0 {
		t.Errorf("placement split wrong: %+v (want 5 pim GEMVs: 2 per layer + output)", q.Placement)
	}
	if q.ResidentBytes <= 0 {
		t.Errorf("sequence resident_bytes = %d", q.ResidentBytes)
	}
	if got.Rows["live"] <= 0 || got.Rows["free"] <= 0 {
		t.Errorf("row budget missing: %+v", got.Rows)
	}
	if resp, _ := postInfer(t, ts, ""); resp.StatusCode != 405 {
		// POST /v1/models must be 405, not a silent 200.
		r2, err := ts.Client().Post(ts.URL+"/v1/models", "application/json", nil)
		if err == nil && r2.StatusCode != 405 {
			t.Errorf("POST /v1/models: status %d, want 405", r2.StatusCode)
		}
	}
}

// TestPerModelBatchWait: a ModelSpec.BatchWait override must reach that
// model's flush timer while other models keep the server-wide default —
// the regression for the hard-coded global 2ms wait.
func TestPerModelBatchWait(t *testing.T) {
	slow := ModelSpec{Name: "slow", M: 16, K: 32, Seed: 43, BatchWait: time.Hour}
	s := newTestServer(t, Config{
		Shards: 1, Channels: 4,
		BatchWait: time.Millisecond,
		Models:    []ModelSpec{tiny, slow},
	})
	var (
		mu    sync.Mutex
		waits []time.Duration
	)
	s.newTimer = func(d time.Duration) batchTimer {
		mu.Lock()
		waits = append(waits, d)
		mu.Unlock()
		f := newFakeBatchTimer()
		f.fire() // flush immediately so requests complete
		return f
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 9)
	if resp, body := postInfer(t, ts, inferBody(t, "tiny", in)); resp.StatusCode != 200 {
		t.Fatalf("tiny: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postInfer(t, ts, inferBody(t, "slow", in)); resp.StatusCode != 200 {
		t.Fatalf("slow: status %d: %s", resp.StatusCode, body)
	}
	mu.Lock()
	defer mu.Unlock()
	want := map[time.Duration]bool{time.Millisecond: false, time.Hour: false}
	for _, d := range waits {
		if _, ok := want[d]; !ok {
			t.Errorf("timer armed with unexpected wait %v", d)
		}
		want[d] = true
	}
	if !want[time.Millisecond] || !want[time.Hour] {
		t.Errorf("timer waits %v: want both the default (1ms) and the override (1h)", waits)
	}
}

// TestParseSeqLenDist pins the -seqlen-dist grammar.
func TestParseSeqLenDist(t *testing.T) {
	good := map[string]SeqLenDist{
		"fixed:8":      {Kind: "fixed", A: 8, B: 8},
		"uniform:2:10": {Kind: "uniform", A: 2, B: 10},
	}
	for in, want := range good {
		got, err := ParseSeqLenDist(in)
		if err != nil || got != want {
			t.Errorf("ParseSeqLenDist(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "fixed", "fixed:0", "fixed:x", "uniform:5:2", "uniform:0:3", "poisson:4"} {
		if _, err := ParseSeqLenDist(bad); err == nil {
			t.Errorf("ParseSeqLenDist(%q) accepted", bad)
		}
	}
}

// TestRunSeqLoad: the sequence load generator end to end with client-side
// oracle verification on — every response re-checked against the host
// session, zero drops, sane latency aggregation.
func TestRunSeqLoad(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Channels: 4, SeqModels: []models.Config{tinySeq}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := RunSeqLoad(SeqLoadConfig{
		BaseURL: ts.URL,
		Model:   tinySeq,
		Seqs:    12, Concurrency: 4,
		LenDist: SeqLenDist{Kind: "uniform", A: 2, B: 6},
		EOS:     -1,
		Verify:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 12 || rep.BadOutputs != 0 || rep.Failures != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Steps < 2*12 || rep.Steps > 6*12 {
		t.Errorf("steps = %d, outside [24, 72] for uniform:2:6 lengths", rep.Steps)
	}
	if rep.SeqPerSec <= 0 || rep.SimStepPerSec <= 0 || rep.SeqP50Us <= 0 || rep.StepP50Us <= 0 {
		t.Errorf("throughput/latency not aggregated: %+v", rep)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

// TestChaosSeqMigration is the chaos-matrix case for continuous
// batching: the shard serving a sequence dies mid-flight; the sequence
// must migrate (state and all) to the survivor and finish with
// bit-exact outputs — a fault costs latency, never correctness.
func TestChaosSeqMigration(t *testing.T) {
	fc := &fault.Config{
		Seed:      3,
		DeadShard: 0, DieAfterBatches: 2, ReviveAfterProbes: 0,
	}
	s := newTestServer(t, Config{
		Shards: 2, Channels: 2,
		SeqModels: []models.Config{tinySeq},
		Fault:     fc, EvictAfter: 1, MaxRetries: 3,
		RetryBackoff: time.Millisecond, ProbeInterval: 5 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	f16, f64 := seqFrames(31, 8, tinySeq.Input)
	resp, body := postInfer(t, ts, seqBody(t, "tinyseq", f64, nil))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d (%s) — sequence lost to the outage", resp.StatusCode, body)
	}
	ir := checkSeqResponse(t, body, seqOracle(t, tinySeq, f16))
	if ir.Migrations < 1 {
		t.Errorf("migrations = %d, want >= 1 (shard 0 died after step 2)", ir.Migrations)
	}
	if got := s.seqMigrations.Value(); got < 1 {
		t.Errorf("seq_migrations = %d, want >= 1", got)
	}
	if st := s.ShardStates(); st[0] != "evicted" {
		t.Errorf("shard states = %v, want shard 0 evicted", st)
	}
}

package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// runLoop boots a server with the given batch bound, drives it with the
// closed-loop generator (outputs verified against the oracle), and
// returns the report.
func runLoop(t *testing.T, maxBatch, requests, conc int, mode string, rate float64) *Report {
	t.Helper()
	s, err := New(Config{
		Shards: 1, Channels: 4, MaxBatch: maxBatch,
		Models:    []ModelSpec{tiny},
		BatchWait: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	rep, err := RunLoad(LoadConfig{
		BaseURL: ts.URL, Model: tiny.Name, K: tiny.K,
		Mode: mode, Concurrency: conc, Requests: requests, RatePerSec: rate,
		Verify: &tiny,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestLoadgenClosedLoop: every request must come back, verified, with a
// full accounting and sane latency quantiles.
func TestLoadgenClosedLoop(t *testing.T) {
	rep := runLoop(t, 4, 48, 6, "closed", 0)
	if rep.OK != rep.Sent || rep.Failures != 0 {
		t.Fatalf("closed loop: %s", rep)
	}
	if rep.WallP50Us <= 0 || rep.WallP99Us < rep.WallP50Us {
		t.Errorf("wall quantiles out of order: %s", rep)
	}
	if rep.CyclesP50 <= 0 {
		t.Errorf("no kernel cycle quantiles: %s", rep)
	}
	if rep.ThroughputRPS <= 0 || rep.SimThroughputRPS <= 0 {
		t.Errorf("no throughput: %s", rep)
	}
}

// TestLoadgenOpenLoop: fixed arrival rate; all arrivals must be
// accounted (ok/rejected/timeout), never silently lost.
func TestLoadgenOpenLoop(t *testing.T) {
	rep := runLoop(t, 4, 32, 8, "open", 2000)
	if got := rep.OK + rep.Rejected + rep.Timeouts + rep.Failures; got != rep.Sent {
		t.Fatalf("open loop dropped responses: %s", rep)
	}
	if rep.Failures != 0 {
		t.Errorf("open loop failures: %s", rep)
	}
}

// TestBatchingThroughputGain is the core serving claim: with the same
// shard count, dynamic batching must beat the batch-size-1 configuration
// on simulated-device throughput, because a full batch retires one
// request per pseudo channel in a single kernel (the channels' clocks
// advance in parallel). The BENCH_serve run asserts >= 2x at the CI
// config; here a conservative floor guards the mechanism itself against
// regression without timing flakiness.
func TestBatchingThroughputGain(t *testing.T) {
	batched := runLoop(t, 4, 64, 8, "closed", 0)
	serial := runLoop(t, 1, 64, 8, "closed", 0)
	if batched.OK != 64 || serial.OK != 64 {
		t.Fatalf("incomplete runs:\nbatched: %s\nserial: %s", batched, serial)
	}
	if batched.AvgBatch < 2 {
		t.Errorf("dynamic batcher never batched: avg %.2f", batched.AvgBatch)
	}
	if serial.AvgBatch != 1 {
		t.Errorf("maxBatch=1 config batched anyway: avg %.2f", serial.AvgBatch)
	}
	gain := batched.SimThroughputRPS / serial.SimThroughputRPS
	if gain < 1.5 {
		t.Errorf("batching gain %.2fx < 1.5x:\nbatched: %s\nserial: %s", gain, batched, serial)
	}
}

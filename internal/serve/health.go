package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"pimsim/internal/blas"
	"pimsim/internal/fault"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
)

// Shard health.
//
// Every shard moves through a three-state machine driven by batch
// outcomes and probation probes:
//
//	healthy ──slow kernel / 1 failure──▶ suspect
//	suspect ──okProbation clean batches──▶ healthy
//	suspect ──EvictAfter consecutive failures──▶ evicted
//	evicted ──clean probation probe──▶ healthy  (back into the pool)
//
// Healthy and suspect shards stay in the pool and keep serving (a
// suspect shard is slow or flaky, not wrong — ECC guarantees that).
// An evicted shard is handed to the prober goroutine, which owns it
// exclusively: every ProbeInterval it replays a known-answer batch on
// every resident model and compares bit-for-bit against the software
// oracle. A probe that fails with an uncorrectable ECC error triggers
// the recovery path: unload the model whose weights sit on the poisoned
// row, quarantine that row in the driver (permanently — first-fit skips
// the hole, even across resets), and reload the weights onto clean rows.
// Only a fully clean probe revives the shard.
//
// State transitions are guarded by Server.hmu; the pool channel is the
// exclusion mechanism for the device itself (a shard is touched only by
// the worker holding its lease, or by the prober after eviction).

type healthState int32

const (
	shardHealthy healthState = iota
	shardSuspect             // serving, but slow or recently failed
	shardEvicted             // out of the pool, owned by the prober
)

func (h healthState) String() string {
	switch h {
	case shardHealthy:
		return "healthy"
	case shardSuspect:
		return "suspect"
	case shardEvicted:
		return "evicted"
	}
	return fmt.Sprintf("healthState(%d)", int32(h))
}

// okProbation is how many consecutive clean, fast batches a suspect
// shard needs to be promoted back to healthy.
const okProbation = 3

// setShardState moves a shard's health state and mirrors it into the
// shard's serve_shard_state gauge (value = healthState). Callers hold
// s.hmu.
func (s *Server) setShardState(sh *shard, st healthState) {
	sh.state = st
	s.stateG[sh.id].Set(0, int64(st))
}

// retryable classifies a batch error: device faults that a different
// (or recovered) shard can absorb. Everything else — a programming
// error, an invalid batch — would fail identically anywhere.
func retryable(err error) bool {
	var ue *hbm.UncorrectableError
	var de *fault.ShardDeadError
	return errors.As(err, &ue) || errors.As(err, &de)
}

// statusFor maps a terminal batch error to its HTTP status: retryable
// device faults that exhausted every retry are a capacity problem
// (503, the client should back off and return), anything else is 500.
func statusFor(err error) int {
	if retryable(err) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// noteSuccess records a clean batch: resets the failure streak, updates
// the model's best-case latency baseline, and moves the shard along the
// suspect/healthy axis. cycles is the batch kernel's slowest channel —
// one request per channel, so it is also the per-request latency.
func (s *Server) noteSuccess(m *model, sh *shard, cycles int64) {
	base := m.minCycles.Load()
	for base == 0 || cycles < base {
		if m.minCycles.CompareAndSwap(base, cycles) {
			break
		}
		base = m.minCycles.Load()
	}
	slow := base > 0 && float64(cycles) > s.cfg.SuspectCycleFactor*float64(base)

	s.hmu.Lock()
	defer s.hmu.Unlock()
	sh.consecFails = 0
	switch sh.state {
	case shardHealthy:
		if slow {
			s.setShardState(sh, shardSuspect)
			sh.okStreak = 0
			s.suspects.Inc(0)
		}
	case shardSuspect:
		if slow {
			sh.okStreak = 0
			return
		}
		sh.okStreak++
		if sh.okStreak >= okProbation {
			s.setShardState(sh, shardHealthy)
			sh.okStreak = 0
		}
	}
}

// noteFailure records a failed batch attempt and decides the shard's
// fate: eviction (handed to the prober) once EvictAfter consecutive
// failures accumulate, demotion to suspect otherwise. Either way the
// shard leaves the caller's hands — do not touch it after this returns.
func (s *Server) noteFailure(sh *shard, err error) {
	s.hmu.Lock()
	sh.consecFails++
	sh.okStreak = 0
	sh.lastErr = err
	evict := sh.consecFails >= s.cfg.EvictAfter
	if evict {
		s.setShardState(sh, shardEvicted)
		s.healthyG.Set(0, s.healthy.Add(-1))
	} else if sh.state == shardHealthy {
		s.setShardState(sh, shardSuspect)
		s.suspects.Inc(0)
	}
	s.hmu.Unlock()

	if evict {
		s.evictions.Inc(0)
		// Buffered to Shards and a shard is in at most one place, so
		// this never blocks even after the prober has exited.
		s.probeq <- sh
	} else {
		s.pool <- sh
	}
}

// backoff returns the sleep before retry `attempt` (0-based):
// exponential from RetryBackoff, capped, with ±50% jitter so competing
// retries don't stampede the pool in lockstep.
func (s *Server) backoff(attempt int) time.Duration {
	d := s.cfg.RetryBackoff << uint(attempt)
	if max := 50 * time.Millisecond; d > max {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// leaseRetry acquires a replacement shard for a retry, bounded by
// RetryLeaseWait: with every shard evicted there is nothing to wait
// for, and the batch fails 503 rather than stalling its clients.
func (s *Server) leaseRetry() *shard {
	t := time.NewTimer(s.cfg.RetryLeaseWait)
	defer t.Stop()
	select {
	case sh := <-s.pool:
		return sh
	case <-t.C:
		return nil
	}
}

// prober owns every evicted shard until it revives. It wakes every
// ProbeInterval and re-probes its flock; shards that pass a full
// known-answer check re-enter the pool.
func (s *Server) prober() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ProbeInterval)
	defer ticker.Stop()
	var flock []*shard
	for {
		select {
		case <-s.quit:
			return
		case sh := <-s.probeq:
			flock = append(flock, sh)
		case <-ticker.C:
			keep := flock[:0]
			for _, sh := range flock {
				if !s.probeShard(sh) {
					keep = append(keep, sh)
				}
			}
			flock = keep
		}
	}
}

// probeShard runs one probation probe and revives the shard on success.
// Reports whether the shard left probation.
func (s *Server) probeShard(sh *shard) bool {
	s.probes.Inc(0)
	err := s.runProbe(sh)
	if err == nil {
		sh.ueSeen = false
		s.hmu.Lock()
		s.setShardState(sh, shardHealthy)
		sh.consecFails, sh.okStreak = 0, 0
		sh.lastErr = nil
		s.healthyG.Set(0, s.healthy.Add(1))
		s.hmu.Unlock()
		s.revivals.Inc(0)
		s.pool <- sh
		return true
	}
	s.hmu.Lock()
	sh.lastErr = err
	s.hmu.Unlock()
	s.recoverShard(sh)
	// An uncorrectable ECC fault names the poisoned row — but only
	// quarantine it once a second consecutive probe blames the same row.
	// A transient multi-bit upset names a random row exactly once and
	// costs nothing to ride out; a stuck cell names its row every probe,
	// and that persistence is what spends a quarantine slot.
	var ue *hbm.UncorrectableError
	if errors.As(err, &ue) {
		if sh.ueSeen && sh.ueRow == ue.Row {
			s.relocate(sh, ue)
			sh.ueSeen = false
		} else {
			sh.ueRow, sh.ueSeen = ue.Row, true
		}
	} else {
		sh.ueSeen = false
	}
	return false
}

// runProbe replays a known-answer batch for every resident model, one
// request per channel so every channel's weight copy is exercised, and
// compares bit-for-bit against the precomputed oracle.
func (s *Server) runProbe(sh *shard) error {
	if sh.inj != nil {
		if err := sh.inj.ProbeErr(); err != nil {
			return err
		}
	}
	B := sh.rt.NumChannels()
	for name, m := range s.mods {
		g := sh.loaded[name]
		xs := make([]fp16.Vector, B)
		for i := range xs {
			xs[i] = m.probeX
		}
		ys, _, err := g.RunBatch(sh.rt, xs)
		s.collectShardECC(sh)
		if err != nil {
			return fmt.Errorf("probe %s: %w", name, err)
		}
		for ch, y := range ys {
			if !vecEq(y, m.probeY) {
				return fmt.Errorf("probe %s: output mismatch on shard %d channel %d", name, sh.id, ch)
			}
		}
	}
	return nil
}

func vecEq(a, b fp16.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// relocate recovers from a permanently poisoned weight row: unload the
// model resident on it, retire the row in the driver's allocator, and
// lay the weights out again — first-fit lands them past the hole. The
// shard stays evicted; the next probe decides whether it is clean now.
func (s *Server) relocate(sh *shard, ue *hbm.UncorrectableError) {
	for name, g := range sh.loaded {
		base, n := g.RowRange()
		if ue.Row < base || ue.Row >= base+uint32(n) {
			continue
		}
		m := s.mods[name]
		if err := g.Unload(sh.rt); err != nil {
			return
		}
		if err := sh.rt.Drv.QuarantinePIMRows(ue.Row, 1); err == nil {
			s.quarantinedG.Add(0, 1)
		}
		g2, err := blas.LoadGemv(sh.rt, m.W, m.spec.M, m.spec.K)
		if err != nil {
			// Out of rows: the stale handle keeps probes failing and the
			// shard stays out of service, which is the honest outcome.
			return
		}
		sh.loaded[name] = g2
		return
	}
}

// recoverShard unwinds an aborted kernel on every channel of a shard
// (precharge all, exit PIM/AB modes) so the next launch starts from
// clean single-bank state. Best effort: a channel that cannot even
// recover keeps failing its probes and the shard stays out of service,
// which is the honest outcome. Only the lease holder may call it.
func (s *Server) recoverShard(sh *shard) {
	for ch := range sh.rt.Chans {
		_ = sh.rt.Recover(ch)
	}
}

// collectShardECC folds the shard's cumulative device ECC counters into
// the serving registry as deltas. Only the lease holder (worker or
// prober) may call it: device stats are unsynchronized.
func (s *Server) collectShardECC(sh *shard) {
	var corr, unc int64
	for _, c := range sh.rt.Chans {
		st := c.PCH().Stats()
		corr += st.ECCCorrected
		unc += st.ECCUncorrectable
	}
	s.eccCorrC.Add(0, corr-sh.eccCorr)
	s.eccUncorrC.Add(0, unc-sh.eccUncorr)
	sh.eccCorr, sh.eccUncorr = corr, unc
}

// ShardStates snapshots each shard's health (indexed by shard id), for
// /healthz and tests.
func (s *Server) ShardStates() []string {
	out := make([]string, len(s.shards))
	s.hmu.Lock()
	defer s.hmu.Unlock()
	for i, sh := range s.shards {
		out[i] = sh.state.String()
	}
	return out
}

// HealthyShards returns how many shards are currently not evicted.
func (s *Server) HealthyShards() int { return int(s.healthy.Load()) }

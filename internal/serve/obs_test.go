package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pimsim/internal/obs"
)

// TestRequestTracing drives one request through a traced server and
// checks the span tree the flight recorder reconstructs for it: a root
// "request" span carrying the X-Request-ID the client saw, with "queue"
// and "exec" children, the exec span bound to the serving shard and
// carrying the kernel phase breakdown.
func TestRequestTracing(t *testing.T) {
	tracer := obs.NewTracer(256)
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2, Models: []ModelSpec{tiny},
		Tracer: tracer,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 3)
	resp, _ := postInfer(t, ts, inferBody(t, "tiny", in))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("response missing X-Request-ID")
	}

	tree := tracer.Tree(id)
	byName := map[string]obs.Span{}
	for _, sp := range tree {
		byName[sp.Name] = sp
	}
	root, ok := byName["request"]
	if !ok {
		t.Fatalf("no request root for %s (tree %v)", id, tree)
	}
	if root.Parent != 0 {
		t.Errorf("root has parent %d", root.Parent)
	}
	q, ok := byName["queue"]
	if !ok {
		t.Fatal("no queue span")
	}
	if q.Parent != root.ID {
		t.Errorf("queue parent %d, want root %d", q.Parent, root.ID)
	}
	ex, ok := byName["exec"]
	if !ok {
		t.Fatal("no exec span")
	}
	if ex.Parent != root.ID {
		t.Errorf("exec parent %d, want root %d", ex.Parent, root.ID)
	}
	if ex.Shard != 0 {
		t.Errorf("exec span on shard %d, want 0", ex.Shard)
	}
	if ex.Cycles <= 0 {
		t.Errorf("exec span carries %d cycles, want > 0", ex.Cycles)
	}
	if !strings.Contains(ex.Attrs, "trigger=") || !strings.Contains(ex.Attrs, "batch=") {
		t.Errorf("exec attrs %q missing the phase breakdown", ex.Attrs)
	}
	if !strings.Contains(root.Attrs, "model=tiny") || !strings.Contains(root.Attrs, "status=200") {
		t.Errorf("root attrs %q missing model/status", root.Attrs)
	}
}

// TestDebugTraceEndpoint: GET /debug/trace serves the flight recorder as
// Chrome trace-event JSON; an untraced server 404s it.
func TestDebugTraceEndpoint(t *testing.T) {
	tracer := obs.NewTracer(256)
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2, Models: []ModelSpec{tiny},
		Tracer: tracer,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 3)
	postInfer(t, ts, inferBody(t, "tiny", in))

	resp, err := ts.Client().Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type %q", ct)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&file); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var sliceEvents int
	for _, ev := range file.TraceEvents {
		if ev["ph"] == "X" {
			sliceEvents++
		}
	}
	if sliceEvents == 0 {
		t.Error("trace holds no span slices after a served request")
	}

	// Untraced server: the endpoint must not pretend.
	s2 := newTestServer(t, Config{Shards: 1, Channels: 2, Models: []ModelSpec{tiny}})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, err := ts2.Client().Get(ts2.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("untraced /debug/trace: %d, want 404", resp2.StatusCode)
	}
}

// TestAccessLog: every request produces one structured JSON log record
// with the request ID, model, batch/shard placement and outcome.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2, Models: []ModelSpec{tiny},
		Logger: logger,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 3)
	resp, _ := postInfer(t, ts, inferBody(t, "tiny", in))
	id := resp.Header.Get("X-Request-ID")

	var rec map[string]any
	found := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if m["msg"] == "infer" {
			rec, found = m, true
		}
	}
	if !found {
		t.Fatalf("no infer access-log record in %q", buf.String())
	}
	if rec["req"] != id {
		t.Errorf("log req %v, want header ID %s", rec["req"], id)
	}
	if rec["model"] != "tiny" {
		t.Errorf("log model %v", rec["model"])
	}
	if st, _ := rec["status"].(float64); st != 200 {
		t.Errorf("log status %v", rec["status"])
	}
	if sh, _ := rec["shard"].(float64); sh != 0 {
		t.Errorf("log shard %v, want 0", rec["shard"])
	}
	for _, f := range []string{"batch", "queue_us", "wall_us", "inputs"} {
		if _, ok := rec[f]; !ok {
			t.Errorf("access log missing field %s", f)
		}
	}

	// A rejected request logs too, at warn, with its error.
	buf.Reset()
	resp2, _ := postInfer(t, ts, `{"model":"missing","input":[1]}`)
	if resp2.StatusCode == http.StatusOK {
		t.Fatalf("unknown model answered %d", resp2.StatusCode)
	}
	if !strings.Contains(buf.String(), `"level":"WARN"`) || !strings.Contains(buf.String(), `"err"`) {
		t.Errorf("failed request did not log a warning with err: %q", buf.String())
	}
}

// TestShardStateGauge: the per-shard health gauge tracks the state
// machine through eviction and revival.
func TestShardStateGauge(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, Channels: 2, Models: []ModelSpec{tiny}})

	read := func() map[string]int64 {
		snap := s.Metrics().Snapshot()
		out := map[string]int64{}
		for name, v := range snap.Gauges {
			if strings.HasPrefix(name, "serve_shard_state") {
				out[name] = v
			}
		}
		return out
	}
	g := read()
	if len(g) != 2 {
		t.Fatalf("got %d serve_shard_state gauges, want 2: %v", len(g), g)
	}
	for name, v := range g {
		if v != int64(shardHealthy) {
			t.Errorf("%s = %d at boot, want %d (healthy)", name, v, shardHealthy)
		}
	}

	// Drive shard 0 through the machine directly (hmu-guarded helper).
	sh := s.shards[0]
	s.hmu.Lock()
	s.setShardState(sh, shardSuspect)
	s.hmu.Unlock()
	if v := read()[`serve_shard_state{shard="0"}`]; v != int64(shardSuspect) {
		t.Errorf("gauge after suspect = %d, want %d", v, shardSuspect)
	}
	s.hmu.Lock()
	s.setShardState(sh, shardEvicted)
	s.hmu.Unlock()
	if v := read()[`serve_shard_state{shard="0"}`]; v != int64(shardEvicted) {
		t.Errorf("gauge after evict = %d, want %d", v, shardEvicted)
	}
	s.hmu.Lock()
	s.setShardState(sh, shardHealthy)
	s.hmu.Unlock()
	if v := read()[`serve_shard_state{shard="0"}`]; v != int64(shardHealthy) {
		t.Errorf("gauge after revive = %d, want %d", v, shardHealthy)
	}
	if v := read()[`serve_shard_state{shard="1"}`]; v != int64(shardHealthy) {
		t.Errorf("shard 1 gauge moved to %d, want untouched healthy", v)
	}
}

// TestSlowRequestHook: the tracer's slow hook fires with the request's
// full tree when a root span exceeds the threshold.
func TestSlowRequestHook(t *testing.T) {
	tracer := obs.NewTracer(256)
	trees := make(chan []obs.Span, 8)
	tracer.SetSlow(time.Nanosecond, func(tree []obs.Span) { trees <- tree })
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2, Models: []ModelSpec{tiny},
		Tracer: tracer,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 3)
	resp, _ := postInfer(t, ts, inferBody(t, "tiny", in))
	id := resp.Header.Get("X-Request-ID")

	select {
	case tree := <-trees:
		if len(tree) < 3 {
			t.Fatalf("slow tree has %d spans, want >= 3 (request, queue, exec)", len(tree))
		}
		if tree[0].Req != id || tree[0].Name != "request" {
			t.Errorf("slow tree root = %s/%s, want request/%s", tree[0].Name, tree[0].Req, id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow hook never fired with a nanosecond threshold")
	}
}

// Package serve is the online inference layer over the simulated PIM
// system: an HTTP server that owns a pool of independent simulated
// PIM-HBM shards (one runtime.Runtime + driver.Driver each, with model
// weights resident in the banks via blas.LoadGemv) and pushes requests
// through an admission -> batch -> shard pipeline:
//
//	POST /v1/infer   bounded admission queue per model (429 + Retry-After
//	                 on overflow), per-request deadline (504 on expiry; an
//	                 expired request never reaches a shard), a dynamic
//	                 batcher that flushes on max-batch-size or max-wait —
//	                 whichever first — and packs compatible GEMV requests
//	                 into one PIM kernel launch, worker goroutines that
//	                 lease shards from the pool
//	GET  /healthz    liveness + loaded-model inventory
//	GET  /metrics    Prometheus text exposition of the serving metrics
//	GET  /metrics.json  the same snapshot as JSON (metrics.Snapshot)
//
// Batching is bounded by the PIM kernel's shape: a batch maps one request
// per pseudo channel (blas.ResidentGemv), because the input splats ride
// the per-channel write datapath that all of a channel's execution units
// share. Close drains in-flight work without dropping any accepted
// request.
//
// Admission is multi-tenant (see qos.go and docs/SERVING.md): each model
// queue is a weighted fair queue with one lane per configured tenant
// (request `tenant` field or X-Tenant header), EDF deadline order within
// a lane, graduated load shedding that displaces the lowest-priority
// queued work first (429/504 responses carry Retry-After and a
// machine-readable shed reason), and optional hedged re-dispatch of
// straggling batches onto an idle shard (Config.HedgeDelay) for the
// p99.9 tail.
//
// Concurrency contracts a maintainer must preserve: every model queue
// has exactly one consumer goroutine (its batcher or stepper) — the
// fairQueue notify protocol depends on it; Tracer and Logger are
// nil-checked at every hook site, so a nil either is zero-cost; the
// batchers' flush timers and the hedge timer go through Server.newTimer
// and Server.newHedgeTimer so tests can drive flushes deterministically
// with fake timers (batchtimer_test.go) instead of sleeping; the
// engine-determinism goldens (`make race-goldens`) pin that none of this
// scheduling perturbs device results bit-for-bit.
//
// The layer is fault-tolerant: device faults (uncorrectable ECC errors,
// whole-shard outages — see internal/fault) surface as typed errors that
// classify as retryable, and a failed batch is re-dispatched onto a
// freshly leased shard with exponential backoff, up to Config.MaxRetries.
// Shards move through a health machine (healthy -> suspect -> evicted ->
// probation, see health.go) driven by batch outcomes; evicted shards are
// owned by a prober goroutine that replays known-answer batches,
// quarantines persistently poisoned weight rows (relocating the model to
// clean rows), and revives shards only after a fully clean probe. With
// zero healthy shards the service degrades to fast 503s and a 503
// /healthz rather than queueing without bound. The invariant all of this
// preserves: a 200 response never carries wrong data. The fault model,
// error taxonomy, and ops runbook are documented in docs/FAULTS.md.
package serve

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pimsim/internal/blas"
	"pimsim/internal/engine"
	"pimsim/internal/fault"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/metrics"
	"pimsim/internal/models"
	"pimsim/internal/nn"
	"pimsim/internal/obs"
	"pimsim/internal/runtime"
	"pimsim/internal/slo"
)

// ModelSpec names one servable GEMV workload: y = W*x with W an M x K
// FP16 matrix generated deterministically from Seed (the repo has no
// trained checkpoints; serving exercises the system, not the weights).
type ModelSpec struct {
	Name string `json:"name"`
	M    int    `json:"m"`
	K    int    `json:"k"`
	Seed int64  `json:"seed"`

	// BatchWait overrides Config.BatchWait for this model's batcher.
	// Models differ in arrival pattern — a hot small-output layer wants a
	// short straggler window, a cold mid-size one can afford to wait for
	// company — so the flush deadline is per-model, not server-global.
	BatchWait time.Duration `json:"batch_wait_ns,omitempty"`
}

// Weights regenerates the spec's weight matrix (deterministic, so load
// generators and tests can verify served outputs bit-exactly).
func (spec ModelSpec) Weights() fp16.Vector {
	rng := rand.New(rand.NewSource(spec.Seed<<20 ^ int64(spec.M)*31 ^ int64(spec.K)))
	v := fp16.NewVector(spec.M * spec.K)
	for i := range v {
		v[i] = fp16.FromFloat32(float32(rng.NormFloat64() * 0.25))
	}
	return v
}

// DefaultModels returns the served model set: the paper's small-output
// inference layers (dimensions pulled from internal/models so they stay
// in sync with the evaluation workloads) plus one mid-size synthetic.
func DefaultModels() []ModelSpec {
	var specs []ModelSpec
	if l, ok := findLayer(models.RNNT(), "joint_fc2"); ok {
		specs = append(specs, ModelSpec{Name: "rnnt-joint2", M: l.M, K: l.K, Seed: 1})
	}
	if l, ok := findLayer(models.DS2(), "fc_out"); ok {
		specs = append(specs, ModelSpec{Name: "ds2-fc", M: l.M, K: l.K, Seed: 2})
	}
	specs = append(specs, ModelSpec{Name: "micro-256x256", M: 256, K: 256, Seed: 3})
	return specs
}

func findLayer(m models.Model, name string) (models.Layer, bool) {
	for _, l := range m.Layers {
		if l.Name == name {
			return l, true
		}
	}
	return models.Layer{}, false
}

// Config sizes the server. Zero values take the documented defaults.
type Config struct {
	Shards   int // independent simulated PIM devices (default 2)
	Channels int // pseudo channels per shard (default 4)
	MHz      int // memory clock (default 1200, the paper's part)

	// Engine selects how each shard's runtime drives its pseudo
	// channels: "parallel" (default; worker-per-pCH goroutine pool) or
	// "serial" (sequential oracle — bit-for-bit identical results,
	// lower throughput).
	Engine string

	Models []ModelSpec // preloaded on every shard (default DefaultModels)

	// SeqModels are sequence (LSTM-stack) models compiled through
	// internal/nn and served with continuous batching: requests join and
	// leave a running step loop between timesteps instead of flushing as
	// fixed-size batches. Default none; models.ServingConfigs() has the
	// serving-scale DS2/RNN-T/GNMT stacks.
	SeqModels []models.Config

	// SeqAdmit caps how many sequences a stepper runs concurrently
	// (default 0 = every slot, i.e. Channels). SeqAdmit=1 degenerates to
	// sequential per-request execution — the continuous-batching A/B
	// baseline.
	SeqAdmit int

	// MaxSeqLen bounds frames per sequence request (default 256).
	MaxSeqLen int

	MaxBatch       int           // batch bound; clamped to Channels (default Channels)
	BatchWait      time.Duration // batcher flush timeout (default 2ms; ModelSpec.BatchWait overrides per model)
	QueueDepth     int           // per-model admission queue (default 64)
	RequestTimeout time.Duration // deadline incl. queueing (default 2s)
	MaxBodyBytes   int64         // request body cap (default 8 MiB)

	// Tenants declares the multi-tenant QoS lanes (see qos.go): per-tenant
	// weighted fair queueing with graduated, priority-ordered shedding.
	// Empty means one "default" tenant; a "default" entry is appended if
	// missing, and requests naming an unknown tenant land there.
	Tenants []TenantSpec

	// HedgeDelay arms hedged re-dispatch: a batch still running after
	// this long is duplicated onto an idle shard (if one is free) and the
	// first result wins — the deterministic kernels make the duplicate
	// bit-identical, so hedging only cuts tail latency, never changes
	// answers. 0 (default) disables hedging.
	HedgeDelay time.Duration

	// Fault tolerance. ECC turns on every shard's on-die SEC-DED engine;
	// Fault attaches a deterministic injector (specialized per shard via
	// fault.Config.ForShard — profiles that corrupt data force ECC on, or
	// served outputs would silently rot). See docs/FAULTS.md.
	ECC   bool
	Fault *fault.Config

	// MaxRetries bounds how many times a batch that failed with a
	// retryable device error (hbm.UncorrectableError, fault.ShardDeadError)
	// is re-dispatched to another shard (default 3; negative disables).
	// RetryBackoff is the base of the exponential inter-attempt sleep
	// (default 1ms, jittered); RetryLeaseWait bounds the wait for a
	// replacement shard per retry (default 250ms, then the batch fails 503).
	MaxRetries     int
	RetryBackoff   time.Duration
	RetryLeaseWait time.Duration

	// EvictAfter is the consecutive-batch-failure count that evicts a
	// shard into probation (default 2). ProbeInterval paces the prober's
	// known-answer re-probes of evicted shards (default 20ms).
	// SuspectCycleFactor marks a shard suspect when a batch kernel runs
	// that multiple over the model's best observed cycles (default 3).
	EvictAfter         int
	ProbeInterval      time.Duration
	SuspectCycleFactor float64

	// Observability. Tracer hooks the flight recorder into the whole
	// pipeline: a root span per request (ID returned in X-Request-ID),
	// queue/exec children, re-dispatch and driver-allocator events. Nil
	// disables tracing at the cost of one pointer compare per hook site.
	// Logger receives one structured access-log record per /v1/infer
	// request; nil disables access logging.
	Tracer *obs.Tracer
	Logger *slog.Logger

	// SLO arms the objective engine (internal/slo): per-tenant×model
	// burn-rate evaluation over sliding windows, exemplars on
	// /debug/slow, and — when SLO.Hedge is set — the closed control loop
	// that retargets each model's hedge delay from its observed windowed
	// p99 instead of the static HedgeDelay. Nil disables the engine; the
	// hooks then cost one pointer compare per request (see internal/slo's
	// nil-receiver discipline) and hedge delays stay at HedgeDelay
	// forever.
	SLO *slo.Config
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Channels <= 0 {
		c.Channels = 4
	}
	if c.MHz <= 0 {
		c.MHz = 1200
	}
	if c.Engine == "" {
		c.Engine = "parallel"
	}
	if c.Models == nil {
		c.Models = DefaultModels()
	}
	if c.MaxBatch <= 0 || c.MaxBatch > c.Channels {
		c.MaxBatch = c.Channels
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.SeqAdmit <= 0 || c.SeqAdmit > c.Channels {
		c.SeqAdmit = c.Channels
	}
	if c.MaxSeqLen <= 0 {
		c.MaxSeqLen = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Fault != nil && !c.Fault.Enabled() {
		c.Fault = nil
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 3
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.RetryLeaseWait <= 0 {
		c.RetryLeaseWait = 250 * time.Millisecond
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 20 * time.Millisecond
	}
	if c.SuspectCycleFactor <= 0 {
		c.SuspectCycleFactor = 3
	}
}

// shard is one independent simulated PIM device with every model
// resident. A shard is leased to at most one worker at a time (the pool
// channel is the lease), so its Runtime never sees concurrent kernels.
// Health fields are guarded by Server.hmu (see health.go); the ECC
// watermarks belong to whoever holds the lease.
type shard struct {
	id     int
	rt     *runtime.Runtime
	loaded map[string]*blas.ResidentGemv
	seq    map[string]*nn.Resident // sequence models resident on this shard
	inj    *fault.Injector         // nil unless the server was built with a fault profile

	state       healthState
	consecFails int
	okStreak    int
	lastErr     error

	// Uncorrectable-row confirmation, owned by the prober: a row is only
	// quarantined once two consecutive probes blame it (a transient
	// double-bit upset names a random row once; a stuck cell names the
	// same row every time).
	ueRow  uint32
	ueSeen bool

	eccCorr, eccUncorr int64 // cumulative device counts already folded into metrics
}

// model is one served workload: its weights, admission queue, and the
// known-answer probe the prober replays on evicted shards.
type model struct {
	spec     ModelSpec
	W        fp16.Vector
	q        *fairQueue[*request] // WFQ admission queue (qos.go); depth is Config.QueueDepth
	depth    int                  // configured queue bound (pre-capacity-scaling)
	maxBatch int
	wait     time.Duration // straggler-flush deadline (spec override or Config.BatchWait)

	probeX fp16.Vector // fixed probe input
	probeY fp16.Vector // oracle output (device accumulation order)

	// minCycles is the best per-request kernel cycle count observed: the
	// latency baseline that SuspectCycleFactor multiplies.
	minCycles atomic.Int64

	// hedgeNs is the live hedge delay for this model's dispatches,
	// seeded from Config.HedgeDelay and retargeted by the SLO engine's
	// hedge controller when Config.SLO.Hedge is armed. Read by dispatch
	// on every batch; <= 0 disables hedging for the model.
	hedgeNs atomic.Int64
}

// request is one admitted input vector on its way to a shard.
type request struct {
	ctx  context.Context
	x    fp16.Vector
	ten  *tenant
	enq  time.Time
	resp chan response // buffered; the pipeline never blocks on a reply

	// Tracing context (zero valued when tracing is off): the request ID,
	// the HTTP root span the pipeline hangs children off, and the open
	// queue span the batcher ends when it pops the request.
	id    string
	root  obs.SpanHandle
	qspan obs.SpanHandle
}

// response is the terminal outcome of one request. Exactly one response
// is delivered for every admitted request — the zero-drop contract.
type response struct {
	y            fp16.Vector
	err          error
	status       int
	batch        int
	shard        int
	kernelCycles int64
	kernelNs     float64
	queueUs      int64
}

// Server is the inference service.
type Server struct {
	cfg     Config
	mods    map[string]*model
	seqMods map[string]*seqModel
	tenants map[string]*tenant
	shards  []*shard
	pool    chan *shard

	mu       sync.RWMutex // guards draining vs. enqueue/close(queue)
	draining bool

	wg sync.WaitGroup // batchers + in-flight batch workers + prober

	hmu     sync.Mutex   // guards shard health fields + healthy transitions
	healthy atomic.Int64 // shards not currently evicted
	probeq  chan *shard  // evicted shards en route to the prober
	quit    chan struct{}

	reg          *metrics.Registry
	admitted     *metrics.Counter
	served       *metrics.Counter
	batches      *metrics.Counter
	deviceCycles *metrics.Counter
	queueDepth   *metrics.Gauge
	queueWait    *metrics.Histogram
	batchSize    *metrics.Histogram
	kernelCyc    *metrics.Histogram
	wallUs       *metrics.Histogram
	codes        map[int]*metrics.Counter

	retries      *metrics.Counter // batch re-dispatch attempts
	redispatched *metrics.Counter // requests carried by those attempts
	hedges       *metrics.Counter // hedged duplicate dispatches launched
	hedgeWins    *metrics.Counter // batches answered by the hedge, not the primary
	shedTotal    *metrics.Counter // requests shed by the QoS layer (any reason)
	evictions    *metrics.Counter
	revivals     *metrics.Counter
	suspects     *metrics.Counter // healthy -> suspect demotions
	probes       *metrics.Counter // probation probes run
	healthyG     *metrics.Gauge
	quarantinedG *metrics.Gauge // PIM rows retired across all shards
	eccCorrC     *metrics.Counter
	eccUncorrC   *metrics.Counter
	stateG       []*metrics.Gauge // per-shard health state (healthState value)

	// Continuous-batching metrics (see seq.go).
	seqAdmitted   *metrics.Counter   // sequences accepted into a queue
	seqCompleted  *metrics.Counter   // sequences answered 200
	seqSteps      *metrics.Counter   // device timesteps executed
	seqMigrations *metrics.Counter   // sequence-slot migrations off faulted shards
	seqEOS        *metrics.Counter   // sequences retired early by EOS
	seqOccupancy  *metrics.Histogram // active slots per executed step
	seqStepCyc    *metrics.Histogram // device cycles per step (all slots)

	// Sliding-window server metrics: what the last minute looked like,
	// feeding /debug/ops and the SLO engine-independent parts of pimtop.
	winWallUs *metrics.WindowHistogram // request wall time, all /v1/infer
	winBatch  *metrics.WindowHistogram // device batch sizes formed
	winAdmit  *metrics.WindowCounter   // admissions (gemv + sequence)

	slo *slo.Engine // nil = SLO engine disabled (hooks are no-ops)

	tracer *obs.Tracer  // nil = tracing disabled
	logger *slog.Logger // nil = access logging disabled

	// newTimer builds the batchers' straggler-flush timers. Tests swap in
	// a hand-driven implementation to exercise flush timing without
	// sleeping; production always uses the time.Timer wrapper.
	// newHedgeTimer does the same for the hedged-dispatch delay, kept
	// separate so flush-timer tests never see hedge timers.
	newTimer      func(d time.Duration) batchTimer
	newHedgeTimer func(d time.Duration) batchTimer
}

// New boots the shard pool, generates and loads every model's weights on
// every shard, and starts one batcher per model.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	tenants, err := normalizeTenants(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	cfg.Tenants = tenants
	s := &Server{
		cfg:           cfg,
		mods:          make(map[string]*model, len(cfg.Models)),
		tenants:       make(map[string]*tenant, len(tenants)),
		pool:          make(chan *shard, cfg.Shards),
		probeq:        make(chan *shard, cfg.Shards),
		quit:          make(chan struct{}),
		reg:           metrics.New(1),
		newTimer:      newRealTimer,
		newHedgeTimer: newRealTimer,
	}
	s.admitted = s.reg.Counter("serve_admitted_total")
	s.served = s.reg.Counter("serve_served_total")
	s.batches = s.reg.Counter("serve_batches_total")
	s.deviceCycles = s.reg.Counter("serve_device_busy_cycles_total")
	s.queueDepth = s.reg.Gauge("serve_queue_depth")
	s.queueWait = s.reg.Histogram("serve_queue_wait_us", metrics.ExpBuckets(1, 2, 24))
	s.batchSize = s.reg.Histogram("serve_batch_size", linearBuckets(1, cfg.Channels))
	s.kernelCyc = s.reg.Histogram("serve_kernel_cycles", metrics.ExpBuckets(64, 2, 24))
	s.wallUs = s.reg.Histogram("serve_request_wall_us", metrics.ExpBuckets(1, 2, 26))
	s.codes = make(map[int]*metrics.Counter)
	for _, code := range []int{200, 400, 404, 405, 429, 500, 503, 504} {
		s.codes[code] = s.reg.Counter(fmt.Sprintf("serve_responses_total{code=%q}", fmt.Sprint(code)))
	}
	s.retries = s.reg.Counter("serve_retries_total")
	s.redispatched = s.reg.Counter("serve_redispatch_requests_total")
	s.hedges = s.reg.Counter("serve_hedges_total")
	s.hedgeWins = s.reg.Counter("serve_hedge_wins_total")
	s.shedTotal = s.reg.Counter("serve_shed_total")
	s.evictions = s.reg.Counter("serve_shard_evictions_total")
	s.revivals = s.reg.Counter("serve_shard_revivals_total")
	s.suspects = s.reg.Counter("serve_shard_suspect_total")
	s.probes = s.reg.Counter("serve_probes_total")
	s.healthyG = s.reg.Gauge("serve_shards_healthy")
	s.quarantinedG = s.reg.Gauge("serve_rows_quarantined")
	s.eccCorrC = s.reg.Counter("serve_ecc_corrected_total")
	s.eccUncorrC = s.reg.Counter("serve_ecc_uncorrectable_total")
	s.seqAdmitted = s.reg.Counter("serve_seq_admitted_total")
	s.seqCompleted = s.reg.Counter("serve_seq_completed_total")
	s.seqSteps = s.reg.Counter("serve_seq_steps_total")
	s.seqMigrations = s.reg.Counter("serve_seq_migrations_total")
	s.seqEOS = s.reg.Counter("serve_seq_eos_total")
	s.seqOccupancy = s.reg.Histogram("serve_seq_occupancy", linearBuckets(1, cfg.Channels))
	s.seqStepCyc = s.reg.Histogram("serve_seq_step_cycles", metrics.ExpBuckets(64, 2, 26))
	// Sliding-window views of the pipeline (default 60s of 2s slots):
	// the "last minute" the ops surface and pimtop summarize, alongside
	// the cumulative series above.
	s.winWallUs = s.reg.WindowHistogram("serve_window_request_wall_us", metrics.ExpBuckets(1, 2, 26), metrics.WindowOpts{})
	s.winBatch = s.reg.WindowHistogram("serve_window_batch_size", linearBuckets(1, cfg.Channels), metrics.WindowOpts{})
	s.winAdmit = s.reg.WindowCounter("serve_window_admitted", metrics.WindowOpts{})
	s.reg.SetHelp("serve_window_request_wall_us", "request wall time over the sliding window (us)")
	s.reg.SetHelp("serve_window_batch_size", "device batch sizes formed over the sliding window")
	s.reg.SetHelp("serve_window_admitted", "requests admitted over the sliding window")
	s.tracer = cfg.Tracer
	s.logger = cfg.Logger
	if cfg.SLO != nil {
		sc := *cfg.SLO
		if sc.Hedge != nil {
			// Seed the controller from the static delay so the first
			// batches hedge like the operator asked, then track p99.
			h := *sc.Hedge
			if h.Initial <= 0 {
				h.Initial = cfg.HedgeDelay
			}
			sc.Hedge = &h
		}
		s.slo = slo.New(sc, s.reg)
	}
	// Per-shard health-state gauges: 0 healthy, 1 suspect, 2 evicted (an
	// evicted shard is in probation — the prober owns it).
	s.stateG = make([]*metrics.Gauge, cfg.Shards)
	for i := range s.stateG {
		s.stateG[i] = s.reg.Gauge(fmt.Sprintf("serve_shard_state{shard=%q}", fmt.Sprint(i)))
	}

	// Tenants: one lane per spec in every model queue, with per-tenant
	// admission/service/shed metrics (labels ride in the metric name, the
	// same idiom as serve_shard_state above).
	for _, sp := range cfg.Tenants {
		t := &tenant{
			spec:      sp,
			admitted:  s.reg.Counter(fmt.Sprintf("serve_tenant_admitted_total{tenant=%q}", sp.Name)),
			served:    s.reg.Counter(fmt.Sprintf("serve_tenant_served_total{tenant=%q}", sp.Name)),
			queueWait: s.reg.Histogram(fmt.Sprintf("serve_tenant_queue_wait_us{tenant=%q}", sp.Name), metrics.ExpBuckets(1, 2, 24)),
			shed:      make(map[string]*metrics.Counter, 3),
		}
		for _, reason := range ShedReasons() {
			t.shed[reason] = s.reg.Counter(fmt.Sprintf("serve_tenant_shed_total{tenant=%q,reason=%q}", sp.Name, reason))
		}
		s.tenants[sp.Name] = t
	}

	for _, spec := range cfg.Models {
		if spec.Name == "" || spec.M <= 0 || spec.K <= 0 {
			return nil, fmt.Errorf("serve: invalid model spec %+v", spec)
		}
		if _, dup := s.mods[spec.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate model %q", spec.Name)
		}
		wait := spec.BatchWait
		if wait <= 0 {
			wait = cfg.BatchWait
		}
		m := &model{
			spec:     spec,
			W:        spec.Weights(),
			q:        newFairQueue(s.tenants, cfg.QueueDepth, func(r *request) context.Context { return r.ctx }, s.shedRequest),
			depth:    cfg.QueueDepth,
			maxBatch: cfg.MaxBatch,
			wait:     wait,
		}
		m.hedgeNs.Store(int64(cfg.HedgeDelay))
		s.mods[spec.Name] = m
	}

	// Sequence models: validate + compile once (the Plan is immutable and
	// shared by every shard's Resident and by the host oracle).
	s.seqMods = make(map[string]*seqModel, len(cfg.SeqModels))
	for _, mc := range cfg.SeqModels {
		if _, dup := s.mods[mc.Name]; dup {
			return nil, fmt.Errorf("serve: model %q declared as both gemv and sequence", mc.Name)
		}
		if _, dup := s.seqMods[mc.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate sequence model %q", mc.Name)
		}
		w, err := nn.GenWeights(mc)
		if err != nil {
			return nil, fmt.Errorf("serve: sequence model %q: %w", mc.Name, err)
		}
		plan, err := nn.Compile(w)
		if err != nil {
			return nil, fmt.Errorf("serve: sequence model %q: %w", mc.Name, err)
		}
		s.seqMods[mc.Name] = &seqModel{
			cfg:   mc,
			plan:  plan,
			q:     newFairQueue(s.tenants, cfg.QueueDepth, func(r *seqRequest) context.Context { return r.ctx }, s.shedSeqRequest),
			depth: cfg.QueueDepth,
			admit: cfg.SeqAdmit,
		}
	}

	for i := 0; i < cfg.Shards; i++ {
		var fc fault.Config
		if cfg.Fault != nil {
			fc = cfg.Fault.ForShard(i)
		}
		hcfg := hbm.PIMHBMConfig(cfg.MHz)
		hcfg.PseudoChannels = cfg.Channels
		hcfg.Functional = true
		// Data-corrupting profiles force ECC: without it flips would
		// silently rot served outputs instead of being corrected/detected.
		hcfg.ECC = cfg.ECC || fc.CorruptsData()
		dev, err := hbm.NewDevice(hcfg)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		eng, err := engine.New(cfg.Engine, cfg.Channels)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		rt.UseEngine(eng)
		if cfg.Tracer != nil {
			rt.Drv.Obs = cfg.Tracer
			rt.Drv.ObsName = fmt.Sprintf("shard%d", i)
		}
		sh := &shard{
			id:     i,
			rt:     rt,
			loaded: make(map[string]*blas.ResidentGemv, len(s.mods)),
			seq:    make(map[string]*nn.Resident, len(s.seqMods)),
		}
		if cfg.Fault != nil {
			sh.inj = fault.New(fc)
			if fc.CorruptsData() {
				dev.AttachFault(sh.inj)
			}
			for j, ch := range rt.Chans {
				ch.ChannelID = j
				if fc.Delays() {
					ch.Delay = sh.inj
				}
			}
		}
		for name, m := range s.mods {
			g, err := blas.LoadGemv(rt, m.W, m.spec.M, m.spec.K)
			if err != nil {
				return nil, fmt.Errorf("serve: shard %d: load %s: %w", i, name, err)
			}
			sh.loaded[name] = g
		}
		for name, m := range s.seqMods {
			r, err := nn.Load(rt, m.plan)
			if err != nil {
				return nil, fmt.Errorf("serve: shard %d: load %s: %w", i, name, err)
			}
			sh.seq[name] = r
		}
		s.shards = append(s.shards, sh)
		s.pool <- sh
	}
	s.healthy.Store(int64(cfg.Shards))
	s.healthyG.Set(0, int64(cfg.Shards))

	// Known-answer probes: a fixed input per model with its oracle output
	// in the device's exact accumulation order. Computed once; replayed
	// by the prober on every channel of an evicted shard.
	for name, m := range s.mods {
		rng := rand.New(rand.NewSource(m.spec.Seed ^ 0x70726f6265)) // "probe"
		m.probeX = fp16.NewVector(m.spec.K)
		for i := range m.probeX {
			m.probeX[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
		}
		m.probeY = s.shards[0].loaded[name].Oracle(s.shards[0].rt, m.W, m.probeX)
	}

	if cfg.Fault != nil {
		s.reg.RegisterCollector(s.collectInjectors)
	}

	for _, m := range s.mods {
		s.wg.Add(1)
		go s.batcher(m)
	}
	for _, m := range s.seqMods {
		s.wg.Add(1)
		go s.stepper(m)
	}
	s.wg.Add(1)
	go s.prober()
	if s.slo != nil && s.slo.Config().EvalEvery > 0 {
		s.wg.Add(1)
		go s.sloLoop()
	}
	return s, nil
}

// collectInjectors bridges the per-shard fault injector counters into
// metric snapshots (injector counters are atomics, safe any time).
func (s *Server) collectInjectors(emit func(name string, value int64)) {
	var t fault.Counters
	for _, sh := range s.shards {
		c := sh.inj.Counters()
		t.BitFlips += c.BitFlips
		t.DoubleFlips += c.DoubleFlips
		t.StuckReads += c.StuckReads
		t.Spikes += c.Spikes
		t.DeadBatches += c.DeadBatches
		t.DeadProbes += c.DeadProbes
	}
	emit("fault_bit_flips_total", t.BitFlips)
	emit("fault_double_flips_total", t.DoubleFlips)
	emit("fault_stuck_reads_total", t.StuckReads)
	emit("fault_latency_spikes_total", t.Spikes)
	emit("fault_dead_batches_total", t.DeadBatches)
	emit("fault_dead_probes_total", t.DeadProbes)
}

func linearBuckets(start, n int) []int64 {
	out := make([]int64, 0, n)
	for v := start; v < start+n; v++ {
		out = append(out, int64(v))
	}
	return out
}

// Metrics returns the serving registry (counters, queue gauge, latency
// and batch-size histograms). Shard-internal device metrics are not
// merged here: their collectors require quiescent hardware state, which
// only the worker holding a shard lease can guarantee.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Models returns the served specs (stable order not guaranteed).
func (s *Server) Models() []ModelSpec {
	out := make([]ModelSpec, 0, len(s.mods))
	for _, m := range s.mods {
		out = append(out, m.spec)
	}
	return out
}

// Tracer returns the flight recorder the server was built with (nil when
// tracing is disabled).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// enqueue admits one input vector into its model's fair queue. On
// rejection it returns the HTTP status the caller should surface
// (400/429/503; 429s carry a *ShedError with the machine-readable
// reason). id and root are the request's tracing context (zero valued
// when tracing is off); an admitted request carries an open queue span
// that the batcher ends when it pops the request.
func (s *Server) enqueue(ctx context.Context, name, tenantName string, x fp16.Vector, enq time.Time, id string, root obs.SpanHandle) (*request, int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server draining")
	}
	m := s.mods[name]
	if m == nil {
		// A name the server has never heard of is a 404 — the resource
		// does not exist; a wrong request *shape* for a loaded model stays
		// a 400. GET /v1/models lists what is servable.
		if s.seqMods[name] != nil {
			return nil, http.StatusBadRequest,
				fmt.Errorf("model %q is a sequence model: post frames, not input", name)
		}
		return nil, http.StatusNotFound, fmt.Errorf("unknown model %q", name)
	}
	if len(x) != m.spec.K {
		return nil, http.StatusBadRequest,
			fmt.Errorf("model %s takes %d inputs, got %d", name, m.spec.K, len(x))
	}
	// Capacity-aware degradation: with every shard evicted there is no
	// device to run on — fail fast (503) instead of queueing work that
	// can only time out. With some shards evicted, shrink the effective
	// queue bound proportionally so backpressure (429 + Retry-After)
	// arrives before the queue outgrows the surviving capacity.
	healthy := int(s.healthy.Load())
	if healthy <= 0 {
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("no healthy shards (probation probes running)")
	}
	depth := m.depth
	if healthy < s.cfg.Shards {
		if depth = depth * healthy / s.cfg.Shards; depth < 1 {
			depth = 1
		}
	}
	ten := s.tenantFor(tenantName)
	req := &request{ctx: ctx, x: x, ten: ten, enq: enq, resp: make(chan response, 1), id: id, root: root}
	// The queue span must exist before the push: the batcher may pop the
	// request (and end the span) the moment it lands in the queue. On
	// the rejection path below the unstarted span is simply never
	// recorded — handles only reach the ring when ended.
	req.qspan = root.Child("queue")
	if ok, reason := m.q.push(req, ten, depth); !ok {
		ten.shed[reason].Inc(0)
		s.shedTotal.Inc(0)
		return nil, http.StatusTooManyRequests, &ShedError{
			Reason: reason,
			Detail: fmt.Sprintf("model %s admission queue full for tenant %s (%d deep, %d/%d shards healthy)",
				name, ten.spec.Name, depth, healthy, s.cfg.Shards),
		}
	}
	s.admitted.Inc(0)
	ten.admitted.Inc(0)
	s.queueDepth.Add(0, 1)
	s.winAdmit.Inc()
	s.slo.RecordAdmit(ten.spec.Name, name)
	return req, http.StatusOK, nil
}

// shedRequest is the fair queue's shed callback for GEMV requests: it
// delivers the terminal shed response (429 for priority displacement,
// 504 for an expired deadline) and keeps the queue accounting honest.
// Runs outside the queue lock; the buffered resp channel never blocks.
func (s *Server) shedRequest(r *request, reason string) {
	s.queueDepth.Add(0, -1)
	r.qspan.End()
	r.ten.shed[reason].Inc(0)
	s.shedTotal.Inc(0)
	status := http.StatusTooManyRequests
	if reason == ShedDeadlineExpired {
		status = http.StatusGatewayTimeout
	}
	r.resp <- response{status: status, err: &ShedError{Reason: reason,
		Detail: fmt.Sprintf("request shed from queue: %s", reason)}}
}

// shedSeqRequest mirrors shedRequest for sequence requests.
func (s *Server) shedSeqRequest(r *seqRequest, reason string) {
	s.queueDepth.Add(0, -1)
	r.qspan.End()
	r.ten.shed[reason].Inc(0)
	s.shedTotal.Inc(0)
	status := http.StatusTooManyRequests
	if reason == ShedDeadlineExpired {
		status = http.StatusGatewayTimeout
	}
	r.resp <- seqResponse{status: status, eosAt: -1, err: &ShedError{Reason: reason,
		Detail: fmt.Sprintf("sequence shed from queue: %s", reason)}}
}

// Close stops admission and drains: every already-accepted request still
// gets a terminal response before Close returns. ctx bounds the wait.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for _, m := range s.mods {
		m.q.close()
	}
	for _, m := range s.seqMods {
		m.q.close()
	}
	s.mu.Unlock()
	// Wakes the prober and lets batchers blocked on an empty pool give
	// their batches a terminal 503 instead of waiting for a revival that
	// may never come (see batcher.lease).
	close(s.quit)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Every batch worker has returned, so no kernel can be mid-run:
		// the engine worker pools are idle and safe to tear down.
		for _, sh := range s.shards {
			sh.rt.CloseEngine()
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

package serve

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeBatchTimer is a hand-driven batchTimer: tests fire ticks into ch
// and script Stop's return value, so flush timing is deterministic — no
// sleeping through real BatchWait windows.
type fakeBatchTimer struct {
	mu      sync.Mutex
	ch      chan time.Time
	resets  int
	stops   int
	stopRet bool
}

func newFakeBatchTimer() *fakeBatchTimer {
	return &fakeBatchTimer{ch: make(chan time.Time, 1), stopRet: true}
}

func (f *fakeBatchTimer) C() <-chan time.Time { return f.ch }

func (f *fakeBatchTimer) Reset(d time.Duration) {
	f.mu.Lock()
	f.resets++
	f.mu.Unlock()
}

func (f *fakeBatchTimer) Stop() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stops++
	return f.stopRet
}

func (f *fakeBatchTimer) fire() { f.ch <- time.Now() }

func (f *fakeBatchTimer) counts() (resets, stops int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resets, f.stops
}

// TestFlushTimerDrainsStaleTick is the regression for the timer-reuse
// hazard: a batch fills to maxBatch, the straggler timer expires before
// disarm can stop it, and the tick parks in the channel. The next batch's
// arm must not see that stale tick — it would flush the batch instantly,
// collapsing batching under light load.
func TestFlushTimerDrainsStaleTick(t *testing.T) {
	fake := newFakeBatchTimer()
	factory := func(d time.Duration) batchTimer { return fake }
	ft := &flushTimer{}

	ft.arm(factory, time.Second)
	// The batch filled on size; the timer expired in the gap before
	// disarm. Old-style asynchronous timers park the tick in the channel
	// and report Stop() == false.
	fake.fire()
	fake.stopRet = false
	ft.disarm()

	tick := ft.arm(factory, time.Second)
	select {
	case <-tick:
		t.Fatal("stale tick from the previous batch leaked into the new arming")
	default:
	}
	if resets, stops := fake.counts(); resets != 1 || stops != 1 {
		t.Errorf("resets=%d stops=%d, want 1 reset (timer reused, not rebuilt) and 1 stop", resets, stops)
	}
}

// TestFlushTimerConsumedTickDisarm covers the two remaining disarm
// paths: a consumed tick must not be drained again, and (Go 1.23+
// synchronous-timer semantics) Stop() == false with an empty channel
// must not block.
func TestFlushTimerConsumedTickDisarm(t *testing.T) {
	fake := newFakeBatchTimer()
	factory := func(d time.Duration) batchTimer { return fake }
	ft := &flushTimer{}

	// Path 1: the tick was consumed by collect (timeout flush).
	tick := ft.arm(factory, time.Second)
	fake.fire()
	<-tick
	ft.expired()
	fake.stopRet = false
	done := make(chan struct{})
	go func() { ft.disarm(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("disarm blocked after a consumed tick")
	}

	// Path 2: synchronous-timer world — Stop reports false yet the
	// channel is empty because the runtime discarded the tick.
	ft.arm(factory, time.Second)
	done = make(chan struct{})
	go func() { ft.disarm(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("disarm blocked on an empty channel")
	}
}

// TestBatcherDeterministicStragglerFlush drives a real pipeline with the
// fake timer: BatchWait is an hour, so the only way the lone request can
// flush is the injected tick. Proves collect flushes on the timer signal
// and that the batcher reuses one timer across batches.
func TestBatcherDeterministicStragglerFlush(t *testing.T) {
	s := newTestServer(t, Config{
		Shards: 1, Channels: 4,
		BatchWait: time.Hour,
		Models:    []ModelSpec{tiny},
	})
	var (
		mu     sync.Mutex
		timers []*fakeBatchTimer
	)
	// Installed before any request: the batcher reads newTimer only after
	// receiving from the queue, so the channel send orders this write.
	s.newTimer = func(d time.Duration) batchTimer {
		if d != time.Hour {
			t.Errorf("timer armed with %v, want BatchWait (1h)", d)
		}
		f := newFakeBatchTimer()
		mu.Lock()
		timers = append(timers, f)
		mu.Unlock()
		return f
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 5)
	body := inferBody(t, "tiny", in)

	for round := 0; round < 2; round++ {
		respCh := make(chan *InferResponse, 1)
		go func() {
			resp, b := postInfer(t, ts, body)
			if resp.StatusCode != 200 {
				t.Errorf("status %d: %s", resp.StatusCode, b)
				respCh <- nil
				return
			}
			var ir InferResponse
			if err := json.Unmarshal(b, &ir); err != nil {
				t.Error(err)
				respCh <- nil
				return
			}
			respCh <- &ir
		}()

		// Wait for the batcher to arm the straggler timer, then fire it.
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			n := len(timers)
			var armed bool
			if n > 0 {
				resets, _ := timers[0].counts()
				armed = round == 0 || resets >= round
			}
			mu.Unlock()
			if n > 0 && armed {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("batcher never armed the flush timer")
			}
			time.Sleep(time.Millisecond)
		}
		mu.Lock()
		f := timers[0]
		mu.Unlock()
		f.fire()

		ir := <-respCh
		if ir == nil {
			t.Fatalf("round %d: request failed", round)
		}
		if ir.BatchSize != 1 {
			t.Errorf("round %d: batch size %d, want 1 (straggler flush)", round, ir.BatchSize)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(timers) != 1 {
		t.Errorf("batcher built %d timers over 2 batches, want 1 (reused via Reset)", len(timers))
	}
}

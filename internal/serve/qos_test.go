package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pimsim/internal/blas"
)

// TestNormalizeTenants: defaults fill in, the default lane is always
// present, and malformed specs are rejected at construction.
func TestNormalizeTenants(t *testing.T) {
	got, err := normalizeTenants(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != DefaultTenant || got[0].Weight != 1 {
		t.Fatalf("empty spec list: got %+v, want sole default tenant", got)
	}

	got, err = normalizeTenants([]TenantSpec{{Name: "b"}, {Name: "a", Weight: 0, Priority: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Name != "a" || got[1].Name != "b" || got[2].Name != DefaultTenant {
		t.Fatalf("got %+v, want a, b, default (sorted, default appended)", got)
	}
	if got[0].Weight != 1 {
		t.Errorf("zero weight not clamped to 1: %+v", got[0])
	}
	if got[0].Priority != 5 {
		t.Errorf("priority lost: %+v", got[0])
	}

	if _, err := normalizeTenants([]TenantSpec{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate tenant accepted")
	}
	if _, err := normalizeTenants([]TenantSpec{{}}); err == nil {
		t.Error("empty tenant name accepted")
	}
}

func bgCtx[T any](T) context.Context { return context.Background() }

// TestFairQueueWeightedShare: the deterministic heart of the QoS story.
// With both lanes saturated and weights 3:1, WFQ must serve exactly
// 3 of a per 1 of b — no clock, no goroutines, no tolerance needed.
func TestFairQueueWeightedShare(t *testing.T) {
	ta := &tenant{spec: TenantSpec{Name: "a", Weight: 3}}
	tb := &tenant{spec: TenantSpec{Name: "b", Weight: 1}}
	q := newFairQueue(map[string]*tenant{"a": ta, "b": tb}, 1000, bgCtx[string],
		func(item, reason string) { t.Fatalf("unexpected shed of %q (%s)", item, reason) })

	for i := 0; i < 80; i++ {
		if ok, reason := q.push("a", ta, 1000); !ok {
			t.Fatalf("push a#%d rejected: %s", i, reason)
		}
		if ok, reason := q.push("b", tb, 1000); !ok {
			t.Fatalf("push b#%d rejected: %s", i, reason)
		}
	}

	var popped []string
	counts := map[string]int{}
	for i := 0; i < 80; i++ {
		it, ok := q.tryPop()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		popped = append(popped, it)
		counts[it]++
	}
	if counts["a"] != 60 || counts["b"] != 20 {
		t.Fatalf("3:1 weights served %d:%d over 80 pops, want exactly 60:20", counts["a"], counts["b"])
	}
	if want := []string{"a", "a", "a", "b"}; fmt.Sprint(popped[:4]) != fmt.Sprint(want) {
		t.Errorf("first WFQ period %v, want %v", popped[:4], want)
	}
	if q.len() != 80 {
		t.Errorf("queue len %d after 160 pushes / 80 pops, want 80", q.len())
	}
}

// TestFairQueuePriorityDisplacement: on overflow a high-priority arrival
// displaces the lowest-priority lane's most-deferrable item (429
// shed-by-priority), and equal-priority tenants can never displace each
// other.
func TestFairQueuePriorityDisplacement(t *testing.T) {
	gold := &tenant{spec: TenantSpec{Name: "gold", Weight: 1, Priority: 10}}
	free := &tenant{spec: TenantSpec{Name: "free", Weight: 1, Priority: 0}}
	const depth = 4 // lane caps: 4*3*1/(2*2) = 3 each

	type shedRec struct {
		item   int
		reason string
	}
	var sheds []shedRec
	q := newFairQueue(map[string]*tenant{"gold": gold, "free": free}, depth, bgCtx[int],
		func(item int, reason string) { sheds = append(sheds, shedRec{item, reason}) })

	for i := 1; i <= 3; i++ {
		if ok, _ := q.push(i, free, depth); !ok {
			t.Fatalf("free push %d rejected below cap", i)
		}
	}
	// Lane cap: the flooding tenant is bounded before the queue is full.
	if ok, reason := q.push(4, free, depth); ok || reason != ShedQueueFull {
		t.Fatalf("free push over lane cap: ok=%v reason=%q, want queue-full", ok, reason)
	}

	if ok, _ := q.push(10, gold, depth); !ok {
		t.Fatal("gold push into free queue space rejected")
	}
	// Queue now full (3 free + 1 gold). Gold arrivals displace free's
	// EDF tail — the most recently pushed no-deadline item.
	if ok, _ := q.push(11, gold, depth); !ok {
		t.Fatal("gold push under overflow rejected; should displace free")
	}
	if len(sheds) != 1 || sheds[0] != (shedRec{3, ShedByPriority}) {
		t.Fatalf("sheds = %+v, want free item 3 shed-by-priority", sheds)
	}
	if ok, _ := q.push(12, gold, depth); !ok {
		t.Fatal("second displacing gold push rejected")
	}
	if len(sheds) != 2 || sheds[1] != (shedRec{2, ShedByPriority}) {
		t.Fatalf("sheds = %+v, want free item 2 next", sheds)
	}

	// Equal priority never displaces: free cannot push out free or gold.
	if ok, reason := q.push(5, free, depth); ok || reason != ShedQueueFull {
		t.Fatalf("equal-priority push under overflow: ok=%v reason=%q, want queue-full rejection", ok, reason)
	}
	if q.len() != depth {
		t.Errorf("queue len %d, want %d", q.len(), depth)
	}
}

// TestFairQueueDeadlineOrder: within a lane, pops follow the earliest
// deadline, not arrival order; items whose context is already dead are
// shed at pop time (deadline-expired) and never handed to the consumer.
func TestFairQueueDeadlineOrder(t *testing.T) {
	ta := &tenant{spec: TenantSpec{Name: "a", Weight: 1}}
	ctxs := make([]context.Context, 4)
	for i, d := range []time.Duration{3 * time.Hour, time.Hour, 2 * time.Hour} {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(d))
		defer cancel()
		ctxs[i] = ctx
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel() // expired before it is ever popped
	ctxs[3] = dead

	var sheds []int
	q := newFairQueue(map[string]*tenant{"a": ta}, 10,
		func(i int) context.Context { return ctxs[i] },
		func(item int, reason string) {
			if reason != ShedDeadlineExpired {
				t.Errorf("shed reason %q, want deadline-expired", reason)
			}
			sheds = append(sheds, item)
		})

	for i := 0; i < 4; i++ {
		if ok, _ := q.push(i, ta, 10); !ok {
			t.Fatalf("push %d rejected", i)
		}
	}

	var got []int
	for {
		it, ok := q.tryPop()
		if !ok {
			break
		}
		got = append(got, it)
	}
	// Item 3 (canceled) sorts first — a canceled ctx reports deadline in
	// the past via Err(), not Deadline(); it was pushed last with no
	// deadline, so it pops last and is shed there. Items 0..2 pop in
	// deadline order: 1 (1h), 2 (2h), 0 (3h).
	if fmt.Sprint(got) != fmt.Sprint([]int{1, 2, 0}) {
		t.Fatalf("pop order %v, want [1 2 0] (EDF)", got)
	}
	if fmt.Sprint(sheds) != fmt.Sprint([]int{3}) {
		t.Fatalf("sheds %v, want [3] (expired item shed at pop)", sheds)
	}
}

// TestTenantResolution: the body field wins over the X-Tenant header,
// the header is honored when the body is silent, and unknown names land
// in the default lane instead of erroring.
func TestTenantResolution(t *testing.T) {
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2, Models: []ModelSpec{tiny},
		BatchWait: time.Millisecond,
		Tenants:   []TenantSpec{{Name: "alpha", Weight: 2}, {Name: "beta"}},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 9)
	post := func(bodyTenant, headerTenant string) {
		t.Helper()
		req := InferRequest{Model: "tiny", Input: in, Tenant: bodyTenant}
		b, _ := json.Marshal(req)
		hr, err := http.NewRequest("POST", ts.URL+"/v1/infer", strings.NewReader(string(b)))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", "application/json")
		if headerTenant != "" {
			hr.Header.Set("X-Tenant", headerTenant)
		}
		resp, err := ts.Client().Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}

	post("alpha", "")     // body field
	post("", "beta")      // header fallback
	post("alpha", "beta") // body wins
	post("nosuch", "")    // unknown -> default lane
	post("", "")          // unattributed -> default lane

	want := map[string]int64{"alpha": 2, "beta": 1, DefaultTenant: 2}
	for name, n := range want {
		if got := s.tenants[name].admitted.Value(); got != n {
			t.Errorf("tenant %s admitted %d, want %d", name, got, n)
		}
	}
}

// TestDeadlineExpiredShedBeforeDispatch: a request whose deadline passes
// while queued is answered 504 with reason deadline-expired and never
// occupies a batch slot — the device runs exactly one batch for the one
// live request.
func TestDeadlineExpiredShedBeforeDispatch(t *testing.T) {
	s := newTestServer(t, Config{
		Shards: 1, Channels: 1, Models: []ModelSpec{tiny},
		BatchWait: time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sh := <-s.pool // hold the only shard: the batcher blocks in lease
	in, _ := testInput(tiny.K, 6)

	// Request 1 (no deadline): popped by the batcher, stuck at lease.
	var wg sync.WaitGroup
	wg.Add(1)
	var code1 int
	go func() {
		defer wg.Done()
		resp, _ := postInfer(t, ts, inferBody(t, "tiny", in))
		code1 = resp.StatusCode
	}()
	waitFor(t, func() bool { return s.admitted.Value() == 1 && s.queueDepth.Value() == 0 })

	// Request 2 (50ms deadline): stays queued behind the stuck batch.
	wg.Add(1)
	var code2 int
	var er2 ErrorResponse
	go func() {
		defer wg.Done()
		body := fmt.Sprintf(`{"model":"tiny","timeout_ms":50,"input":%s}`, mustJSON(in))
		resp, raw := postInfer(t, ts, body)
		code2 = resp.StatusCode
		_ = json.Unmarshal(raw, &er2)
	}()
	waitFor(t, func() bool { return s.queueDepth.Value() == 1 })

	// Let request 2 expire in the queue, then release the shard.
	time.Sleep(80 * time.Millisecond)
	s.pool <- sh
	wg.Wait()

	if code1 != 200 {
		t.Errorf("live request finished %d, want 200", code1)
	}
	if code2 != http.StatusGatewayTimeout {
		t.Fatalf("expired request finished %d, want 504", code2)
	}
	if er2.Reason != ShedDeadlineExpired {
		t.Errorf("504 reason %q, want %q", er2.Reason, ShedDeadlineExpired)
	}
	if got := s.batches.Value(); got != 1 {
		t.Errorf("device ran %d batches, want 1 (expired request must not dispatch)", got)
	}
	if got := s.served.Value(); got != 1 {
		t.Errorf("served %d, want 1", got)
	}
	if got := s.tenants[DefaultTenant].shed[ShedDeadlineExpired].Value(); got != 1 {
		t.Errorf("tenant shed counter %d, want 1", got)
	}
}

// instantTimer is a batchTimer whose tick is always ready — it forces
// the hedge path on every dispatch without waiting out a real delay.
type instantTimer struct{ ch chan time.Time }

func newInstantTimer(time.Duration) batchTimer {
	it := &instantTimer{ch: make(chan time.Time, 1)}
	it.ch <- time.Time{}
	return it
}

func (it *instantTimer) C() <-chan time.Time { return it.ch }
func (it *instantTimer) Reset(time.Duration) {
	select {
	case it.ch <- time.Time{}:
	default:
	}
}
func (it *instantTimer) Stop() bool { return false }

// TestHedgedDispatchZeroDrop: with the hedge timer firing instantly,
// every batch is duplicated onto the idle shard; first result wins, the
// loser is reaped, results stay bit-exact, and the drain drops nothing.
func TestHedgedDispatchZeroDrop(t *testing.T) {
	s := newTestServer(t, Config{
		Shards: 2, Channels: 2, Models: []ModelSpec{tiny},
		BatchWait:  time.Millisecond,
		HedgeDelay: time.Millisecond, // >0 enables hedging; the fake timer ignores it
	})
	s.newHedgeTimer = newInstantTimer
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, x16 := testInput(tiny.K, 7)
	want := blas.RefGemvPIMOrder(tiny.Weights(), tiny.M, tiny.K, x16, 8)

	check := func(code int, raw []byte) error {
		if code != 200 {
			return fmt.Errorf("status %d: %s", code, raw)
		}
		var ir InferResponse
		if err := json.Unmarshal(raw, &ir); err != nil {
			return err
		}
		if !outputsMatch(ir.Output, want) {
			return fmt.Errorf("hedged result mismatch")
		}
		return nil
	}

	// A lone request first: with the whole pool idle, the instant hedge
	// deterministically finds a spare shard.
	resp, raw := postInfer(t, ts, inferBody(t, "tiny", in))
	if err := check(resp.StatusCode, raw); err != nil {
		t.Fatal(err)
	}
	if got := s.hedges.Value(); got > 1 {
		t.Fatalf("hedges after lone request = %d, want at most 1", got)
	}

	// Then a concurrent burst: hedges race real traffic for shards, and
	// the zero-drop drain (newTestServer's Close) must still hold.
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, raw := postInfer(t, ts, inferBody(t, "tiny", in))
			errs <- check(resp.StatusCode, raw)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if got := s.hedges.Value(); got == 0 {
		t.Error("instant hedge timer never launched a hedge across the whole run")
	}
	if wins, hedges := s.hedgeWins.Value(), s.hedges.Value(); wins > hedges {
		t.Errorf("hedge wins %d exceed hedges launched %d", wins, hedges)
	}
}

// TestQoSScenarioMatrix runs the four-scenario drill from qosload.go —
// the same matrix `make qos-drill` and `pimload -qos` run — and requires
// every pinned assertion to hold.
func TestQoSScenarioMatrix(t *testing.T) {
	for _, name := range QoSScenarioNames() {
		t.Run(name, func(t *testing.T) {
			rep, err := RunQoSScenario(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass() {
				t.Fatalf("scenario %s failed:\n%s", name, rep)
			}
			t.Logf("\n%s", rep)
		})
	}
}

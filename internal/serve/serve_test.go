package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/metrics"
)

// tiny is a fast model for pipeline tests: single block, single macro.
var tiny = ModelSpec{Name: "tiny", M: 16, K: 32, Seed: 42}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

func postInfer(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func inferBody(t *testing.T, model string, x []float64) string {
	t.Helper()
	b, err := json.Marshal(InferRequest{Model: model, Input: x})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func testInput(k int, seed int64) ([]float64, fp16.Vector) {
	x16 := fp16.NewVector(k)
	in := make([]float64, k)
	for i := range in {
		x16[i] = fp16.FromFloat32(float32((int64(i)*seed)%7) / 4)
		in[i] = float64(x16[i].Float32())
	}
	return in, x16
}

// TestInferCorrectness: a served output must be bit-exact against the
// software oracle all the way through the HTTP/JSON round trip.
func TestInferCorrectness(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Channels: 2, Models: []ModelSpec{tiny}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, x16 := testInput(tiny.K, 3)
	resp, body := postInfer(t, ts, inferBody(t, "tiny", in))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ir InferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	want := blas.RefGemvPIMOrder(tiny.Weights(), tiny.M, tiny.K, x16, 8)
	if !outputsMatch(ir.Output, want) {
		t.Fatalf("served output mismatch: got %v", ir.Output)
	}
	if ir.BatchSize < 1 || ir.KernelCycles <= 0 {
		t.Errorf("missing kernel metadata: %+v", ir)
	}
}

// TestBatcherFlushOnSize: with the shard pool initially withheld, queued
// requests must pack into one full batch the moment a shard appears.
func TestBatcherFlushOnSize(t *testing.T) {
	s := newTestServer(t, Config{
		Shards: 1, Channels: 4, Models: []ModelSpec{tiny},
		BatchWait: time.Hour, // only size can flush a follower batch
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sh := <-s.pool // withhold the only shard so a backlog builds
	in, _ := testInput(tiny.K, 1)
	const n = 4 // == Channels == maxBatch
	var wg sync.WaitGroup
	codes := make([]int, n)
	batches := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postInfer(t, ts, inferBody(t, "tiny", in))
			codes[i] = resp.StatusCode
			var ir InferResponse
			_ = json.Unmarshal(body, &ir)
			batches[i] = ir.BatchSize
		}(i)
	}
	// Wait until all n are admitted (batcher holds 1, queue holds n-1),
	// then release the shard.
	waitFor(t, func() bool { return s.admitted.Value() == n })
	s.pool <- sh
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if batches[i] != n {
			t.Errorf("request %d rode batch of %d, want %d (flush on size)", i, batches[i], n)
		}
	}
}

// TestBatcherFlushOnWait: a lone request must not wait for a full batch —
// BatchWait flushes it.
func TestBatcherFlushOnWait(t *testing.T) {
	s := newTestServer(t, Config{
		Shards: 1, Channels: 4, Models: []ModelSpec{tiny},
		BatchWait: 5 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 2)
	start := time.Now()
	resp, body := postInfer(t, ts, inferBody(t, "tiny", in))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ir InferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.BatchSize != 1 {
		t.Errorf("lone request rode batch of %d, want 1", ir.BatchSize)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("lone request took %v; batch wait did not flush", took)
	}
}

// TestBackpressure429: with the shard withheld and the queue full, the
// next admission must be rejected 429 with Retry-After, and every
// accepted request must still complete once the shard returns.
func TestBackpressure429(t *testing.T) {
	const depth = 3
	s := newTestServer(t, Config{
		Shards: 1, Channels: 1, Models: []ModelSpec{tiny},
		QueueDepth: depth, BatchWait: time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sh := <-s.pool
	in, _ := testInput(tiny.K, 4)

	// First request: taken by the batcher (leaves the queue), which then
	// blocks waiting for the shard.
	var wg sync.WaitGroup
	results := make(chan int, depth+1)
	send := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postInfer(t, ts, inferBody(t, "tiny", in))
			results <- resp.StatusCode
		}()
	}
	send()
	waitFor(t, func() bool { return s.queueDepth.Value() == 0 && s.admitted.Value() == 1 })
	// Fill the queue exactly.
	for i := 0; i < depth; i++ {
		send()
	}
	waitFor(t, func() bool { return s.queueDepth.Value() == depth })

	// Queue full: this one must bounce with 429 + Retry-After.
	resp, body := postInfer(t, ts, inferBody(t, "tiny", in))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	s.pool <- sh
	wg.Wait()
	close(results)
	for code := range results {
		if code != 200 {
			t.Errorf("accepted request finished %d, want 200", code)
		}
	}
}

// TestDeadline504: a request whose deadline expires while queued gets 504
// and never reaches a shard.
func TestDeadline504(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Channels: 1, Models: []ModelSpec{tiny}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sh := <-s.pool // no shard => the request can only wait
	in, _ := testInput(tiny.K, 5)
	body := fmt.Sprintf(`{"model":"tiny","timeout_ms":50,"input":%s}`, mustJSON(in))
	resp, raw := postInfer(t, ts, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, raw)
	}
	s.pool <- sh
	// The expired request must be discarded by the worker, not executed.
	waitFor(t, func() bool { return s.codes[504].Value() == 1 })
	time.Sleep(20 * time.Millisecond) // give a wrong execution time to happen
	if got := s.served.Value(); got != 0 {
		t.Errorf("expired request reached a shard: served=%d", got)
	}
}

func mustJSON(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestTaxonomy400: malformed, oversized and wrong-shape requests are
// client errors (400), an unknown model is a 404 — never 500s.
func TestTaxonomy400(t *testing.T) {
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2, Models: []ModelSpec{tiny},
		MaxBodyBytes: 4096,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 6)
	big := make([]float64, 4096)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed", `{"model": "tiny", "input": [`, 400},
		{"unknown model", inferBody(t, "nope", in), 404},
		{"wrong length", inferBody(t, "tiny", in[:5]), 400},
		{"missing input", `{"model":"tiny"}`, 400},
		{"both inputs", fmt.Sprintf(`{"model":"tiny","input":%s,"inputs":[%s]}`, mustJSON(in), mustJSON(in)), 400},
		{"oversized", inferBody(t, "tiny", big), 400},
		{"empty batch", `{"model":"tiny","inputs":[]}`, 400},
	}
	for _, c := range cases {
		resp, body := postInfer(t, ts, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.want)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not in taxonomy form: %s", c.name, body)
		}
	}

	if resp, _ := ts.Client().Get(ts.URL + "/v1/infer"); resp.StatusCode != 405 {
		t.Errorf("GET /v1/infer: status %d, want 405", resp.StatusCode)
	}
}

// TestBatchedInfer: the inputs form sends several vectors in one HTTP
// request; each gets its own output, verified against the oracle.
func TestBatchedInfer(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Channels: 4, Models: []ModelSpec{tiny}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	W := tiny.Weights()
	var ins [][]float64
	var wants []fp16.Vector
	for i := 0; i < 3; i++ {
		in, x16 := testInput(tiny.K, int64(10+i))
		ins = append(ins, in)
		wants = append(wants, blas.RefGemvPIMOrder(W, tiny.M, tiny.K, x16, 8))
	}
	resp, body := postInfer(t, ts, fmt.Sprintf(`{"model":"tiny","inputs":%s}`, mustJSON(ins)))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ir InferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.Outputs) != 3 {
		t.Fatalf("%d outputs, want 3", len(ir.Outputs))
	}
	for i := range ins {
		if !outputsMatch(ir.Outputs[i], wants[i]) {
			t.Errorf("batched output %d mismatch", i)
		}
	}
}

// TestHealthAndMetrics: endpoint smoke + draining flips healthz to 503.
func TestHealthAndMetrics(t *testing.T) {
	s, err := New(Config{Shards: 1, Channels: 2, Models: []ModelSpec{tiny}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := ts.Client().Get(ts.URL + "/healthz"); resp.StatusCode != 200 {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	in, _ := testInput(tiny.K, 7)
	if resp, _ := postInfer(t, ts, inferBody(t, "tiny", in)); resp.StatusCode != 200 {
		t.Fatalf("infer: %d", resp.StatusCode)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"serve_admitted_total", "serve_batch_size", "serve_queue_depth"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counter("serve_admitted_total") != 1 {
		t.Errorf("metrics.json admitted = %d, want 1", snap.Counter("serve_admitted_total"))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, _ := ts.Client().Get(ts.URL + "/healthz"); resp.StatusCode != 503 {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	if resp, _ := postInfer(t, ts, inferBody(t, "tiny", in)); resp.StatusCode != 503 {
		t.Errorf("infer while draining: %d, want 503", resp.StatusCode)
	}
}

// TestGracefulShutdownZeroDrop: Close during a burst must drain every
// accepted request to a 200; late arrivals get 503; nothing hangs, and
// accepted == completed exactly.
func TestGracefulShutdownZeroDrop(t *testing.T) {
	s, err := New(Config{
		Shards: 2, Channels: 2, Models: []ModelSpec{tiny},
		QueueDepth: 64, BatchWait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 8)
	const n = 32
	var wg sync.WaitGroup
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postInfer(t, ts, inferBody(t, "tiny", in))
			codes <- resp.StatusCode
		}()
	}
	// Close mid-burst.
	waitFor(t, func() bool { return s.admitted.Value() >= 4 })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(codes)

	var ok, drainRejected int
	for code := range codes {
		switch code {
		case 200:
			ok++
		case 503:
			drainRejected++
		default:
			t.Errorf("unexpected status %d during shutdown", code)
		}
	}
	if ok+drainRejected != n {
		t.Errorf("responses: %d ok + %d draining != %d sent", ok, drainRejected, n)
	}
	// The zero-drop contract: everything admitted was served.
	if adm, srv := s.admitted.Value(), s.served.Value(); adm != srv {
		t.Errorf("admitted %d but served %d: dropped accepted requests", adm, srv)
	}
	if int64(ok) != s.served.Value() {
		t.Errorf("%d clients saw 200 but server served %d", ok, s.served.Value())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in 5s")
}

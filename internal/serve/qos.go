package serve

// Multi-tenant QoS: weighted fair queueing, deadline-sorted (EDF) batch
// formation, and graduated load shedding.
//
// The single bounded FIFO per model (PR 3) treats every caller alike: a
// thundering herd from one tenant fills the queue and everyone else eats
// 429s. The fairQueue below replaces that FIFO with one lane per tenant
// and picks the next request by virtual-time weighted fair queueing: a
// tenant with weight 3 is served three requests for every one of a
// weight-1 tenant whenever both have work queued, and an idle tenant
// accumulates no credit (its lane re-enters at the queue's current
// virtual time). Within a lane, requests are ordered by deadline
// (earliest first), so batch formation is SLO-aware: the request closest
// to its deadline is always the next one packed.
//
// Overflow is shed gradually instead of uniformly: a request from a
// higher-priority tenant displaces the most-deferrable queued request
// (latest deadline) of the lowest-priority tenant, which is answered 429
// with reason "shed-by-priority"; only when no lower-priority victim
// exists does the newcomer itself bounce with reason "queue-full".
// Requests whose deadline expired while queued are shed at pop time with
// reason "deadline-expired" (status 504) and never occupy a batch slot.
// Every shed carries Retry-After and a machine-readable reason so load
// generators can assert the shedding order (docs/SERVING.md).
//
// Concurrency contract: fairQueue is a single-consumer queue — exactly
// one goroutine (the model's batcher or stepper) calls popWait/tryPop;
// any number of HTTP handler goroutines call push. The cap-1 notify
// channel is sound only under that contract: pushes collapse to one
// token and the consumer re-checks the queue after every wake. Shed
// callbacks run outside the queue lock and must not block (terminal
// responses go to the request's buffered resp channel).

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"pimsim/internal/metrics"
)

// Shed reasons: the machine-readable `reason` field on 429/504 bodies.
const (
	// ShedQueueFull: the admission queue (or the tenant's share of it) is
	// full and no lower-priority work could be displaced.
	ShedQueueFull = "queue-full"
	// ShedByPriority: the request was queued, then displaced by a
	// higher-priority tenant's arrival under overload.
	ShedByPriority = "shed-by-priority"
	// ShedDeadlineExpired: the request's deadline passed while it was
	// queued; it was shed before ever reaching a device.
	ShedDeadlineExpired = "deadline-expired"
)

// ShedReasons lists every reason a shed response can carry.
func ShedReasons() []string {
	return []string{ShedQueueFull, ShedByPriority, ShedDeadlineExpired}
}

// ShedError is the typed error behind every shed response. The HTTP
// layer surfaces Reason in the ErrorResponse body next to Retry-After.
type ShedError struct {
	Reason string // one of ShedReasons()
	Detail string
}

func (e *ShedError) Error() string {
	if e.Detail == "" {
		return e.Reason
	}
	return e.Detail
}

// TenantSpec declares one tenant of the serving layer: its fair-queueing
// weight and its shedding priority. Requests name their tenant in the
// `tenant` body field or the X-Tenant header; an unknown or empty name
// maps to the "default" tenant.
type TenantSpec struct {
	Name string `json:"name"`
	// Weight is the WFQ share (default 1): under saturation a tenant is
	// served Weight requests per round of the lowest-weight tenant's one.
	Weight int `json:"weight,omitempty"`
	// Priority orders graduated shedding (default 0; higher sheds later).
	// On overflow an arriving request may displace queued work of any
	// tenant with strictly lower priority; equal-priority tenants never
	// displace each other.
	Priority int `json:"priority,omitempty"`
}

// DefaultTenant is the lane requests land in when they name no tenant
// (or one the server was not configured with).
const DefaultTenant = "default"

// tenant is the runtime state behind one TenantSpec: its per-tenant
// metrics. WFQ bookkeeping is per-queue (tenantLane), not here, because
// every model has its own fair queue.
type tenant struct {
	spec      TenantSpec
	admitted  *metrics.Counter
	served    *metrics.Counter
	shed      map[string]*metrics.Counter // by shed reason
	queueWait *metrics.Histogram
}

// tenantFor resolves a request's tenant name to its runtime tenant,
// falling back to the default lane for unknown names.
func (s *Server) tenantFor(name string) *tenant {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	return s.tenants[DefaultTenant]
}

// normalizeTenants fills defaults: empty spec list gets the sole default
// tenant; weights clamp to >= 1; a missing "default" entry is appended so
// unattributed traffic always has a lane.
func normalizeTenants(specs []TenantSpec) ([]TenantSpec, error) {
	out := make([]TenantSpec, 0, len(specs)+1)
	seen := make(map[string]bool, len(specs)+1)
	for _, sp := range specs {
		if sp.Name == "" {
			return nil, fmt.Errorf("serve: tenant with empty name")
		}
		if seen[sp.Name] {
			return nil, fmt.Errorf("serve: duplicate tenant %q", sp.Name)
		}
		seen[sp.Name] = true
		if sp.Weight <= 0 {
			sp.Weight = 1
		}
		out = append(out, sp)
	}
	if !seen[DefaultTenant] {
		out = append(out, TenantSpec{Name: DefaultTenant, Weight: 1})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// laneItem is one queued request with its deadline resolved at push time.
type laneItem[T any] struct {
	item     T
	deadline time.Time
}

// tenantLane is one tenant's per-queue state: its EDF-ordered backlog
// and its WFQ virtual finish time.
type tenantLane[T any] struct {
	ten   *tenant
	items []laneItem[T] // sorted by deadline, earliest first
	// vfinish is the virtual time at which the lane's head item finishes
	// service. Valid only while the lane is non-empty; an emptied lane
	// re-enters at the queue's virtual time, so idle tenants bank no
	// credit.
	vfinish float64
	// cap bounds how much of the queue this lane may occupy, so one
	// misbehaving tenant cannot fill the whole queue and starve its
	// equal-priority peers of admission (slow-tenant isolation). 0 means
	// unbounded (single-tenant configs).
	cap int
}

// fairQueue is the WFQ admission queue in front of one model's batcher
// or stepper. See the package comment at the top of this file for the
// scheduling discipline and the single-consumer concurrency contract.
type fairQueue[T any] struct {
	mu     sync.Mutex
	lanes  map[string]*tenantLane[T]
	order  []*tenantLane[T] // stable tenant-name order: deterministic ties
	size   int
	vtime  float64
	closed bool
	notify chan struct{} // cap 1; a token means "state changed, re-check"

	ctxOf  func(T) context.Context
	onShed func(item T, reason string) // terminal response; runs unlocked
}

// newFairQueue builds a queue with one lane per tenant. depth is the
// whole queue's bound; per-lane caps implement slow-tenant isolation:
// with a single tenant the lane may use the whole queue, with several
// each lane is bounded at 3/2 of its weight-proportional share (capped
// at depth-1) — enough slack to absorb bursts, but never the whole
// queue.
func newFairQueue[T any](tenants map[string]*tenant, depth int, ctxOf func(T) context.Context, onShed func(T, string)) *fairQueue[T] {
	q := &fairQueue[T]{
		lanes:  make(map[string]*tenantLane[T], len(tenants)),
		notify: make(chan struct{}, 1),
		ctxOf:  ctxOf,
		onShed: onShed,
	}
	sumW := 0
	for _, t := range tenants {
		sumW += t.spec.Weight
	}
	for name, t := range tenants {
		lane := &tenantLane[T]{ten: t}
		if len(tenants) > 1 {
			c := depth * 3 * t.spec.Weight / (2 * sumW)
			if c < 1 {
				c = 1
			}
			if c > depth-1 {
				c = depth - 1
			}
			lane.cap = c
		}
		q.lanes[name] = lane
		q.order = append(q.order, lane)
	}
	sort.Slice(q.order, func(i, j int) bool {
		return q.order[i].ten.spec.Name < q.order[j].ten.spec.Name
	})
	return q
}

func (q *fairQueue[T]) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// push admits item into its tenant's lane, bounded by depth (the
// caller's effective queue bound, already scaled for lost shard
// capacity). On overflow it first tries graduated shedding: displace the
// most-deferrable item of the lowest-priority non-empty lane whose
// priority is strictly below the pusher's. Returns ok=false with the
// shed reason when the item itself could not be queued.
func (q *fairQueue[T]) push(item T, ten *tenant, depth int) (bool, string) {
	var shedItem T
	shed := false

	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false, ShedQueueFull
	}
	lane := q.lanes[ten.spec.Name]
	if lane.cap > 0 && len(lane.items) >= lane.cap {
		q.mu.Unlock()
		return false, ShedQueueFull
	}
	if q.size >= depth {
		victim := q.victimLocked(ten.spec.Priority)
		if victim == nil {
			q.mu.Unlock()
			return false, ShedQueueFull
		}
		// Shed the victim lane's most-deferrable request: the one with the
		// latest deadline, i.e. the EDF tail.
		last := len(victim.items) - 1
		shedItem, shed = victim.items[last].item, true
		victim.items = victim.items[:last]
		q.size--
	}
	deadline := time.Time{}
	if d, ok := q.ctxOf(item).Deadline(); ok {
		deadline = d
	} else {
		deadline = time.Unix(math.MaxInt32, 0) // effectively never
	}
	idx := sort.Search(len(lane.items), func(i int) bool {
		return lane.items[i].deadline.After(deadline)
	})
	lane.items = append(lane.items, laneItem[T]{})
	copy(lane.items[idx+1:], lane.items[idx:])
	lane.items[idx] = laneItem[T]{item: item, deadline: deadline}
	if len(lane.items) == 1 {
		// Lane (re)activates at the current virtual time: no credit for
		// having been idle.
		lane.vfinish = q.vtime + 1.0/float64(lane.ten.spec.Weight)
	}
	q.size++
	q.mu.Unlock()

	q.wake()
	if shed {
		q.onShed(shedItem, ShedByPriority)
	}
	return true, ""
}

// victimLocked finds the shedding victim for an arrival at the given
// priority: the non-empty lane with the lowest priority strictly below
// it (ties broken by tenant-name order, so the choice is deterministic).
func (q *fairQueue[T]) victimLocked(priority int) *tenantLane[T] {
	var victim *tenantLane[T]
	for _, lane := range q.order {
		if len(lane.items) == 0 || lane.ten.spec.Priority >= priority {
			continue
		}
		if victim == nil || lane.ten.spec.Priority < victim.ten.spec.Priority {
			victim = lane
		}
	}
	return victim
}

// tryPop removes and returns the next request by WFQ across lanes and
// EDF within the winning lane. Requests whose deadline already expired
// are shed (reason deadline-expired) instead of returned, so an expired
// request never occupies a batch slot. Returns ok=false when the queue
// is empty.
func (q *fairQueue[T]) tryPop() (T, bool) {
	var zero T
	var expired []T

	q.mu.Lock()
	for {
		var best *tenantLane[T]
		for _, lane := range q.order {
			if len(lane.items) == 0 {
				continue
			}
			if best == nil || lane.vfinish < best.vfinish {
				best = lane
			}
		}
		if best == nil {
			q.mu.Unlock()
			for _, it := range expired {
				q.onShed(it, ShedDeadlineExpired)
			}
			return zero, false
		}
		head := best.items[0]
		copy(best.items, best.items[1:])
		best.items = best.items[:len(best.items)-1]
		q.size--
		q.vtime = best.vfinish
		if len(best.items) > 0 {
			best.vfinish += 1.0 / float64(best.ten.spec.Weight)
		}
		if q.ctxOf(head.item).Err() != nil {
			expired = append(expired, head.item)
			continue
		}
		q.mu.Unlock()
		for _, it := range expired {
			q.onShed(it, ShedDeadlineExpired)
		}
		return head.item, true
	}
}

// popWait blocks until a request is available (returning it) or the
// queue is closed and fully drained (returning ok=false). This is the
// batcher/stepper's blocking receive; Close's zero-drop drain relies on
// the closed-but-nonempty case still handing out work.
func (q *fairQueue[T]) popWait() (T, bool) {
	for {
		if it, ok := q.tryPop(); ok {
			return it, true
		}
		q.mu.Lock()
		done := q.closed && q.size == 0
		q.mu.Unlock()
		if done {
			var zero T
			return zero, false
		}
		<-q.notify
	}
}

// close stops admission. Queued work remains poppable; popWait returns
// ok=false only once the backlog is drained.
func (q *fairQueue[T]) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.wake()
}

// drained reports whether the queue is closed with no backlog left —
// the batcher/stepper's signal to flush what it has and exit.
func (q *fairQueue[T]) drained() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed && q.size == 0
}

// len reports the total queued across lanes.
func (q *fairQueue[T]) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

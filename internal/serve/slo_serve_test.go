package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pimsim/internal/obs"
	"pimsim/internal/slo"
)

// sloClock is a hand-driven clock for the serve-level control-loop drill.
type sloClock struct {
	mu sync.Mutex
	t  time.Time
}

func newSloClock() *sloClock { return &sloClock{t: time.Unix(1_700_000_000, 0)} }

func (c *sloClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *sloClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestSLOHedgeControlLoop proves the closed loop end to end on a fake
// clock: the static -hedge-delay seeds each model's live delay, healthy
// traffic walks it down to track the observed windowed p99, a burn slams
// it to the controller's floor, and recovery relaxes it again — all
// through sloTick, the same path the production loop ticks.
func TestSLOHedgeControlLoop(t *testing.T) {
	clk := newSloClock()
	userHedge := &slo.HedgeConfig{Min: time.Millisecond, Max: 64 * time.Millisecond, Factor: 2}
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2, Models: []ModelSpec{tiny},
		HedgeDelay: 8 * time.Millisecond,
		SLO: &slo.Config{
			Objectives: []slo.Objective{{LatencyP99: 10 * time.Millisecond, Availability: 0.99}},
			EvalEvery:  -1, // no background loop; the test owns the cadence
			Clock:      clk.Now,
			Hedge:      userHedge,
		},
	})
	m := s.mods[tiny.Name]
	if got := time.Duration(m.hedgeNs.Load()); got != 8*time.Millisecond {
		t.Fatalf("boot hedge = %v, want the static seed 8ms", got)
	}
	// Config.SLO.Hedge.Initial was seeded from HedgeDelay on a copy: the
	// caller's struct must not be mutated.
	if userHedge.Initial != 0 {
		t.Fatalf("caller's HedgeConfig mutated: Initial = %v", userHedge.Initial)
	}
	if got := s.slo.Config().Hedge.Initial; got != 8*time.Millisecond {
		t.Fatalf("engine hedge seed = %v, want 8ms", got)
	}

	// Healthy phase: 2ms completions. The controller should leave the 8ms
	// seed and converge to Factor × p99 ≈ single-digit ms, above the floor.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			s.slo.RecordRequest("default", tiny.Name, 2*time.Millisecond, slo.OutcomeOK, "healthy")
		}
		s.sloTick()
		clk.Advance(2 * time.Second)
	}
	steady := time.Duration(m.hedgeNs.Load())
	if steady <= time.Millisecond || steady >= 8*time.Millisecond {
		t.Fatalf("steady hedge = %v, want tracking p99 in (1ms, 8ms)", steady)
	}
	if ht := s.slo.HedgeTargets()[tiny.Name]; ht != steady {
		t.Fatalf("model.hedgeNs %v != engine target %v", steady, ht)
	}

	// Burn phase: everything errors. Both windows blow past the page
	// threshold and the controller slams the live delay to its floor.
	for i := 0; i < 5; i++ {
		for j := 0; j < 10; j++ {
			s.slo.RecordRequest("default", tiny.Name, 0, slo.OutcomeError, "burning")
		}
		s.sloTick()
		clk.Advance(2 * time.Second)
	}
	if got := time.Duration(m.hedgeNs.Load()); got != time.Millisecond {
		t.Fatalf("paging hedge = %v, want floor 1ms", got)
	}

	// Recovery: clean traffic until the page clears; the delay relaxes off
	// the floor.
	for i := 0; i < 40; i++ {
		for j := 0; j < 10; j++ {
			s.slo.RecordRequest("default", tiny.Name, 2*time.Millisecond, slo.OutcomeOK, "healthy")
		}
		s.sloTick()
		clk.Advance(2 * time.Second)
	}
	if got := time.Duration(m.hedgeNs.Load()); got <= time.Millisecond {
		t.Fatalf("recovered hedge = %v, want relaxed above the floor", got)
	}
}

// TestDebugOpsEndpoint drives real traffic and checks /debug/ops is
// well-formed JSON carrying the windowed view, shard health, queue
// occupancy and the SLO section.
func TestDebugOpsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2, Models: []ModelSpec{tiny},
		SLO: &slo.Config{
			Objectives: []slo.Objective{{LatencyP99: 500 * time.Millisecond, Availability: 0.99}},
			EvalEvery:  -1,
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 3)
	for i := 0; i < 3; i++ {
		resp, body := postInfer(t, ts, inferBody(t, "tiny", in))
		if resp.StatusCode != 200 {
			t.Fatalf("infer status %d: %s", resp.StatusCode, body)
		}
	}
	s.sloTick()

	resp, err := ts.Client().Get(ts.URL + "/debug/ops")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/ops status %d", resp.StatusCode)
	}
	var rep OpsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("/debug/ops not valid JSON: %v", err)
	}
	if rep.Shards != 1 || rep.ShardsHealthy != 1 || len(rep.ShardStates) != 1 {
		t.Fatalf("shard section wrong: %+v", rep)
	}
	if rep.Window.Admitted < 3 || rep.Window.Requests < 3 {
		t.Fatalf("window missed traffic: %+v", rep.Window)
	}
	if rep.Window.WallP99Us <= 0 {
		t.Fatalf("windowed p99 = %v, want > 0", rep.Window.WallP99Us)
	}
	foundQ := false
	for _, q := range rep.Queues {
		if q.Model == tiny.Name && q.Bound > 0 {
			foundQ = true
		}
	}
	if !foundQ {
		t.Fatalf("queues missing %s: %+v", tiny.Name, rep.Queues)
	}
	if rep.SLO == nil || len(rep.SLO.Series) != 1 || rep.SLO.Series[0].State != "ok" {
		t.Fatalf("slo section wrong: %+v", rep.SLO)
	}
	if rep.SLO.Series[0].WindowTotal < 3 {
		t.Fatalf("slo window total = %d, want >= 3", rep.SLO.Series[0].WindowTotal)
	}
}

// TestDebugOpsWithoutSLO: the ops surface works on a plain server (no slo
// section), and /debug/slow 404s like the other disabled debug surfaces.
func TestDebugOpsWithoutSLO(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Channels: 2, Models: []ModelSpec{tiny}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/debug/ops")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep OpsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("/debug/ops not valid JSON: %v", err)
	}
	if rep.SLO != nil {
		t.Fatalf("slo section present without an engine: %+v", rep.SLO)
	}
	slow, err := ts.Client().Get(ts.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	slow.Body.Close()
	if slow.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/slow without engine: status %d, want 404", slow.StatusCode)
	}
}

// TestDebugSlowLinksSpans drives a burning objective through the real
// HTTP path and checks /debug/slow resolves its exemplars to flight-
// recorder span trees: the request IDs on the exemplars are real
// X-Request-IDs whose root spans come back in the payload.
func TestDebugSlowLinksSpans(t *testing.T) {
	tracer := obs.NewTracer(256)
	s := newTestServer(t, Config{
		Shards: 1, Channels: 2, Models: []ModelSpec{tiny},
		Tracer: tracer,
		SLO: &slo.Config{
			// 1ns objective: every successful request is refined to "slow",
			// so a handful of posts burns the budget instantly.
			Objectives: []slo.Objective{{LatencyP99: time.Nanosecond, Availability: 0.99}},
			EvalEvery:  -1,
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in, _ := testInput(tiny.K, 3)
	ids := map[string]bool{}
	for i := 0; i < 5; i++ {
		resp, _ := postInfer(t, ts, inferBody(t, "tiny", in))
		if id := resp.Header.Get("X-Request-ID"); id != "" {
			ids[id] = true
		}
	}
	s.sloTick() // 100% bad: pages on the first evaluation

	resp, err := ts.Client().Get(ts.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/slow status %d", resp.StatusCode)
	}
	var out struct {
		Burning []SlowSeries `json:"burning"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Burning) != 1 || out.Burning[0].State != "page" {
		t.Fatalf("burning = %+v, want one paging series", out.Burning)
	}
	b := out.Burning[0]
	if len(b.Exemplars) == 0 {
		t.Fatal("no exemplars on the burning series")
	}
	for _, x := range b.Exemplars {
		if !ids[x.ReqID] {
			t.Fatalf("exemplar request id %q is not a served X-Request-ID", x.ReqID)
		}
	}
	if len(b.Spans) == 0 {
		t.Fatal("no spans resolved for the burning exemplars")
	}
	spanReqs := map[string]bool{}
	for _, sp := range b.Spans {
		spanReqs[sp.Req] = true
	}
	for _, x := range b.Exemplars {
		if !spanReqs[x.ReqID] {
			t.Fatalf("exemplar %s has no span tree in the payload", x.ReqID)
		}
	}
}

// TestServeSLODisabledAllocs gates the per-request cost of a server built
// without an SLO config: the completion hook must be a pointer compare,
// not an allocation.
func TestServeSLODisabledAllocs(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, Channels: 2, Models: []ModelSpec{tiny}})
	o := inferOutcome{status: http.StatusOK, model: tiny.Name, tenant: "default"}
	if n := testing.AllocsPerRun(1000, func() {
		s.recordSLO(&o, 2*time.Millisecond, "req-1")
	}); n != 0 {
		t.Fatalf("disabled SLO completion hook allocates %.1f/op, want 0", n)
	}
}

package trace

import (
	"strings"
	"testing"

	"pimsim/internal/hbm"
)

func TestRingBuffer(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Cycle: int64(i), Kind: hbm.CmdRD, Col: uint32(i)})
	}
	if r.Total() != 5 {
		t.Errorf("total = %d", r.Total())
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != int64(i+2) {
			t.Errorf("event %d cycle %d, want %d (oldest dropped first)", i, e.Cycle, i+2)
		}
	}
}

func TestRecorderUnderfill(t *testing.T) {
	r := NewRecorder(10)
	r.Record(Event{Cycle: 1, Kind: hbm.CmdACT, Row: 7})
	ev := r.Events()
	if len(ev) != 1 || ev[0].Row != 7 {
		t.Fatalf("%+v", ev)
	}
	if NewRecorder(0) == nil {
		t.Fatal("zero capacity recorder")
	}
}

func TestDumpParseRoundTrip(t *testing.T) {
	r := NewRecorder(8)
	events := []Event{
		{Cycle: 10, Channel: 0, Kind: hbm.CmdACT, BG: 1, Bank: 2, Row: 300},
		{Cycle: 24, Channel: 0, Kind: hbm.CmdRD, BG: 1, Bank: 2, Col: 5},
		{Cycle: 30, Channel: 1, Kind: hbm.CmdWR, BG: 0, Bank: 0, Col: 9},
		{Cycle: 44, Channel: 0, Kind: hbm.CmdPRE, BG: 1, Bank: 2},
		{Cycle: 50, Channel: 0, Kind: hbm.CmdPREA},
		{Cycle: 60, Channel: 0, Kind: hbm.CmdREF},
	}
	for _, e := range events {
		r.Record(e)
	}
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("parsed %d of %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
10 0 ACT 0 0 5 0

12 0 RD 0 0 0 3
`
	ev, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 2 || ev[1].Col != 3 {
		t.Fatalf("%+v", ev)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"10 0 FROB 0 0 0 0",
		"not a line",
		"10 0 RD 0 0",
		// Trailing tokens are malformed, not ignorable (regression: Sscanf
		// used to stop at the 7th field and silently accept the rest).
		"10 0 RD 0 0 0 3 99",
		"10 0 RD 0 0 0 3 trailing junk",
		// Non-numeric address fields.
		"10 0 RD 0 0 x 3",
		"10 0 RD 0 0 0 -1",
	} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestValidate(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	good := []Event{
		{Kind: hbm.CmdACT, Channel: 0, BG: 0, Bank: 0, Row: 5},
		{Kind: hbm.CmdRD, Channel: 1, BG: 0, Bank: 0, Col: 3},
	}
	if err := Validate(good, cfg, 2); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := []struct {
		name string
		ev   Event
	}{
		{"channel", Event{Kind: hbm.CmdRD, Channel: 2}},
		{"bank group", Event{Kind: hbm.CmdRD, BG: cfg.BankGroups}},
		{"bank", Event{Kind: hbm.CmdRD, Bank: cfg.BanksPerGroup}},
		{"row", Event{Kind: hbm.CmdACT, Row: uint32(cfg.Rows)}},
		{"column", Event{Kind: hbm.CmdRD, Col: uint32(cfg.ColumnsPerRow())}},
	}
	for _, tc := range bad {
		if err := Validate([]Event{tc.ev}, cfg, 2); err == nil {
			t.Errorf("out-of-range %s accepted", tc.name)
		}
	}
}

func TestEventCommand(t *testing.T) {
	e := Event{Kind: hbm.CmdWR, BG: 2, Bank: 3, Row: 9, Col: 8}
	cmd := e.Command()
	if cmd.Kind != hbm.CmdWR || cmd.BG != 2 || cmd.Bank != 3 || cmd.Row != 9 || cmd.Col != 8 {
		t.Errorf("%+v", cmd)
	}
}

// Package trace records DRAM command streams. A Recorder rings the last N
// commands a controller issued (for post-mortem debugging of PIM
// kernels), and the text format round-trips through a parser so traces
// can be replayed against the device model (cmd/tracerun) — the DRAMSim2
// workflow the paper used for its own design space exploration.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pimsim/internal/hbm"
)

// Event is one issued command.
type Event struct {
	Cycle   int64
	Channel int
	Kind    hbm.CmdKind
	BG      int
	Bank    int
	Row     uint32
	Col     uint32
}

// String renders one trace line: "cycle ch CMD bg bank row col".
func (e Event) String() string {
	return fmt.Sprintf("%d %d %s %d %d %d %d",
		e.Cycle, e.Channel, e.Kind, e.BG, e.Bank, e.Row, e.Col)
}

// Recorder keeps the most recent events in a ring buffer.
type Recorder struct {
	ring  []Event
	next  int
	total int64
}

// NewRecorder holds the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1
	}
	return &Recorder{ring: make([]Event, 0, capacity)}
}

// Record appends an event.
func (r *Recorder) Record(e Event) {
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.next] = e
		r.next = (r.next + 1) % cap(r.ring)
	}
	r.total++
}

// Total returns how many events were ever recorded.
func (r *Recorder) Total() int64 { return r.total }

// Events returns the retained events in issue order.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.ring))
	if len(r.ring) == cap(r.ring) {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}

// Dump writes the retained events as text.
func (r *Recorder) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Parse reads a text trace. Lines starting with '#' and blank lines are
// skipped. The cycle column is advisory on replay (commands re-time
// against the device model); it must still parse. Each line must consist
// of exactly the seven fields of the format — trailing tokens are a
// malformed line, not ignorable noise (a truncated or column-shifted
// trace would otherwise replay with silently wrong addresses).
func Parse(rd io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(rd)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 7 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 7 (\"cycle ch CMD bg bank row col\"): %q",
				lineno, len(fields), line)
		}
		var e Event
		var err error
		if e.Cycle, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: cycle: %v", lineno, err)
		}
		if e.Channel, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("trace: line %d: channel: %v", lineno, err)
		}
		k, ok := parseKind(fields[2])
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown command %q", lineno, fields[2])
		}
		e.Kind = k
		if e.BG, err = strconv.Atoi(fields[3]); err != nil {
			return nil, fmt.Errorf("trace: line %d: bank group: %v", lineno, err)
		}
		if e.Bank, err = strconv.Atoi(fields[4]); err != nil {
			return nil, fmt.Errorf("trace: line %d: bank: %v", lineno, err)
		}
		row, err := strconv.ParseUint(fields[5], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: row: %v", lineno, err)
		}
		e.Row = uint32(row)
		col, err := strconv.ParseUint(fields[6], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: column: %v", lineno, err)
		}
		e.Col = uint32(col)
		out = append(out, e)
	}
	return out, sc.Err()
}

// Validate checks every event's channel and addresses against a device
// geometry before replay, so a bad trace fails with the offending line's
// index instead of erroring deep inside the channel model mid-replay.
func Validate(events []Event, cfg hbm.Config, channels int) error {
	for i, e := range events {
		if e.Channel < 0 || e.Channel >= channels {
			return fmt.Errorf("trace: event %d (%s): channel %d out of range (%d channels)",
				i, e, e.Channel, channels)
		}
		if err := cfg.CheckCommand(e.Command()); err != nil {
			return fmt.Errorf("trace: event %d (%s): %w", i, e, err)
		}
	}
	return nil
}

func parseKind(s string) (hbm.CmdKind, bool) {
	switch strings.ToUpper(s) {
	case "ACT":
		return hbm.CmdACT, true
	case "PRE":
		return hbm.CmdPRE, true
	case "PREA":
		return hbm.CmdPREA, true
	case "RD":
		return hbm.CmdRD, true
	case "WR":
		return hbm.CmdWR, true
	case "REF":
		return hbm.CmdREF, true
	}
	return 0, false
}

// Command converts an event back into an issueable command (no payload).
func (e Event) Command() hbm.Command {
	return hbm.Command{Kind: e.Kind, BG: e.BG, Bank: e.Bank, Row: e.Row, Col: e.Col}
}

package runtime

import (
	"strings"
	"testing"

	"pimsim/internal/isa"
)

// driveOnePhaseRound runs a minimal mode-enter / program / trigger / exit
// sequence on channel 0 so every phase but SRF fires at least once.
func driveOnePhaseRound(t *testing.T, rt *Runtime) {
	t.Helper()
	prog, err := isa.Assemble(`
		MOV(AAM) GRF_A, EVEN_BANK
		JUMP -1, 7
		EXIT
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.EnterAB(0); err != nil {
		t.Fatal(err)
	}
	if err := rt.ProgramCRF(0, prog); err != nil {
		t.Fatal(err)
	}
	if err := rt.ZeroGRF(0); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetPIMMode(0, true); err != nil {
		t.Fatal(err)
	}
	if err := rt.OpenRow(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.TriggerRD(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.CloseRows(0); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetPIMMode(0, false); err != nil {
		t.Fatal(err)
	}
	if err := rt.ExitToSB(0); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseObsAccounting(t *testing.T) {
	rt := newRT(t, 1)

	// Unarmed: activity flows to the metrics registry only; TakePhaseObs
	// reports nothing.
	driveOnePhaseRound(t, rt)
	if pb := rt.TakePhaseObs(); pb.Count[PhaseTrigger] != 0 {
		t.Fatalf("unarmed TakePhaseObs saw %d triggers, want 0", pb.Count[PhaseTrigger])
	}

	rt.BeginPhaseObs()
	driveOnePhaseRound(t, rt)
	pb := rt.TakePhaseObs()
	// 4 mode ops (EnterAB, PIM on, PIM off, ExitToSB), 1 CRF program,
	// 1 GRF zero, 1 trigger.
	if pb.Count[PhaseMode] != 4 || pb.Count[PhaseCRF] != 1 || pb.Count[PhaseGRF] != 1 || pb.Count[PhaseTrigger] != 1 {
		t.Errorf("phase counts mode=%d crf=%d grf=%d trigger=%d, want 4/1/1/1",
			pb.Count[PhaseMode], pb.Count[PhaseCRF], pb.Count[PhaseGRF], pb.Count[PhaseTrigger])
	}
	for _, ph := range []KernelPhase{PhaseMode, PhaseCRF, PhaseGRF, PhaseTrigger} {
		if pb.Cycles[ph] <= 0 {
			t.Errorf("phase %s accounted %d cycles, want > 0", ph, pb.Cycles[ph])
		}
	}
	sum := pb.Summary()
	for _, frag := range []string{"mode=4/", "crf=1/", "grf=1/", "trigger=1/"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary %q missing %q", sum, frag)
		}
	}
	if strings.Contains(sum, "srf=") {
		t.Errorf("summary %q includes the idle srf phase", sum)
	}

	// TakePhaseObs resets: an immediate second take is empty but the
	// aggregate stays armed for the next kernel.
	if pb2 := rt.TakePhaseObs(); pb2.Count[PhaseTrigger] != 0 {
		t.Errorf("second take saw %d triggers, want 0 (reset)", pb2.Count[PhaseTrigger])
	}
	driveOnePhaseRound(t, rt)
	if pb3 := rt.TakePhaseObs(); pb3.Count[PhaseTrigger] != 1 {
		t.Errorf("aggregate disarmed after take: %d triggers, want 1", pb3.Count[PhaseTrigger])
	}
}

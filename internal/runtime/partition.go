package runtime

import (
	"fmt"
	"sort"
)

// Channel partitioning (Section VIII, "Virtualization and Multi-tenancy"):
// because the host controls the PIM operations of every memory channel
// independently, disjoint channel sets can be handed to different tenants
// — each tenant's kernels see only its own channels and cannot perturb
// another tenant's command streams or timing.

// Restrict returns a runtime view over a subset of channels. The view
// shares the underlying devices and driver (row reservations are global,
// so tenants never collide on PIM rows) but kernels built on it
// distribute work across — and issue commands to — only the listed
// channels. Channel indices are in the parent's numbering and must be
// unique.
func (r *Runtime) Restrict(channels []int) (*Runtime, error) {
	if len(channels) == 0 {
		return nil, fmt.Errorf("runtime: empty channel set")
	}
	seen := make(map[int]bool, len(channels))
	sorted := append([]int(nil), channels...)
	sort.Ints(sorted)
	view := &Runtime{Cfg: r.Cfg, Drv: r.Drv, SimChannels: 0, Metrics: r.Metrics, pm: r.pm}
	for _, ch := range sorted {
		if ch < 0 || ch >= len(r.Chans) {
			return nil, fmt.Errorf("runtime: channel %d out of range", ch)
		}
		if seen[ch] {
			return nil, fmt.Errorf("runtime: duplicate channel %d", ch)
		}
		seen[ch] = true
		view.Chans = append(view.Chans, r.Chans[ch])
		view.Execs = append(view.Execs, r.Execs[ch])
	}
	return view, nil
}

// PartitionEven splits the runtime into n equal tenant views. The channel
// count must divide evenly.
func (r *Runtime) PartitionEven(n int) ([]*Runtime, error) {
	if n <= 0 || len(r.Chans)%n != 0 {
		return nil, fmt.Errorf("runtime: cannot split %d channels into %d partitions", len(r.Chans), n)
	}
	per := len(r.Chans) / n
	out := make([]*Runtime, n)
	for i := range out {
		chans := make([]int, per)
		for j := range chans {
			chans[j] = i*per + j
		}
		view, err := r.Restrict(chans)
		if err != nil {
			return nil, err
		}
		out[i] = view
	}
	return out, nil
}

package runtime

import (
	"errors"
	"sync"
	"testing"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
)

func newRT(t *testing.T, channels int) *Runtime {
	t.Helper()
	cfg := hbm.PIMHBMConfig(1000)
	cfg.PseudoChannels = channels
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestModeSequences(t *testing.T) {
	rt := newRT(t, 2)
	pch := rt.Chans[0].PCH()
	if pch.Mode() != hbm.ModeSB {
		t.Fatal("not in SB initially")
	}
	if err := rt.EnterAB(0); err != nil {
		t.Fatal(err)
	}
	if pch.Mode() != hbm.ModeAB {
		t.Fatalf("mode %s after EnterAB", pch.Mode())
	}
	if err := rt.SetPIMMode(0, true); err != nil {
		t.Fatal(err)
	}
	if pch.Mode() != hbm.ModeABPIM {
		t.Fatalf("mode %s after SetPIMMode", pch.Mode())
	}
	if err := rt.SetPIMMode(0, false); err != nil {
		t.Fatal(err)
	}
	if err := rt.ExitToSB(0); err != nil {
		t.Fatal(err)
	}
	if pch.Mode() != hbm.ModeSB {
		t.Fatalf("mode %s after ExitToSB", pch.Mode())
	}
	// The other channel is untouched.
	if rt.Chans[1].PCH().Mode() != hbm.ModeSB {
		t.Error("channel 1 mode leaked")
	}
}

func TestProgramCRFRoundTrip(t *testing.T) {
	rt := newRT(t, 1)
	prog, err := isa.Assemble(`
		MOV(AAM) GRF_A, EVEN_BANK
		JUMP -1, 7
		EXIT
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.EnterAB(0); err != nil {
		t.Fatal(err)
	}
	if err := rt.ProgramCRF(0, prog); err != nil {
		t.Fatal(err)
	}
	// Read back through the executor's register space.
	buf := make([]byte, 32)
	if err := rt.Execs[0].RegisterRead(3, hbm.RegCRF, 0, buf); err != nil {
		t.Fatal(err)
	}
	words := make([]uint32, 3)
	for i := range words {
		words[i] = uint32(buf[4*i]) | uint32(buf[4*i+1])<<8 | uint32(buf[4*i+2])<<16 | uint32(buf[4*i+3])<<24
	}
	back, err := isa.DecodeProgram(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0].Op != isa.MOV || back[2].Op != isa.EXIT {
		t.Fatalf("read back %v", back)
	}
}

func TestProgramSRFAndZeroGRF(t *testing.T) {
	rt := newRT(t, 1)
	if err := rt.EnterAB(0); err != nil {
		t.Fatal(err)
	}
	m := make([]fp16.F16, isa.SRFEntries)
	a := make([]fp16.F16, isa.SRFEntries)
	for i := range m {
		m[i] = fp16.FromFloat32(float32(i + 1))
		a[i] = fp16.FromFloat32(float32(-i))
	}
	if err := rt.ProgramSRF(0, m, a); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < rt.Cfg.PIMUnits; u++ {
		unit := rt.Execs[0].Unit(u)
		for i := range m {
			if unit.SRF(0, i) != m[i] || unit.SRF(1, i) != a[i] {
				t.Fatalf("unit %d SRF[%d] = %v/%v", u, i, unit.SRF(0, i), unit.SRF(1, i))
			}
		}
	}
	if err := rt.ZeroGRF(0); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < rt.Cfg.PIMUnits; u++ {
		for r := 0; r < isa.GRFEntries; r++ {
			v := rt.Execs[0].Unit(u).GRF(1, r)
			for l := range v {
				if v[l] != fp16.Zero {
					t.Fatalf("unit %d GRF_B[%d][%d] = %v after ZeroGRF", u, r, l, v[l])
				}
			}
		}
	}
}

func TestBankWriteReadHelpers(t *testing.T) {
	rt := newRT(t, 1)
	data := fp16.FromFloat32s([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}).Bytes()
	if err := rt.WriteBankSB(0, 5, 40, 7, data); err != nil {
		t.Fatal(err)
	}
	got, err := rt.ReadBankSB(0, 5, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %x != %x", i, got[i], data[i])
		}
	}
	// Row-granular variants.
	cols := []uint32{1, 2, 3}
	blocks := [][]byte{data, data, data}
	if err := rt.WriteBankRowSB(0, 6, 41, cols, blocks); err != nil {
		t.Fatal(err)
	}
	back, err := rt.ReadBankRowSB(0, 6, 41, cols)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		for j := range data {
			if back[i][j] != data[j] {
				t.Fatalf("col %d byte %d mismatch", cols[i], j)
			}
		}
	}
	if err := rt.WriteBankRowSB(0, 6, 41, cols, blocks[:2]); err == nil {
		t.Error("mismatched cols/data accepted")
	}
}

func TestGRFReadback(t *testing.T) {
	rt := newRT(t, 1)
	// Write GRF via the broadcast register space, read back per unit.
	if err := rt.EnterAB(0); err != nil {
		t.Fatal(err)
	}
	v := fp16.FromFloat32s([]float32{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, -1, -2, -3, -4, -5, -6})
	// GRF_B[2] is column 8+2 of the GRF row.
	ch := rt.Chans[0]
	if _, err := ch.Issue(hbm.Command{Kind: hbm.CmdACT, Row: rt.Cfg.GRFRow()}); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Issue(hbm.Command{Kind: hbm.CmdWR, Col: 10, Data: v.Bytes()}); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Issue(hbm.Command{Kind: hbm.CmdPREA}); err != nil {
		t.Fatal(err)
	}
	if err := rt.ExitToSB(0); err != nil {
		t.Fatal(err)
	}
	got, err := rt.ReadGRFSB(0, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for l := range v {
		if got[l] != v[l] {
			t.Fatalf("lane %d: %v != %v", l, got[l], v[l])
		}
	}
	all, err := rt.ReadGRFRowSB(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != rt.Cfg.PIMUnits || len(all[0]) != 4 {
		t.Fatalf("shape %dx%d", len(all), len(all[0]))
	}
	if all[5][2][0] != v[0] {
		t.Errorf("unit 5 GRF_B[2][0] = %v", all[5][2][0])
	}
}

func TestRuntimeValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty device list accepted")
	}
	a := hbm.MustNewDevice(hbm.PIMHBMConfig(1000))
	b := hbm.MustNewDevice(hbm.PIMHBMConfig(1200))
	if _, err := New([]*hbm.Device{a, b}); err == nil {
		t.Error("heterogeneous devices accepted")
	}
}

func TestEffectiveChannels(t *testing.T) {
	rt := newRT(t, 4)
	if rt.EffectiveChannels() != 4 {
		t.Error("functional runtime must drive all channels")
	}
	cfg := hbm.PIMHBMConfig(1000)
	cfg.PseudoChannels = 4
	cfg.Functional = false
	dev := hbm.MustNewDevice(cfg)
	rt2, err := New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	rt2.SimChannels = 1
	if rt2.EffectiveChannels() != 1 {
		t.Error("SimChannels ignored")
	}
	rt2.SimChannels = 99
	if rt2.EffectiveChannels() != 4 {
		t.Error("oversized SimChannels not clamped")
	}
}

func TestSyncChannels(t *testing.T) {
	rt := newRT(t, 2)
	if err := rt.EnterAB(0); err != nil {
		t.Fatal(err)
	}
	if rt.Now(0) <= rt.Now(1) {
		t.Fatal("channel 0 did not advance")
	}
	rt.SyncChannels()
	if rt.Now(0) != rt.Now(1) || rt.MaxNow() != rt.Now(0) {
		t.Error("SyncChannels did not align clocks")
	}
}

func TestErrorPropagation(t *testing.T) {
	rt := newRT(t, 1)
	// SetPIMMode in SB mode is an illegal register write: the error must
	// carry channel and command context.
	if err := rt.SetPIMMode(0, true); err == nil {
		t.Error("PIM_OP_MODE accepted in SB mode")
	}
	// CloseRows with nothing open is fine (PREA is idempotent)...
	if err := rt.CloseRows(0); err != nil {
		t.Errorf("PREA on idle banks: %v", err)
	}
	// ...but a trigger outside AB-PIM hits an idle-bank error.
	if err := rt.TriggerRD(0, 0, 0); err == nil {
		t.Error("trigger accepted in SB mode with idle banks")
	}
	// Oversized CRF program.
	long := make([]isa.Instruction, isa.CRFEntries+1)
	for i := range long {
		long[i] = isa.Nop()
	}
	if err := rt.EnterAB(0); err != nil {
		t.Fatal(err)
	}
	if err := rt.ProgramCRF(0, long); err == nil {
		t.Error("oversized program accepted")
	}
	// Invalid instruction in a program.
	bad := []isa.Instruction{{Op: isa.MUL, Dst: isa.EvenBank, Src0: isa.GRFA, Src1: isa.GRFB}}
	if err := rt.ProgramCRF(0, bad); err == nil {
		t.Error("invalid instruction accepted")
	}
}

func TestForEachChannelParallelAndErrors(t *testing.T) {
	rt := newRT(t, 4)
	rt.Cfg.Functional = false // allow SimChannels semantics; views share Cfg copy
	rt.ParallelKernels = true

	var mu sync.Mutex
	seen := map[int]bool{}
	err := rt.ForEachChannel(func(ch int) error {
		mu.Lock()
		seen[ch] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Errorf("visited %d channels", len(seen))
	}

	wantErr := errors.New("boom")
	err = rt.ForEachChannel(func(ch int) error {
		if ch == 2 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("got %v", err)
	}

	// Sequential path stops at the first error. ParallelKernels
	// auto-installed a parallel engine above; drop it too, or the engine
	// (which must run every channel to reach its join barrier) keeps
	// dispatching.
	rt.ParallelKernels = false
	rt.CloseEngine()
	calls := 0
	err = rt.ForEachChannel(func(ch int) error {
		calls++
		if ch == 1 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) || calls != 2 {
		t.Errorf("sequential: err=%v calls=%d", err, calls)
	}
}

func TestSetGuaranteeOrder(t *testing.T) {
	rt := newRT(t, 2)
	rt.SetGuaranteeOrder(true)
	for i, ch := range rt.Chans {
		if !ch.GuaranteeOrder {
			t.Errorf("channel %d not order-guaranteed", i)
		}
	}
	rt.SetGuaranteeOrder(false)
	if rt.Chans[0].GuaranteeOrder {
		t.Error("order guarantee not cleared")
	}
}

func TestProgramSRFOverlong(t *testing.T) {
	rt := newRT(t, 1)
	if err := rt.EnterAB(0); err != nil {
		t.Fatal(err)
	}
	// Shorter slices zero-fill; 8 each is the contract.
	m := make([]fp16.F16, 3)
	m[0] = fp16.One
	if err := rt.ProgramSRF(0, m, nil); err != nil {
		t.Fatal(err)
	}
	if rt.Execs[0].Unit(0).SRF(0, 0) != fp16.One {
		t.Error("partial SRF program lost data")
	}
	if rt.Execs[0].Unit(0).SRF(1, 7) != fp16.Zero {
		t.Error("unwritten SRF_A not zero")
	}
	// Oversized slices are an error, not a silent truncation (regression:
	// copy used to drop scalars past the SRF depth without telling anyone).
	over := make([]fp16.F16, isa.SRFEntries+1)
	if err := rt.ProgramSRF(0, over, nil); err == nil {
		t.Error("oversized SRF_M slice accepted")
	}
	if err := rt.ProgramSRF(0, nil, over); err == nil {
		t.Error("oversized SRF_A slice accepted")
	}
	// The channel must be untouched by the rejected call: a kernel can
	// still program a legal payload afterwards.
	if err := rt.ProgramSRF(0, m, m); err != nil {
		t.Fatalf("legal SRF program after rejection: %v", err)
	}
}

// TestProgramCRFOverflow: a program longer than the CRF is rejected before
// any command is issued.
func TestProgramCRFOverflow(t *testing.T) {
	rt := newRT(t, 1)
	if err := rt.EnterAB(0); err != nil {
		t.Fatal(err)
	}
	prog := make([]isa.Instruction, isa.CRFEntries+1)
	for i := range prog {
		prog[i] = isa.Instruction{Op: isa.NOP}
	}
	before := rt.Chans[0].Now()
	if err := rt.ProgramCRF(0, prog); err == nil {
		t.Error("oversized CRF program accepted")
	}
	if rt.Chans[0].Now() != before {
		t.Error("rejected CRF program still issued commands")
	}
}

func TestReadGRFSBBadColumn(t *testing.T) {
	rt := newRT(t, 1)
	if _, err := rt.ReadGRFSB(0, 0, 2, 0); err == nil {
		t.Error("GRF half 2 accepted")
	}
}

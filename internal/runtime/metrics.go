package runtime

import (
	"fmt"

	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/metrics"
)

// phaseMetrics are the runtime's kernel-phase counters: what a kernel's
// command stream was spent on (mode transitions, register programming,
// trigger streams). Each phase records both its op count and its cycle
// cost, so Snapshot.Diff around a kernel yields its phase breakdown.
type phaseMetrics struct {
	modeTransitions     *metrics.Counter
	modeTransitionCycle *metrics.Counter
	crfPrograms         *metrics.Counter
	crfProgramCycle     *metrics.Counter
	srfPrograms         *metrics.Counter
	srfProgramCycle     *metrics.Counter
	grfZeros            *metrics.Counter
	grfZeroCycle        *metrics.Counter
	triggers            *metrics.Counter
	triggerCycle        *metrics.Counter
}

func newPhaseMetrics(reg *metrics.Registry) *phaseMetrics {
	return &phaseMetrics{
		modeTransitions:     reg.Counter("runtime_mode_transitions_total"),
		modeTransitionCycle: reg.Counter("runtime_mode_transition_cycles_total"),
		crfPrograms:         reg.Counter("runtime_crf_programs_total"),
		crfProgramCycle:     reg.Counter("runtime_crf_program_cycles_total"),
		srfPrograms:         reg.Counter("runtime_srf_programs_total"),
		srfProgramCycle:     reg.Counter("runtime_srf_program_cycles_total"),
		grfZeros:            reg.Counter("runtime_grf_zeros_total"),
		grfZeroCycle:        reg.Counter("runtime_grf_zero_cycles_total"),
		triggers:            reg.Counter("runtime_triggers_total"),
		triggerCycle:        reg.Counter("runtime_trigger_cycles_total"),
	}
}

// notePhase records one phase operation and the cycles the channel clock
// advanced during it. The shard is the channel's own (parent numbering),
// so restricted multi-tenant views stay race free under ParallelKernels.
func (r *Runtime) notePhase(ch int, count, cycles *metrics.Counter, start int64) {
	shard := r.Chans[ch].MetricsShard()
	count.Inc(shard)
	cycles.Add(shard, r.Chans[ch].Now()-start)
}

// collectDeviceMetrics bridges the hbm device counters and the PIM
// executors into a snapshot. It reads foreign state without
// synchronization, so it is only accurate while kernels are quiescent
// (after ForEachChannel returns, which is a happens-before edge).
func (r *Runtime) collectDeviceMetrics(emit func(name string, value int64)) {
	for i, c := range r.Chans {
		p := c.PCH()
		st := p.Stats()
		emit("hbm_act_total", st.ACT+st.ABACT)
		emit("hbm_pre_total", st.PRE+st.ABPRE)
		emit("hbm_rd_total", st.RD+st.ABRD)
		emit("hbm_wr_total", st.WR+st.ABWR)
		emit("hbm_ref_total", st.REF)
		emit("hbm_mode_switches_total", st.ModeSwitches)
		emit("hbm_offchip_bytes_total", st.OffChipBytes)
		emit("hbm_bank_reads_total", st.BankReads)
		emit("hbm_bank_writes_total", st.BankWrites)

		for bank, ops := range p.BankOps() {
			emit(fmt.Sprintf(`hbm_bank_act_total{bank="%d"}`, bank), ops.ACT)
			emit(fmt.Sprintf(`hbm_bank_rd_total{bank="%d"}`, bank), ops.RD)
			emit(fmt.Sprintf(`hbm_bank_wr_total{bank="%d"}`, bank), ops.WR)
		}
		res := p.ModeResidency(c.Now())
		for mode, cycles := range res {
			emit(fmt.Sprintf("hbm_mode_cycles_total{mode=%q}", hbm.Mode(mode)), cycles)
		}

		e := r.Execs[i]
		emit("pim_triggers_total", e.Triggers())
		emit("pim_aam_instr_total", e.AAMInstructions())
		for op, n := range e.OpCountsArray() {
			if n > 0 {
				emit(fmt.Sprintf("pim_instr_total{op=%q}", isa.Opcode(op).String()), n)
			}
		}
	}
}

package runtime

import (
	"fmt"

	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/metrics"
	"pimsim/internal/obs"
)

// KernelPhase classifies what a kernel's command stream is spent on. The
// runtime accounts every phase twice: into the metrics registry (process
// lifetime totals) and, when armed via BeginPhaseObs, into a per-kernel
// aggregate that tracing attaches to the request's exec span.
type KernelPhase int

const (
	PhaseMode    KernelPhase = iota // ABMR/SBMR handshakes, PIM_OP_MODE writes
	PhaseCRF                        // microkernel programming
	PhaseSRF                        // scalar register programming
	PhaseGRF                        // accumulator zeroing
	PhaseTrigger                    // PIM-triggering column streams
	NumPhases
)

func (p KernelPhase) String() string {
	switch p {
	case PhaseMode:
		return "mode"
	case PhaseCRF:
		return "crf"
	case PhaseSRF:
		return "srf"
	case PhaseGRF:
		return "grf"
	case PhaseTrigger:
		return "trigger"
	}
	return "unknown"
}

// phaseMetrics are the runtime's kernel-phase counters: per phase, its op
// count and its cycle cost, so Snapshot.Diff around a kernel yields its
// phase breakdown. Indexed by KernelPhase; the registered names are part
// of the metrics surface and must not change.
type phaseMetrics struct {
	counts [NumPhases]*metrics.Counter
	cycles [NumPhases]*metrics.Counter
}

func newPhaseMetrics(reg *metrics.Registry) *phaseMetrics {
	pm := &phaseMetrics{}
	pm.counts[PhaseMode] = reg.Counter("runtime_mode_transitions_total")
	pm.cycles[PhaseMode] = reg.Counter("runtime_mode_transition_cycles_total")
	pm.counts[PhaseCRF] = reg.Counter("runtime_crf_programs_total")
	pm.cycles[PhaseCRF] = reg.Counter("runtime_crf_program_cycles_total")
	pm.counts[PhaseSRF] = reg.Counter("runtime_srf_programs_total")
	pm.cycles[PhaseSRF] = reg.Counter("runtime_srf_program_cycles_total")
	pm.counts[PhaseGRF] = reg.Counter("runtime_grf_zeros_total")
	pm.cycles[PhaseGRF] = reg.Counter("runtime_grf_zero_cycles_total")
	pm.counts[PhaseTrigger] = reg.Counter("runtime_triggers_total")
	pm.cycles[PhaseTrigger] = reg.Counter("runtime_trigger_cycles_total")
	return pm
}

// phaseCell is one channel's running per-kernel phase aggregate.
type phaseCell struct {
	n      int64
	cycles int64
}

// notePhase records one phase operation and the cycles the channel clock
// advanced during it. The shard is the channel's own (parent numbering),
// so restricted multi-tenant views stay race free under ParallelKernels —
// and the per-kernel aggregate is likewise indexed by channel.
func (r *Runtime) notePhase(ch int, ph KernelPhase, start int64) {
	shard := r.Chans[ch].MetricsShard()
	d := r.Chans[ch].Now() - start
	r.pm.counts[ph].Inc(shard)
	r.pm.cycles[ph].Add(shard, d)
	if r.obsAgg != nil {
		cell := &r.obsAgg[ch][ph]
		cell.n++
		cell.cycles += d
	}
}

// notePhaseN records n operations of one phase spanning start..now as a
// single metrics update. Back-to-back operations telescope (each starts
// at the cycle its predecessor ended), so the totals are identical to n
// individual notePhase calls — this is the batched form the trigger-run
// paths use to keep the sharded-counter atomics off the per-command path.
func (r *Runtime) notePhaseN(ch int, ph KernelPhase, n int, start int64) {
	shard := r.Chans[ch].MetricsShard()
	d := r.Chans[ch].Now() - start
	r.pm.counts[ph].Add(shard, int64(n))
	r.pm.cycles[ph].Add(shard, d)
	if r.obsAgg != nil {
		cell := &r.obsAgg[ch][ph]
		cell.n += int64(n)
		cell.cycles += d
	}
}

// PhaseBreakdown is one kernel's cost split by phase, summed over
// channels. Cycles are simulated cycles (sum across channels, so on a
// multi-channel kernel they exceed the kernel's critical-path latency).
type PhaseBreakdown struct {
	Count  [NumPhases]int64
	Cycles [NumPhases]int64
}

// Summary renders the breakdown as "k=v" attrs for a span (phases with
// zero activity are omitted).
func (b PhaseBreakdown) Summary() string {
	s := ""
	for p := KernelPhase(0); p < NumPhases; p++ {
		if b.Count[p] == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d/%dcy", p, b.Count[p], b.Cycles[p])
	}
	return s
}

// BeginPhaseObs arms per-kernel phase aggregation: from this call until
// TakePhaseObs, every phase operation is also accumulated into a
// per-channel table (one cache-line-independent row per channel, safe
// under ParallelKernels). Call only while kernels are quiescent. The
// unarmed cost in notePhase is one nil check.
func (r *Runtime) BeginPhaseObs() {
	if r.obsAgg == nil {
		r.obsAgg = make([][NumPhases]phaseCell, len(r.Chans))
		return
	}
	for i := range r.obsAgg {
		r.obsAgg[i] = [NumPhases]phaseCell{}
	}
}

// TakePhaseObs returns the phase activity since BeginPhaseObs, summed
// over channels, and resets the aggregate. Zero valued when never armed.
func (r *Runtime) TakePhaseObs() PhaseBreakdown {
	var b PhaseBreakdown
	for i := range r.obsAgg {
		for p := KernelPhase(0); p < NumPhases; p++ {
			b.Count[p] += r.obsAgg[i][p].n
			b.Cycles[p] += r.obsAgg[i][p].cycles
			r.obsAgg[i][p] = phaseCell{}
		}
	}
	return b
}

// AttachTimeline connects an obs.Timeline to the whole stack: each
// memctrl channel records its issued commands and mode windows, and each
// PIM executor its per-trigger instruction counts, into the timeline's
// per-channel buffers. Channel i writes tl.Channel(i); a timeline sized
// smaller than the system leaves the excess channels unhooked (the hooks
// are nil-safe). Call before driving traffic.
func (r *Runtime) AttachTimeline(tl *obs.Timeline) {
	for i, c := range r.Chans {
		c.ChannelID = i
		c.TL = tl.Channel(i)
		r.Execs[i].TL = tl.Channel(i)
	}
}

// collectDeviceMetrics bridges the hbm device counters and the PIM
// executors into a snapshot. It reads foreign state without
// synchronization, so it is only accurate while kernels are quiescent
// (after ForEachChannel returns, which is a happens-before edge).
func (r *Runtime) collectDeviceMetrics(emit func(name string, value int64)) {
	for i, c := range r.Chans {
		p := c.PCH()
		st := p.Stats()
		emit("hbm_act_total", st.ACT+st.ABACT)
		emit("hbm_pre_total", st.PRE+st.ABPRE)
		emit("hbm_rd_total", st.RD+st.ABRD)
		emit("hbm_wr_total", st.WR+st.ABWR)
		emit("hbm_ref_total", st.REF)
		emit("hbm_mode_switches_total", st.ModeSwitches)
		emit("hbm_offchip_bytes_total", st.OffChipBytes)
		emit("hbm_bank_reads_total", st.BankReads)
		emit("hbm_bank_writes_total", st.BankWrites)

		for bank, ops := range p.BankOps() {
			emit(fmt.Sprintf(`hbm_bank_act_total{bank="%d"}`, bank), ops.ACT)
			emit(fmt.Sprintf(`hbm_bank_rd_total{bank="%d"}`, bank), ops.RD)
			emit(fmt.Sprintf(`hbm_bank_wr_total{bank="%d"}`, bank), ops.WR)
		}
		res := p.ModeResidency(c.Now())
		for mode, cycles := range res {
			emit(fmt.Sprintf("hbm_mode_cycles_total{mode=%q}", hbm.Mode(mode)), cycles)
		}

		e := r.Execs[i]
		emit("pim_triggers_total", e.Triggers())
		emit("pim_aam_instr_total", e.AAMInstructions())
		for op, n := range e.OpCountsArray() {
			if n > 0 {
				emit(fmt.Sprintf("pim_instr_total{op=%q}", isa.Opcode(op).String()), n)
			}
		}
	}
}

// Package runtime is the user-level PIM runtime of Section V-A: the
// executor that turns PIM microkernels into ordered DRAM command streams
// (mode transitions, CRF/SRF programming, triggers, fences), the memory
// manager that lays operands out across banks in a PIM-friendly way, and
// the preprocessor that decides which operations are worth offloading.
package runtime

import (
	"fmt"

	"pimsim/internal/driver"
	"pimsim/internal/engine"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/memctrl"
	"pimsim/internal/metrics"
	"pimsim/internal/pim"
)

// Runtime drives the PIM execution units of a whole memory system. Each
// pseudo channel is owned by one host thread group (Fig. 8), so channels
// progress independently; a kernel's latency is the slowest channel's.
type Runtime struct {
	Cfg   hbm.Config
	Chans []*memctrl.Channel
	Execs []*pim.Executor
	Drv   *driver.Driver

	// Metrics is the system-wide registry: one shard per channel, shared
	// by the memctrl layer, the runtime's phase counters, and snapshot-time
	// collectors bridging the hbm device and PIM executor counters.
	// Restricted views (multi-tenancy) share the parent's registry.
	Metrics *metrics.Registry
	pm      *phaseMetrics

	// obsAgg, when armed by BeginPhaseObs, accumulates per-kernel phase
	// activity per channel (tracing's span attributes). Nil when tracing
	// is off: notePhase pays one nil check.
	obsAgg [][NumPhases]phaseCell

	// SimChannels, when positive and the device is timing-only, limits
	// kernel command-stream generation to the first n channels. Channel 0
	// always carries the maximum per-channel load (blocks are dealt round
	// robin starting there), so its cycle count is the kernel latency;
	// simulating the remaining symmetric channels would only repeat it.
	SimChannels int

	// ParallelKernels, when set with no engine installed, auto-installs
	// a parallel engine on first use. Channels are fully independent
	// (own clock, banks, execution units), so results and cycle counts
	// are identical to the sequential order; only host wall-clock
	// changes. New code should call UseEngine directly.
	ParallelKernels bool

	// eng dispatches per-channel kernel work. Nil runs channels
	// sequentially on the caller's goroutine (engine.Serial semantics
	// without the indirection).
	eng engine.Engine
}

// UseEngine installs the execution engine that ForEachChannel dispatches
// kernel channel work through, closing any previously installed engine.
// Call while kernels are quiescent.
func (r *Runtime) UseEngine(e engine.Engine) {
	if r.eng != nil {
		r.eng.Close()
	}
	r.eng = e
}

// EngineName reports the installed engine ("serial" when none is).
func (r *Runtime) EngineName() string {
	if r.eng == nil {
		return engine.Serial{}.Name()
	}
	return r.eng.Name()
}

// CloseEngine releases the installed engine's workers (idempotent).
func (r *Runtime) CloseEngine() {
	if r.eng != nil {
		r.eng.Close()
		r.eng = nil
	}
}

// ForEachChannel runs fn(ch) for the kernel's effective channels through
// the installed engine and returns after every channel quiesced (the
// result-join barrier). The lowest-channel error wins.
func (r *Runtime) ForEachChannel(fn func(ch int) error) error {
	n := r.EffectiveChannels()
	if r.eng == nil {
		if !r.ParallelKernels || n == 1 {
			for ch := 0; ch < n; ch++ {
				if err := fn(ch); err != nil {
					return err
				}
			}
			return nil
		}
		r.eng = engine.NewParallel(len(r.Chans))
	}
	return r.eng.Run(n, fn)
}

// EffectiveChannels returns how many channels kernels should drive.
// Functional runs always drive every channel (results live everywhere).
func (r *Runtime) EffectiveChannels() int {
	if r.Cfg.Functional || r.SimChannels <= 0 || r.SimChannels > len(r.Chans) {
		return len(r.Chans)
	}
	return r.SimChannels
}

// New builds a runtime over a set of devices (4 PIM-HBM stacks in the
// paper's system). All devices must share one configuration.
func New(devs []*hbm.Device) (*Runtime, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("runtime: no devices")
	}
	cfg := devs[0].Config()
	r := &Runtime{Cfg: cfg}
	for _, dev := range devs {
		if dev.Config() != cfg {
			return nil, fmt.Errorf("runtime: heterogeneous device configurations")
		}
		execs, err := pim.Attach(dev)
		if err != nil {
			return nil, err
		}
		for i := 0; i < dev.NumPCH(); i++ {
			r.Chans = append(r.Chans, memctrl.NewChannel(dev.PCH(i), cfg))
			r.Execs = append(r.Execs, execs[i])
		}
	}
	drv, err := driver.New(cfg, len(r.Chans))
	if err != nil {
		return nil, err
	}
	r.Drv = drv

	// One registry shard per channel: kernels under ParallelKernels write
	// contention free, and per-channel deltas stay separable.
	r.Metrics = metrics.New(len(r.Chans))
	for i, c := range r.Chans {
		c.UseMetrics(r.Metrics, i)
	}
	r.pm = newPhaseMetrics(r.Metrics)
	r.Metrics.RegisterCollector(r.collectDeviceMetrics)
	return r, nil
}

// NumChannels returns the number of pseudo channels.
func (r *Runtime) NumChannels() int { return len(r.Chans) }

// issue sends one command on a channel.
func (r *Runtime) issue(ch int, cmd hbm.Command) (hbm.IssueResult, error) {
	res, err := r.Chans[ch].Issue(cmd)
	if err != nil {
		return res, fmt.Errorf("runtime: ch%d %s: %w", ch, cmd, err)
	}
	return res, nil
}

// EnterAB performs the ABMR handshake on a channel.
func (r *Runtime) EnterAB(ch int) error {
	start := r.Chans[ch].Now()
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.ABMRBank, Row: r.Cfg.ModeRow()}); err != nil {
		return err
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.ABMRBank}); err != nil {
		return err
	}
	r.notePhase(ch, PhaseMode, start)
	return nil
}

// ExitToSB performs the SBMR handshake (all banks must be precharged).
func (r *Runtime) ExitToSB(ch int) error {
	start := r.Chans[ch].Now()
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.SBMRBank, Row: r.Cfg.ModeRow()}); err != nil {
		return err
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.SBMRBank}); err != nil {
		return err
	}
	r.notePhase(ch, PhaseMode, start)
	return nil
}

// SetPIMMode writes PIM_OP_MODE through the mode row.
func (r *Runtime) SetPIMMode(ch int, on bool) error {
	start := r.Chans[ch].Now()
	data := make([]byte, r.Cfg.AccessBytes)
	if on {
		data[0] = 1
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.ABMRBank, Row: r.Cfg.ModeRow()}); err != nil {
		return err
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdWR, BG: 0, Bank: hbm.ABMRBank, Col: hbm.ColPIMOpMode, Data: data}); err != nil {
		return err
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.ABMRBank}); err != nil {
		return err
	}
	r.notePhase(ch, PhaseMode, start)
	return nil
}

// ProgramCRF broadcasts a microkernel into every unit of a channel. The
// channel must be in AB mode with all banks precharged. Programs longer
// than the CRF are rejected up front.
func (r *Runtime) ProgramCRF(ch int, prog []isa.Instruction) error {
	if len(prog) > isa.CRFEntries {
		return fmt.Errorf("runtime: program of %d instructions overflows the %d-entry CRF",
			len(prog), isa.CRFEntries)
	}
	start := r.Chans[ch].Now()
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		return err
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, Row: r.Cfg.CRFRow()}); err != nil {
		return err
	}
	for col := 0; col*8 < len(words); col++ {
		buf := make([]byte, r.Cfg.AccessBytes)
		for i := 0; i < 8 && col*8+i < len(words); i++ {
			w := words[col*8+i]
			buf[4*i], buf[4*i+1], buf[4*i+2], buf[4*i+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
		}
		if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdWR, Col: uint32(col), Data: buf}); err != nil {
			return err
		}
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPREA}); err != nil {
		return err
	}
	r.notePhase(ch, PhaseCRF, start)
	return nil
}

// ProgramSRF broadcasts the scalar registers: m fills SRF_M[0..7], a fills
// SRF_A[0..7]. AB mode, banks precharged. Slices longer than the register
// file are rejected — the old behaviour of silently truncating them hid
// kernels computing with scalars that never arrived.
func (r *Runtime) ProgramSRF(ch int, m, a []fp16.F16) error {
	if len(m) > isa.SRFEntries || len(a) > isa.SRFEntries {
		return fmt.Errorf("runtime: SRF payload %d/%d scalars overflows the %d-entry halves",
			len(m), len(a), isa.SRFEntries)
	}
	start := r.Chans[ch].Now()
	v := fp16.NewVector(2 * isa.SRFEntries)
	copy(v[:isa.SRFEntries], m)
	copy(v[isa.SRFEntries:], a)
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, Row: r.Cfg.SRFRow()}); err != nil {
		return err
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdWR, Col: 0, Data: v.Bytes()}); err != nil {
		return err
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPREA}); err != nil {
		return err
	}
	r.notePhase(ch, PhaseSRF, start)
	return nil
}

// ZeroGRF broadcasts zeros into GRF_B[0..7] of every unit (accumulator
// reset between macro passes). AB mode, banks precharged.
func (r *Runtime) ZeroGRF(ch int) error {
	start := r.Chans[ch].Now()
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, Row: r.Cfg.GRFRow()}); err != nil {
		return err
	}
	zero := make([]byte, r.Cfg.AccessBytes)
	for i := 0; i < 2*isa.GRFEntries; i++ {
		if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdWR, Col: uint32(i), Data: zero}); err != nil {
			return err
		}
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPREA}); err != nil {
		return err
	}
	r.notePhase(ch, PhaseGRF, start)
	return nil
}

// OpenRow broadcast-activates a row on a channel (AB/AB-PIM modes).
func (r *Runtime) OpenRow(ch int, row uint32) error {
	_, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, Row: row})
	return err
}

// CloseRows precharges all banks of a channel.
func (r *Runtime) CloseRows(ch int) error {
	_, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPREA})
	return err
}

// Recover restores a channel to single-bank mode with every bank
// precharged. A kernel that fails mid-flight (an uncorrectable ECC word,
// an injected fault) aborts wherever the error caught it — typically
// AB-PIM mode with a weight row open — and the next launch's EnterAB
// handshake would be illegal against that state. Recover is idempotent
// and cheap on an already-clean channel: PREA, then unwind whatever mode
// the channel is still in.
func (r *Runtime) Recover(ch int) error {
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPREA}); err != nil {
		return err
	}
	if r.Chans[ch].PCH().Mode() == hbm.ModeABPIM {
		if err := r.SetPIMMode(ch, false); err != nil {
			return err
		}
	}
	if r.Chans[ch].PCH().Mode() == hbm.ModeAB {
		return r.ExitToSB(ch)
	}
	return nil
}

// TriggerRD issues a PIM-triggering column read. bankSel 0 drives the
// even banks, 1 the odd banks.
func (r *Runtime) TriggerRD(ch, bankSel int, col uint32) error {
	start := r.Chans[ch].Now()
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdRD, Bank: bankSel, Col: col}); err != nil {
		return err
	}
	r.notePhase(ch, PhaseTrigger, start)
	return nil
}

// TriggerWR issues a PIM-triggering column write carrying data on the
// write datapath.
func (r *Runtime) TriggerWR(ch, bankSel int, col uint32, data []byte) error {
	start := r.Chans[ch].Now()
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdWR, Bank: bankSel, Col: col, Data: data}); err != nil {
		return err
	}
	r.notePhase(ch, PhaseTrigger, start)
	return nil
}

// TriggerRDRun issues n PIM-triggering column reads at consecutive
// columns col0..col0+n-1 — one AAM batch — with the phase accounting
// folded into a single metrics update (see notePhaseN).
func (r *Runtime) TriggerRDRun(ch, bankSel int, col0 uint32, n int) error {
	c := r.Chans[ch]
	start := c.Now()
	for i := 0; i < n; i++ {
		cmd := hbm.Command{Kind: hbm.CmdRD, Bank: bankSel, Col: col0 + uint32(i)}
		if _, err := c.Issue(cmd); err != nil {
			return fmt.Errorf("runtime: ch%d %s: %w", ch, cmd, err)
		}
	}
	r.notePhaseN(ch, PhaseTrigger, n, start)
	return nil
}

// TriggerWRRun issues n PIM-triggering column writes at consecutive
// columns col0..col0+n-1. When data is non-nil, data[i] rides the i-th
// write datapath (functional operand loading); a nil data is the
// timing-only form.
func (r *Runtime) TriggerWRRun(ch, bankSel int, col0 uint32, n int, data [][]byte) error {
	c := r.Chans[ch]
	start := c.Now()
	for i := 0; i < n; i++ {
		cmd := hbm.Command{Kind: hbm.CmdWR, Bank: bankSel, Col: col0 + uint32(i)}
		if data != nil {
			cmd.Data = data[i]
		}
		if _, err := c.Issue(cmd); err != nil {
			return fmt.Errorf("runtime: ch%d %s: %w", ch, cmd, err)
		}
	}
	r.notePhaseN(ch, PhaseTrigger, n, start)
	return nil
}

// Fence orders the preceding commands (one AAM window boundary).
func (r *Runtime) Fence(ch int) { r.Chans[ch].Fence() }

// WriteBankSB writes one 32-byte block to a specific bank in SB mode.
func (r *Runtime) WriteBankSB(ch, flatBank int, row, col uint32, data []byte) error {
	bg, b := flatBank/r.Cfg.BanksPerGroup, flatBank%r.Cfg.BanksPerGroup
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: b, Row: row}); err != nil {
		return err
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdWR, BG: bg, Bank: b, Col: col, Data: data}); err != nil {
		return err
	}
	_, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPRE, BG: bg, Bank: b})
	return err
}

// WriteBankRowSB writes up to a full row of one bank with a single
// activate.
func (r *Runtime) WriteBankRowSB(ch, flatBank int, row uint32, cols []uint32, data [][]byte) error {
	if len(cols) != len(data) {
		return fmt.Errorf("runtime: cols/data length mismatch")
	}
	bg, b := flatBank/r.Cfg.BanksPerGroup, flatBank%r.Cfg.BanksPerGroup
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: b, Row: row}); err != nil {
		return err
	}
	for i, col := range cols {
		if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdWR, BG: bg, Bank: b, Col: col, Data: data[i]}); err != nil {
			return err
		}
	}
	_, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPRE, BG: bg, Bank: b})
	return err
}

// ReadBankRowSB reads several columns of one bank row with a single
// activate, returning one 32-byte block per requested column.
func (r *Runtime) ReadBankRowSB(ch, flatBank int, row uint32, cols []uint32) ([][]byte, error) {
	bg, b := flatBank/r.Cfg.BanksPerGroup, flatBank%r.Cfg.BanksPerGroup
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: b, Row: row}); err != nil {
		return nil, err
	}
	out := make([][]byte, len(cols))
	for i, col := range cols {
		res, err := r.issue(ch, hbm.Command{Kind: hbm.CmdRD, BG: bg, Bank: b, Col: col})
		if err != nil {
			return nil, err
		}
		// res.Data is pseudo-channel scratch, only valid until the next
		// Issue: copy it out.
		out[i] = append([]byte(nil), res.Data...)
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPRE, BG: bg, Bank: b}); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadBankSB reads one 32-byte block from a specific bank in SB mode.
func (r *Runtime) ReadBankSB(ch, flatBank int, row, col uint32) ([]byte, error) {
	bg, b := flatBank/r.Cfg.BanksPerGroup, flatBank%r.Cfg.BanksPerGroup
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: b, Row: row}); err != nil {
		return nil, err
	}
	res, err := r.issue(ch, hbm.Command{Kind: hbm.CmdRD, BG: bg, Bank: b, Col: col})
	if err != nil {
		return nil, err
	}
	data := append([]byte(nil), res.Data...) // copy out of pCH scratch
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPRE, BG: bg, Bank: b}); err != nil {
		return nil, err
	}
	return data, nil
}

// ReadGRFSB reads one GRF register of one unit through the SB register
// space (half 0 = GRF_A, 1 = GRF_B). The register column index is
// half*GRFEntries + idx.
func (r *Runtime) ReadGRFSB(ch, unit, half, idx int) (fp16.Vector, error) {
	banksPerUnit := r.Cfg.Banks() / r.Cfg.PIMUnits
	flat := unit * banksPerUnit
	bg, b := flat/r.Cfg.BanksPerGroup, flat%r.Cfg.BanksPerGroup
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: b, Row: r.Cfg.GRFRow()}); err != nil {
		return nil, err
	}
	grfEntries := isa.GRFEntries
	if r.Cfg.Variant == hbm.Variant2X {
		grfEntries = 2 * isa.GRFEntries
	}
	col := uint32(half*grfEntries + idx)
	res, err := r.issue(ch, hbm.Command{Kind: hbm.CmdRD, BG: bg, Bank: b, Col: col})
	if err != nil {
		return nil, err
	}
	// Decode before the PRE: res.Data is scratch that the next Issue may
	// reuse.
	v := fp16.NewVector(fp16.Lanes)
	if res.Data != nil {
		v.DecodeBytes(res.Data)
	}
	if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPRE, BG: bg, Bank: b}); err != nil {
		return nil, err
	}
	return v, nil
}

// ReadGRFRowSB reads several GRF registers of consecutive units with one
// row activation per unit, returning vectors indexed [unit][reg].
func (r *Runtime) ReadGRFRowSB(ch, half int, regs int) ([][]fp16.Vector, error) {
	units := r.Cfg.PIMUnits
	out := make([][]fp16.Vector, units)
	banksPerUnit := r.Cfg.Banks() / units
	grfEntries := isa.GRFEntries
	if r.Cfg.Variant == hbm.Variant2X {
		grfEntries = 2 * isa.GRFEntries
	}
	for u := 0; u < units; u++ {
		flat := u * banksPerUnit
		bg, b := flat/r.Cfg.BanksPerGroup, flat%r.Cfg.BanksPerGroup
		if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: b, Row: r.Cfg.GRFRow()}); err != nil {
			return nil, err
		}
		out[u] = make([]fp16.Vector, regs)
		for i := 0; i < regs; i++ {
			res, err := r.issue(ch, hbm.Command{Kind: hbm.CmdRD, BG: bg, Bank: b, Col: uint32(half*grfEntries + i)})
			if err != nil {
				return nil, err
			}
			if res.Data == nil {
				out[u][i] = fp16.NewVector(fp16.Lanes)
			} else {
				out[u][i] = fp16.VectorFromBytes(res.Data)
			}
		}
		if _, err := r.issue(ch, hbm.Command{Kind: hbm.CmdPRE, BG: bg, Bank: b}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Now returns a channel's clock.
func (r *Runtime) Now(ch int) int64 { return r.Chans[ch].Now() }

// MaxNow returns the latest clock across channels (kernel completion).
func (r *Runtime) MaxNow() int64 {
	var m int64
	for _, c := range r.Chans {
		if c.Now() > m {
			m = c.Now()
		}
	}
	return m
}

// SyncChannels advances every channel to the global maximum (a host-side
// join across thread groups). It runs at the engine's result-join
// barrier, so every clock is quiescent and at most MaxNow; a backwards
// advance here would mean a channel ticked during the join, which is a
// scheduler invariant violation worth crashing on.
func (r *Runtime) SyncChannels() {
	m := r.MaxNow()
	for i, c := range r.Chans {
		if err := c.AdvanceTo(m); err != nil {
			panic(fmt.Sprintf("runtime: SyncChannels ch%d: %v", i, err))
		}
	}
}

// SetGuaranteeOrder toggles the in-order PIM mode study (Section VII-B)
// on every channel.
func (r *Runtime) SetGuaranteeOrder(on bool) {
	for _, c := range r.Chans {
		c.GuaranteeOrder = on
	}
}

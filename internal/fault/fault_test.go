package fault

import (
	"errors"
	"math/bits"
	"testing"
)

func corrupt(in *Injector, seq int64, data []byte) {
	in.CorruptReadout(0, 0, 100, 2, seq, data)
}

// Same config + same access sequence must produce identical corruption:
// the replay property every chaos golden rests on.
func TestDeterministicReplay(t *testing.T) {
	cfg := Config{Seed: 7, FlipRate: 0.05, DoubleFlipRate: 0.01}
	run := func() ([]byte, Counters) {
		in := New(cfg)
		buf := make([]byte, 32)
		for seq := int64(0); seq < 2000; seq++ {
			corrupt(in, seq, buf)
		}
		return buf, in.Counters()
	}
	b1, c1 := run()
	b2, c2 := run()
	if string(b1) != string(b2) {
		t.Fatalf("corruption not reproducible: % x vs % x", b1, b2)
	}
	if c1 != c2 {
		t.Fatalf("counters not reproducible: %+v vs %+v", c1, c2)
	}
	if c1.BitFlips == 0 || c1.DoubleFlips == 0 {
		t.Fatalf("expected both flip kinds at these rates, got %+v", c1)
	}
}

// Different seeds must draw different fault streams.
func TestSeedChangesPattern(t *testing.T) {
	mk := func(seed int64) []byte {
		in := New(Config{Seed: seed, FlipRate: 0.05})
		buf := make([]byte, 32)
		for seq := int64(0); seq < 500; seq++ {
			corrupt(in, seq, buf)
		}
		return buf
	}
	if string(mk(1)) == string(mk(2)) {
		t.Fatal("seeds 1 and 2 produced identical corruption")
	}
}

// Flip decisions are per-site hashes, not a shared stream: the same
// (address, seq) site corrupts the same way regardless of what other
// sites were visited first. This is what makes injection independent of
// kernel scheduling order under parallel channels.
func TestOrderIndependence(t *testing.T) {
	cfg := Config{Seed: 3, FlipRate: 0.2}
	probe := func(visitOthersFirst bool) []byte {
		in := New(cfg)
		if visitOthersFirst {
			scratch := make([]byte, 32)
			for seq := int64(0); seq < 100; seq++ {
				in.CorruptReadout(1, 5, 77, 3, seq, scratch)
			}
		}
		buf := make([]byte, 32)
		corrupt(in, 42, buf)
		return buf
	}
	if string(probe(false)) != string(probe(true)) {
		t.Fatal("corruption at a site depends on unrelated earlier accesses")
	}
}

// A single-flip site flips exactly one bit; a double-flip site flips
// exactly two bits of one 64-bit word.
func TestFlipShapes(t *testing.T) {
	in := New(Config{Seed: 11, FlipRate: 0.5})
	singles, doubles := 0, 0
	for seq := int64(0); seq < 400; seq++ {
		buf := make([]byte, 32)
		corrupt(in, seq, buf)
		for w := 0; w < 4; w++ {
			n := 0
			for _, b := range buf[8*w : 8*w+8] {
				n += bits.OnesCount8(b)
			}
			switch n {
			case 0:
			case 1:
				singles++
			default:
				t.Fatalf("seq %d word %d: %d bits flipped by single-flip config", seq, w, n)
			}
		}
	}
	if singles == 0 {
		t.Fatal("no flips at rate 0.5")
	}

	in2 := New(Config{Seed: 11, DoubleFlipRate: 0.5})
	for seq := int64(0); seq < 400; seq++ {
		buf := make([]byte, 32)
		corrupt(in2, seq, buf)
		for w := 0; w < 4; w++ {
			n := 0
			for _, b := range buf[8*w : 8*w+8] {
				n += bits.OnesCount8(b)
			}
			switch n {
			case 0:
			case 2:
				doubles++
			default:
				t.Fatalf("seq %d word %d: %d bits flipped by double-flip config", seq, w, n)
			}
		}
	}
	if doubles == 0 {
		t.Fatal("no double flips at rate 0.5")
	}
}

// Observed flip rate should be in the neighbourhood of the configured
// per-word rate (binomial, n = 40000 words, generous bounds).
func TestFlipRateSanity(t *testing.T) {
	in := New(Config{Seed: 5, FlipRate: 0.01})
	buf := make([]byte, 32)
	const readouts = 10000
	for seq := int64(0); seq < readouts; seq++ {
		corrupt(in, seq, buf)
	}
	got := in.Counters().BitFlips
	want := float64(readouts) * 4 * 0.01 // 400
	if float64(got) < want/2 || float64(got) > want*2 {
		t.Fatalf("flip count %d far from expected ~%.0f", got, want)
	}
}

func TestStuckBits(t *testing.T) {
	in := New(Config{Seed: 1, Stuck: []StuckBit{
		{Shard: -1, Channel: -1, Bank: 2, Row: 9, Col: 4, Bit: 13},
		{Shard: -1, Channel: 1, Bank: 2, Row: 9, Col: 4, Bit: 70},
	}})
	buf := make([]byte, 32)
	// Channel 0 sees only the channel-wildcard cell.
	in.CorruptReadout(0, 2, 9, 4, 0, buf)
	if buf[13/8] != 1<<(13%8) {
		t.Fatalf("wildcard stuck bit not applied: % x", buf)
	}
	buf[13/8] = 0
	// Channel 1 sees both.
	in.CorruptReadout(1, 2, 9, 4, 1, buf)
	if buf[13/8] != 1<<(13%8) || buf[70/8] != 1<<(70%8) {
		t.Fatalf("channel-targeted stuck bits wrong: % x", buf)
	}
	// Other addresses untouched.
	clean := make([]byte, 32)
	in.CorruptReadout(0, 2, 9, 5, 2, clean)
	in.CorruptReadout(0, 3, 9, 4, 3, clean)
	for _, b := range clean {
		if b != 0 {
			t.Fatalf("stuck bits leaked to other addresses: % x", clean)
		}
	}
	if in.Counters().StuckReads != 2 {
		t.Fatalf("StuckReads = %d, want 2", in.Counters().StuckReads)
	}
}

func TestSpikeSchedule(t *testing.T) {
	in := New(Config{Seed: 1, SpikeEvery: 10, SpikeCycles: 500})
	var total int64
	for seq := int64(1); seq <= 100; seq++ {
		total += in.ExtraIssueCycles(0, seq, 0)
	}
	if total != 10*500 {
		t.Fatalf("total spike cycles = %d, want %d", total, 10*500)
	}
	if in.Counters().Spikes != 10 {
		t.Fatalf("Spikes = %d, want 10", in.Counters().Spikes)
	}
	if New(Config{}).ExtraIssueCycles(0, 10, 0) != 0 {
		t.Fatal("zero config injected a spike")
	}
}

// The outage lifecycle: alive for DieAfterBatches-1 batches, then dead
// for batches and probes until ReviveAfterProbes probes have failed,
// then permanently alive.
func TestOutageLifecycle(t *testing.T) {
	in := New(Config{Shard: 3, DieAfterBatches: 3, ReviveAfterProbes: 2})
	if err := in.BatchErr(); err != nil {
		t.Fatalf("batch 1 should pass: %v", err)
	}
	if err := in.BatchErr(); err != nil {
		t.Fatalf("batch 2 should pass: %v", err)
	}
	err := in.BatchErr()
	var dead *ShardDeadError
	if !errors.As(err, &dead) || dead.Shard != 3 {
		t.Fatalf("batch 3 should die with ShardDeadError{3}, got %v", err)
	}
	if err := in.BatchErr(); err == nil {
		t.Fatal("batch 4 should still be dead")
	}
	if err := in.ProbeErr(); err == nil {
		t.Fatal("probe 1 should fail")
	}
	if err := in.ProbeErr(); err == nil {
		t.Fatal("probe 2 should fail")
	}
	if err := in.ProbeErr(); err != nil {
		t.Fatalf("probe 3 should pass (revived): %v", err)
	}
	if err := in.BatchErr(); err != nil {
		t.Fatalf("post-revival batch should pass: %v", err)
	}
	c := in.Counters()
	if c.DeadBatches != 2 || c.DeadProbes != 2 {
		t.Fatalf("outage counters %+v, want 2 dead batches / 2 dead probes", c)
	}

	// ReviveAfterProbes == 0: never comes back.
	in2 := New(Config{DieAfterBatches: 1})
	if err := in2.BatchErr(); err == nil {
		t.Fatal("immediate death expected")
	}
	for i := 0; i < 5; i++ {
		if err := in2.ProbeErr(); err == nil {
			t.Fatal("shard with ReviveAfterProbes=0 revived")
		}
	}
}

func TestForShard(t *testing.T) {
	base := Config{
		Seed: 9, FlipRate: 1e-3,
		SpikeShard: 1, SpikeEvery: 100, SpikeCycles: 10,
		DeadShard: 0, DieAfterBatches: 5, ReviveAfterProbes: 2, HangMs: 1,
		Stuck: []StuckBit{
			{Shard: -1, Bank: 0, Row: 1, Col: 0, Bit: 0},
			{Shard: 2, Bank: 0, Row: 2, Col: 0, Bit: 1},
		},
	}
	s0 := base.ForShard(0)
	if s0.DieAfterBatches != 5 || s0.SpikeEvery != 0 || len(s0.Stuck) != 1 {
		t.Fatalf("shard 0 specialization wrong: %+v", s0)
	}
	s1 := base.ForShard(1)
	if s1.DieAfterBatches != 0 || s1.HangMs != 0 || s1.SpikeEvery != 100 {
		t.Fatalf("shard 1 specialization wrong: %+v", s1)
	}
	s2 := base.ForShard(2)
	if len(s2.Stuck) != 2 {
		t.Fatalf("shard 2 should keep both stuck cells, got %+v", s2.Stuck)
	}
	if s0.Seed == s1.Seed {
		t.Fatal("shards share a fault seed")
	}
	if !s1.Enabled() || !s1.CorruptsData() {
		t.Fatal("specialized config lost its flip rate")
	}
}

func TestProfiles(t *testing.T) {
	for _, name := range ProfileNames() {
		cfg, err := Profile(name, 42)
		if err != nil {
			t.Fatalf("Profile(%q): %v", name, err)
		}
		if name == "none" && cfg.Enabled() {
			t.Fatal("profile none should inject nothing")
		}
		if name != "none" && !cfg.Enabled() {
			t.Fatalf("profile %s injects nothing", name)
		}
	}
	mild, _ := Profile("chaos-mild", 1)
	if mild.DoubleFlipRate != 0 {
		t.Fatal("chaos-mild must stay within SEC-DED correction (no double flips)")
	}
	if _, err := Profile("bogus", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestZeroConfigIsInert(t *testing.T) {
	in := New(Config{})
	buf := make([]byte, 32)
	corrupt(in, 1, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("zero config corrupted data")
		}
	}
	if err := in.BatchErr(); err != nil {
		t.Fatalf("zero config killed a batch: %v", err)
	}
	if err := in.ProbeErr(); err != nil {
		t.Fatalf("zero config failed a probe: %v", err)
	}
	if (in.Counters() != Counters{}) {
		t.Fatalf("zero config counted something: %+v", in.Counters())
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config reports Enabled")
	}
}

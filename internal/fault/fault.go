// Package fault is the deterministic fault-injection layer for the
// simulated PIM memory system. It produces the misbehaviour a fielded
// HBM2 part exhibits — transient single- and multi-bit upsets on the
// row-buffer readout, stuck-at cells, command-issue latency spikes, and
// whole-device outages — as pure functions of a seed and the access
// address, so every chaos run replays bit-for-bit.
//
// The injector plugs into the device model behind two tiny interfaces
// (hbm.ReadFault and memctrl.Delayer) that are nil-checked on the hot
// path: a device without an attached injector pays one pointer compare
// per readout and nothing else. Corruption happens on the *readout*
// copy, after the array is read and before the ECC engine decodes it —
// the stored cells stay clean, which is exactly how a transient upset
// or a weak cell behaves (scrubbing rewrites good data, and a stuck
// cell re-corrupts the next read anyway).
//
// Determinism: every flip decision is a splitmix64-style hash of
// (seed, channel, bank, row, col, word, seq) where seq is the pseudo
// channel's own readout counter. No time.Now, no shared math/rand
// state — concurrent kernels on different channels draw from disjoint,
// order-independent streams, so runtime.ParallelKernels does not
// perturb the fault pattern.
package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// StuckBit pins one data bit so it reads back inverted on every readout
// of its 32-byte block: a permanent weak cell. Two StuckBits in the same
// 64-bit word make that word permanently uncorrectable under SEC-DED —
// the fault the serving layer's quarantine-and-relocate recovery exists
// for.
type StuckBit struct {
	Shard   int    // serving shard the cell lives in (-1: every shard)
	Channel int    // pseudo channel (-1: every channel)
	Bank    int    // flat bank index (bg*BanksPerGroup + bank)
	Row     uint32 // array row
	Col     uint32 // 32-byte column within the row
	Bit     int    // bit position within the 256-bit block (0-255)
}

// Config describes one fault profile. The zero value injects nothing.
// Rates and schedules are interpreted by Injector; the *Shard fields
// are consumed by ForShard when the serving layer specializes the
// profile for each device in its pool.
type Config struct {
	// Seed keys every injection decision. Two runs with equal Config
	// and equal traffic produce identical faults.
	Seed int64

	// Shard is the serving shard this config was specialized for (set
	// by ForShard; informational — it labels ShardDeadError).
	Shard int

	// FlipRate is the per-64-bit-word probability of a transient
	// single-bit upset on readout. With ECC enabled every such flip is
	// corrected and counted; without ECC it silently corrupts data.
	FlipRate float64

	// DoubleFlipRate is the per-word probability of a two-bit upset:
	// detectable but uncorrectable under SEC-DED, surfacing as
	// hbm.UncorrectableError.
	DoubleFlipRate float64

	// Stuck lists permanent weak cells.
	Stuck []StuckBit

	// SpikeShard selects which serving shard sees latency spikes
	// (-1: all shards).
	SpikeShard int

	// SpikeEvery injects one latency spike per that many issued
	// commands on an affected channel (0: no spikes). SpikeCycles is
	// the extra delay, in memory-clock cycles.
	SpikeEvery  int64
	SpikeCycles int64

	// DeadShard selects which serving shard suffers the outage below.
	DeadShard int

	// DieAfterBatches, when > 0, kills the dead shard starting at its
	// Nth batch attempt: every batch and probe on it fails with
	// ShardDeadError until ReviveAfterProbes probe attempts have failed,
	// after which the shard is permanently healthy again
	// (ReviveAfterProbes 0: the shard never revives).
	DieAfterBatches   int64
	ReviveAfterProbes int64

	// HangMs simulates a hung device rescued by a watchdog: each failed
	// batch or probe on the dead shard blocks this long before
	// reporting ShardDeadError.
	HangMs int
}

// CorruptsData reports whether the profile injects data corruption
// (bit flips or stuck cells) — if so, the device needs its ECC engine
// enabled to keep served outputs correct.
func (c Config) CorruptsData() bool {
	return c.FlipRate > 0 || c.DoubleFlipRate > 0 || len(c.Stuck) > 0
}

// Delays reports whether the profile injects command-issue latency.
func (c Config) Delays() bool { return c.SpikeEvery > 0 && c.SpikeCycles > 0 }

// Enabled reports whether the profile injects anything at all.
func (c Config) Enabled() bool {
	return c.CorruptsData() || c.Delays() || c.DieAfterBatches > 0
}

// ForShard specializes the profile for one serving shard: the seed is
// re-keyed so shards draw independent fault streams, and shard-targeted
// faults (outage, spikes, stuck cells) are kept only on their target.
func (c Config) ForShard(shard int) Config {
	out := c
	out.Shard = shard
	out.Seed = c.Seed ^ int64(mix(uint64(shard)*0x9e3779b97f4a7c15+0x6a09e667f3bcc909))
	if c.DieAfterBatches > 0 && c.DeadShard != shard {
		out.DieAfterBatches, out.ReviveAfterProbes, out.HangMs = 0, 0, 0
	}
	if c.SpikeShard >= 0 && c.SpikeShard != shard {
		out.SpikeEvery, out.SpikeCycles = 0, 0
	}
	out.Stuck = nil
	for _, sb := range c.Stuck {
		if sb.Shard < 0 || sb.Shard == shard {
			out.Stuck = append(out.Stuck, sb)
		}
	}
	return out
}

// ProfileNames lists the named profiles Profile accepts.
func ProfileNames() []string { return []string{"none", "chaos-mild", "chaos-hard"} }

// Profile returns a named fault profile keyed by seed.
//
// "none" injects nothing. "chaos-mild" stays within what SEC-DED
// corrects — transient single-bit flips only, plus latency spikes
// everywhere and one shard outage with revival — so a verifying load
// generator must see zero wrong answers. "chaos-hard" adds rare
// transient double-bit upsets, a permanently uncorrectable stuck word
// in the first PIM row, and a hang before the outage reports,
// exercising the retry, eviction and quarantine-relocate paths.
func Profile(name string, seed int64) (Config, error) {
	switch name {
	case "", "none":
		return Config{Seed: seed, SpikeShard: -1}, nil
	case "chaos-mild":
		return Config{
			Seed:           seed,
			FlipRate:       1e-4,
			DoubleFlipRate: 0,
			SpikeShard:     -1,
			SpikeEvery:     3000,
			SpikeCycles:    60000,
			DeadShard:      0, DieAfterBatches: 10, ReviveAfterProbes: 3,
		}, nil
	case "chaos-hard":
		return Config{
			Seed:     seed,
			FlipRate: 1e-3,
			// Rare enough that a known-answer probe (which reads every
			// resident model's full weight footprint) still passes most of
			// the time — transient double flips must be survivable, not a
			// permanent denial of service.
			DoubleFlipRate: 3e-7,
			// Two stuck bits in one 64-bit word: a deterministic
			// uncorrectable in the first PIM row, which is what forces the
			// quarantine-and-relocate recovery (one stuck bit would just
			// be corrected on every read).
			Stuck: []StuckBit{
				{Shard: -1, Channel: -1, Bank: 0, Row: 2048, Col: 0, Bit: 3},
				{Shard: -1, Channel: -1, Bank: 0, Row: 2048, Col: 0, Bit: 12},
			},
			SpikeShard:  -1,
			SpikeEvery:  2000,
			SpikeCycles: 100000,
			DeadShard:   0, DieAfterBatches: 8, ReviveAfterProbes: 3,
			HangMs: 2,
		}, nil
	}
	return Config{}, fmt.Errorf("fault: unknown profile %q (have %s)",
		name, strings.Join(ProfileNames(), ", "))
}

// ShardDeadError reports an injected whole-shard outage: the device
// stopped answering. It is retryable — surviving shards can serve the
// work — and clears when the shard revives.
type ShardDeadError struct {
	Shard int // serving shard that died
}

func (e *ShardDeadError) Error() string {
	return fmt.Sprintf("fault: shard %d dead (injected outage)", e.Shard)
}

// Counters is a snapshot of what an Injector has done so far.
type Counters struct {
	BitFlips    int64 // transient single-bit flips injected
	DoubleFlips int64 // transient double-bit (uncorrectable) upsets
	StuckReads  int64 // readouts that hit a stuck cell
	Spikes      int64 // latency spikes injected
	DeadBatches int64 // batch attempts failed by the outage
	DeadProbes  int64 // probe attempts failed by the outage
}

// stuckKey addresses one 32-byte block that contains stuck cells.
type stuckKey struct {
	channel int
	bank    int
	row     uint32
	col     uint32
}

// Injector implements the device-side fault hooks for one Config. It
// satisfies hbm.ReadFault and memctrl.Delayer structurally, and is safe
// for concurrent use from parallel per-channel kernels: all decisions
// are pure hashes and all bookkeeping is atomic.
type Injector struct {
	cfg     Config
	seed    uint64
	anyRate float64 // FlipRate + DoubleFlipRate, precomputed
	stuck   map[stuckKey][]int

	bitFlips    atomic.Int64
	doubleFlips atomic.Int64
	stuckReads  atomic.Int64
	spikes      atomic.Int64
	deadBatches atomic.Int64
	deadProbes  atomic.Int64

	batches atomic.Int64 // batch attempts observed (outage schedule)
	probes  atomic.Int64 // failed probes accumulated toward revival
}

// New builds an injector for cfg.
func New(cfg Config) *Injector {
	in := &Injector{
		cfg:     cfg,
		seed:    mix(uint64(cfg.Seed) ^ 0x5bf0_3635),
		anyRate: cfg.FlipRate + cfg.DoubleFlipRate,
	}
	if len(cfg.Stuck) > 0 {
		in.stuck = make(map[stuckKey][]int, len(cfg.Stuck))
		for _, sb := range cfg.Stuck {
			k := stuckKey{channel: sb.Channel, bank: sb.Bank, row: sb.Row, col: sb.Col}
			in.stuck[k] = append(in.stuck[k], sb.Bit)
			sort.Ints(in.stuck[k])
		}
	}
	return in
}

// Config returns the profile the injector was built from.
func (in *Injector) Config() Config { return in.cfg }

// Counters snapshots the injection counts.
func (in *Injector) Counters() Counters {
	return Counters{
		BitFlips:    in.bitFlips.Load(),
		DoubleFlips: in.doubleFlips.Load(),
		StuckReads:  in.stuckReads.Load(),
		Spikes:      in.spikes.Load(),
		DeadBatches: in.deadBatches.Load(),
		DeadProbes:  in.deadProbes.Load(),
	}
}

// CorruptReadout flips bits in one 32-byte row-buffer readout. It is
// called by the hbm read path after the array copy and before the ECC
// decode (see hbm.ReadFault). data is sampled per 64-bit word — the ECC
// code word — so a "double flip" lands both bits in one code word and
// is guaranteed uncorrectable.
func (in *Injector) CorruptReadout(channel, bank int, row, col uint32, seq int64, data []byte) {
	if in.anyRate > 0 {
		for w := 0; w < len(data)/8; w++ {
			h := in.site(channel, bank, row, col, seq, w)
			u := float64(h>>11) * (1.0 / (1 << 53))
			if u >= in.anyRate {
				continue
			}
			h = mix(h)
			b1 := int(h & 63)
			if u < in.cfg.DoubleFlipRate {
				b2 := int((h >> 6) & 63)
				if b2 == b1 {
					b2 = (b1 + 1) & 63
				}
				flipBit(data, w, b1)
				flipBit(data, w, b2)
				in.doubleFlips.Add(1)
			} else {
				flipBit(data, w, b1)
				in.bitFlips.Add(1)
			}
		}
	}
	if in.stuck != nil {
		in.applyStuck(channel, bank, row, col, data)
	}
}

func (in *Injector) applyStuck(channel, bank int, row, col uint32, data []byte) {
	hit := false
	for _, ch := range [2]int{channel, -1} {
		if bits, ok := in.stuck[stuckKey{channel: ch, bank: bank, row: row, col: col}]; ok {
			for _, b := range bits {
				if b >= 0 && b < 8*len(data) {
					data[b/8] ^= 1 << (b % 8)
					hit = true
				}
			}
		}
	}
	if hit {
		in.stuckReads.Add(1)
	}
}

// flipBit inverts bit b (0-63) of 64-bit word w inside data.
func flipBit(data []byte, w, b int) {
	data[8*w+b/8] ^= 1 << (b % 8)
}

// ExtraIssueCycles injects per-channel command-issue latency spikes
// (see memctrl.Delayer): every SpikeEvery-th command on the channel
// issues SpikeCycles late. seq is the channel's own delayer call
// counter, so the schedule is deterministic and per-channel.
func (in *Injector) ExtraIssueCycles(channel int, seq, now int64) int64 {
	if in.cfg.SpikeEvery <= 0 || seq%in.cfg.SpikeEvery != 0 {
		return 0
	}
	in.spikes.Add(1)
	return in.cfg.SpikeCycles
}

// dead reports whether the outage schedule currently holds the shard
// down, given the number of batch attempts observed so far.
func (in *Injector) dead(batchesSeen int64) bool {
	if in.cfg.DieAfterBatches <= 0 || batchesSeen < in.cfg.DieAfterBatches {
		return false
	}
	return in.cfg.ReviveAfterProbes <= 0 || in.probes.Load() < in.cfg.ReviveAfterProbes
}

// BatchErr is called by the serving layer before each batch attempt on
// the shard. It returns ShardDeadError while the injected outage holds
// and nil otherwise, advancing the outage schedule by one attempt.
func (in *Injector) BatchErr() error {
	if in.cfg.DieAfterBatches <= 0 {
		return nil
	}
	n := in.batches.Add(1)
	if !in.dead(n) {
		return nil
	}
	in.deadBatches.Add(1)
	in.hang()
	return &ShardDeadError{Shard: in.cfg.Shard}
}

// ProbeErr is called by the serving layer's prober for each probation
// probe of the shard. While the outage holds it fails with
// ShardDeadError, and each failure counts toward ReviveAfterProbes;
// once enough probes have failed the outage lifts for good.
func (in *Injector) ProbeErr() error {
	if !in.dead(in.batches.Load()) {
		return nil
	}
	if in.cfg.ReviveAfterProbes > 0 {
		in.probes.Add(1)
	}
	in.deadProbes.Add(1)
	in.hang()
	return &ShardDeadError{Shard: in.cfg.Shard}
}

func (in *Injector) hang() {
	if in.cfg.HangMs > 0 {
		time.Sleep(time.Duration(in.cfg.HangMs) * time.Millisecond)
	}
}

// site hashes one injection site into 64 uniform bits.
func (in *Injector) site(channel, bank int, row, col uint32, seq int64, word int) uint64 {
	z := in.seed
	z = mix(z ^ uint64(channel)<<48 ^ uint64(bank))
	z = mix(z ^ uint64(row)<<32 ^ uint64(col))
	z = mix(z ^ uint64(seq)<<8 ^ uint64(word))
	return z
}

// mix is the splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

package metrics

// Dimensional series in this registry are flat: labels are baked into the
// metric name (`serve_shed_total{tenant="gold",reason="queue-full"}`), so
// the registry stays a plain map and every export path inherits the
// dimensions for free. Labels is the one sanctioned way to build such a
// name — it escapes label values per the Prometheus exposition format
// (`\\`, `\"`, `\n`) and sanitizes label names, so hostile tenant or model
// strings can't corrupt the scrape output or smuggle extra series.

import "strings"

// Labels builds `name{k1="v1",k2="v2",...}` from alternating key/value
// pairs. Values are escaped for the exposition format; keys are sanitized
// to [a-zA-Z_][a-zA-Z0-9_]* (offending runes become '_'). An odd trailing
// key is dropped. With no pairs the bare name is returned.
func Labels(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 16*len(kv))
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		writeLabelName(&b, kv[i])
		b.WriteString(`="`)
		writeLabelValue(&b, kv[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func writeLabelName(b *strings.Builder, s string) {
	if s == "" {
		b.WriteByte('_')
		return
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
}

func writeLabelValue(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

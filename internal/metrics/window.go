package metrics

// Sliding-window metrics: the registry's counters and histograms are
// cumulative (good for diffing whole runs), but an operator asking "are we
// meeting the latency objective *right now*" needs the last N seconds, not
// the lifetime distribution. WindowHistogram and WindowCounter keep a ring
// of time-bucketed slots behind an injectable clock: each slot covers
// Width/Slots of wall time, an observation lands in the slot owning the
// current instant (lazily evicting whatever expired there a full ring ago),
// and a snapshot folds the slots younger than the queried window.
//
// Windows are quantized to slot boundaries: a query for window w covers at
// least w-slot and at most w of history. Tests pin rollover exactly by
// driving the clock in slot multiples (see window_test.go).
//
// Both types are safe for concurrent use (one mutex per instance — these
// sit on the serving layer's request path, not the simulator's per-cycle
// hot path). The injectable clock is what makes the SLO drills
// deterministic: internal/slo runs entire burn-rate scenarios on a fake
// clock with zero sleeps.

import (
	"sync"
	"time"
)

// Clock is the time source behind windowed metrics. Production uses
// time.Now; tests inject a hand-driven clock to pin window rollover.
type Clock func() time.Time

// WindowOpts sizes a sliding-window metric. Zero values take defaults:
// Width 60s, Slots 30, Clock time.Now (or the registry's clock when the
// metric is registry-built after SetClock).
type WindowOpts struct {
	Width time.Duration
	Slots int
	Clock Clock
}

func (o *WindowOpts) applyDefaults(fallback Clock) {
	if o.Width <= 0 {
		o.Width = 60 * time.Second
	}
	if o.Slots <= 0 {
		o.Slots = 30
	}
	if o.Clock == nil {
		o.Clock = fallback
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
}

// WindowHistogram is a fixed-bucket distribution over a sliding time
// window: a ring of time slots, each holding its own bucket counts.
type WindowHistogram struct {
	name    string
	bounds  []int64
	slotDur int64 // ns covered by one slot
	now     Clock

	mu    sync.Mutex
	slots []winHistSlot
}

type winHistSlot struct {
	epoch   int64 // absolute slot index (unixNano / slotDur); -1 = never used
	count   int64
	sum     int64
	buckets []int64 // len(bounds)+1, last is +Inf overflow
}

func newWindowHistogram(name string, bounds []int64, o WindowOpts) *WindowHistogram {
	h := &WindowHistogram{
		name:    name,
		bounds:  append([]int64(nil), bounds...),
		slotDur: int64(o.Width) / int64(o.Slots),
		now:     o.Clock,
		slots:   make([]winHistSlot, o.Slots),
	}
	if h.slotDur < 1 {
		h.slotDur = 1
	}
	for i := range h.slots {
		h.slots[i].epoch = -1
		h.slots[i].buckets = make([]int64, len(bounds)+1)
	}
	return h
}

// Name returns the registered name.
func (h *WindowHistogram) Name() string { return h.name }

// Width returns the total history the ring retains.
func (h *WindowHistogram) Width() time.Duration {
	return time.Duration(h.slotDur * int64(len(h.slots)))
}

// Observe records one value at the current instant. Steady state is
// allocation-free: slots are preallocated and reset in place on rollover.
func (h *WindowHistogram) Observe(v int64) {
	epoch := h.now().UnixNano() / h.slotDur
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	s := h.slot(epoch)
	s.buckets[i]++
	s.count++
	s.sum += v
	h.mu.Unlock()
}

// slot returns the ring slot owning epoch, lazily evicting the expired
// occupant. Callers hold h.mu.
func (h *WindowHistogram) slot(epoch int64) *winHistSlot {
	s := &h.slots[int(epoch%int64(len(h.slots)))]
	if s.epoch != epoch {
		s.epoch = epoch
		s.count, s.sum = 0, 0
		for b := range s.buckets {
			s.buckets[b] = 0
		}
	}
	return s
}

// Snapshot folds every slot younger than window into one merged
// HistogramSnapshot. window clamps to the ring's width; <= 0 means the
// full width.
func (h *WindowHistogram) Snapshot(window time.Duration) HistogramSnapshot {
	if window <= 0 || window > h.Width() {
		window = h.Width()
	}
	n := (int64(window) + h.slotDur - 1) / h.slotDur // slots covered, rounded up
	cur := h.now().UnixNano() / h.slotDur
	out := HistogramSnapshot{
		Bounds:  append([]int64(nil), h.bounds...),
		Buckets: make([]int64, len(h.bounds)+1),
	}
	h.mu.Lock()
	for i := range h.slots {
		s := &h.slots[i]
		if s.epoch < 0 || s.epoch <= cur-n || s.epoch > cur {
			continue
		}
		out.Count += s.count
		out.Sum += s.sum
		for b := range out.Buckets {
			out.Buckets[b] += s.buckets[b]
		}
	}
	h.mu.Unlock()
	return out
}

// WindowCounter counts events over a sliding time window (a rate counter:
// Total over the last N seconds, Rate in events/second).
type WindowCounter struct {
	name    string
	slotDur int64
	now     Clock

	mu    sync.Mutex
	slots []winCountSlot
}

type winCountSlot struct {
	epoch int64 // -1 = never used
	count int64
}

func newWindowCounter(name string, o WindowOpts) *WindowCounter {
	c := &WindowCounter{
		name:    name,
		slotDur: int64(o.Width) / int64(o.Slots),
		now:     o.Clock,
		slots:   make([]winCountSlot, o.Slots),
	}
	if c.slotDur < 1 {
		c.slotDur = 1
	}
	for i := range c.slots {
		c.slots[i].epoch = -1
	}
	return c
}

// Name returns the registered name.
func (c *WindowCounter) Name() string { return c.name }

// Width returns the total history the ring retains.
func (c *WindowCounter) Width() time.Duration {
	return time.Duration(c.slotDur * int64(len(c.slots)))
}

// Inc adds one event at the current instant.
func (c *WindowCounter) Inc() { c.Add(1) }

// Add adds d events at the current instant.
func (c *WindowCounter) Add(d int64) {
	epoch := c.now().UnixNano() / c.slotDur
	c.mu.Lock()
	s := &c.slots[int(epoch%int64(len(c.slots)))]
	if s.epoch != epoch {
		s.epoch = epoch
		s.count = 0
	}
	s.count += d
	c.mu.Unlock()
}

// Total counts the events recorded within window of now (clamped to the
// ring width; <= 0 means the full width).
func (c *WindowCounter) Total(window time.Duration) int64 {
	if window <= 0 || window > c.Width() {
		window = c.Width()
	}
	n := (int64(window) + c.slotDur - 1) / c.slotDur
	cur := c.now().UnixNano() / c.slotDur
	var t int64
	c.mu.Lock()
	for i := range c.slots {
		s := &c.slots[i]
		if s.epoch < 0 || s.epoch <= cur-n || s.epoch > cur {
			continue
		}
		t += s.count
	}
	c.mu.Unlock()
	return t
}

// Rate returns events per second over the window.
func (c *WindowCounter) Rate(window time.Duration) float64 {
	if window <= 0 || window > c.Width() {
		window = c.Width()
	}
	if window <= 0 {
		return 0
	}
	return float64(c.Total(window)) / window.Seconds()
}

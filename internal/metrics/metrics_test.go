package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterShardsMerge(t *testing.T) {
	r := New(4)
	c := r.Counter("x_total")
	for shard := 0; shard < 4; shard++ {
		c.Add(shard, int64(shard+1))
	}
	if c.Value() != 1+2+3+4 {
		t.Errorf("merged value = %d, want 10", c.Value())
	}
	if c.ShardValue(2) != 3 {
		t.Errorf("shard 2 = %d, want 3", c.ShardValue(2))
	}
	// Registration is idempotent: same handle back.
	if r.Counter("x_total") != c {
		t.Error("re-registration returned a new counter")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := New(1)
	r.Counter("name")
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("name")
}

func TestConcurrentShardWriters(t *testing.T) {
	const shards, perShard = 8, 10000
	r := New(shards)
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				c.Inc(s)
				g.Set(s, int64(i))
				h.Observe(s, int64(i%300))
			}
		}(s)
	}
	// Snapshots race against the writers on purpose: shard merging must be
	// safe mid-flight (values are merely approximate then).
	for i := 0; i < 100; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counter("c_total"); got != shards*perShard {
		t.Errorf("counter = %d, want %d", got, shards*perShard)
	}
	hs := snap.Histograms["h"]
	if hs.Count != shards*perShard {
		t.Errorf("histogram count = %d, want %d", hs.Count, shards*perShard)
	}
	var bucketTotal int64
	for _, b := range hs.Buckets {
		bucketTotal += b
	}
	if bucketTotal != hs.Count {
		t.Errorf("buckets sum to %d, count is %d", bucketTotal, hs.Count)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := New(1)
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", []int64{10, 100})
	c.Add(0, 5)
	g.Set(0, 7)
	h.Observe(0, 3)
	before := r.Snapshot()
	c.Add(0, 10)
	g.Set(0, 2)
	h.Observe(0, 50)
	h.Observe(0, 1000)
	diff := r.Snapshot().Diff(before)
	if diff.Counter("c_total") != 10 {
		t.Errorf("counter diff = %d, want 10", diff.Counter("c_total"))
	}
	if diff.Gauge("g") != 2 {
		t.Errorf("gauge diff keeps the current level, got %d", diff.Gauge("g"))
	}
	hd := diff.Histograms["h"]
	if hd.Count != 2 || hd.Sum != 1050 {
		t.Errorf("histogram diff count=%d sum=%d, want 2/1050", hd.Count, hd.Sum)
	}
	if hd.Buckets[0] != 0 || hd.Buckets[1] != 1 || hd.Buckets[2] != 1 {
		t.Errorf("histogram diff buckets = %v", hd.Buckets)
	}
}

func TestCollectorMergesIntoCounters(t *testing.T) {
	r := New(1)
	r.Counter("a_total").Add(0, 2)
	r.RegisterCollector(func(emit func(string, int64)) {
		emit("a_total", 3) // sums with the registered counter
		emit("b_total", 7) // appears on its own
	})
	snap := r.Snapshot()
	if snap.Counter("a_total") != 5 || snap.Counter("b_total") != 7 {
		t.Errorf("collected a=%d b=%d, want 5/7", snap.Counter("a_total"), snap.Counter("b_total"))
	}
}

// TestGoldenExposition pins the exact JSON and Prometheus output formats
// so downstream scrapers can rely on them.
func TestGoldenExposition(t *testing.T) {
	r := New(2)
	r.Counter("memctrl_row_hits_total").Add(0, 40)
	r.Counter("memctrl_row_hits_total").Add(1, 2)
	r.Counter(`hbm_bank_act_total{bank="3"}`).Add(0, 9)
	r.Gauge("memctrl_wbuf_depth").Set(0, 4)
	h := r.Histogram("memctrl_reorder_distance", []int64{1, 4})
	h.Observe(0, 1)
	h.Observe(0, 3)
	h.Observe(1, 100)
	snap := r.Snapshot()

	var js strings.Builder
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{
  "counters": {
    "hbm_bank_act_total{bank=\"3\"}": 9,
    "memctrl_row_hits_total": 42
  },
  "gauges": {
    "memctrl_wbuf_depth": 4
  },
  "histograms": {
    "memctrl_reorder_distance": {
      "count": 3,
      "sum": 104,
      "bounds": [
        1,
        4
      ],
      "buckets": [
        1,
        1,
        1
      ]
    }
  }
}
`
	if js.String() != wantJSON {
		t.Errorf("JSON exposition:\n%s\nwant:\n%s", js.String(), wantJSON)
	}

	var prom strings.Builder
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	wantProm := `# TYPE hbm_bank_act_total counter
hbm_bank_act_total{bank="3"} 9
# TYPE memctrl_row_hits_total counter
memctrl_row_hits_total 42
# TYPE memctrl_wbuf_depth gauge
memctrl_wbuf_depth 4
# TYPE memctrl_reorder_distance histogram
memctrl_reorder_distance_bucket{le="1"} 1
memctrl_reorder_distance_bucket{le="4"} 2
memctrl_reorder_distance_bucket{le="+Inf"} 3
memctrl_reorder_distance_sum 104
memctrl_reorder_distance_count 3
`
	if prom.String() != wantProm {
		t.Errorf("Prometheus exposition:\n%s\nwant:\n%s", prom.String(), wantProm)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []int64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

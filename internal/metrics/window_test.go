package metrics

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-driven time source: tests advance it in slot
// multiples to pin window rollover exactly.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	// An arbitrary fixed instant aligned to whole seconds so slot
	// boundaries land exactly where the arithmetic says.
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// TestWindowHistogramRollover pins exact slot eviction: a 10s window of
// five 2s slots, driven one slot at a time. Each observation must expire
// exactly one ring-width after it landed, not sooner, not later.
func TestWindowHistogramRollover(t *testing.T) {
	clk := newFakeClock()
	h := newWindowHistogram("w", []int64{10, 100}, WindowOpts{
		Width: 10 * time.Second, Slots: 5, Clock: clk.Now,
	})
	if h.Width() != 10*time.Second {
		t.Fatalf("Width = %v, want 10s", h.Width())
	}

	// One observation per slot for five slots: values 1..5.
	for i := 1; i <= 5; i++ {
		h.Observe(int64(i))
		if got := h.Snapshot(0).Count; got != int64(i) {
			t.Fatalf("after %d slots: count = %d, want %d", i, got, i)
		}
		clk.Advance(2 * time.Second)
	}
	// The clock now sits one slot past the last observation: the first
	// observation's slot is exactly at the window edge and must be gone.
	if got := h.Snapshot(0).Count; got != 4 {
		t.Fatalf("one slot past full ring: count = %d, want 4 (oldest evicted)", got)
	}
	// A new observation lands in the slot the oldest vacated.
	h.Observe(6)
	s := h.Snapshot(0)
	if s.Count != 5 || s.Sum != 2+3+4+5+6 {
		t.Fatalf("after wrap: count=%d sum=%d, want 5/%d", s.Count, s.Sum, 2+3+4+5+6)
	}

	// Narrow query: a 4s window covers exactly the two youngest slots.
	s = h.Snapshot(4 * time.Second)
	if s.Count != 2 || s.Sum != 5+6 {
		t.Fatalf("4s window: count=%d sum=%d, want 2/11", s.Count, s.Sum)
	}
	// A 3s window rounds up to two slots — windows are slot-quantized.
	if got := h.Snapshot(3 * time.Second).Count; got != 2 {
		t.Fatalf("3s window: count = %d, want 2 (rounds up to slot)", got)
	}

	// Jump a full ring ahead: everything expires at once.
	clk.Advance(10 * time.Second)
	if got := h.Snapshot(0).Count; got != 0 {
		t.Fatalf("after full-width gap: count = %d, want 0", got)
	}
	// And stale slots must not resurrect when a new epoch reuses them.
	h.Observe(7)
	s = h.Snapshot(0)
	if s.Count != 1 || s.Sum != 7 {
		t.Fatalf("fresh epoch reusing stale slot: count=%d sum=%d, want 1/7", s.Count, s.Sum)
	}
}

// TestWindowHistogramBuckets checks bucket assignment and fold.
func TestWindowHistogramBuckets(t *testing.T) {
	clk := newFakeClock()
	h := newWindowHistogram("w", []int64{10, 100}, WindowOpts{
		Width: 10 * time.Second, Slots: 5, Clock: clk.Now,
	})
	h.Observe(3)   // bucket 0 (<=10)
	h.Observe(10)  // bucket 0 (le is inclusive)
	h.Observe(50)  // bucket 1 (<=100)
	h.Observe(999) // +Inf overflow
	clk.Advance(2 * time.Second)
	h.Observe(11) // bucket 1, next slot
	s := h.Snapshot(0)
	want := []int64{2, 2, 1}
	for i, c := range want {
		if s.Buckets[i] != c {
			t.Fatalf("buckets = %v, want %v", s.Buckets, want)
		}
	}
	if q := s.Quantile(0.5); q <= 0 {
		t.Fatalf("Quantile(0.5) = %v, want > 0", q)
	}
}

// TestWindowCounterRollover pins the rate counter's eviction the same way.
func TestWindowCounterRollover(t *testing.T) {
	clk := newFakeClock()
	c := newWindowCounter("w", WindowOpts{Width: 10 * time.Second, Slots: 5, Clock: clk.Now})
	for i := 0; i < 5; i++ {
		c.Add(10)
		clk.Advance(2 * time.Second)
	}
	if got := c.Total(0); got != 40 {
		t.Fatalf("total after ring+1 = %d, want 40", got)
	}
	if got := c.Total(4 * time.Second); got != 10 {
		t.Fatalf("4s total = %d, want 10", got)
	}
	// Rate normalizes by the (clamped) window.
	if got := c.Rate(10 * time.Second); got != 4.0 {
		t.Fatalf("rate = %v, want 4.0", got)
	}
	clk.Advance(20 * time.Second)
	if got := c.Total(0); got != 0 {
		t.Fatalf("total after long gap = %d, want 0", got)
	}
}

// TestRegistryWindows checks registry integration: clock inheritance,
// idempotent registration, kind collisions, and snapshot folding into the
// ordinary export maps.
func TestRegistryWindows(t *testing.T) {
	clk := newFakeClock()
	r := New(1)
	r.SetClock(clk.Now)

	h := r.WindowHistogram("win_lat_us", []int64{10, 100}, WindowOpts{Width: 10 * time.Second, Slots: 5})
	c := r.WindowCounter("win_reqs", WindowOpts{Width: 10 * time.Second, Slots: 5})
	if r.WindowHistogram("win_lat_us", nil, WindowOpts{}) != h {
		t.Fatal("re-registration returned a new window histogram")
	}
	if r.WindowCounter("win_reqs", WindowOpts{}) != c {
		t.Fatal("re-registration returned a new window counter")
	}

	h.Observe(42)
	c.Add(3)
	clk.Advance(2 * time.Second)
	c.Inc()

	snap := r.Snapshot()
	hs, ok := snap.Histograms["win_lat_us"]
	if !ok || hs.Count != 1 || hs.Sum != 42 {
		t.Fatalf("snapshot histogram fold = %+v ok=%v, want count 1 sum 42", hs, ok)
	}
	if got := snap.Gauge("win_reqs"); got != 4 {
		t.Fatalf("snapshot counter fold = %d, want 4", got)
	}

	// Expiry flows through the snapshot too: the registry exports what is
	// in-window now, not lifetime totals.
	clk.Advance(20 * time.Second)
	snap = r.Snapshot()
	if snap.Histograms["win_lat_us"].Count != 0 || snap.Gauge("win_reqs") != 0 {
		t.Fatalf("expired windows still visible in snapshot: %+v / %d",
			snap.Histograms["win_lat_us"], snap.Gauge("win_reqs"))
	}

	// Kind collisions panic like every other cross-kind registration.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("registering a window name as a counter did not panic")
			}
		}()
		r.Counter("win_reqs")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("registering a histogram name as a window histogram did not panic")
			}
		}()
		r.Histogram("plain_h", []int64{1})
		r.WindowHistogram("plain_h", []int64{1}, WindowOpts{})
	}()
}

// TestWindowConcurrent races writers against snapshots (run under -race).
func TestWindowConcurrent(t *testing.T) {
	clk := newFakeClock()
	h := newWindowHistogram("w", ExpBuckets(1, 2, 8), WindowOpts{
		Width: time.Second, Slots: 4, Clock: clk.Now,
	})
	c := newWindowCounter("c", WindowOpts{Width: time.Second, Slots: 4, Clock: clk.Now})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(int64(i % 300))
				c.Inc()
				if i%100 == 0 {
					clk.Advance(time.Millisecond)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		_ = h.Snapshot(0)
		_ = c.Total(0)
	}
	wg.Wait()
}

// Package metrics is the unified instrumentation layer of the simulator:
// a lightweight registry of named counters, gauges and histograms with
// snapshot/diff semantics and JSON / Prometheus text exposition.
//
// Naming scheme: `<subsystem>_<metric>[_total]` with an optional
// Prometheus-style label suffix baked into the name, e.g.
//
//	memctrl_row_hits_total          demand row hits (FR-FCFS scheduler)
//	hbm_bank_act_total{bank="3"}    ACT commands observed by bank 3
//	pim_instr_total{op="MAC"}       MAC instructions retired
//
// Counters and histograms are cumulative and monotone; gauges are levels.
// Every metric is sharded: writers (one per memory channel under
// runtime.ParallelKernels) update their own shard through sync/atomic, so
// concurrent kernels never contend or race, and shards are merged when a
// Snapshot is taken. Snapshot may run concurrently with writers; collector
// callbacks (which read foreign state such as device counters) should only
// be relied on when the instrumented components are quiescent.
package metrics

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds the named metrics of one simulated system.
type Registry struct {
	shards int

	mu         sync.RWMutex
	clock      Clock
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	winHists   map[string]*WindowHistogram
	winCounts  map[string]*WindowCounter
	help       map[string]string
	collectors []Collector
}

// New builds a registry with the given number of shards (one per
// concurrent writer, typically one per memory channel).
func New(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	return &Registry{
		shards:    shards,
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		winHists:  make(map[string]*WindowHistogram),
		winCounts: make(map[string]*WindowCounter),
		help:      make(map[string]string),
	}
}

// Shards returns the writer shard count.
func (r *Registry) Shards() int { return r.shards }

// SetClock installs the time source used by windowed metrics built after
// the call (per-metric WindowOpts.Clock still wins). Tests install a fake
// clock here before wiring the serving layer so every window in the
// system rolls over deterministically.
func (r *Registry) SetClock(c Clock) {
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
}

// SetHelp records a # HELP line for a metric base name (label suffixes
// stripped, so help is set once per family regardless of which series
// registers it).
func (r *Registry) SetHelp(name, help string) {
	base := name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
	}
	r.mu.Lock()
	r.help[base] = help
	r.mu.Unlock()
}

// Counter returns the counter registered under name, creating it on first
// use. Registering a name as two different metric kinds panics: metric
// names are a global contract.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkKind(name, "counter")
	c := &Counter{name: name, v: make([]atomic.Int64, r.shards)}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkKind(name, "gauge")
	g := &Gauge{name: name, v: make([]atomic.Int64, r.shards)}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket upper bounds on first use (an implicit +Inf
// bucket is appended).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkKind(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		sh:     make([]histShard, r.shards),
	}
	for i := range h.sh {
		h.sh[i].buckets = make([]atomic.Int64, len(bounds)+1)
	}
	r.hists[name] = h
	return h
}

// WindowHistogram returns the sliding-window histogram registered under
// name, creating it on first use with the given ascending bucket bounds
// and window sizing. Windowed histograms fold into Snapshot.Histograms at
// their full width, so the JSON and Prometheus paths export them without
// extra plumbing.
func (r *Registry) WindowHistogram(name string, bounds []int64, o WindowOpts) *WindowHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.winHists[name]; ok {
		return h
	}
	r.checkKind(name, "window-histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: window histogram %q bounds not ascending", name))
		}
	}
	o.applyDefaults(r.clock)
	h := newWindowHistogram(name, bounds, o)
	r.winHists[name] = h
	return h
}

// WindowCounter returns the sliding-window rate counter registered under
// name, creating it on first use. Windowed counters fold into
// Snapshot.Gauges at their full width (the level "events in the last
// Width"), so both export paths carry them automatically.
func (r *Registry) WindowCounter(name string, o WindowOpts) *WindowCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.winCounts[name]; ok {
		return c
	}
	r.checkKind(name, "window-counter")
	o.applyDefaults(r.clock)
	c := newWindowCounter(name, o)
	r.winCounts[name] = c
	return c
}

// checkKind panics when name is already registered as another kind.
// Callers hold r.mu.
func (r *Registry) checkKind(name, want string) {
	if _, ok := r.counters[name]; ok && want != "counter" {
		panic(fmt.Sprintf("metrics: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && want != "histogram" {
		panic(fmt.Sprintf("metrics: %q already registered as a histogram", name))
	}
	if _, ok := r.winHists[name]; ok && want != "window-histogram" {
		panic(fmt.Sprintf("metrics: %q already registered as a window histogram", name))
	}
	if _, ok := r.winCounts[name]; ok && want != "window-counter" {
		panic(fmt.Sprintf("metrics: %q already registered as a window counter", name))
	}
}

// Collector contributes cumulative values at snapshot time, bridging
// components that keep their own counters (the hbm device model, the PIM
// executors) into the registry without double bookkeeping on the hot path.
// Emitted values are merged into the snapshot's counter map (summing on
// name collisions). Collectors run on the snapshotting goroutine; they
// must only be registered for state that is quiescent when Snapshot is
// called.
type Collector func(emit func(name string, value int64))

// RegisterCollector adds a snapshot-time collector.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Snapshot captures every metric (shards merged) plus collector output.
// Windowed metrics are folded in at their full width: histograms into
// Histograms, counters into Gauges (a window total is a level, not a
// monotone count).
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	winHists := make([]*WindowHistogram, 0, len(r.winHists))
	for _, h := range r.winHists {
		winHists = append(winHists, h)
	}
	winCounts := make([]*WindowCounter, 0, len(r.winCounts))
	for _, c := range r.winCounts {
		winCounts = append(winCounts, c)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.RUnlock()

	s := &Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(winCounts)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)+len(winHists)),
		Help:       help,
	}
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.snapshot()
	}
	for _, h := range winHists {
		s.Histograms[h.name] = h.Snapshot(0)
	}
	for _, c := range winCounts {
		s.Gauges[c.name] = c.Total(0)
	}
	for _, col := range collectors {
		col(func(name string, v int64) { s.Counters[name] += v })
	}
	return s
}

// shardIndex bounds-checks a writer shard.
func shardIndex(n, shard int) int {
	if shard < 0 || shard >= n {
		panic(fmt.Sprintf("metrics: shard %d out of range (%d shards)", shard, n))
	}
	return shard
}

// Counter is a monotone cumulative count.
type Counter struct {
	name string
	v    []atomic.Int64
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one to the shard's count.
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Add adds d to the shard's count.
func (c *Counter) Add(shard int, d int64) {
	c.v[shardIndex(len(c.v), shard)].Add(d)
}

// Value returns the merged count across shards.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.v {
		t += c.v[i].Load()
	}
	return t
}

// ShardValue returns one shard's count.
func (c *Counter) ShardValue(shard int) int64 {
	return c.v[shardIndex(len(c.v), shard)].Load()
}

// Gauge is an instantaneous level (queue depth, outstanding debt). The
// merged value is the sum over shards, which for per-channel levels reads
// as the system-wide level.
type Gauge struct {
	name string
	v    []atomic.Int64
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores the shard's level.
func (g *Gauge) Set(shard int, v int64) {
	g.v[shardIndex(len(g.v), shard)].Store(v)
}

// Add adjusts the shard's level by d.
func (g *Gauge) Add(shard int, d int64) {
	g.v[shardIndex(len(g.v), shard)].Add(d)
}

// Value returns the summed level across shards.
func (g *Gauge) Value() int64 {
	var t int64
	for i := range g.v {
		t += g.v[i].Load()
	}
	return t
}

// ShardValue returns one shard's level.
func (g *Gauge) ShardValue(shard int) int64 {
	return g.v[shardIndex(len(g.v), shard)].Load()
}

// Histogram is a fixed-bucket distribution (latencies in cycles,
// occupancies in entries).
type Histogram struct {
	name   string
	bounds []int64 // ascending upper bounds; bucket i counts v <= bounds[i]
	sh     []histShard
}

type histShard struct {
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value in the shard's distribution.
func (h *Histogram) Observe(shard int, v int64) {
	s := &h.sh[shardIndex(len(h.sh), shard)]
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	s.buckets[i].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// snapshot merges the shards.
func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds:  append([]int64(nil), h.bounds...),
		Buckets: make([]int64, len(h.bounds)+1),
	}
	for i := range h.sh {
		s := &h.sh[i]
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
		for b := range out.Buckets {
			out.Buckets[b] += s.buckets[b].Load()
		}
	}
	return out
}

// ExpBuckets returns n exponentially growing bucket bounds: start,
// start*factor, start*factor^2, ...
func ExpBuckets(start, factor int64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	if factor < 2 {
		factor = 2
	}
	out := make([]int64, 0, n)
	for v := start; len(out) < n; v *= factor {
		out = append(out, v)
	}
	return out
}

package metrics

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestLabels(t *testing.T) {
	cases := []struct {
		name string
		kv   []string
		want string
	}{
		{"m", nil, "m"},
		{"m", []string{"tenant", "gold"}, `m{tenant="gold"}`},
		{"m", []string{"a", "1", "b", "2"}, `m{a="1",b="2"}`},
		// Escaping: quote, backslash, newline in values.
		{"m", []string{"t", `say "hi"`}, `m{t="say \"hi\""}`},
		{"m", []string{"t", `a\b`}, `m{t="a\\b"}`},
		{"m", []string{"t", "a\nb"}, `m{t="a\nb"}`},
		// Label-name sanitization: hostile key can't break the block.
		{"m", []string{`bad-key"`, "v"}, `m{bad_key_="v"}`},
		{"m", []string{"9lives", "v"}, `m{_lives="v"}`},
		{"m", []string{"", "v"}, `m{_="v"}`},
		// Odd trailing key dropped.
		{"m", []string{"a", "1", "orphan"}, `m{a="1"}`},
	}
	for _, c := range cases {
		if got := Labels(c.name, c.kv...); got != c.want {
			t.Errorf("Labels(%q, %v) = %q, want %q", c.name, c.kv, got, c.want)
		}
	}
}

// promSample is one parsed exposition line.
type promSample struct {
	base   string
	labels map[string]string
	value  int64
}

// parsePromStrict parses Prometheus text exposition with a deliberately
// unforgiving mini-parser: any malformed line (unescaped quote, label
// block after a suffix, bad HELP/TYPE ordering) fails the test. It
// returns samples plus the HELP/TYPE text per base name.
func parsePromStrict(t *testing.T, text string) (samples []promSample, help, typ map[string]string) {
	t.Helper()
	help, typ = map[string]string{}, map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, txt, _ := strings.Cut(rest, " ")
			if _, dup := help[name]; dup {
				t.Fatalf("duplicate HELP for %s", name)
			}
			help[name] = txt
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := typ[fields[0]]; dup {
				t.Fatalf("duplicate TYPE for %s", fields[0])
			}
			typ[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		samples = append(samples, parseSampleStrict(t, line))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, help, typ
}

func parseSampleStrict(t *testing.T, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		t.Fatalf("no name terminator in %q", line)
	}
	s.base = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("malformed label in %q", line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			// Unescape the value up to the closing unescaped quote.
			var val strings.Builder
			j := 0
			for {
				if j >= len(rest) {
					t.Fatalf("unterminated label value in %q", line)
				}
				c := rest[j]
				if c == '"' {
					break
				}
				if c == '\\' {
					if j+1 >= len(rest) {
						t.Fatalf("dangling escape in %q", line)
					}
					switch rest[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("bad escape \\%c in %q", rest[j+1], line)
					}
					j += 2
					continue
				}
				val.WriteByte(c)
				j++
			}
			if _, dup := s.labels[key]; dup {
				t.Fatalf("duplicate label %q in %q", key, line)
			}
			s.labels[key] = val.String()
			rest = rest[j+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "} ") {
				rest = rest[2:]
				break
			}
			t.Fatalf("malformed label block tail %q in %q", rest, line)
		}
	} else {
		rest = rest[1:] // skip the space
	}
	v, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		t.Fatalf("bad value %q in %q: %v", rest, line, err)
	}
	s.value = v
	return s
}

// TestPrometheusRoundTrip builds a registry with hostile label values
// (quotes, backslashes, newlines), writes the exposition, re-parses it
// with the strict parser, and checks the original values come back
// byte-exact — the round trip the old writer failed.
func TestPrometheusRoundTrip(t *testing.T) {
	hostile := map[string]string{
		"plain":     "gold",
		"quoted":    `he said "now"`,
		"backslash": `c:\tmp`,
		"newline":   "line1\nline2",
	}
	r := New(1)
	r.SetHelp("serve_shed_total", "requests shed, by tenant")
	r.SetHelp("serve_wait_us", "queue wait in microseconds\nsecond line")
	for k, v := range hostile {
		r.Counter(Labels("serve_shed_total", "tenant", v, "kind", k)).Add(0, 7)
	}
	h := r.Histogram(Labels("serve_wait_us", "tenant", `tricky"t`), []int64{10, 100})
	h.Observe(0, 5)
	h.Observe(0, 50)
	h.Observe(0, 500)
	r.Gauge(Labels("serve_depth", "model", "m\n1")).Set(0, 3)

	var out strings.Builder
	if err := r.Snapshot().WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	samples, help, typ := parsePromStrict(t, out.String())

	// HELP text survives (with its newline escaped on the wire).
	if help["serve_shed_total"] != "requests shed, by tenant" {
		t.Errorf("HELP serve_shed_total = %q", help["serve_shed_total"])
	}
	if help["serve_wait_us"] != `queue wait in microseconds\nsecond line` {
		t.Errorf("HELP serve_wait_us = %q", help["serve_wait_us"])
	}
	for base, kind := range map[string]string{
		"serve_shed_total": "counter",
		"serve_wait_us":    "histogram",
		"serve_depth":      "gauge",
	} {
		if typ[base] != kind {
			t.Errorf("TYPE %s = %q, want %q", base, typ[base], kind)
		}
	}

	// Every hostile value round-trips exactly.
	got := map[string]string{}
	for _, s := range samples {
		if s.base == "serve_shed_total" {
			got[s.labels["kind"]] = s.labels["tenant"]
			if s.value != 7 {
				t.Errorf("shed sample value = %d, want 7", s.value)
			}
		}
	}
	for k, v := range hostile {
		if got[k] != v {
			t.Errorf("round-trip %s: got %q, want %q", k, got[k], v)
		}
	}

	// Histogram buckets: le spliced INTO the label block, cumulative
	// counts, sum/count carry the labels too.
	var les []string
	var lastCum int64 = -1
	seen := map[string]int64{}
	for _, s := range samples {
		switch s.base {
		case "serve_wait_us_bucket":
			if s.labels["tenant"] != `tricky"t` {
				t.Errorf("bucket lost tenant label: %v", s.labels)
			}
			les = append(les, s.labels["le"])
			if s.value < lastCum {
				t.Errorf("bucket counts not cumulative: %v then %d", lastCum, s.value)
			}
			lastCum = s.value
		case "serve_wait_us_sum", "serve_wait_us_count":
			if s.labels["tenant"] != `tricky"t` {
				t.Errorf("%s lost tenant label: %v", s.base, s.labels)
			}
			seen[s.base] = s.value
		}
	}
	if want := []string{"10", "100", "+Inf"}; fmt.Sprint(les) != fmt.Sprint(want) {
		t.Errorf("le sequence = %v, want %v", les, want)
	}
	if seen["serve_wait_us_count"] != 3 || seen["serve_wait_us_sum"] != 555 {
		t.Errorf("sum/count = %v, want count 3 sum 555", seen)
	}
	if lastCum != 3 {
		t.Errorf("+Inf bucket = %d, want 3", lastCum)
	}
}

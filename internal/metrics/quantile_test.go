package metrics

import (
	"math"
	"testing"
)

func observeAll(h *Histogram, vs []int64) {
	for _, v := range vs {
		h.Observe(0, v)
	}
}

func TestQuantileUniform(t *testing.T) {
	// 1..1000 uniformly, buckets every 50: quantiles must land within one
	// bucket width of the exact order statistic.
	r := New(1)
	var bounds []int64
	for b := int64(50); b <= 1000; b += 50 {
		bounds = append(bounds, b)
	}
	h := r.Histogram("u", bounds)
	for v := int64(1); v <= 1000; v++ {
		h.Observe(0, v)
	}
	s := r.Snapshot().Histograms["u"]
	for _, tc := range []struct{ p, want float64 }{
		{0.50, 500}, {0.95, 950}, {0.99, 990}, {1.0, 1000},
	} {
		got := s.Quantile(tc.p)
		if math.Abs(got-tc.want) > 50 {
			t.Errorf("Quantile(%.2f) = %.1f, want %.1f +- 50", tc.p, got, tc.want)
		}
	}
}

func TestQuantilePointMass(t *testing.T) {
	// 100 identical observations of 5 in a (0,10] bucket: every quantile
	// interpolates to the bucket's midpoint region, never outside (0,10].
	r := New(1)
	h := r.Histogram("pm", []int64{10, 100})
	observeAll(h, make([]int64, 0))
	for i := 0; i < 100; i++ {
		h.Observe(0, 5)
	}
	s := r.Snapshot().Histograms["pm"]
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("p50 of a uniform-in-bucket point mass = %v, want 5", got)
	}
	if got := s.Quantile(1.0); got != 10 {
		t.Errorf("p100 = %v, want bucket upper edge 10", got)
	}
	if got := s.Quantile(0.0001); got <= 0 || got > 10 {
		t.Errorf("tiny quantile %v escaped the bucket", got)
	}
}

func TestQuantileBimodal(t *testing.T) {
	// 90 fast observations near 10, 10 slow ones near 1000: p50 must sit
	// in the fast mode, p95/p99 in the slow mode — the serving tail-latency
	// pattern this helper exists for.
	r := New(1)
	h := r.Histogram("bi", ExpBuckets(1, 2, 12)) // 1,2,4,...,2048
	for i := 0; i < 90; i++ {
		h.Observe(0, 10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0, 1000)
	}
	s := r.Snapshot().Histograms["bi"]
	if p50 := s.Quantile(0.50); p50 < 8 || p50 > 16 {
		t.Errorf("p50 = %v, want within the fast mode's (8,16] bucket", p50)
	}
	if p95 := s.Quantile(0.95); p95 < 512 || p95 > 1024 {
		t.Errorf("p95 = %v, want within the slow mode's (512,1024] bucket", p95)
	}
	if p99 := s.Quantile(0.99); p99 < 512 || p99 > 1024 {
		t.Errorf("p99 = %v, want within the slow mode's (512,1024] bucket", p99)
	}
}

func TestQuantileEdges(t *testing.T) {
	r := New(1)
	h := r.Histogram("e", []int64{10})
	s := r.Snapshot().Histograms["e"]
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// Overflow-only data clamps to the highest finite bound.
	h.Observe(0, 50)
	s = r.Snapshot().Histograms["e"]
	if got := s.Quantile(0.99); got != 10 {
		t.Errorf("overflow quantile = %v, want clamp to 10", got)
	}
	// p > 1 clamps to 1.
	if got := s.Quantile(2); got != 10 {
		t.Errorf("Quantile(2) = %v, want 10", got)
	}
}

// TestQuantileDegenerateInputs pins every pathological p and histogram
// shape to a defined answer: no NaN/Inf escapes, no panic, no silent
// max-bound masquerading as a tail estimate.
func TestQuantileDegenerateInputs(t *testing.T) {
	r := New(1)
	h := r.Histogram("d", []int64{10, 100})
	for i := 0; i < 10; i++ {
		h.Observe(0, 5) // all mass in the (0,10] bucket
	}
	s := r.Snapshot().Histograms["d"]
	empty := HistogramSnapshot{}
	noBounds := HistogramSnapshot{Count: 3, Buckets: []int64{3}}

	for _, tc := range []struct {
		name string
		h    HistogramSnapshot
		p    float64
		want func(got float64) bool
		desc string
	}{
		{"NaN p", s, math.NaN(), func(g float64) bool { return g == 0 }, "0"},
		{"+Inf p", s, math.Inf(1), func(g float64) bool { return g == 10 }, "clamp to p=1 (10)"},
		{"-Inf p", s, math.Inf(-1), func(g float64) bool { return g > 0 && g <= 10 }, "below-first-rank, inside (0,10]"},
		{"negative p", s, -0.5, func(g float64) bool { return g > 0 && g <= 10 }, "below-first-rank, inside (0,10]"},
		{"zero p", s, 0, func(g float64) bool { return g > 0 && g <= 10 }, "below-first-rank, inside (0,10]"},
		{"p exactly 1", s, 1, func(g float64) bool { return g == 10 }, "bucket upper edge 10"},
		{"empty histogram", empty, 0.5, func(g float64) bool { return g == 0 }, "0"},
		{"empty histogram NaN", empty, math.NaN(), func(g float64) bool { return g == 0 }, "0"},
		{"no bounds", noBounds, 0.5, func(g float64) bool { return g == 0 }, "0"},
	} {
		got := tc.h.Quantile(tc.p)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: Quantile(%v) = %v, must be finite", tc.name, tc.p, got)
			continue
		}
		if !tc.want(got) {
			t.Errorf("%s: Quantile(%v) = %v, want %s", tc.name, tc.p, got, tc.desc)
		}
	}
}

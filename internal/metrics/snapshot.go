package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Snapshot is a merged point-in-time copy of every metric in a registry.
// Counters and histograms are cumulative, so two snapshots bracket an
// interval: Diff gives the activity between them (the per-kernel breakdown
// workflow of cmd/pimbench).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`

	// Help maps metric base names to their # HELP text for the Prometheus
	// writer. Excluded from JSON: it is static documentation, not data.
	Help map[string]string `json:"-"`
}

// HistogramSnapshot is one histogram's merged state. Buckets are
// non-cumulative; Buckets[i] counts observations <= Bounds[i] (and greater
// than Bounds[i-1]); the final bucket is the +Inf overflow.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
}

// Quantile estimates the p-quantile (0 < p <= 1) of the recorded
// distribution by linear interpolation inside the owning bucket,
// assuming non-negative observations (the registry's histograms record
// cycles, microseconds and occupancies). The serving layer and the load
// generator both report p50/p95/p99 through this helper so the bucket
// math lives in exactly one place.
//
// The estimate for a quantile that lands in the +Inf overflow bucket is
// clamped to the highest finite bound (an underestimate — widen the
// buckets if that matters). An empty histogram reports 0, as does a NaN
// p — NaN would sail through every rank comparison and silently return
// the highest bound, masquerading as a real tail estimate. p <= 0 (−Inf
// included) is taken below the first observation's rank; p >= 1 (+Inf
// included) clamps to the maximum.
func (h HistogramSnapshot) Quantile(p float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 || math.IsNaN(p) {
		return 0
	}
	if p <= 0 {
		p = 1 / float64(2*h.Count) // below the first observation's rank
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.Count)
	var cum float64
	lo := 0.0
	for i, c := range h.Buckets {
		if i >= len(h.Bounds) {
			// Overflow bucket: no finite upper edge to interpolate to.
			return lo
		}
		hi := float64(h.Bounds[i])
		if c > 0 && cum+float64(c) >= rank {
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
		lo = hi
	}
	return lo
}

// Counter returns a counter's value, or zero when absent — absent and
// never-incremented are indistinguishable by design.
func (s *Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's value, or zero when absent.
func (s *Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Diff returns the activity between prev and s: counters and histograms
// are subtracted, gauges keep their current (instantaneous) value.
// Metrics absent from prev diff against zero.
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
		Help:       s.Help,
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p, ok := prev.Histograms[name]
		if !ok || len(p.Buckets) != len(h.Buckets) {
			out.Histograms[name] = h
			continue
		}
		d := HistogramSnapshot{
			Count:   h.Count - p.Count,
			Sum:     h.Sum - p.Sum,
			Bounds:  append([]int64(nil), h.Bounds...),
			Buckets: make([]int64, len(h.Buckets)),
		}
		for i := range h.Buckets {
			d.Buckets[i] = h.Buckets[i] - p.Buckets[i]
		}
		out.Histograms[name] = d
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with sorted keys.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// splitName separates a metric name into its base and the label suffix
// baked into it: "a{k=\"v\"}" → ("a", `k="v"`); a plain name has an empty
// label part.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	labels = strings.TrimSuffix(name[i+1:], "}")
	return name[:i], labels
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format. Label suffixes baked into metric names (`name{k="v"}`) are
// carried onto every emitted line; for histograms the `le` label is
// spliced into the existing label block (`base_bucket{k="v",le="10"}`),
// never appended after it. HELP and TYPE comments are emitted once per
// base name (HELP only when SetHelp registered text). Label values are
// expected to be escaped at registration time — build names with Labels
// to get `\\`, `\"` and newline escaping per the exposition format.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{}
	emitHeader := func(name, kind string) error {
		base, _ := splitName(name)
		if typed[base] {
			return nil
		}
		typed[base] = true
		if help, ok := s.Help[base]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, escapeHelp(help)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	// series emits one sample line for a (possibly labeled) name with an
	// optional suffix on the base and extra label, e.g. suffix="_bucket",
	// extra=`le="10"`.
	series := func(name, suffix, extra string, v int64) error {
		base, labels := splitName(name)
		switch {
		case labels == "" && extra == "":
			_, err := fmt.Fprintf(w, "%s%s %d\n", base, suffix, v)
			return err
		case labels == "":
			_, err := fmt.Fprintf(w, "%s%s{%s} %d\n", base, suffix, extra, v)
			return err
		case extra == "":
			_, err := fmt.Fprintf(w, "%s%s{%s} %d\n", base, suffix, labels, v)
			return err
		default:
			_, err := fmt.Fprintf(w, "%s%s{%s,%s} %d\n", base, suffix, labels, extra, v)
			return err
		}
	}

	for _, name := range sortedKeys(s.Counters) {
		if err := emitHeader(name, "counter"); err != nil {
			return err
		}
		if err := series(name, "", "", s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := emitHeader(name, "gauge"); err != nil {
			return err
		}
		if err := series(name, "", "", s.Gauges[name]); err != nil {
			return err
		}
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		if err := emitHeader(name, "histogram"); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			if err := series(name, "_bucket", fmt.Sprintf("le=%q", fmt.Sprint(bound)), cum); err != nil {
				return err
			}
		}
		if err := series(name, "_bucket", `le="+Inf"`, h.Count); err != nil {
			return err
		}
		if err := series(name, "_sum", "", h.Sum); err != nil {
			return err
		}
		if err := series(name, "_count", "", h.Count); err != nil {
			return err
		}
	}
	return nil
}

// escapeHelp escapes a HELP text per the exposition format (backslash and
// newline only; quotes are legal in help text).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package nn

import (
	"fmt"

	"pimsim/internal/models"
	"pimsim/internal/tensor"
)

// Op is one scheduled graph operation with its placement.
type Op struct {
	Name  string
	Kind  string // tensor.OpKind string form
	Where string // "pim" or "host"
}

// Plan is a compiled model: the single-timestep tensor graph built once,
// topologically scheduled, with every op assigned a device. The same
// Plan backs both the device executor (Load → StepSlots) and the
// pure-host oracle (HostOracle) — one graph, two interpreters, which is
// what makes bit-exact verification meaningful.
type Plan struct {
	Cfg models.Config
	W   *Weights

	// Schedule is the topological op order with placement: MatVec nodes
	// (the memory-bound GEMVs) on PIM, eltwise/activation gate math on
	// the host — the paper's Fig. 6 split applied to the whole model.
	Schedule []Op
	PIMOps   int
	HostOps  int

	// StateBytesPerSlot is the FP16 footprint of one sequence's
	// recurrent state (h and c for every layer).
	StateBytesPerSlot int

	graph  *tensor.Graph
	x      *tensor.Node   // frame input
	hIn    []*tensor.Node // per-layer state inputs
	cIn    []*tensor.Node
	hOut   []*tensor.Node // per-layer state outputs
	cOut   []*tensor.Node
	logits *tensor.Node
}

// Compile builds w's single-timestep graph: one BuildLSTMStep per hidden
// layer chained input-to-output, then the output projection MatVec. The
// returned Plan is immutable and safe to share across shards.
func Compile(w *Weights) (*Plan, error) {
	if w == nil || len(w.Layers) == 0 {
		return nil, fmt.Errorf("nn: compile without weights")
	}
	p := &Plan{Cfg: w.Cfg, W: w, graph: &tensor.Graph{}}
	g := p.graph
	p.x = g.Input("x")
	cur := p.x
	state := 0
	for l, lw := range w.Layers {
		h := g.Input(fmt.Sprintf("h%d", l))
		c := g.Input(fmt.Sprintf("c%d", l))
		p.hIn = append(p.hIn, h)
		p.cIn = append(p.cIn, c)
		hOut, cOut, err := tensor.BuildLSTMStep(g, fmt.Sprintf("l%d", l),
			&tensor.Tensor{Shape: []int{4 * lw.H, lw.X}, Data: lw.Wx},
			&tensor.Tensor{Shape: []int{4 * lw.H, lw.H}, Data: lw.Wh},
			&tensor.Tensor{Shape: []int{4 * lw.H}, Data: lw.B},
			cur, h, c)
		if err != nil {
			return nil, fmt.Errorf("nn: compile %s layer %d: %w", w.Cfg.Name, l, err)
		}
		p.hOut = append(p.hOut, hOut)
		p.cOut = append(p.cOut, cOut)
		cur = hOut
		state += 2 * lw.H
	}
	p.logits = g.MatVec("out",
		&tensor.Tensor{Shape: []int{w.Cfg.Output, w.lastHidden()}, Data: w.WOut}, cur)
	p.StateBytesPerSlot = 2 * state

	p.schedule()
	return p, nil
}

// schedule computes the topological order (DFS postorder from every
// output — logits plus both state vectors per layer, so nothing the
// executor must produce is missed) and the host/PIM placement split.
func (p *Plan) schedule() {
	outs := []*tensor.Node{p.logits}
	for l := range p.hOut {
		outs = append(outs, p.hOut[l], p.cOut[l])
	}
	seen := map[*tensor.Node]bool{}
	var visit func(n *tensor.Node)
	visit = func(n *tensor.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Inputs {
			visit(in)
		}
		where := "host"
		if n.Kind == tensor.OpMatVec {
			where = "pim"
			p.PIMOps++
		} else if n.Kind != tensor.OpInput && n.Kind != tensor.OpConst {
			p.HostOps++
		}
		p.Schedule = append(p.Schedule, Op{Name: n.Name, Kind: n.Kind.String(), Where: where})
	}
	for _, n := range outs {
		visit(n)
	}
}

// Layers returns the number of LSTM layers.
func (p *Plan) Layers() int { return len(p.W.Layers) }

// WeightBytes is the FP16 parameter footprint (per replica; the device
// layout replicates it into every pseudo channel).
func (p *Plan) WeightBytes() int64 { return p.W.WeightBytes() }

package nn

import (
	"fmt"

	"pimsim/internal/fp16"
	"pimsim/internal/tensor"
)

// HostOracle runs a full sequence through the compiled graph on a pure
// host session, with MatVec nodes accumulating in the device's exact
// order (grf = blas.GRFDepth of the target runtime). It returns the
// logits of every step. Because it interprets the same graph the device
// executor was compiled from, its outputs are the bit-exact reference
// for StepSlots — the correctness contract pimload and the smoke tests
// verify end to end.
func (p *Plan) HostOracle(frames []fp16.Vector, grf int) ([]fp16.Vector, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("nn: oracle needs at least one frame")
	}
	if grf <= 0 {
		return nil, fmt.Errorf("nn: oracle GRF depth %d", grf)
	}
	L := p.Layers()
	h := make([]fp16.Vector, L)
	c := make([]fp16.Vector, L)
	for l, lw := range p.W.Layers {
		h[l] = fp16.NewVector(lw.H)
		c[l] = fp16.NewVector(lw.H)
	}

	outs := []*tensor.Node{p.logits}
	for l := 0; l < L; l++ {
		outs = append(outs, p.hOut[l], p.cOut[l])
	}

	sess := tensor.NewHostSession()
	sess.MatVecGRF = grf
	var logits []fp16.Vector
	for t, x := range frames {
		if err := checkFrame(p.Cfg, t, x); err != nil {
			return nil, err
		}
		feeds := map[string]*tensor.Tensor{
			"x": {Shape: []int{len(x)}, Data: x},
		}
		for l := 0; l < L; l++ {
			feeds[fmt.Sprintf("h%d", l)] = &tensor.Tensor{Shape: []int{len(h[l])}, Data: h[l]}
			feeds[fmt.Sprintf("c%d", l)] = &tensor.Tensor{Shape: []int{len(c[l])}, Data: c[l]}
		}
		res, err := sess.Run(feeds, outs...)
		if err != nil {
			return nil, fmt.Errorf("nn: oracle step %d: %w", t, err)
		}
		logits = append(logits, res[0].Data)
		for l := 0; l < L; l++ {
			h[l] = res[1+2*l].Data
			c[l] = res[2+2*l].Data
		}
	}
	return logits, nil
}

package nn

import (
	"math/rand"
	"testing"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/models"
	"pimsim/internal/runtime"
)

func newNNRT(t *testing.T, channels int) *runtime.Runtime {
	t.Helper()
	cfg := hbm.PIMHBMConfig(1200)
	cfg.PseudoChannels = channels
	cfg.Functional = true
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func tinyConfig() models.Config {
	return models.Config{Name: "tiny", Input: 16, Hidden: []int{32, 16}, Output: 8, Seed: 42}
}

func genFrames(rng *rand.Rand, n, dim int) []fp16.Vector {
	frames := make([]fp16.Vector, n)
	for t := range frames {
		x := fp16.NewVector(dim)
		for i := range x {
			x[i] = fp16.FromFloat32(float32(rng.NormFloat64() * 0.5))
		}
		frames[t] = x
	}
	return frames
}

func TestCompileSchedule(t *testing.T) {
	w, err := GenWeights(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	// Two GEMVs per LSTM layer plus the output projection, all on PIM.
	if want := 2*p.Layers() + 1; p.PIMOps != want {
		t.Errorf("PIMOps = %d, want %d", p.PIMOps, want)
	}
	if p.HostOps == 0 {
		t.Error("no host ops scheduled (gate math must be host-placed)")
	}
	pim := 0
	for _, op := range p.Schedule {
		if op.Where == "pim" {
			pim++
			if op.Kind != "MatVec" {
				t.Errorf("op %s (%s) placed on PIM", op.Name, op.Kind)
			}
		}
	}
	if pim != p.PIMOps {
		t.Errorf("schedule has %d PIM ops, counter says %d", pim, p.PIMOps)
	}
	if p.StateBytesPerSlot != 2*2*(32+16) {
		t.Errorf("StateBytesPerSlot = %d", p.StateBytesPerSlot)
	}
}

// TestStepSlotsContinuousMatchesOracle is the subsystem's core contract:
// sequences that join and leave a running step loop at different times,
// on different slots (including a slot reused after its first sequence
// retires), each produce logits bit-identical to the pure-host oracle
// running that sequence alone.
func TestStepSlotsContinuousMatchesOracle(t *testing.T) {
	rt := newNNRT(t, 4)
	grf := blas.GRFDepth(rt)
	w, err := GenWeights(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Load(rt, p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Unload(rt)

	rng := rand.New(rand.NewSource(99))
	lengths := []int{6, 3, 4, 3}
	joinStep := []int{0, 0, 2, 3} // seq 3 reuses seq 1's slot after it retires
	slotOf := []int{0, 1, 2, 1}
	seqs := make([][]fp16.Vector, len(lengths))
	want := make([][]fp16.Vector, len(lengths))
	for i, n := range lengths {
		seqs[i] = genFrames(rng, n, p.Cfg.Input)
		want[i], err = p.HostOracle(seqs[i], grf)
		if err != nil {
			t.Fatal(err)
		}
	}

	pos := make([]int, len(lengths)) // next frame per sequence
	active := make([]int, r.Slots()) // slot -> sequence, -1 idle
	for s := range active {
		active[s] = -1
	}
	for step := 0; step < 8; step++ {
		for i := range lengths {
			if joinStep[i] == step {
				if err := r.ResetSlot(slotOf[i]); err != nil {
					t.Fatal(err)
				}
				active[slotOf[i]] = i
			}
		}
		xs := make([]fp16.Vector, r.Slots())
		occupied := 0
		for s, seq := range active {
			if seq < 0 {
				continue
			}
			xs[s] = seqs[seq][pos[seq]]
			occupied++
		}
		if occupied == 0 {
			continue
		}
		logits, ks, err := r.StepSlots(rt, xs)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if ks.Cycles <= 0 {
			t.Fatalf("step %d accounted no cycles", step)
		}
		for s, seq := range active {
			if seq < 0 {
				continue
			}
			ref := want[seq][pos[seq]]
			for j := range ref {
				if logits[s][j] != ref[j] {
					t.Fatalf("step %d seq %d slot %d logit %d: %v != oracle %v",
						step, seq, s, j, logits[s][j], ref[j])
				}
			}
			pos[seq]++
			if pos[seq] == lengths[seq] {
				active[s] = -1
			}
		}
	}
	for i, n := range lengths {
		if pos[i] != n {
			t.Errorf("sequence %d served %d of %d steps", i, pos[i], n)
		}
	}
}

// TestExportImportMigration: exporting a mid-sequence state and importing
// it into a different slot must continue the sequence bit-exactly — the
// mechanism the serving layer uses to migrate sequences off a faulted
// shard.
func TestExportImportMigration(t *testing.T) {
	rt := newNNRT(t, 4)
	grf := blas.GRFDepth(rt)
	w, err := GenWeights(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Load(rt, p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Unload(rt)

	rng := rand.New(rand.NewSource(5))
	const T = 6
	frames := genFrames(rng, T, p.Cfg.Input)
	want, err := p.HostOracle(frames, grf)
	if err != nil {
		t.Fatal(err)
	}

	step := func(slot int, x fp16.Vector) fp16.Vector {
		xs := make([]fp16.Vector, r.Slots())
		xs[slot] = x
		logits, _, err := r.StepSlots(rt, xs)
		if err != nil {
			t.Fatal(err)
		}
		return logits[slot]
	}

	checkStep := func(tIdx int, got fp16.Vector) {
		for j := range want[tIdx] {
			if got[j] != want[tIdx][j] {
				t.Fatalf("step %d logit %d: %v != oracle %v", tIdx, j, got[j], want[tIdx][j])
			}
		}
	}

	if err := r.ResetSlot(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		checkStep(i, step(0, frames[i]))
	}
	st, err := r.ExportState(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ResetSlot(0); err != nil { // old slot is gone
		t.Fatal(err)
	}
	if err := r.ResetSlot(3); err != nil {
		t.Fatal(err)
	}
	if err := r.ImportState(3, st); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < T; i++ {
		checkStep(i, step(3, frames[i]))
	}

	// Dimension checks on import.
	if err := r.ImportState(3, &SlotState{}); err == nil {
		t.Error("layer-count mismatch accepted")
	}
	if err := r.ImportState(9, st); err == nil {
		t.Error("out-of-range slot accepted")
	}
}

func TestLoadUnloadRowAccounting(t *testing.T) {
	rt := newNNRT(t, 2)
	liveBefore := rt.Drv.PIMRowsLive()
	freeBefore := rt.Drv.PIMRowsFree()
	w, err := GenWeights(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Load(rt, p)
	if err != nil {
		t.Fatal(err)
	}
	wantLive := r.WeightRows() + r.StateRows()
	if got := rt.Drv.PIMRowsLive() - liveBefore; got != wantLive {
		t.Errorf("live rows grew by %d, resident accounts %d", got, wantLive)
	}
	if err := r.Unload(rt); err != nil {
		t.Fatal(err)
	}
	if got := rt.Drv.PIMRowsLive(); got != liveBefore {
		t.Errorf("live rows %d after unload, want %d", got, liveBefore)
	}
	if got := rt.Drv.PIMRowsFree(); got != freeBefore {
		t.Errorf("free rows %d after unload, want %d", got, freeBefore)
	}
	if err := r.Unload(rt); err == nil {
		t.Error("double unload accepted")
	}
	if _, _, err := r.StepSlots(rt, make([]fp16.Vector, 2)); err == nil {
		t.Error("step on unloaded model accepted")
	}
}

func TestServingConfigsLoad(t *testing.T) {
	// Every serving-scale config must fit a shard's row budget.
	for _, cfg := range models.ServingConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			rt := newNNRT(t, 2)
			w, err := GenWeights(cfg)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Compile(w)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Load(rt, p)
			if err != nil {
				t.Fatalf("%s does not fit: %v (free rows %d)", cfg.Name, err, rt.Drv.PIMRowsFree())
			}
			xs := make([]fp16.Vector, r.Slots())
			xs[0] = genFrames(rand.New(rand.NewSource(1)), 1, cfg.Input)[0]
			logits, _, err := r.StepSlots(rt, xs)
			if err != nil {
				t.Fatal(err)
			}
			if len(logits[0]) != cfg.Output {
				t.Errorf("logits width %d, want %d", len(logits[0]), cfg.Output)
			}
			if err := r.Unload(rt); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestArgmax(t *testing.T) {
	v := fp16.FromFloat32s([]float32{1, 3, 3, 2})
	if got := Argmax(v); got != 1 {
		t.Errorf("Argmax tie = %d, want first max (1)", got)
	}
	if got := Argmax(nil); got != -1 {
		t.Errorf("Argmax(nil) = %d", got)
	}
}

// Package nn is the model-serving subsystem: it compiles a
// models.Config (the serving-scale DS2 / RNN-T / GNMT stacks) into a
// resident execution plan on a simulated PIM shard and steps whole
// sequences through it.
//
// The pipeline has three pieces:
//
//   - Compile builds the single-timestep tensor graph (tensor.BuildLSTMStep
//     per layer plus the output projection), topologically schedules it,
//     and assigns the paper's placement split: GEMV-shaped ops on PIM,
//     eltwise/activation gate math on the host.
//   - Load lays every MatVec layer's weights out once per shard through
//     the driver free-list (blas.LoadGemv, replicated across channels)
//     and reserves device rows for the recurrent state, which stays
//     resident across timesteps — between steps, h/c never round-trip
//     through the serving tier.
//   - StepSlots advances one timestep for a sparse slot map (slot =
//     pseudo channel, the continuous-batching unit): each layer runs its
//     Wx and Wh GEMVs as batched PIM kernels across every occupied slot,
//     then the host gate math — composed from exactly the tensor graph's
//     primitive semantics, so a host session over the same graph (with
//     Session.MatVecGRF set) reproduces served outputs bit for bit.
//
// That bit-exactness is the correctness contract: Plan.HostOracle is the
// pure-host reference the serving layer and load generator verify full
// multi-step sequences against.
//
// Concurrency contract: a Plan and its loaded per-shard state are owned
// by one stepper goroutine at a time — Load and StepSlots are not safe
// for concurrent use on the same shard, mirroring how a leased shard
// owns its channels. Distinct shards (distinct runtimes) step freely in
// parallel; HostOracle is pure and safe from any goroutine.
package nn

import (
	"fmt"
	"math/rand"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/models"
)

// Weights holds a config's deterministically generated parameters: one
// blas.LSTMWeights per layer and the output projection matrix. The repo
// has no trained checkpoints; serving exercises the system, and the
// generator is shared by server and verifier so outputs stay checkable.
type Weights struct {
	Cfg    models.Config
	Layers []blas.LSTMWeights
	WOut   fp16.Vector // Cfg.Output x Cfg.Hidden[last], row-major
}

// GenWeights generates cfg's weights from its seed. Magnitudes are kept
// small (N(0, 0.25) weights, N(0, 0.1) biases) so FP16 accumulations
// over the widest layer stay far from overflow.
func GenWeights(cfg models.Config) (*Weights, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := func(n int, scale float64) fp16.Vector {
		v := fp16.NewVector(n)
		for i := range v {
			v[i] = fp16.FromFloat32(float32(rng.NormFloat64() * scale))
		}
		return v
	}
	w := &Weights{Cfg: cfg}
	in := cfg.Input
	for _, h := range cfg.Hidden {
		w.Layers = append(w.Layers, blas.LSTMWeights{
			X:  in,
			H:  h,
			Wx: gen(4*h*in, 0.25),
			Wh: gen(4*h*h, 0.25),
			B:  gen(4*h, 0.1),
		})
		in = h
	}
	w.WOut = gen(cfg.Output*in, 0.25)
	return w, nil
}

// WeightBytes is the FP16 footprint of every generated parameter.
func (w *Weights) WeightBytes() int64 { return w.Cfg.WeightBytes() }

// lastHidden is the width feeding the output projection.
func (w *Weights) lastHidden() int { return w.Cfg.Hidden[len(w.Cfg.Hidden)-1] }

// Argmax returns the index of the largest logit (first on ties) — the
// EOS-retirement decision shared by the serving stepper and the oracle,
// so both retire a sequence at the identical step.
func Argmax(v fp16.Vector) int {
	if len(v) == 0 {
		return -1
	}
	best, bestV := 0, v[0].Float32()
	for i := 1; i < len(v); i++ {
		if f := v[i].Float32(); f > bestV {
			best, bestV = i, f
		}
	}
	return best
}

// checkFrame validates one input frame against the config.
func checkFrame(cfg models.Config, t int, x fp16.Vector) error {
	if len(x) != cfg.Input {
		return fmt.Errorf("nn: frame %d has %d elements, model %s takes %d",
			t, len(x), cfg.Name, cfg.Input)
	}
	return nil
}

package nn

import (
	"fmt"
	"math"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/runtime"
)

// Resident is a Plan loaded onto one shard: every MatVec layer's weights
// laid out once through the driver free-list (replicated into each
// pseudo channel by blas.LoadGemv), plus a reserved row span for the
// recurrent state. Slot s (= pseudo channel s) holds one in-flight
// sequence; its h/c persist in the Resident across timesteps, so a
// sequence costs one input frame in and one logit vector out per step.
//
// Like blas.ResidentGemv, methods must not run concurrently on the same
// Runtime — the serving stepper guarantees that by holding the shard
// lease for as long as any slot is active.
type Resident struct {
	Plan *Plan

	slots     int
	wx, wh    []*blas.ResidentGemv // per layer
	out       *blas.ResidentGemv
	stateBase uint32
	stateRows int

	// Functional recurrent state, indexed [layer][slot]. The device rows
	// above reserve the capacity (the row budget /v1/models reports);
	// the simulator keeps the functional values here because only GEMV
	// operands stream through the modeled PIM datapath.
	h, c [][]fp16.Vector

	unloaded bool
}

// SlotState is one sequence's exported recurrent state — what migrates
// to another shard's Resident when a step hits a retryable fault.
type SlotState struct {
	H, C []fp16.Vector // per layer
}

// Load lays p's weights out on rt and reserves state rows for one
// sequence per pseudo channel. Everything allocated is released again if
// any later layer fails to fit.
func Load(rt *runtime.Runtime, p *Plan) (*Resident, error) {
	r := &Resident{Plan: p, slots: rt.NumChannels()}
	fail := func(err error) (*Resident, error) {
		for _, g := range r.wx {
			_ = g.Unload(rt)
		}
		for _, g := range r.wh {
			_ = g.Unload(rt)
		}
		if r.out != nil {
			_ = r.out.Unload(rt)
		}
		return nil, err
	}
	for l, lw := range p.W.Layers {
		gx, err := blas.LoadGemv(rt, lw.Wx, 4*lw.H, lw.X)
		if err != nil {
			return fail(fmt.Errorf("nn: load %s layer %d Wx: %w", p.Cfg.Name, l, err))
		}
		r.wx = append(r.wx, gx)
		gh, err := blas.LoadGemv(rt, lw.Wh, 4*lw.H, lw.H)
		if err != nil {
			return fail(fmt.Errorf("nn: load %s layer %d Wh: %w", p.Cfg.Name, l, err))
		}
		r.wh = append(r.wh, gh)
	}
	gout, err := blas.LoadGemv(rt, p.W.WOut, p.Cfg.Output, p.W.lastHidden())
	if err != nil {
		return fail(fmt.Errorf("nn: load %s output projection: %w", p.Cfg.Name, err))
	}
	r.out = gout

	r.stateRows = ceilDiv(r.slots*p.StateBytesPerSlot, rt.Cfg.RowBytes)
	if r.stateRows < 1 {
		r.stateRows = 1
	}
	base, err := rt.Drv.AllocPIMRows(r.stateRows)
	if err != nil {
		return fail(fmt.Errorf("nn: reserve %s state rows: %w", p.Cfg.Name, err))
	}
	r.stateBase = base

	r.h = make([][]fp16.Vector, len(p.W.Layers))
	r.c = make([][]fp16.Vector, len(p.W.Layers))
	for l, lw := range p.W.Layers {
		r.h[l] = make([]fp16.Vector, r.slots)
		r.c[l] = make([]fp16.Vector, r.slots)
		for s := 0; s < r.slots; s++ {
			r.h[l][s] = fp16.NewVector(lw.H)
			r.c[l][s] = fp16.NewVector(lw.H)
		}
	}
	return r, nil
}

// Slots returns the number of sequence slots (one per pseudo channel).
func (r *Resident) Slots() int { return r.slots }

// WeightRows returns the PIM rows the weight layouts occupy (per bank).
func (r *Resident) WeightRows() int {
	n := 0
	for l := range r.wx {
		n += r.wx[l].Rows() + r.wh[l].Rows()
	}
	return n + r.out.Rows()
}

// StateRows returns the rows reserved for recurrent state.
func (r *Resident) StateRows() int { return r.stateRows }

// ResidentBytes is the footprint /v1/models reports: one weight replica
// plus the state capacity for every slot.
func (r *Resident) ResidentBytes() int64 {
	return r.Plan.WeightBytes() + int64(r.slots*r.Plan.StateBytesPerSlot)
}

// OwnsRow reports whether a device row belongs to this model's resident
// spans — how the serving layer maps an uncorrectable error's row back
// to the model that must relocate.
func (r *Resident) OwnsRow(row uint32) bool {
	span := func(base uint32, n int) bool {
		return row >= base && row < base+uint32(n)
	}
	for l := range r.wx {
		if b, n := r.wx[l].RowRange(); span(b, n) {
			return true
		}
		if b, n := r.wh[l].RowRange(); span(b, n) {
			return true
		}
	}
	if b, n := r.out.RowRange(); span(b, n) {
		return true
	}
	return span(r.stateBase, r.stateRows)
}

// ResetSlot zeroes slot s's recurrent state, making it ready for a new
// sequence.
func (r *Resident) ResetSlot(s int) error {
	if err := r.checkSlot(s); err != nil {
		return err
	}
	for l := range r.h {
		for i := range r.h[l][s] {
			r.h[l][s][i] = fp16.Zero
		}
		for i := range r.c[l][s] {
			r.c[l][s][i] = fp16.Zero
		}
	}
	return nil
}

// ExportState deep-copies slot s's recurrent state.
func (r *Resident) ExportState(s int) (*SlotState, error) {
	if err := r.checkSlot(s); err != nil {
		return nil, err
	}
	st := &SlotState{}
	for l := range r.h {
		hc := fp16.NewVector(len(r.h[l][s]))
		copy(hc, r.h[l][s])
		cc := fp16.NewVector(len(r.c[l][s]))
		copy(cc, r.c[l][s])
		st.H = append(st.H, hc)
		st.C = append(st.C, cc)
	}
	return st, nil
}

// ImportState installs an exported state into slot s — the receiving end
// of a mid-sequence shard migration. The state must come from the same
// Plan (layer count and widths are checked).
func (r *Resident) ImportState(s int, st *SlotState) error {
	if err := r.checkSlot(s); err != nil {
		return err
	}
	if st == nil || len(st.H) != len(r.h) || len(st.C) != len(r.c) {
		return fmt.Errorf("nn: state has %d layers, model %s has %d",
			len(st.H), r.Plan.Cfg.Name, len(r.h))
	}
	for l := range st.H {
		if len(st.H[l]) != len(r.h[l][s]) || len(st.C[l]) != len(r.c[l][s]) {
			return fmt.Errorf("nn: state layer %d width %d, model %s wants %d",
				l, len(st.H[l]), r.Plan.Cfg.Name, len(r.h[l][s]))
		}
		copy(r.h[l][s], st.H[l])
		copy(r.c[l][s], st.C[l])
	}
	return nil
}

// StepSlots advances one timestep for every occupied slot: xs is indexed
// by slot (nil = idle) and the returned logits align with it. All state
// updates are staged and committed only after the entire step — every
// layer's GEMVs and the output projection — succeeds, so a caller that
// sees an error (say, an uncorrectable fault three layers in) can retry
// or migrate the step from pristine state without double-applying the
// recurrence.
//
// The math mirrors the tensor graph's primitive semantics op for op
// (pairwise fp16 adds, float64 activations, fp16 multiplies, PIM-order
// GEMV accumulation), which is what keeps StepSlots bit-identical to
// Plan.HostOracle.
func (r *Resident) StepSlots(rt *runtime.Runtime, xs []fp16.Vector) ([]fp16.Vector, blas.KernelStats, error) {
	if r.unloaded {
		return nil, blas.KernelStats{}, fmt.Errorf("nn: StepSlots on an unloaded model")
	}
	if len(xs) > r.slots {
		return nil, blas.KernelStats{}, fmt.Errorf("nn: %d slots, model loaded with %d", len(xs), r.slots)
	}
	occupied := 0
	for s, x := range xs {
		if x == nil {
			continue
		}
		occupied++
		if err := checkFrame(r.Plan.Cfg, s, x); err != nil {
			return nil, blas.KernelStats{}, err
		}
	}
	if occupied == 0 {
		return nil, blas.KernelStats{}, fmt.Errorf("nn: step with no occupied slots")
	}

	var total blas.KernelStats
	add := func(ks blas.KernelStats) {
		total.Cycles += ks.Cycles // sequential kernels: latencies add
		total.Triggers += ks.Triggers
		total.Fences += ks.Fences
	}

	L := len(r.Plan.W.Layers)
	newH := make([][]fp16.Vector, L)
	newC := make([][]fp16.Vector, L)
	cur := make([]fp16.Vector, len(xs))
	copy(cur, xs)

	for l, lw := range r.Plan.W.Layers {
		// Previous hidden state, masked to the occupied slots.
		hIn := make([]fp16.Vector, len(xs))
		for s := range xs {
			if xs[s] != nil {
				hIn[s] = r.h[l][s]
			}
		}
		zx, ks, err := r.wx[l].RunSlots(rt, cur)
		if err != nil {
			return nil, total, fmt.Errorf("nn: %s layer %d Wx: %w", r.Plan.Cfg.Name, l, err)
		}
		add(ks)
		zh, ks, err := r.wh[l].RunSlots(rt, hIn)
		if err != nil {
			return nil, total, fmt.Errorf("nn: %s layer %d Wh: %w", r.Plan.Cfg.Name, l, err)
		}
		add(ks)

		H := lw.H
		newH[l] = make([]fp16.Vector, len(xs))
		newC[l] = make([]fp16.Vector, len(xs))
		for s := range xs {
			if xs[s] == nil {
				continue
			}
			z := fp16.NewVector(4 * H)
			fp16.AddVec(z, zx[s], zh[s])
			fp16.AddVec(z, z, lw.B)
			hN := fp16.NewVector(H)
			cN := fp16.NewVector(H)
			for j := 0; j < H; j++ {
				i := sigmoid(z[j])
				f := sigmoid(z[H+j])
				g := tanhF(z[2*H+j])
				o := sigmoid(z[3*H+j])
				cN[j] = fp16.Add(fp16.Mul(f, r.c[l][s][j]), fp16.Mul(i, g))
				hN[j] = fp16.Mul(o, tanhF(cN[j]))
			}
			newH[l][s] = hN
			newC[l][s] = cN
			cur[s] = hN
		}
	}

	logits, ks, err := r.out.RunSlots(rt, cur)
	if err != nil {
		return nil, total, fmt.Errorf("nn: %s output projection: %w", r.Plan.Cfg.Name, err)
	}
	add(ks)

	// The whole step succeeded: commit the staged recurrence.
	for l := 0; l < L; l++ {
		for s := range xs {
			if xs[s] == nil {
				continue
			}
			r.h[l][s] = newH[l][s]
			r.c[l][s] = newC[l][s]
		}
	}
	return logits, total, nil
}

// Unload releases every weight layout and the state rows. The Resident
// is dead afterwards; the first error wins but all spans are freed.
func (r *Resident) Unload(rt *runtime.Runtime) error {
	if r.unloaded {
		return fmt.Errorf("nn: Resident already unloaded")
	}
	r.unloaded = true
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	for l := range r.wx {
		keep(r.wx[l].Unload(rt))
		keep(r.wh[l].Unload(rt))
	}
	keep(r.out.Unload(rt))
	keep(rt.Drv.FreePIMRows(r.stateBase))
	return first
}

func (r *Resident) checkSlot(s int) error {
	if s < 0 || s >= r.slots {
		return fmt.Errorf("nn: slot %d out of range [0,%d)", s, r.slots)
	}
	return nil
}

// sigmoid and tanhF match tensor.OpSigmoid/OpTanh exactly: per-element
// float64 math rounded once back to fp16.
func sigmoid(v fp16.F16) fp16.F16 { return fp16.FromFloat64(1 / (1 + math.Exp(-v.Float64()))) }
func tanhF(v fp16.F16) fp16.F16   { return fp16.FromFloat64(math.Tanh(v.Float64())) }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

package driver

import "testing"

func TestQuarantineCarvesFreeList(t *testing.T) {
	d := newDrv(t)
	base, limit := d.PIMRows()
	total := int(limit - base)

	if err := d.QuarantinePIMRows(base+1, 1); err != nil {
		t.Fatal(err)
	}
	if got := d.PIMRowsQuarantined(); got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	if got := d.PIMRowsFree(); got != total-1 {
		t.Fatalf("free = %d, want %d", got, total-1)
	}

	// First-fit must skip the hole: one row still fits before it, but a
	// multi-row span lands after it.
	one, err := d.AllocPIMRows(1)
	if err != nil || one != base {
		t.Fatalf("AllocPIMRows(1) = %d, %v; want %d", one, err, base)
	}
	span, err := d.AllocPIMRows(4)
	if err != nil || span != base+2 {
		t.Fatalf("AllocPIMRows(4) = %d, %v; want %d", span, err, base+2)
	}
}

func TestQuarantineRejectsLiveAndForeignRows(t *testing.T) {
	d := newDrv(t)
	base, limit := d.PIMRows()
	rows, err := d.AllocPIMRows(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.QuarantinePIMRows(rows+2, 1); err == nil {
		t.Fatal("quarantined a live row")
	}
	if err := d.QuarantinePIMRows(limit+10, 1); err == nil {
		t.Fatal("quarantined a row outside the PIM region")
	}
	if err := d.QuarantinePIMRows(base, 0); err == nil {
		t.Fatal("accepted a zero-length quarantine")
	}
	// After freeing, the same row is quarantinable.
	if err := d.FreePIMRows(rows); err != nil {
		t.Fatal(err)
	}
	if err := d.QuarantinePIMRows(rows+2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineSurvivesFullReset(t *testing.T) {
	d := newDrv(t)
	base, limit := d.PIMRows()
	total := int(limit - base)
	if err := d.QuarantinePIMRows(base+3, 2); err != nil {
		t.Fatal(err)
	}
	d.FreeAllPIMRows()
	if got := d.PIMRowsFree(); got != total-2 {
		t.Fatalf("free after reset = %d, want %d (quarantine must persist)", got, total-2)
	}
	if got := d.PIMRowsQuarantined(); got != 2 {
		t.Fatalf("quarantined after reset = %d, want 2", got)
	}
	// The hole is still skipped.
	if got, err := d.AllocPIMRows(5); err != nil || got != base+5 {
		t.Fatalf("AllocPIMRows(5) = %d, %v; want %d", got, err, base+5)
	}
}

// Package driver models the PIM device driver of Section V-A. At boot it
// reserves the PIM configuration rows, carves the physical address space
// into a cacheable host region and an uncacheable PIM region, and hands
// out physically contiguous allocations so PIM kernels never need
// virtual-to-physical translation mid-kernel.
package driver

import (
	"fmt"
	"sync"

	"pimsim/internal/hbm"
	"pimsim/internal/memctrl"
	"pimsim/internal/obs"
)

// Region is one physically contiguous allocation.
type Region struct {
	Addr  uint64
	Bytes uint64
	// Uncacheable regions bypass the LLC: the host issues a DRAM command
	// for every access (required for PIM operands, Section V-A).
	Uncacheable bool
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Addr + r.Bytes }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Addr && addr < r.End() }

// Driver owns the physical address space of the memory system. All
// allocation methods are safe for concurrent use; note however that one
// Driver belongs to one Runtime (one simulated device shard), so
// independent shards never share allocator state.
type Driver struct {
	cfg hbm.Config
	m   memctrl.AddrMap

	mu sync.Mutex

	// Row space per bank: [0, pimRowBase) belongs to host data,
	// [pimRowBase, confRowBase) to PIM operand layouts, and
	// [confRowBase, Rows) is the PIM configuration space.
	confRowBase uint32
	pimRowBase  uint32

	// PIM row bookkeeping: a first-fit free list (sorted by base,
	// adjacent spans coalesced) plus the live allocations by base row.
	// Long-lived model weights (the serving layer) and transient kernel
	// scratch allocate from the same region, so spans must be freeable
	// individually — a bump pointer would leak rows across repeated model
	// load/unload cycles.
	pimFree     []rowSpan
	pimAlloc    map[uint32]uint32 // base row -> span length
	quarantined []rowSpan         // rows retired by QuarantinePIMRows (sorted)

	hostNext  uint64 // bump allocator for host regions (address space)
	hostLimit uint64

	regions []Region

	// Obs, when set, records PIM-row allocator activity (allocations,
	// frees, quarantines) as instant events in the flight recorder,
	// labelled ObsName (the serving layer sets "shardN"). Nil costs one
	// pointer compare per allocator call.
	Obs     *obs.Tracer
	ObsName string
}

// rowSpan is a contiguous range of PIM rows [Base, Base+N).
type rowSpan struct {
	Base, N uint32
}

// PIMRowFraction is the share of each bank's rows the driver reserves for
// PIM operand layouts at boot.
const PIMRowFraction = 0.5

// New boots the driver for a memory system of `channels` pseudo channels
// with the device geometry cfg.
func New(cfg hbm.Config, channels int) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := memctrl.NewAddrMap(channels, cfg.BankGroups, cfg.BanksPerGroup,
		cfg.Rows, cfg.ColumnsPerRow(), cfg.AccessBytes)
	d := &Driver{cfg: cfg, m: m}
	if cfg.PIMUnits > 0 {
		d.confRowBase = uint32(cfg.Rows - hbm.NumConfRows)
		d.pimRowBase = uint32(float64(cfg.Rows) * (1 - PIMRowFraction))
		if d.pimRowBase >= d.confRowBase {
			d.pimRowBase = d.confRowBase / 2
		}
	} else {
		d.confRowBase = uint32(cfg.Rows)
		d.pimRowBase = uint32(cfg.Rows)
	}
	d.pimAlloc = make(map[uint32]uint32)
	if d.confRowBase > d.pimRowBase {
		d.pimFree = []rowSpan{{Base: d.pimRowBase, N: d.confRowBase - d.pimRowBase}}
	}
	// Host space covers every address whose row is below the PIM region.
	d.hostLimit = m.Capacity() / uint64(cfg.Rows) * uint64(d.pimRowBase)
	return d, nil
}

// Map returns the system address map.
func (d *Driver) Map() memctrl.AddrMap { return d.m }

// HostCapacity returns the bytes available to cacheable host allocations.
func (d *Driver) HostCapacity() uint64 { return d.hostLimit }

// PIMRows returns the row range reserved for PIM operand layouts.
func (d *Driver) PIMRows() (base, limit uint32) { return d.pimRowBase, d.confRowBase }

// AllocHost returns a physically contiguous cacheable region.
func (d *Driver) AllocHost(bytes uint64) (Region, error) {
	return d.alloc(bytes, false)
}

// AllocUncacheable returns a physically contiguous uncacheable region for
// PIM-visible host buffers (inputs pushed over the write datapath,
// results read back).
func (d *Driver) AllocUncacheable(bytes uint64) (Region, error) {
	return d.alloc(bytes, true)
}

func (d *Driver) alloc(bytes uint64, uncacheable bool) (Region, error) {
	if bytes == 0 {
		return Region{}, fmt.Errorf("driver: zero-byte allocation")
	}
	// 32-byte alignment: one DRAM access granule.
	bytes = (bytes + uint64(d.cfg.AccessBytes) - 1) &^ uint64(d.cfg.AccessBytes-1)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hostNext+bytes > d.hostLimit {
		return Region{}, fmt.Errorf("driver: out of host memory (%d of %d used)", d.hostNext, d.hostLimit)
	}
	r := Region{Addr: d.hostNext, Bytes: bytes, Uncacheable: uncacheable}
	d.hostNext += bytes
	d.regions = append(d.regions, r)
	return r, nil
}

// AllocPIMRows reserves n consecutive rows (the same row indices in every
// bank of every channel) for a PIM operand layout and returns the base
// row. Allocation is first-fit from the lowest free span, so a kernel
// that frees its rows and reruns lands on the same rows again.
func (d *Driver) AllocPIMRows(n int) (uint32, error) {
	if d.cfg.PIMUnits == 0 {
		return 0, fmt.Errorf("driver: PIM rows on a device without PIM units")
	}
	if n <= 0 {
		return 0, fmt.Errorf("driver: non-positive row count")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.pimFree {
		s := &d.pimFree[i]
		if uint64(s.N) < uint64(n) {
			continue
		}
		base := s.Base
		s.Base += uint32(n)
		s.N -= uint32(n)
		if s.N == 0 {
			d.pimFree = append(d.pimFree[:i], d.pimFree[i+1:]...)
		}
		d.pimAlloc[base] = uint32(n)
		if d.Obs != nil {
			d.Obs.Event("", "driver.alloc", fmt.Sprintf("%s base=%d rows=%d", d.ObsName, base, n))
		}
		return base, nil
	}
	var free, largest uint32
	for _, s := range d.pimFree {
		free += s.N
		if s.N > largest {
			largest = s.N
		}
	}
	return 0, fmt.Errorf("driver: out of PIM rows (%d requested, %d free in %d spans, largest %d)",
		n, free, len(d.pimFree), largest)
}

// FreePIMRows releases one AllocPIMRows reservation by its base row.
// Freeing an unknown base (or the same base twice) is an error: for a
// serving system that loads and unloads models for hours, a silent
// double free would corrupt a neighbouring model's weights.
func (d *Driver) FreePIMRows(base uint32) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.pimAlloc[base]
	if !ok {
		return fmt.Errorf("driver: FreePIMRows(%d): not a live PIM row allocation", base)
	}
	delete(d.pimAlloc, base)
	// Insert sorted by base and coalesce with both neighbours.
	i := 0
	for i < len(d.pimFree) && d.pimFree[i].Base < base {
		i++
	}
	d.pimFree = append(d.pimFree, rowSpan{})
	copy(d.pimFree[i+1:], d.pimFree[i:])
	d.pimFree[i] = rowSpan{Base: base, N: n}
	if i+1 < len(d.pimFree) && d.pimFree[i].Base+d.pimFree[i].N == d.pimFree[i+1].Base {
		d.pimFree[i].N += d.pimFree[i+1].N
		d.pimFree = append(d.pimFree[:i+1], d.pimFree[i+2:]...)
	}
	if i > 0 && d.pimFree[i-1].Base+d.pimFree[i-1].N == d.pimFree[i].Base {
		d.pimFree[i-1].N += d.pimFree[i].N
		d.pimFree = append(d.pimFree[:i], d.pimFree[i+1:]...)
	}
	if d.Obs != nil {
		d.Obs.Event("", "driver.free", fmt.Sprintf("%s base=%d rows=%d", d.ObsName, base, n))
	}
	return nil
}

// QuarantinePIMRows permanently retires n consecutive rows starting at
// base from the PIM allocator — the ECC-backed recovery path for rows
// with uncorrectable (stuck multi-bit) faults. The rows must currently
// be free: a model still resident on a faulty row is unloaded first,
// then its row quarantined, then the model reloaded (first-fit skips
// the hole). Quarantined rows never return, not even via FreeAllPIMRows.
func (d *Driver) QuarantinePIMRows(base uint32, n int) error {
	if n <= 0 {
		return fmt.Errorf("driver: non-positive quarantine count")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	end := base + uint32(n)
	for i := range d.pimFree {
		s := &d.pimFree[i]
		if base < s.Base || end > s.Base+s.N {
			continue
		}
		// Split the span around [base, end).
		tail := rowSpan{Base: end, N: s.Base + s.N - end}
		s.N = base - s.Base
		if s.N == 0 {
			if tail.N == 0 {
				d.pimFree = append(d.pimFree[:i], d.pimFree[i+1:]...)
			} else {
				*s = tail
			}
		} else if tail.N > 0 {
			d.pimFree = append(d.pimFree, rowSpan{})
			copy(d.pimFree[i+2:], d.pimFree[i+1:])
			d.pimFree[i+1] = tail
		}
		j := 0
		for j < len(d.quarantined) && d.quarantined[j].Base < base {
			j++
		}
		d.quarantined = append(d.quarantined, rowSpan{})
		copy(d.quarantined[j+1:], d.quarantined[j:])
		d.quarantined[j] = rowSpan{Base: base, N: uint32(n)}
		if d.Obs != nil {
			d.Obs.Event("", "driver.quarantine", fmt.Sprintf("%s base=%d rows=%d", d.ObsName, base, n))
		}
		return nil
	}
	for b, nn := range d.pimAlloc {
		if base >= b && base < b+nn {
			return fmt.Errorf("driver: QuarantinePIMRows(%d,%d): rows are live; unload the owner first", base, n)
		}
	}
	return fmt.Errorf("driver: QuarantinePIMRows(%d,%d): rows outside the free PIM region", base, n)
}

// PIMRowsQuarantined returns how many PIM rows have been retired.
func (d *Driver) PIMRowsQuarantined() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n uint32
	for _, s := range d.quarantined {
		n += s.N
	}
	return int(n)
}

// FreeAllPIMRows releases every PIM row reservation (system teardown).
// Kernels and model handles free their own spans with FreePIMRows; this
// remains for tests and full resets only — on a live serving shard it
// would yank resident model weights out from under the batcher.
func (d *Driver) FreeAllPIMRows() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pimAlloc = make(map[uint32]uint32)
	d.pimFree = nil
	// Quarantined rows stay retired across a full reset: re-carve the
	// holes (d.quarantined is sorted and disjoint by construction).
	next := d.pimRowBase
	for _, q := range d.quarantined {
		if q.Base > next {
			d.pimFree = append(d.pimFree, rowSpan{Base: next, N: q.Base - next})
		}
		next = q.Base + q.N
	}
	if d.confRowBase > next {
		d.pimFree = append(d.pimFree, rowSpan{Base: next, N: d.confRowBase - next})
	}
}

// PIMRowsFree returns the number of currently unallocated PIM rows.
func (d *Driver) PIMRowsFree() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var free uint32
	for _, s := range d.pimFree {
		free += s.N
	}
	return int(free)
}

// PIMRowsLive returns the number of PIM rows currently allocated to
// resident spans (model weights, recurrent state). With PIMRowsFree and
// PIMRowsQuarantined it completes the row-budget picture /v1/models
// reports per shard.
func (d *Driver) PIMRowsLive() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var live uint32
	for _, n := range d.pimAlloc {
		live += n
	}
	return int(live)
}

// Uncacheable reports whether addr lives in an uncacheable region.
func (d *Driver) Uncacheable(addr uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.regions {
		if r.Uncacheable && r.Contains(addr) {
			return true
		}
	}
	return false
}

// Decode translates a physical address through the system map.
func (d *Driver) Decode(addr uint64) (memctrl.Loc, error) { return d.m.Decode(addr) }

package driver

import (
	"testing"

	"pimsim/internal/hbm"
)

func newDrv(t *testing.T) *Driver {
	t.Helper()
	d, err := New(hbm.PIMHBMConfig(1000), 64)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBootPartitioning(t *testing.T) {
	d := newDrv(t)
	base, limit := d.PIMRows()
	cfg := hbm.PIMHBMConfig(1000)
	if limit != uint32(cfg.Rows-hbm.NumConfRows) {
		t.Errorf("PIM row limit %d, want below the %d conf rows", limit, hbm.NumConfRows)
	}
	if base >= limit {
		t.Error("empty PIM row region")
	}
	if d.HostCapacity() == 0 || d.HostCapacity() >= d.Map().Capacity() {
		t.Errorf("host capacity %d of %d", d.HostCapacity(), d.Map().Capacity())
	}
	// Host space must not reach into PIM rows: the last host address's row
	// is below the PIM base.
	loc, err := d.Decode(d.HostCapacity() - 32)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Row >= base {
		t.Errorf("host space reaches PIM row %d (base %d)", loc.Row, base)
	}
}

func TestAllocContiguousAligned(t *testing.T) {
	d := newDrv(t)
	a, err := d.AllocHost(100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes%32 != 0 || a.Bytes < 100 {
		t.Errorf("allocation rounded to %d", a.Bytes)
	}
	b, err := d.AllocHost(64)
	if err != nil {
		t.Fatal(err)
	}
	if b.Addr != a.End() {
		t.Errorf("allocations not contiguous: %d vs %d", b.Addr, a.End())
	}
	if _, err := d.AllocHost(0); err == nil {
		t.Error("zero allocation accepted")
	}
}

func TestUncacheable(t *testing.T) {
	d := newDrv(t)
	c, err := d.AllocHost(4096)
	if err != nil {
		t.Fatal(err)
	}
	u, err := d.AllocUncacheable(4096)
	if err != nil {
		t.Fatal(err)
	}
	if d.Uncacheable(c.Addr) {
		t.Error("cacheable region flagged uncacheable")
	}
	if !d.Uncacheable(u.Addr) || !d.Uncacheable(u.End()-1) {
		t.Error("uncacheable region not flagged")
	}
	if d.Uncacheable(u.End()) {
		t.Error("flag leaks past region end")
	}
}

func TestPIMRowAllocator(t *testing.T) {
	d := newDrv(t)
	base, limit := d.PIMRows()
	r1, err := d.AllocPIMRows(4)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != base {
		t.Errorf("first allocation at %d, want %d", r1, base)
	}
	r2, err := d.AllocPIMRows(2)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != base+4 {
		t.Errorf("second allocation at %d", r2)
	}
	// Exhaustion.
	if _, err := d.AllocPIMRows(int(limit-base) + 1); err == nil {
		t.Error("over-allocation accepted")
	}
	d.FreeAllPIMRows()
	r3, err := d.AllocPIMRows(1)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != base {
		t.Error("FreeAllPIMRows did not reset")
	}
	if _, err := d.AllocPIMRows(0); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestPlainHBMHasNoPIMRows(t *testing.T) {
	d, err := New(hbm.HBM2Config(1000), 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocPIMRows(1); err == nil {
		t.Error("PIM rows allocated on a plain HBM2 system")
	}
	if d.HostCapacity() != d.Map().Capacity() {
		t.Error("plain HBM2 should expose the full capacity to the host")
	}
}

func TestHostExhaustion(t *testing.T) {
	d := newDrv(t)
	if _, err := d.AllocHost(d.HostCapacity() + 32); err == nil {
		t.Error("oversized allocation accepted")
	}
	if _, err := d.AllocHost(d.HostCapacity()); err != nil {
		t.Errorf("exact-fit allocation rejected: %v", err)
	}
	if _, err := d.AllocHost(32); err == nil {
		t.Error("allocation beyond capacity accepted")
	}
}

// TestPIMRowFreeList exercises the per-span free path the serving layer
// depends on: models are loaded and unloaded repeatedly, so freed spans
// must be reusable, coalesce with their neighbours, and double frees must
// be refused.
func TestPIMRowFreeList(t *testing.T) {
	d := newDrv(t)
	base, limit := d.PIMRows()
	total := int(limit - base)

	a, _ := d.AllocPIMRows(8)
	b, _ := d.AllocPIMRows(8)
	c, _ := d.AllocPIMRows(8)
	if err := d.FreePIMRows(b); err != nil {
		t.Fatal(err)
	}
	// First fit reuses the hole exactly.
	b2, err := d.AllocPIMRows(8)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b {
		t.Errorf("hole not reused: got row %d, want %d", b2, b)
	}
	// A larger request skips the hole.
	if err := d.FreePIMRows(b2); err != nil {
		t.Fatal(err)
	}
	big, err := d.AllocPIMRows(9)
	if err != nil {
		t.Fatal(err)
	}
	if big != c+8 {
		t.Errorf("9-row span at %d, want %d (past the 8-row hole)", big, c+8)
	}

	// Freeing everything coalesces back to one span starting at base.
	for _, r := range []uint32{a, c, big} {
		if err := d.FreePIMRows(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.PIMRowsFree(); got != total {
		t.Errorf("free rows = %d, want %d", got, total)
	}
	all, err := d.AllocPIMRows(total)
	if err != nil {
		t.Fatalf("full-region allocation after coalescing: %v", err)
	}
	if all != base {
		t.Errorf("coalesced allocation at %d, want %d", all, base)
	}
	if err := d.FreePIMRows(all); err != nil {
		t.Fatal(err)
	}

	// Double free and unknown base are errors, not corruption.
	r, _ := d.AllocPIMRows(4)
	if err := d.FreePIMRows(r); err != nil {
		t.Fatal(err)
	}
	if err := d.FreePIMRows(r); err == nil {
		t.Error("double free accepted")
	}
	if err := d.FreePIMRows(base + 1); err == nil {
		t.Error("free of unknown base accepted")
	}
}

// TestPIMRowLoadUnloadCycles models a serving shard's lifetime: load a
// mix of model-sized spans, unload some, load more, for many cycles.
// The allocator must neither leak rows nor panic on exhaustion.
func TestPIMRowLoadUnloadCycles(t *testing.T) {
	d := newDrv(t)
	base, limit := d.PIMRows()
	total := int(limit - base)

	sizes := []int{16, 64, 7, 128, 3}
	for cycle := 0; cycle < 200; cycle++ {
		var live []uint32
		for _, n := range sizes {
			r, err := d.AllocPIMRows(n)
			if err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
			live = append(live, r)
		}
		// Unload in a scrambled order to fragment the free list.
		for _, i := range []int{3, 0, 4, 1, 2} {
			if err := d.FreePIMRows(live[i]); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
		if got := d.PIMRowsFree(); got != total {
			t.Fatalf("cycle %d leaked rows: %d free, want %d", cycle, got, total)
		}
	}

	// Exhaustion under live allocations returns a clear error.
	held, err := d.AllocPIMRows(total - 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocPIMRows(11); err == nil {
		t.Error("over-allocation accepted with 10 rows free")
	}
	if _, err := d.AllocPIMRows(10); err != nil {
		t.Errorf("exact-fit tail allocation failed: %v", err)
	}
	_ = held
}

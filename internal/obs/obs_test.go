package obs

import (
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("req-1", "request")
	child := root.Child("queue")
	grand := child.Child("exec").WithShard(3)
	grand.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["request"].Parent != 0 {
		t.Errorf("root has parent %d, want 0", byName["request"].Parent)
	}
	if byName["queue"].Parent != byName["request"].ID {
		t.Errorf("queue parent %d, want root id %d", byName["queue"].Parent, byName["request"].ID)
	}
	if byName["exec"].Parent != byName["queue"].ID {
		t.Errorf("exec parent %d, want queue id %d", byName["exec"].Parent, byName["queue"].ID)
	}
	if byName["exec"].Shard != 3 {
		t.Errorf("exec shard %d, want 3", byName["exec"].Shard)
	}
	for _, name := range []string{"request", "queue", "exec"} {
		if byName[name].Req != "req-1" {
			t.Errorf("%s lost its request ID: %q", name, byName[name].Req)
		}
	}
}

func TestRingEvictionKeepsNewest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		h := tr.Start("r", "span")
		h.EndWith(int64(i), "", nil)
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest-first snapshot of the newest four: cycles 6,7,8,9.
	for i, sp := range spans {
		if want := int64(6 + i); sp.Cycles != want {
			t.Errorf("slot %d has cycles %d, want %d", i, sp.Cycles, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("total %d, want 10", tr.Total())
	}
}

func TestSlowHookRootsOnly(t *testing.T) {
	tr := NewTracer(16)
	var got [][]Span
	tr.SetSlow(time.Nanosecond, func(tree []Span) { got = append(got, tree) })

	root := tr.Start("slow-1", "request")
	child := root.Child("queue")
	time.Sleep(time.Millisecond)
	child.End() // a slow child must NOT fire the hook
	if len(got) != 0 {
		t.Fatalf("hook fired %d times on a child span", len(got))
	}
	tr.Event("slow-1", "redispatch", "attempt=0")
	root.End()
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(got))
	}
	tree := got[0]
	if len(tree) != 3 {
		t.Fatalf("tree has %d spans, want 3 (root, child, event)", len(tree))
	}
	if tree[0].Name != "request" || tree[0].Parent != 0 {
		t.Errorf("tree[0] = %q (parent %d), want the root first", tree[0].Name, tree[0].Parent)
	}
}

func TestSlowHookThreshold(t *testing.T) {
	tr := NewTracer(16)
	fired := 0
	tr.SetSlow(time.Hour, func([]Span) { fired++ })
	tr.Start("fast", "request").End()
	if fired != 0 {
		t.Fatalf("hook fired for a fast request")
	}
}

func TestEventInstant(t *testing.T) {
	tr := NewTracer(4)
	tr.Event("r-9", "driver.alloc", "base=2048 rows=4")
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if !sp.Instant() {
		t.Errorf("event is not instant: start %v end %v", sp.Start, sp.End)
	}
	if sp.Attrs != "base=2048 rows=4" || sp.Req != "r-9" {
		t.Errorf("event lost payload: %+v", sp)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.SetSlow(time.Second, nil)
	tr.Event("r", "e", "")
	h := tr.Start("r", "root")
	if h.Enabled() {
		t.Error("nil tracer returned an enabled handle")
	}
	c := h.Child("sub").WithShard(2)
	c.End()
	h.EndErr(nil)
	if tr.Snapshot() != nil || tr.Total() != 0 || tr.Tree("r") != nil {
		t.Error("nil tracer retained state")
	}
}

func TestTreeCollectsByRequest(t *testing.T) {
	tr := NewTracer(32)
	r1 := tr.Start("a", "request")
	r1.Child("queue").End()
	tr.Event("a", "redispatch", "")
	r2 := tr.Start("b", "request")
	r2.Child("queue").End()
	r2.End()
	r1.End()

	tree := tr.Tree("a")
	if len(tree) != 3 {
		t.Fatalf("tree(a) has %d spans, want 3", len(tree))
	}
	if tree[0].Name != "request" || tree[0].Req != "a" {
		t.Errorf("roots first: got %q", tree[0].Name)
	}
	for _, sp := range tree {
		if sp.Req != "a" {
			t.Errorf("tree(a) contains %q from request %q", sp.Name, sp.Req)
		}
	}
	if tr.Tree("") != nil {
		t.Error("empty request ID should return nil")
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool, 1000)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
}

func TestTimelineBounds(t *testing.T) {
	tl := NewTimeline(TimelineConfig{Channels: 2, MaxPerChannel: 3})
	c := tl.Channel(0)
	for i := int64(0); i < 5; i++ {
		c.Cmd(i, "ACT", 0, 0, 1, 0, false)
	}
	if got := len(c.Cmds()); got != 3 {
		t.Errorf("buffer holds %d cmds, want 3 (capped)", got)
	}
	if tl.Dropped() != 2 {
		t.Errorf("dropped %d, want 2", tl.Dropped())
	}
	if tl.Channel(5) != nil || tl.Channel(-1) != nil {
		t.Error("out-of-range channel must be nil")
	}
	var nilT *Timeline
	if nilT.Channel(0) != nil || nilT.Events() != 0 || nilT.Dropped() != 0 {
		t.Error("nil timeline must be inert")
	}
	var nilC *ChannelTimeline
	nilC.Cmd(0, "RD", 0, 0, 0, 0, false)
	nilC.ModeChange(0, "AB")
	nilC.PIMInstr(0, 8)
	if nilC.Cmds() != nil || nilC.Modes() != nil || nilC.PIMs() != nil {
		t.Error("nil channel timeline must be inert")
	}
}

package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestWraparoundMultipleLaps pins the ring's behavior well past one lap:
// after several full overwrite cycles the snapshot still holds exactly
// the newest `cap` spans, in strict oldest-first order.
func TestWraparoundMultipleLaps(t *testing.T) {
	const capacity, total = 4, 4*3 + 2 // three full laps plus a partial
	tr := NewTracer(capacity)
	for i := 0; i < total; i++ {
		h := tr.Start("lap", fmt.Sprintf("span-%d", i))
		h.EndWith(int64(i), "", nil)
	}
	spans := tr.Snapshot()
	if len(spans) != capacity {
		t.Fatalf("ring holds %d spans, want %d", len(spans), capacity)
	}
	for i, sp := range spans {
		want := fmt.Sprintf("span-%d", total-capacity+i)
		if sp.Name != want {
			t.Errorf("slot %d = %s, want %s (oldest-first order broken)", i, sp.Name, want)
		}
	}
	// IDs are assigned at Start in record order: oldest-first means
	// strictly increasing across the snapshot.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Errorf("snapshot not oldest-first: ID %d follows %d", spans[i].ID, spans[i-1].ID)
		}
	}
	if tr.Total() != total {
		t.Errorf("total %d, want %d", tr.Total(), total)
	}
}

// TestTreeSurvivesPartialEviction: when the ring wraps through the middle
// of a request's tree, Tree returns the surviving spans — roots first,
// no phantom entries for evicted children.
func TestTreeSurvivesPartialEviction(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("victim", "request")
	c1 := root.Child("queue")
	c2 := root.Child("exec")
	c3 := root.Child("reply")
	// Spans land in the ring at End: record order is c1, c2, c3, root.
	c1.End()
	c2.End()
	c3.End()
	root.End()
	// Two fillers from another request evict c1 and c2.
	tr.Start("other", "noise-a").End()
	tr.Start("other", "noise-b").End()

	tree := tr.Tree("victim")
	if len(tree) != 2 {
		t.Fatalf("surviving tree has %d spans, want 2 (root+reply): %+v", len(tree), tree)
	}
	if tree[0].Name != "request" {
		t.Errorf("first span = %s, want the root first", tree[0].Name)
	}
	if tree[1].Name != "reply" {
		t.Errorf("second span = %s, want the surviving child", tree[1].Name)
	}
	for _, sp := range tree {
		if sp.Req != "victim" {
			t.Errorf("span %s carries req %q, want victim", sp.Name, sp.Req)
		}
	}
}

// TestWriteSpansAfterWraparound: exporting a snapshot taken after the
// ring wrapped mid-tree must still emit a valid Chrome trace file —
// parents may be gone, but the JSON is complete and schema-clean.
func TestWriteSpansAfterWraparound(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		req := fmt.Sprintf("req-%d", i)
		root := tr.Start(req, "request")
		root.Child("queue").End()
		root.Child("exec").WithShard(i%2).EndWith(int64(100+i), "batch=1", nil)
		tr.Event(req, "redispatch", "attempt=1")
		root.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("snapshot has %d spans, want the ring capacity 8", len(spans))
	}

	var buf bytes.Buffer
	if err := WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, &buf)
	checkSchema(t, evs)

	// Every surviving span shows up exactly once; nothing is duplicated or
	// dropped by the export even though earlier parents were evicted.
	want := map[string]int{}
	for _, sp := range spans {
		want[sp.Name]++
	}
	got := map[string]int{}
	for _, ev := range evs {
		if ph := ev["ph"]; ph == "X" || ph == "i" {
			got[ev["name"].(string)]++
		}
	}
	for name, n := range want {
		if got[name] != n {
			t.Errorf("export has %d %q events, want %d", got[name], name, n)
		}
	}
}

// TestWriteSpansNeverTorn hammers the ring from a writer goroutine while
// the main goroutine snapshots and exports: every export must be a
// complete, valid JSON document — a torn read would surface here (and
// under -race).
func TestWriteSpansNeverTorn(t *testing.T) {
	tr := NewTracer(16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h := tr.Start(fmt.Sprintf("req-%d", i%7), "work")
			h.Child("step").End()
			h.EndWith(int64(i), "hot=1", nil)
		}
	}()
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := WriteSpans(&buf, tr.Snapshot()); err != nil {
			t.Fatalf("export %d failed: %v", i, err)
		}
		evs := decodeChrome(t, &buf)
		checkSchema(t, evs)
	}
	close(stop)
	wg.Wait()
}

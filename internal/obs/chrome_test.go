package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// decodeChrome parses exporter output into the generic shape a trace
// viewer sees, validating the envelope on the way.
func decodeChrome(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v", err)
	}
	if file.TraceEvents == nil {
		t.Fatal("missing traceEvents array")
	}
	return file.TraceEvents
}

// checkSchema enforces the Chrome trace-event invariants every event
// must satisfy to load in Perfetto.
func checkSchema(t *testing.T, evs []map[string]any) {
	t.Helper()
	for i, ev := range evs {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if name == "" {
			t.Errorf("event %d has no name", i)
		}
		switch ph {
		case "X":
			for _, f := range []string{"ts", "dur", "pid", "tid"} {
				if _, ok := ev[f].(float64); !ok {
					t.Errorf("event %d (%s, ph=X) missing numeric %s", i, name, f)
				}
			}
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				t.Errorf("event %d (%s) has negative dur %v", i, name, dur)
			}
		case "M", "C":
			if _, ok := ev["args"].(map[string]any); !ok {
				t.Errorf("event %d (%s, ph=%s) missing args", i, name, ph)
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" {
				t.Errorf("event %d (%s, ph=i) has scope %q, want t", i, name, s)
			}
		default:
			t.Errorf("event %d (%s) has unknown ph %q", i, name, ph)
		}
	}
}

func testTimeline() *Timeline {
	tl := NewTimeline(TimelineConfig{
		Channels: 2, NsPerCycle: 0.8333,
		BankGroups: 2, BanksPerGroup: 2,
		ActCycles: 17, PreCycles: 17, RdCycles: 26, WrCycles: 12, RefCycles: 312,
	})
	c := tl.Channel(0)
	c.Cmd(0, "ACT", 0, 1, 42, 0, false)
	c.ModeChange(10, "AB")
	c.Cmd(20, "RD", 0, 1, 42, 3, false)
	c.ModeChange(60, "AB-PIM")
	c.Cmd(80, "ACT", 0, 0, 7, 0, true) // broadcast opens every bank
	c.PIMInstr(100, 8)
	c.Cmd(120, "PRE", 0, 1, 42, 0, false)
	c.Cmd(150, "PREA", 0, 0, 0, 0, false)
	c.ModeChange(160, "SB")
	c.Cmd(200, "REF", 0, 0, 0, 0, false)
	return tl
}

func TestWriteChromeSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := testTimeline().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, &buf)
	checkSchema(t, evs)

	find := func(ph, name string) []map[string]any {
		var out []map[string]any
		for _, ev := range evs {
			if ev["ph"] == ph && ev["name"] == name {
				out = append(out, ev)
			}
		}
		return out
	}
	// Process and track names the viewer groups by.
	wantMeta := map[string]bool{"pCH0": false, "commands": false, "mode": false, "pim instr": false}
	for _, ev := range find("M", "process_name") {
		args := ev["args"].(map[string]any)
		if n, _ := args["name"].(string); n == "pCH0" {
			wantMeta["pCH0"] = true
		}
	}
	for _, ev := range find("M", "thread_name") {
		args := ev["args"].(map[string]any)
		if n, _ := args["name"].(string); n != "" {
			if _, tracked := wantMeta[n]; tracked {
				wantMeta[n] = true
			}
		}
	}
	for name, seen := range wantMeta {
		if !seen {
			t.Errorf("missing metadata track %q", name)
		}
	}

	// Every command kind becomes an X slice with address args.
	for _, kind := range []string{"ACT", "RD", "PRE", "PREA", "REF"} {
		slices := find("X", kind)
		if len(slices) == 0 {
			t.Errorf("no X slice for %s", kind)
			continue
		}
		args := slices[0]["args"].(map[string]any)
		for _, f := range []string{"bg", "bank", "row", "col", "cycle"} {
			if _, ok := args[f]; !ok {
				t.Errorf("%s slice missing arg %s", kind, f)
			}
		}
	}

	// Mode windows: implicit SB from 0, then AB, AB-PIM, SB — all X.
	for _, mode := range []string{"SB", "AB", "AB-PIM"} {
		if len(find("X", mode)) == 0 {
			t.Errorf("no mode window for %s", mode)
		}
	}
	// An AB window must span transition-to-transition: ts 10c, end 60c.
	ab := find("X", "AB")[0]
	nsPer := 0.8333
	if got, want := ab["ts"].(float64), 10*nsPer/1000; abs(got-want) > 1e-9 {
		t.Errorf("AB window ts %v, want %v", got, want)
	}
	if got, want := ab["dur"].(float64), 50*nsPer/1000; abs(got-want) > 1e-9 {
		t.Errorf("AB window dur %v, want %v", got, want)
	}

	// PIM counter track.
	ctr := find("C", "pim_instr")
	if len(ctr) != 1 {
		t.Fatalf("got %d pim_instr counter events, want 1", len(ctr))
	}
	if v, _ := ctr[0]["args"].(map[string]any)["instr"].(float64); v != 8 {
		t.Errorf("pim_instr counter value %v, want 8", v)
	}

	// Bank-row replay: the targeted ACT opens row 42 on bank bg0.b1; the
	// broadcast ACT at cycle 80 closes it (re-opening every bank with row
	// 7), so its window runs 0..80.
	row42 := find("X", "row 42")
	if len(row42) == 0 {
		t.Fatal("no open-row window for row 42")
	}
	if got, want := row42[0]["dur"].(float64), 80*nsPer/1000; abs(got-want) > 1e-9 {
		t.Errorf("row 42 window dur %v, want %v (ACT@0 .. broadcast ACT@80)", got, want)
	}
	if got := len(find("X", "row 7")); got != 4 {
		t.Errorf("broadcast ACT opened %d row-7 windows, want 4 (one per bank)", got)
	}

	// Channel 1 recorded nothing and must not appear.
	for _, ev := range evs {
		if pid, _ := ev["pid"].(float64); pid == 1 {
			t.Errorf("empty channel 1 leaked event %v", ev["name"])
		}
	}
}

func TestWriteChromeNil(t *testing.T) {
	var tl *Timeline
	if err := tl.WriteChrome(&bytes.Buffer{}); err == nil {
		t.Fatal("nil timeline export must error")
	}
}

func TestWriteSpansSchema(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("req-7", "request")
	q := root.Child("queue")
	time.Sleep(time.Millisecond)
	q.End()
	ex := root.Child("exec").WithShard(1)
	ex.EndWith(11486, "batch=2", nil)
	tr.Event("req-7", "redispatch", "attempt=1")
	root.EndErr(nil)

	var buf bytes.Buffer
	if err := WriteSpans(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, &buf)
	checkSchema(t, evs)

	byName := map[string]map[string]any{}
	for _, ev := range evs {
		if ev["ph"] == "X" || ev["ph"] == "i" {
			byName[ev["name"].(string)] = ev
		}
	}
	for _, name := range []string{"request", "queue", "exec", "redispatch"} {
		if byName[name] == nil {
			t.Fatalf("span %q missing from export", name)
		}
	}
	if byName["redispatch"]["ph"] != "i" {
		t.Errorf("instant event exported as ph %v, want i", byName["redispatch"]["ph"])
	}
	// Shard-bound spans land on shard tracks, the rest on the frontend.
	if tid := byName["exec"]["tid"].(float64); tid != float64(tidShardBase+1) {
		t.Errorf("exec span on tid %v, want shard track %d", tid, tidShardBase+1)
	}
	if tid := byName["request"]["tid"].(float64); tid != float64(tidFrontend) {
		t.Errorf("request span on tid %v, want frontend track %d", tid, tidFrontend)
	}
	// The request ID and span linkage survive the export.
	args := byName["exec"]["args"].(map[string]any)
	if args["req"] != "req-7" {
		t.Errorf("exec lost its request ID: %v", args["req"])
	}
	if _, ok := args["parent"]; !ok {
		t.Error("exec span missing parent arg")
	}
	if c, _ := args["cycles"].(float64); c != 11486 {
		t.Errorf("exec cycles arg %v, want 11486", c)
	}
	// The root's ts is the file origin (earliest span): 0.
	if ts := byName["request"]["ts"].(float64); ts != 0 {
		t.Errorf("earliest span ts %v, want 0", ts)
	}
	// Child spans must nest inside the root's [ts, ts+dur] envelope.
	rootEnd := byName["request"]["ts"].(float64) + byName["request"]["dur"].(float64)
	for _, name := range []string{"queue", "exec"} {
		ts := byName[name]["ts"].(float64)
		end := ts + byName[name]["dur"].(float64)
		if ts < 0 || end > rootEnd+1 { // +1us slack for clock granularity
			t.Errorf("%s [%v,%v] escapes root envelope [0,%v]", name, ts, end, rootEnd)
		}
	}
	// Track names for both used threads.
	var names []string
	for _, ev := range evs {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			names = append(names, ev["args"].(map[string]any)["name"].(string))
		}
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "frontend") || !strings.Contains(joined, "shard1") {
		t.Errorf("thread names %v missing frontend/shard1", names)
	}
}

func TestWriteSpansEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpans(&buf, nil); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, &buf)
	checkSchema(t, evs)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package obs

import "testing"

// The disabled-path contract: with no tracer or timeline attached, every
// hook the hot loops call must cost one pointer compare and zero
// allocations. These tests are the enforcement; the simulator goldens
// running with hooks merely present rely on it.

func TestDisabledTracerAllocs(t *testing.T) {
	var tr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		h := tr.Start("req", "request")
		c := h.Child("exec").WithShard(2)
		c.EndWith(100, "", nil)
		h.End()
		tr.Event("req", "e", "")
	}); n != 0 {
		t.Errorf("nil tracer path allocates %.1f per op, want 0", n)
	}
}

func TestZeroHandleAllocs(t *testing.T) {
	var h SpanHandle
	if n := testing.AllocsPerRun(100, func() {
		c := h.Child("sub").WithShard(1)
		c.End()
		h.EndErr(nil)
		_ = h.Enabled()
	}); n != 0 {
		t.Errorf("zero SpanHandle path allocates %.1f per op, want 0", n)
	}
}

func TestDisabledTimelineAllocs(t *testing.T) {
	var c *ChannelTimeline
	if n := testing.AllocsPerRun(100, func() {
		c.Cmd(10, "RD", 0, 1, 42, 3, false)
		c.ModeChange(10, "AB")
		c.PIMInstr(10, 8)
	}); n != 0 {
		t.Errorf("nil channel-timeline path allocates %.1f per op, want 0", n)
	}
	var tl *Timeline
	if n := testing.AllocsPerRun(100, func() {
		_ = tl.Channel(0)
	}); n != 0 {
		t.Errorf("nil timeline Channel allocates %.1f per op, want 0", n)
	}
}

// The enabled steady state (buffers warm, below capacity) must also be
// allocation-free: the flight recorder may run in production.
func TestEnabledTimelineSteadyStateAllocs(t *testing.T) {
	tl := NewTimeline(TimelineConfig{Channels: 1, MaxPerChannel: 1 << 12})
	c := tl.Channel(0)
	// Warm the slices past the growth phase.
	for i := int64(0); i < 512; i++ {
		c.Cmd(i, "RD", 0, 0, 0, 0, false)
	}
	c.cmds = c.cmds[:0]
	if n := testing.AllocsPerRun(100, func() {
		c.Cmd(1, "ACT", 0, 1, 42, 0, false)
	}); n != 0 {
		t.Errorf("warm timeline Cmd allocates %.1f per op, want 0", n)
	}
}

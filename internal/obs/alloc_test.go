package obs

import "testing"

// The disabled-path contract: with no tracer or timeline attached, every
// hook the hot loops call must cost one pointer compare and zero
// allocations. These tests are the enforcement; the simulator goldens
// running with hooks merely present rely on it.

func TestDisabledTracerAllocs(t *testing.T) {
	var tr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		h := tr.Start("req", "request")
		c := h.Child("exec").WithShard(2)
		c.EndWith(100, "", nil)
		h.End()
		tr.Event("req", "e", "")
	}); n != 0 {
		t.Errorf("nil tracer path allocates %.1f per op, want 0", n)
	}
}

func TestZeroHandleAllocs(t *testing.T) {
	var h SpanHandle
	if n := testing.AllocsPerRun(100, func() {
		c := h.Child("sub").WithShard(1)
		c.End()
		h.EndErr(nil)
		_ = h.Enabled()
	}); n != 0 {
		t.Errorf("zero SpanHandle path allocates %.1f per op, want 0", n)
	}
}

func TestDisabledTimelineAllocs(t *testing.T) {
	var c *ChannelTimeline
	if n := testing.AllocsPerRun(100, func() {
		c.Cmd(10, "RD", 0, 1, 42, 3, false)
		c.ModeChange(10, "AB")
		c.PIMInstr(10, 8)
	}); n != 0 {
		t.Errorf("nil channel-timeline path allocates %.1f per op, want 0", n)
	}
	var tl *Timeline
	if n := testing.AllocsPerRun(100, func() {
		_ = tl.Channel(0)
	}); n != 0 {
		t.Errorf("nil timeline Channel allocates %.1f per op, want 0", n)
	}
}

// The enabled steady state (buffers warm, below capacity) must also be
// allocation-free: the flight recorder may run in production.
func TestEnabledTimelineSteadyStateAllocs(t *testing.T) {
	tl := NewTimeline(TimelineConfig{Channels: 1, MaxPerChannel: 1 << 12})
	c := tl.Channel(0)
	// Warm the slices past the growth phase.
	for i := int64(0); i < 512; i++ {
		c.Cmd(i, "RD", 0, 0, 0, 0, false)
	}
	c.Reset()
	if n := testing.AllocsPerRun(100, func() {
		c.Cmd(1, "ACT", 0, 1, 42, 0, false)
	}); n != 0 {
		t.Errorf("warm timeline Cmd allocates %.1f per op, want 0", n)
	}
}

// A Reset timeline re-records a full run without allocating: Reset keeps
// buffer capacity. This pins the traced-benchmark fix — rebuilding the
// timeline per run once cost ~9.9 MB/op against ~0.5 MB untraced.
func TestResetTimelineReuseAllocs(t *testing.T) {
	tl := NewTimeline(TimelineConfig{Channels: 2, MaxPerChannel: 1 << 12})
	record := func() {
		for ch := 0; ch < 2; ch++ {
			c := tl.Channel(ch)
			for i := int64(0); i < 1024; i++ {
				c.Cmd(i, "RD", 0, 0, 0, 0, true)
				c.PIMInstr(i, 8)
			}
			c.ModeChange(0, "AB")
		}
	}
	record() // first run grows the buffers
	if n := testing.AllocsPerRun(10, func() {
		tl.Reset()
		record()
	}); n != 0 {
		t.Errorf("reset-reuse run allocates %.1f per op, want 0", n)
	}
}

func TestResetClearsEventsAndDrops(t *testing.T) {
	tl := NewTimeline(TimelineConfig{Channels: 1, MaxPerChannel: 2})
	c := tl.Channel(0)
	for i := int64(0); i < 5; i++ {
		c.Cmd(i, "RD", 0, 0, 0, 0, false)
	}
	if tl.Dropped() == 0 {
		t.Fatal("expected drops past the cap")
	}
	tl.Reset()
	if got := tl.Events(); got != 0 {
		t.Errorf("Events after Reset = %d, want 0", got)
	}
	if got := tl.Dropped(); got != 0 {
		t.Errorf("Dropped after Reset = %d, want 0", got)
	}
	// The cap applies afresh after Reset.
	c.Cmd(1, "RD", 0, 0, 0, 0, false)
	if got := len(c.Cmds()); got != 1 {
		t.Errorf("Cmds after Reset+record = %d, want 1", got)
	}
	// Nil receivers stay safe.
	var nc *ChannelTimeline
	nc.Reset()
	var ntl *Timeline
	ntl.Reset()
}

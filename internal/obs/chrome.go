package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace-event export. The JSON object format — {"traceEvents":
// [...]} with ph "X" complete slices (ts/dur in microseconds), ph "M"
// metadata, ph "C" counters, ph "i" instants — loads directly in Perfetto
// (https://ui.perfetto.dev) and chrome://tracing.

// chromeEvent is one trace event. Dur uses a pointer so metadata and
// counter events omit it without dropping a legitimate dur of 0.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func durp(d float64) *float64 { return &d }

func meta(name string, pid, tid int, value any) chromeEvent {
	return chromeEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": value}}
}

// Thread (track) IDs within each channel's process.
const (
	tidCmds     = 0 // every issued command, painted with its timing width
	tidMode     = 1 // SB / AB / AB-PIM occupancy windows
	tidPIM      = 2 // retired-PIM-instructions counter track
	tidBankBase = 8 // + flat bank index: per-bank open-row windows
)

// WriteChrome exports the timeline as Chrome trace-event JSON: one
// process per pseudo channel, with a command track, a mode-window track,
// a PIM-instruction counter track and one open-row track per bank.
func (t *Timeline) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteChrome on a nil timeline")
	}
	var evs []chromeEvent
	for _, c := range t.chans {
		evs = t.appendChannel(evs, c)
	}
	return json.NewEncoder(w).Encode(chromeFile{TraceEvents: evs})
}

// tsUs converts a simulated cycle to trace microseconds.
func (t *Timeline) tsUs(cycle int64) float64 {
	return float64(cycle) * t.cfg.NsPerCycle / 1000
}

func (t *Timeline) kindDur(kind string) int64 {
	var d int64
	switch kind {
	case "ACT":
		d = t.cfg.ActCycles
	case "PRE", "PREA":
		d = t.cfg.PreCycles
	case "RD":
		d = t.cfg.RdCycles
	case "WR":
		d = t.cfg.WrCycles
	case "REF":
		d = t.cfg.RefCycles
	}
	if d <= 0 {
		d = 1
	}
	return d
}

func (t *Timeline) appendChannel(evs []chromeEvent, c *ChannelTimeline) []chromeEvent {
	if len(c.cmds) == 0 && len(c.modes) == 0 && len(c.pims) == 0 {
		return evs
	}
	pid := c.id
	evs = append(evs,
		meta("process_name", pid, 0, fmt.Sprintf("pCH%d", c.id)),
		meta("thread_name", pid, tidCmds, "commands"),
	)

	// The horizon closes every still-open window (modes, bank rows).
	var horizon int64
	for _, e := range c.cmds {
		if end := e.Cycle + t.kindDur(e.Kind); end > horizon {
			horizon = end
		}
	}
	for _, e := range c.modes {
		if e.Cycle > horizon {
			horizon = e.Cycle
		}
	}
	for _, e := range c.pims {
		if e.Cycle > horizon {
			horizon = e.Cycle
		}
	}
	horizon++

	// Command track: every issue as a complete slice with its timing width.
	for _, e := range c.cmds {
		evs = append(evs, chromeEvent{
			Name: e.Kind, Ph: "X",
			Ts: t.tsUs(e.Cycle), Dur: durp(t.tsUs(e.Cycle+t.kindDur(e.Kind)) - t.tsUs(e.Cycle)),
			Pid: pid, Tid: tidCmds,
			Args: map[string]any{
				"bg": e.BG, "bank": e.Bank, "row": e.Row, "col": e.Col,
				"broadcast": e.Broadcast, "cycle": e.Cycle,
			},
		})
	}

	// Mode track: windows between transitions. An implicit SB window runs
	// from cycle 0 to the first recorded transition.
	if len(c.modes) > 0 {
		evs = append(evs, meta("thread_name", pid, tidMode, "mode"))
		if first := c.modes[0].Cycle; first > 0 {
			evs = append(evs, chromeEvent{
				Name: "SB", Ph: "X", Ts: 0, Dur: durp(t.tsUs(first)),
				Pid: pid, Tid: tidMode,
			})
		}
		for i, m := range c.modes {
			end := horizon
			if i+1 < len(c.modes) {
				end = c.modes[i+1].Cycle
			}
			evs = append(evs, chromeEvent{
				Name: m.Mode, Ph: "X",
				Ts: t.tsUs(m.Cycle), Dur: durp(t.tsUs(end) - t.tsUs(m.Cycle)),
				Pid: pid, Tid: tidMode,
				Args: map[string]any{"cycle": m.Cycle},
			})
		}
	}

	// PIM activity: a counter track of instructions retired per trigger.
	if len(c.pims) > 0 {
		evs = append(evs, meta("thread_name", pid, tidPIM, "pim instr"))
		for _, e := range c.pims {
			evs = append(evs, chromeEvent{
				Name: "pim_instr", Ph: "C",
				Ts: t.tsUs(e.Cycle), Pid: pid, Tid: tidPIM,
				Args: map[string]any{"instr": e.Instr},
			})
		}
	}

	// Per-bank open-row windows, replayed from the command stream: an ACT
	// opens the addressed bank's row (every bank when broadcast), PRE
	// closes its bank, PREA closes everything. REF implies all closed.
	return t.appendBankRows(evs, c, pid, horizon)
}

func (t *Timeline) appendBankRows(evs []chromeEvent, c *ChannelTimeline, pid int, horizon int64) []chromeEvent {
	banks := t.cfg.BankGroups * t.cfg.BanksPerGroup
	if banks <= 0 || len(c.cmds) == 0 {
		return evs
	}
	type openState struct {
		row   uint32
		since int64
		open  bool
	}
	state := make([]openState, banks)
	used := make([]bool, banks)
	closeBank := func(b int, at int64) {
		if !state[b].open {
			return
		}
		evs = append(evs, chromeEvent{
			Name: fmt.Sprintf("row %d", state[b].row), Ph: "X",
			Ts: t.tsUs(state[b].since), Dur: durp(t.tsUs(at) - t.tsUs(state[b].since)),
			Pid: pid, Tid: tidBankBase + b,
			Args: map[string]any{"row": state[b].row},
		})
		state[b].open = false
	}
	for _, e := range c.cmds {
		flat := int(e.BG)*t.cfg.BanksPerGroup + int(e.Bank)
		if flat < 0 || flat >= banks {
			continue
		}
		switch e.Kind {
		case "ACT":
			if e.Broadcast {
				for b := range state {
					closeBank(b, e.Cycle)
					state[b] = openState{row: e.Row, since: e.Cycle, open: true}
					used[b] = true
				}
			} else {
				closeBank(flat, e.Cycle)
				state[flat] = openState{row: e.Row, since: e.Cycle, open: true}
				used[flat] = true
			}
		case "PRE":
			closeBank(flat, e.Cycle)
		case "PREA", "REF":
			for b := range state {
				closeBank(b, e.Cycle)
			}
		}
	}
	for b := range state {
		closeBank(b, horizon)
	}
	for b := range used {
		if used[b] {
			evs = append(evs, meta("thread_name", pid, tidBankBase+b,
				fmt.Sprintf("bank bg%d.b%d rows", b/t.cfg.BanksPerGroup, b%t.cfg.BanksPerGroup)))
		}
	}
	return evs
}

// Serving-stack export: one process, one track per shard plus a frontend
// track for spans not bound to a shard.
const (
	servePid     = 1
	tidFrontend  = 1
	tidShardBase = 10
)

// WriteSpans exports flight-recorder spans as Chrome trace-event JSON.
// Timestamps are wall-clock microseconds relative to the earliest span,
// so the file stays loadable regardless of absolute time. Instant events
// export as ph "i" markers.
func WriteSpans(w io.Writer, spans []Span) error {
	evs := []chromeEvent{meta("process_name", servePid, 0, "pimserve")}
	if len(spans) > 0 {
		t0 := spans[0].Start
		for _, sp := range spans {
			if sp.Start.Before(t0) {
				t0 = sp.Start
			}
		}
		tids := map[int]bool{}
		for _, sp := range spans {
			tid := tidFrontend
			if sp.Shard >= 0 {
				tid = tidShardBase + sp.Shard
			}
			tids[tid] = true
			ts := float64(sp.Start.Sub(t0)) / float64(time.Microsecond)
			ev := chromeEvent{
				Name: sp.Name, Pid: servePid, Tid: tid, Ts: ts,
				Args: map[string]any{"req": sp.Req, "id": sp.ID},
			}
			if sp.Parent != 0 {
				ev.Args["parent"] = sp.Parent
			}
			if sp.Cycles > 0 {
				ev.Args["cycles"] = sp.Cycles
			}
			if sp.Attrs != "" {
				ev.Args["attrs"] = sp.Attrs
			}
			if sp.Err != "" {
				ev.Args["err"] = sp.Err
			}
			if sp.Instant() {
				ev.Ph, ev.S = "i", "t"
			} else {
				ev.Ph = "X"
				ev.Dur = durp(float64(sp.End.Sub(sp.Start)) / float64(time.Microsecond))
			}
			evs = append(evs, ev)
		}
		ids := make([]int, 0, len(tids))
		for tid := range tids {
			ids = append(ids, tid)
		}
		sort.Ints(ids)
		for _, tid := range ids {
			name := "frontend"
			if tid >= tidShardBase {
				name = fmt.Sprintf("shard%d", tid-tidShardBase)
			}
			evs = append(evs, meta("thread_name", servePid, tid, name))
		}
	}
	return json.NewEncoder(w).Encode(chromeFile{TraceEvents: evs})
}

package obs

import "pimsim/internal/hbm"

// TimelineConfig sizes a simulator Timeline and carries the timing facts
// the Chrome exporter needs to paint command occupancy: slice durations
// per command kind (in cycles — visualization widths, derived from the
// device's JEDEC timing, never fed back into the simulation) and the
// cycle-to-wall conversion.
type TimelineConfig struct {
	Channels      int     // pseudo channels (one event buffer each)
	MaxPerChannel int     // command-event cap per channel (default 1<<18)
	NsPerCycle    float64 // tCK in ns (default 1: export in "cycle" units)
	BankGroups    int     // geometry for the per-bank row tracks
	BanksPerGroup int
	ActCycles     int64 // slice widths per command kind
	PreCycles     int64
	RdCycles      int64
	WrCycles      int64
	RefCycles     int64
}

func (c *TimelineConfig) applyDefaults() {
	if c.Channels <= 0 {
		c.Channels = 1
	}
	if c.MaxPerChannel <= 0 {
		c.MaxPerChannel = 1 << 18
	}
	if c.NsPerCycle <= 0 {
		c.NsPerCycle = 1
	}
}

// FromHBM derives a TimelineConfig from a device configuration: command
// slice widths from the JEDEC timing (ACT occupies tRCD, PRE tRP, column
// commands their latency plus the data burst, REF tRFC) and the wall
// clock from tCK. maxPerChannel <= 0 takes the default cap.
func FromHBM(cfg hbm.Config, channels, maxPerChannel int) *Timeline {
	t := cfg.Timing
	return NewTimeline(TimelineConfig{
		Channels:      channels,
		MaxPerChannel: maxPerChannel,
		NsPerCycle:    float64(t.TCKps) / 1000,
		BankGroups:    cfg.BankGroups,
		BanksPerGroup: cfg.BanksPerGroup,
		ActCycles:     int64(t.RCD),
		PreCycles:     int64(t.RP),
		RdCycles:      int64(t.RL + t.DataCycles()),
		WrCycles:      int64(t.WL + t.DataCycles()),
		RefCycles:     int64(t.RFC),
	})
}

// Timeline is the simulator-side trace sink: one ChannelTimeline per
// pseudo channel. Recording is lock free because each channel's buffer
// has exactly one writer (the goroutine driving that channel, per the
// runtime.ParallelKernels ownership model); export happens only after
// the kernel quiesces.
type Timeline struct {
	cfg   TimelineConfig
	chans []*ChannelTimeline
}

// NewTimeline allocates a timeline for cfg.Channels channels.
func NewTimeline(cfg TimelineConfig) *Timeline {
	cfg.applyDefaults()
	tl := &Timeline{cfg: cfg, chans: make([]*ChannelTimeline, cfg.Channels)}
	for i := range tl.chans {
		tl.chans[i] = &ChannelTimeline{id: i, max: cfg.MaxPerChannel}
	}
	return tl
}

// Reset discards all recorded events while keeping every channel's
// buffer capacity, so a long-lived Timeline (benchmark harnesses,
// repeated sweeps) records run after run without reallocating — growing
// the buffers from scratch costs megabytes per run.
func (t *Timeline) Reset() {
	if t == nil {
		return
	}
	for _, c := range t.chans {
		c.Reset()
	}
}

// Channel returns channel i's buffer (nil if out of range, which keeps
// the hook nil-safe on misconfigured wiring).
func (t *Timeline) Channel(i int) *ChannelTimeline {
	if t == nil || i < 0 || i >= len(t.chans) {
		return nil
	}
	return t.chans[i]
}

// Events returns the total recorded event count across channels.
func (t *Timeline) Events() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, c := range t.chans {
		n += len(c.cmds) + len(c.modes) + len(c.pims)
	}
	return n
}

// Dropped returns how many command events hit a full buffer and were
// discarded (the bound keeps long sweeps from eating the heap; exporters
// surface the loss instead of silently truncating).
func (t *Timeline) Dropped() int64 {
	if t == nil {
		return 0
	}
	var n int64
	for _, c := range t.chans {
		n += c.dropped
	}
	return n
}

// CmdEvent is one issued DRAM command at its exact simulated cycle.
type CmdEvent struct {
	Cycle     int64
	Row, Col  uint32
	Kind      string // constant string from hbm.CmdKind.String()
	BG, Bank  int16
	Broadcast bool // issued while the channel was in an all-bank mode
}

// ModeEvent marks the channel entering Mode at Cycle.
type ModeEvent struct {
	Cycle int64
	Mode  string
}

// PIMEvent is one AB-PIM trigger: Instr instructions retired across the
// channel's units at Cycle (the exporter's PIM-activity counter track).
type PIMEvent struct {
	Cycle int64
	Instr int32
}

// ChannelTimeline is one channel's event buffers. All record methods are
// nil-receiver safe — the memctrl/pim hooks call through a possibly-nil
// field — and drop (counting) rather than grow past the cap.
type ChannelTimeline struct {
	id      int
	max     int
	cmds    []CmdEvent
	modes   []ModeEvent
	pims    []PIMEvent
	dropped int64
}

// Reset truncates the channel's event buffers in place (capacity kept)
// and clears the drop counter.
func (c *ChannelTimeline) Reset() {
	if c == nil {
		return
	}
	c.cmds = c.cmds[:0]
	c.modes = c.modes[:0]
	c.pims = c.pims[:0]
	c.dropped = 0
}

// Cmd records one issued command.
func (c *ChannelTimeline) Cmd(cycle int64, kind string, bg, bank int, row, col uint32, broadcast bool) {
	if c == nil {
		return
	}
	if len(c.cmds) >= c.max {
		c.dropped++
		return
	}
	c.cmds = append(c.cmds, CmdEvent{
		Cycle: cycle, Kind: kind,
		BG: int16(bg), Bank: int16(bank), Row: row, Col: col,
		Broadcast: broadcast,
	})
}

// ModeChange records the channel entering mode at cycle.
func (c *ChannelTimeline) ModeChange(cycle int64, mode string) {
	if c == nil {
		return
	}
	if len(c.modes) >= c.max {
		c.dropped++
		return
	}
	c.modes = append(c.modes, ModeEvent{Cycle: cycle, Mode: mode})
}

// PIMInstr records one trigger's retired instruction count at cycle.
func (c *ChannelTimeline) PIMInstr(cycle int64, instr int) {
	if c == nil {
		return
	}
	if len(c.pims) >= c.max {
		c.dropped++
		return
	}
	c.pims = append(c.pims, PIMEvent{Cycle: cycle, Instr: int32(instr)})
}

// Cmds exposes the recorded command events (tests and exporters).
func (c *ChannelTimeline) Cmds() []CmdEvent {
	if c == nil {
		return nil
	}
	return c.cmds
}

// Modes exposes the recorded mode transitions.
func (c *ChannelTimeline) Modes() []ModeEvent {
	if c == nil {
		return nil
	}
	return c.modes
}

// PIMs exposes the recorded trigger events.
func (c *ChannelTimeline) PIMs() []PIMEvent {
	if c == nil {
		return nil
	}
	return c.pims
}

package obs_test

// Perturbation goldens: the flight recorder and the command timeline
// must be pure observers. This file reruns the root package's functional
// GEMV golden with both ATTACHED and pins the identical hash and cycle
// count — tracing must not shift a single simulated cycle — plus the
// structure of the timeline the run produces.

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"testing"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/obs"
	"pimsim/internal/runtime"
)

func TestGoldenGemvWithTracingEnabled(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1200)
	cfg.PseudoChannels = 2
	cfg.Functional = true
	const M, K = 256, 512
	W := fp16.NewVector(M * K)
	x := fp16.NewVector(K)
	for i := range W {
		W[i] = fp16.FromFloat32(float32(i%13) * 0.1)
	}
	for i := range x {
		x[i] = fp16.FromFloat32(float32(i%7) * 0.2)
	}
	dev := hbm.MustNewDevice(cfg)
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	tl := obs.FromHBM(cfg, rt.EffectiveChannels(), 0)
	rt.AttachTimeline(tl)
	rt.BeginPhaseObs()

	y, ks, err := blas.PimGemv(rt, W, M, K, x)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, v := range y {
		h.Write([]byte{byte(v), byte(v >> 8)})
	}
	// Identical to TestGoldenFunctionalGemv in the root package: tracing
	// must be invisible in every simulated output.
	if got, want := h.Sum64(), uint64(0xe8f7a69c9c990aad); got != want {
		t.Errorf("output hash with tracing on = %#x, want the clean golden %#x", got, want)
	}
	if ks.Cycles != 11486 || ks.Triggers != 2048 || ks.Fences != 256 {
		t.Errorf("kernel stats with tracing on = cycles %d triggers %d fences %d, want 11486/2048/256",
			ks.Cycles, ks.Triggers, ks.Fences)
	}

	// Timeline structure golden: the command census the device reported
	// must be exactly what the timeline recorded (refresh included).
	st := dev.Stats()
	var cmds, pims int64
	kinds := map[string]int64{}
	for ch := 0; ch < rt.EffectiveChannels(); ch++ {
		c := tl.Channel(ch)
		cmds += int64(len(c.Cmds()))
		pims += int64(len(c.PIMs()))
		for _, e := range c.Cmds() {
			kinds[e.Kind]++
		}
		if len(c.Modes()) == 0 {
			t.Errorf("channel %d recorded no mode windows", ch)
		}
	}
	if tl.Dropped() != 0 {
		t.Fatalf("timeline dropped %d events with default buffers", tl.Dropped())
	}
	wantKinds := map[string]int64{
		"ACT": st.ACT + st.ABACT,
		"RD":  st.RD + st.ABRD,
		"WR":  st.WR + st.ABWR,
		"REF": st.REF,
	}
	for kind, want := range wantKinds {
		if kinds[kind] != want {
			t.Errorf("timeline recorded %d %s commands, device stats say %d", kinds[kind], kind, want)
		}
	}
	if pims != int64(ks.Triggers) {
		t.Errorf("timeline recorded %d PIM trigger events, kernel issued %d", pims, ks.Triggers)
	}

	// Phase breakdown: every trigger accounted, total cycles sane.
	pb := rt.TakePhaseObs()
	if got := pb.Count[runtime.PhaseTrigger]; got != int64(ks.Triggers) {
		t.Errorf("phase breakdown counted %d triggers, kernel stats say %d", got, ks.Triggers)
	}
	var phaseCycles int64
	for ph := runtime.KernelPhase(0); ph < runtime.NumPhases; ph++ {
		phaseCycles += pb.Cycles[ph]
	}
	if phaseCycles <= 0 {
		t.Error("phase breakdown accounted zero cycles")
	}

	// The export must hold exactly the recorded events (plus metadata and
	// derived windows) and pass the schema validator in chrome_test.go —
	// here pin the headline structure: both channels appear as processes.
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	procs := map[string]bool{}
	for _, ev := range file.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			procs[ev["args"].(map[string]any)["name"].(string)] = true
		}
	}
	for _, p := range []string{"pCH0", "pCH1"} {
		if !procs[p] {
			t.Errorf("export missing process %s (got %v)", p, procs)
		}
	}
	if cmds == 0 {
		t.Fatal("timeline recorded no commands at all")
	}
}

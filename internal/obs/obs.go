// Package obs is the observability layer of the stack: a dual-clock
// tracing subsystem that spans both the serving stack (wall-clock request
// spans) and the cycle-level simulator (sim-cycle command timelines).
//
// Two sinks, both behind nil-checked hooks in the style of internal/fault
// (a disabled hook costs one pointer compare and zero allocations, and is
// invisible to the determinism goldens — the trace observes, never
// perturbs):
//
//   - Tracer is a bounded ring-buffer flight recorder of Spans. The
//     serving stack starts a root span per HTTP request (carrying the
//     request ID that the X-Request-ID response header returns), and
//     hangs queue/batch/exec children plus instant events (re-dispatches,
//     driver allocations) off it, so one slow request reconstructs as a
//     span tree. A slow-request hook fires with the full tree whenever a
//     root span exceeds a latency threshold.
//
//   - Timeline is the simulator-side sink: per-channel buffers of DRAM
//     command issues, mode windows (SB / AB / AB-PIM) and per-trigger PIM
//     instruction counts, recorded at exact simulated cycles by the
//     memctrl/hbm/pim layers. One writer per channel (the
//     runtime.ParallelKernels ownership model), so recording takes no
//     locks.
//
// Both sinks export Chrome trace-event JSON (WriteSpans, WriteChrome)
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing —
// one process per pseudo channel with command/mode/bank-row/PIM-counter
// tracks, one process for the serving stack with a track per shard. See
// docs/OBSERVABILITY.md.
package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a Tracer. IDs are never reused; 0 is
// reserved for "no parent".
type SpanID uint64

// Span is one completed operation in the flight recorder. Start/End are
// wall clock; Cycles carries the simulated-cycle cost when the operation
// wraps a kernel launch (the dual-clock part).
type Span struct {
	ID     SpanID    `json:"id"`
	Parent SpanID    `json:"parent,omitempty"`
	Req    string    `json:"req,omitempty"` // request ID the span belongs to
	Name   string    `json:"name"`
	Shard  int       `json:"shard"` // -1 when not bound to a shard
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Cycles int64     `json:"cycles,omitempty"` // simulated cycles (kernel spans)
	Attrs  string    `json:"attrs,omitempty"`  // free-form "k=v k=v" details
	Err    string    `json:"err,omitempty"`
}

// Duration returns the span's wall-clock duration.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Instant reports whether the span is a point event (Event).
func (s Span) Instant() bool { return s.End.Equal(s.Start) }

// Tracer is a bounded ring-buffer flight recorder. All methods are safe
// for concurrent use, and every method on a nil *Tracer (and on the zero
// SpanHandle) is a no-op — callers hook it behind a single field and
// never branch.
type Tracer struct {
	seq atomic.Uint64

	mu    sync.Mutex
	ring  []Span // fixed capacity, preallocated
	next  int    // ring write cursor
	full  bool
	total int64

	slowThresh time.Duration
	onSlow     func(tree []Span)
}

// NewTracer returns a flight recorder keeping the newest capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// SetSlow arms the slow-request hook: whenever a root span (no parent)
// ends with a duration of at least threshold, fn is called synchronously
// with the request's span tree (root first, every recorded span sharing
// its request ID). Call before serving traffic.
func (t *Tracer) SetSlow(threshold time.Duration, fn func(tree []Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slowThresh, t.onSlow = threshold, fn
	t.mu.Unlock()
}

// Start opens a root span for a request. On a nil Tracer the returned
// handle is inert: every operation on it is a no-op.
func (t *Tracer) Start(req, name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{
		t:     t,
		id:    SpanID(t.seq.Add(1)),
		req:   req,
		name:  name,
		shard: -1,
		start: time.Now(),
	}
}

// Event records an instant event (zero-duration span) — a re-dispatch, a
// driver allocation — attached to a request ID.
func (t *Tracer) Event(req, name, attrs string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.record(Span{
		ID:    SpanID(t.seq.Add(1)),
		Req:   req,
		Name:  name,
		Shard: -1,
		Start: now,
		End:   now,
		Attrs: attrs,
	})
}

// record appends one finished span to the ring, evicting the oldest.
func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
		t.full = true
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Snapshot copies the recorded spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Total returns how many spans were ever recorded (including evicted).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Tree returns every recorded span belonging to req, roots first (then
// recording order) — the reconstruction of one request's life.
func (t *Tracer) Tree(req string) []Span {
	if t == nil || req == "" {
		return nil
	}
	all := t.Snapshot()
	out := make([]Span, 0, 8)
	for _, sp := range all {
		if sp.Req == req && sp.Parent == 0 && !sp.Instant() {
			out = append(out, sp)
		}
	}
	for _, sp := range all {
		if sp.Req == req && !(sp.Parent == 0 && !sp.Instant()) {
			out = append(out, sp)
		}
	}
	return out
}

// SpanHandle is an open span. It is a value (no allocation to create),
// and the zero handle — returned by a nil Tracer — ignores every call.
type SpanHandle struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	req    string
	name   string
	shard  int32
	start  time.Time
}

// Enabled reports whether the handle records anywhere. Callers use it to
// skip building attribute strings when tracing is off.
func (h SpanHandle) Enabled() bool { return h.t != nil }

// Req returns the request ID the span belongs to.
func (h SpanHandle) Req() string { return h.req }

// Child opens a sub-span under h with the same request ID.
func (h SpanHandle) Child(name string) SpanHandle {
	if h.t == nil {
		return SpanHandle{}
	}
	return SpanHandle{
		t:      h.t,
		id:     SpanID(h.t.seq.Add(1)),
		parent: h.id,
		req:    h.req,
		name:   name,
		shard:  h.shard,
		start:  time.Now(),
	}
}

// WithShard labels the span with the shard it executed on.
func (h SpanHandle) WithShard(shard int) SpanHandle {
	h.shard = int32(shard)
	return h
}

// End closes the span cleanly.
func (h SpanHandle) End() { h.finish(0, "", nil) }

// EndErr closes the span with an error (nil err behaves like End).
func (h SpanHandle) EndErr(err error) { h.finish(0, "", err) }

// EndWith closes the span with a simulated-cycle cost and detail attrs.
func (h SpanHandle) EndWith(cycles int64, attrs string, err error) {
	h.finish(cycles, attrs, err)
}

func (h SpanHandle) finish(cycles int64, attrs string, err error) {
	if h.t == nil {
		return
	}
	sp := Span{
		ID:     h.id,
		Parent: h.parent,
		Req:    h.req,
		Name:   h.name,
		Shard:  int(h.shard),
		Start:  h.start,
		End:    time.Now(),
		Cycles: cycles,
		Attrs:  attrs,
	}
	if err != nil {
		sp.Err = err.Error()
	}
	t := h.t
	t.record(sp)
	// Slow-request hook: only root spans qualify, and the tree is
	// collected after the root lands in the ring so it includes itself.
	if h.parent == 0 {
		t.mu.Lock()
		thresh, fn := t.slowThresh, t.onSlow
		t.mu.Unlock()
		if fn != nil && thresh > 0 && sp.Duration() >= thresh {
			fn(t.Tree(h.req))
		}
	}
}

// Request IDs: unique within a process, prefixed with a boot-time salt so
// IDs from different server runs don't collide in aggregated logs.
var (
	reqSalt = func() uint32 {
		var b [4]byte
		if _, err := crand.Read(b[:]); err != nil {
			return uint32(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint32(b[:])
	}()
	reqSeq atomic.Uint64
)

// NewRequestID returns a fresh request ID ("<salt>-<seq>" in hex). It is
// independent of any Tracer: the X-Request-ID header and the access log
// carry request IDs even with the flight recorder disabled.
func NewRequestID() string {
	return fmt.Sprintf("%08x-%06x", reqSalt, reqSeq.Add(1)&0xffffff)
}

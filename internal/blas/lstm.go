package blas

import (
	"fmt"
	"math"

	"pimsim/internal/fp16"
	"pimsim/internal/runtime"
)

// LSTM support. The paper accelerates the LSTM layers of DS2, RNN-T and
// GNMT by offloading their matrix-vector products (the memory-bound part)
// to PIM; the cheap elementwise gate activations stay on the host
// (Section VII-A). Gate order is [input, forget, cell, output].

// LSTMWeights holds one cell's parameters.
type LSTMWeights struct {
	Wx fp16.Vector // 4H x X, row-major
	Wh fp16.Vector // 4H x H, row-major
	B  fp16.Vector // 4H
	X  int         // input width
	H  int         // hidden width
}

// Validate checks dimension consistency (functional data may be nil for
// timing-only runs, but dims must be set).
func (w LSTMWeights) Validate() error {
	if w.X <= 0 || w.H <= 0 {
		return fmt.Errorf("blas: LSTM dims X=%d H=%d", w.X, w.H)
	}
	if err := checkLen("Wx", w.Wx, 4*w.H*w.X); err != nil {
		return err
	}
	if err := checkLen("Wh", w.Wh, 4*w.H*w.H); err != nil {
		return err
	}
	return checkLen("B", w.B, 4*w.H)
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// gateMath applies bias, activations and the state update in float32 on
// the host, from the two GEMV partial results.
func gateMath(zx, zh fp16.Vector, w LSTMWeights, c fp16.Vector) (hOut, cOut fp16.Vector) {
	H := w.H
	hOut = fp16.NewVector(H)
	cOut = fp16.NewVector(H)
	for j := 0; j < H; j++ {
		pre := func(g int) float64 {
			v := zx[g*H+j].Float64() + zh[g*H+j].Float64()
			if w.B != nil {
				v += w.B[g*H+j].Float64()
			}
			return v
		}
		i := sigmoid(pre(0))
		f := sigmoid(pre(1))
		g := math.Tanh(pre(2))
		o := sigmoid(pre(3))
		cNew := f*c[j].Float64() + i*g
		cOut[j] = fp16.FromFloat64(cNew)
		hOut[j] = fp16.FromFloat64(o * math.Tanh(cNew))
	}
	return hOut, cOut
}

// PimLSTMCell advances one LSTM step with both GEMVs on PIM.
func PimLSTMCell(rt *runtime.Runtime, w LSTMWeights, x, h, c fp16.Vector) (hOut, cOut fp16.Vector, ks KernelStats, err error) {
	if err := w.Validate(); err != nil {
		return nil, nil, KernelStats{}, err
	}
	zx, k1, err := PimGemv(rt, w.Wx, 4*w.H, w.X, x)
	if err != nil {
		return nil, nil, KernelStats{}, err
	}
	zh, k2, err := PimGemv(rt, w.Wh, 4*w.H, w.H, h)
	if err != nil {
		return nil, nil, KernelStats{}, err
	}
	ks = KernelStats{
		Cycles:   k1.Cycles + k2.Cycles,
		Triggers: k1.Triggers + k2.Triggers,
		Fences:   k1.Fences + k2.Fences,
	}
	if !rt.Cfg.Functional {
		return nil, nil, ks, nil
	}
	hOut, cOut = gateMath(zx, zh, w, c)
	return hOut, cOut, ks, nil
}

// HostLSTMCell is the host baseline math (float32 GEMVs).
func HostLSTMCell(w LSTMWeights, x, h, c fp16.Vector) (hOut, cOut fp16.Vector, err error) {
	if err := w.Validate(); err != nil {
		return nil, nil, err
	}
	zx := HostGemvF32(w.Wx, 4*w.H, w.X, x)
	zh := HostGemvF32(w.Wh, 4*w.H, w.H, h)
	hOut, cOut = gateMath(zx, zh, w, c)
	return hOut, cOut, nil
}

// Package blas implements the PIM BLAS library of Section V-A: GEMV, ADD,
// MUL, ReLU, BN and LSTM primitives that lay operands out across banks,
// generate the DRAM command streams that drive the PIM microkernels, and
// read results back — plus bit-exact host reference implementations used
// for verification and as the CPU fallback.
package blas

import (
	"fmt"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/runtime"
)

// KernelStats reports what one PIM kernel cost.
type KernelStats struct {
	Cycles   int64 // slowest channel's kernel-region cycles
	Triggers int64 // PIM-triggering column commands issued (all channels)
	Fences   int64 // ordering fences executed (all channels)
}

// Ns converts the cycle count to nanoseconds under the runtime's timing.
func (k KernelStats) Ns(rt *runtime.Runtime) float64 {
	return rt.Cfg.Timing.CyclesToNs(k.Cycles)
}

// region measures per-channel cycle deltas around a kernel.
type region struct {
	rt     *runtime.Runtime
	start  []int64
	fences []int64
}

func beginRegion(rt *runtime.Runtime) *region {
	r := &region{rt: rt, start: make([]int64, rt.NumChannels()), fences: make([]int64, rt.NumChannels())}
	for i, c := range rt.Chans {
		r.start[i] = c.Now()
		r.fences[i] = c.Fences()
	}
	return r
}

func (r *region) end() KernelStats {
	var ks KernelStats
	for i, c := range r.rt.Chans {
		if d := c.Now() - r.start[i]; d > ks.Cycles {
			ks.Cycles = d
		}
		ks.Fences += c.Fences() - r.fences[i]
	}
	return ks
}

// grfDepth returns the number of GRF registers per half for the runtime's
// device variant. It equals the AAM reorder window (fence granularity).
func grfDepth(rt *runtime.Runtime) int {
	if rt.Cfg.Variant == hbm.Variant2X {
		return 2 * isa.GRFEntries
	}
	return isa.GRFEntries
}

// GRFDepth exposes the runtime's GRF accumulator depth (the g that
// RefGemvPIMOrder interleaves over): oracle builders outside this
// package need it to reproduce device accumulation order exactly.
func GRFDepth(rt *runtime.Runtime) int { return grfDepth(rt) }

// splat replicates a scalar across the 16 lanes and serializes it.
func splat(v fp16.F16) []byte {
	vec := fp16.NewVector(fp16.Lanes)
	for i := range vec {
		vec[i] = v
	}
	return vec.Bytes()
}

// ceilDiv is integer ceiling division.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// checkLen validates a functional operand length.
func checkLen(name string, v fp16.Vector, want int) error {
	if v != nil && len(v) != want {
		return fmt.Errorf("blas: %s has %d elements, want %d", name, len(v), want)
	}
	return nil
}

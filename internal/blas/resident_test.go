package blas

import (
	"math/rand"
	"testing"

	"pimsim/internal/fp16"
)

// TestResidentGemvMatchesReference checks that every lane of a batched
// resident launch is bit-exact against the PIM-order oracle, across
// batch sizes and layouts with and without multiple macro passes.
func TestResidentGemvMatchesReference(t *testing.T) {
	cases := []struct {
		M, K  int
		batch int
	}{
		{16, 8, 1},    // single block, batch 1
		{29, 64, 4},   // small-M serving shape, full batch
		{48, 72, 3},   // padding on both dims, partial batch
		{160, 520, 2}, // row switches and >U blocks (2 macros per channel)
		{48, 1088, 4}, // passes > 128: multiple CRF invocations
	}
	for _, c := range cases {
		rt := testRuntime(t, 4, true)
		rng := rand.New(rand.NewSource(int64(c.M*17 + c.K + c.batch)))
		W := randVec(rng, c.M*c.K)
		g, err := LoadGemv(rt, W, c.M, c.K)
		if err != nil {
			t.Fatalf("%dx%d: %v", c.M, c.K, err)
		}
		xs := make([]fp16.Vector, c.batch)
		for i := range xs {
			xs[i] = randVec(rng, c.K)
		}
		ys, ks, err := g.RunBatch(rt, xs)
		if err != nil {
			t.Fatalf("%dx%d batch %d: %v", c.M, c.K, c.batch, err)
		}
		if len(ys) != c.batch {
			t.Fatalf("%dx%d: %d outputs for batch %d", c.M, c.K, len(ys), c.batch)
		}
		for i, x := range xs {
			want := RefGemvPIMOrder(W, c.M, c.K, x, grfDepth(rt))
			for o := range want {
				if ys[i][o] != want[o] {
					t.Fatalf("%dx%d batch %d: y[%d][%d] = %v, want %v",
						c.M, c.K, c.batch, i, o, ys[i][o], want[o])
				}
			}
		}
		if ks.Cycles <= 0 || ks.Triggers <= 0 {
			t.Errorf("%dx%d: empty kernel stats %+v", c.M, c.K, ks)
		}
	}
}

// TestResidentGemvRepeatedRuns re-runs the same resident model many times
// with fresh inputs: weights must stay intact (no per-run relayout) and
// every run stays bit-exact.
func TestResidentGemvRepeatedRuns(t *testing.T) {
	rt := testRuntime(t, 2, true)
	const M, K = 32, 96
	rng := rand.New(rand.NewSource(5))
	W := randVec(rng, M*K)
	g, err := LoadGemv(rt, W, M, K)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 8; run++ {
		xs := []fp16.Vector{randVec(rng, K), randVec(rng, K)}
		ys, _, err := g.RunBatch(rt, xs)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for i, x := range xs {
			want := RefGemvPIMOrder(W, M, K, x, grfDepth(rt))
			for o := range want {
				if ys[i][o] != want[o] {
					t.Fatalf("run %d lane %d drifted at output %d", run, i, o)
				}
			}
		}
	}
}

// TestResidentGemvCoexistsWithAdHocKernels pins the allocator contract
// the serving layer depends on: an ad-hoc PimGemv between batched runs
// must not clobber resident weights (scoped frees, not FreeAllPIMRows).
func TestResidentGemvCoexistsWithAdHocKernels(t *testing.T) {
	rt := testRuntime(t, 2, true)
	const M, K = 32, 64
	rng := rand.New(rand.NewSource(7))
	W := randVec(rng, M*K)
	g, err := LoadGemv(rt, W, M, K)
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(rng, K)
	want := RefGemvPIMOrder(W, M, K, x, grfDepth(rt))

	check := func(tag string) {
		ys, _, err := g.RunBatch(rt, []fp16.Vector{x})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		for o := range want {
			if ys[0][o] != want[o] {
				t.Fatalf("%s: resident weights clobbered at output %d", tag, o)
			}
		}
	}
	check("before ad-hoc kernel")

	W2, x2 := randVec(rng, 64*128), randVec(rng, 128)
	if _, _, err := PimGemv(rt, W2, 64, 128, x2); err != nil {
		t.Fatal(err)
	}
	check("after ad-hoc PimGemv")
}

// TestResidentGemvLoadUnload cycles load/run/unload and checks rows are
// returned, reuse works, and stale handles fail loudly.
func TestResidentGemvLoadUnload(t *testing.T) {
	rt := testRuntime(t, 2, true)
	freeBefore := rt.Drv.PIMRowsFree()
	const M, K = 32, 64
	rng := rand.New(rand.NewSource(9))
	W := randVec(rng, M*K)

	for cycle := 0; cycle < 5; cycle++ {
		g, err := LoadGemv(rt, W, M, K)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if g.Rows() <= 0 {
			t.Fatalf("cycle %d: resident model occupies %d rows", cycle, g.Rows())
		}
		if _, _, err := g.RunBatch(rt, []fp16.Vector{randVec(rng, K)}); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := g.Unload(rt); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if got := rt.Drv.PIMRowsFree(); got != freeBefore {
			t.Fatalf("cycle %d leaked PIM rows: %d free, want %d", cycle, got, freeBefore)
		}
	}

	g, err := LoadGemv(rt, W, M, K)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Unload(rt); err != nil {
		t.Fatal(err)
	}
	if err := g.Unload(rt); err == nil {
		t.Error("double unload accepted")
	}
	if _, _, err := g.RunBatch(rt, []fp16.Vector{randVec(rng, K)}); err == nil {
		t.Error("RunBatch on an unloaded model accepted")
	}
}

// TestResidentGemvBatchValidation covers the kernel-shape bound and
// operand checks.
func TestResidentGemvBatchValidation(t *testing.T) {
	rt := testRuntime(t, 2, true)
	rng := rand.New(rand.NewSource(3))
	const M, K = 16, 32
	g, err := LoadGemv(rt, randVec(rng, M*K), M, K)
	if err != nil {
		t.Fatal(err)
	}
	ok := randVec(rng, K)
	if _, _, err := g.RunBatch(rt, []fp16.Vector{ok, ok, ok}); err == nil {
		t.Error("batch larger than the channel count accepted")
	}
	if _, _, err := g.RunBatch(rt, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, _, err := g.RunBatch(rt, []fp16.Vector{randVec(rng, K-1)}); err == nil {
		t.Error("wrong-length input accepted")
	}
	if _, err := LoadGemv(testRuntime(t, 2, false), randVec(rng, M*K), M, K); err == nil {
		t.Error("LoadGemv accepted a timing-only device")
	}
}

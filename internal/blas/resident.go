package blas

import (
	"fmt"
	"sync/atomic"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
)

// Resident GEMV: the serving-side variant of PimGemv (resident weights +
// channel-sharded batching).
//
// PimGemv lays its weights out per call and deals output blocks across
// channels, so one request occupies the whole device and the layout cost
// is paid every time. An online inference server has the opposite shape:
// the model is fixed for hours and requests arrive one small input vector
// at a time. LoadGemv therefore writes the weight matrix once, and
// *replicates* it into every pseudo channel: each channel's units hold
// every output block. A batch of B <= C independent input vectors then
// maps one request per channel — channel c streams request c's inputs and
// computes the complete y for it — and because pseudo channels progress on
// independent clocks, the whole batch finishes in roughly the latency of
// one request. That is the dynamic-batching win, and it is bounded by the
// kernel's shape: the input splats ride the per-channel write datapath,
// which all units of a channel share, so requests on the same channel
// cannot overlap and the maximum batch is the channel count.
//
// The price of replication is macro passes: a channel folds its blocks
// over U units instead of C*U, so models with more than U*16 outputs pay
// ceil(blocks/U) sequential macros per request where the distributed
// layout pays ceil(blocks/(C*U)). Exactly the paper's batching trade-off
// (Section VII-B): batching restores utilization for small GEMVs but
// erodes the latency edge as the per-request work grows.

// ResidentGemv is a GEMV weight matrix loaded once into the PIM banks
// (replicated layout) and served repeatedly. It holds driver rows until
// Unload. Methods must not run concurrently on the same Runtime — the
// serving layer guarantees that by leasing a shard to one worker at a
// time.
type ResidentGemv struct {
	M, K int

	plan     *gemvPlan
	unloaded bool
}

// LoadGemv lays W (row-major M x K, FP16) out across every channel's
// banks and returns a handle for repeated batched execution. Requires a
// functional device: serving returns real outputs.
func LoadGemv(rt *runtime.Runtime, W fp16.Vector, M, K int) (*ResidentGemv, error) {
	if !rt.Cfg.Functional {
		return nil, fmt.Errorf("blas: LoadGemv requires a functional device")
	}
	if W == nil {
		return nil, fmt.Errorf("blas: LoadGemv requires weights")
	}
	if err := checkLen("W", W, M*K); err != nil {
		return nil, err
	}
	plan, err := planGemvLayout(rt, M, K, true)
	if err != nil {
		return nil, err
	}
	if err := plan.layoutWeights(rt, W); err != nil {
		_ = rt.Drv.FreePIMRows(plan.baseRow)
		return nil, err
	}
	return &ResidentGemv{M: M, K: K, plan: plan}, nil
}

// Rows returns the number of PIM rows the resident layout occupies (per
// bank, in every channel).
func (g *ResidentGemv) Rows() int { return g.plan.macros * g.plan.rowsPerMacro }

// RowRange returns the driver row span [base, base+n) holding the
// resident weights. The serving layer uses it to map an
// hbm.UncorrectableError's row back to the model whose weights sit on
// it, so the row can be quarantined and the model relocated.
func (g *ResidentGemv) RowRange() (base uint32, n int) {
	return g.plan.baseRow, g.Rows()
}

// MaxBatch returns the largest batch one kernel launch can carry: one
// request per pseudo channel.
func (g *ResidentGemv) MaxBatch(rt *runtime.Runtime) int { return rt.NumChannels() }

// Oracle computes the reference output for x in the device's exact
// accumulation order (RefGemvPIMOrder at the runtime's GRF depth), so
// callers can verify RunBatch results bit-for-bit. W must be the matrix
// the handle was loaded with — the banks hold it, the handle does not.
func (g *ResidentGemv) Oracle(rt *runtime.Runtime, W fp16.Vector, x fp16.Vector) fp16.Vector {
	return RefGemvPIMOrder(W, g.M, g.K, x, grfDepth(rt))
}

// Unload releases the weight rows. The handle is dead afterwards.
func (g *ResidentGemv) Unload(rt *runtime.Runtime) error {
	if g.unloaded {
		return fmt.Errorf("blas: ResidentGemv already unloaded")
	}
	g.unloaded = true
	return rt.Drv.FreePIMRows(g.plan.baseRow)
}

// RunBatch executes y_i = W*x_i for each input in xs (len(xs) <= the
// channel count) in a single kernel launch, one request per channel.
// Outputs are bit-exact against RefGemvPIMOrder per request. KernelStats
// covers the whole batch: Cycles is the slowest participating channel.
func (g *ResidentGemv) RunBatch(rt *runtime.Runtime, xs []fp16.Vector) ([]fp16.Vector, KernelStats, error) {
	B := len(xs)
	if B == 0 {
		return nil, KernelStats{}, fmt.Errorf("blas: empty batch")
	}
	for i, x := range xs {
		if x == nil {
			return nil, KernelStats{}, fmt.Errorf("blas: batch input %d has %d elements, want %d", i, len(x), g.K)
		}
	}
	return g.RunSlots(rt, xs)
}

// RunSlots is RunBatch with a sparse slot map: xs is indexed by pseudo
// channel and nil entries leave their channel idle (no commands, clock
// untouched). The continuous-batching stepper in internal/nn uses it to
// keep a sequence bound to one channel for its whole lifetime while
// other slots join and retire around it. ys is aligned with xs (nil for
// idle slots). At least one slot must be occupied.
func (g *ResidentGemv) RunSlots(rt *runtime.Runtime, xs []fp16.Vector) ([]fp16.Vector, KernelStats, error) {
	if g.unloaded {
		return nil, KernelStats{}, fmt.Errorf("blas: RunSlots on an unloaded model")
	}
	if len(xs) > rt.NumChannels() {
		return nil, KernelStats{}, fmt.Errorf("blas: batch %d exceeds %d channels (one request per channel)",
			len(xs), rt.NumChannels())
	}
	occupied := 0
	for i, x := range xs {
		if x == nil {
			continue
		}
		occupied++
		if len(x) != g.K {
			return nil, KernelStats{}, fmt.Errorf("blas: batch input %d has %d elements, want %d", i, len(x), g.K)
		}
	}
	if occupied == 0 {
		return nil, KernelStats{}, fmt.Errorf("blas: empty batch")
	}
	plan := g.plan
	ys := make([]fp16.Vector, len(xs))

	reg := beginRegion(rt)
	var triggers int64
	chErr := rt.ForEachChannel(func(ch int) error {
		if ch >= len(xs) || xs[ch] == nil {
			return nil // idle channel: no commands, clock untouched
		}
		x := xs[ch]
		xdata := make([][]byte, plan.Kp)
		for k := range xdata {
			if k < g.K {
				xdata[k] = splat(x[k])
			} else {
				xdata[k] = splat(fp16.Zero)
			}
		}
		y := fp16.NewVector(g.M)
		ys[ch] = y
		var chTriggers int64
		defer func() { atomic.AddInt64(&triggers, chTriggers) }()

		if err := rt.EnterAB(ch); err != nil {
			return err
		}
		for m := 0; m < plan.macros; m++ {
			if err := rt.ZeroGRF(ch); err != nil {
				return err
			}
			pass := 0
			lastProg := -1
			for pass < plan.passes {
				chunk := plan.passes - pass
				if chunk > maxPassesPerInvocation {
					chunk = maxPassesPerInvocation
				}
				srw := rt.Cfg.Variant == hbm.VariantSRW
				if chunk != lastProg {
					if err := rt.ProgramCRF(ch, gemvProgram(plan.G, chunk, srw)); err != nil {
						return err
					}
					lastProg = chunk
				}
				if err := rt.SetPIMMode(ch, true); err != nil {
					return err
				}
				openRow := uint32(0)
				rowOpen := false
				for e := 0; e < chunk; e++ {
					p := pass + e
					row, _ := plan.passRowCol(m, p, 0)
					if !rowOpen || row != openRow {
						if rowOpen {
							if err := rt.CloseRows(ch); err != nil {
								return err
							}
						}
						if err := rt.OpenRow(ch, row); err != nil {
							return err
						}
						openRow, rowOpen = row, true
					}
					_, col0 := plan.passRowCol(m, p, 0)
					if err := rt.TriggerWRRun(ch, 0, col0, plan.G, xdata[p*plan.G:(p+1)*plan.G]); err != nil {
						return err
					}
					chTriggers += int64(plan.G)
					rt.Fence(ch)
					if !srw {
						if err := rt.TriggerRDRun(ch, 0, col0, plan.G); err != nil {
							return err
						}
						chTriggers += int64(plan.G)
						rt.Fence(ch)
					}
				}
				if err := rt.CloseRows(ch); err != nil {
					return err
				}
				if err := rt.SetPIMMode(ch, false); err != nil {
					return err
				}
				pass += chunk
			}

			if err := rt.ExitToSB(ch); err != nil {
				return err
			}
			regs, err := rt.ReadGRFRowSB(ch, 1, plan.G)
			if err != nil {
				return err
			}
			for u := 0; u < plan.U; u++ {
				b := plan.block(m, u, ch)
				if b < 0 {
					continue
				}
				for lane := 0; lane < plan.lanes; lane++ {
					o := b*plan.lanes + lane
					if o >= g.M {
						continue
					}
					acc := fp16.Zero
					for i := 0; i < plan.G; i++ {
						acc = fp16.Add(acc, regs[u][i][lane])
					}
					y[o] = acc
				}
			}
			if m+1 < plan.macros {
				if err := rt.EnterAB(ch); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if chErr != nil {
		// %w keeps typed device errors (hbm.UncorrectableError) visible
		// to errors.As in the serving layer's retry classification.
		return nil, KernelStats{}, fmt.Errorf("blas: resident gemv batch: %w", chErr)
	}
	ks := reg.end()
	ks.Triggers = triggers
	return ys, ks, nil
}

package blas

import (
	"math/rand"
	"testing"

	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
)

// TestMultiTenantIsolation exercises the Section VIII claim: two tenants
// on disjoint channel partitions run independent kernels with correct
// results AND the exact cycle counts they would see running alone — the
// per-channel control makes PIM time-isolation free.
func TestMultiTenantIsolation(t *testing.T) {
	build := func() *runtime.Runtime {
		cfg := hbm.PIMHBMConfig(1000)
		cfg.PseudoChannels = 4
		cfg.Functional = true
		dev, err := hbm.NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}

	rng := rand.New(rand.NewSource(31))
	const M, K = 96, 64
	WA := randVec(rng, M*K)
	xA := randVec(rng, K)
	const N = 2000
	aB := randVec(rng, N)
	bB := randVec(rng, N)

	// Solo baselines: each tenant alone on a 2-channel view of a fresh
	// system.
	soloRT := build()
	tenants, err := soloRT.PartitionEven(2)
	if err != nil {
		t.Fatal(err)
	}
	ySolo, ksA, err := PimGemv(tenants[0], WA, M, K, xA)
	if err != nil {
		t.Fatal(err)
	}
	soloRT2 := build()
	tenants2, err := soloRT2.PartitionEven(2)
	if err != nil {
		t.Fatal(err)
	}
	cSolo, ksB, err := PimAdd(tenants2[1], aB, bB, N)
	if err != nil {
		t.Fatal(err)
	}

	// Shared system: both tenants run on one device, disjoint channels.
	shared := build()
	parts, err := shared.PartitionEven(2)
	if err != nil {
		t.Fatal(err)
	}
	yShared, ksA2, err := PimGemv(parts[0], WA, M, K, xA)
	if err != nil {
		t.Fatal(err)
	}
	cShared, ksB2, err := PimAdd(parts[1], aB, bB, N)
	if err != nil {
		t.Fatal(err)
	}

	// Results identical to solo runs.
	for i := range ySolo {
		if yShared[i] != ySolo[i] {
			t.Fatalf("tenant A y[%d] differs under sharing", i)
		}
	}
	for i := range cSolo {
		if cShared[i] != cSolo[i] {
			t.Fatalf("tenant B c[%d] differs under sharing", i)
		}
	}
	// Timing identical to solo runs: zero interference.
	if ksA2.Cycles != ksA.Cycles {
		t.Errorf("tenant A cycles %d shared vs %d solo", ksA2.Cycles, ksA.Cycles)
	}
	if ksB2.Cycles != ksB.Cycles {
		t.Errorf("tenant B cycles %d shared vs %d solo", ksB2.Cycles, ksB.Cycles)
	}
	// Tenant B's channels saw no PIM activity from tenant A: modes are
	// back to SB everywhere and each partition only drove its own chans.
	for ch := 0; ch < 4; ch++ {
		if m := shared.Chans[ch].PCH().Mode(); m != hbm.ModeSB {
			t.Errorf("channel %d left in %s", ch, m)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	cfg.PseudoChannels = 4
	cfg.Functional = false
	dev := hbm.MustNewDevice(cfg)
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Restrict(nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := rt.Restrict([]int{0, 0}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := rt.Restrict([]int{9}); err == nil {
		t.Error("out of range accepted")
	}
	if _, err := rt.PartitionEven(3); err == nil {
		t.Error("uneven split accepted")
	}
	parts, err := rt.PartitionEven(4)
	if err != nil || len(parts) != 4 {
		t.Fatalf("PartitionEven(4): %v", err)
	}
	if parts[2].NumChannels() != 1 {
		t.Error("partition size wrong")
	}
}

package blas

import (
	"math/rand"
	"testing"
)

// TestParallelKernelMetricsShards: under ParallelKernels every channel
// goroutine writes its own registry shard, so counters must survive the
// race detector and the merged totals must agree with the kernel's own
// bookkeeping — and with a sequential run of the same kernel.
func TestParallelKernelMetricsShards(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 1 << 15
	a, b := randVec(rng, n), randVec(rng, n)

	rt := testRuntime(t, 4, true)
	rt.ParallelKernels = true
	c, ks, err := PimAdd(rt, a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	want := RefAdd(a, b)
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d] wrong under parallel metrics run", i)
		}
	}

	snap := rt.Metrics.Snapshot()
	if got := snap.Counter("runtime_triggers_total"); got != ks.Triggers {
		t.Errorf("runtime_triggers_total = %d, kernel counted %d", got, ks.Triggers)
	}
	if got := snap.Counter("memctrl_fences_total"); got < ks.Fences || got == 0 {
		t.Errorf("memctrl_fences_total = %d, kernel counted %d", got, ks.Fences)
	}
	// Every channel ran part of the kernel, so every channel's shard must
	// hold a private nonzero slice of the trigger count.
	trig := rt.Metrics.Counter("runtime_triggers_total")
	var shardSum int64
	for ch := 0; ch < rt.NumChannels(); ch++ {
		v := trig.ShardValue(rt.Chans[ch].MetricsShard())
		if v == 0 {
			t.Errorf("channel %d recorded no triggers in its shard", ch)
		}
		shardSum += v
	}
	if shardSum != ks.Triggers {
		t.Errorf("shard sum %d != kernel triggers %d", shardSum, ks.Triggers)
	}
	// Device-side collector counters came along in the same snapshot.
	if snap.Counter("pim_instr_total{op=\"ADD\"}") == 0 {
		t.Error("collector did not surface per-op PIM retire counts")
	}
	if snap.Counter("hbm_mode_cycles_total{mode=\"AB-PIM\"}") == 0 {
		t.Error("collector did not surface mode residency")
	}

	// A sequential run of the same kernel must produce identical counter
	// totals — parallelism only changes which shard is written, not what.
	seqRT := testRuntime(t, 4, true)
	if _, _, err := PimAdd(seqRT, a, b, n); err != nil {
		t.Fatal(err)
	}
	seqSnap := seqRT.Metrics.Snapshot()
	for name, v := range snap.Counters {
		if got := seqSnap.Counters[name]; got != v {
			t.Errorf("%s: parallel %d vs sequential %d", name, v, got)
		}
	}
}

package blas

import (
	"math/rand"
	"sync"
	"testing"

	"pimsim/internal/fp16"
	"pimsim/internal/runtime"
)

// Concurrency audit for the serving layer (run under -race in CI).
//
// The server holds a pool of independent shards — one Runtime, Driver and
// Device each — and drives them from concurrent worker goroutines. The
// layers a shard touches keep all mutable state per-instance (channel
// clocks, bank storage, driver allocator, per-slot decode caches,
// per-pCH scratch buffers); the only cross-shard state is package-level
// lookup tables (fp16 conversion LUTs, ecc parity masks, isa name/combo
// tables), all built in package init() and read-only afterwards — Go
// guarantees init() completes before main or any test runs, so no
// sync.Once is needed. This test runs full GEMVs on two shards at once,
// with ParallelKernels adding intra-shard goroutines, and checks both
// results bit-exactly: any hidden shared mutable state shows up as a
// race report or a wrong lane.
func TestConcurrentShardsGemv(t *testing.T) {
	const (
		shards = 2
		M, K   = 64, 256
		iters  = 4
	)
	rts := make([]*testShard, shards)
	for i := range rts {
		rt := testRuntime(t, 2, true)
		rt.ParallelKernels = true
		rng := rand.New(rand.NewSource(int64(100 + i)))
		W := randVec(rng, M*K)
		g, err := LoadGemv(rt, W, M, K)
		if err != nil {
			t.Fatal(err)
		}
		rts[i] = &testShard{rt: rt, W: W, g: g, rng: rng}
	}

	var wg sync.WaitGroup
	errs := make([]error, shards)
	for i, sh := range rts {
		wg.Add(1)
		go func(i int, sh *testShard) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				// Alternate the resident batched path and the ad-hoc
				// PimGemv path: the server mixes both (model serving plus
				// load/unload traffic).
				xs := []fp16.Vector{randVec(sh.rng, K), randVec(sh.rng, K)}
				ys, _, err := sh.g.RunBatch(sh.rt, xs)
				if err != nil {
					errs[i] = err
					return
				}
				for bi, x := range xs {
					want := RefGemvPIMOrder(sh.W, M, K, x, grfDepth(sh.rt))
					for o := range want {
						if ys[bi][o] != want[o] {
							t.Errorf("shard %d iter %d: lane %d output %d mismatch", i, it, bi, o)
							return
						}
					}
				}
				x := randVec(sh.rng, K)
				y, _, err := PimGemv(sh.rt, sh.W, M, K, x)
				if err != nil {
					errs[i] = err
					return
				}
				want := RefGemvPIMOrder(sh.W, M, K, x, grfDepth(sh.rt))
				for o := range want {
					if y[o] != want[o] {
						t.Errorf("shard %d iter %d: ad-hoc output %d mismatch", i, it, o)
						return
					}
				}
			}
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
}

type testShard struct {
	rt  *runtime.Runtime
	W   fp16.Vector
	g   *ResidentGemv
	rng *rand.Rand
}

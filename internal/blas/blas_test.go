package blas

import (
	"math/rand"
	"testing"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
)

// testRuntime builds a small functional system: one device trimmed to a
// few pseudo channels so functional kernels run fast.
func testRuntime(t *testing.T, channels int, functional bool) *runtime.Runtime {
	t.Helper()
	cfg := hbm.PIMHBMConfig(1000)
	cfg.PseudoChannels = channels
	cfg.Functional = functional
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func randVec(rng *rand.Rand, n int) fp16.Vector {
	v := fp16.NewVector(n)
	for i := range v {
		v[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
	}
	return v
}

func TestPimGemvMatchesReference(t *testing.T) {
	cases := []struct{ M, K int }{
		{16, 8},    // single block, single pass
		{32, 16},   // two blocks
		{160, 64},  // fills one channel's units
		{130, 72},  // both dims need padding
		{300, 96},  // multiple macros (2ch x 8u x 16 = 256 < 300)
		{48, 1088}, // passes > 128: multiple invocations
		{64, 520},  // row switches (64 cols = 8 passes per row)
	}
	for _, c := range cases {
		rt := testRuntime(t, 2, true)
		rng := rand.New(rand.NewSource(int64(c.M*31 + c.K)))
		W := randVec(rng, c.M*c.K)
		x := randVec(rng, c.K)

		got, ks, err := PimGemv(rt, W, c.M, c.K, x)
		if err != nil {
			t.Fatalf("%dx%d: %v", c.M, c.K, err)
		}
		want := RefGemvPIMOrder(W, c.M, c.K, x, 8)
		for o := range want {
			if !fp16.Eq(got[o], want[o]) && got[o] != want[o] {
				t.Fatalf("%dx%d: y[%d] = %v, want %v", c.M, c.K, o, got[o], want[o])
			}
		}
		if ks.Cycles <= 0 || ks.Triggers <= 0 {
			t.Errorf("%dx%d: stats %+v", c.M, c.K, ks)
		}
		// PIM result should also be close to float32 math.
		f32 := HostGemvF32(W, c.M, c.K, x)
		if d := fp16.MaxAbsDiff(got, f32); d > 0.5 {
			t.Errorf("%dx%d: fp16 drift vs f32 = %v", c.M, c.K, d)
		}
	}
}

func TestPimGemvRejectsBadArgs(t *testing.T) {
	rt := testRuntime(t, 2, true)
	if _, _, err := PimGemv(rt, nil, 16, 8, nil); err == nil {
		t.Error("functional GEMV accepted nil operands")
	}
	if _, _, err := PimGemv(rt, fp16.NewVector(10), 16, 8, fp16.NewVector(8)); err == nil {
		t.Error("wrong W length accepted")
	}
	if _, _, err := PimGemv(rt, nil, 0, 8, nil); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestPimAddMatchesReference(t *testing.T) {
	for _, n := range []int{100, 512, 8192, 9000} {
		rt := testRuntime(t, 2, true)
		rng := rand.New(rand.NewSource(int64(n)))
		a := randVec(rng, n)
		b := randVec(rng, n)
		got, ks, err := PimAdd(rt, a, b, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := RefAdd(a, b)
		for i := range want {
			if got[i] != want[i] && !(got[i].IsNaN() && want[i].IsNaN()) {
				t.Fatalf("n=%d: c[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		if ks.Fences == 0 {
			t.Errorf("n=%d: no fences counted", n)
		}
	}
}

func TestPimMulMatchesReference(t *testing.T) {
	const n = 1000
	rt := testRuntime(t, 2, true)
	rng := rand.New(rand.NewSource(5))
	a := randVec(rng, n)
	b := randVec(rng, n)
	got, _, err := PimMul(rt, a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	want := RefMul(a, b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPimReLUMatchesReference(t *testing.T) {
	const n = 3000
	rt := testRuntime(t, 2, true)
	rng := rand.New(rand.NewSource(6))
	x := randVec(rng, n)
	got, _, err := PimReLU(rt, x, n)
	if err != nil {
		t.Fatal(err)
	}
	want := RefReLU(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v (x=%v)", i, got[i], want[i], x[i])
		}
	}
}

func TestPimBNMatchesReference(t *testing.T) {
	const n = 2000
	rt := testRuntime(t, 2, true)
	rng := rand.New(rand.NewSource(7))
	x := randVec(rng, n)
	gamma := fp16.FromFloat32(1.25)
	beta := fp16.FromFloat32(-0.5)
	got, _, err := PimBN(rt, x, n, gamma, beta)
	if err != nil {
		t.Fatal(err)
	}
	want := RefBN(x, gamma, beta)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPimLSTMCellMatchesHostMath(t *testing.T) {
	const H, X = 32, 48
	rt := testRuntime(t, 2, true)
	rng := rand.New(rand.NewSource(8))
	w := LSTMWeights{
		Wx: randVec(rng, 4*H*X),
		Wh: randVec(rng, 4*H*H),
		B:  randVec(rng, 4*H),
		X:  X, H: H,
	}
	x := randVec(rng, X)
	h := randVec(rng, H)
	c := randVec(rng, H)

	ph, pc, ks, err := PimLSTMCell(rt, w, x, h, c)
	if err != nil {
		t.Fatal(err)
	}
	hh, hc, err := HostLSTMCell(w, x, h, c)
	if err != nil {
		t.Fatal(err)
	}
	// PIM accumulates in fp16, host in f32; gate saturation keeps the
	// divergence small.
	if d := fp16.MaxAbsDiff(ph, hh); d > 0.05 {
		t.Errorf("h diverged by %v", d)
	}
	if d := fp16.MaxAbsDiff(pc, hc); d > 0.10 {
		t.Errorf("c diverged by %v", d)
	}
	if ks.Cycles <= 0 {
		t.Error("no cycles measured")
	}
}

func TestTimingOnlyKernels(t *testing.T) {
	rt := testRuntime(t, 2, false)
	_, ks, err := PimGemv(rt, nil, 256, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 256/8 = 32 passes x 16 triggers per channel.
	if want := int64(2 * 32 * 16); ks.Triggers != want {
		t.Errorf("triggers = %d, want %d", ks.Triggers, want)
	}
	if ks.Cycles <= 0 {
		t.Error("no cycles")
	}
	if _, _, err := PimAdd(rt, nil, nil, 1<<16); err != nil {
		t.Fatal(err)
	}
}

func TestGemvThroughputSane(t *testing.T) {
	rt := testRuntime(t, 1, false)
	const M, K = 128, 4096
	_, ks, err := PimGemv(rt, nil, M, K, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Weight bytes consumed by the channel's units.
	weightBytes := float64(M * K * 2)
	bpc := weightBytes / float64(ks.Cycles)
	// The fenced kernel should land between ~0.5x and ~4x of the off-chip
	// per-channel streaming rate (16 B/cycle at 1 GHz): well above a
	// bandwidth-starved design, below the no-overhead 64 B/cycle ceiling.
	if bpc < 8 || bpc > 64 {
		t.Errorf("GEMV weight throughput = %.1f B/cycle, expected 8-64", bpc)
	}
}

func TestGuaranteeOrderSpeedsUpGemv(t *testing.T) {
	run := func(order bool) int64 {
		rt := testRuntime(t, 1, false)
		rt.SetGuaranteeOrder(order)
		_, ks, err := PimGemv(rt, nil, 128, 4096, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ks.Cycles
	}
	fenced := run(false)
	free := run(true)
	speedup := float64(fenced) / float64(free)
	// Section VII-B: removing fences yields around 2x on microbenchmarks.
	if speedup < 1.3 || speedup > 3.5 {
		t.Errorf("fence-removal speedup = %.2f, expected ~2x", speedup)
	}
}

func TestAddStoresDoNotCorruptInputs(t *testing.T) {
	// The ADD result region (odd columns 32-63) must not alias b (odd
	// columns 0-31): add twice and re-check.
	const n = 600
	rt := testRuntime(t, 2, true)
	rng := rand.New(rand.NewSource(11))
	a := randVec(rng, n)
	b := randVec(rng, n)
	first, _, err := PimAdd(rt, a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := PimAdd(rt, a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run-to-run mismatch at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

// TestParallelKernelsDeterministic: driving each channel from its own
// goroutine must not change results or cycle counts — channels are fully
// independent simulated clock domains.
func TestParallelKernelsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	const M, K = 192, 128
	W := randVec(rng, M*K)
	x := randVec(rng, K)

	seqRT := testRuntime(t, 4, true)
	seqY, seqKS, err := PimGemv(seqRT, W, M, K, x)
	if err != nil {
		t.Fatal(err)
	}

	parRT := testRuntime(t, 4, true)
	parRT.ParallelKernels = true
	parY, parKS, err := PimGemv(parRT, W, M, K, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqY {
		if parY[i] != seqY[i] {
			t.Fatalf("y[%d] differs under parallel execution", i)
		}
	}
	if parKS.Cycles != seqKS.Cycles || parKS.Triggers != seqKS.Triggers {
		t.Errorf("stats differ: %+v vs %+v", parKS, seqKS)
	}

	// Same for an elementwise kernel.
	const n = 5000
	a := randVec(rng, n)
	b := randVec(rng, n)
	c1, k1, err := PimAdd(testRuntime(t, 4, true), a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := testRuntime(t, 4, true)
	rt2.ParallelKernels = true
	c2, k2, err := PimAdd(rt2, a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("c[%d] differs under parallel execution", i)
		}
	}
	if k1.Cycles != k2.Cycles {
		t.Errorf("ADD cycles differ: %d vs %d", k1.Cycles, k2.Cycles)
	}
}

// TestTimingFunctionalCycleParity: the timing-only fast path issues the
// exact command stream the functional path does — data never affects
// timing. Cycle counts match to within refresh-phase alignment (the
// functional region starts after the layout writes, so tREFI boundaries
// fall at different offsets inside the two regions).
func TestTimingFunctionalCycleParity(t *testing.T) {
	const M, K = 128, 256
	rng := rand.New(rand.NewSource(66))
	W := randVec(rng, M*K)
	x := randVec(rng, K)

	fRT := testRuntime(t, 2, true)
	_, fKS, err := PimGemv(fRT, W, M, K, x)
	if err != nil {
		t.Fatal(err)
	}
	tRT := testRuntime(t, 2, false)
	_, tKS, err := PimGemv(tRT, nil, M, K, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fKS.Triggers != tKS.Triggers || fKS.Fences != tKS.Fences {
		t.Errorf("command counts differ: functional %+v vs timing-only %+v", fKS, tKS)
	}
	if d := fKS.Cycles - tKS.Cycles; d > 64 || d < -64 {
		t.Errorf("cycles diverged by %d: functional %d vs timing-only %d", d, fKS.Cycles, tKS.Cycles)
	}

	const n = 4000
	a, b := randVec(rng, n), randVec(rng, n)
	_, fK2, err := PimAdd(testRuntime(t, 2, true), a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	_, tK2, err := PimAdd(testRuntime(t, 2, false), nil, nil, n)
	if err != nil {
		t.Fatal(err)
	}
	if d := fK2.Cycles - tK2.Cycles; d > 64 || d < -64 {
		t.Errorf("ADD cycles diverged by %d: functional %d vs timing-only %d", d, fK2.Cycles, tK2.Cycles)
	}
}

package blas

import (
	"fmt"
	"sort"
	"sync/atomic"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/runtime"
)

// Elementwise kernels: ADD (residual connections), MUL, ReLU, and BN (the
// Fig. 14 batch-normalization microbenchmark, y = gamma*x + beta through
// the scalar register file).
//
// Binary layout (c = a op b): element blocks of 512 stripe across
// (channel, unit); within one bank-pair row, a occupies even-bank columns
// 0-31, b the same odd-bank columns, and c lands in odd-bank columns
// 32-63. The microkernel is the paper's ADD flow: G loads, G computes, G
// stores per AAM window, a fence after each batch — the GRF-limited
// pattern that caps ADD at ~1.6x (Section VII-B).
//
// Unary layout (y = f(x)): x fills even-bank columns 0-63, y the same
// odd-bank columns.

type eltOp int

const (
	opAdd eltOp = iota
	opMul
	opReLU
	opBN
)

func (o eltOp) binary() bool { return o == opAdd || o == opMul }

func (o eltOp) String() string {
	return [...]string{"ADD", "MUL", "RELU", "BN"}[o]
}

// eltProgram builds the microkernel for `visits` row visits. twoBank
// models the PIM-HBM-2BA variant (Fig. 14): the compute instruction reads
// both banks at once, so the separate load batch disappears — the stand-in
// instruction keeps the same command count and timing (the 2BA datapath is
// timing-only in this reproduction, like the paper's DRAMSim2 study).
func eltProgram(op eltOp, g, chunksPerVisit, visits int, twoBank bool) []isa.Instruction {
	var body []isa.Instruction
	switch op {
	case opAdd, opMul:
		alu := isa.ADD
		if op == opMul {
			alu = isa.MUL
		}
		body = []isa.Instruction{
			{Op: isa.MOV, Dst: isa.GRFA, Src0: isa.EvenBank, AAM: true},
			isa.Jump(g-1, 1),
			{Op: alu, Dst: isa.GRFA, Src0: isa.GRFA, Src1: isa.OddBank, AAM: true},
			isa.Jump(g-1, 1),
			{Op: isa.MOV, Dst: isa.OddBank, Src0: isa.GRFA, AAM: true},
			isa.Jump(g-1, 1),
		}
		if twoBank {
			body = body[2:] // the dual-bank ALU op subsumes the load
		}
	case opReLU:
		body = []isa.Instruction{
			{Op: isa.MOV, Dst: isa.GRFA, Src0: isa.EvenBank, AAM: true, ReLU: true},
			isa.Jump(g-1, 1),
			{Op: isa.MOV, Dst: isa.OddBank, Src0: isa.GRFA, AAM: true},
			isa.Jump(g-1, 1),
		}
	case opBN:
		body = []isa.Instruction{
			{Op: isa.MAD, Dst: isa.GRFA, Src0: isa.EvenBank, Src1: isa.SRFM, AAM: true},
			isa.Jump(g-1, 1),
			{Op: isa.MOV, Dst: isa.OddBank, Src0: isa.GRFA, AAM: true},
			isa.Jump(g-1, 1),
		}
	}
	prog := append([]isa.Instruction{}, body...)
	prog = append(prog,
		isa.Jump(chunksPerVisit-1, len(body)),
		isa.Jump(visits-1, len(body)+1),
		isa.Exit(),
	)
	return prog
}

type eltPlan struct {
	op             eltOp
	N              int
	C, U, G, lanes int
	inCols         int  // input columns per row visit
	sameBank       bool // one bank per unit: operands split by column instead
	perVisit       int  // elements per (channel, unit) row visit
	visits         int
	chunksPerVisit int
	baseRow        uint32
}

func planElt(rt *runtime.Runtime, op eltOp, n int) (*eltPlan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("blas: %s size %d", op, n)
	}
	p := &eltPlan{
		op: op, N: n,
		C: rt.NumChannels(), U: rt.Cfg.PIMUnits,
		G: grfDepth(rt), lanes: fp16.Lanes,
	}
	p.sameBank = rt.Cfg.Banks()/rt.Cfg.PIMUnits == 1
	cols := rt.Cfg.ColumnsPerRow()
	switch {
	case op.binary() && p.sameBank:
		p.inCols = cols / 4 // a, b and c each take a column stripe
	case op.binary():
		p.inCols = cols / 2 // a even bank, b odd bank, c shares the odd row
	case p.sameBank:
		p.inCols = cols / 2 // x and y split one bank's row
	default:
		p.inCols = cols
	}
	p.perVisit = p.inCols * p.lanes
	p.chunksPerVisit = p.inCols / p.G
	p.visits = ceilDiv(n, p.perVisit*p.C*p.U)
	base, err := rt.Drv.AllocPIMRows(p.visits)
	if err != nil {
		return nil, err
	}
	p.baseRow = base
	return p, nil
}

// operand placement relative to the layout: bank index within the unit's
// bank group and the absolute column offset.
func (p *eltPlan) srcB() (bankOff int, colOff uint32) {
	if p.sameBank {
		return 0, uint32(p.inCols)
	}
	return 1, 0
}

func (p *eltPlan) dst() (bankOff int, colOff uint32) {
	switch {
	case p.op.binary() && p.sameBank:
		return 0, uint32(2 * p.inCols)
	case p.op.binary():
		return 1, uint32(p.inCols)
	case p.sameBank:
		return 0, uint32(p.inCols)
	default:
		return 1, 0
	}
}

// locate maps an element index to its (channel, unit, visit, col, lane).
func (p *eltPlan) locate(idx int) (ch, u, visit int, col uint32, lane int) {
	blk := idx / p.perVisit
	within := idx % p.perVisit
	ch = blk % p.C
	u = (blk / p.C) % p.U
	visit = blk / (p.C * p.U)
	col = uint32(within / p.lanes)
	lane = within % p.lanes
	return
}

// layout writes the operand vectors into the banks.
func (p *eltPlan) layout(rt *runtime.Runtime, a, b fp16.Vector) error {
	banksPerUnit := rt.Cfg.Banks() / rt.Cfg.PIMUnits
	rowWidth := rt.Cfg.ColumnsPerRow()
	// Accumulate per (ch, bank, visit) rows then flush row-wise.
	type rowKey struct{ ch, bank, visit int }
	rows := make(map[rowKey][]fp16.Vector)
	fill := func(src fp16.Vector, sel int, colOff uint32) {
		for idx := 0; idx < p.N && idx < len(src); idx++ {
			ch, u, visit, col, lane := p.locate(idx)
			bank := u*banksPerUnit + sel*(banksPerUnit-1)
			key := rowKey{ch, bank, visit}
			vecs := rows[key]
			if vecs == nil {
				vecs = make([]fp16.Vector, rowWidth)
				for i := range vecs {
					vecs[i] = fp16.NewVector(p.lanes)
				}
				rows[key] = vecs
			}
			vecs[colOff+col][lane] = src[idx]
		}
	}
	fill(a, 0, 0)
	if b != nil {
		sel, off := p.srcB()
		fill(b, sel, off)
	}
	// Deterministic write order: map iteration order would otherwise leak
	// into the banks' residual timing state and make kernel cycle counts
	// vary run to run.
	keys := make([]rowKey, 0, len(rows))
	for key := range rows {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.ch != b.ch {
			return a.ch < b.ch
		}
		if a.bank != b.bank {
			return a.bank < b.bank
		}
		return a.visit < b.visit
	})
	for _, key := range keys {
		vecs := rows[key]
		cols := make([]uint32, len(vecs))
		data := make([][]byte, len(vecs))
		for i := range vecs {
			cols[i] = uint32(i)
			data[i] = vecs[i].Bytes()
		}
		if err := rt.WriteBankRowSB(key.ch, key.bank, p.baseRow+uint32(key.visit), cols, data); err != nil {
			return err
		}
	}
	return nil
}

// run drives the microkernel across every channel and returns the result
// (functional mode) and kernel stats.
func runElt(rt *runtime.Runtime, op eltOp, n int, a, b fp16.Vector, gamma, beta fp16.F16) (fp16.Vector, KernelStats, error) {
	functional := rt.Cfg.Functional
	twoBank := rt.Cfg.Variant == hbm.Variant2BA && op.binary()
	if twoBank && functional {
		return nil, KernelStats{}, fmt.Errorf("blas: the 2BA variant is timing-only (set Config.Functional=false)")
	}
	if functional {
		if err := checkLen("a", a, n); err != nil {
			return nil, KernelStats{}, err
		}
		if op.binary() {
			if err := checkLen("b", b, n); err != nil {
				return nil, KernelStats{}, err
			}
			if b == nil {
				return nil, KernelStats{}, fmt.Errorf("blas: %s requires two operands", op)
			}
		}
		if a == nil {
			return nil, KernelStats{}, fmt.Errorf("blas: functional device requires operands")
		}
	}
	plan, err := planElt(rt, op, n)
	if err != nil {
		return nil, KernelStats{}, err
	}
	defer func() { _ = rt.Drv.FreePIMRows(plan.baseRow) }()
	if functional {
		if err := plan.layout(rt, a, b); err != nil {
			return nil, KernelStats{}, err
		}
	}

	batches := 2 // load, store
	if op.binary() && !twoBank {
		batches = 3 // load, compute, store
	}

	reg := beginRegion(rt)
	var triggers int64
	chErr := rt.ForEachChannel(func(ch int) error {
		var chTriggers int64
		defer func() { atomic.AddInt64(&triggers, chTriggers) }()
		if err := rt.EnterAB(ch); err != nil {
			return err
		}
		if op == opBN {
			m := make([]fp16.F16, isa.SRFEntries)
			ad := make([]fp16.F16, isa.SRFEntries)
			for i := range m {
				m[i], ad[i] = gamma, beta
			}
			if err := rt.ProgramSRF(ch, m, ad); err != nil {
				return err
			}
		}
		visit := 0
		lastProg := -1
		for visit < plan.visits {
			chunk := plan.visits - visit
			if chunk > maxPassesPerInvocation {
				chunk = maxPassesPerInvocation
			}
			if chunk != lastProg {
				if err := rt.ProgramCRF(ch, eltProgram(op, plan.G, plan.chunksPerVisit, chunk, twoBank)); err != nil {
					return err
				}
				lastProg = chunk
			}
			if err := rt.SetPIMMode(ch, true); err != nil {
				return err
			}
			for v := visit; v < visit+chunk; v++ {
				if err := rt.OpenRow(ch, plan.baseRow+uint32(v)); err != nil {
					return err
				}
				selB, offB := plan.srcB()
				selD, offD := plan.dst()
				for c := 0; c < plan.chunksPerVisit; c++ {
					for batch := 0; batch < batches; batch++ {
						for i := 0; i < plan.G; i++ {
							col := uint32(c*plan.G + i)
							// Shadow the enclosing err: channel goroutines
							// must not share a result slot.
							var err error
							switch {
							case batch == batches-1: // store the result
								err = rt.TriggerWR(ch, selD, offD+col, nil)
							case batch == 0 && op.binary() && !twoBank: // load a
								err = rt.TriggerRD(ch, 0, col)
							case op.binary(): // compute with b (2BA reads both)
								err = rt.TriggerRD(ch, selB, offB+col)
							default: // unary load+compute
								err = rt.TriggerRD(ch, 0, col)
							}
							if err != nil {
								return err
							}
							chTriggers++
						}
						rt.Fence(ch)
					}
				}
				if err := rt.CloseRows(ch); err != nil {
					return err
				}
			}
			if err := rt.SetPIMMode(ch, false); err != nil {
				return err
			}
			visit += chunk
		}
		if err := rt.ExitToSB(ch); err != nil {
			return err
		}
		return nil
	})
	if chErr != nil {
		return nil, KernelStats{}, chErr
	}
	ks := reg.end()
	ks.Triggers = triggers

	if !functional {
		return nil, ks, nil
	}

	// Read the results back from the destination stripe.
	out := fp16.NewVector(n)
	banksPerUnit := rt.Cfg.Banks() / rt.Cfg.PIMUnits
	selD, colOff := plan.dst()
	cols := make([]uint32, plan.inCols)
	for i := range cols {
		cols[i] = colOff + uint32(i)
	}
	type rowKey struct{ ch, u, visit int }
	cache := make(map[rowKey][][]byte)
	for idx := 0; idx < n; idx++ {
		ch, u, visit, col, lane := plan.locate(idx)
		key := rowKey{ch, u, visit}
		blocks, ok := cache[key]
		if !ok {
			dstBank := u*banksPerUnit + selD*(banksPerUnit-1)
			blocks, err = rt.ReadBankRowSB(ch, dstBank, plan.baseRow+uint32(visit), cols)
			if err != nil {
				return nil, ks, err
			}
			cache[key] = blocks
		}
		v := fp16.VectorFromBytes(blocks[col])
		out[idx] = v[lane]
	}
	return out, ks, nil
}

// PimAdd computes c[i] = a[i] + b[i] on the PIM units.
func PimAdd(rt *runtime.Runtime, a, b fp16.Vector, n int) (fp16.Vector, KernelStats, error) {
	return runElt(rt, opAdd, n, a, b, fp16.Zero, fp16.Zero)
}

// PimMul computes c[i] = a[i] * b[i] on the PIM units.
func PimMul(rt *runtime.Runtime, a, b fp16.Vector, n int) (fp16.Vector, KernelStats, error) {
	return runElt(rt, opMul, n, a, b, fp16.Zero, fp16.Zero)
}

// PimReLU computes y[i] = max(x[i], 0) on the PIM units.
func PimReLU(rt *runtime.Runtime, x fp16.Vector, n int) (fp16.Vector, KernelStats, error) {
	return runElt(rt, opReLU, n, x, nil, fp16.Zero, fp16.Zero)
}

// PimBN computes y[i] = gamma*x[i] + beta on the PIM units (the folded
// inference form of batch normalization).
func PimBN(rt *runtime.Runtime, x fp16.Vector, n int, gamma, beta fp16.F16) (fp16.Vector, KernelStats, error) {
	return runElt(rt, opBN, n, x, nil, gamma, beta)
}

// Host references with the PIM datapath's exact rounding.

// RefAdd returns elementwise a+b in FP16.
func RefAdd(a, b fp16.Vector) fp16.Vector {
	out := fp16.NewVector(len(a))
	return fp16.AddVec(out, a, b)
}

// RefMul returns elementwise a*b in FP16.
func RefMul(a, b fp16.Vector) fp16.Vector {
	out := fp16.NewVector(len(a))
	return fp16.MulVec(out, a, b)
}

// RefReLU returns elementwise max(x,0).
func RefReLU(x fp16.Vector) fp16.Vector {
	out := fp16.NewVector(len(x))
	return fp16.ReLUVec(out, x)
}

// RefBN returns elementwise gamma*x+beta with MAD rounding.
func RefBN(x fp16.Vector, gamma, beta fp16.F16) fp16.Vector {
	out := fp16.NewVector(len(x))
	for i, v := range x {
		out[i] = fp16.MAD(v, gamma, beta)
	}
	return out
}

package blas

import (
	"fmt"
	"sync/atomic"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/runtime"
)

// GEMV on PIM-HBM (the paper's flagship kernel, Section V-A / Fig. 7).
//
// y = W*x with W row-major (M outputs x K inputs), all FP16.
//
// Data layout: outputs are tiled into blocks of 16 (one SIMD lane each).
// Block b is owned by channel b%C, unit (b/C)%U, macro-pass (b/C)/U. The
// owning unit's even bank holds the block's weights: during pass p the
// kernel consumes inputs k = p*G .. p*G+G-1 (G = GRF depth, 8), and
// column (p%passesPerRow)*G + i of the pass's row holds the 16 lane
// weights W[block*16+lane][p*G+i].
//
// Microkernel (programmed once per invocation of <= 128 passes):
//
//	MOV(AAM)  GRF_A, EVEN_BANK        ; G WR triggers push x splats
//	JUMP -1, G-1
//	MAC(AAM)  GRF_B, GRF_A, EVEN_BANK ; G RD triggers accumulate
//	JUMP -1, G-1
//	JUMP -4, passes-1
//	EXIT
//
// GRF_B[i][lane] accumulates the partial sum over inputs k = i (mod G);
// the host folds the G partial registers after reading them back through
// the SB register space (the result unload).
type gemvPlan struct {
	M, K   int // logical dims
	Mp, Kp int // padded dims
	C      int // channels
	U      int // units per channel
	G      int // GRF depth = pass size = AAM window
	lanes  int

	blocks       int
	macros       int
	passes       int // per macro
	passesPerRow int
	rowsPerMacro int
	baseRow      uint32

	// replicated is the serving layout (resident.go): every channel holds
	// every output block, so each channel can compute a complete y for its
	// own input vector and a batch maps one request per channel.
	replicated bool
}

func planGemv(rt *runtime.Runtime, M, K int) (*gemvPlan, error) {
	return planGemvLayout(rt, M, K, false)
}

func planGemvLayout(rt *runtime.Runtime, M, K int, replicated bool) (*gemvPlan, error) {
	if M <= 0 || K <= 0 {
		return nil, fmt.Errorf("blas: gemv dims %dx%d", M, K)
	}
	p := &gemvPlan{
		M: M, K: K,
		C:          rt.NumChannels(),
		U:          rt.Cfg.PIMUnits,
		G:          grfDepth(rt),
		lanes:      fp16.Lanes,
		replicated: replicated,
	}
	p.Kp = ceilDiv(K, p.G) * p.G
	p.Mp = ceilDiv(M, p.lanes) * p.lanes
	p.blocks = p.Mp / p.lanes
	if replicated {
		// Every channel computes every block for its own input, so the
		// macro count is bounded by the units of one channel alone.
		p.macros = ceilDiv(p.blocks, p.U)
	} else {
		p.macros = ceilDiv(p.blocks, p.C*p.U)
	}
	p.passes = p.Kp / p.G
	p.passesPerRow = rt.Cfg.ColumnsPerRow() / p.G
	p.rowsPerMacro = ceilDiv(p.passes, p.passesPerRow)
	base, err := rt.Drv.AllocPIMRows(p.macros * p.rowsPerMacro)
	if err != nil {
		return nil, err
	}
	p.baseRow = base
	return p, nil
}

// block returns the output block owned by (macro, unit, channel), or -1.
func (p *gemvPlan) block(macro, unit, ch int) int {
	var b int
	if p.replicated {
		b = macro*p.U + unit // identical block set in every channel
	} else {
		b = (macro*p.U+unit)*p.C + ch
	}
	if b >= p.blocks {
		return -1
	}
	return b
}

// passRowCol locates pass p, lane-input i within a macro.
func (p *gemvPlan) passRowCol(macro, pass, i int) (uint32, uint32) {
	row := p.baseRow + uint32(macro*p.rowsPerMacro+pass/p.passesPerRow)
	col := uint32((pass%p.passesPerRow)*p.G + i)
	return row, col
}

// layoutWeights writes W into the banks (functional mode setup; the PIM
// BLAS does this once when the host loads the model, Section VIII).
func (p *gemvPlan) layoutWeights(rt *runtime.Runtime, W fp16.Vector) error {
	banksPerUnit := rt.Cfg.Banks() / rt.Cfg.PIMUnits
	cols := make([]uint32, 0, rt.Cfg.ColumnsPerRow())
	data := make([][]byte, 0, rt.Cfg.ColumnsPerRow())
	// Reusable payload buffers: WriteBankRowSB copies into bank storage, so
	// the entries pending between flushes (at most one row's worth) can
	// share one set of buffers instead of allocating two objects per column.
	bufs := make([][]byte, rt.Cfg.ColumnsPerRow())
	for i := range bufs {
		bufs[i] = make([]byte, 2*p.lanes)
	}
	vec := fp16.NewVector(p.lanes)
	for ch := 0; ch < p.C; ch++ {
		for u := 0; u < p.U; u++ {
			evenBank := u * banksPerUnit
			for m := 0; m < p.macros; m++ {
				b := p.block(m, u, ch)
				if b < 0 {
					continue
				}
				var curRow uint32
				cols, data = cols[:0], data[:0]
				flush := func() error {
					if len(cols) == 0 {
						return nil
					}
					err := rt.WriteBankRowSB(ch, evenBank, curRow, cols, data)
					cols, data = cols[:0], data[:0]
					return err
				}
				for pass := 0; pass < p.passes; pass++ {
					row, _ := p.passRowCol(m, pass, 0)
					if len(cols) > 0 && row != curRow {
						if err := flush(); err != nil {
							return err
						}
					}
					curRow = row
					for i := 0; i < p.G; i++ {
						_, col := p.passRowCol(m, pass, i)
						k := pass*p.G + i
						for lane := 0; lane < p.lanes; lane++ {
							var w fp16.F16
							if k < p.K {
								if o := b*p.lanes + lane; o < p.M {
									w = W[o*p.K+k]
								}
							}
							vec[lane] = w
						}
						buf := bufs[len(data)]
						vec.PutBytes(buf)
						cols = append(cols, col)
						data = append(data, buf)
					}
				}
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// gemvProgram builds the microkernel for an invocation of n passes. The
// SRW variant forwards the write datapath straight into the GRF while the
// bank read proceeds (Fig. 14), merging the vector-load batch into the
// MAC batch: one WR command per input instead of a WR plus an RD.
func gemvProgram(g, n int, srw bool) []isa.Instruction {
	if srw {
		return []isa.Instruction{
			{Op: isa.MAC, Dst: isa.GRFB, Src0: isa.GRFA, Src1: isa.EvenBank, AAM: true},
			isa.Jump(g-1, 1),
			isa.Jump(n-1, 2),
			isa.Exit(),
		}
	}
	return []isa.Instruction{
		{Op: isa.MOV, Dst: isa.GRFA, Src0: isa.EvenBank, AAM: true},
		isa.Jump(g-1, 1),
		{Op: isa.MAC, Dst: isa.GRFB, Src0: isa.GRFA, Src1: isa.EvenBank, AAM: true},
		isa.Jump(g-1, 1),
		isa.Jump(n-1, 4),
		isa.Exit(),
	}
}

// maxPassesPerInvocation is bounded by the 7-bit JUMP iteration field.
const maxPassesPerInvocation = isa.MaxLoopIter + 1

// PimGemv runs y = W*x on the PIM execution units. In functional mode
// (device Config.Functional) W and x must be provided and the numeric
// result is returned; in timing-only mode pass nil operands and only
// KernelStats is meaningful.
func PimGemv(rt *runtime.Runtime, W fp16.Vector, M, K int, x fp16.Vector) (fp16.Vector, KernelStats, error) {
	functional := rt.Cfg.Functional
	if functional {
		if err := checkLen("W", W, M*K); err != nil {
			return nil, KernelStats{}, err
		}
		if err := checkLen("x", x, K); err != nil {
			return nil, KernelStats{}, err
		}
		if W == nil || x == nil {
			return nil, KernelStats{}, fmt.Errorf("blas: functional device requires W and x")
		}
	}
	plan, err := planGemv(rt, M, K)
	if err != nil {
		return nil, KernelStats{}, err
	}
	// Scoped free: only this kernel's rows, so resident weights (served
	// models) in neighbouring spans survive ad-hoc GEMV calls.
	defer func() { _ = rt.Drv.FreePIMRows(plan.baseRow) }()

	if functional {
		if err := plan.layoutWeights(rt, W); err != nil {
			return nil, KernelStats{}, err
		}
	}

	// Pre-build the splat payloads once.
	var xdata [][]byte
	if functional {
		xdata = make([][]byte, plan.Kp)
		for k := range xdata {
			if k < K {
				xdata[k] = splat(x[k])
			} else {
				xdata[k] = splat(fp16.Zero)
			}
		}
	}

	var y fp16.Vector
	if functional {
		y = fp16.NewVector(M)
	}

	reg := beginRegion(rt)
	var triggers int64
	chErr := rt.ForEachChannel(func(ch int) error {
		var chTriggers int64
		defer func() { atomic.AddInt64(&triggers, chTriggers) }()
		if err := rt.EnterAB(ch); err != nil {
			return err
		}
		for m := 0; m < plan.macros; m++ {
			if err := rt.ZeroGRF(ch); err != nil {
				return err
			}
			pass := 0
			lastProg := -1
			for pass < plan.passes {
				chunk := plan.passes - pass
				if chunk > maxPassesPerInvocation {
					chunk = maxPassesPerInvocation
				}
				srw := rt.Cfg.Variant == hbm.VariantSRW
				if chunk != lastProg {
					if err := rt.ProgramCRF(ch, gemvProgram(plan.G, chunk, srw)); err != nil {
						return err
					}
					lastProg = chunk
				}
				if err := rt.SetPIMMode(ch, true); err != nil {
					return err
				}
				openRow := uint32(0)
				rowOpen := false
				for e := 0; e < chunk; e++ {
					p := pass + e
					row, _ := plan.passRowCol(m, p, 0)
					if !rowOpen || row != openRow {
						if rowOpen {
							if err := rt.CloseRows(ch); err != nil {
								return err
							}
						}
						if err := rt.OpenRow(ch, row); err != nil {
							return err
						}
						openRow, rowOpen = row, true
					}
					_, col0 := plan.passRowCol(m, p, 0)
					var data [][]byte
					if functional {
						data = xdata[p*plan.G : (p+1)*plan.G]
					}
					if err := rt.TriggerWRRun(ch, 0, col0, plan.G, data); err != nil {
						return err
					}
					chTriggers += int64(plan.G)
					rt.Fence(ch)
					if !srw {
						if err := rt.TriggerRDRun(ch, 0, col0, plan.G); err != nil {
							return err
						}
						chTriggers += int64(plan.G)
						rt.Fence(ch)
					}
				}
				if err := rt.CloseRows(ch); err != nil {
					return err
				}
				if err := rt.SetPIMMode(ch, false); err != nil {
					return err
				}
				pass += chunk
			}

			// Unload GRF_B through the SB register space and fold.
			if err := rt.ExitToSB(ch); err != nil {
				return err
			}
			regs, err := rt.ReadGRFRowSB(ch, 1, plan.G)
			if err != nil {
				return err
			}
			if functional {
				for u := 0; u < plan.U; u++ {
					b := plan.block(m, u, ch)
					if b < 0 {
						continue
					}
					for lane := 0; lane < plan.lanes; lane++ {
						o := b*plan.lanes + lane
						if o >= M {
							continue
						}
						acc := fp16.Zero
						for i := 0; i < plan.G; i++ {
							acc = fp16.Add(acc, regs[u][i][lane])
						}
						y[o] = acc
					}
				}
			}
			if m+1 < plan.macros {
				if err := rt.EnterAB(ch); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if chErr != nil {
		return nil, KernelStats{}, chErr
	}
	ks := reg.end()
	ks.Triggers = triggers
	return y, ks, nil
}

// RefGemvPIMOrder computes y = W*x with exactly the PIM datapath's
// rounding order: per output, G interleaved FP16 accumulators folded left
// to right at the end. It is the oracle for PimGemv in functional tests.
func RefGemvPIMOrder(W fp16.Vector, M, K int, x fp16.Vector, g int) fp16.Vector {
	y := fp16.NewVector(M)
	for o := 0; o < M; o++ {
		accs := make([]fp16.F16, g)
		for k := 0; k < K; k++ {
			i := k % g
			accs[i] = fp16.MAC(accs[i], x[k], W[o*K+k])
		}
		acc := fp16.Zero
		for i := 0; i < g; i++ {
			acc = fp16.Add(acc, accs[i])
		}
		y[o] = acc
	}
	return y
}

// HostGemvF32 is the host library's math: float32 accumulation, FP16
// result — used by the model layers and accuracy comparisons.
func HostGemvF32(W fp16.Vector, M, K int, x fp16.Vector) fp16.Vector {
	y := fp16.NewVector(M)
	for o := 0; o < M; o++ {
		var acc float32
		for k := 0; k < K; k++ {
			acc += W[o*K+k].Float32() * x[k].Float32()
		}
		y[o] = fp16.FromFloat32(acc)
	}
	return y
}

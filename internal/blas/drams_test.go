package blas

import (
	"math/rand"
	"testing"

	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
)

// TestGemvAcrossDRAMFamilies runs the identical PIM BLAS flow on HBM2,
// GDDR6 and LPDDR5 PIM devices — the Section III claim that the
// architecture ports to any standard DRAM "with a few changes" (here:
// none above the device model).
func TestGemvAcrossDRAMFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const M, K = 128, 96
	W := randVec(rng, M*K)
	x := randVec(rng, K)
	want := RefGemvPIMOrder(W, M, K, x, 8)

	configs := []struct {
		name string
		cfg  hbm.Config
	}{
		{"HBM2", func() hbm.Config {
			c := hbm.PIMHBMConfig(1000)
			c.PseudoChannels = 2
			return c
		}()},
		{"GDDR6", hbm.GDDR6PIMConfig(1250)},
		{"LPDDR5", hbm.LPDDR5PIMConfig(800)},
	}
	for _, tc := range configs {
		dev, err := hbm.NewDevice(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, ks, err := PimGemv(rt, W, M, K, x)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: y[%d] = %v, want %v", tc.name, i, got[i], want[i])
			}
		}
		if ks.Cycles <= 0 {
			t.Errorf("%s: no cycles", tc.name)
		}
		t.Logf("%s: %d cycles (%.0f ns), %d triggers", tc.name, ks.Cycles,
			tc.cfg.Timing.CyclesToNs(ks.Cycles), ks.Triggers)
	}
}

// TestEltwiseAcrossDRAMFamilies does the same for the ADD kernel, which
// additionally exercises the odd-bank write path on every geometry.
func TestEltwiseAcrossDRAMFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	const n = 3000
	a := randVec(rng, n)
	b := randVec(rng, n)
	want := RefAdd(a, b)

	for _, tc := range []struct {
		name string
		cfg  hbm.Config
	}{
		{"GDDR6", hbm.GDDR6PIMConfig(1250)},
		{"LPDDR5", hbm.LPDDR5PIMConfig(800)},
	} {
		dev, err := hbm.NewDevice(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, _, err := PimAdd(rt, a, b, n)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: c[%d] = %v, want %v", tc.name, i, got[i], want[i])
			}
		}
	}
}

// TestGemv2XVariantFunctional verifies the PIM-HBM-2x DSE variant is not
// just a timing model: with one unit per bank and a 16-deep GRF (the AAM
// window doubles), the GEMV kernel still produces bit-exact results.
func TestGemv2XVariantFunctional(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	cfg.PseudoChannels = 2
	cfg.Variant = hbm.Variant2X
	cfg.PIMUnits = 16
	cfg.Functional = true
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(88))
	const M, K = 160, 208 // K pads to a multiple of 16
	W := randVec(rng, M*K)
	x := randVec(rng, K)
	got, ks, err := PimGemv(rt, W, M, K, x)
	if err != nil {
		t.Fatal(err)
	}
	want := RefGemvPIMOrder(W, M, K, x, 16) // 16 interleaved accumulators
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if ks.Fences == 0 {
		t.Error("no fences")
	}
}

// TestGemvSRWVariantFunctional: the SRW variant's merged load+MAC path
// must also be bit-exact, at roughly half the triggers of the baseline.
func TestGemvSRWVariantFunctional(t *testing.T) {
	mk := func(variant hbm.Variant) *runtime.Runtime {
		cfg := hbm.PIMHBMConfig(1000)
		cfg.PseudoChannels = 2
		cfg.Variant = variant
		cfg.Functional = true
		dev, err := hbm.NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	rng := rand.New(rand.NewSource(89))
	const M, K = 96, 128
	W := randVec(rng, M*K)
	x := randVec(rng, K)

	base, baseKS, err := PimGemv(mk(hbm.VariantBase), W, M, K, x)
	if err != nil {
		t.Fatal(err)
	}
	srw, srwKS, err := PimGemv(mk(hbm.VariantSRW), W, M, K, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if srw[i] != base[i] {
			t.Fatalf("y[%d]: SRW %v vs base %v", i, srw[i], base[i])
		}
	}
	if srwKS.Triggers*2 != baseKS.Triggers {
		t.Errorf("SRW triggers %d, want half of %d", srwKS.Triggers, baseKS.Triggers)
	}
	if srwKS.Cycles >= baseKS.Cycles {
		t.Error("SRW not faster than baseline")
	}
}

package blas

import (
	"math/rand"
	"testing"

	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
)

// TestPimGemvWithECCCorrectsInjectedFaults runs the full GEMV flow on a
// device with the on-die ECC engine enabled, injects single-bit faults
// into the stored weights between layout and execution, and checks the
// result is still bit-exact — "PIM may leverage the on-die ECC engine to
// generate and check the ECC parity bits even in PIM mode" (Section VIII).
func TestPimGemvWithECCCorrectsInjectedFaults(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	cfg.PseudoChannels = 2
	cfg.Functional = true
	cfg.ECC = true
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}

	const M, K = 64, 64
	rng := rand.New(rand.NewSource(99))
	W := randVec(rng, M*K)
	x := randVec(rng, K)

	// Clean run establishes the expected result. FreeAllPIMRows inside
	// PimGemv means the next run reuses the same weight rows.
	clean, _, err := PimGemv(rt, W, M, K, x)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt one stored weight bit in every even bank of both channels.
	// The next run re-lays the weights, and layoutWeights only touches
	// the columns it writes — the injected faults land in columns the
	// layout rewrites, so instead target the GRF-unload path too: flip
	// bits right after layout by corrupting, then let the MAC triggers
	// read through the ECC engine.
	base, _ := rt.Drv.PIMRows()
	banksPerUnit := cfg.Banks() / cfg.PIMUnits
	inject := func() {
		for ch := 0; ch < cfg.PseudoChannels; ch++ {
			pch := rt.Chans[ch].PCH()
			for u := 0; u < cfg.PIMUnits; u++ {
				flat := u * banksPerUnit
				bg, b := flat/cfg.BanksPerGroup, flat%cfg.BanksPerGroup
				if err := pch.InjectBitError(bg, b, base, uint32(u%8), (u*37+ch)%256); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// PimGemv lays out weights then streams triggers; injecting before
	// the call corrupts rows that the layout rewrites column by column —
	// any column the layout does not rewrite (padding) plus every readback
	// still flows through the ECC engine. To guarantee reads hit damaged
	// data, corrupt and then read the raw rows back first:
	inject()
	data, err := rt.ReadBankSB(0, 0, base, 0)
	if err != nil {
		t.Fatalf("ECC failed to heal a single-bit fault: %v", err)
	}
	_ = data
	if got := dev.PCH(0).Stats().ECCCorrected; got == 0 {
		t.Fatal("no corrections counted on the damaged row")
	}

	// And the kernel end to end still produces the bit-exact result.
	inject()
	got, _, err := PimGemv(rt, W, M, K, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if got[i] != clean[i] {
			t.Fatalf("y[%d] = %v after fault injection, want %v", i, got[i], clean[i])
		}
	}
}

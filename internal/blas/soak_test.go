package blas

import (
	"math/rand"
	"testing"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
)

// TestSoakInterleavedKernels runs a long mixed sequence of kernels on one
// live system — varying shapes, all five kernel types, an LSTM cell, and
// tenant partitions — crossing several refresh intervals, and verifies
// every single result. This is the "nothing leaks between kernels" test:
// PIM rows are reallocated each call, GRF state is rezeroed, modes return
// to SB, and refresh never corrupts an in-flight burst.
func TestSoakInterleavedKernels(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	cfg.PseudoChannels = 4
	cfg.Functional = true
	cfg.Timing.REFI = 1200 // several refreshes per kernel
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := rt.PartitionEven(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2026))
	targets := []*runtime.Runtime{rt, parts[0], parts[1]}

	for step := 0; step < 40; step++ {
		target := targets[rng.Intn(len(targets))]
		switch rng.Intn(6) {
		case 0: // GEMV, random shape
			m := 16 * (1 + rng.Intn(12))
			k := 8 * (1 + rng.Intn(40))
			W := randVec(rng, m*k)
			x := randVec(rng, k)
			got, _, err := PimGemv(target, W, m, k, x)
			if err != nil {
				t.Fatalf("step %d gemv %dx%d: %v", step, m, k, err)
			}
			want := RefGemvPIMOrder(W, m, k, x, 8)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d gemv %dx%d: y[%d] = %v, want %v", step, m, k, i, got[i], want[i])
				}
			}
		case 1: // ADD
			n := 200 + rng.Intn(4000)
			a, b := randVec(rng, n), randVec(rng, n)
			got, _, err := PimAdd(target, a, b, n)
			if err != nil {
				t.Fatalf("step %d add: %v", step, err)
			}
			want := RefAdd(a, b)
			for i := range want {
				if got[i] != want[i] && !(got[i].IsNaN() && want[i].IsNaN()) {
					t.Fatalf("step %d add: c[%d]", step, i)
				}
			}
		case 2: // MUL
			n := 200 + rng.Intn(2000)
			a, b := randVec(rng, n), randVec(rng, n)
			got, _, err := PimMul(target, a, b, n)
			if err != nil {
				t.Fatalf("step %d mul: %v", step, err)
			}
			want := RefMul(a, b)
			for i := range want {
				if got[i] != want[i] && !(got[i].IsNaN() && want[i].IsNaN()) {
					t.Fatalf("step %d mul: c[%d]", step, i)
				}
			}
		case 3: // ReLU
			n := 200 + rng.Intn(3000)
			x := randVec(rng, n)
			got, _, err := PimReLU(target, x, n)
			if err != nil {
				t.Fatalf("step %d relu: %v", step, err)
			}
			want := RefReLU(x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d relu: y[%d]", step, i)
				}
			}
		case 4: // BN
			n := 200 + rng.Intn(3000)
			x := randVec(rng, n)
			gm := fp16.FromFloat32(rng.Float32() + 0.5)
			bt := fp16.FromFloat32(rng.Float32() - 0.5)
			got, _, err := PimBN(target, x, n, gm, bt)
			if err != nil {
				t.Fatalf("step %d bn: %v", step, err)
			}
			want := RefBN(x, gm, bt)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d bn: y[%d]", step, i)
				}
			}
		case 5: // LSTM cell
			H := 16 * (1 + rng.Intn(2))
			X := 8 * (2 + rng.Intn(4))
			w := LSTMWeights{Wx: randVec(rng, 4*H*X), Wh: randVec(rng, 4*H*H),
				B: randVec(rng, 4*H), X: X, H: H}
			x, h, c := randVec(rng, X), randVec(rng, H), randVec(rng, H)
			ph, pc, _, err := PimLSTMCell(target, w, x, h, c)
			if err != nil {
				t.Fatalf("step %d lstm: %v", step, err)
			}
			hh, hc, err := HostLSTMCell(w, x, h, c)
			if err != nil {
				t.Fatal(err)
			}
			if d := fp16.MaxAbsDiff(ph, hh); d > 0.06 {
				t.Fatalf("step %d lstm: h drift %v", step, d)
			}
			if d := fp16.MaxAbsDiff(pc, hc); d > 0.12 {
				t.Fatalf("step %d lstm: c drift %v", step, d)
			}
		}
	}

	// Post-conditions: clean state everywhere.
	refreshes := int64(0)
	for i, ch := range rt.Chans {
		if m := ch.PCH().Mode(); m != hbm.ModeSB {
			t.Errorf("channel %d left in %s", i, m)
		}
		refreshes += ch.Refreshes()
	}
	if refreshes == 0 {
		t.Error("soak never crossed a refresh interval; shorten tREFI")
	}
	base, _ := rt.Drv.PIMRows()
	r, err := rt.Drv.AllocPIMRows(1)
	if err != nil {
		t.Fatal(err)
	}
	if r != base {
		t.Errorf("PIM rows leaked: next allocation at %d, want %d", r, base)
	}
}

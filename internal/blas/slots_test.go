package blas

import (
	"math/rand"
	"testing"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
)

func newSlotsRT(t *testing.T, channels int) *runtime.Runtime {
	t.Helper()
	cfg := hbm.PIMHBMConfig(1200)
	cfg.PseudoChannels = channels
	cfg.Functional = true
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestRunSlotsSparseBitExact: a sparse slot map must produce, on every
// occupied channel, exactly the output a dense batch produces — the
// result is channel-independent and idle channels change nothing.
func TestRunSlotsSparseBitExact(t *testing.T) {
	const M, K, C = 48, 24, 4
	rt := newSlotsRT(t, C)
	rng := rand.New(rand.NewSource(5))
	W := fp16.NewVector(M * K)
	for i := range W {
		W[i] = fp16.FromFloat32(float32(rng.NormFloat64() * 0.25))
	}
	g, err := LoadGemv(rt, W, M, K)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]fp16.Vector, C)
	want := make([]fp16.Vector, C)
	for ch := 0; ch < C; ch++ {
		if ch == 1 {
			continue // idle slot in the middle of the map
		}
		x := fp16.NewVector(K)
		for i := range x {
			x[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
		}
		xs[ch] = x
		want[ch] = RefGemvPIMOrder(W, M, K, x, grfDepth(rt))
	}
	ys, ks, err := g.RunSlots(rt, xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ys) != C {
		t.Fatalf("got %d outputs, want %d (aligned with slots)", len(ys), C)
	}
	if ys[1] != nil {
		t.Error("idle slot produced an output")
	}
	for ch := 0; ch < C; ch++ {
		if xs[ch] == nil {
			continue
		}
		for i := range want[ch] {
			if ys[ch][i] != want[ch][i] {
				t.Fatalf("slot %d output %d: %v != oracle %v", ch, i, ys[ch][i], want[ch][i])
			}
		}
	}
	if ks.Cycles <= 0 {
		t.Error("no cycles accounted")
	}
}

func TestRunSlotsRejects(t *testing.T) {
	const M, K, C = 16, 16, 2
	rt := newSlotsRT(t, C)
	W := fp16.NewVector(M * K)
	g, err := LoadGemv(rt, W, M, K)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.RunSlots(rt, make([]fp16.Vector, C)); err == nil {
		t.Error("all-idle slot map accepted")
	}
	if _, _, err := g.RunSlots(rt, make([]fp16.Vector, C+1)); err == nil {
		t.Error("slot map wider than the channel count accepted")
	}
	if _, _, err := g.RunSlots(rt, []fp16.Vector{fp16.NewVector(K + 1)}); err == nil {
		t.Error("wrong-length input accepted")
	}
}

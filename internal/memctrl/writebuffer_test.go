package memctrl

import (
	"math/rand"
	"testing"

	"pimsim/internal/hbm"
)

// TestWriteBufferImprovesReadLatency: posting writes keeps the bus in
// read mode; average read latency must drop versus the interleaved
// baseline on the same online mixed arrival stream (each transaction is
// serviced as it arrives; buffered writes accumulate to their watermark).
func TestWriteBufferImprovesReadLatency(t *testing.T) {
	run := func(buffered bool) float64 {
		cfg := hbm.HBM2Config(1000)
		cfg.Functional = false
		ch := NewChannel(hbm.MustNewDevice(cfg).PCH(0), cfg)
		s := NewScheduler(ch, cfg)
		if buffered {
			if err := s.EnableWriteBuffer(4, 16); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(17))
		var reads []*Tx
		// Bursty arrivals: ten mixed transactions land together, the
		// controller works the burst off, then the line goes quiet — the
		// pattern where deferring writes pays.
		for burst := 0; burst < 60; burst++ {
			for i := 0; i < 10; i++ {
				loc := Loc{
					BG:   rng.Intn(4),
					Bank: rng.Intn(4),
					Row:  uint32(rng.Intn(32)),
					Col:  uint32(rng.Intn(64)),
				}
				if rng.Float64() < 0.4 {
					s.Enqueue(true, loc, make([]byte, 32))
				} else {
					reads = append(reads, s.Enqueue(false, loc, nil))
				}
			}
			for s.Pending() > 0 {
				if _, err := s.step(); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Idle(16); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, r := range reads {
			total += float64(r.Done() - r.enqueued)
		}
		return total / float64(len(reads))
	}
	base := run(false)
	buf := run(true)
	if buf >= base {
		t.Errorf("buffered read latency %.1f not better than interleaved %.1f", buf, base)
	}
}

// TestStoreToLoadForwarding: a read behind a buffered write to the same
// block returns the written data without touching DRAM.
func TestStoreToLoadForwarding(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	ch := NewChannel(hbm.MustNewDevice(cfg).PCH(0), cfg)
	s := NewScheduler(ch, cfg)
	if err := s.EnableWriteBuffer(0, 64); err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, 32)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	loc := Loc{BG: 1, Bank: 1, Row: 7, Col: 9}
	s.Enqueue(true, loc, payload)
	rd := s.Enqueue(false, loc, nil)
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if rd.Data[i] != payload[i] {
			t.Fatalf("forwarded read byte %d = %x, want %x", i, rd.Data[i], payload[i])
		}
	}
	if s.Forwarded() != 1 {
		t.Errorf("forwarded = %d", s.Forwarded())
	}

	// And the write really landed in DRAM after the drain.
	rd2 := s.Enqueue(false, loc, nil)
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if rd2.Data[i] != payload[i] {
			t.Fatalf("post-drain read byte %d = %x", i, rd2.Data[i])
		}
	}
}

// TestWriteBufferWatermarks: the high watermark forces a drain; the flush
// empties the buffer.
func TestWriteBufferWatermarks(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	cfg.Functional = false
	ch := NewChannel(hbm.MustNewDevice(cfg).PCH(0), cfg)
	s := NewScheduler(ch, cfg)
	if err := s.EnableWriteBuffer(2, 8); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 12; i++ {
		s.Enqueue(true, Loc{BG: i % 4, Row: uint32(i), Col: 0}, nil)
	}
	if s.PendingWrites() != 12 {
		t.Fatalf("pending = %d", s.PendingWrites())
	}
	// Writes complete immediately from the host's perspective.
	s.Enqueue(false, Loc{BG: 0, Bank: 3, Row: 99, Col: 0}, nil)
	if _, err := s.step(); err != nil { // triggers the high-watermark drain
		t.Fatal(err)
	}
	if got := s.PendingWrites(); got != 2 {
		t.Errorf("after drain: %d buffered writes, want the low watermark 2", got)
	}
	if err := s.FlushWrites(); err != nil {
		t.Fatal(err)
	}
	if s.PendingWrites() != 0 {
		t.Error("flush left writes behind")
	}
	// Degenerate watermarks are normalized.
	s2 := NewScheduler(ch, cfg)
	if err := s2.EnableWriteBuffer(-3, -5); err != nil {
		t.Fatal(err)
	}
	if s2.lowWater != 0 || s2.highWater != 1 {
		t.Errorf("watermarks %d/%d", s2.lowWater, s2.highWater)
	}
}

// TestEnableWriteBufferRejectsPending: enabling posted writes with
// transactions already queued would retroactively reorder them, so the
// call must fail instead of silently proceeding (regression: it used to
// ignore its documented empty-queue precondition).
func TestEnableWriteBufferRejectsPending(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	cfg.Functional = false
	ch := NewChannel(hbm.MustNewDevice(cfg).PCH(0), cfg)

	s := NewScheduler(ch, cfg)
	s.Enqueue(false, Loc{BG: 0, Bank: 0, Row: 1, Col: 0}, nil)
	if err := s.EnableWriteBuffer(2, 8); err == nil {
		t.Error("EnableWriteBuffer accepted a non-empty read queue")
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableWriteBuffer(2, 8); err != nil {
		t.Fatalf("EnableWriteBuffer on drained queue: %v", err)
	}

	// Buffered writes pending blocks re-tuning too.
	s.Enqueue(true, Loc{BG: 0, Bank: 0, Row: 1, Col: 1}, nil)
	if err := s.EnableWriteBuffer(1, 4); err == nil {
		t.Error("EnableWriteBuffer accepted pending buffered writes")
	}
}

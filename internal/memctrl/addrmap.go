// Package memctrl models the host side of the DRAM interface: physical
// address mapping, a JEDEC-compliant per-channel command generator with
// FR-FCFS transaction scheduling (the reordering that motivates Section
// IV-C), memory fences, and refresh management. PIM-HBM is driven through
// this controller with standard commands only.
package memctrl

import "fmt"

// Loc is a fully decoded DRAM location.
type Loc struct {
	Channel int // global pseudo-channel index across all devices
	BG      int
	Bank    int
	Row     uint32
	Col     uint32
}

// AddrMap translates between flat physical addresses and DRAM locations.
//
// Bit order (LSB to MSB): block offset | channel | bank group | column |
// bank | row. Channel bits sit just above the 32-byte block offset so
// consecutive blocks stripe across all pseudo channels (maximum
// channel-level parallelism); bank-group bits under the column bits let a
// sequential stream alternate bank groups and sustain the tCCD_S cadence;
// column bits below the bank bits keep a contiguous stretch inside a
// single row per bank group. This is the mapping the PIM device driver
// assumes when it lays out operands (Section VIII, Fig. 15).
type AddrMap struct {
	Channels    int
	BankGroups  int
	Banks       int // banks per group
	Rows        int
	Cols        int // column addresses per row
	AccessBytes int

	// ColUnderBG swaps the column and bank-group fields (offset | channel
	// | column | bank group | bank | row): sequential streams then dwell
	// in one bank group and fall from the tCCD_S to the tCCD_L cadence.
	// It exists for the address-mapping ablation.
	ColUnderBG bool
}

// NewAddrMap derives the mapping for nDevices devices of geometry cfg.
func NewAddrMap(channels, bankGroups, banks, rows, cols, accessBytes int) AddrMap {
	return AddrMap{
		Channels:    channels,
		BankGroups:  bankGroups,
		Banks:       banks,
		Rows:        rows,
		Cols:        cols,
		AccessBytes: accessBytes,
	}
}

// Capacity returns the total mapped bytes.
func (m AddrMap) Capacity() uint64 {
	return uint64(m.Channels) * uint64(m.BankGroups) * uint64(m.Banks) *
		uint64(m.Rows) * uint64(m.Cols) * uint64(m.AccessBytes)
}

// Decode splits a physical address into its DRAM location. The address
// must be block aligned for column accesses; the caller handles offsets.
func (m AddrMap) Decode(addr uint64) (Loc, error) {
	if addr >= m.Capacity() {
		return Loc{}, fmt.Errorf("memctrl: address %#x beyond capacity %#x", addr, m.Capacity())
	}
	block := addr / uint64(m.AccessBytes)
	var l Loc
	l.Channel = int(block % uint64(m.Channels))
	block /= uint64(m.Channels)
	if m.ColUnderBG {
		l.Col = uint32(block % uint64(m.Cols))
		block /= uint64(m.Cols)
		l.BG = int(block % uint64(m.BankGroups))
		block /= uint64(m.BankGroups)
	} else {
		l.BG = int(block % uint64(m.BankGroups))
		block /= uint64(m.BankGroups)
		l.Col = uint32(block % uint64(m.Cols))
		block /= uint64(m.Cols)
	}
	l.Bank = int(block % uint64(m.Banks))
	block /= uint64(m.Banks)
	l.Row = uint32(block)
	return l, nil
}

// Encode is the inverse of Decode.
func (m AddrMap) Encode(l Loc) uint64 {
	block := uint64(l.Row)
	block = block*uint64(m.Banks) + uint64(l.Bank)
	if m.ColUnderBG {
		block = block*uint64(m.BankGroups) + uint64(l.BG)
		block = block*uint64(m.Cols) + uint64(l.Col)
	} else {
		block = block*uint64(m.Cols) + uint64(l.Col)
		block = block*uint64(m.BankGroups) + uint64(l.BG)
	}
	block = block*uint64(m.Channels) + uint64(l.Channel)
	return block * uint64(m.AccessBytes)
}

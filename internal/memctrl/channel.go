package memctrl

import (
	"fmt"

	"pimsim/internal/hbm"
	"pimsim/internal/metrics"
	"pimsim/internal/obs"
	"pimsim/internal/trace"
)

// Channel drives one pseudo channel: it owns the channel clock, issues
// commands at their earliest legal cycles, manages refresh, and models
// host memory fences. It is the layer PIM kernels talk to when they need
// an ordered command stream.
type Channel struct {
	pch *hbm.PseudoChannel
	cfg hbm.Config

	now         int64
	nextRefresh int64
	refreshDebt int // postponed refreshes (JEDEC allows up to 8)

	// GuaranteeOrder models the processor-confirmed in-order PIM mode of
	// Section VII-B: fences become free because the controller preserves
	// command order on its own.
	GuaranteeOrder bool

	// FenceCycles is the host-side cost of one memory fence: the host
	// stalls until in-flight reads return (read latency + burst) plus the
	// pipeline drain, before the next batch of requests reaches the
	// controller.
	FenceCycles int

	openABRow   uint32 // currently open broadcast row (PIM bursts)
	abRowOpen   bool
	lastDataEnd int64  // completion cycle of the latest column data transfer
	modeRow     uint32 // cfg.ModeRow(), cached off the per-command path

	m *chanMetrics

	// Trace, when set, records every issued command (including the
	// refresh machinery's own commands). ChannelID labels the events.
	Trace     *trace.Recorder
	ChannelID int

	// Delay, when set, adds injected latency to command issue (fault
	// injection: per-channel latency spikes). Like Trace it is a public
	// hook field: nil costs one pointer compare per command.
	Delay    Delayer
	delaySeq int64 // commands seen by Delay (its deterministic clock)

	// TL, when set, records every issued command plus mode-window
	// transitions into the observability timeline (Perfetto export). Same
	// hook contract as Trace/Delay: nil costs one pointer compare.
	TL     *obs.ChannelTimeline
	tlMode hbm.Mode // last mode reported to TL
}

// Delayer is the fault-injection hook on the command-issue path. For
// every command (refresh machinery included) it returns extra cycles to
// add on top of the earliest legal issue cycle — legal by construction,
// since the device model accepts any issue cycle at or after the
// earliest. seq counts the channel's delayer calls and now is the
// pre-delay issue cycle, so implementations can build deterministic
// schedules without wall-clock time. internal/fault provides the
// standard implementation.
type Delayer interface {
	ExtraIssueCycles(channel int, seq, now int64) int64
}

// RefreshPostponeLimit is how many tREFI intervals a refresh may be
// deferred while a PIM burst is in flight (JESD235 allows 8).
const RefreshPostponeLimit = 8

// DefaultFenceCycles approximates a host fence on the evaluated system:
// the thread group synchronizes, waits for outstanding DRAM responses and
// refills the controller queue (~35 ns at 1 GHz).
const DefaultFenceCycles = 35

// NewChannel wraps a pseudo channel. The channel starts with a private
// single-shard metrics registry; UseMetrics rebinds it to a shared one.
func NewChannel(pch *hbm.PseudoChannel, cfg hbm.Config) *Channel {
	return &Channel{
		pch:         pch,
		cfg:         cfg,
		nextRefresh: int64(cfg.Timing.REFI),
		FenceCycles: DefaultFenceCycles,
		modeRow:     cfg.ModeRow(),
		m:           newChanMetrics(metrics.New(1), 0),
	}
}

// UseMetrics rebinds the channel's instrumentation to reg, writing into
// the given shard (one shard per channel keeps concurrent kernels under
// runtime.ParallelKernels contention free). Call it before any traffic:
// counts accumulated under the previous registry are not carried over.
func (c *Channel) UseMetrics(reg *metrics.Registry, shard int) {
	c.m = newChanMetrics(reg, shard)
}

// Metrics returns the registry the channel reports into.
func (c *Channel) Metrics() *metrics.Registry { return c.m.reg }

// MetricsShard returns the registry shard the channel writes to.
func (c *Channel) MetricsShard() int { return c.m.shard }

// Now returns the channel clock.
func (c *Channel) Now() int64 { return c.now }

// AdvanceTo moves the channel clock forward (host-side idle time).
// Advancing to the current cycle is a no-op; a target behind the clock
// is surfaced as an error — under a parallel engine a backwards advance
// means a cross-channel join computed a stale frontier (a scheduler
// bug), and swallowing it would let the two clocks silently diverge.
func (c *Channel) AdvanceTo(t int64) error {
	if t < c.now {
		return fmt.Errorf("memctrl: AdvanceTo(%d) behind channel clock %d (non-monotonic advance)", t, c.now)
	}
	c.now = t
	return nil
}

// NextEvent returns the next cycle at which this channel's state can
// change without a new command arriving: the minimum of the next refresh
// deadline, the next bank-timer expiry (the soonest moment a command
// blocked purely on timing could become legal), and the bus-busy horizon
// (completion of the latest in-flight data transfer). The result is
// always in (Now, nextRefresh] — refresh bounds every quiet period —
// except when refresh is already overdue, in which case it returns Now:
// the channel has work pending at the current cycle.
//
// This is the contract the event-driven core rests on: between Now and
// NextEvent nothing in the channel moves, so controllers may jump their
// clock straight there instead of walking cycles.
func (c *Channel) NextEvent() int64 {
	if c.nextRefresh <= c.now {
		return c.now
	}
	next := c.nextRefresh
	if t := c.pch.NextTimerExpiry(c.now); t > c.now && t < next {
		next = t
	}
	if c.lastDataEnd > c.now && c.lastDataEnd < next {
		next = c.lastDataEnd
	}
	return next
}

// SkipToNextEvent jumps the channel clock to NextEvent and services any
// refresh that lands due there, returning the new clock value. A channel
// whose next event is the current cycle (overdue refresh) only runs the
// refresh machinery. Idle controllers use it to spend quiet periods
// paying refresh debt instead of deferring it into the next demand burst.
func (c *Channel) SkipToNextEvent() (int64, error) {
	if t := c.NextEvent(); t > c.now {
		c.now = t
	}
	if err := c.maybeRefresh(); err != nil {
		return c.now, err
	}
	return c.now, nil
}

// Fences returns how many fences this channel executed.
func (c *Channel) Fences() int64 { return c.m.fences.ShardValue(c.m.shard) }

// Refreshes returns how many REF commands this channel issued.
func (c *Channel) Refreshes() int64 { return c.m.refreshes.ShardValue(c.m.shard) }

// PCH exposes the underlying pseudo channel.
func (c *Channel) PCH() *hbm.PseudoChannel { return c.pch }

// Issue sends one command at its earliest legal cycle at or after the
// channel clock, advancing the clock to the issue cycle. Refresh deadlines
// are honoured transparently, including mid-burst in PIM modes.
func (c *Channel) Issue(cmd hbm.Command) (hbm.IssueResult, error) {
	var res hbm.IssueResult
	if err := c.maybeRefresh(); err != nil {
		return res, err
	}
	if err := c.issueRaw(&cmd, &res); err != nil {
		return res, err
	}
	c.trackState(&cmd)
	return res, nil
}

// issueRaw issues without refresh checks, filling *res in place (pointer
// in, pointer out: the per-command fast path copies no structs). With no
// delay hook the schedule-then-issue round trip collapses into the
// device's single-pass IssueEarliest (the command stream validates once,
// not twice); a Delayer needs the split so it can push the issue cycle
// between the two halves.
func (c *Channel) issueRaw(cmd *hbm.Command, res *hbm.IssueResult) error {
	if c.Delay != nil {
		at, err := c.pch.EarliestIssue(*cmd, c.now)
		if err != nil {
			return err
		}
		c.delaySeq++
		if extra := c.Delay.ExtraIssueCycles(c.ChannelID, c.delaySeq, at); extra > 0 {
			at += extra
		}
		*res, err = c.pch.Issue(*cmd, at)
		if err != nil {
			return err
		}
	} else if err := c.pch.IssueEarliest(cmd, c.now, res); err != nil {
		return err
	}
	at := res.Cycle
	if c.Trace != nil {
		c.Trace.Record(trace.Event{
			Cycle: at, Channel: c.ChannelID, Kind: cmd.Kind,
			BG: cmd.BG, Bank: cmd.Bank, Row: cmd.Row, Col: cmd.Col,
		})
	}
	if c.TL != nil {
		// Mode transitions are detected here — after the issue, so a
		// mode-row handshake lands in the window it opens — by comparing
		// against the last mode the timeline saw.
		mode := c.pch.Mode()
		if mode != c.tlMode {
			c.tlMode = mode
			c.TL.ModeChange(at, mode.String())
		}
		c.TL.Cmd(at, cmd.Kind.String(), cmd.BG, cmd.Bank, cmd.Row, cmd.Col, mode != hbm.ModeSB)
	}
	// The command/address bus carries one command per cycle.
	c.now = at + 1
	if cmd.Kind.IsColumn() {
		lat := c.cfg.Timing.WL
		if cmd.Kind == hbm.CmdRD {
			lat = c.cfg.Timing.RL
		}
		end := at + int64(lat+c.cfg.Timing.DataCycles())
		if end > c.lastDataEnd {
			c.lastDataEnd = end
		}
	}
	return nil
}

// issueAux issues a refresh-machinery command, discarding the result.
func (c *Channel) issueAux(cmd hbm.Command) error {
	var res hbm.IssueResult
	return c.issueRaw(&cmd, &res)
}

// trackState remembers the open broadcast row so refresh can restore it.
func (c *Channel) trackState(cmd *hbm.Command) {
	if c.pch.Mode() == hbm.ModeSB {
		c.abRowOpen = false
		return
	}
	switch cmd.Kind {
	case hbm.CmdACT:
		if cmd.Row < c.modeRow {
			c.openABRow = cmd.Row
			c.abRowOpen = true
		}
	case hbm.CmdPREA:
		c.abRowOpen = false
	}
}

// maybeRefresh issues due refreshes. In SB mode the caller's open rows are
// the scheduler's responsibility, so refresh only fires when all banks are
// idle and is otherwise postponed (up to the JEDEC limit). In AB/AB-PIM
// modes the channel transparently closes the broadcast row, refreshes, and
// reopens it.
func (c *Channel) maybeRefresh() error {
	strikes := 0
	for c.now >= c.nextRefresh {
		deficit := c.now - c.nextRefresh
		force := c.refreshDebt >= RefreshPostponeLimit
		// Snapshot an in-flight mode-row handshake before closing rows so
		// it can be restored: refresh must be transparent to the runtime's
		// command sequences.
		hsBank := -1
		if c.cfg.PIMUnits > 0 {
			for _, b := range []int{hbm.ABMRBank, hbm.SBMRBank} {
				if row, open := c.pch.OpenRow(0, b); open && row == c.cfg.ModeRow() {
					hsBank = b
				}
			}
		}
		// Likewise snapshot every SB-mode open row: a forced refresh in the
		// middle of a transaction must not yank the row out from under the
		// scheduler.
		type openBank struct {
			bg, bank int
			row      uint32
		}
		var reopen []openBank
		if c.pch.Mode() == hbm.ModeSB && force {
			for bg := 0; bg < c.cfg.BankGroups; bg++ {
				for b := 0; b < c.cfg.BanksPerGroup; b++ {
					if bg == 0 && b == hsBank {
						continue
					}
					if row, open := c.pch.OpenRow(bg, b); open {
						reopen = append(reopen, openBank{bg, b, row})
					}
				}
			}
		}
		_, refErr := c.pch.EarliestIssue(hbm.Command{Kind: hbm.CmdREF}, c.now)
		if refErr != nil { // banks open
			if c.pch.Mode() == hbm.ModeSB && !force {
				// Postpone rather than yank rows out from under the
				// transaction scheduler.
				c.refreshDebt++
				c.m.refreshPostponed.Inc(c.m.shard)
				c.m.refreshDebt.Set(c.m.shard, int64(c.refreshDebt))
				c.nextRefresh += int64(c.cfg.Timing.REFI)
				continue
			}
			if err := c.issueAux(hbm.Command{Kind: hbm.CmdPREA}); err != nil {
				return fmt.Errorf("memctrl: refresh precharge: %w", err)
			}
		}
		if err := c.issueAux(hbm.Command{Kind: hbm.CmdREF}); err != nil {
			return fmt.Errorf("memctrl: refresh: %w", err)
		}
		c.m.refreshes.Inc(c.m.shard)
		if c.refreshDebt > 0 {
			c.refreshDebt--
			c.m.refreshDebt.Set(c.m.shard, int64(c.refreshDebt))
		}
		if c.abRowOpen && c.pch.Mode() != hbm.ModeSB {
			if err := c.issueAux(hbm.Command{Kind: hbm.CmdACT, Row: c.openABRow}); err != nil {
				return fmt.Errorf("memctrl: refresh reopen: %w", err)
			}
		}
		if hsBank >= 0 {
			if err := c.issueAux(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hsBank, Row: c.cfg.ModeRow()}); err != nil {
				return fmt.Errorf("memctrl: refresh handshake reopen: %w", err)
			}
		}
		for _, ob := range reopen {
			if err := c.issueAux(hbm.Command{Kind: hbm.CmdACT, BG: ob.bg, Bank: ob.bank, Row: ob.row}); err != nil {
				return fmt.Errorf("memctrl: refresh row reopen: %w", err)
			}
		}
		c.nextRefresh += int64(c.cfg.Timing.REFI)
		// A tREFI smaller than the refresh round trip can never catch up;
		// fail loudly instead of spinning forever.
		if c.now-c.nextRefresh >= deficit {
			if strikes++; strikes > 3 {
				return fmt.Errorf("memctrl: refresh cannot keep up (tREFI %d too small)", c.cfg.Timing.REFI)
			}
		} else {
			strikes = 0
		}
	}
	return nil
}

// Fence models the ordering fence a PIM kernel executes after each AAM
// window (Section IV-C / VII-B): the host waits for all outstanding data
// and pays a fixed resynchronization cost. With GuaranteeOrder set the
// controller preserves order itself and the fence is free.
func (c *Channel) Fence() {
	if c.GuaranteeOrder {
		return
	}
	c.m.fences.Inc(c.m.shard)
	stall := int64(c.FenceCycles)
	if c.lastDataEnd > c.now {
		stall += c.lastDataEnd - c.now
		c.now = c.lastDataEnd
	}
	c.m.fenceStall.Add(c.m.shard, stall)
	c.now += int64(c.FenceCycles)
}

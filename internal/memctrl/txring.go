package memctrl

// txRing is a FIFO of transaction pointers backed by a power-of-two
// circular buffer. FR-FCFS only inspects (and removes from) a bounded
// window at the head of the queue, so removing the i-th oldest entry
// shifts at most i pointers toward the head — bounded by the scheduler
// window — instead of copy-compacting the whole tail the way
// append(q[:i], q[i+1:]...) does. Steady-state push/pop never allocates;
// the buffer only doubles when full.
type txRing struct {
	buf  []*Tx // len(buf) is always a power of two (or zero)
	head int
	n    int
}

func (r *txRing) len() int { return r.n }

// at returns the i-th oldest entry, 0 <= i < n.
func (r *txRing) at(i int) *Tx { return r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *txRing) set(i int, tx *Tx) { r.buf[(r.head+i)&(len(r.buf)-1)] = tx }

// push appends tx at the tail.
func (r *txRing) push(tx *Tx) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = tx
	r.n++
}

// removeAt removes and returns the i-th oldest entry, preserving the order
// of the rest by shifting entries younger than the head side up one slot.
func (r *txRing) removeAt(i int) *Tx {
	tx := r.at(i)
	for j := i; j > 0; j-- {
		r.set(j, r.at(j-1))
	}
	r.buf[r.head] = nil // drop the reference so the GC/free list owns it
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return tx
}

func (r *txRing) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 64
	}
	nb := make([]*Tx, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf, r.head = nb, 0
}

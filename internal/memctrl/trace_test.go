package memctrl

import (
	"strings"
	"testing"

	"pimsim/internal/hbm"
	"pimsim/internal/trace"
)

func TestChannelTraceRecording(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	cfg.Functional = false
	dev := hbm.MustNewDevice(cfg)
	ch := NewChannel(dev.PCH(0), cfg)
	ch.Trace = trace.NewRecorder(64)
	ch.ChannelID = 3

	s := NewScheduler(ch, cfg)
	for i := 0; i < 8; i++ {
		s.Enqueue(false, Loc{BG: i % 4, Bank: 0, Row: 1, Col: uint32(i)}, nil)
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	ev := ch.Trace.Events()
	if len(ev) == 0 {
		t.Fatal("no events recorded")
	}
	acts, rds := 0, 0
	var lastCycle int64 = -1
	for _, e := range ev {
		if e.Channel != 3 {
			t.Errorf("event labeled channel %d", e.Channel)
		}
		if e.Cycle < lastCycle {
			t.Errorf("events out of order: %d after %d", e.Cycle, lastCycle)
		}
		lastCycle = e.Cycle
		switch e.Kind {
		case hbm.CmdACT:
			acts++
		case hbm.CmdRD:
			rds++
		}
	}
	if rds != 8 || acts < 4 {
		t.Errorf("trace has %d RDs and %d ACTs", rds, acts)
	}

	// The dumped trace replays cleanly against a fresh device.
	var sb strings.Builder
	if err := ch.Trace.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	events, err := trace.Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	fresh := hbm.MustNewDevice(cfg).PCH(0)
	var now int64
	for i, e := range events {
		cmd := e.Command()
		at, err := fresh.EarliestIssue(cmd, now)
		if err != nil {
			t.Fatalf("replay event %d (%s): %v", i, cmd, err)
		}
		if _, err := fresh.Issue(cmd, at); err != nil {
			t.Fatalf("replay event %d: %v", i, err)
		}
		now = at + 1
	}
}

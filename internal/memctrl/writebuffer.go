package memctrl

import "fmt"

// Posted-write support. Real controllers complete writes into a write
// buffer immediately and drain them in batches, keeping the data bus in
// read mode (reads are latency critical, writes are not) and amortizing
// the RD<->WR turnaround penalties. Reads that hit a buffered write are
// forwarded from the buffer (store-to-load forwarding), so the reordering
// is invisible to the host.

// EnableWriteBuffer turns on posted writes with the given watermarks:
// writes accumulate until high pending writes force a drain down to low.
// It must be called while the queues are empty: enabling posted writes
// with transactions in flight would retroactively reorder them, so that
// case returns an error instead.
func (s *Scheduler) EnableWriteBuffer(low, high int) error {
	if s.queue.len() > 0 || s.wqueue.len() > 0 {
		return fmt.Errorf("memctrl: EnableWriteBuffer with %d queued and %d buffered transactions pending",
			s.queue.len(), s.wqueue.len())
	}
	if low < 0 {
		low = 0
	}
	if high <= low {
		high = low + 1
	}
	s.writeBuf = true
	s.lowWater, s.highWater = low, high
	return nil
}

// enqueueWrite posts a write: it completes immediately from the host's
// perspective at the current cycle.
func (s *Scheduler) enqueueWrite(tx *Tx) {
	tx.done = s.ch.Now()
	s.wqueue.push(tx)
	s.ch.m.wbufDepth.Set(s.ch.m.shard, int64(s.wqueue.len()))
}

// forward satisfies a read from the youngest buffered write to the same
// location, if any.
func (s *Scheduler) forward(loc Loc) ([]byte, bool) {
	for i := s.wqueue.len() - 1; i >= 0; i-- {
		if tx := s.wqueue.at(i); tx.Loc == loc {
			return tx.Data, true
		}
	}
	return nil, false
}

// drainWrites services buffered writes (oldest first, which FR-FCFS
// row-hit picking then reorders) until at most `until` remain.
func (s *Scheduler) drainWrites(until int) error {
	m := s.ch.m
	if s.wqueue.len() > until {
		m.wbufDrains.Inc(m.shard)
	}
	for s.wqueue.len() > until {
		// Row-hit first among the window, like the read path.
		window := s.Window
		if window > s.wqueue.len() {
			window = s.wqueue.len()
		}
		pick := 0
		for i := 0; i < window; i++ {
			l := s.wqueue.at(i).Loc
			if row, open := s.ch.PCH().OpenRow(l.BG, l.Bank); open && row == l.Row {
				pick = i
				break
			}
		}
		tx := s.wqueue.removeAt(pick)
		m.wbufDepth.Set(m.shard, int64(s.wqueue.len()))
		if err := s.service(tx); err != nil {
			return err
		}
		m.wbufDrained.Inc(m.shard)
		m.completed.Inc(m.shard)
		if s.AutoRelease {
			s.Release(tx)
		}
	}
	return nil
}

// maybeDrain enforces the high watermark.
func (s *Scheduler) maybeDrain() error {
	if !s.writeBuf || s.wqueue.len() < s.highWater {
		return nil
	}
	return s.drainWrites(s.lowWater)
}

// FlushWrites drains every buffered write (used at barriers and before
// mode transitions; PIM regions are uncacheable AND must be write-drained
// before a kernel reads them).
func (s *Scheduler) FlushWrites() error {
	if !s.writeBuf {
		return nil
	}
	return s.drainWrites(0)
}

// PendingWrites returns the buffered write count.
func (s *Scheduler) PendingWrites() int { return s.wqueue.len() }

package memctrl

import "pimsim/internal/metrics"

// chanMetrics bundles every memctrl metric handle for one channel. All
// handles are registered eagerly so every snapshot carries the full
// memctrl name set (zero-valued when idle) — scrapers never have to guess
// which counters exist.
type chanMetrics struct {
	reg   *metrics.Registry
	shard int

	// Channel-level.
	fences           *metrics.Counter
	fenceStall       *metrics.Counter
	refreshes        *metrics.Counter
	refreshPostponed *metrics.Counter
	refreshDebt      *metrics.Gauge

	// Demand scheduling (FR-FCFS service path).
	rowHits   *metrics.Counter
	rowMisses *metrics.Counter
	rowOpens  *metrics.Counter
	reordered *metrics.Counter
	completed *metrics.Counter
	forwarded *metrics.Counter

	// Speculative activate-ahead traffic, counted apart from demand so the
	// reported row-hit rate stays honest.
	aheadOpens  *metrics.Counter
	aheadCloses *metrics.Counter

	reorderDist *metrics.Histogram

	// Posted-write buffer.
	wbufDepth   *metrics.Gauge
	wbufDrains  *metrics.Counter
	wbufDrained *metrics.Counter
}

func newChanMetrics(reg *metrics.Registry, shard int) *chanMetrics {
	return &chanMetrics{
		reg:   reg,
		shard: shard,

		fences:           reg.Counter("memctrl_fences_total"),
		fenceStall:       reg.Counter("memctrl_fence_stall_cycles_total"),
		refreshes:        reg.Counter("memctrl_refresh_total"),
		refreshPostponed: reg.Counter("memctrl_refresh_postponed_total"),
		refreshDebt:      reg.Gauge("memctrl_refresh_debt"),

		rowHits:   reg.Counter("memctrl_row_hits_total"),
		rowMisses: reg.Counter("memctrl_row_misses_total"),
		rowOpens:  reg.Counter("memctrl_row_opens_total"),
		reordered: reg.Counter("memctrl_reordered_total"),
		completed: reg.Counter("memctrl_completed_total"),
		forwarded: reg.Counter("memctrl_forwarded_total"),

		aheadOpens:  reg.Counter("memctrl_ahead_opens_total"),
		aheadCloses: reg.Counter("memctrl_ahead_closes_total"),

		reorderDist: reg.Histogram("memctrl_reorder_distance", metrics.ExpBuckets(1, 2, 6)),

		wbufDepth:   reg.Gauge("memctrl_wbuf_depth"),
		wbufDrains:  reg.Counter("memctrl_wbuf_drains_total"),
		wbufDrained: reg.Counter("memctrl_wbuf_drained_writes_total"),
	}
}

package memctrl

import (
	"testing"

	"pimsim/internal/hbm"
)

// NextEvent/SkipToNextEvent contract tests: the event-driven core rests
// on "between Now and NextEvent nothing in the channel moves", so these
// pin the bounds — never behind the clock, never beyond the refresh
// deadline, and covering timer expiries and the data-bus horizon.

func newEventTestChannel(t *testing.T) (*Channel, hbm.Config) {
	t.Helper()
	cfg := hbm.HBM2Config(1000)
	cfg.Functional = false
	return NewChannel(hbm.MustNewDevice(cfg).PCH(0), cfg), cfg
}

// A fresh channel has no running timers and no data in flight: the only
// future event is the first refresh deadline.
func TestNextEventQuiescentIsRefreshDeadline(t *testing.T) {
	ch, cfg := newEventTestChannel(t)
	if got, want := ch.NextEvent(), int64(cfg.Timing.REFI); got != want {
		t.Fatalf("NextEvent on a fresh channel = %d, want first refresh deadline %d", got, want)
	}
}

// After an ACT the bank timers are running: NextEvent must surface the
// earliest expiry, which lands strictly after the clock and well before
// the refresh deadline.
func TestNextEventSeesTimerExpiry(t *testing.T) {
	ch, _ := newEventTestChannel(t)
	if _, err := ch.Issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: 0, Row: 3}); err != nil {
		t.Fatal(err)
	}
	next := ch.NextEvent()
	if next <= ch.Now() {
		t.Fatalf("NextEvent = %d not after clock %d with timers running", next, ch.Now())
	}
	if want := ch.pch.NextTimerExpiry(ch.Now()); next != want {
		t.Fatalf("NextEvent = %d, want earliest timer expiry %d", next, want)
	}
}

// A column command puts data on the bus; NextEvent must not jump past
// the transfer's completion.
func TestNextEventBoundsDataHorizon(t *testing.T) {
	ch, _ := newEventTestChannel(t)
	if _, err := ch.Issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: 0, Row: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Issue(hbm.Command{Kind: hbm.CmdRD, BG: 0, Bank: 0, Col: 5}); err != nil {
		t.Fatal(err)
	}
	if ch.lastDataEnd <= ch.Now() {
		t.Fatalf("test setup: no data in flight (lastDataEnd %d, now %d)", ch.lastDataEnd, ch.Now())
	}
	if next := ch.NextEvent(); next > ch.lastDataEnd {
		t.Fatalf("NextEvent = %d jumped past the data horizon %d", next, ch.lastDataEnd)
	}
}

// Repeatedly skipping must advance the clock monotonically, never
// overshoot the refresh deadline, and eventually land on it and service
// the refresh — with no demand commands issued at all.
func TestSkipToNextEventReachesRefresh(t *testing.T) {
	ch, _ := newEventTestChannel(t)
	if _, err := ch.Issue(hbm.Command{Kind: hbm.CmdACT, BG: 1, Bank: 2, Row: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Issue(hbm.Command{Kind: hbm.CmdPRE, BG: 1, Bank: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64 && ch.Refreshes() == 0; i++ {
		prev := ch.Now()
		next := ch.NextEvent()
		if next < prev {
			t.Fatalf("NextEvent = %d behind clock %d", next, prev)
		}
		if next > ch.nextRefresh {
			t.Fatalf("NextEvent = %d beyond refresh deadline %d", next, ch.nextRefresh)
		}
		if _, err := ch.SkipToNextEvent(); err != nil {
			t.Fatal(err)
		}
		if ch.Now() < prev {
			t.Fatalf("SkipToNextEvent moved the clock backwards: %d -> %d", prev, ch.Now())
		}
		if ch.Now() == prev && ch.Refreshes() == 0 {
			t.Fatalf("SkipToNextEvent did not advance a non-quiescent channel at cycle %d", prev)
		}
	}
	if ch.Refreshes() == 0 {
		t.Fatal("skipping never reached the refresh deadline")
	}
}

// Idle on a quiet scheduler uses the skip: refresh debt is paid during
// the quiet period instead of stalling the next demand burst.
func TestIdleServicesRefreshDuringQuietTime(t *testing.T) {
	ch, cfg := newEventTestChannel(t)
	s := NewScheduler(ch, cfg)
	for i := 0; i < 8 && ch.Refreshes() == 0; i++ {
		if err := s.Idle(16); err != nil {
			t.Fatal(err)
		}
	}
	if ch.Refreshes() == 0 {
		t.Fatal("Idle never serviced a refresh on a quiet channel")
	}
}

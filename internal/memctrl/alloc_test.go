package memctrl

import (
	"testing"

	"pimsim/internal/hbm"
)

// TestEnqueueDrainZeroAlloc pins the FR-FCFS steady state: with the ring
// buffer at capacity and the transaction free list populated (both happen
// during the warm-up round), enqueue/schedule/service cycles must not
// allocate. AutoRelease recycles each completed transaction the way the
// experiment sweeps do.
func TestEnqueueDrainZeroAlloc(t *testing.T) {
	cfg := hbm.HBM2Config(1200)
	cfg.Functional = false
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChannel(dev.PCH(0), cfg)
	s := NewScheduler(ch, cfg)
	s.AutoRelease = true
	am := NewAddrMap(16, cfg.BankGroups, cfg.BanksPerGroup,
		cfg.Rows, cfg.ColumnsPerRow(), cfg.AccessBytes)

	var state uint64
	next := func() uint64 { // splitmix64
		state += 0x9E3779B97F4A7C15
		z := state
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		return z ^ z>>31
	}
	round := func() {
		for i := 0; i < 32; i++ {
			addr := (next() % am.Capacity()) &^ 31
			loc, err := am.Decode(addr)
			if err != nil {
				t.Fatal(err)
			}
			loc.Channel = 0
			s.Enqueue(next()%4 == 0, loc, nil)
		}
		if _, err := s.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	round() // grows the ring and fills the free list

	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Errorf("enqueue+drain round allocates %v objects, want 0", avg)
	}
}

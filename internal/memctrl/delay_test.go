package memctrl

import (
	"testing"

	"pimsim/internal/hbm"
)

// fixedDelay delays every command by a constant: the minimal Delayer.
type fixedDelay struct {
	cycles int64
	calls  int64
}

func (f *fixedDelay) ExtraIssueCycles(channel int, seq, now int64) int64 {
	f.calls++
	return f.cycles
}

// The Delay hook pushes issue cycles later without breaking legality:
// the same command sequence still succeeds, just slower, and the nil
// path is untouched.
func TestDelayHook(t *testing.T) {
	run := func(d Delayer) (*Channel, error) {
		cfg := hbm.HBM2Config(1000)
		dev, err := hbm.NewDevice(cfg)
		if err != nil {
			return nil, err
		}
		c := NewChannel(dev.PCH(0), cfg)
		c.Delay = d
		cmds := []hbm.Command{
			{Kind: hbm.CmdACT, BG: 0, Bank: 0, Row: 5},
			{Kind: hbm.CmdRD, BG: 0, Bank: 0, Col: 1},
			{Kind: hbm.CmdPRE, BG: 0, Bank: 0},
		}
		for _, cmd := range cmds {
			if _, err := c.Issue(cmd); err != nil {
				return nil, err
			}
		}
		return c, nil
	}

	base, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	fd := &fixedDelay{cycles: 50}
	slow, err := run(fd)
	if err != nil {
		t.Fatalf("delayed issue became illegal: %v", err)
	}
	if fd.calls != 3 {
		t.Errorf("delayer called %d times, want 3", fd.calls)
	}
	// Each delayed command issues at least 50 cycles after the previous
	// command's clock (delays can overlap mandatory timing gaps, so the
	// naive 3*50-on-top-of-base sum does not hold).
	if want := int64(3 * 50); slow.Now() < want {
		t.Errorf("delayed clock %d, want >= %d (base %d)", slow.Now(), want, base.Now())
	}
	if slow.Now() <= base.Now() {
		t.Errorf("delay had no effect: %d <= %d", slow.Now(), base.Now())
	}
}

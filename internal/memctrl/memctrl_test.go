package memctrl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/pim"
)

func testMap() AddrMap {
	c := hbm.HBM2Config(1000)
	return NewAddrMap(16, c.BankGroups, c.BanksPerGroup, c.Rows, c.ColumnsPerRow(), c.AccessBytes)
}

func TestAddrMapRoundTrip(t *testing.T) {
	m := testMap()
	f := func(raw uint64) bool {
		addr := (raw % m.Capacity()) &^ uint64(m.AccessBytes-1)
		l, err := m.Decode(addr)
		if err != nil {
			return false
		}
		return m.Encode(l) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestAddrMapStriping(t *testing.T) {
	m := testMap()
	// Consecutive 32-byte blocks hit consecutive channels.
	for i := 0; i < 32; i++ {
		l, err := m.Decode(uint64(i * 32))
		if err != nil {
			t.Fatal(err)
		}
		if l.Channel != i%16 {
			t.Fatalf("block %d -> channel %d, want %d", i, l.Channel, i%16)
		}
	}
	// Within one channel, consecutive blocks alternate bank groups (the
	// tCCD_S streaming property).
	var prev Loc
	for i := 0; i < 8; i++ {
		l, err := m.Decode(uint64(i * 32 * 16)) // stride = channels
		if err != nil {
			t.Fatal(err)
		}
		if l.Channel != 0 {
			t.Fatalf("stride walk left channel 0")
		}
		if i > 0 && l.BG == prev.BG && i%4 != 0 {
			t.Fatalf("blocks %d and %d share bank group %d", i-1, i, l.BG)
		}
		prev = l
	}
}

func TestAddrMapBounds(t *testing.T) {
	m := testMap()
	if _, err := m.Decode(m.Capacity()); err == nil {
		t.Error("address at capacity accepted")
	}
	if m.Capacity() != 4<<30 {
		t.Errorf("capacity = %d, want 4 GiB", m.Capacity())
	}
}

func newChan(t *testing.T, cfg hbm.Config) (*Channel, *hbm.Device) {
	t.Helper()
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewChannel(dev.PCH(0), cfg), dev
}

func TestSchedulerSequentialStreamNearPeak(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	cfg.Functional = false
	ch, _ := newChan(t, cfg)
	s := NewScheduler(ch, cfg)
	m := testMap()

	const blocks = 512
	for i := 0; i < blocks; i++ {
		l, err := m.Decode(uint64(i * 32 * 16)) // sequential within channel 0
		if err != nil {
			t.Fatal(err)
		}
		s.Enqueue(false, l, nil)
	}
	end, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	// Peak is 32 B per tCCD_S (2 cycles) = 16 GB/s at 1 GHz. A sequential
	// stream should exceed 85% of that.
	gbps := float64(blocks*32) / cfg.Timing.CyclesToNs(end)
	if gbps < 0.85*16 {
		t.Errorf("sequential stream = %.2f GB/s, want > 13.6", gbps)
	}
	if s.RowHits() < blocks-8 {
		t.Errorf("row hits = %d of %d", s.RowHits(), blocks)
	}
}

func TestSchedulerRandomStreamDegrades(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	cfg.Functional = false
	ch, _ := newChan(t, cfg)
	s := NewScheduler(ch, cfg)
	m := testMap()
	rng := rand.New(rand.NewSource(9))

	const blocks = 512
	for i := 0; i < blocks; i++ {
		addr := (uint64(rng.Int63()) % m.Capacity()) &^ 31
		l, err := m.Decode(addr)
		if err != nil {
			t.Fatal(err)
		}
		l.Channel = 0
		s.Enqueue(false, l, nil)
	}
	end, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	gbps := float64(blocks*32) / cfg.Timing.CyclesToNs(end)
	if gbps > 12 {
		t.Errorf("random stream = %.2f GB/s, expected heavy row-miss degradation", gbps)
	}
	// Random addresses force an activate per access; most arrive via the
	// speculative activate-ahead path, the rest as demand misses/opens.
	acts := s.RowMisses() + s.RowOpens() + s.AheadOpens()
	if acts < blocks/2 {
		t.Errorf("misses+opens+ahead = %d, expected mostly misses", acts)
	}
}

func TestSchedulerReordersRowHits(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	ch, _ := newChan(t, cfg)
	s := NewScheduler(ch, cfg)

	// Open row 1 of (0,0) via a first transaction, then enqueue a conflict
	// (row 2, same bank) followed by a row-1 hit. FR-FCFS serves the
	// younger hit first — exactly the hazard of Fig. 5.
	s.Enqueue(false, Loc{BG: 0, Bank: 0, Row: 1, Col: 0}, nil)
	if _, err := s.step(); err != nil {
		t.Fatal(err)
	}
	miss := s.Enqueue(false, Loc{BG: 0, Bank: 0, Row: 2, Col: 0}, nil)
	hit := s.Enqueue(false, Loc{BG: 0, Bank: 0, Row: 1, Col: 5}, nil)
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if hit.issued >= miss.issued {
		t.Errorf("row hit issued at %d after older miss at %d; FR-FCFS should reorder", hit.issued, miss.issued)
	}
	if s.Reordered() == 0 {
		t.Error("reorder count is zero")
	}
	// A Window of 1 would have preserved program order.
	ch2, _ := newChan(t, cfg)
	s2 := NewScheduler(ch2, cfg)
	s2.Window = 1
	s2.Enqueue(false, Loc{BG: 0, Bank: 0, Row: 1, Col: 0}, nil)
	if _, err := s2.step(); err != nil {
		t.Fatal(err)
	}
	miss2 := s2.Enqueue(false, Loc{BG: 0, Bank: 0, Row: 2, Col: 0}, nil)
	hit2 := s2.Enqueue(false, Loc{BG: 0, Bank: 0, Row: 1, Col: 5}, nil)
	if _, err := s2.Drain(); err != nil {
		t.Fatal(err)
	}
	if hit2.issued <= miss2.issued {
		t.Error("in-order controller still reordered")
	}
}

// TestActivateAheadDoesNotPolluteDemandCounters: speculative PRE/ACT from
// the activate-ahead path must land in AheadOpens/AheadCloses, never in
// the demand RowMisses/RowOpens counters (regression: it used to fold
// speculative traffic into the demand row-hit rate).
func TestActivateAheadDoesNotPolluteDemandCounters(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	cfg.Functional = false
	ch, _ := newChan(t, cfg)
	s := NewScheduler(ch, cfg)

	// Three transactions on three different banks, all closed. Servicing
	// the first speculatively opens the other two, which then hit.
	s.Enqueue(false, Loc{BG: 0, Bank: 0, Row: 1, Col: 0}, nil)
	s.Enqueue(false, Loc{BG: 1, Bank: 0, Row: 2, Col: 0}, nil)
	s.Enqueue(false, Loc{BG: 2, Bank: 0, Row: 3, Col: 0}, nil)
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if s.AheadOpens() != 2 {
		t.Errorf("ahead opens = %d, want 2", s.AheadOpens())
	}
	if s.RowOpens() != 1 || s.RowHits() != 2 || s.RowMisses() != 0 {
		t.Errorf("demand opens/hits/misses = %d/%d/%d, want 1/2/0 (speculative traffic leaked in?)",
			s.RowOpens(), s.RowHits(), s.RowMisses())
	}
	// The demand counters partition the serviced transactions exactly.
	if got := s.RowHits() + s.RowMisses() + s.RowOpens(); got != s.Completed() {
		t.Errorf("hits+misses+opens = %d, completed = %d", got, s.Completed())
	}

	// An unwanted open row is closed early: that precharge is speculative
	// too and must count as an AheadClose, not a demand miss.
	ch2, _ := newChan(t, cfg)
	s2 := NewScheduler(ch2, cfg)
	s2.Enqueue(false, Loc{BG: 1, Bank: 1, Row: 9, Col: 0}, nil) // opens (1,1) row 9
	if _, err := s2.Drain(); err != nil {
		t.Fatal(err)
	}
	s2.Enqueue(false, Loc{BG: 0, Bank: 0, Row: 1, Col: 0}, nil)
	s2.Enqueue(false, Loc{BG: 1, Bank: 1, Row: 5, Col: 0}, nil) // conflicts with row 9
	if _, err := s2.Drain(); err != nil {
		t.Fatal(err)
	}
	if s2.AheadCloses() != 1 {
		t.Errorf("ahead closes = %d, want 1", s2.AheadCloses())
	}
	if s2.RowMisses() != 0 {
		t.Errorf("demand misses = %d, want 0 (speculative precharge leaked in?)", s2.RowMisses())
	}
}

func TestSchedulerWriteReadData(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	ch, _ := newChan(t, cfg)
	s := NewScheduler(ch, cfg)
	payload := make([]byte, 32)
	for i := range payload {
		payload[i] = byte(i)
	}
	s.Enqueue(true, Loc{BG: 1, Bank: 2, Row: 3, Col: 4}, payload)
	rd := s.Enqueue(false, Loc{BG: 1, Bank: 2, Row: 3, Col: 4}, nil)
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if rd.Data[i] != payload[i] {
			t.Fatalf("read back %x", rd.Data)
		}
	}
}

func TestFenceAccounting(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	ch, _ := newChan(t, cfg)
	ch.Issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: 0, Row: 0})
	ch.Issue(hbm.Command{Kind: hbm.CmdRD, BG: 0, Bank: 0, Col: 0})
	before := ch.Now()
	ch.Fence()
	if ch.Fences() != 1 {
		t.Error("fence not counted")
	}
	// The fence waits out read latency + burst + the host cost.
	minAdvance := int64(cfg.Timing.RL + cfg.Timing.DataCycles() + ch.FenceCycles)
	if ch.Now()-before < minAdvance-int64(cfg.Timing.RL) {
		t.Errorf("fence advanced %d cycles, want >= %d-ish", ch.Now()-before, minAdvance)
	}
	// With guaranteed order, fences are free.
	ch2, _ := newChan(t, cfg)
	ch2.GuaranteeOrder = true
	ch2.Fence()
	if ch2.Fences() != 0 || ch2.Now() != 0 {
		t.Error("guaranteed-order fence was not free")
	}
}

func TestRefreshHappensInSBMode(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	ch, _ := newChan(t, cfg)
	s := NewScheduler(ch, cfg)
	// Spread transactions across several tREFI periods.
	for i := 0; i < 40; i++ {
		s.Enqueue(false, Loc{BG: i % 4, Bank: 0, Row: uint32(i), Col: 0}, nil)
		if _, err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		if err := s.CloseAll(); err != nil {
			t.Fatal(err)
		}
		ch.AdvanceTo(ch.Now() + int64(cfg.Timing.REFI)/4)
	}
	if ch.Refreshes() == 0 {
		t.Error("no refresh over many tREFI periods")
	}
}

// TestAdvanceToRejectsBackwards pins the non-monotonic-clock guard: a
// target behind the channel clock means a cross-channel join computed a
// stale frontier (a scheduler bug) and must surface as an error rather
// than silently rewinding simulated time.
func TestAdvanceToRejectsBackwards(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	ch, _ := newChan(t, cfg)
	if err := ch.AdvanceTo(100); err != nil {
		t.Fatalf("forward advance: %v", err)
	}
	if err := ch.AdvanceTo(100); err != nil {
		t.Fatalf("same-cycle advance must be a no-op: %v", err)
	}
	if err := ch.AdvanceTo(99); err == nil {
		t.Fatal("backwards advance succeeded, want error")
	}
	if got := ch.Now(); got != 100 {
		t.Errorf("clock is %d after a rejected advance, want 100 (unchanged)", got)
	}
}

// TestRefreshDuringPIMBurstPreservesResults shrinks tREFI so refreshes
// land in the middle of an AB-PIM kernel, and checks that the channel
// transparently closes, refreshes, reopens, and the kernel's numeric
// results are unaffected.
func TestRefreshDuringPIMBurstPreservesResults(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	// Shrink tREFI so refreshes land mid-burst (still > one full
	// PREA+REF+ACT round trip, or refresh could never keep up).
	cfg.Timing.REFI = 900
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	execs, err := pim.Attach(dev)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChannel(dev.PCH(0), cfg)
	issue := func(cmd hbm.Command) hbm.IssueResult {
		t.Helper()
		res, err := ch.Issue(cmd)
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		return res
	}

	const row = 50
	in := fp16.FromFloat32s([]float32{1, -2, 3, -4, 5, -6, 7, -8, 9, -10, 11, -12, 13, -14, 15, -16})
	// Data into every even bank, SB mode.
	for u := 0; u < 8; u++ {
		bg, b := (2*u)/cfg.BanksPerGroup, (2*u)%cfg.BanksPerGroup
		issue(hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: b, Row: row})
		for c := 0; c < 8; c++ {
			issue(hbm.Command{Kind: hbm.CmdWR, BG: bg, Bank: b, Col: uint32(c), Data: in.Bytes()})
		}
		issue(hbm.Command{Kind: hbm.CmdPRE, BG: bg, Bank: b})
	}

	// Enter AB, program a long copy kernel: even -> GRF -> odd, 8 columns,
	// looped 8 times over the same columns (64 triggers each way).
	issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.ABMRBank, Row: cfg.ModeRow()})
	issue(hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.ABMRBank})
	prog, err := isa.Assemble(`
		MOV(AAM) GRF_A, EVEN_BANK
		JUMP -1, 7
		MOV(AAM) ODD_BANK, GRF_A
		JUMP -1, 7
		JUMP -4, 7
		EXIT
	`)
	if err != nil {
		t.Fatal(err)
	}
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	issue(hbm.Command{Kind: hbm.CmdACT, Row: cfg.CRFRow()})
	buf := make([]byte, 32)
	for i, w := range words {
		buf[4*i], buf[4*i+1], buf[4*i+2], buf[4*i+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
	}
	issue(hbm.Command{Kind: hbm.CmdWR, Col: 0, Data: buf})
	issue(hbm.Command{Kind: hbm.CmdPREA})
	pimOn := make([]byte, 32)
	pimOn[0] = 1
	issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.ABMRBank, Row: cfg.ModeRow()})
	issue(hbm.Command{Kind: hbm.CmdWR, BG: 0, Bank: hbm.ABMRBank, Col: hbm.ColPIMOpMode, Data: pimOn})
	issue(hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.ABMRBank})

	issue(hbm.Command{Kind: hbm.CmdACT, Row: row})
	for pass := 0; pass < 8; pass++ {
		for c := 0; c < 8; c++ {
			issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: uint32(c)})
		}
		for c := 0; c < 8; c++ {
			issue(hbm.Command{Kind: hbm.CmdWR, Bank: 1, Col: uint32(c)})
		}
		ch.Fence()
	}
	if !execs[0].AllDone() {
		t.Fatal("kernel incomplete")
	}
	if ch.Refreshes() == 0 {
		t.Fatal("test did not actually exercise mid-burst refresh")
	}

	issue(hbm.Command{Kind: hbm.CmdPREA})
	pimOn[0] = 0
	issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.ABMRBank, Row: cfg.ModeRow()})
	issue(hbm.Command{Kind: hbm.CmdWR, BG: 0, Bank: hbm.ABMRBank, Col: hbm.ColPIMOpMode, Data: pimOn})
	issue(hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.ABMRBank})
	issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.SBMRBank, Row: cfg.ModeRow()})
	issue(hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.SBMRBank})

	// Odd bank 1 (unit 0) must contain the copied data.
	issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: 1, Row: row})
	res := issue(hbm.Command{Kind: hbm.CmdRD, BG: 0, Bank: 1, Col: 3})
	got := fp16.VectorFromBytes(res.Data)
	for l := range in {
		if got[l] != in[l] {
			t.Fatalf("lane %d: %v, want %v (refresh corrupted the burst?)", l, got[l], in[l])
		}
	}
}

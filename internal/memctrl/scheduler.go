package memctrl

import (
	"fmt"

	"pimsim/internal/hbm"
)

// Tx is one host memory transaction (a 32-byte read or write).
type Tx struct {
	Write bool
	Loc   Loc
	Data  []byte // write payload, or read result after completion

	id       int64
	enqueued int64 // cycle the transaction entered the queue
	issued   int64 // column command issue cycle
	done     int64 // data completion cycle

	// buf is transaction-owned storage for read results: device read data
	// lives in pseudo-channel scratch that the next command reuses, so it
	// is copied here (Data then aliases buf). Reused across free-list
	// recycles.
	buf []byte
}

// Done returns the cycle the transaction's data finished transferring.
func (t *Tx) Done() int64 { return t.done }

// Scheduler is a First-Ready, First-Come-First-Served (FR-FCFS) command
// scheduler for one channel, the policy of Rixner et al. that modern DRAM
// controllers use (Section IV-C cites it as the reason PIM command order
// cannot be assumed). Row-buffer hits are served before older misses
// within a lookahead window.
type Scheduler struct {
	ch  *Channel
	cfg hbm.Config

	// Window is how many queued transactions the scheduler may inspect
	// when picking the next one (the out-of-order depth). Window 1 is a
	// strict in-order controller.
	Window int

	// AheadDepth is how many idle banks activateAhead may open per
	// serviced transaction (0 disables the overlap; the ablation knob).
	AheadDepth int

	// AutoRelease, when set, makes Drain/Idle/FlushWrites return every
	// transaction they complete to the free list for reuse. Only enable it
	// for streams that discard Enqueue's result: a released Tx (and its
	// Data) is recycled by a later Enqueue.
	AutoRelease bool

	queue  txRing
	nextID int64
	free   []*Tx // recycled transactions (see Release)

	// Posted-write state (see writebuffer.go).
	writeBuf            bool
	lowWater, highWater int
	wqueue              txRing

	// activateAhead scratch: per-flat-bank window summary built in one
	// pass (the old nested wanted-scan was O(window²) per serviced
	// transaction). aheadOrder remembers which entries are live so the
	// next call clears only those. Banks <= 64 on every supported
	// geometry (the same bound the visited bitmask relied on).
	aheadBank  [64]aheadBankState
	aheadOrder []int
	// aheadFresh marks the scratch as built by the current step's pick
	// scan; activateAhead consumes it. Services that bypass the pick scan
	// (write-buffer drains) find it false and rebuild from the live queue.
	aheadFresh bool
}

// aheadBankState summarizes one bank's slice of the FR-FCFS window for
// the activate-ahead pass: the row its oldest queued transaction wants,
// the bank's open row, and whether any queued transaction still wants
// that open row.
type aheadBankState struct {
	firstRow  uint32
	openRow   uint32
	open      bool
	wantsOpen bool
	seen      bool
}

// summarize folds one window entry into the per-bank scratch: first
// occurrence records the bank's demand row and open-row state (window
// order preserved in aheadOrder), later occurrences only extend
// wantsOpen.
func (s *Scheduler) summarize(l Loc, bpg int, pch *hbm.PseudoChannel) {
	fb := l.BG*bpg + l.Bank
	st := &s.aheadBank[fb]
	if !st.seen {
		st.seen = true
		st.firstRow = l.Row
		st.openRow, st.open = pch.OpenRow(l.BG, l.Bank)
		st.wantsOpen = st.open && l.Row == st.openRow
		s.aheadOrder = append(s.aheadOrder, fb)
	} else if st.open && l.Row == st.openRow {
		st.wantsOpen = true
	}
}

// Demand-path stat accessors, reading this channel's shard of the metrics
// registry (see Channel.UseMetrics). Speculative activate-ahead activity is
// reported separately so these reflect the true demand row-hit rate.

// RowHits returns serviced transactions that hit an open row.
func (s *Scheduler) RowHits() int64 { return s.ch.m.rowHits.ShardValue(s.ch.m.shard) }

// RowMisses returns serviced transactions that hit a conflicting open row.
func (s *Scheduler) RowMisses() int64 { return s.ch.m.rowMisses.ShardValue(s.ch.m.shard) }

// RowOpens returns serviced transactions that found their bank idle.
func (s *Scheduler) RowOpens() int64 { return s.ch.m.rowOpens.ShardValue(s.ch.m.shard) }

// Reordered returns how often a younger transaction bypassed an older one.
func (s *Scheduler) Reordered() int64 { return s.ch.m.reordered.ShardValue(s.ch.m.shard) }

// Completed returns the number of serviced transactions.
func (s *Scheduler) Completed() int64 { return s.ch.m.completed.ShardValue(s.ch.m.shard) }

// Forwarded returns reads satisfied from the write buffer.
func (s *Scheduler) Forwarded() int64 { return s.ch.m.forwarded.ShardValue(s.ch.m.shard) }

// AheadOpens returns speculative activates issued on idle banks.
func (s *Scheduler) AheadOpens() int64 { return s.ch.m.aheadOpens.ShardValue(s.ch.m.shard) }

// AheadCloses returns speculative early precharges of unwanted open rows.
func (s *Scheduler) AheadCloses() int64 { return s.ch.m.aheadCloses.ShardValue(s.ch.m.shard) }

// DefaultWindow matches a contemporary 32-entry per-channel queue.
const DefaultWindow = 32

// NewScheduler builds an FR-FCFS scheduler over a channel.
func NewScheduler(ch *Channel, cfg hbm.Config) *Scheduler {
	return &Scheduler{ch: ch, cfg: cfg, Window: DefaultWindow, AheadDepth: 2}
}

// Enqueue adds a transaction to the queue and returns it. With the write
// buffer enabled, writes post immediately and drain later.
func (s *Scheduler) Enqueue(write bool, loc Loc, data []byte) *Tx {
	tx := s.alloc()
	tx.Write, tx.Loc, tx.Data = write, loc, data
	tx.id, tx.enqueued = s.nextID, s.ch.Now()
	s.nextID++
	if write && s.writeBuf {
		s.enqueueWrite(tx)
	} else {
		s.queue.push(tx)
	}
	return tx
}

// alloc takes a transaction from the free list, or allocates one.
func (s *Scheduler) alloc() *Tx {
	if n := len(s.free); n > 0 {
		tx := s.free[n-1]
		s.free = s.free[:n-1]
		return tx
	}
	return &Tx{}
}

// Release returns a completed transaction to the scheduler's free list so
// a later Enqueue reuses it instead of allocating. The caller must be done
// with the Tx and its Data. Callers that retain transactions simply never
// release them; see also AutoRelease for fire-and-forget streams.
func (s *Scheduler) Release(tx *Tx) {
	if tx == nil {
		return
	}
	*tx = Tx{buf: tx.buf[:0]}
	s.free = append(s.free, tx)
}

// Pending returns the number of queued transactions.
func (s *Scheduler) Pending() int { return s.queue.len() }

// Drain services the whole queue (including buffered writes) and returns
// the cycle at which the last data transfer completes.
func (s *Scheduler) Drain() (int64, error) {
	var last int64
	for s.queue.len() > 0 {
		tx, err := s.step()
		if err != nil {
			return 0, err
		}
		if tx.done > last {
			last = tx.done
		}
		if s.AutoRelease {
			s.Release(tx)
		}
	}
	if err := s.FlushWrites(); err != nil {
		return 0, err
	}
	if now := s.ch.Now(); now > last {
		last = now
	}
	return last, nil
}

// step picks and services one transaction.
func (s *Scheduler) step() (*Tx, error) {
	if s.queue.len() == 0 {
		return nil, fmt.Errorf("memctrl: step on empty queue")
	}
	window := s.Window
	if window < 1 {
		window = 1
	}
	if window > s.queue.len() {
		window = s.queue.len()
	}

	// One scan serves both decisions of this step: the FR-FCFS pick (the
	// oldest row hit in the window, else the oldest) and the per-bank
	// window summary activateAhead consumes after the pick is serviced.
	// The summary is a cache of the window's bank/row demand; see
	// activateAhead for the invalidation argument (why it stays valid
	// across the state changes service makes before using it).
	for _, fb := range s.aheadOrder {
		s.aheadBank[fb] = aheadBankState{}
	}
	s.aheadOrder = s.aheadOrder[:0]
	bpg := s.cfg.BanksPerGroup
	pch := s.ch.PCH()
	pick := -1
	for i := 0; i < window; i++ {
		l := s.queue.at(i).Loc
		fb := l.BG*bpg + l.Bank
		st := &s.aheadBank[fb]
		if !st.seen {
			st.seen = true
			st.firstRow = l.Row
			st.openRow, st.open = pch.OpenRow(l.BG, l.Bank)
			st.wantsOpen = st.open && l.Row == st.openRow
			s.aheadOrder = append(s.aheadOrder, fb)
		} else if st.open && l.Row == st.openRow {
			st.wantsOpen = true
		}
		if pick < 0 && st.open && l.Row == st.openRow {
			pick = i
		}
	}
	if pick < 0 {
		pick = 0
	}
	m := s.ch.m
	m.reorderDist.Observe(m.shard, int64(pick))
	if pick > 0 {
		m.reordered.Inc(m.shard)
	}
	tx := s.queue.removeAt(pick)
	// Store-to-load forwarding: a read covered by a buffered write never
	// touches DRAM.
	if !tx.Write {
		if data, ok := s.forward(tx.Loc); ok {
			tx.buf = append(tx.buf[:0], data...)
			tx.Data = tx.buf
			tx.done = s.ch.Now()
			m.forwarded.Inc(m.shard)
			m.completed.Inc(m.shard)
			return tx, nil
		}
	}
	s.aheadFresh = true
	if err := s.service(tx); err != nil {
		return nil, err
	}
	m.completed.Inc(m.shard)
	// The read is on its way; if the write buffer is at capacity, drain it
	// now (behind the read, never in front of it).
	if err := s.maybeDrain(); err != nil {
		return nil, err
	}
	return tx, nil
}

// Idle lets the controller use a quiet period: it drains up to max
// buffered writes while no reads are pending, then jumps the channel
// clock to the next cycle where bank state can change on its own
// (Channel.NextEvent: timer expiry, data completion, refresh deadline),
// servicing any refresh that lands due there — refresh debt is paid
// during quiet time instead of stalling the next demand burst.
func (s *Scheduler) Idle(max int) error {
	if s.queue.len() > 0 {
		return nil
	}
	if s.writeBuf {
		target := s.wqueue.len() - max
		if target < 0 {
			target = 0
		}
		if err := s.drainWrites(target); err != nil {
			return err
		}
	}
	_, err := s.ch.SkipToNextEvent()
	return err
}

// service opens the row if needed and issues the column command.
func (s *Scheduler) service(tx *Tx) error {
	l := tx.Loc
	m := s.ch.m
	row, open := s.ch.PCH().OpenRow(l.BG, l.Bank)
	switch {
	case open && row == l.Row:
		m.rowHits.Inc(m.shard)
	case open:
		m.rowMisses.Inc(m.shard)
		if _, err := s.ch.Issue(hbm.Command{Kind: hbm.CmdPRE, BG: l.BG, Bank: l.Bank}); err != nil {
			return err
		}
		fallthrough
	default:
		if !open {
			m.rowOpens.Inc(m.shard)
		}
		if _, err := s.ch.Issue(hbm.Command{Kind: hbm.CmdACT, BG: l.BG, Bank: l.Bank, Row: l.Row}); err != nil {
			return err
		}
	}

	// Activate-ahead: open rows for queued transactions on other idle
	// banks so their tRCD overlaps this transaction's data transfer.
	s.activateAhead(l)

	kind := hbm.CmdRD
	if tx.Write {
		kind = hbm.CmdWR
	}
	res, err := s.ch.Issue(hbm.Command{Kind: kind, BG: l.BG, Bank: l.Bank, Col: l.Col, Data: tx.Data})
	if err != nil {
		return err
	}
	tx.issued = res.Cycle
	lat := s.cfg.Timing.WL
	if !tx.Write {
		lat = s.cfg.Timing.RL
		if res.Data == nil {
			tx.Data = nil // timing-only mode moves no data
		} else {
			// res.Data is pseudo-channel scratch (valid until the next
			// command); copy into transaction-owned storage.
			tx.buf = append(tx.buf[:0], res.Data...)
			tx.Data = tx.buf
		}
	}
	tx.done = res.Cycle + int64(lat+s.cfg.Timing.DataCycles())
	return nil
}

// activateAhead opens rows for upcoming transactions on other banks so
// their tRCD (and tRP, for conflicts) overlaps the current data transfer.
// For each bank, only its oldest queued transaction is considered, and an
// open row is closed early only when no queued transaction in the window
// still wants it — so no row hit FR-FCFS would have served is sacrificed.
//
// It consumes the per-bank window summary step built during its pick scan
// instead of rescanning the window. The summary stays valid because the
// only state that changed since it was built is on the serviced
// transaction's own bank (service's PRE/ACT), and that bank is excluded
// from speculation anyway; transparent refresh restores every open row it
// closes. Two deltas against the post-removal window are repaired here:
// the serviced entry's removal (again: its bank is skipped) and the one
// entry that slides into the window when the queue is deeper than it.
func (s *Scheduler) activateAhead(cur Loc) {
	fresh := s.aheadFresh
	s.aheadFresh = false
	if s.AheadDepth <= 0 || s.Window < 1 {
		return
	}
	bpg := s.cfg.BanksPerGroup
	curBank := cur.BG*bpg + cur.Bank
	pch := s.ch.PCH()
	if fresh {
		if s.queue.len() >= s.Window {
			// The pick's removal slid one unscanned entry into the window.
			s.summarize(s.queue.at(s.Window-1).Loc, bpg, pch)
		}
	} else {
		// No pick scan preceded this service (write-buffer drain): build
		// the summary from the live read queue, like the pick scan would.
		for _, fb := range s.aheadOrder {
			s.aheadBank[fb] = aheadBankState{}
		}
		s.aheadOrder = s.aheadOrder[:0]
		window := s.Window
		if window > s.queue.len() {
			window = s.queue.len()
		}
		for i := 0; i < window; i++ {
			s.summarize(s.queue.at(i).Loc, bpg, pch)
		}
	}
	opened := 0
	for _, fb := range s.aheadOrder {
		if opened >= s.AheadDepth {
			break
		}
		if fb == curBank {
			continue
		}
		st := &s.aheadBank[fb]
		if st.open && st.firstRow == st.openRow {
			continue // already a hit
		}
		bg, bank := fb/bpg, fb%bpg
		if st.open {
			// Conflict: close early only if nobody in the window still
			// wants the open row.
			if st.wantsOpen {
				continue
			}
			if _, err := s.ch.Issue(hbm.Command{Kind: hbm.CmdPRE, BG: bg, Bank: bank}); err != nil {
				return
			}
			// Speculative traffic: counted apart from the demand row-hit /
			// miss counters so reported hit rates stay honest.
			s.ch.m.aheadCloses.Inc(s.ch.m.shard)
		}
		s.ch.m.aheadOpens.Inc(s.ch.m.shard)
		// Best effort: tRRD/tFAW pressure just means the ACT lands a bit
		// later; stop looking ahead on any failure.
		if _, err := s.ch.Issue(hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: bank, Row: st.firstRow}); err != nil {
			return
		}
		opened++
	}
}

// CloseAll precharges every open bank (used before mode transitions and
// forced refresh).
func (s *Scheduler) CloseAll() error {
	_, err := s.ch.Issue(hbm.Command{Kind: hbm.CmdPREA})
	return err
}

package host

// Calibrated efficiency factors for the host's kernel library.
//
// The paper measures a real processor whose GEMV path "is not optimized to
// fully utilize the off-chip memory bandwidth of HBM" (Section VII-B) —
// the single quantity that sets the headline 11.2x. These constants are
// calibrated ONCE against the batch-1/2/4 GEMV columns of Fig. 10 and
// then held fixed; every other number in the reproduction (applications,
// energy, DSE) is derived, not fitted.
//
// Interpretation:
//   - batch 1 runs the library's GEMV kernel: skinny outputs, poor
//     coalescing and partition camping keep it near 8% of peak bandwidth
//     (~100 GB/s of 1.23 TB/s — in line with public rocBLAS/cuBLAS HGEMV
//     measurements on comparable parts);
//   - batch >= 2 switches to small-N GEMM kernels that stream far better.
const (
	gemvEffB1 = 0.065
	gemvEffB2 = 0.18
	gemvEffB4 = 0.60

	// Streaming (elementwise / copy) kernels are easy to write well.
	streamEfficiency = 0.78
	streamMissRate   = 1.0

	// LSTM layers run through persistent-RNN style library kernels that
	// stream weights far better than the generic GEMV path (the reason
	// DS2's end-to-end gain is 3.5x while raw GEMV shows 11.2x).
	lstmEffB1 = 0.18
	lstmEffB2 = 0.28
	lstmEffB4 = 0.45

	// Dense convolution: batch-1 direct convolutions are occupancy- and
	// launch-starved on wide GPUs (sub-TFLOP effective rates were typical
	// for FP16 batch-1 inference in this hardware generation); batching
	// restores utilization.
	convEffB1      = 0.035
	convEffB2      = 0.10
	convEffB4      = 0.25
	gemmComputeEff = 0.60
	convMissRate   = 0.35

	// Batching turns 1-1/B of the weight touches into potential LLC hits;
	// imperfect tiling and capacity pressure spill this fraction of them
	// back to DRAM (Fig. 10 bottom: ~70-80% misses at batch 4).
	tilingSpill = 0.67
)

// gemvEfficiency interpolates the per-batch bandwidth efficiency.
func gemvEfficiency(batch int) float64 {
	switch {
	case batch <= 1:
		return gemvEffB1
	case batch == 2:
		return gemvEffB2
	case batch == 3:
		return (gemvEffB2 + gemvEffB4) / 2
	default:
		return gemvEffB4
	}
}

// lstmEfficiency interpolates the LSTM library's bandwidth efficiency.
func lstmEfficiency(batch int) float64 {
	switch {
	case batch <= 1:
		return lstmEffB1
	case batch == 2:
		return lstmEffB2
	case batch == 3:
		return (lstmEffB2 + lstmEffB4) / 2
	default:
		return lstmEffB4
	}
}

// convEfficiency interpolates batch-1 through batch-4 conv utilization.
func convEfficiency(batch int) float64 {
	switch {
	case batch <= 1:
		return convEffB1
	case batch == 2:
		return convEffB2
	case batch == 3:
		return (convEffB2 + convEffB4) / 2
	default:
		return convEffB4
	}
}

// gemvMissRate models the measured LLC miss rate of a (possibly batched)
// GEMV: miss = 1/B + (1-1/B)*spill for DRAM-resident weights, dropping
// toward zero once the weights fit in the LLC.
func gemvMissRate(batch int, weightBytes, llcBytes float64) float64 {
	if weightBytes <= llcBytes {
		// Warm weights: only cold misses on the first pass.
		return 0.02
	}
	b := float64(batch)
	return 1/b + (1-1/b)*tilingSpill
}

// StreamEfficiency exposes the calibrated streaming-kernel bandwidth
// efficiency so system-level tests can cross-check it against what the
// simulated FR-FCFS controller actually delivers on sequential streams.
func StreamEfficiency() float64 { return streamEfficiency }

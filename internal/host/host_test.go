package host

import "testing"

func TestGemvMemoryBoundAtBatch1(t *testing.T) {
	p := Default()
	c, err := p.Gemv(4096, 8192, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 64 MiB of weights at 8% of 1.23 TB/s ~ 680 us; compute is ~5 us.
	if c.NS < 100e3 {
		t.Errorf("GEMV3 time %.0f ns, expected memory-bound (> 100 us)", c.NS)
	}
	if c.LLCMissRate < 0.95 {
		t.Errorf("batch-1 miss rate %.2f, want ~1 (Fig. 10)", c.LLCMissRate)
	}
	if c.Flops != 2*4096*8192 {
		t.Errorf("flops %v", c.Flops)
	}
}

func TestGemvBatchingReducesMissAndTime(t *testing.T) {
	p := Default()
	var prevPerSample float64
	var prevMiss float64 = 2
	for _, b := range []int{1, 2, 4} {
		c, err := p.Gemv(4096, 8192, b)
		if err != nil {
			t.Fatal(err)
		}
		perSample := c.NS / float64(b)
		if prevPerSample != 0 && perSample >= prevPerSample {
			t.Errorf("batch %d per-sample time %.0f did not improve on %.0f", b, perSample, prevPerSample)
		}
		if c.LLCMissRate >= prevMiss {
			t.Errorf("batch %d miss %.2f did not drop from %.2f", b, c.LLCMissRate, prevMiss)
		}
		prevPerSample, prevMiss = perSample, c.LLCMissRate
	}
	// Fig. 10: miss rate lands at 70-80% for batch 4.
	c, _ := p.Gemv(4096, 8192, 4)
	if c.LLCMissRate < 0.65 || c.LLCMissRate > 0.85 {
		t.Errorf("batch-4 miss rate %.2f, want 0.70-0.80", c.LLCMissRate)
	}
}

func TestLLCResidentGemvIsFast(t *testing.T) {
	p := Default()
	small, err := p.Gemv(512, 512, 1) // 512 KiB of weights: LLC resident
	if err != nil {
		t.Fatal(err)
	}
	if small.LLCMissRate > 0.1 {
		t.Errorf("resident miss rate %.2f", small.LLCMissRate)
	}
	big, _ := p.Gemv(4096, 4096, 1)
	if small.NS >= big.NS {
		t.Error("LLC-resident GEMV not faster than DRAM-resident")
	}
}

func TestEltwiseStreams(t *testing.T) {
	p := Default()
	c, err := p.Eltwise(8<<20, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.DRAMBytes != 3*2*8<<20 {
		t.Errorf("bytes %v", c.DRAMBytes)
	}
	// Batch scales traffic linearly; no reuse appears.
	c4, _ := p.Eltwise(8<<20, 4, 3)
	if c4.LLCMissRate != c.LLCMissRate {
		t.Error("streaming miss rate changed with batch")
	}
	if c4.DRAMBytes != 4*c.DRAMBytes {
		t.Error("streaming traffic not linear in batch")
	}
}

func TestConvComputeBound(t *testing.T) {
	p := Default()
	// ResNet-scale conv: 4 GFLOP, 50 MB.
	c, err := p.Conv(4e9, 50e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	compOnly := p.compNs(4e9, convEfficiency(1))
	if c.NS < compOnly {
		t.Error("conv faster than its compute bound")
	}
	// Batching restores conv utilization: per-sample time drops.
	c4, err := p.Conv(4e9, 50e6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c4.NS/4 >= c.NS {
		t.Error("batched conv not faster per sample")
	}
}

func TestWithMemoryScales(t *testing.T) {
	p := Default()
	p4 := p.WithMemory(4)
	c1, _ := p.Eltwise(16<<20, 1, 3)
	c4, _ := p4.Eltwise(16<<20, 1, 3)
	sp := c1.NS / c4.NS
	if sp < 2.5 || sp > 4.1 {
		t.Errorf("4x memory sped a streaming kernel by %.2f, want ~4 minus launch overhead", sp)
	}
}

func TestCostEnergy(t *testing.T) {
	p := Default()
	c := Cost{NS: 1e9} // one second
	if got := c.Energy(p); got != p.BusyWatts {
		t.Errorf("energy %v, want %v J", got, p.BusyWatts)
	}
}

func TestInvalidArgs(t *testing.T) {
	p := Default()
	if _, err := p.Gemv(0, 8, 1); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := p.Eltwise(8, 0, 3); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := p.Conv(0, 10, 1); err == nil {
		t.Error("zero flops accepted")
	}
}

func TestNewLLCMatchesConfig(t *testing.T) {
	p := Default()
	llc := p.NewLLC()
	if llc.Capacity() != p.LLCBytes {
		t.Errorf("LLC capacity %d", llc.Capacity())
	}
}

func TestGemvBatchInterpolation(t *testing.T) {
	p := Default()
	// Batch 3 sits between 2 and 4; large batches clamp at the batch-4
	// efficiency, so per-sample time keeps improving monotonically.
	var prev float64
	for _, b := range []int{2, 3, 4, 8} {
		c, err := p.Gemv(4096, 4096, b)
		if err != nil {
			t.Fatal(err)
		}
		per := c.NS / float64(b)
		if prev != 0 && per >= prev {
			t.Errorf("batch %d per-sample %.0f ns did not improve on %.0f", b, per, prev)
		}
		prev = per
	}
}

func TestLSTMGemvBeatsGenericGemv(t *testing.T) {
	p := Default()
	g, err := p.Gemv(7040, 3520, 1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := p.LSTMGemv(7040, 3520, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Persistent-RNN kernels stream far better than the generic GEMV path
	// (the DS2-vs-raw-GEMV reconciliation).
	if l.NS*1.5 > g.NS {
		t.Errorf("LSTM kernel %.0f ns vs generic %.0f ns: expected a clear library advantage", l.NS, g.NS)
	}
}

// Package host models the unmodified commercial processor the paper
// integrates PIM-HBM with: 60 compute units at 1.725 GHz behind an LLC and
// 1.229 TB/s of HBM bandwidth. It is an envelope model — per-kernel time
// is max(compute, memory) plus launch overhead, with DRAM traffic derived
// from an LLC reuse model — matching the paper's own methodology for
// everything it did not measure directly (Section VII-D notes DRAMSim2
// runs have no host model either).
package host

import (
	"fmt"

	"pimsim/internal/cache"
)

// Processor is the host's performance/power envelope.
type Processor struct {
	CUs      int
	ClockGHz float64

	FP16TFlops float64 // peak FP16 throughput
	MemGBps    float64 // aggregate HBM bandwidth
	LLCBytes   int     // last-level cache capacity
	LLCGBps    float64 // LLC bandwidth for resident working sets

	KernelLaunchNs float64 // per-kernel dispatch overhead

	BusyWatts     float64 // package power while a compute kernel runs
	MemBoundWatts float64 // package power while stalled on memory
	IdleWatts     float64 // package power between kernels
}

// Default returns the evaluated system: a 60-CU processor with four HBM2E
// stacks at 1.2 GHz.
func Default() Processor {
	return Processor{
		CUs:            60,
		ClockGHz:       1.725,
		FP16TFlops:     26.5,   // 60 CU x 1.725 GHz x 256 FP16 FLOP/cycle
		MemGBps:        1228.8, // 4 x 307.2 GB/s
		LLCBytes:       4 << 20,
		LLCGBps:        6000,
		KernelLaunchNs: 5000,
		BusyWatts:      225,
		MemBoundWatts:  160,
		IdleWatts:      75,
	}
}

// WithMemory returns a copy with scaled memory bandwidth (the PROC-HBMx4
// hypothetical of Fig. 12).
func (p Processor) WithMemory(scale float64) Processor {
	p.MemGBps *= scale
	return p
}

// Cost is one kernel's modeled execution on the host.
type Cost struct {
	NS          float64 // wall time in nanoseconds
	DRAMBytes   float64 // bytes moved to or from DRAM
	Flops       float64
	LLCMissRate float64 // fraction of LLC lookups that went to DRAM
	ProcWatts   float64 // package power while this kernel runs
}

// Energy returns the processor energy for this kernel in joules.
func (c Cost) Energy(p Processor) float64 {
	w := c.ProcWatts
	if w == 0 {
		w = p.BusyWatts
	}
	return w * c.NS * 1e-9
}

// memNs converts a DRAM byte count into time at an efficiency factor.
func (p Processor) memNs(bytes, eff float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / (eff * p.MemGBps)
}

// compNs converts a FLOP count into time at an efficiency factor.
func (p Processor) compNs(flops, eff float64) float64 {
	if flops <= 0 {
		return 0
	}
	return flops / (eff * p.FP16TFlops * 1e3)
}

// Gemv models y = W*x with batch columns on the host BLAS.
//
// DRAM traffic: the weight matrix is touched once per sample; batching
// lets the library tile so cross-sample reuse turns 1-1/B of those
// touches into LLC hits, degraded by the spill factor (imperfect tiling
// and capacity pressure, Fig. 10's 70-80% miss floor at batch 4). Working
// sets that fit in the LLC hit after the first pass instead.
func (p Processor) Gemv(m, k, batch int) (Cost, error) {
	return p.gemv(m, k, batch, gemvEfficiency(batch))
}

// LSTMGemv models the matrix-vector work of one LSTM step through the
// host's recurrent-kernel library (persistent weights, fused gates),
// which streams substantially better than the generic GEMV path.
func (p Processor) LSTMGemv(m, k, batch int) (Cost, error) {
	return p.gemv(m, k, batch, lstmEfficiency(batch))
}

func (p Processor) gemv(m, k, batch int, eff float64) (Cost, error) {
	if m <= 0 || k <= 0 || batch <= 0 {
		return Cost{}, fmt.Errorf("host: gemv dims %dx%d batch %d", m, k, batch)
	}
	weightBytes := 2 * float64(m) * float64(k)
	vecBytes := 2 * float64(batch) * float64(k+m)
	touched := weightBytes*float64(batch) + vecBytes

	miss := gemvMissRate(batch, weightBytes, float64(p.LLCBytes))
	dram := touched*miss + vecBytes
	memT := p.memNs(dram, eff)
	// LLC-resident portion streams from the cache.
	memT += (touched - touched*miss) / p.LLCGBps

	flops := 2 * float64(m) * float64(k) * float64(batch)
	compT := p.compNs(flops, gemmComputeEff)

	ns := maxf(memT, compT) + p.KernelLaunchNs
	watts := p.MemBoundWatts
	if compT > memT {
		watts = p.BusyWatts
	}
	return Cost{NS: ns, DRAMBytes: dram, Flops: flops, LLCMissRate: miss, ProcWatts: watts}, nil
}

// Eltwise models a streaming elementwise kernel touching `streams` operand
// vectors of n elements each (ADD: 3 — two in, one out).
func (p Processor) Eltwise(n, batch, streams int) (Cost, error) {
	if n <= 0 || batch <= 0 || streams <= 0 {
		return Cost{}, fmt.Errorf("host: eltwise n=%d batch=%d", n, batch)
	}
	bytes := 2 * float64(n) * float64(batch) * float64(streams)
	// Streaming data has no reuse at any batch size (level-1 BLAS stays
	// level-2 under batching, Section VII-B).
	cost := Cost{
		DRAMBytes:   bytes,
		Flops:       float64(n) * float64(batch),
		LLCMissRate: streamMissRate,
	}
	cost.NS = p.memNs(bytes, streamEfficiency) + p.KernelLaunchNs
	cost.ProcWatts = p.MemBoundWatts
	return cost, nil
}

// Conv models a compute-bound convolution (or any dense GEMM-shaped
// layer): time is FLOP-limited with activations/weights streamed behind
// the compute.
func (p Processor) Conv(flops, bytes float64, batch int) (Cost, error) {
	if flops <= 0 || batch <= 0 {
		return Cost{}, fmt.Errorf("host: conv flops=%v", flops)
	}
	f := flops * float64(batch)
	b := bytes * float64(batch)
	cost := Cost{DRAMBytes: b, Flops: f, LLCMissRate: convMissRate, ProcWatts: p.BusyWatts}
	cost.NS = maxf(p.compNs(f, convEfficiency(batch)), p.memNs(b, streamEfficiency)) + p.KernelLaunchNs
	return cost, nil
}

// NewLLC builds an LLC simulator matching this processor, for callers that
// want trace-driven miss rates instead of the analytic model.
func (p Processor) NewLLC() *cache.Cache {
	return cache.MustNew(p.LLCBytes, 64, 16)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Package prof wires the standard pprof profilers into the command-line
// tools (-cpuprofile / -memprofile flags). The output files load directly
// into `go tool pprof`; see DESIGN.md for the profiling workflow used to
// optimize the simulator's hot paths.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpuPath is non-empty) and returns a stop
// function that must run at exit: it stops the CPU profile and, if memPath
// is non-empty, writes a heap profile of the live objects at that point.
// Either path may be empty to skip that profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpu *os.File
	if cpuPath != "" {
		cpu, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle transient garbage so the heap profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}

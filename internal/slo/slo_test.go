package slo

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"pimsim/internal/metrics"
)

func TestParseObjective(t *testing.T) {
	cases := []struct {
		in      string
		want    Objective
		wantErr bool
	}{
		{in: "p99=20ms", want: Objective{LatencyP99: 20 * time.Millisecond, Availability: 0.99}},
		{in: "p99=20ms,avail=0.999", want: Objective{LatencyP99: 20 * time.Millisecond, Availability: 0.999}},
		{in: "p99=1s,avail=99.9", want: Objective{LatencyP99: time.Second, Availability: 0.999}},
		{in: "gold:p99=5ms", want: Objective{Tenant: "gold", LatencyP99: 5 * time.Millisecond, Availability: 0.99}},
		{in: "gold/m1:p99=5ms", want: Objective{Tenant: "gold", Model: "m1", LatencyP99: 5 * time.Millisecond, Availability: 0.99}},
		{in: "*/m1:p99=5ms", want: Objective{Model: "m1", LatencyP99: 5 * time.Millisecond, Availability: 0.99}},
		{in: "avail=0.99", wantErr: true},        // missing p99
		{in: "p99=banana", wantErr: true},        // bad duration
		{in: "p99=5ms,avail=0", wantErr: true},   // out of range
		{in: "p99=5ms,avail=150", wantErr: true}, // out of range
		{in: "p99=5ms,frobs=3", wantErr: true},   // unknown key
		{in: "p99=5ms,avail", wantErr: true},     // not k=v
	}
	for _, c := range cases {
		got, err := ParseObjective(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseObjective(%q): want error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseObjective(%q): %v", c.in, err)
			continue
		}
		availClose := math.Abs(got.Availability-c.want.Availability) < 1e-9
		got.Availability, c.want.Availability = 0, 0
		if got != c.want || !availClose {
			t.Errorf("ParseObjective(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestObjectiveSpecificity(t *testing.T) {
	e := New(Config{Objectives: []Objective{
		{LatencyP99: 1 * time.Millisecond, Availability: 0.9},                              // wildcard
		{Model: "m1", LatencyP99: 2 * time.Millisecond, Availability: 0.9},                 // model exact
		{Tenant: "gold", LatencyP99: 3 * time.Millisecond, Availability: 0.9},              // tenant exact
		{Tenant: "gold", Model: "m1", LatencyP99: 4 * time.Millisecond, Availability: 0.9}, // both
	}}, nil)
	cases := []struct {
		tenant, model string
		wantP99       time.Duration
	}{
		{"bronze", "m2", 1 * time.Millisecond},
		{"bronze", "m1", 2 * time.Millisecond},
		{"gold", "m2", 3 * time.Millisecond},
		{"gold", "m1", 4 * time.Millisecond},
	}
	for _, c := range cases {
		o := e.matchObjective(c.tenant, c.model)
		if o == nil || o.LatencyP99 != c.wantP99 {
			t.Errorf("matchObjective(%s,%s) = %+v, want p99 %v", c.tenant, c.model, o, c.wantP99)
		}
	}
}

// TestSlowRefinement checks that an OK completion past the objective's
// latency target counts against the budget as OutcomeSlow.
func TestSlowRefinement(t *testing.T) {
	clk := newFakeClock()
	e := New(Config{
		Objectives: []Objective{{LatencyP99: 10 * time.Millisecond, Availability: 0.99}},
		Clock:      clk.Now,
	}, nil)
	e.RecordRequest("t", "m", 2*time.Millisecond, OutcomeOK, "fast-req")
	e.RecordRequest("t", "m", 50*time.Millisecond, OutcomeOK, "slow-req")
	_, _, total, bad := e.burnRates(e.getSeries("t", "m"))
	if total != 2 || bad != 1 {
		t.Fatalf("total=%d bad=%d, want 2/1", total, bad)
	}
	ex := e.Exemplars("t", "m")
	if len(ex) != 1 || ex[0].ReqID != "slow-req" || ex[0].Outcome != "slow" {
		t.Fatalf("exemplars = %+v, want the slow request only", ex)
	}
}

// TestExemplarRingWraps pins oldest-first eviction past ExemplarCap.
func TestExemplarRingWraps(t *testing.T) {
	clk := newFakeClock()
	e := New(Config{
		Objectives:  []Objective{{LatencyP99: time.Millisecond, Availability: 0.99}},
		ExemplarCap: 4,
		Clock:       clk.Now,
	}, nil)
	for i := 0; i < 10; i++ {
		e.RecordRequest("t", "m", time.Second, OutcomeError, fmt.Sprintf("r%d", i))
	}
	ex := e.Exemplars("t", "m")
	if len(ex) != 4 {
		t.Fatalf("got %d exemplars, want 4", len(ex))
	}
	for i, want := range []string{"r6", "r7", "r8", "r9"} {
		if ex[i].ReqID != want {
			t.Fatalf("exemplar[%d] = %s, want %s (oldest-first after wrap)", i, ex[i].ReqID, want)
		}
	}
}

// TestUnmatchedSeriesRecordedNotEvaluated: series without an objective
// still export dimensional metrics but never page.
func TestUnmatchedSeriesRecordedNotEvaluated(t *testing.T) {
	clk := newFakeClock()
	reg := metrics.New(1)
	e := New(Config{
		Objectives: []Objective{{Tenant: "gold", LatencyP99: time.Millisecond, Availability: 0.99}},
		Clock:      clk.Now,
	}, reg)
	for i := 0; i < 100; i++ {
		e.RecordRequest("bronze", "m", time.Second, OutcomeError, "r")
	}
	if tr := e.Evaluate(); len(tr) != 0 {
		t.Fatalf("unmatched series fired transitions: %+v", tr)
	}
	if st := e.Status(); len(st) != 0 {
		t.Fatalf("unmatched series in status: %+v", st)
	}
	snap := reg.Snapshot()
	name := metrics.Labels("serve_slo_requests_window", "tenant", "bronze", "model", "m", "outcome", "error")
	if got := snap.Gauge(name); got != 100 {
		t.Fatalf("dimensional window %s = %d, want 100", name, got)
	}
}

// TestNilEngineSafe: every hook is a no-op on a nil engine.
func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	e.RecordAdmit("t", "m")
	e.RecordRequest("t", "m", time.Millisecond, OutcomeOK, "r")
	if tr := e.Evaluate(); tr != nil {
		t.Fatal("nil Evaluate returned transitions")
	}
	if ht := e.HedgeTargets(); ht != nil {
		t.Fatal("nil HedgeTargets returned a map")
	}
	if s := e.Status(); s != nil {
		t.Fatal("nil Status returned series")
	}
	if b := e.Burning(); b != nil {
		t.Fatal("nil Burning returned series")
	}
	if x := e.Exemplars("t", "m"); x != nil {
		t.Fatal("nil Exemplars returned data")
	}
	if tr := e.Transitions(); tr != nil {
		t.Fatal("nil Transitions returned data")
	}
}

// TestDisabledPathAllocs gates the nil-engine hooks at zero allocations —
// a server without an SLO config must pay one pointer compare, nothing
// more.
func TestDisabledPathAllocs(t *testing.T) {
	var e *Engine
	if n := testing.AllocsPerRun(1000, func() {
		e.RecordAdmit("gold", "m1")
		e.RecordRequest("gold", "m1", 5*time.Millisecond, OutcomeOK, "req-1")
	}); n != 0 {
		t.Fatalf("disabled SLO hooks allocate %.1f/op, want 0", n)
	}
}

// TestEngineConcurrent races recorders against evaluation and status
// reads (meaningful under -race).
func TestEngineConcurrent(t *testing.T) {
	clk := newFakeClock()
	e := New(Config{
		Objectives: []Objective{{LatencyP99: time.Millisecond, Availability: 0.99}},
		Hedge:      &HedgeConfig{},
		Clock:      clk.Now,
	}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%2)
			for i := 0; i < 2000; i++ {
				e.RecordAdmit(tenant, "m")
				out := Outcome(i % 4)
				e.RecordRequest(tenant, "m", time.Duration(i)*time.Microsecond, out, "r")
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		e.Evaluate()
		_ = e.Status()
		_ = e.Burning()
		_ = e.HedgeTargets()
		clk.Advance(time.Second)
	}
	wg.Wait()
}

// fakeClock mirrors the metrics test helper: hand-driven deterministic
// time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

package slo

// The SLO drill: deterministic burn-rate scenarios on a fake clock, zero
// sleeps, exact pinned state transitions. Wall-clock layout shared by all
// scenarios: 2s window slots, one "tick" per slot — each tick records its
// traffic at the current instant, evaluates, then advances the clock 2s.
// Windows are 10s fast / 60s slow, thresholds 10 page / 2 warn, budget 1%
// (avail 0.99), ClearAfter 3. `make slo-drill` runs this matrix under
// -race.

import (
	"testing"
	"time"
)

const (
	drillTenant = "gold"
	drillQuiet  = "bronze"
	drillModel  = "m1"

	hedgeMin     = time.Millisecond
	hedgeMax     = 64 * time.Millisecond
	hedgeInitial = 8 * time.Millisecond
)

func newDrillEngine(clk *fakeClock) *Engine {
	return New(Config{
		Objectives: []Objective{
			{Tenant: drillTenant, Model: drillModel, LatencyP99: 10 * time.Millisecond, Availability: 0.99},
			{Tenant: drillQuiet, Model: drillModel, LatencyP99: 10 * time.Millisecond, Availability: 0.99},
		},
		FastWindow: 10 * time.Second,
		SlowWindow: 60 * time.Second,
		PageBurn:   10,
		WarnBurn:   2,
		ClearAfter: 3,
		Clock:      clk.Now,
		Hedge: &HedgeConfig{
			Min: hedgeMin, Max: hedgeMax, Factor: 2,
			HysteresisPct: 0.2, Initial: hedgeInitial,
		},
	}, nil)
}

// tick records one slot of traffic for both tenants and evaluates:
// 10 gold requests at goldLat, 10 bronze requests at a healthy 2ms.
func tick(clk *fakeClock, e *Engine, goldLat time.Duration) []Transition {
	for i := 0; i < 10; i++ {
		e.RecordAdmit(drillTenant, drillModel)
		e.RecordRequest(drillTenant, drillModel, goldLat, OutcomeOK, "gold-req")
		e.RecordAdmit(drillQuiet, drillModel)
		e.RecordRequest(drillQuiet, drillModel, 2*time.Millisecond, OutcomeOK, "bronze-req")
	}
	tr := e.Evaluate()
	clk.Advance(2 * time.Second)
	return tr
}

func hedgeFor(t *testing.T, e *Engine, model string) time.Duration {
	t.Helper()
	d, ok := e.HedgeTargets()[model]
	if !ok {
		t.Fatalf("no hedge target for %s", model)
	}
	return d
}

func stateFor(t *testing.T, e *Engine, tenant string) string {
	t.Helper()
	for _, s := range e.Status() {
		if s.Tenant == tenant {
			return s.State
		}
	}
	t.Fatalf("no status series for tenant %s", tenant)
	return ""
}

// TestDrillSteady: healthy traffic never transitions, and the hedge
// controller converges from its static seed down to tracking the observed
// p99 (2ms traffic → target well under the 8ms seed, never the floor).
func TestDrillSteady(t *testing.T) {
	clk := newFakeClock()
	e := newDrillEngine(clk)
	for i := 0; i < 30; i++ {
		if tr := tick(clk, e, 2*time.Millisecond); len(tr) != 0 {
			t.Fatalf("tick %d: unexpected transitions %+v", i, tr)
		}
	}
	if got := stateFor(t, e, drillTenant); got != "ok" {
		t.Fatalf("steady state = %s, want ok", got)
	}
	for _, s := range e.Status() {
		if s.FastBurn != 0 || s.SlowBurn != 0 {
			t.Fatalf("steady burn nonzero: %+v", s)
		}
		// 60s window = 30 slots × 10 req, but the last advance pushed the
		// first slot out: the window holds exactly the retained slots.
		if s.WindowBad != 0 {
			t.Fatalf("steady window bad = %d, want 0", s.WindowBad)
		}
	}
	h := hedgeFor(t, e, drillModel)
	if h <= hedgeMin || h >= hedgeInitial {
		t.Fatalf("steady hedge = %v, want tracking observed p99 in (%v, %v)", h, hedgeMin, hedgeInitial)
	}
	if len(e.Burning()) != 0 {
		t.Fatal("steady scenario reports burning series")
	}
}

// TestDrillBurnAndRecover is the tentpole scenario: a latency spike trips
// the fast window (warn on the first bad slot, page when the slow window
// catches up), the hedge controller slams to its floor, and after the
// spike clears the state steps back down one level per ClearAfter clean
// evaluations while the hedge relaxes. Every transition is pinned to its
// exact tick.
func TestDrillBurnAndRecover(t *testing.T) {
	clk := newFakeClock()
	e := newDrillEngine(clk)

	// Phase 1 — baseline: 20 clean ticks (40s of good traffic).
	for i := 0; i < 20; i++ {
		if tr := tick(clk, e, 2*time.Millisecond); len(tr) != 0 {
			t.Fatalf("baseline tick %d: unexpected transitions %+v", i, tr)
		}
	}

	// Phase 2 — spike: gold's requests complete at 50ms against a 10ms
	// objective. Expected: tick 1 flips ok→warn (fast burn 20, slow burn
	// 210-total ≈ 4.8), tick 3 flips warn→page (slow burn crosses 10).
	spikeEdges := map[int][2]string{0: {"ok", "warn"}, 2: {"warn", "page"}}
	for i := 0; i < 5; i++ {
		tr := tick(clk, e, 50*time.Millisecond)
		want, wantEdge := spikeEdges[i]
		if wantEdge {
			if len(tr) != 1 || tr[0].From != want[0] || tr[0].To != want[1] || tr[0].Tenant != drillTenant {
				t.Fatalf("spike tick %d: transitions %+v, want %s→%s for %s", i, tr, want[0], want[1], drillTenant)
			}
		} else if len(tr) != 0 {
			t.Fatalf("spike tick %d: unexpected transitions %+v", i, tr)
		}
	}
	if got := stateFor(t, e, drillTenant); got != "page" {
		t.Fatalf("after spike: state = %s, want page", got)
	}
	// The quiet tenant shares the model but never leaves ok: per-tenant
	// isolation.
	if got := stateFor(t, e, drillQuiet); got != "ok" {
		t.Fatalf("quiet tenant dragged to %s by gold's burn", got)
	}
	// Hedge slammed to the floor while paging.
	if h := hedgeFor(t, e, drillModel); h != hedgeMin {
		t.Fatalf("paging hedge = %v, want floor %v", h, hedgeMin)
	}
	// The burning series carries exemplars pointing at real request IDs.
	burning := e.Burning()
	if len(burning) != 1 || burning[0].Tenant != drillTenant || burning[0].State != "page" {
		t.Fatalf("burning = %+v, want gold paging", burning)
	}
	if len(burning[0].Exemplars) == 0 || burning[0].Exemplars[0].ReqID != "gold-req" {
		t.Fatalf("burning exemplars = %+v, want gold-req IDs", burning[0].Exemplars)
	}

	// Phase 3 — recovery: clean traffic. The fast window still holds
	// spike slots through tick 4 (level stays page); ticks 5-7 are clean
	// (page→warn on the 3rd), ticks 8-10 clean again (warn→ok on the
	// 3rd).
	recoverEdges := map[int][2]string{6: {"page", "warn"}, 9: {"warn", "ok"}}
	for i := 0; i < 12; i++ {
		tr := tick(clk, e, 2*time.Millisecond)
		want, wantEdge := recoverEdges[i]
		if wantEdge {
			if len(tr) != 1 || tr[0].From != want[0] || tr[0].To != want[1] {
				t.Fatalf("recovery tick %d: transitions %+v, want %s→%s", i, tr, want[0], want[1])
			}
		} else if len(tr) != 0 {
			t.Fatalf("recovery tick %d: unexpected transitions %+v", i, tr)
		}
	}
	if got := stateFor(t, e, drillTenant); got != "ok" {
		t.Fatalf("after recovery: state = %s, want ok", got)
	}
	// Hedge relaxed off the floor once the objective recovered.
	if h := hedgeFor(t, e, drillModel); h <= hedgeMin {
		t.Fatalf("recovered hedge = %v, want relaxed above %v", h, hedgeMin)
	}

	// The full transition log, in order: exactly these four edges.
	wantLog := [][2]string{{"ok", "warn"}, {"warn", "page"}, {"page", "warn"}, {"warn", "ok"}}
	log := e.Transitions()
	if len(log) != len(wantLog) {
		t.Fatalf("transition log has %d entries (%+v), want %d", len(log), log, len(wantLog))
	}
	for i, w := range wantLog {
		if log[i].From != w[0] || log[i].To != w[1] || log[i].Tenant != drillTenant || log[i].Model != drillModel {
			t.Fatalf("log[%d] = %+v, want %s→%s", i, log[i], w[0], w[1])
		}
	}

	// Pinned per-tenant counts at the end. The final tick's advance moved
	// the clock one slot past the last recorded slot, so the 60s window
	// holds 29 populated slots: 5 spike slots (50 bad) plus 24 good ones
	// for gold; the quiet tenant is all good.
	for _, s := range e.Status() {
		switch s.Tenant {
		case drillTenant:
			if s.WindowTotal != 290 || s.WindowBad != 50 {
				t.Fatalf("gold window = %d/%d bad, want 290/50", s.WindowTotal, s.WindowBad)
			}
		case drillQuiet:
			if s.WindowTotal != 290 || s.WindowBad != 0 {
				t.Fatalf("bronze window = %d/%d bad, want 290/0", s.WindowTotal, s.WindowBad)
			}
		}
	}
}

// TestDrillShedStorm: availability burn without any latency signal — a
// storm of shed requests (no completions at all) must still page and must
// still drive the hedge to its floor even though the latency window is
// empty. With half the young history bad, both windows blow straight past
// the page threshold, so the state machine escalates ok→page in a single
// evaluation — escalation is immediate and unladdered by design.
func TestDrillShedStorm(t *testing.T) {
	clk := newFakeClock()
	e := newDrillEngine(clk)
	// Warm the model's hedge state with one healthy tick.
	tick(clk, e, 2*time.Millisecond)
	var transitions []Transition
	for i := 0; i < 6; i++ {
		for j := 0; j < 10; j++ {
			e.RecordRequest(drillTenant, drillModel, 0, OutcomeShed, "storm-req")
		}
		transitions = append(transitions, e.Evaluate()...)
		clk.Advance(2 * time.Second)
	}
	if got := stateFor(t, e, drillTenant); got != "page" {
		t.Fatalf("shed storm: state = %s, want page", got)
	}
	if len(transitions) != 1 || transitions[0].From != "ok" || transitions[0].To != "page" {
		t.Fatalf("shed storm transitions = %+v, want a single ok→page edge", transitions)
	}
	if h := hedgeFor(t, e, drillModel); h != hedgeMin {
		t.Fatalf("shed-storm hedge = %v, want floor %v (page overrides empty window)", h, hedgeMin)
	}
}

// Package slo turns the serving stack's observability into a control
// input: per-tenant/per-model service-level objectives (a latency target
// and an availability target), evaluated with multi-window burn rates
// against sliding-window metrics, driving an ok → warn → page state
// machine with exemplars that link every burning objective to concrete
// request IDs in the flight recorder.
//
// The burn-rate formulation is the standard SRE one. An objective grants
// an error budget of 1−availability; the burn rate over a window is the
// observed bad-request ratio divided by that budget (burn 1 = spending
// the budget exactly on schedule, burn 10 = ten times too fast). A page
// requires BOTH the fast and the slow window to exceed the page
// threshold: the fast window makes paging responsive, the slow window
// stops a two-second blip from waking anyone. "Bad" covers requests that
// failed (5xx), were shed, or completed slower than the latency
// objective — a request that is correct but late still spends budget.
//
// The engine is deliberately clock-driven and deterministic: it does no
// background work of its own. Callers feed it records, call Evaluate on
// their own cadence, and read back transitions, hedge-delay targets and
// ops summaries. Tests drive entire burn scenarios on a fake clock with
// zero sleeps (see drill_test.go).
//
// Every public method is nil-receiver safe and the disabled path is
// zero-allocation, following the internal/fault and internal/obs hook
// discipline: a Server without an SLO config pays one pointer compare
// per hook.
package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pimsim/internal/metrics"
)

// Outcome classifies one finished (or refused) request for SLO purposes.
type Outcome int

const (
	// OutcomeOK is a successful completion. The engine refines it to
	// OutcomeSlow when the recorded latency exceeds the matched
	// objective's latency target.
	OutcomeOK Outcome = iota
	// OutcomeSlow is a success that missed the latency objective.
	OutcomeSlow
	// OutcomeError is a server-side failure (5xx class).
	OutcomeError
	// OutcomeShed is an admission-control rejection (429 class).
	OutcomeShed
)

// String returns the label value used on dimensional series.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeSlow:
		return "slow"
	case OutcomeError:
		return "error"
	case OutcomeShed:
		return "shed"
	}
	return "unknown"
}

// State is one series' position in the ok → warn → page ladder.
type State int

const (
	StateOK State = iota
	StateWarn
	StatePage
)

// String returns "ok", "warn" or "page".
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarn:
		return "warn"
	case StatePage:
		return "page"
	}
	return "unknown"
}

// Objective is one SLO: requests matching (Tenant, Model) must complete
// within LatencyP99 at least Availability of the time. Empty Tenant or
// Model is a wildcard; the most specific matching objective wins (both
// exact > tenant exact > model exact > both wildcard).
type Objective struct {
	Tenant       string        `json:"tenant,omitempty"`
	Model        string        `json:"model,omitempty"`
	LatencyP99   time.Duration `json:"latency_p99"`
	Availability float64       `json:"availability"`
}

func (o Objective) specificity() int {
	n := 0
	if o.Tenant != "" {
		n += 2
	}
	if o.Model != "" {
		n++
	}
	return n
}

func (o Objective) matches(tenant, model string) bool {
	return (o.Tenant == "" || o.Tenant == tenant) && (o.Model == "" || o.Model == model)
}

// HedgeConfig closes the loop from observed tail latency to the batcher's
// hedge delay. The controller tracks Factor × fast-window p99, clamped to
// [Min, Max]; a series in warn halves the target, a page drops it to Min
// (hedge as aggressively as allowed while the objective burns). Changes
// under HysteresisPct of the current value are suppressed so the delay
// doesn't flap batch to batch.
type HedgeConfig struct {
	Min           time.Duration `json:"min"`
	Max           time.Duration `json:"max"`
	Factor        float64       `json:"factor"`
	HysteresisPct float64       `json:"hysteresis_pct"`
	// Initial seeds each model's delay before the first window fills
	// (typically the static -hedge-delay value).
	Initial time.Duration `json:"initial"`
}

// Config configures an Engine. Zero fields take the documented defaults.
type Config struct {
	Objectives []Objective

	// FastWindow and SlowWindow are the two burn-rate windows
	// (defaults 10s and 60s). SlowWindow is also the error-budget
	// accounting window.
	FastWindow time.Duration
	SlowWindow time.Duration

	// PageBurn and WarnBurn are burn-rate thresholds; a level is entered
	// when BOTH windows exceed its threshold (defaults 10 and 2).
	PageBurn float64
	WarnBurn float64

	// ClearAfter is how many consecutive clean evaluations step the state
	// down one level (default 3). Escalation is immediate.
	ClearAfter int

	// ExemplarCap bounds the per-series exemplar ring (default 8).
	ExemplarCap int

	// EvalEvery is the serving layer's evaluation cadence (default 2s;
	// <0 disables the background loop — tests call Evaluate directly).
	EvalEvery time.Duration

	// Clock injects time for the windows, the state machine and the
	// transition log. Defaults to time.Now.
	Clock func() time.Time

	// Hedge enables the hedge-delay controller; nil leaves hedge delays
	// entirely to the static configuration.
	Hedge *HedgeConfig
}

func (c Config) withDefaults() Config {
	if c.FastWindow <= 0 {
		c.FastWindow = 10 * time.Second
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 60 * time.Second
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.PageBurn <= 0 {
		c.PageBurn = 10
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 2
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 3
	}
	if c.ExemplarCap <= 0 {
		c.ExemplarCap = 8
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Hedge != nil {
		h := *c.Hedge
		if h.Min <= 0 {
			h.Min = time.Millisecond
		}
		if h.Max <= 0 {
			h.Max = 250 * time.Millisecond
		}
		if h.Max < h.Min {
			h.Max = h.Min
		}
		if h.Factor <= 0 {
			h.Factor = 1.5
		}
		if h.HysteresisPct <= 0 {
			h.HysteresisPct = 0.2
		}
		c.Hedge = &h
	}
	return c
}

// Exemplar links one bad tail observation to its request ID, so a burning
// SLO resolves to concrete span trees in the flight recorder.
type Exemplar struct {
	Tenant  string        `json:"tenant"`
	Model   string        `json:"model"`
	ReqID   string        `json:"request_id"`
	Latency time.Duration `json:"latency_ns"`
	Outcome string        `json:"outcome"`
	At      time.Time     `json:"at"`
}

// Transition is one state-machine edge, kept in a bounded log for the ops
// surface and pinned exactly by the drill tests.
type Transition struct {
	At       time.Time `json:"at"`
	Tenant   string    `json:"tenant"`
	Model    string    `json:"model"`
	From     string    `json:"from"`
	To       string    `json:"to"`
	FastBurn float64   `json:"fast_burn"`
	SlowBurn float64   `json:"slow_burn"`
}

// SeriesStatus is one (tenant, model) series' evaluated state for the ops
// surface.
type SeriesStatus struct {
	Tenant          string  `json:"tenant"`
	Model           string  `json:"model"`
	State           string  `json:"state"`
	FastBurn        float64 `json:"fast_burn"`
	SlowBurn        float64 `json:"slow_burn"`
	BudgetRemaining float64 `json:"budget_remaining"`
	ObjectiveP99Us  int64   `json:"objective_p99_us"`
	Availability    float64 `json:"availability"`
	WindowTotal     int64   `json:"window_total"`
	WindowBad       int64   `json:"window_bad"`
	P50Us           float64 `json:"p50_us"`
	P95Us           float64 `json:"p95_us"`
	P99Us           float64 `json:"p99_us"`
}

const transitionCap = 128

// Engine evaluates SLOs over sliding windows. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops).
type Engine struct {
	cfg Config
	reg *metrics.Registry
	now func() time.Time

	mu     sync.RWMutex
	series map[seriesKey]*series
	models map[string]*modelCtl

	transMu     sync.Mutex
	transitions []Transition
}

type seriesKey struct{ tenant, model string }

// series is one (tenant, model) pair's windows and state.
type series struct {
	tenant, model string
	obj           *Objective // nil: recorded but not evaluated

	outcomes [4]*metrics.WindowCounter // indexed by Outcome
	admits   *metrics.WindowCounter
	lat      *metrics.WindowHistogram

	stateGauge *metrics.Gauge
	fastGauge  *metrics.Gauge // burn × 1000
	slowGauge  *metrics.Gauge

	mu          sync.Mutex
	state       State
	cleanStreak int
	exemplars   []Exemplar // ring
	exNext      int
	exCount     int
}

// modelCtl is one model's hedge controller state and latency window.
type modelCtl struct {
	lat        *metrics.WindowHistogram
	hedgeGauge *metrics.Gauge
	hedgeNs    int64 // current target; engine-internal, mu-protected
}

// latBounds covers 25µs .. ~50s in ×2 steps: wide enough for simulated
// device latencies and timeouts, fine enough to interpolate a usable p99.
func latBounds() []int64 { return metrics.ExpBuckets(25, 2, 22) }

// New builds an engine. reg receives the dimensional windowed series
// (nil gets a private registry, for tests that only care about verdicts).
func New(cfg Config, reg *metrics.Registry) *Engine {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = metrics.New(1)
	}
	e := &Engine{
		cfg:    cfg,
		reg:    reg,
		now:    cfg.Clock,
		series: make(map[seriesKey]*series),
		models: make(map[string]*modelCtl),
	}
	reg.SetHelp("serve_slo_requests_window", "requests in the slow SLO window by tenant, model and outcome")
	reg.SetHelp("serve_slo_latency_us_window", "request wall latency over the slow SLO window (us)")
	reg.SetHelp("serve_slo_state", "SLO state per series: 0 ok, 1 warn, 2 page")
	reg.SetHelp("serve_slo_burn_fast_x1000", "fast-window burn rate x1000")
	reg.SetHelp("serve_slo_burn_slow_x1000", "slow-window burn rate x1000")
	reg.SetHelp("serve_slo_model_latency_us_window", "per-model wall latency over the fast window, drives the hedge controller (us)")
	reg.SetHelp("serve_slo_hedge_delay_us", "current hedge-delay target per model (us)")
	return e
}

// Config returns the normalized configuration (zero Config when nil).
func (e *Engine) Config() Config {
	if e == nil {
		return Config{}
	}
	return e.cfg
}

// windowOpts sizes every window ring: slow-window width, 2s slots by
// default (30 slots at the 60s default), never fewer than 6 slots so the
// fast window spans at least a slot.
func (e *Engine) windowOpts() metrics.WindowOpts {
	slots := int(e.cfg.SlowWindow / (2 * time.Second))
	if slots < 6 {
		slots = 6
	}
	return metrics.WindowOpts{Width: e.cfg.SlowWindow, Slots: slots, Clock: metrics.Clock(e.now)}
}

// matchObjective returns the most specific objective for (tenant, model),
// or nil.
func (e *Engine) matchObjective(tenant, model string) *Objective {
	var best *Objective
	bestSpec := -1
	for i := range e.cfg.Objectives {
		o := &e.cfg.Objectives[i]
		if o.matches(tenant, model) && o.specificity() > bestSpec {
			best, bestSpec = o, o.specificity()
		}
	}
	return best
}

// getSeries returns the series for (tenant, model), creating it on first
// use.
func (e *Engine) getSeries(tenant, model string) *series {
	k := seriesKey{tenant, model}
	e.mu.RLock()
	s := e.series[k]
	e.mu.RUnlock()
	if s != nil {
		return s
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s = e.series[k]; s != nil {
		return s
	}
	o := e.windowOpts()
	s = &series{
		tenant: tenant,
		model:  model,
		obj:    e.matchObjective(tenant, model),
		admits: e.reg.WindowCounter(metrics.Labels("serve_slo_admitted_window", "tenant", tenant, "model", model), o),
		lat:    e.reg.WindowHistogram(metrics.Labels("serve_slo_latency_us_window", "tenant", tenant, "model", model), latBounds(), o),
	}
	for out := OutcomeOK; out <= OutcomeShed; out++ {
		s.outcomes[out] = e.reg.WindowCounter(
			metrics.Labels("serve_slo_requests_window", "tenant", tenant, "model", model, "outcome", out.String()), o)
	}
	if s.obj != nil {
		s.stateGauge = e.reg.Gauge(metrics.Labels("serve_slo_state", "tenant", tenant, "model", model))
		s.fastGauge = e.reg.Gauge(metrics.Labels("serve_slo_burn_fast_x1000", "tenant", tenant, "model", model))
		s.slowGauge = e.reg.Gauge(metrics.Labels("serve_slo_burn_slow_x1000", "tenant", tenant, "model", model))
	}
	e.series[k] = s
	return s
}

// getModel returns the model's hedge controller, creating it on first use.
func (e *Engine) getModel(model string) *modelCtl {
	e.mu.RLock()
	m := e.models[model]
	e.mu.RUnlock()
	if m != nil {
		return m
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if m = e.models[model]; m != nil {
		return m
	}
	o := e.windowOpts()
	m = &modelCtl{
		lat:        e.reg.WindowHistogram(metrics.Labels("serve_slo_model_latency_us_window", "model", model), latBounds(), o),
		hedgeGauge: e.reg.Gauge(metrics.Labels("serve_slo_hedge_delay_us", "model", model)),
	}
	if e.cfg.Hedge != nil {
		m.hedgeNs = int64(e.cfg.Hedge.Initial)
		m.hedgeGauge.Set(0, m.hedgeNs/1000)
	}
	e.models[model] = m
	return m
}

// RecordAdmit notes one admitted request (tenant canonicalized by the
// caller). Feeds the ops surface's admission rate, not the burn math.
func (e *Engine) RecordAdmit(tenant, model string) {
	if e == nil {
		return
	}
	e.getSeries(tenant, model).admits.Inc()
}

// RecordRequest records one finished (or refused) request. OutcomeOK is
// refined to OutcomeSlow when wall exceeds the matched objective's
// latency target. Completed requests (ok/slow) also feed the latency
// windows; sheds and errors feed availability only. Bad outcomes push an
// exemplar carrying reqID so the burning series links to span trees.
func (e *Engine) RecordRequest(tenant, model string, wall time.Duration, out Outcome, reqID string) {
	if e == nil {
		return
	}
	s := e.getSeries(tenant, model)
	if out == OutcomeOK && s.obj != nil && s.obj.LatencyP99 > 0 && wall > s.obj.LatencyP99 {
		out = OutcomeSlow
	}
	if out < 0 || out > OutcomeShed {
		out = OutcomeError
	}
	s.outcomes[out].Inc()
	if out == OutcomeOK || out == OutcomeSlow {
		us := wall.Microseconds()
		s.lat.Observe(us)
		e.getModel(model).lat.Observe(us)
	}
	if out != OutcomeOK {
		s.pushExemplar(Exemplar{
			Tenant: tenant, Model: model, ReqID: reqID,
			Latency: wall, Outcome: out.String(), At: e.now(),
		}, e.cfg.ExemplarCap)
	}
}

func (s *series) pushExemplar(x Exemplar, cap_ int) {
	s.mu.Lock()
	if len(s.exemplars) < cap_ {
		s.exemplars = append(s.exemplars, x)
	} else {
		s.exemplars[s.exNext] = x
	}
	s.exNext = (s.exNext + 1) % cap_
	s.exCount++
	s.mu.Unlock()
}

// burnRates returns the fast and slow burn rates plus the slow-window
// good/bad split for one evaluated series.
func (e *Engine) burnRates(s *series) (fast, slow float64, total, bad int64) {
	budget := 1 - s.obj.Availability
	if budget <= 0 {
		budget = 1e-9 // a 100% objective burns infinitely fast on any failure
	}
	ratio := func(w time.Duration) (float64, int64, int64) {
		var good, bad int64
		good = s.outcomes[OutcomeOK].Total(w)
		for out := OutcomeSlow; out <= OutcomeShed; out++ {
			bad += s.outcomes[out].Total(w)
		}
		t := good + bad
		if t == 0 {
			return 0, 0, 0
		}
		return float64(bad) / float64(t), t, bad
	}
	fr, _, _ := ratio(e.cfg.FastWindow)
	sr, total, bad := ratio(e.cfg.SlowWindow)
	return fr / budget, sr / budget, total, bad
}

// Evaluate runs one state-machine step over every evaluated series, then
// the hedge controller over every model. It returns the transitions that
// fired (also appended to the bounded log). Callers own the cadence; the
// serving layer ticks it on Config.EvalEvery.
func (e *Engine) Evaluate() []Transition {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	all := make([]*series, 0, len(e.series))
	for _, s := range e.series {
		all = append(all, s)
	}
	models := make(map[string]*modelCtl, len(e.models))
	for name, m := range e.models {
		models[name] = m
	}
	e.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].tenant != all[j].tenant {
			return all[i].tenant < all[j].tenant
		}
		return all[i].model < all[j].model
	})

	now := e.now()
	var fired []Transition
	worst := make(map[string]State, len(models)) // per-model worst state
	for _, s := range all {
		if s.obj == nil {
			continue
		}
		fast, slow, _, _ := e.burnRates(s)
		level := StateOK
		if fast >= e.cfg.PageBurn && slow >= e.cfg.PageBurn {
			level = StatePage
		} else if fast >= e.cfg.WarnBurn && slow >= e.cfg.WarnBurn {
			level = StateWarn
		}
		s.mu.Lock()
		from := s.state
		switch {
		case level > s.state: // escalate immediately
			s.state = level
			s.cleanStreak = 0
		case level < s.state: // de-escalate one level per ClearAfter clean evals
			s.cleanStreak++
			if s.cleanStreak >= e.cfg.ClearAfter {
				s.state--
				s.cleanStreak = 0
			}
		default:
			s.cleanStreak = 0
		}
		to := s.state
		s.mu.Unlock()
		if s.stateGauge != nil {
			s.stateGauge.Set(0, int64(to))
			s.fastGauge.Set(0, int64(fast*1000))
			s.slowGauge.Set(0, int64(slow*1000))
		}
		if w, ok := worst[s.model]; !ok || to > w {
			worst[s.model] = to
		}
		if from != to {
			fired = append(fired, Transition{
				At: now, Tenant: s.tenant, Model: s.model,
				From: from.String(), To: to.String(),
				FastBurn: fast, SlowBurn: slow,
			})
		}
	}
	if len(fired) > 0 {
		e.transMu.Lock()
		e.transitions = append(e.transitions, fired...)
		if n := len(e.transitions); n > transitionCap {
			e.transitions = append(e.transitions[:0], e.transitions[n-transitionCap:]...)
		}
		e.transMu.Unlock()
	}

	if e.cfg.Hedge != nil {
		for name, m := range models {
			e.stepHedge(m, worst[name])
		}
	}
	return fired
}

// stepHedge runs one controller step for a model: target the observed
// fast-window p99 scaled by Factor, clamped to [Min, Max]; tighten under
// warn/page; suppress sub-hysteresis changes.
func (e *Engine) stepHedge(m *modelCtl, worst State) {
	h := e.cfg.Hedge
	snap := m.lat.Snapshot(e.cfg.FastWindow)
	if snap.Count == 0 && worst < StatePage {
		return // no signal, no change (a page overrides: tighten blind)
	}
	target := time.Duration(h.Factor * snap.Quantile(0.99) * float64(time.Microsecond))
	if target < h.Min {
		target = h.Min
	}
	if target > h.Max {
		target = h.Max
	}
	switch worst {
	case StatePage:
		target = h.Min
	case StateWarn:
		if target/2 > h.Min {
			target /= 2
		} else {
			target = h.Min
		}
	}
	e.mu.Lock()
	cur := m.hedgeNs
	delta := int64(target) - cur
	if delta < 0 {
		delta = -delta
	}
	if cur == 0 || float64(delta) > h.HysteresisPct*float64(cur) {
		m.hedgeNs = int64(target)
	}
	ns := m.hedgeNs
	e.mu.Unlock()
	m.hedgeGauge.Set(0, ns/1000)
}

// HedgeTargets returns the current per-model hedge-delay targets, empty
// when the controller is disabled.
func (e *Engine) HedgeTargets() map[string]time.Duration {
	if e == nil || e.cfg.Hedge == nil {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]time.Duration, len(e.models))
	for name, m := range e.models {
		if m.hedgeNs > 0 {
			out[name] = time.Duration(m.hedgeNs)
		}
	}
	return out
}

// Status summarizes every evaluated series, sorted by tenant then model.
func (e *Engine) Status() []SeriesStatus {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	all := make([]*series, 0, len(e.series))
	for _, s := range e.series {
		if s.obj != nil {
			all = append(all, s)
		}
	}
	e.mu.RUnlock()
	out := make([]SeriesStatus, 0, len(all))
	for _, s := range all {
		fast, slow, total, bad := e.burnRates(s)
		budget := 1 - s.obj.Availability
		remaining := 1.0
		if total > 0 && budget > 0 {
			remaining = 1 - (float64(bad)/float64(total))/budget
		}
		if remaining < 0 {
			remaining = 0
		}
		lat := s.lat.Snapshot(e.cfg.FastWindow)
		s.mu.Lock()
		st := s.state
		s.mu.Unlock()
		out = append(out, SeriesStatus{
			Tenant: s.tenant, Model: s.model, State: st.String(),
			FastBurn: fast, SlowBurn: slow, BudgetRemaining: remaining,
			ObjectiveP99Us: s.obj.LatencyP99.Microseconds(),
			Availability:   s.obj.Availability,
			WindowTotal:    total, WindowBad: bad,
			P50Us: lat.Quantile(0.50), P95Us: lat.Quantile(0.95), P99Us: lat.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Model < out[j].Model
	})
	return out
}

// Exemplars returns one series' exemplar ring, oldest first.
func (e *Engine) Exemplars(tenant, model string) []Exemplar {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	s := e.series[seriesKey{tenant, model}]
	e.mu.RUnlock()
	if s == nil {
		return nil
	}
	return s.copyExemplars()
}

func (s *series) copyExemplars() []Exemplar {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Exemplar, 0, len(s.exemplars))
	if s.exCount <= len(s.exemplars) { // never wrapped: insertion order
		return append(out, s.exemplars...)
	}
	for i := 0; i < len(s.exemplars); i++ { // wrapped: oldest sits at exNext
		out = append(out, s.exemplars[(s.exNext+i)%len(s.exemplars)])
	}
	return out
}

// Burning returns the exemplars of every series currently in warn or
// page, grouped per series and sorted by tenant then model — the payload
// behind GET /debug/slow.
func (e *Engine) Burning() []SeriesExemplars {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	all := make([]*series, 0, len(e.series))
	for _, s := range e.series {
		all = append(all, s)
	}
	e.mu.RUnlock()
	var out []SeriesExemplars
	for _, s := range all {
		s.mu.Lock()
		st := s.state
		s.mu.Unlock()
		if st == StateOK {
			continue
		}
		out = append(out, SeriesExemplars{
			Tenant: s.tenant, Model: s.model, State: st.String(),
			Exemplars: s.copyExemplars(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Model < out[j].Model
	})
	return out
}

// SeriesExemplars is one burning series' exemplar set.
type SeriesExemplars struct {
	Tenant    string     `json:"tenant"`
	Model     string     `json:"model"`
	State     string     `json:"state"`
	Exemplars []Exemplar `json:"exemplars"`
}

// Transitions returns a copy of the bounded transition log, oldest first.
func (e *Engine) Transitions() []Transition {
	if e == nil {
		return nil
	}
	e.transMu.Lock()
	defer e.transMu.Unlock()
	return append([]Transition(nil), e.transitions...)
}

// ParseObjective parses "tenant/model:p99=<dur>,avail=<pct>" (tenant and
// model may be "*" or empty for wildcards; the "tenant/model:" prefix is
// optional and absent means both wildcard). pct accepts 0.999 or 99.9.
func ParseObjective(s string) (Objective, error) {
	o := Objective{Availability: 0.99}
	spec := s
	if head, rest, ok := strings.Cut(spec, ":"); ok && !strings.Contains(head, "=") {
		spec = rest
		if t, m, ok := strings.Cut(head, "/"); ok {
			o.Tenant, o.Model = wild(t), wild(m)
		} else {
			o.Tenant = wild(head)
		}
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return o, fmt.Errorf("slo: bad objective part %q (want k=v)", part)
		}
		switch k {
		case "p99":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return o, fmt.Errorf("slo: bad p99 %q", v)
			}
			o.LatencyP99 = d
		case "avail":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return o, fmt.Errorf("slo: bad avail %q", v)
			}
			if f > 1 { // 99.9 means 99.9%
				f /= 100
			}
			if f <= 0 || f > 1 {
				return o, fmt.Errorf("slo: avail %q out of range", v)
			}
			o.Availability = f
		default:
			return o, fmt.Errorf("slo: unknown objective key %q", k)
		}
	}
	if o.LatencyP99 <= 0 {
		return o, fmt.Errorf("slo: objective %q missing p99", s)
	}
	return o, nil
}

func wild(s string) string {
	if s == "*" {
		return ""
	}
	return s
}

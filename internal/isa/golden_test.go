package isa

import "testing"

// TestGoldenEncodings pins the concrete Table III bit assignment: the
// encoding is an ABI between the runtime (which writes CRF images through
// the register space) and the execution units. Any layout change must be
// deliberate and show up here.
func TestGoldenEncodings(t *testing.T) {
	golden := []struct {
		asm  string
		word uint32
	}{
		{"NOP", 0x00000000},
		{"NOP 7", 0x00070000},
		{"JUMP -1, 7", 0x10070001},
		{"JUMP -4, 127", 0x107f0004},
		{"EXIT", 0x20000000},
		{"MOV GRF_A[0], EVEN_BANK", 0x40800000},
		{"MOV(AAM) GRF_A, EVEN_BANK", 0x40808000},
		{"MOV(RELU) GRF_B[1], GRF_A[2]", 0x42001120},
		{"MOV(AAM_RELU) GRF_A, ODD_BANK", 0x40c09000},
		{"MOV(AAM) ODD_BANK, GRF_A", 0x46008000},
		{"FILL SRF_M[2], ODD_BANK", 0x58c00200},
		{"FILL GRF_B[7], EVEN_BANK", 0x52800700},
		{"ADD GRF_A[1], EVEN_BANK, SRF_A[1]", 0x80a80101},
		{"ADD(AAM) GRF_A, GRF_A, GRF_B", 0x80088000},
		{"MUL GRF_B[0], GRF_A[0], SRF_M[3]", 0x92210003},
		{"MAC GRF_B[0], GRF_A[0], EVEN_BANK", 0xa2110000},
		{"MAC(AAM) GRF_B, GRF_A, EVEN_BANK", 0xa2118000},
		{"MAD GRF_A[2], ODD_BANK, SRF_M[2]", 0xb0e50202},
		{"MAD(AAM) GRF_B, EVEN_BANK, SRF_M", 0xb2a58000},
	}
	for _, c := range golden {
		in, ok, err := Parse(c.asm)
		if err != nil || !ok {
			t.Fatalf("parse %q: %v", c.asm, err)
		}
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %q: %v", c.asm, err)
		}
		if w != c.word {
			t.Errorf("%-38s encoded %#08x, golden %#08x", c.asm, w, c.word)
		}
		back, err := Decode(c.word)
		if err != nil {
			t.Fatalf("decode %#08x: %v", c.word, err)
		}
		if back != in {
			t.Errorf("%-38s decode mismatch: %s", c.asm, back)
		}
	}
}

package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableIIComboCounts(t *testing.T) {
	// The headline claim of Section III-C: 114 operand combinations for
	// computation and 24 ways of data movement.
	counts := ComboCounts()
	want := map[Opcode]int{MUL: 32, ADD: 40, MAC: 14, MAD: 28, MOV: 24}
	for op, n := range want {
		if counts[op] != n {
			t.Errorf("%s combinations = %d, want %d", op, counts[op], n)
		}
	}
	total := counts[MUL] + counts[ADD] + counts[MAC] + counts[MAD]
	if total != 114 {
		t.Errorf("total compute combinations = %d, want 114", total)
	}
}

func TestComboConstraints(t *testing.T) {
	for _, c := range ComputeCombos() {
		if c.Src0.IsBank() && c.Src1.IsBank() {
			t.Errorf("%s %s,%s,%s: two bank operands allowed", c.Op, c.Dst, c.Src0, c.Src1)
		}
		if !c.Dst.IsGRF() {
			t.Errorf("%s: non-GRF destination %s", c.Op, c.Dst)
		}
		if (c.Op == MAC || c.Op == MAD) && c.Src0.IsGRF() && c.Src0 == c.Src1 {
			t.Errorf("%s: SRC0 and SRC1 both %s", c.Op, c.Src0)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Instruction{
		{Op: MUL, Dst: EvenBank, Src0: GRFA, Src1: GRFB},         // bank dst
		{Op: MUL, Dst: GRFA, Src0: EvenBank, Src1: OddBank},      // two banks
		{Op: MUL, Dst: GRFA, Src0: SRFM, Src1: GRFA},             // scalar SRC0
		{Op: MUL, Dst: GRFA, Src0: GRFA, Src1: SRFA},             // wrong SRF port
		{Op: ADD, Dst: GRFA, Src0: SRFA, Src1: SRFA},             // two scalars
		{Op: ADD, Dst: GRFA, Src0: SRFM, Src1: GRFA},             // wrong SRF port
		{Op: MAC, Dst: GRFB, Src0: GRFA, Src1: GRFA},             // same-GRF pair
		{Op: MAD, Dst: GRFA, Src0: GRFB, Src1: GRFB},             // same-GRF pair
		{Op: MOV, Dst: SRFM, Src0: GRFA},                         // MOV to SRF
		{Op: MOV, Dst: EvenBank, Src0: OddBank},                  // bank to bank
		{Op: MOV, Dst: GRFA, Src0: SRFM},                         // MOV from SRF (use FILL)
		{Op: FILL, Dst: GRFA, Src0: GRFB},                        // FILL from GRF
		{Op: FILL, Dst: GRFA, Src0: EvenBank, ReLU: true},        // ReLU on FILL
		{Op: ADD, Dst: GRFA, Src0: GRFA, Src1: GRFB, ReLU: true}, // ReLU on ALU
		{Op: JUMP, Imm0: 5, Imm1: 0},                             // zero offset
		{Op: JUMP, Imm0: 500, Imm1: 1},                           // count too big
		{Op: NOP, Imm0: 1000},                                    // NOP too long
		{Op: MUL, Dst: GRFA, Src0: GRFA, Src1: GRFB, DstIdx: 9},  // index range
		{Op: Opcode(7)}, // undefined opcode
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted invalid instruction", i, in)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	good := []Instruction{
		{Op: MAC, Dst: GRFB, Src0: GRFA, Src1: EvenBank, DstIdx: 7, Src0Idx: 3},
		{Op: MAC, Dst: GRFA, Src0: EvenBank, Src1: GRFA}, // the paper's GEMV kernel form
		{Op: MAD, Dst: GRFA, Src0: EvenBank, Src1: SRFM, Src1Idx: 2},
		{Op: ADD, Dst: GRFA, Src0: EvenBank, Src1: SRFA, Src1Idx: 1},
		{Op: MUL, Dst: GRFB, Src0: OddBank, Src1: SRFM},
		{Op: MOV, Dst: GRFA, Src0: GRFB, ReLU: true},
		{Op: MOV, Dst: EvenBank, Src0: GRFA, Src0Idx: 4}, // result store path
		{Op: FILL, Dst: SRFM, Src0: EvenBank, DstIdx: 5},
		Jump(7, 1),
		NopCycles(23),
		Exit(),
		{Op: MUL, Dst: GRFA, Src0: GRFA, Src1: EvenBank, AAM: true},
	}
	for i, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("case %d (%s): %v", i, in, err)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	// Every legal instruction from the combination enumerators plus flow
	// control must round-trip through the 32-bit encoding exactly.
	var prog []Instruction
	for _, c := range ComputeCombos() {
		in := Instruction{Op: c.Op, Dst: c.Dst, Src0: c.Src0, Src1: c.Src1,
			DstIdx: 3, Src0Idx: 1, Src1Idx: 6}
		if !in.Src0.IsGRF() && !in.Src0.IsSRF() {
			in.Src0Idx = 0
		}
		if !in.Src1.IsGRF() && !in.Src1.IsSRF() {
			in.Src1Idx = 0
		}
		prog = append(prog, in)
		in.AAM = true
		in.DstIdx, in.Src0Idx, in.Src1Idx = 0, 0, 0
		prog = append(prog, in)
	}
	for _, c := range MoveCombos() {
		in := Instruction{Op: MOV, Dst: c.Dst, Src0: c.Src0, ReLU: c.ReLU}
		if in.Dst.IsGRF() {
			in.DstIdx = 2
		}
		if in.Src0.IsGRF() || in.Src0.IsSRF() {
			in.Src0Idx = 5
		}
		prog = append(prog, in)
	}
	prog = append(prog, Nop(), NopCycles(9), Jump(7, 2), Jump(0, 1), Exit(),
		Instruction{Op: FILL, Dst: SRFA, Src0: OddBank, DstIdx: 7})

	for i, in := range prog {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("case %d (%s): encode: %v", i, in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("case %d (%s): decode %#08x: %v", i, in, w, err)
		}
		if got != in {
			t.Fatalf("case %d: round trip %s -> %#08x -> %s", i, in, w, got)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode(Instruction{Op: MUL, Dst: GRFA, Src0: EvenBank, Src1: OddBank}); err == nil {
		t.Error("Encode accepted a two-bank MUL")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, w := range []uint32{
		0x70000000, // undefined opcode 7
		0xF0000000, // undefined opcode 15
		0x00008000, // NOP with reserved bit 15 set
	} {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) accepted garbage", w)
		}
	}
}

func TestDecodeQuickNeverPanics(t *testing.T) {
	// Decoding arbitrary words must either fail cleanly or produce an
	// instruction that re-encodes to the same word.
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		w2, err := Encode(in)
		return err == nil && w2 == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestAssembleGEMVKernel(t *testing.T) {
	// The paper's GEMV microkernel: a MAC repeated 8 times by a JUMP.
	src := `
		; GEMV inner loop (Section V-A)
		MAC GRF_B[0], GRF_A[0], EVEN_BANK
		JUMP -1, 7
		EXIT
	`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 3 {
		t.Fatalf("got %d instructions, want 3", len(prog))
	}
	if prog[0].Op != MAC || prog[0].Dst != GRFB || prog[0].Src1 != EvenBank {
		t.Errorf("instruction 0 = %s", prog[0])
	}
	if prog[1].Op != JUMP || prog[1].Imm0 != 7 || prog[1].Imm1 != 1 {
		t.Errorf("instruction 1 = %s", prog[1])
	}
	if prog[2].Op != EXIT {
		t.Errorf("instruction 2 = %s", prog[2])
	}
}

func TestAssembleFormatRoundTrip(t *testing.T) {
	src := `
		MOV(RELU) GRF_A[1], GRF_B[1]
		MAD GRF_A[2], EVEN_BANK, SRF_M[2]
		MAC(AAM) GRF_B, GRF_A, ODD_BANK
		FILL SRF_M[0], EVEN_BANK
		NOP 7
		ADD GRF_A[0], EVEN_BANK, SRF_A[0]
		JUMP -3, 15
		EXIT
	`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := Assemble(FormatProgram(prog))
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, FormatProgram(prog))
	}
	if len(prog) != len(prog2) {
		t.Fatalf("length %d != %d", len(prog), len(prog2))
	}
	for i := range prog {
		if prog[i] != prog2[i] {
			t.Errorf("instruction %d: %s != %s", i, prog[i], prog2[i])
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"FROB GRF_A[0], GRF_B[0]",
		"MAC GRF_B[0], GRF_A[0]",               // missing operand
		"MOV GRF_A[99], GRF_B[0]",              // index out of range
		"MAC GRF_B[0], EVEN_BANK[3], GRF_A[0]", // indexed bank
		"JUMP 1, 7",                            // positive offset
		"EXIT now",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
	// CRF capacity.
	long := strings.Repeat("NOP\n", CRFEntries+1)
	if _, err := Assemble(long); err == nil {
		t.Error("Assemble accepted a program longer than the CRF")
	}
}

func TestEncodeProgramBounds(t *testing.T) {
	prog := make([]Instruction, CRFEntries+1)
	for i := range prog {
		prog[i] = Nop()
	}
	if _, err := EncodeProgram(prog); err == nil {
		t.Error("EncodeProgram accepted an oversized program")
	}
	words, err := EncodeProgram(prog[:CRFEntries])
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != CRFEntries {
		t.Fatalf("got %d words", len(words))
	}
}

func TestDecodeProgramStopsAtExit(t *testing.T) {
	words, err := EncodeProgram([]Instruction{Nop(), Exit(), Nop(), Nop()})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := DecodeProgram(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 2 || prog[1].Op != EXIT {
		t.Fatalf("got %v", prog)
	}
}

func TestOpcodePredicates(t *testing.T) {
	for _, op := range []Opcode{NOP, JUMP, EXIT} {
		if !op.IsControl() || op.IsData() || op.IsArith() {
			t.Errorf("%s predicates wrong", op)
		}
	}
	for _, op := range []Opcode{MOV, FILL} {
		if op.IsControl() || !op.IsData() || op.IsArith() {
			t.Errorf("%s predicates wrong", op)
		}
	}
	for _, op := range []Opcode{ADD, MUL, MAC, MAD} {
		if op.IsControl() || op.IsData() || !op.IsArith() {
			t.Errorf("%s predicates wrong", op)
		}
	}
}

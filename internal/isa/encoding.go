package isa

import "fmt"

// Bit layout (a concrete realization of Table III).
//
//	            31:28   27:25 24:22 21:19 18:16  15  12  10:8  6:4   2:0
//	Control:    OPCODE  ----- 22:16 = IMM0 -----      -- 14:0 = IMM1 --
//	Data:       OPCODE  DST   SRC0  -     -      -   R   DST#  SRC0# SRC1#
//	ALU:        OPCODE  DST   SRC0  SRC1  SRC2   A   -   DST#  SRC0# SRC1#
//
// Bits marked 'U' in the paper are left zero; Decode rejects words whose
// unused bits are set, making every encodable instruction round-trip
// exactly.
const (
	opcodeShift = 28
	dstShift    = 25
	src0Shift   = 22
	src1Shift   = 19
	src2Shift   = 16
	aamBit      = 1 << 15
	reluBit     = 1 << 12
	dstIdxShift = 8
	s0IdxShift  = 4
	s1IdxShift  = 0
	fieldMask   = 0x7 // 3-bit source and index fields

	imm0Shift = 16
	imm0Mask  = 0x7F   // 7-bit IMM0
	imm1Mask  = 0x7FFF // 15-bit IMM1
)

// Encode serializes the instruction into its 32-bit CRF word. It returns
// an error if the instruction fails Validate.
func Encode(in Instruction) (uint32, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	w := uint32(in.Op) << opcodeShift
	switch {
	case in.Op.IsControl():
		w |= (in.Imm0 & imm0Mask) << imm0Shift
		w |= in.Imm1 & imm1Mask
	case in.Op.IsData():
		w |= uint32(in.Dst) << dstShift
		w |= uint32(in.Src0) << src0Shift
		if in.ReLU {
			w |= reluBit
		}
		if in.AAM {
			w |= aamBit
		} else {
			w |= uint32(in.DstIdx&fieldMask) << dstIdxShift
			w |= uint32(in.Src0Idx&fieldMask) << s0IdxShift
		}
	default: // arithmetic
		w |= uint32(in.Dst) << dstShift
		w |= uint32(in.Src0) << src0Shift
		w |= uint32(in.Src1) << src1Shift
		w |= uint32(src2Field(in)) << src2Shift
		if in.AAM {
			w |= aamBit
		}
		if !in.AAM {
			w |= uint32(in.DstIdx&fieldMask) << dstIdxShift
			w |= uint32(in.Src0Idx&fieldMask) << s0IdxShift
			w |= uint32(in.Src1Idx&fieldMask) << s1IdxShift
		}
	}
	return w, nil
}

// src2Field derives the SRC2 field: MAC reuses DST as the accumulator and
// MAD reads SRF_A at the SRC1 index (Section III-C); other arithmetic
// instructions have no third operand and encode DST again.
func src2Field(in Instruction) Src {
	switch in.Op {
	case MAD:
		return SRFA
	default:
		return in.Dst
	}
}

// MustEncode is Encode panicking on error, for statically known programs.
func MustEncode(in Instruction) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode parses a 32-bit CRF word back into an Instruction. Invalid
// opcodes or operand combinations are rejected.
func Decode(w uint32) (Instruction, error) {
	op := Opcode(w >> opcodeShift)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("isa: decode: invalid opcode %d in %#08x", op, w)
	}
	var in Instruction
	in.Op = op
	switch {
	case op.IsControl():
		in.Imm0 = (w >> imm0Shift) & imm0Mask
		in.Imm1 = w & imm1Mask
		if w&^(uint32(0xF)<<opcodeShift|imm0Mask<<imm0Shift|imm1Mask) != 0 {
			return Instruction{}, fmt.Errorf("isa: decode: reserved bits set in %#08x", w)
		}
	case op.IsData():
		const dataMask = uint32(0xF)<<opcodeShift | fieldMask<<dstShift | fieldMask<<src0Shift |
			reluBit | aamBit | fieldMask<<dstIdxShift | fieldMask<<s0IdxShift
		if w&^dataMask != 0 {
			return Instruction{}, fmt.Errorf("isa: decode: reserved bits set in %#08x", w)
		}
		in.Dst = Src((w >> dstShift) & fieldMask)
		in.Src0 = Src((w >> src0Shift) & fieldMask)
		in.ReLU = w&reluBit != 0
		in.AAM = w&aamBit != 0
		if in.AAM {
			if w&(fieldMask<<dstIdxShift|fieldMask<<s0IdxShift) != 0 {
				return Instruction{}, fmt.Errorf("isa: decode: index bits set on AAM instruction %#08x", w)
			}
		} else {
			in.DstIdx = uint8((w >> dstIdxShift) & fieldMask)
			in.Src0Idx = uint8((w >> s0IdxShift) & fieldMask)
		}
	default:
		const aluMask = uint32(0xF)<<opcodeShift | fieldMask<<dstShift |
			fieldMask<<src0Shift | fieldMask<<src1Shift | fieldMask<<src2Shift |
			aamBit | fieldMask<<dstIdxShift | fieldMask<<s0IdxShift | fieldMask<<s1IdxShift
		if w&^aluMask != 0 {
			return Instruction{}, fmt.Errorf("isa: decode: reserved bits set in %#08x", w)
		}
		in.Dst = Src((w >> dstShift) & fieldMask)
		in.Src0 = Src((w >> src0Shift) & fieldMask)
		in.Src1 = Src((w >> src1Shift) & fieldMask)
		in.AAM = w&aamBit != 0
		if in.AAM {
			// AAM replaces the index fields with address sub-fields at
			// execution time; the encoder leaves them zero.
			if w&(fieldMask<<dstIdxShift|fieldMask<<s0IdxShift|fieldMask<<s1IdxShift) != 0 {
				return Instruction{}, fmt.Errorf("isa: decode: index bits set on AAM instruction %#08x", w)
			}
		} else {
			in.DstIdx = uint8((w >> dstIdxShift) & fieldMask)
			in.Src0Idx = uint8((w >> s0IdxShift) & fieldMask)
			in.Src1Idx = uint8((w >> s1IdxShift) & fieldMask)
		}
		if got, want := Src((w>>src2Shift)&fieldMask), src2Field(in); got != want {
			return Instruction{}, fmt.Errorf("isa: decode: SRC2 field %s inconsistent with %s (want %s)", got, in.Op, want)
		}
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, fmt.Errorf("isa: decode %#08x: %w", w, err)
	}
	return in, nil
}

// EncodeProgram encodes a microkernel into CRF words; programs longer than
// the CRF are rejected.
func EncodeProgram(prog []Instruction) ([]uint32, error) {
	if len(prog) > CRFEntries {
		return nil, fmt.Errorf("isa: program of %d instructions exceeds CRF size %d", len(prog), CRFEntries)
	}
	words := make([]uint32, len(prog))
	for i, in := range prog {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		words[i] = w
	}
	return words, nil
}

// DecodeProgram decodes CRF words until an EXIT instruction (inclusive) or
// the end of the slice.
func DecodeProgram(words []uint32) ([]Instruction, error) {
	prog := make([]Instruction, 0, len(words))
	for i, w := range words {
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("isa: word %d: %w", i, err)
		}
		prog = append(prog, in)
		if in.Op == EXIT {
			break
		}
	}
	return prog, nil
}

// Package isa defines the PIM execution unit's instruction set architecture:
// the nine RISC-style 32-bit instructions of Table III, the operand-source
// model of Table II, binary encoding/decoding, and a textual assembler for
// PIM microkernels.
//
// The paper publishes the field layout of Table III at column granularity;
// this package fixes one concrete bit assignment consistent with that table
// and uses it everywhere (encoder, decoder, execution unit).
package isa

import "fmt"

// Opcode identifies one of the nine PIM instructions (Table III).
type Opcode uint8

const (
	// Flow-control instructions.
	NOP  Opcode = 0x0 // no operation; Imm0 > 0 requests a multi-cycle NOP
	JUMP Opcode = 0x1 // zero-cycle loop: repeat Imm0 times, jumping back Imm1 slots
	EXIT Opcode = 0x2 // end of microkernel

	// Data-movement instructions.
	MOV  Opcode = 0x4 // register/bank to GRF move; R flag applies ReLU in flight
	FILL Opcode = 0x5 // bank to register broadcast load (GRF or SRF)

	// Arithmetic instructions.
	ADD Opcode = 0x8
	MUL Opcode = 0x9
	MAC Opcode = 0xA // dst += src0 * src1 (dst doubles as SRC2)
	MAD Opcode = 0xB // dst = src0 * src1 + SRF_A[src1#]
)

// NumOpcodes bounds the 4-bit opcode space; arrays indexed by Opcode (such
// as per-opcode retire counters) use it as their length.
const NumOpcodes = 16

// opcodeNames is indexed by opcode; empty entries are undefined encodings.
var opcodeNames = [NumOpcodes]string{
	NOP: "NOP", JUMP: "JUMP", EXIT: "EXIT",
	MOV: "MOV", FILL: "FILL",
	ADD: "ADD", MUL: "MUL", MAC: "MAC", MAD: "MAD",
}

// validOpcodes has bit o set when Opcode o is defined. A constant bitmask
// keeps Valid — which sits on the decode hot path — free of map lookups.
const validOpcodes = 1<<NOP | 1<<JUMP | 1<<EXIT | 1<<MOV | 1<<FILL |
	1<<ADD | 1<<MUL | 1<<MAC | 1<<MAD

// String returns the mnemonic.
func (o Opcode) String() string {
	if o.Valid() {
		return opcodeNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Valid reports whether o is one of the nine defined opcodes.
func (o Opcode) Valid() bool { return o < NumOpcodes && validOpcodes&(1<<o) != 0 }

// IsControl reports whether o is a flow-control instruction.
func (o Opcode) IsControl() bool { return o == NOP || o == JUMP || o == EXIT }

// IsData reports whether o is a data-movement instruction.
func (o Opcode) IsData() bool { return o == MOV || o == FILL }

// IsArith reports whether o is an arithmetic instruction.
func (o Opcode) IsArith() bool { return o == ADD || o == MUL || o == MAC || o == MAD }

// Src identifies an operand source or destination (Table II): a GRF half,
// a bank (the PIM unit sits between an even and an odd bank), or a scalar
// register file.
type Src uint8

const (
	GRFA     Src = 0 // general register file half A (even bank side)
	GRFB     Src = 1 // general register file half B (odd bank side)
	EvenBank Src = 2 // 256-bit row-buffer read/write of the even bank
	OddBank  Src = 3 // 256-bit row-buffer read/write of the odd bank
	SRFM     Src = 4 // scalar register file, multiplier operand port
	SRFA     Src = 5 // scalar register file, adder operand port
)

var srcNames = [...]string{"GRF_A", "GRF_B", "EVEN_BANK", "ODD_BANK", "SRF_M", "SRF_A"}

// String returns the assembly spelling of s.
func (s Src) String() string {
	if int(s) < len(srcNames) {
		return srcNames[s]
	}
	return fmt.Sprintf("SRC(%d)", uint8(s))
}

// Valid reports whether s is a defined source.
func (s Src) Valid() bool { return s <= SRFA }

// IsGRF reports whether s is one of the GRF halves.
func (s Src) IsGRF() bool { return s == GRFA || s == GRFB }

// IsBank reports whether s addresses a bank row buffer.
func (s Src) IsBank() bool { return s == EvenBank || s == OddBank }

// IsSRF reports whether s is a scalar register file.
func (s Src) IsSRF() bool { return s == SRFM || s == SRFA }

// Register-file geometry (Table IV).
const (
	CRFEntries  = 32  // 32 x 32-bit command (instruction) registers
	GRFEntries  = 8   // 8 x 256-bit registers per GRF half (16 total)
	SRFEntries  = 8   // 8 x 16-bit registers per SRF port (16 total)
	MaxLoopIter = 127 // 7-bit Imm0 field
	MaxJumpBack = 31  // sensible bound; CRF holds 32 entries
	MaxNOPCycle = 127
)

// Instruction is one decoded PIM instruction.
type Instruction struct {
	Op Opcode

	// Operand routing (arithmetic and data-movement instructions).
	Dst, Src0, Src1 Src
	DstIdx          uint8 // register index when Dst is a register file
	Src0Idx         uint8
	Src1Idx         uint8

	// AAM ('A' bit): when set on an arithmetic or data-movement
	// instruction, register indices are ignored and replaced by sub-fields
	// of the DRAM row and column address of the triggering command
	// (Section IV-C). Flow-control instructions never set it.
	AAM bool

	// ReLU ('R' bit): when set on MOV, a ReLU is applied during the move.
	ReLU bool

	// Control-instruction immediates. JUMP: Imm0 = remaining iterations,
	// Imm1 = how many slots to jump back. NOP: Imm0 = extra idle cycles.
	Imm0 uint32
	Imm1 uint32
}

// Nop returns a single-cycle NOP.
func Nop() Instruction { return Instruction{Op: NOP} }

// NopCycles returns a multi-cycle NOP idling for n command slots.
func NopCycles(n int) Instruction { return Instruction{Op: NOP, Imm0: uint32(n)} }

// Jump returns a JUMP that repeats the previous `back` instructions `iters`
// times (total executions of the body = iters+1 counting the fall-through
// pass, matching "JUMP is set up to repeat the loop 8 times" semantics
// where iters = 7 executes the body 8 times overall).
func Jump(iters, back int) Instruction {
	return Instruction{Op: JUMP, Imm0: uint32(iters), Imm1: uint32(back)}
}

// Exit returns the EXIT instruction.
func Exit() Instruction { return Instruction{Op: EXIT} }

// Validate checks structural well-formedness plus the operand-port rules
// of Table II (see combos.go for the counting model).
func (in Instruction) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	switch {
	case in.Op.IsControl():
		switch in.Op {
		case JUMP:
			if in.Imm0 > MaxLoopIter {
				return fmt.Errorf("isa: JUMP iteration count %d exceeds %d", in.Imm0, MaxLoopIter)
			}
			if in.Imm1 == 0 || in.Imm1 > MaxJumpBack {
				return fmt.Errorf("isa: JUMP offset %d out of range [1,%d]", in.Imm1, MaxJumpBack)
			}
		case NOP:
			if in.Imm0 > MaxNOPCycle {
				return fmt.Errorf("isa: NOP cycle count %d exceeds %d", in.Imm0, MaxNOPCycle)
			}
		}
		return nil
	case in.Op.IsData():
		return in.validateData()
	default:
		return in.validateArith()
	}
}

func (in Instruction) validateData() error {
	if !in.Src0.Valid() {
		return fmt.Errorf("isa: %s: invalid source %d", in.Op, in.Src0)
	}
	switch in.Op {
	case MOV:
		// MOV moves between GRF and BANK (either direction; GRF->BANK is how
		// results leave the PIM unit, e.g. the ADD microkernel's final
		// store). Bank-to-bank is not routable.
		if in.Src0.IsSRF() {
			return fmt.Errorf("isa: MOV source must be GRF or BANK, got %s", in.Src0)
		}
		if !in.Dst.IsGRF() && !in.Dst.IsBank() {
			return fmt.Errorf("isa: MOV destination must be GRF or BANK, got %s", in.Dst)
		}
		if in.Src0.IsBank() && in.Dst.IsBank() {
			return fmt.Errorf("isa: MOV cannot route bank to bank")
		}
	case FILL:
		// FILL broadcasts bank data into a register file (GRF or SRF).
		if !in.Src0.IsBank() {
			return fmt.Errorf("isa: FILL source must be a bank, got %s", in.Src0)
		}
		if in.Dst.IsBank() {
			return fmt.Errorf("isa: FILL destination must be a register file, got %s", in.Dst)
		}
		if in.ReLU {
			return fmt.Errorf("isa: ReLU flag applies to MOV only")
		}
	}
	if in.AAM {
		return nil
	}
	return in.checkIndices()
}

func (in Instruction) validateArith() error {
	if in.ReLU {
		return fmt.Errorf("isa: ReLU flag applies to MOV only")
	}
	if !in.Src0.Valid() || !in.Src1.Valid() || !in.Dst.Valid() {
		return fmt.Errorf("isa: %s: invalid operand source", in.Op)
	}
	// Destination is always a GRF register (Table II "Result (DST)" column).
	if !in.Dst.IsGRF() {
		return fmt.Errorf("isa: %s destination must be a GRF half, got %s", in.Op, in.Dst)
	}
	// Single bank data port: at most one operand may come from a bank.
	if in.Src0.IsBank() && in.Src1.IsBank() {
		return fmt.Errorf("isa: %s: both operands cannot come from banks", in.Op)
	}
	switch in.Op {
	case MUL:
		if in.Src0.IsSRF() {
			return fmt.Errorf("isa: MUL SRC0 must be GRF or BANK, got %s", in.Src0)
		}
		if in.Src1 == SRFA {
			return fmt.Errorf("isa: MUL scalar operand comes from SRF_M, not SRF_A")
		}
	case ADD:
		if in.Src0 == SRFM || in.Src1 == SRFM {
			return fmt.Errorf("isa: ADD scalar operand comes from SRF_A, not SRF_M")
		}
		// Single scalar port: both operands cannot be scalars.
		if in.Src0.IsSRF() && in.Src1.IsSRF() {
			return fmt.Errorf("isa: ADD: both operands cannot come from SRF")
		}
	case MAC, MAD:
		if in.Src0.IsSRF() {
			return fmt.Errorf("isa: %s SRC0 must be GRF or BANK, got %s", in.Op, in.Src0)
		}
		if in.Src1 == SRFA {
			return fmt.Errorf("isa: %s scalar operand comes from SRF_M, not SRF_A", in.Op)
		}
		// The third GRF access (the MAC accumulator / MAD addend index)
		// occupies the second GRF port, so SRC0 and SRC1 cannot both read
		// the same GRF half.
		if in.Src0.IsGRF() && in.Src0 == in.Src1 {
			return fmt.Errorf("isa: %s: SRC0 and SRC1 cannot both read %s", in.Op, in.Src0)
		}
	}
	if !in.AAM {
		return in.checkIndices()
	}
	return nil
}

func (in Instruction) checkIndices() error {
	check := func(role string, s Src, idx uint8) error {
		if s.IsGRF() && idx >= GRFEntries {
			return fmt.Errorf("isa: %s: %s index %d exceeds GRF size %d", in.Op, role, idx, GRFEntries)
		}
		if s.IsSRF() && idx >= SRFEntries {
			return fmt.Errorf("isa: %s: %s index %d exceeds SRF size %d", in.Op, role, idx, SRFEntries)
		}
		if s.IsBank() && idx != 0 {
			return fmt.Errorf("isa: %s: %s is a bank and takes no index", in.Op, role)
		}
		return nil
	}
	if err := check("DST", in.Dst, in.DstIdx); err != nil {
		return err
	}
	if err := check("SRC0", in.Src0, in.Src0Idx); err != nil {
		return err
	}
	if in.Op.IsArith() {
		if err := check("SRC1", in.Src1, in.Src1Idx); err != nil {
			return err
		}
	}
	return nil
}

// String renders the instruction in assembly syntax (see asm.go).
func (in Instruction) String() string { return Format(in) }

package isa

// Operand-combination enumeration reproducing Table II.
//
// Table II counts, per operation type, how many (SRC0, SRC1, DST) source
// routings the datapath supports: MUL 32, ADD 40, MAC 14, MAD 28 (114
// compute combinations) plus 24 ways of data movement. The counts follow
// from three port constraints, encoded in Validate:
//
//	C1  single bank data port: SRC0 and SRC1 cannot both be banks;
//	C2  single scalar port (ADD): SRC0 and SRC1 cannot both be SRF;
//	C3  accumulator/addend port (MAC, MAD): the implicit third GRF access
//	    occupies one GRF read port, so SRC0 and SRC1 cannot both read the
//	    same GRF half.
//
// With sources expanded to concrete ports (GRF -> {GRF_A, GRF_B}, BANK ->
// {EVEN_BANK, ODD_BANK}):
//
//	MUL: 4 x 5 - 4(C1)          = 16, x2 DST halves = 32
//	ADD: 5 x 5 - 4(C1) - 1(C2)  = 20, x2            = 40
//	MAC: 4 x 5 - 4(C1) - 2(C3)  = 14, DST fixed     = 14
//	MAD: 4 x 5 - 4(C1) - 2(C3)  = 14, x2            = 28
//	MOV: 4 sources x 4 destinations - 4 bank-to-bank = 12, x2 (ReLU) = 24

// Combo is one legal operand routing.
type Combo struct {
	Op              Opcode
	Dst, Src0, Src1 Src
	ReLU            bool
}

var allSrcs = []Src{GRFA, GRFB, EvenBank, OddBank, SRFM, SRFA}
var grfDsts = []Src{GRFA, GRFB}

// ComputeCombos enumerates every legal arithmetic operand routing by
// running the Validate rules over the full cross product.
func ComputeCombos() []Combo {
	var out []Combo
	for _, op := range []Opcode{MUL, ADD, MAC, MAD} {
		for _, dst := range grfDsts {
			if op == MAC && dst != GRFB {
				// Table II fixes the MAC destination to GRF_B: the
				// accumulator lives on the odd-bank side of the datapath.
				continue
			}
			for _, s0 := range allSrcs {
				for _, s1 := range allSrcs {
					in := Instruction{Op: op, Dst: dst, Src0: s0, Src1: s1}
					if in.Validate() == nil {
						out = append(out, Combo{Op: op, Dst: dst, Src0: s0, Src1: s1})
					}
				}
			}
		}
	}
	return out
}

// MoveCombos enumerates the data-movement routings counted in Table II:
// MOV between GRF halves and banks in either direction (bank-to-bank is
// not routable), with and without the in-flight ReLU.
func MoveCombos() []Combo {
	vecPorts := []Src{GRFA, GRFB, EvenBank, OddBank}
	var out []Combo
	for _, s0 := range vecPorts {
		for _, dst := range vecPorts {
			for _, relu := range []bool{false, true} {
				in := Instruction{Op: MOV, Dst: dst, Src0: s0, ReLU: relu}
				if in.Validate() == nil {
					out = append(out, Combo{Op: MOV, Dst: dst, Src0: s0, ReLU: relu})
				}
			}
		}
	}
	return out
}

// ComboCounts returns per-opcode combination counts in Table II's order.
func ComboCounts() map[Opcode]int {
	counts := make(map[Opcode]int)
	for _, c := range ComputeCombos() {
		counts[c.Op]++
	}
	counts[MOV] = len(MoveCombos())
	return counts
}

package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assembly syntax, modeled on the paper's microkernel listings:
//
//	MAC  GRF_B[0], GRF_A[0], EVEN_BANK     ; comment
//	MAC(AAM)  GRF_B, GRF_A, EVEN_BANK      ; indices come from the address
//	MAD  GRF_A[2], EVEN_BANK, SRF_M[3]     ; addend is SRF_A[3] implicitly
//	MOV  GRF_A[0], ODD_BANK
//	MOV(RELU)  GRF_A[1], GRF_B[1]
//	FILL SRF_M[0], EVEN_BANK
//	NOP  7
//	JUMP -1, 7                             ; jump back 1 slot, 7 more times
//	EXIT
//
// Bank operands never take an index: the row/column of the triggering DRAM
// command selects the data implicitly (Section IV-B).

// Format renders one instruction in assembly syntax.
func Format(in Instruction) string {
	mn := in.Op.String()
	switch in.Op {
	case NOP:
		if in.Imm0 > 0 {
			return fmt.Sprintf("NOP %d", in.Imm0)
		}
		return "NOP"
	case EXIT:
		return "EXIT"
	case JUMP:
		return fmt.Sprintf("JUMP -%d, %d", in.Imm1, in.Imm0)
	case MOV, FILL:
		switch {
		case in.AAM && in.ReLU:
			mn += "(AAM_RELU)"
		case in.AAM:
			mn += "(AAM)"
		case in.ReLU:
			mn += "(RELU)"
		}
		return fmt.Sprintf("%s %s, %s", mn, operand(in.Dst, in.DstIdx, in.AAM),
			operand(in.Src0, in.Src0Idx, in.AAM))
	default: // arithmetic
		if in.AAM {
			mn += "(AAM)"
		}
		return fmt.Sprintf("%s %s, %s, %s", mn,
			operand(in.Dst, in.DstIdx, in.AAM),
			operand(in.Src0, in.Src0Idx, in.AAM),
			operand(in.Src1, in.Src1Idx, in.AAM))
	}
}

func operand(s Src, idx uint8, aam bool) string {
	if s.IsBank() || aam {
		return s.String()
	}
	return fmt.Sprintf("%s[%d]", s, idx)
}

// FormatProgram renders a microkernel, one instruction per line.
func FormatProgram(prog []Instruction) string {
	var sb strings.Builder
	for _, in := range prog {
		sb.WriteString(Format(in))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Parse parses one line of assembly. Empty lines and ';' comments yield
// ok == false with a nil error.
func Parse(line string) (in Instruction, ok bool, err error) {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return Instruction{}, false, nil
	}

	fields := strings.SplitN(line, " ", 2)
	mn := strings.ToUpper(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = fields[1]
	}

	// Mnemonic suffixes: (AAM), (RELU), or (AAM_RELU).
	var aam, relu bool
	if i := strings.IndexByte(mn, '('); i >= 0 {
		if !strings.HasSuffix(mn, ")") {
			return Instruction{}, false, fmt.Errorf("isa: malformed mnemonic %q", fields[0])
		}
		for _, flag := range strings.Split(mn[i+1:len(mn)-1], "_") {
			switch flag {
			case "AAM":
				aam = true
			case "RELU":
				relu = true
			default:
				return Instruction{}, false, fmt.Errorf("isa: unknown flag %q in %q", flag, fields[0])
			}
		}
		mn = mn[:i]
	}

	op, okOp := mnemonics[mn]
	if !okOp {
		return Instruction{}, false, fmt.Errorf("isa: unknown mnemonic %q", fields[0])
	}

	args := splitArgs(rest)
	switch op {
	case EXIT:
		if len(args) != 0 {
			return Instruction{}, false, fmt.Errorf("isa: EXIT takes no operands")
		}
		in = Exit()
	case NOP:
		switch len(args) {
		case 0:
			in = Nop()
		case 1:
			n, perr := strconv.Atoi(args[0])
			if perr != nil || n < 0 {
				return Instruction{}, false, fmt.Errorf("isa: bad NOP cycle count %q", args[0])
			}
			in = NopCycles(n)
		default:
			return Instruction{}, false, fmt.Errorf("isa: NOP takes at most one operand")
		}
	case JUMP:
		if len(args) != 2 {
			return Instruction{}, false, fmt.Errorf("isa: JUMP takes offset and count")
		}
		off, perr := strconv.Atoi(args[0])
		if perr != nil || off >= 0 {
			return Instruction{}, false, fmt.Errorf("isa: JUMP offset %q must be negative", args[0])
		}
		cnt, perr := strconv.Atoi(args[1])
		if perr != nil || cnt < 0 {
			return Instruction{}, false, fmt.Errorf("isa: bad JUMP count %q", args[1])
		}
		in = Jump(cnt, -off)
	case MOV, FILL:
		if len(args) != 2 {
			return Instruction{}, false, fmt.Errorf("isa: %s takes destination and source", op)
		}
		dst, dstIdx, perr := parseOperand(args[0])
		if perr != nil {
			return Instruction{}, false, perr
		}
		src, srcIdx, perr := parseOperand(args[1])
		if perr != nil {
			return Instruction{}, false, perr
		}
		in = Instruction{Op: op, Dst: dst, DstIdx: dstIdx, Src0: src, Src0Idx: srcIdx, ReLU: relu, AAM: aam}
	default: // arithmetic
		if len(args) != 3 {
			return Instruction{}, false, fmt.Errorf("isa: %s takes destination and two sources", op)
		}
		dst, dstIdx, perr := parseOperand(args[0])
		if perr != nil {
			return Instruction{}, false, perr
		}
		s0, s0Idx, perr := parseOperand(args[1])
		if perr != nil {
			return Instruction{}, false, perr
		}
		s1, s1Idx, perr := parseOperand(args[2])
		if perr != nil {
			return Instruction{}, false, perr
		}
		in = Instruction{Op: op, Dst: dst, DstIdx: dstIdx,
			Src0: s0, Src0Idx: s0Idx, Src1: s1, Src1Idx: s1Idx, AAM: aam}
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, false, err
	}
	return in, true, nil
}

var mnemonics = map[string]Opcode{
	"NOP": NOP, "JUMP": JUMP, "EXIT": EXIT,
	"MOV": MOV, "FILL": FILL,
	"ADD": ADD, "MUL": MUL, "MAC": MAC, "MAD": MAD,
}

var operandNames = map[string]Src{
	"GRF_A": GRFA, "GRF_B": GRFB,
	"EVEN_BANK": EvenBank, "ODD_BANK": OddBank, "BANK": EvenBank,
	"SRF_M": SRFM, "SRF_A": SRFA,
}

func parseOperand(tok string) (Src, uint8, error) {
	name := tok
	idx := uint8(0)
	if i := strings.IndexByte(tok, '['); i >= 0 {
		if !strings.HasSuffix(tok, "]") {
			return 0, 0, fmt.Errorf("isa: malformed operand %q", tok)
		}
		name = tok[:i]
		n, err := strconv.Atoi(tok[i+1 : len(tok)-1])
		if err != nil || n < 0 || n > 255 {
			return 0, 0, fmt.Errorf("isa: bad register index in %q", tok)
		}
		idx = uint8(n)
	}
	s, ok := operandNames[strings.ToUpper(name)]
	if !ok {
		return 0, 0, fmt.Errorf("isa: unknown operand %q", tok)
	}
	if s.IsBank() && idx != 0 {
		return 0, 0, fmt.Errorf("isa: bank operand %q cannot be indexed", tok)
	}
	return s, idx, nil
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// Assemble parses a multi-line microkernel source into instructions.
func Assemble(src string) ([]Instruction, error) {
	var prog []Instruction
	for lineno, line := range strings.Split(src, "\n") {
		in, ok, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineno+1, err)
		}
		if ok {
			prog = append(prog, in)
		}
	}
	if len(prog) > CRFEntries {
		return nil, fmt.Errorf("isa: program of %d instructions exceeds CRF size %d", len(prog), CRFEntries)
	}
	return prog, nil
}

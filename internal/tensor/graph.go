package tensor

import (
	"fmt"
	"math"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/runtime"
)

// OpKind enumerates the supported graph operations. MatVec, Add, Mul,
// ReLU and BN have PIM implementations (the six custom ops of Section V-A
// minus LSTM, which is composed from these); the activations are
// host-only.
type OpKind int

const (
	OpInput OpKind = iota
	OpConst
	OpMatVec // y = W*x
	OpAdd
	OpMul
	OpReLU
	OpBN // y = gamma*x + beta (folded inference BN)
	OpSigmoid
	OpTanh
	OpSlice
)

var opNames = [...]string{"Input", "Const", "MatVec", "Add", "Mul", "ReLU", "BN", "Sigmoid", "Tanh", "Slice"}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("Op(%d)", int(k))
}

// Node is one graph vertex.
type Node struct {
	Kind   OpKind
	Name   string
	Inputs []*Node

	// Parameters.
	W           *Tensor  // MatVec weights (M x K)
	Value       *Tensor  // Const value
	Gamma, Beta fp16.F16 // BN scalars

	// Slice bounds.
	Off, Len int

	// ForcePIM marks a PIM custom op (the explicit path of Fig. 7).
	ForcePIM bool
}

// Graph is a DAG of nodes built by the application once.
type Graph struct {
	nodes []*Node
}

// add registers a node.
func (g *Graph) add(n *Node) *Node {
	g.nodes = append(g.nodes, n)
	return n
}

// Input declares a fed tensor.
func (g *Graph) Input(name string) *Node {
	return g.add(&Node{Kind: OpInput, Name: name})
}

// Const embeds a fixed tensor.
func (g *Graph) Const(name string, t *Tensor) *Node {
	return g.add(&Node{Kind: OpConst, Name: name, Value: t})
}

// MatVec multiplies a weight matrix (M x K) by the input vector.
func (g *Graph) MatVec(name string, w *Tensor, x *Node) *Node {
	return g.add(&Node{Kind: OpMatVec, Name: name, W: w, Inputs: []*Node{x}})
}

// Add is elementwise a + b.
func (g *Graph) Add(name string, a, b *Node) *Node {
	return g.add(&Node{Kind: OpAdd, Name: name, Inputs: []*Node{a, b}})
}

// Mul is elementwise a * b.
func (g *Graph) Mul(name string, a, b *Node) *Node {
	return g.add(&Node{Kind: OpMul, Name: name, Inputs: []*Node{a, b}})
}

// ReLU is elementwise max(x, 0).
func (g *Graph) ReLU(name string, x *Node) *Node {
	return g.add(&Node{Kind: OpReLU, Name: name, Inputs: []*Node{x}})
}

// BN is the folded inference batch-norm gamma*x + beta.
func (g *Graph) BN(name string, x *Node, gamma, beta float32) *Node {
	return g.add(&Node{Kind: OpBN, Name: name, Inputs: []*Node{x},
		Gamma: fp16.FromFloat32(gamma), Beta: fp16.FromFloat32(beta)})
}

// Sigmoid is elementwise 1/(1+e^-x) (host only).
func (g *Graph) Sigmoid(name string, x *Node) *Node {
	return g.add(&Node{Kind: OpSigmoid, Name: name, Inputs: []*Node{x}})
}

// Tanh is elementwise tanh (host only).
func (g *Graph) Tanh(name string, x *Node) *Node {
	return g.add(&Node{Kind: OpTanh, Name: name, Inputs: []*Node{x}})
}

// PIM marks a node as a PIM custom op: it must run on the PIM units and
// Session.Run fails on a host-only session (the explicit path).
func (n *Node) PIM() *Node {
	n.ForcePIM = true
	return n
}

// Session executes a graph. A nil Runtime is a host-only session; with a
// Runtime attached, the preprocessor routes eligible ops to PIM without
// any change to the graph (the native path of Fig. 6).
type Session struct {
	RT *runtime.Runtime

	// OffloadThreshold is the minimum operand footprint in bytes before
	// the preprocessor considers an op memory-bound enough for PIM.
	OffloadThreshold int

	// MatVecGRF, when positive, makes host-placed MatVec nodes accumulate
	// in the device's exact order (blas.RefGemvPIMOrder at that GRF
	// depth) instead of float32. A host session with MatVecGRF set is a
	// bit-exact oracle for graphs whose GEMVs run on resident PIM
	// weights — what internal/nn verifies served sequences against.
	MatVecGRF int

	// Placement records where each node executed on the last Run.
	Placement map[*Node]string
}

// NewHostSession runs everything on the host.
func NewHostSession() *Session {
	return &Session{Placement: map[*Node]string{}}
}

// NewPIMSession runs eligible ops on the PIM units.
func NewPIMSession(rt *runtime.Runtime) *Session {
	return &Session{RT: rt, OffloadThreshold: 1 << 16, Placement: map[*Node]string{}}
}

// eligible implements the runtime preprocessor's offload analysis: only
// ops with a PIM kernel, with a large enough footprint to be memory
// bound.
func (s *Session) eligible(n *Node) bool {
	if s.RT == nil {
		return false
	}
	if n.ForcePIM {
		return true
	}
	var bytes int
	switch n.Kind {
	case OpMatVec:
		bytes = 2 * n.W.Numel()
	case OpAdd, OpMul, OpReLU, OpBN:
		bytes = 0 // sized at run time from the input tensor
		return true
	default:
		return false
	}
	return bytes >= s.OffloadThreshold
}

// Run evaluates the requested outputs with the given feeds.
func (s *Session) Run(feeds map[string]*Tensor, outputs ...*Node) ([]*Tensor, error) {
	memo := map[*Node]*Tensor{}
	var eval func(n *Node) (*Tensor, error)
	eval = func(n *Node) (*Tensor, error) {
		if t, ok := memo[n]; ok {
			return t, nil
		}
		ins := make([]*Tensor, len(n.Inputs))
		for i, in := range n.Inputs {
			t, err := eval(in)
			if err != nil {
				return nil, err
			}
			ins[i] = t
		}
		out, err := s.execute(n, ins)
		if err != nil {
			return nil, fmt.Errorf("tensor: %s(%s): %w", n.Kind, n.Name, err)
		}
		memo[n] = out
		return out, nil
	}

	for name, t := range feeds {
		for _, n := range allInputs(outputs) {
			if n.Kind == OpInput && n.Name == name {
				memo[n] = t
			}
		}
	}

	results := make([]*Tensor, len(outputs))
	for i, n := range outputs {
		t, err := eval(n)
		if err != nil {
			return nil, err
		}
		results[i] = t
	}
	return results, nil
}

// allInputs collects the transitive closure of the outputs' ancestors.
func allInputs(outputs []*Node) []*Node {
	seen := map[*Node]bool{}
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		out = append(out, n)
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	for _, n := range outputs {
		walk(n)
	}
	return out
}

// execute runs one node on the placed device.
func (s *Session) execute(n *Node, ins []*Tensor) (*Tensor, error) {
	onPIM := s.eligible(n)
	// Runtime sizing for elementwise ops.
	if onPIM && !n.ForcePIM && n.Kind != OpMatVec && len(ins) > 0 {
		onPIM = 2*ins[0].Numel() >= s.OffloadThreshold
	}
	if n.ForcePIM && s.RT == nil {
		return nil, fmt.Errorf("PIM custom op on a host-only session")
	}
	where := "host"
	if onPIM {
		where = "pim"
	}
	s.Placement[n] = where

	switch n.Kind {
	case OpInput:
		return nil, fmt.Errorf("input %q was not fed", n.Name)
	case OpConst:
		return n.Value, nil
	case OpMatVec:
		m := n.W.Shape[0]
		k := n.W.Shape[1]
		if len(ins) != 1 || ins[0].Numel() != k {
			return nil, fmt.Errorf("input length %d, want %d", ins[0].Numel(), k)
		}
		if onPIM {
			y, _, err := blas.PimGemv(s.RT, n.W.Data, m, k, ins[0].Data)
			if err != nil {
				return nil, err
			}
			return &Tensor{Shape: []int{m}, Data: y}, nil
		}
		if s.MatVecGRF > 0 {
			return &Tensor{Shape: []int{m}, Data: blas.RefGemvPIMOrder(n.W.Data, m, k, ins[0].Data, s.MatVecGRF)}, nil
		}
		return &Tensor{Shape: []int{m}, Data: blas.HostGemvF32(n.W.Data, m, k, ins[0].Data)}, nil
	case OpAdd, OpMul:
		if len(ins) != 2 || !ins[0].SameShape(ins[1]) {
			return nil, fmt.Errorf("shape mismatch")
		}
		nElem := ins[0].Numel()
		if onPIM {
			var out fp16.Vector
			var err error
			if n.Kind == OpAdd {
				out, _, err = blas.PimAdd(s.RT, ins[0].Data, ins[1].Data, nElem)
			} else {
				out, _, err = blas.PimMul(s.RT, ins[0].Data, ins[1].Data, nElem)
			}
			if err != nil {
				return nil, err
			}
			return &Tensor{Shape: ins[0].Shape, Data: out}, nil
		}
		if n.Kind == OpAdd {
			return &Tensor{Shape: ins[0].Shape, Data: blas.RefAdd(ins[0].Data, ins[1].Data)}, nil
		}
		return &Tensor{Shape: ins[0].Shape, Data: blas.RefMul(ins[0].Data, ins[1].Data)}, nil
	case OpReLU:
		if onPIM {
			out, _, err := blas.PimReLU(s.RT, ins[0].Data, ins[0].Numel())
			if err != nil {
				return nil, err
			}
			return &Tensor{Shape: ins[0].Shape, Data: out}, nil
		}
		return &Tensor{Shape: ins[0].Shape, Data: blas.RefReLU(ins[0].Data)}, nil
	case OpBN:
		if onPIM {
			out, _, err := blas.PimBN(s.RT, ins[0].Data, ins[0].Numel(), n.Gamma, n.Beta)
			if err != nil {
				return nil, err
			}
			return &Tensor{Shape: ins[0].Shape, Data: out}, nil
		}
		return &Tensor{Shape: ins[0].Shape, Data: blas.RefBN(ins[0].Data, n.Gamma, n.Beta)}, nil
	case OpSlice:
		return executeSlice(n, ins[0])
	case OpSigmoid, OpTanh:
		out := fp16.NewVector(ins[0].Numel())
		for i, v := range ins[0].Data {
			x := v.Float64()
			if n.Kind == OpSigmoid {
				out[i] = fp16.FromFloat64(1 / (1 + math.Exp(-x)))
			} else {
				out[i] = fp16.FromFloat64(math.Tanh(x))
			}
		}
		return &Tensor{Shape: ins[0].Shape, Data: out}, nil
	}
	return nil, fmt.Errorf("unhandled op kind %s", n.Kind)
}

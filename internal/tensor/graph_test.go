package tensor

import (
	"math/rand"
	"testing"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
)

func pimRT(t *testing.T) *runtime.Runtime {
	t.Helper()
	cfg := hbm.PIMHBMConfig(1000)
	cfg.PseudoChannels = 2
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = fp16.FromFloat32(float32(rng.NormFloat64() * 0.2))
	}
	return t
}

// buildMLP constructs W2*relu(W1*x + b) + skip — one graph used by both
// sessions, unchanged (the paper's "no source code modification" claim).
func buildMLP(g *Graph, w1, w2, b, skip *Tensor) (*Node, *Node) {
	x := g.Input("x")
	h := g.MatVec("fc1", w1, x)
	h = g.Add("bias", h, g.Const("b", b))
	h = g.ReLU("act", h)
	y := g.MatVec("fc2", w2, h)
	y = g.Add("skip", y, g.Const("res", skip))
	return x, y
}

func TestSameGraphHostAndPIM(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const in, hid, out = 64, 48, 32
	w1 := randTensor(rng, hid, in)
	w2 := randTensor(rng, out, hid)
	b := randTensor(rng, hid)
	skip := randTensor(rng, out)
	x := randTensor(rng, in)

	var g Graph
	xn, yn := buildMLP(&g, w1, w2, b, skip)
	_ = xn

	hostOut, err := NewHostSession().Run(map[string]*Tensor{"x": x}, yn)
	if err != nil {
		t.Fatal(err)
	}
	pimSess := NewPIMSession(pimRT(t))
	pimSess.OffloadThreshold = 1 // offload everything eligible
	pimOut, err := pimSess.Run(map[string]*Tensor{"x": x}, yn)
	if err != nil {
		t.Fatal(err)
	}

	// Host accumulates MatVec in f32, PIM in fp16: small divergence only.
	if d := fp16.MaxAbsDiff(hostOut[0].Data, pimOut[0].Data); d > 0.05 {
		t.Errorf("host/PIM diverged by %v", d)
	}
	// The preprocessor must actually have placed work on PIM.
	pimOps := 0
	for n, where := range pimSess.Placement {
		if where == "pim" {
			pimOps++
			switch n.Kind {
			case OpMatVec, OpAdd, OpMul, OpReLU, OpBN:
			default:
				t.Errorf("op %s placed on PIM without a kernel", n.Kind)
			}
		}
	}
	if pimOps < 3 {
		t.Errorf("only %d ops offloaded", pimOps)
	}
}

func TestEltwisePIMExactlyMatchesHost(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randTensor(rng, 600)
	b := randTensor(rng, 600)

	var g Graph
	an := g.Const("a", a)
	bn := g.Const("b", b)
	sum := g.Add("sum", an, bn)
	prod := g.Mul("prod", an, bn)
	act := g.ReLU("relu", sum)
	norm := g.BN("bn", prod, 1.5, -0.25)

	host, err := NewHostSession().Run(nil, sum, prod, act, norm)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewPIMSession(pimRT(t))
	sess.OffloadThreshold = 1
	pim, err := sess.Run(nil, sum, prod, act, norm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range host {
		for j := range host[i].Data {
			h, p := host[i].Data[j], pim[i].Data[j]
			if h != p && !(h.IsNaN() && p.IsNaN()) {
				t.Fatalf("output %d element %d: host %v pim %v", i, j, h, p)
			}
		}
	}
}

func TestOffloadThresholdKeepsSmallOpsOnHost(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	small := randTensor(rng, 16)
	var g Graph
	y := g.ReLU("tiny", g.Const("c", small))
	sess := NewPIMSession(pimRT(t))
	sess.OffloadThreshold = 1 << 20
	if _, err := sess.Run(nil, y); err != nil {
		t.Fatal(err)
	}
	if sess.Placement[y] != "host" {
		t.Error("tiny op offloaded despite threshold")
	}
}

func TestPIMCustomOpForcesPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randTensor(rng, 64)
	b := randTensor(rng, 64)
	var g Graph
	y := g.Add("custom", g.Const("a", a), g.Const("b", b)).PIM()

	// Host-only session must refuse the explicit PIM op.
	if _, err := NewHostSession().Run(nil, y); err == nil {
		t.Error("host session executed a PIM custom op")
	}
	sess := NewPIMSession(pimRT(t))
	sess.OffloadThreshold = 1 << 30 // would normally keep it on host
	if _, err := sess.Run(nil, y); err != nil {
		t.Fatal(err)
	}
	if sess.Placement[y] != "pim" {
		t.Error("custom op not placed on PIM")
	}
}

func TestGraphErrors(t *testing.T) {
	var g Graph
	x := g.Input("x")
	y := g.ReLU("r", x)
	if _, err := NewHostSession().Run(nil, y); err == nil {
		t.Error("unfed input accepted")
	}
	w, _ := FromSlice(make([]float32, 12), 3, 4)
	mv := g.MatVec("m", w, g.Const("c", New(5)))
	if _, err := NewHostSession().Run(nil, mv); err == nil {
		t.Error("dimension mismatch accepted")
	}
	a := g.Const("a", New(4))
	b := g.Const("b", New(5))
	if _, err := NewHostSession().Run(nil, g.Add("bad", a, b)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestTensorBasics(t *testing.T) {
	if _, err := FromSlice([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Error("wrong element count accepted")
	}
	tt, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Numel() != 4 {
		t.Error("numel")
	}
	got := tt.Float32s()
	if got[3] != 4 {
		t.Error("round trip")
	}
	if !tt.SameShape(New(2, 2)) || tt.SameShape(New(4)) {
		t.Error("SameShape")
	}
}

// Package tensor is a minimal ML-framework layer in the spirit of the
// paper's TensorFlow integration (Section V, Fig. 6): applications build a
// graph of ops once, and the *same unmodified graph* runs on the host or
// on PIM. The native execution path lets the runtime preprocessor pick
// memory-bound ops and route them to the PIM BLAS automatically; PIM
// custom ops (Fig. 7) force explicit offload.
package tensor

import (
	"fmt"

	"pimsim/internal/fp16"
)

// Tensor is a dense FP16 tensor.
type Tensor struct {
	Shape []int
	Data  fp16.Vector
}

// New allocates a zero tensor.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: shape, Data: fp16.NewVector(numel(shape))}
}

// FromSlice builds a tensor from float32 data.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	if len(data) != numel(shape) {
		return nil, fmt.Errorf("tensor: %d values for shape %v", len(data), shape)
	}
	return &Tensor{Shape: shape, Data: fp16.FromFloat32s(data)}, nil
}

// Numel returns the element count.
func (t *Tensor) Numel() int { return numel(t.Shape) }

// Float32s converts the data.
func (t *Tensor) Float32s() []float32 { return t.Data.Float32s() }

// SameShape reports shape equality.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

func numel(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

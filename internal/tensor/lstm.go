package tensor

import (
	"fmt"

	"pimsim/internal/fp16"
)

// Slice support and the LSTM composition. The paper ships six PIM custom
// ops — ADD, MUL, ReLU, LSTM, GEMV, BN (Section V-A); here LSTM is
// composed from the primitive graph ops, with its two GEMVs eligible for
// PIM placement and the gate math on host-only activation ops.

// Slice extracts elements [off, off+n) of a vector (a host-side view; it
// moves no DRAM data).
func (g *Graph) Slice(name string, x *Node, off, n int) *Node {
	return g.add(&Node{Kind: OpSlice, Name: name, Inputs: []*Node{x}, Off: off, Len: n})
}

// BuildLSTMStep wires one LSTM cell step from primitives:
//
//	z  = Wx*x + Wh*h + b
//	i,f,g,o = sigmoid/tanh of the four H-wide bands of z
//	c' = f*c + i*g ;  h' = o * tanh(c')
//
// Gate order matches blas.LSTMWeights: [input, forget, cell, output].
// The two MatVecs are the memory-bound part the PIM session offloads.
func BuildLSTMStep(g *Graph, name string, wx, wh, bias *Tensor, x, h, c *Node) (hOut, cOut *Node, err error) {
	if len(wx.Shape) != 2 || len(wh.Shape) != 2 {
		return nil, nil, fmt.Errorf("tensor: LSTM weights must be matrices")
	}
	fourH := wx.Shape[0]
	if fourH%4 != 0 || wh.Shape[0] != fourH || wh.Shape[1] != fourH/4 {
		return nil, nil, fmt.Errorf("tensor: inconsistent LSTM dims %v / %v", wx.Shape, wh.Shape)
	}
	H := fourH / 4

	zx := g.MatVec(name+"/wx", wx, x)
	zh := g.MatVec(name+"/wh", wh, h)
	z := g.Add(name+"/z", zx, zh)
	if bias != nil {
		z = g.Add(name+"/bias", z, g.Const(name+"/b", bias))
	}

	gate := func(idx int, act func(string, *Node) *Node, label string) *Node {
		return act(name+"/"+label, g.Slice(name+"/"+label+"_pre", z, idx*H, H))
	}
	i := gate(0, g.Sigmoid, "i")
	f := gate(1, g.Sigmoid, "f")
	gg := gate(2, g.Tanh, "g")
	o := gate(3, g.Sigmoid, "o")

	cOut = g.Add(name+"/c", g.Mul(name+"/fc", f, c), g.Mul(name+"/ig", i, gg))
	hOut = g.Mul(name+"/h", o, g.Tanh(name+"/tc", cOut))
	return hOut, cOut, nil
}

// executeSlice implements OpSlice (called from Session.execute).
func executeSlice(n *Node, in *Tensor) (*Tensor, error) {
	if n.Off < 0 || n.Len <= 0 || n.Off+n.Len > in.Numel() {
		return nil, fmt.Errorf("slice [%d,%d) of %d elements", n.Off, n.Off+n.Len, in.Numel())
	}
	out := fp16.NewVector(n.Len)
	copy(out, in.Data[n.Off:n.Off+n.Len])
	return &Tensor{Shape: []int{n.Len}, Data: out}, nil
}

package tensor

import (
	"math/rand"
	"testing"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
)

func TestBuildLSTMStepMatchesBLAS(t *testing.T) {
	const H, X = 24, 32
	rng := rand.New(rand.NewSource(41))
	wx := randTensor(rng, 4*H, X)
	wh := randTensor(rng, 4*H, H)
	bias := randTensor(rng, 4*H)
	x := randTensor(rng, X)
	h0 := randTensor(rng, H)
	c0 := randTensor(rng, H)

	var g Graph
	xn := g.Input("x")
	hn := g.Input("h")
	cn := g.Input("c")
	hOut, cOut, err := BuildLSTMStep(&g, "cell", wx, wh, bias, xn, hn, cn)
	if err != nil {
		t.Fatal(err)
	}
	feeds := map[string]*Tensor{"x": x, "h": h0, "c": c0}

	// Host session vs the blas reference cell.
	got, err := NewHostSession().Run(feeds, hOut, cOut)
	if err != nil {
		t.Fatal(err)
	}
	w := blas.LSTMWeights{Wx: wx.Data, Wh: wh.Data, B: bias.Data, X: X, H: H}
	wantH, wantC, err := blas.HostLSTMCell(w, x.Data, h0.Data, c0.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Rounding orders differ (graph adds in fp16 between ops, blas sums
	// pre-activations in float64); gates saturate so drift stays small.
	if d := fp16.MaxAbsDiff(got[0].Data, wantH); d > 0.03 {
		t.Errorf("h diverged by %v", d)
	}
	if d := fp16.MaxAbsDiff(got[1].Data, wantC); d > 0.06 {
		t.Errorf("c diverged by %v", d)
	}

	// The same graph on a PIM session: the two MatVecs offload.
	sess := NewPIMSession(pimRT(t))
	sess.OffloadThreshold = 1
	pimOut, err := sess.Run(feeds, hOut, cOut)
	if err != nil {
		t.Fatal(err)
	}
	if d := fp16.MaxAbsDiff(pimOut[0].Data, got[0].Data); d > 0.05 {
		t.Errorf("PIM h diverged by %v", d)
	}
	offloadedMatVecs := 0
	for n, where := range sess.Placement {
		if n.Kind == OpMatVec && where == "pim" {
			offloadedMatVecs++
		}
		if (n.Kind == OpSigmoid || n.Kind == OpTanh || n.Kind == OpSlice) && where == "pim" {
			t.Errorf("host-only op %s placed on PIM", n.Kind)
		}
	}
	if offloadedMatVecs != 2 {
		t.Errorf("%d MatVecs offloaded, want 2 (Wx and Wh)", offloadedMatVecs)
	}
}

func TestBuildLSTMStepValidation(t *testing.T) {
	var g Graph
	x := g.Input("x")
	h := g.Input("h")
	c := g.Input("c")
	if _, _, err := BuildLSTMStep(&g, "bad", New(10), New(10, 10), nil, x, h, c); err == nil {
		t.Error("vector weights accepted")
	}
	if _, _, err := BuildLSTMStep(&g, "bad2", New(12, 4), New(12, 4), nil, x, h, c); err == nil {
		t.Error("inconsistent Wh accepted (want 12x3)")
	}
}

func TestSliceOp(t *testing.T) {
	v, err := FromSlice([]float32{1, 2, 3, 4, 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var g Graph
	s := g.Slice("mid", g.Const("v", v), 1, 3)
	out, err := NewHostSession().Run(nil, s)
	if err != nil {
		t.Fatal(err)
	}
	got := out[0].Float32s()
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("slice = %v", got)
	}
	for _, bad := range []*Node{
		g.Slice("oob", g.Const("v2", v), 3, 3),
		g.Slice("neg", g.Const("v3", v), -1, 2),
	} {
		if _, err := NewHostSession().Run(nil, bad); err == nil {
			t.Errorf("bad slice %q accepted", bad.Name)
		}
	}
}

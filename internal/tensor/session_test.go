package tensor

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
)

// Session error-path coverage: the three ways a graph run fails before
// any kernel could launch. Each error must name the offending node so a
// multi-hundred-node model graph stays debuggable.

func TestSessionErrorUnfedInput(t *testing.T) {
	var g Graph
	x := g.Input("frame")
	y := g.ReLU("act", x)
	_, err := NewHostSession().Run(map[string]*Tensor{"wrong-name": New(4)}, y)
	if err == nil {
		t.Fatal("run with a missing feed succeeded")
	}
	if want := `input "frame" was not fed`; !contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

func TestSessionErrorShapeMismatchMidGraph(t *testing.T) {
	// The mismatch sits two ops deep: both inputs are fed correctly, the
	// Add of a 4-vector and a MatVec output of 3 rows is what breaks.
	var g Graph
	w, err := FromSlice(make([]float32, 12), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := g.Input("x")
	mv := g.MatVec("proj", w, x)
	bad := g.Add("residual", mv, x) // 3 + 4 elements
	_, err = NewHostSession().Run(map[string]*Tensor{"x": New(4)}, bad)
	if err == nil {
		t.Fatal("mid-graph shape mismatch accepted")
	}
	if !contains(err.Error(), "residual") || !contains(err.Error(), "shape mismatch") {
		t.Errorf("error %q does not name node and cause", err)
	}
}

func TestSessionErrorForcedPIMWithoutRuntime(t *testing.T) {
	var g Graph
	a := g.Input("a")
	y := g.ReLU("pim-relu", a).PIM()
	_, err := NewHostSession().Run(map[string]*Tensor{"a": New(4)}, y)
	if err == nil {
		t.Fatal("forced-PIM op ran on a host-only session")
	}
	if want := "PIM custom op on a host-only session"; !contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

// TestSessionMatVecGRFMatchesDeviceOrder: a host session with MatVecGRF
// set must reproduce the device's interleaved-accumulator GEMV exactly.
func TestSessionMatVecGRFMatchesDeviceOrder(t *testing.T) {
	const M, K, G = 48, 40, 8
	rng := rand.New(rand.NewSource(11))
	wdata := fp16.NewVector(M * K)
	for i := range wdata {
		wdata[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
	}
	x16 := fp16.NewVector(K)
	for i := range x16 {
		x16[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
	}

	var g Graph
	xn := g.Input("x")
	y := g.MatVec("mv", &Tensor{Shape: []int{M, K}, Data: wdata}, xn)

	sess := NewHostSession()
	sess.MatVecGRF = G
	out, err := sess.Run(map[string]*Tensor{"x": {Shape: []int{K}, Data: x16}}, y)
	if err != nil {
		t.Fatal(err)
	}
	want := blas.RefGemvPIMOrder(wdata, M, K, x16, G)
	for i := range want {
		if out[0].Data[i] != want[i] {
			t.Fatalf("output %d: %v != device-order %v", i, out[0].Data[i], want[i])
		}
	}
}

// lstmHostStep is an independent pure-host reference for one LSTM cell
// step, mirroring the tensor graph's primitive semantics op by op:
// float32-accumulated GEMVs, pairwise fp16 adds, per-element float64
// activations, fp16 multiplies. It shares no code with BuildLSTMStep.
func lstmHostStep(wx, wh, b fp16.Vector, X, H int, x, h, c fp16.Vector) (hOut, cOut fp16.Vector) {
	fourH := 4 * H
	z := fp16.NewVector(fourH)
	zx := blas.HostGemvF32(wx, fourH, X, x)
	zh := blas.HostGemvF32(wh, fourH, H, h)
	for i := 0; i < fourH; i++ {
		z[i] = fp16.Add(fp16.Add(zx[i], zh[i]), b[i])
	}
	sig := func(v fp16.F16) fp16.F16 { return fp16.FromFloat64(1 / (1 + math.Exp(-v.Float64()))) }
	tanh := func(v fp16.F16) fp16.F16 { return fp16.FromFloat64(math.Tanh(v.Float64())) }
	hOut = fp16.NewVector(H)
	cOut = fp16.NewVector(H)
	for j := 0; j < H; j++ {
		i := sig(z[j])
		f := sig(z[H+j])
		gg := tanh(z[2*H+j])
		o := sig(z[3*H+j])
		cOut[j] = fp16.Add(fp16.Mul(f, c[j]), fp16.Mul(i, gg))
		hOut[j] = fp16.Mul(o, tanh(cOut[j]))
	}
	return hOut, cOut
}

// TestBuildLSTMStepMultiStepGolden runs a BuildLSTMStep graph for eight
// timesteps with the state fed back, checks every step bit-for-bit
// against the independent host reference, and pins the final state to a
// golden hash so a silent semantic change in any primitive op (rounding,
// gate order, accumulation) fails loudly.
func TestBuildLSTMStepMultiStepGolden(t *testing.T) {
	const X, H, T = 12, 8, 8
	rng := rand.New(rand.NewSource(77))
	gen := func(n int) fp16.Vector {
		v := fp16.NewVector(n)
		for i := range v {
			v[i] = fp16.FromFloat32(float32(rng.NormFloat64() * 0.5))
		}
		return v
	}
	wx, wh, bias := gen(4*H*X), gen(4*H*H), gen(4*H)

	var g Graph
	xn, hn, cn := g.Input("x"), g.Input("h"), g.Input("c")
	hOut, cOut, err := BuildLSTMStep(&g, "cell",
		&Tensor{Shape: []int{4 * H, X}, Data: wx},
		&Tensor{Shape: []int{4 * H, H}, Data: wh},
		&Tensor{Shape: []int{4 * H}, Data: bias},
		xn, hn, cn)
	if err != nil {
		t.Fatal(err)
	}

	sess := NewHostSession()
	h := fp16.NewVector(H)
	c := fp16.NewVector(H)
	refH := fp16.NewVector(H)
	refC := fp16.NewVector(H)
	hash := fnv.New64a()
	for step := 0; step < T; step++ {
		x := gen(X)
		outs, err := sess.Run(map[string]*Tensor{
			"x": {Shape: []int{X}, Data: x},
			"h": {Shape: []int{H}, Data: h},
			"c": {Shape: []int{H}, Data: c},
		}, hOut, cOut)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		refH, refC = lstmHostStep(wx, wh, bias, X, H, x, refH, refC)
		for j := 0; j < H; j++ {
			if outs[0].Data[j] != refH[j] || outs[1].Data[j] != refC[j] {
				t.Fatalf("step %d element %d: graph (h=%v c=%v) != reference (h=%v c=%v)",
					step, j, outs[0].Data[j], outs[1].Data[j], refH[j], refC[j])
			}
		}
		h, c = outs[0].Data, outs[1].Data
	}
	hash.Write(h.Bytes())
	hash.Write(c.Bytes())
	const golden = "d98094b98e7cd2c1"
	if got := fmt.Sprintf("%016x", hash.Sum64()); got != golden {
		t.Errorf("multi-step LSTM state hash %s, want golden %s", got, golden)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

package sim

import (
	"fmt"

	"pimsim/internal/energy"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/pim"
)

// Fig. 11: component power of HBM and PIM-HBM over back-to-back DRAM RD
// streams. The HBM side streams column reads at the tCCD_S cadence across
// bank groups in SB mode; the PIM side streams MAC triggers at the tCCD_L
// cadence in AB-PIM mode. Powers come from the device model's activity
// counters through the calibrated component energies.

// Fig11Result summarizes the comparison.
type Fig11Result struct {
	HBM energy.PowerBreakdown // watts per pseudo channel
	PIM energy.PowerBreakdown

	PowerRatio        float64 // PIM / HBM total power (paper: ~1.054)
	PowerRatioNoBufIO float64 // with the buffer-die I/O toggle removed (paper: ~0.9)
	CellIOSARatio     float64 // bank-side power scaling (paper: proportional, ~4x)
	EnergyPerBitRatio float64 // HBM pJ/bit over PIM pJ/bit (paper: ~3.5x)
}

type rdStream struct {
	stats  hbm.Stats
	cycles int64
	cfg    hbm.Config
	bits   float64 // delivered payload bits
}

func streamHBMReads(n int) (rdStream, error) {
	cfg := hbm.HBM2Config(MemClockMHz)
	cfg.Functional = false
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		return rdStream{}, err
	}
	p := dev.PCH(0)
	var now int64
	issue := func(cmd hbm.Command) error {
		at, err := p.EarliestIssue(cmd, now)
		if err != nil {
			return err
		}
		if _, err := p.Issue(cmd, at); err != nil {
			return err
		}
		now = at
		return nil
	}
	for bg := 0; bg < cfg.BankGroups; bg++ {
		if err := issue(hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: 0, Row: 0}); err != nil {
			return rdStream{}, err
		}
	}
	cols := cfg.ColumnsPerRow()
	for i := 0; i < n; i++ {
		if err := issue(hbm.Command{Kind: hbm.CmdRD, BG: i % 4, Bank: 0, Col: uint32(i/4) % uint32(cols)}); err != nil {
			return rdStream{}, err
		}
	}
	st := p.Stats()
	return rdStream{stats: st, cycles: now, cfg: cfg, bits: 8 * float64(st.OffChipBytes)}, nil
}

func streamPIMReads(n int) (rdStream, error) {
	cfg := hbm.PIMHBMConfig(MemClockMHz)
	cfg.Functional = false
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		return rdStream{}, err
	}
	if _, err := pim.Attach(dev); err != nil {
		return rdStream{}, err
	}
	p := dev.PCH(0)
	var now int64
	issue := func(cmd hbm.Command) error {
		at, err := p.EarliestIssue(cmd, now)
		if err != nil {
			return err
		}
		if _, err := p.Issue(cmd, at); err != nil {
			return err
		}
		now = at
		return nil
	}
	// Enter AB, program an endless MAC loop, enter AB-PIM, open a row.
	seq := []hbm.Command{
		{Kind: hbm.CmdACT, BG: 0, Bank: hbm.ABMRBank, Row: cfg.ModeRow()},
		{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.ABMRBank},
	}
	for _, c := range seq {
		if err := issue(c); err != nil {
			return rdStream{}, err
		}
	}
	prog := []isa.Instruction{
		{Op: isa.MAC, Dst: isa.GRFB, Src0: isa.GRFA, Src1: isa.EvenBank, AAM: true},
		isa.Jump(isa.MaxLoopIter, 1),
		isa.Jump(isa.MaxLoopIter, 2),
		isa.Jump(isa.MaxLoopIter, 3),
		isa.Exit(),
	}
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		return rdStream{}, err
	}
	buf := make([]byte, 32)
	for i, w := range words {
		buf[4*i], buf[4*i+1], buf[4*i+2], buf[4*i+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
	}
	on := make([]byte, 32)
	on[0] = 1
	seq = []hbm.Command{
		{Kind: hbm.CmdACT, Row: cfg.CRFRow()},
		{Kind: hbm.CmdWR, Col: 0, Data: buf},
		{Kind: hbm.CmdPREA},
		{Kind: hbm.CmdACT, BG: 0, Bank: hbm.ABMRBank, Row: cfg.ModeRow()},
		{Kind: hbm.CmdWR, BG: 0, Bank: hbm.ABMRBank, Col: hbm.ColPIMOpMode, Data: on},
		{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.ABMRBank},
		{Kind: hbm.CmdACT, Row: 1},
	}
	for _, c := range seq {
		if err := issue(c); err != nil {
			return rdStream{}, err
		}
	}
	dev.ResetStats()
	start := now
	cols := cfg.ColumnsPerRow()
	for i := 0; i < n; i++ {
		if err := issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: uint32(i % cols)}); err != nil {
			return rdStream{}, err
		}
	}
	st := p.Stats()
	return rdStream{
		stats: st, cycles: now - start, cfg: cfg,
		bits: 8 * float64(st.BankReads) * float64(cfg.AccessBytes),
	}, nil
}

// OnChipStreamGBps measures the delivered on-chip bandwidth of one pseudo
// channel under a steady AB-PIM MAC stream (Table V: ~77 GB/s per channel
// at 1.2 GHz, 1.229 TB/s per device).
func OnChipStreamGBps(n int) (float64, error) {
	s, err := streamPIMReads(n)
	if err != nil {
		return 0, err
	}
	bankBytes := float64(s.stats.BankReads) * float64(s.cfg.AccessBytes)
	return bankBytes / s.cfg.Timing.CyclesToNs(s.cycles), nil
}

// RunFig11 reproduces the power breakdown comparison.
func RunFig11() (Fig11Result, error) {
	const n = 8192
	params := energy.DefaultParams()
	h, err := streamHBMReads(n)
	if err != nil {
		return Fig11Result{}, fmt.Errorf("sim: HBM stream: %w", err)
	}
	p, err := streamPIMReads(n)
	if err != nil {
		return Fig11Result{}, fmt.Errorf("sim: PIM stream: %w", err)
	}

	hb := energy.Compute(h.stats, h.cycles, h.cfg, params, 1)
	pb := energy.Compute(p.stats, p.cycles, p.cfg, params, 1)
	hw, err := energy.ToPower(hb, h.cycles, h.cfg.Timing)
	if err != nil {
		return Fig11Result{}, err
	}
	pw, err := energy.ToPower(pb, p.cycles, p.cfg.Timing)
	if err != nil {
		return Fig11Result{}, err
	}

	res := Fig11Result{HBM: hw, PIM: pw}
	res.PowerRatio = pw.Total() / hw.Total()
	res.PowerRatioNoBufIO = (pw.Total() - pw.BufferIO) / hw.Total()
	hbNs := h.cfg.Timing.CyclesToNs(h.cycles)
	pbNs := p.cfg.Timing.CyclesToNs(p.cycles)
	res.CellIOSARatio = ((pb.Cell + pb.IOSA) / pbNs) / ((hb.Cell + hb.IOSA) / hbNs)
	res.EnergyPerBitRatio = (hb.Total() / h.bits) / (pb.Total() / p.bits)
	return res, nil
}

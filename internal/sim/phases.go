package sim

import (
	"fmt"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
)

// PhaseCell is one runtime phase of a kernel: how often the runtime
// entered it and how many memory-clock cycles it spent there.
type PhaseCell struct {
	Name   string
	Count  int64
	Cycles int64
}

// PhaseRow is one kernel's phase breakdown, derived by diffing metrics
// snapshots around the kernel run.
type PhaseRow struct {
	Kernel string
	Cycles int64 // end-to-end kernel cycles
	Phases []PhaseCell
}

// phaseCounters maps display names to the runtime counter pairs that
// back them (see internal/runtime/metrics.go).
var phaseCounters = []struct {
	name, count, cycles string
}{
	{"mode", "runtime_mode_transitions_total", "runtime_mode_transition_cycles_total"},
	{"crf", "runtime_crf_programs_total", "runtime_crf_program_cycles_total"},
	{"srf", "runtime_srf_programs_total", "runtime_srf_program_cycles_total"},
	{"grf0", "runtime_grf_zeros_total", "runtime_grf_zero_cycles_total"},
	{"trigger", "runtime_triggers_total", "runtime_trigger_cycles_total"},
}

// RunPhaseBreakdown runs a representative kernel set on one timing-only
// PIM device and reports where each kernel's runtime work goes, using
// metrics snapshot diffs so consecutive kernels on the same runtime
// don't bleed into each other's rows.
func RunPhaseBreakdown() ([]PhaseRow, error) {
	cfg := hbm.PIMHBMConfig(MemClockMHz)
	cfg.Functional = false
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		return nil, err
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		return nil, err
	}
	rt.SimChannels = 1

	gamma, beta := fp16.FromFloat32(1.25), fp16.FromFloat32(-0.5)
	kernels := []struct {
		name string
		run  func() (blas.KernelStats, error)
	}{
		{"GEMV 1kx4k", func() (blas.KernelStats, error) {
			_, ks, err := blas.PimGemv(rt, nil, 1024, 4096, nil)
			return ks, err
		}},
		{"ADD 1M", func() (blas.KernelStats, error) {
			_, ks, err := blas.PimAdd(rt, nil, nil, 1<<20)
			return ks, err
		}},
		{"MUL 1M", func() (blas.KernelStats, error) {
			_, ks, err := blas.PimMul(rt, nil, nil, 1<<20)
			return ks, err
		}},
		{"RELU 1M", func() (blas.KernelStats, error) {
			_, ks, err := blas.PimReLU(rt, nil, 1<<20)
			return ks, err
		}},
		{"BN 1M", func() (blas.KernelStats, error) {
			_, ks, err := blas.PimBN(rt, nil, 1<<20, gamma, beta)
			return ks, err
		}},
	}

	out := make([]PhaseRow, 0, len(kernels))
	prev := rt.Metrics.Snapshot()
	for _, k := range kernels {
		ks, err := k.run()
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", k.name, err)
		}
		snap := rt.Metrics.Snapshot()
		d := snap.Diff(prev)
		prev = snap
		row := PhaseRow{Kernel: k.name, Cycles: ks.Cycles}
		for _, p := range phaseCounters {
			row.Phases = append(row.Phases, PhaseCell{
				Name:   p.name,
				Count:  d.Counter(p.count),
				Cycles: d.Counter(p.cycles),
			})
		}
		out = append(out, row)
	}
	// Guard the snapshot-diff plumbing itself: every registered phase
	// counter pair must exist in the snapshot (a renamed counter would
	// otherwise silently report zeros forever).
	for _, p := range phaseCounters {
		if _, ok := prev.Counters[p.count]; !ok {
			return nil, fmt.Errorf("sim: phase counter %q missing from snapshot", p.count)
		}
		if _, ok := prev.Counters[p.cycles]; !ok {
			return nil, fmt.Errorf("sim: phase counter %q missing from snapshot", p.cycles)
		}
	}
	return out, nil
}

// Package sim assembles the full evaluated systems — a host processor
// 2.5D-integrated with four HBM2 or PIM-HBM stacks — and implements every
// experiment of Section VII: the Fig. 10 microbenchmarks and applications,
// the Fig. 11-13 power and energy studies, the fence-removal and
// encoder-only analyses, and the Fig. 14 design space exploration.
package sim

import (
	"fmt"

	"pimsim/internal/blas"
	"pimsim/internal/energy"
	"pimsim/internal/engine"
	"pimsim/internal/hbm"
	"pimsim/internal/host"
	"pimsim/internal/runtime"
)

// DeviceCount is the number of stacks in the SiP (Section VI).
const DeviceCount = 4

// MemClockMHz is the evaluated memory clock (1.2 GHz parts).
const MemClockMHz = 1200

// System is one host + memory configuration.
type System struct {
	Name     string
	Proc     host.Processor
	Params   energy.Params
	MemScale float64 // device-count multiplier (PROC-HBMx4)

	// PIM side (nil for host-only systems).
	RT      *runtime.Runtime
	Devices []*hbm.Device

	// HostDriveFrac is the fraction of busy power the host draws while it
	// is only feeding command streams to PIM (issuing uncached loads and
	// stores rather than running FP math).
	HostDriveFrac float64

	gemvCache map[[2]int]PimCost
	eltCache  map[eltKey]PimCost
}

type eltKey struct {
	op string
	n  int
}

// PimCost is one measured PIM kernel.
type PimCost struct {
	Ns       float64
	Cycles   int64
	Stats    hbm.Stats // full-system device activity (scaled from channel 0)
	Triggers int64
}

// NewPIMSystem builds the processor-with-PIM-HBM system. Variant selects
// a Fig. 14 microarchitecture; use hbm.VariantBase for the product.
func NewPIMSystem(variant hbm.Variant) (*System, error) {
	cfg := hbm.PIMHBMConfig(MemClockMHz)
	cfg.Functional = false // experiments are timing runs; tests use blas directly
	cfg.Variant = variant
	if variant == hbm.Variant2X {
		cfg.PIMUnits = 16
	}
	devs := make([]*hbm.Device, DeviceCount)
	for i := range devs {
		d, err := hbm.NewDevice(cfg)
		if err != nil {
			return nil, err
		}
		devs[i] = d
	}
	rt, err := runtime.New(devs)
	if err != nil {
		return nil, err
	}
	// Channels are symmetric; simulate the maximally loaded one.
	rt.SimChannels = 1
	return &System{
		Name:          variant.String(),
		Proc:          host.Default(),
		Params:        energy.DefaultParams(),
		MemScale:      1,
		RT:            rt,
		Devices:       devs,
		HostDriveFrac: 0.95,
		gemvCache:     map[[2]int]PimCost{},
		eltCache:      map[eltKey]PimCost{},
	}, nil
}

// NewHostSystem builds the PROC-HBM baseline (memScale 1) or the
// hypothetical PROC-HBMx4 (memScale 4), Fig. 12.
func NewHostSystem(memScale float64) *System {
	name := "PROC-HBM"
	if memScale != 1 {
		name = fmt.Sprintf("PROC-HBMx%g", memScale)
	}
	return &System{
		Name:     name,
		Proc:     host.Default().WithMemory(memScale),
		Params:   energy.DefaultParams(),
		MemScale: memScale,
	}
}

// UseEngine installs a channel-execution engine on the system's runtime
// (see internal/engine). The Section VII experiments simulate one
// symmetric channel — channel parallelism gains them nothing — but
// functional multi-channel studies built on a System can opt in.
func (s *System) UseEngine(e engine.Engine) {
	if s.RT != nil {
		s.RT.UseEngine(e)
	}
}

// IsPIM reports whether the system has PIM execution units.
func (s *System) IsPIM() bool { return s.RT != nil }

// Channels returns the total pseudo-channel count of the memory system.
func (s *System) Channels() int {
	if s.RT != nil {
		return s.RT.NumChannels()
	}
	return DeviceCount * 16
}

// deviceStats snapshots summed device counters.
func (s *System) deviceStats() hbm.Stats {
	var st hbm.Stats
	for _, d := range s.Devices {
		st.Add(d.Stats())
	}
	return st
}

// scaleStats multiplies counters by n (extrapolating the one simulated
// channel to all symmetric channels).
func scaleStats(st hbm.Stats, n int64) hbm.Stats {
	return hbm.Stats{
		ACT: st.ACT * n, PRE: st.PRE * n, RD: st.RD * n, WR: st.WR * n, REF: st.REF * n,
		ABACT: st.ABACT * n, ABPRE: st.ABPRE * n, ABRD: st.ABRD * n, ABWR: st.ABWR * n,
		PIMInstr: st.PIMInstr * n, PIMArith: st.PIMArith * n, PIMMove: st.PIMMove * n,
		BankReads: st.BankReads * n, BankWrites: st.BankWrites * n,
		OffChipBytes: st.OffChipBytes * n, RegWrites: st.RegWrites * n,
		ModeSwitches: st.ModeSwitches * n,
	}
}

// subStats returns a - b componentwise.
func subStats(a, b hbm.Stats) hbm.Stats {
	return hbm.Stats{
		ACT: a.ACT - b.ACT, PRE: a.PRE - b.PRE, RD: a.RD - b.RD, WR: a.WR - b.WR, REF: a.REF - b.REF,
		ABACT: a.ABACT - b.ABACT, ABPRE: a.ABPRE - b.ABPRE, ABRD: a.ABRD - b.ABRD, ABWR: a.ABWR - b.ABWR,
		PIMInstr: a.PIMInstr - b.PIMInstr, PIMArith: a.PIMArith - b.PIMArith, PIMMove: a.PIMMove - b.PIMMove,
		BankReads: a.BankReads - b.BankReads, BankWrites: a.BankWrites - b.BankWrites,
		OffChipBytes: a.OffChipBytes - b.OffChipBytes, RegWrites: a.RegWrites - b.RegWrites,
		ModeSwitches: a.ModeSwitches - b.ModeSwitches,
	}
}

// measure wraps a timing-only blas kernel call with stat accounting.
func (s *System) measure(run func() (blas.KernelStats, error)) (PimCost, error) {
	if !s.IsPIM() {
		return PimCost{}, fmt.Errorf("sim: %s has no PIM units", s.Name)
	}
	before := s.deviceStats()
	ks, err := run()
	if err != nil {
		return PimCost{}, err
	}
	delta := subStats(s.deviceStats(), before)
	sims := int64(s.RT.EffectiveChannels())
	full := scaleStats(delta, int64(s.RT.NumChannels())/sims)
	return PimCost{
		Ns:       s.RT.Cfg.Timing.CyclesToNs(ks.Cycles),
		Cycles:   ks.Cycles,
		Stats:    full,
		Triggers: ks.Triggers * int64(s.RT.NumChannels()) / sims,
	}, nil
}

// PimGemvCost measures (and caches) one M x K GEMV kernel.
func (s *System) PimGemvCost(m, k int) (PimCost, error) {
	key := [2]int{m, k}
	if c, ok := s.gemvCache[key]; ok {
		return c, nil
	}
	c, err := s.measure(func() (blas.KernelStats, error) {
		_, ks, err := blas.PimGemv(s.RT, nil, m, k, nil)
		return ks, err
	})
	if err != nil {
		return PimCost{}, err
	}
	s.gemvCache[key] = c
	return c, nil
}

// PimEltCost measures (and caches) one elementwise kernel of n elements.
// op is one of "add", "mul", "relu", "bn".
func (s *System) PimEltCost(op string, n int) (PimCost, error) {
	key := eltKey{op, n}
	if c, ok := s.eltCache[key]; ok {
		return c, nil
	}
	c, err := s.measure(func() (blas.KernelStats, error) {
		var ks blas.KernelStats
		var err error
		switch op {
		case "add":
			_, ks, err = blas.PimAdd(s.RT, nil, nil, n)
		case "mul":
			_, ks, err = blas.PimMul(s.RT, nil, nil, n)
		case "relu":
			_, ks, err = blas.PimReLU(s.RT, nil, n)
		case "bn":
			_, ks, err = blas.PimBN(s.RT, nil, n, 0, 0)
		default:
			err = fmt.Errorf("sim: unknown eltwise op %q", op)
		}
		return ks, err
	})
	if err != nil {
		return PimCost{}, err
	}
	s.eltCache[key] = c
	return c, nil
}

// SetGuaranteeOrder toggles the in-order PIM controller study. Cached
// kernel costs are invalidated.
func (s *System) SetGuaranteeOrder(on bool) {
	if s.RT == nil {
		return
	}
	s.RT.SetGuaranteeOrder(on)
	s.gemvCache = map[[2]int]PimCost{}
	s.eltCache = map[eltKey]PimCost{}
}

package sim

import (
	"fmt"
	"math"
)

// The Table VI microbenchmarks.
type MicroSpec struct {
	Name string
	// GEMV: M x K. ADD/BN: N elements.
	M, K, N int
}

// IsGemv reports whether the spec is a matrix-vector benchmark.
func (m MicroSpec) IsGemv() bool { return m.M > 0 }

// TableVI returns the paper's microbenchmark set.
func TableVI() []MicroSpec {
	return []MicroSpec{
		{Name: "GEMV1", M: 1024, K: 4096},
		{Name: "GEMV2", M: 2048, K: 4096},
		{Name: "GEMV3", M: 4096, K: 8192},
		{Name: "GEMV4", M: 8192, K: 8192},
		{Name: "ADD1", N: 2 << 20},
		{Name: "ADD2", N: 4 << 20},
		{Name: "ADD3", N: 8 << 20},
		{Name: "ADD4", N: 16 << 20},
	}
}

// BNSpecs returns the Fig. 14 batch-normalization benchmarks (same input
// sizes as ADD).
func BNSpecs() []MicroSpec {
	return []MicroSpec{
		{Name: "BN1", N: 2 << 20},
		{Name: "BN2", N: 4 << 20},
		{Name: "BN3", N: 8 << 20},
		{Name: "BN4", N: 16 << 20},
	}
}

// MicroResult is one Fig. 10 cell.
type MicroResult struct {
	Spec    MicroSpec
	Batch   int
	HostNs  float64
	PimNs   float64
	Speedup float64 // host / PIM (PIM advantage > 1)

	HostLLCMiss float64

	// System energies in joules.
	HostProcJ, HostDevJ float64
	PimProcJ, PimDevJ   float64
}

// EnergyEffGain returns (host energy)/(PIM energy): how much less energy
// the PIM system spends on the same work.
func (r MicroResult) EnergyEffGain() float64 {
	return (r.HostProcJ + r.HostDevJ) / (r.PimProcJ + r.PimDevJ)
}

// RunMicro evaluates one microbenchmark at one batch size on a PIM system
// and a host system.
func RunMicro(pim, hostSys *System, spec MicroSpec, batch int) (MicroResult, error) {
	if !pim.IsPIM() {
		return MicroResult{}, fmt.Errorf("sim: %s is not a PIM system", pim.Name)
	}
	res := MicroResult{Spec: spec, Batch: batch}
	launch := pim.Proc.KernelLaunchNs

	if spec.IsGemv() {
		hc, err := hostSys.Proc.Gemv(spec.M, spec.K, batch)
		if err != nil {
			return res, err
		}
		res.HostNs = hc.NS
		res.HostLLCMiss = hc.LLCMissRate
		res.HostProcJ, res.HostDevJ = hostSys.hostKernelEnergyJ(hc.NS, hc.DRAMBytes, hc.ProcWatts)

		pc, err := pim.PimGemvCost(spec.M, spec.K)
		if err != nil {
			return res, err
		}
		// Batched inputs run as sequential GEMVs on PIM (Section VII-B).
		res.PimNs = float64(batch) * (pc.Ns + launch)
		st := scaleStats(pc.Stats, int64(batch))
		res.PimProcJ, res.PimDevJ = pim.pimKernelEnergyJ(res.PimNs, st)
	} else {
		op := "add"
		if len(spec.Name) >= 2 && spec.Name[:2] == "BN" {
			op = "bn"
		}
		streams := 3
		if op == "bn" {
			streams = 2
		}
		hc, err := hostSys.Proc.Eltwise(spec.N, batch, streams)
		if err != nil {
			return res, err
		}
		res.HostNs = hc.NS
		res.HostLLCMiss = hc.LLCMissRate
		res.HostProcJ, res.HostDevJ = hostSys.hostKernelEnergyJ(hc.NS, hc.DRAMBytes, hc.ProcWatts)

		pc, err := pim.PimEltCost(op, spec.N*batch)
		if err != nil {
			return res, err
		}
		res.PimNs = pc.Ns + launch
		res.PimProcJ, res.PimDevJ = pim.pimKernelEnergyJ(res.PimNs, pc.Stats)
	}
	res.Speedup = res.HostNs / res.PimNs
	return res, nil
}

// RunMicroSuite evaluates the full Table VI set at one batch size.
func RunMicroSuite(pim, hostSys *System, batch int) ([]MicroResult, error) {
	specs := TableVI()
	out := make([]MicroResult, 0, len(specs))
	for _, spec := range specs {
		r, err := RunMicro(pim, hostSys, spec, batch)
		if err != nil {
			return nil, fmt.Errorf("sim: %s batch %d: %w", spec.Name, batch, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// GeoMeanSpeedup returns the geometric mean of the results' speedups.
func GeoMeanSpeedup(rs []MicroResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rs {
		sum += math.Log(r.Speedup)
	}
	return math.Exp(sum / float64(len(rs)))
}

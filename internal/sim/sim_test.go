package sim

import (
	"testing"

	"pimsim/internal/hbm"
	"pimsim/internal/models"
)

// The sim tests assert the *shapes* of the paper's results: who wins, by
// roughly what factor, and where the crossovers fall. Bands are generous
// enough to survive small model changes but tight enough that a broken
// kernel or mis-calibrated constant fails loudly.

var (
	sharedPIM  *System
	sharedHost *System
)

func systems(t *testing.T) (*System, *System) {
	t.Helper()
	if sharedPIM == nil {
		p, err := NewPIMSystem(hbm.VariantBase)
		if err != nil {
			t.Fatal(err)
		}
		sharedPIM = p
		sharedHost = NewHostSystem(1)
	}
	return sharedPIM, sharedHost
}

func between(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.3f, want within [%.2f, %.2f]", name, got, lo, hi)
	}
}

func TestFig10MicrobenchBatch1(t *testing.T) {
	pim, hostSys := systems(t)
	rs, err := RunMicroSuite(pim, hostSys, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MicroResult{}
	for _, r := range rs {
		byName[r.Spec.Name] = r
	}
	// Headline: GEMV up to ~11.2x; the smallest GEMV around 1.4x.
	between(t, "GEMV4 speedup", byName["GEMV4"].Speedup, 9, 13)
	between(t, "GEMV1 speedup", byName["GEMV1"].Speedup, 1.1, 2.2)
	if byName["GEMV1"].Speedup >= byName["GEMV4"].Speedup {
		t.Error("GEMV speedup should grow with matrix size")
	}
	// ADD sits near 1.6x, fence-bound (Section VII-B).
	for _, n := range []string{"ADD1", "ADD2", "ADD3", "ADD4"} {
		between(t, n+" speedup", byName[n].Speedup, 1.3, 2.1)
	}
	// Batch-1 LLC miss rates are ~100% for every microbenchmark.
	for _, r := range rs {
		between(t, r.Spec.Name+" miss", r.HostLLCMiss, 0.95, 1.0)
	}
}

func TestFig10BatchCrossover(t *testing.T) {
	pim, hostSys := systems(t)
	r2, err := RunMicroSuite(pim, hostSys, 2)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunMicroSuite(pim, hostSys, 4)
	if err != nil {
		t.Fatal(err)
	}
	by := func(rs []MicroResult, n string) MicroResult {
		for _, r := range rs {
			if r.Spec.Name == n {
				return r
			}
		}
		t.Fatalf("missing %s", n)
		return MicroResult{}
	}
	// Paper: GEMV drops to ~3.2x at batch 2 and loses at batch 4.
	between(t, "GEMV4 B2 speedup", by(r2, "GEMV4").Speedup, 2.4, 4.2)
	for _, n := range []string{"GEMV1", "GEMV2", "GEMV3", "GEMV4"} {
		if s := by(r4, n).Speedup; s > 1.05 {
			t.Errorf("%s still wins at batch 4 (%.2f); paper shows HBM ahead", n, s)
		}
	}
	// ADD stays memory-bound at any batch (level-1 BLAS).
	for _, n := range []string{"ADD1", "ADD4"} {
		between(t, n+" B4 speedup", by(r4, n).Speedup, 1.3, 2.1)
	}
	// LLC miss rate falls to 70-80% at batch 4 (Fig. 10 bottom).
	between(t, "GEMV4 B4 miss", by(r4, "GEMV4").HostLLCMiss, 0.65, 0.85)
	between(t, "GEMV4 B2 miss", by(r2, "GEMV4").HostLLCMiss, 0.78, 0.90)
}

func TestFig10Applications(t *testing.T) {
	pim, hostSys := systems(t)
	type band struct{ lo, hi float64 }
	want := map[string]band{
		"DS2":       {3.0, 4.0}, // paper 3.5x
		"RNN-T":     {1.3, 3.0},
		"GNMT":      {1.2, 1.9}, // paper 1.5x
		"AlexNet":   {1.2, 2.1}, // paper 1.4x
		"ResNet-50": {0.99, 1.01},
	}
	for _, m := range models.All() {
		r, err := EvalApp(pim, hostSys, m, 1)
		if err != nil {
			t.Fatal(err)
		}
		b := want[m.Name]
		between(t, m.Name+" B1 speedup", r.Speedup, b.lo, b.hi)
	}
	// Batch 2: DS2 and RNN-T still gain; paper reports 1.6x and 1.9x.
	ds2b2, err := EvalApp(pim, hostSys, models.DS2(), 2)
	if err != nil {
		t.Fatal(err)
	}
	between(t, "DS2 B2 speedup", ds2b2.Speedup, 1.4, 2.3)
}

func TestGNMTEncoderGainsMoreThanWholeApp(t *testing.T) {
	pim, hostSys := systems(t)
	whole, err := EvalApp(pim, hostSys, models.GNMT(), 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EvalApp(pim, hostSys, models.GNMT().EncoderOnly(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Section VII-B: the streaming encoder (few kernel calls) gains far
	// more than the call-bound whole model.
	if enc.Speedup <= whole.Speedup*1.2 {
		t.Errorf("encoder %.2fx vs whole %.2fx: expected a clear encoder advantage",
			enc.Speedup, whole.Speedup)
	}
}

func TestFig11Anchors(t *testing.T) {
	r, err := RunFig11()
	if err != nil {
		t.Fatal(err)
	}
	between(t, "PIM/HBM power", r.PowerRatio, 1.02, 1.09) // paper 1.054
	if r.PowerRatioNoBufIO >= 1 {
		t.Errorf("without buffer-die toggle PIM should drop below HBM, got %.3f", r.PowerRatioNoBufIO)
	}
	between(t, "cell+IOSA power scaling", r.CellIOSARatio, 3.5, 4.5) // proportional to banks
	between(t, "energy/bit gain", r.EnergyPerBitRatio, 3.2, 4.2)     // paper ~3.5
	// The PIM stream's bus and PHY are quiet.
	if r.PIM.GlobalBus > 0.02*r.PIM.Total() || r.PIM.IOPHY > 0.02*r.PIM.Total() {
		t.Errorf("PIM stream toggles bus/PHY: %+v", r.PIM)
	}
}

func TestFig12EnergyEfficiency(t *testing.T) {
	pim, hostSys := systems(t)
	rows, err := RunFig12(pim, hostSys)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig12Row{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	between(t, "GEMV energy gain", byName["GEMV"].PimEnergyGain, 7, 10)          // paper 8.25
	between(t, "ADD energy gain", byName["ADD"].PimEnergyGain, 1.1, 1.8)         // paper 1.4
	between(t, "DS2 energy gain", byName["DS2"].PimEnergyGain, 2.2, 3.8)         // paper 3.2
	between(t, "GNMT energy gain", byName["GNMT"].PimEnergyGain, 1.0, 1.7)       // paper 1.38
	between(t, "AlexNet energy gain", byName["AlexNet"].PimEnergyGain, 1.1, 2.0) // paper 1.5

	// PROC-HBMx4 barely improves energy (power scales with bandwidth).
	for _, w := range []string{"GEMV", "ADD"} {
		between(t, w+" x4 energy gain", byName[w].X4EnergyGain, 0.6, 1.4)
	}
	// PIM-HBM beats even the 4x-bandwidth hypothetical on DS2 (paper 2.8x).
	between(t, "DS2 PIM over x4", byName["DS2"].PimOverX4, 1.8, 4.0)
}

func TestFenceRemovalStudy(t *testing.T) {
	for _, b := range []int{1, 2, 4} {
		r, err := RunFenceStudy(b)
		if err != nil {
			t.Fatal(err)
		}
		// Paper reads ~2x across batch sizes.
		between(t, "fence-removal geomean", r.Geomean, 1.5, 2.5)
		for name, g := range r.Gains {
			if g < 1 {
				t.Errorf("batch %d %s: removing fences slowed the kernel (%.2f)", b, name, g)
			}
		}
	}
}

func TestPowerTimeline(t *testing.T) {
	pim, hostSys := systems(t)
	r, err := EvalApp(pim, hostSys, models.DS2(), 1)
	if err != nil {
		t.Fatal(err)
	}
	pimSegs := PowerTimeline(r, pim, true)
	hostSegs := PowerTimeline(r, hostSys, false)
	if len(pimSegs) == 0 || len(hostSegs) == 0 {
		t.Fatal("empty timelines")
	}
	// Total duration matches the app times and power stays physical.
	if end := pimSegs[len(pimSegs)-1].EndNs; end < 0.99*r.PimNs || end > 1.01*r.PimNs {
		t.Errorf("PIM timeline ends at %.0f, app time %.0f", end, r.PimNs)
	}
	for _, s := range append(pimSegs, hostSegs...) {
		if s.Watts < 50 || s.Watts > 600 {
			t.Errorf("segment %s power %.0f W out of plausible range", s.Layer, s.Watts)
		}
		if s.EndNs <= s.StartNs {
			t.Errorf("segment %s has non-positive duration", s.Layer)
		}
	}
	// The PIM run must contain PIM-executed segments.
	onPIM := false
	for _, s := range pimSegs {
		onPIM = onPIM || s.OnPIM
	}
	if !onPIM {
		t.Error("no PIM segments in the DS2 timeline")
	}
}

func TestTableVISpecs(t *testing.T) {
	specs := TableVI()
	if len(specs) != 8 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].M != 1024 || specs[0].K != 4096 {
		t.Error("GEMV1 dims wrong")
	}
	if specs[3].M != 8192 || specs[3].K != 8192 {
		t.Error("GEMV4 dims wrong")
	}
	if specs[4].N != 2<<20 || specs[7].N != 16<<20 {
		t.Error("ADD sizes wrong")
	}
	for _, s := range BNSpecs() {
		if s.IsGemv() {
			t.Error("BN spec marked as GEMV")
		}
	}
}

func TestHostSystemRejectsPimCalls(t *testing.T) {
	h := NewHostSystem(1)
	if _, err := h.PimGemvCost(128, 128); err == nil {
		t.Error("host-only system accepted a PIM kernel")
	}
	if h.IsPIM() {
		t.Error("host system claims PIM")
	}
}

func TestGeoMean(t *testing.T) {
	rs := []MicroResult{{Speedup: 2}, {Speedup: 8}}
	if g := GeoMeanSpeedup(rs); g < 3.99 || g > 4.01 {
		t.Errorf("geomean = %v, want 4", g)
	}
	if g := GeoMeanSpeedup(nil); g != 0 {
		t.Errorf("empty geomean = %v", g)
	}
}

func TestCollaborativeGemvFindsASplit(t *testing.T) {
	pim, hostSys := systems(t)
	r, err := RunCollaborativeGemv(pim, hostSys, 8192, 8192)
	if err != nil {
		t.Fatal(err)
	}
	// Collaboration must beat both pure placements, with the optimum at a
	// small host share (the host is ~an order of magnitude slower per row).
	if r.Best.Ns >= r.PimOnly {
		t.Errorf("best split %.0f ns not better than PIM-only %.0f ns", r.Best.Ns, r.PimOnly)
	}
	if r.Best.Ns >= r.HostOnly {
		t.Errorf("best split not better than host-only")
	}
	if r.Best.HostFrac <= 0 || r.Best.HostFrac > 0.3 {
		t.Errorf("optimal host share %.2f, expected a small positive fraction", r.Best.HostFrac)
	}
	if r.BestGainPct < 2 || r.BestGainPct > 30 {
		t.Errorf("collaboration gain %.1f%%, expected a modest single/low-double digit win", r.BestGainPct)
	}
}

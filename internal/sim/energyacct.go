package sim

import (
	"pimsim/internal/energy"
	"pimsim/internal/hbm"
)

// Energy accounting shared by the microbenchmark and application
// experiments. PIM kernels carry exact device activity counters from the
// simulator; host kernels carry modeled DRAM byte counts that are
// converted into the same component energies.

// hostTrafficStats synthesizes device counters for host-generated DRAM
// traffic: one column command per 32-byte block, with a row activation
// amortized over a mixed-locality run of blocks.
func hostTrafficStats(bytes float64, cfg hbm.Config) hbm.Stats {
	blocks := int64(bytes / float64(cfg.AccessBytes))
	const blocksPerACT = 16 // typical row-buffer locality for library kernels
	return hbm.Stats{
		RD:           blocks, // reads and writes cost the same components here
		BankReads:    blocks,
		OffChipBytes: int64(bytes),
		ACT:          blocks / blocksPerACT,
		PRE:          blocks / blocksPerACT,
	}
}

// deviceDynamicJ converts activity counters into dynamic device energy in
// joules (no background term).
func (s *System) deviceDynamicJ(st hbm.Stats) float64 {
	cfg := s.memCfg()
	b := energy.Compute(st, 0, cfg, s.Params, 0)
	return b.Total() * 1e-12
}

// deviceBackgroundJ is the standby energy of the whole memory system over
// a wall-clock interval.
func (s *System) deviceBackgroundJ(ns float64) float64 {
	channels := float64(s.Channels()) * s.MemScale
	mw := s.Params.BackgroundMWPerPCH * channels
	// Refresh upkeep folds into the background rate: one REF per tREFI.
	cfg := s.memCfg()
	refiNs := cfg.Timing.CyclesToNs(int64(cfg.Timing.REFI))
	refMW := s.Params.RefreshPJ / refiNs // pJ per ns = mW
	return (mw + refMW*channels) * ns * 1e-12
}

// memCfg returns the device configuration (host-only systems use the
// plain HBM2 geometry for accounting).
func (s *System) memCfg() hbm.Config {
	if s.RT != nil {
		return s.RT.Cfg
	}
	return hbm.HBM2Config(MemClockMHz)
}

// hostKernelEnergyJ is the total system energy of a host-executed kernel.
// procWatts is the package power while the kernel runs (Cost.ProcWatts);
// zero selects the memory-bound rate.
func (s *System) hostKernelEnergyJ(ns, dramBytes, procWatts float64) (procJ, devJ float64) {
	if procWatts == 0 {
		procWatts = s.Proc.MemBoundWatts
	}
	// Memory-bound kernels: the load/store machinery, interconnect and
	// PHY links draw power in proportion to the delivered bandwidth, so a
	// system with MemScale-times the stacks runs them MemScale-times
	// faster at MemScale-times the power — "power consumption and
	// performance increase proportionally with higher bandwidth for
	// memory-bound applications" (Section VII-C on PROC-HBMx4).
	if procWatts <= s.Proc.MemBoundWatts {
		procWatts *= s.MemScale
	}
	procJ = procWatts * ns * 1e-9
	devJ = s.deviceDynamicJ(hostTrafficStats(dramBytes, s.memCfg())) + s.deviceBackgroundJ(ns)
	return procJ, devJ
}

// pimKernelEnergyJ is the total system energy of a PIM-executed kernel:
// the host only drives command streams (reduced package power), the
// device runs its banks and FPUs.
func (s *System) pimKernelEnergyJ(ns float64, st hbm.Stats) (procJ, devJ float64) {
	procJ = s.Proc.BusyWatts * s.HostDriveFrac * ns * 1e-9
	devJ = s.deviceDynamicJ(st) + s.deviceBackgroundJ(ns)
	return procJ, devJ
}

package sim

import (
	"fmt"

	"pimsim/internal/blas"
	"pimsim/internal/hbm"
	"pimsim/internal/memctrl"
	"pimsim/internal/runtime"
)

// Ablations of the design choices DESIGN.md calls out. Each returns a
// labeled series a harness can print; the sim tests assert the
// directional effects.

// AblationPoint is one configuration of one sweep.
type AblationPoint struct {
	Label  string
	Value  float64
	Metric string
}

// AblateFenceCost sweeps the host fence cost and reports the GEMV4 kernel
// time — how sensitive the flagship kernel is to the ordering overhead
// that AAM exists to bound (Section IV-C / VII-B).
func AblateFenceCost() ([]AblationPoint, error) {
	out := []AblationPoint{}
	for _, cost := range []int{0, 10, 20, 35, 60, 100} {
		rt, err := freshPIMRuntime()
		if err != nil {
			return nil, err
		}
		for _, ch := range rt.Chans {
			ch.FenceCycles = cost
		}
		_, ks, err := blas.PimGemv(rt, nil, 8192, 8192, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Label:  fmt.Sprintf("fence=%d cycles", cost),
			Value:  rt.Cfg.Timing.CyclesToNs(ks.Cycles) / 1000,
			Metric: "GEMV4 us",
		})
	}
	return out, nil
}

// AblateRefreshRate reruns GEMV4 with the refresh interval shortened 4x
// (the high-temperature operating point the underlying HBM design adapts
// to), showing how much of a PIM burst refresh steals.
func AblateRefreshRate() ([]AblationPoint, error) {
	out := []AblationPoint{}
	for _, div := range []int{1, 2, 4, 8} {
		cfg := hbm.PIMHBMConfig(MemClockMHz)
		cfg.Functional = false
		cfg.Timing.REFI /= div
		devs := make([]*hbm.Device, DeviceCount)
		for i := range devs {
			d, err := hbm.NewDevice(cfg)
			if err != nil {
				return nil, err
			}
			devs[i] = d
		}
		rt2, err := runtime.New(devs)
		if err != nil {
			return nil, err
		}
		rt2.SimChannels = 1
		_, ks, err := blas.PimGemv(rt2, nil, 8192, 8192, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Label:  fmt.Sprintf("tREFI/%d", div),
			Value:  cfg.Timing.CyclesToNs(ks.Cycles) / 1000,
			Metric: "GEMV4 us",
		})
	}
	return out, nil
}

// AblateAddressMapping compares the shipped mapping (bank-group bits
// below the column bits, sustaining tCCD_S on streams) against the naive
// column-under-bank-group order, measured as sequential-stream bandwidth
// on one channel.
func AblateAddressMapping() ([]AblationPoint, error) {
	out := []AblationPoint{}
	for _, colUnder := range []bool{false, true} {
		gbps, err := streamBandwidth(colUnder, 2, false)
		if err != nil {
			return nil, err
		}
		label := "bg-under-col (shipped)"
		if colUnder {
			label = "col-under-bg"
		}
		out = append(out, AblationPoint{Label: label, Value: gbps, Metric: "seq GB/s"})
	}
	return out, nil
}

// AblateActivateAhead compares the scheduler with and without
// activate-ahead on a random transaction stream.
func AblateActivateAhead() ([]AblationPoint, error) {
	out := []AblationPoint{}
	for _, depth := range []int{0, 1, 2, 4} {
		gbps, err := streamBandwidth(false, depth, true)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Label:  fmt.Sprintf("ahead=%d", depth),
			Value:  gbps,
			Metric: "rand GB/s",
		})
	}
	return out, nil
}

// freshPIMRuntime builds a timing-only default system runtime.
func freshPIMRuntime() (*runtime.Runtime, error) {
	cfg := hbm.PIMHBMConfig(MemClockMHz)
	cfg.Functional = false
	devs := make([]*hbm.Device, DeviceCount)
	for i := range devs {
		d, err := hbm.NewDevice(cfg)
		if err != nil {
			return nil, err
		}
		devs[i] = d
	}
	rt, err := runtime.New(devs)
	if err != nil {
		return nil, err
	}
	rt.SimChannels = 1
	return rt, nil
}

// streamBandwidth measures one channel's delivered bandwidth on a 2048-
// block stream, sequential or pseudo-random.
func streamBandwidth(colUnderBG bool, aheadDepth int, random bool) (float64, error) {
	cfg := hbm.HBM2Config(MemClockMHz)
	cfg.Functional = false
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		return 0, err
	}
	ch := memctrl.NewChannel(dev.PCH(0), cfg)
	s := memctrl.NewScheduler(ch, cfg)
	s.AheadDepth = aheadDepth
	s.AutoRelease = true // results discarded; recycle transactions
	m := memctrl.NewAddrMap(16, cfg.BankGroups, cfg.BanksPerGroup,
		cfg.Rows, cfg.ColumnsPerRow(), cfg.AccessBytes)
	m.ColUnderBG = colUnderBG

	const blocks = 2048
	var state uint64
	next := func() uint64 { // splitmix64: avalanched low bits
		state += 0x9E3779B97F4A7C15
		z := state
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		return z ^ z>>31
	}
	for i := 0; i < blocks; i++ {
		var addr uint64
		if random {
			addr = (next() % m.Capacity()) &^ 31
		} else {
			addr = uint64(i) * 32 * 16 // sequential within channel 0
		}
		loc, err := m.Decode(addr)
		if err != nil {
			return 0, err
		}
		loc.Channel = 0
		s.Enqueue(false, loc, nil)
	}
	end, err := s.Drain()
	if err != nil {
		return 0, err
	}
	return float64(blocks*32) / cfg.Timing.CyclesToNs(end), nil
}

// RunAblations collects every sweep.
func RunAblations() (map[string][]AblationPoint, error) {
	out := map[string][]AblationPoint{}
	for name, fn := range map[string]func() ([]AblationPoint, error){
		"fence-cost":      AblateFenceCost,
		"refresh-rate":    AblateRefreshRate,
		"address-mapping": AblateAddressMapping,
		"activate-ahead":  AblateActivateAhead,
		"write-buffer":    AblateWriteBuffer,
	} {
		pts, err := fn()
		if err != nil {
			return nil, fmt.Errorf("sim: ablation %s: %w", name, err)
		}
		out[name] = pts
	}
	return out, nil
}

// ClockCorner is one memory-frequency operating point (Tables IV/V list
// 1.0 and 1.2 GHz corners).
type ClockCorner struct {
	MHz         int
	OnChipTBps  float64
	OffChipGBps float64
	GEMV4Us     float64
	UnitGFLOPS  float64 // per PIM execution unit at tCK/4
}

// RunClockCorners evaluates the two specified frequency corners.
func RunClockCorners() ([]ClockCorner, error) {
	out := []ClockCorner{}
	for _, mhz := range []int{1000, 1200} {
		cfg := hbm.PIMHBMConfig(mhz)
		cfg.Functional = false
		devs := make([]*hbm.Device, DeviceCount)
		for i := range devs {
			d, err := hbm.NewDevice(cfg)
			if err != nil {
				return nil, err
			}
			devs[i] = d
		}
		rt, err := runtime.New(devs)
		if err != nil {
			return nil, err
		}
		rt.SimChannels = 1
		_, ks, err := blas.PimGemv(rt, nil, 8192, 8192, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, ClockCorner{
			MHz:         mhz,
			OnChipTBps:  cfg.OnChipGBps() * DeviceCount / 1000,
			OffChipGBps: cfg.OffChipGBps() * DeviceCount,
			GEMV4Us:     cfg.Timing.CyclesToNs(ks.Cycles) / 1000,
			UnitGFLOPS:  float64(mhz) / 4 / 1000 * 16 * 2,
		})
	}
	return out, nil
}

// AblateWriteBuffer measures the host controller's posted-write benefit:
// average read latency on a bursty mixed stream, interleaved vs buffered.
func AblateWriteBuffer() ([]AblationPoint, error) {
	run := func(buffered bool) (float64, error) {
		cfg := hbm.HBM2Config(MemClockMHz)
		cfg.Functional = false
		dev, err := hbm.NewDevice(cfg)
		if err != nil {
			return 0, err
		}
		ch := memctrl.NewChannel(dev.PCH(0), cfg)
		s := memctrl.NewScheduler(ch, cfg)
		if buffered {
			if err := s.EnableWriteBuffer(4, 16); err != nil {
				return 0, err
			}
		}
		var state uint64
		next := func() uint64 {
			state += 0x9E3779B97F4A7C15
			z := state
			z ^= z >> 30
			z *= 0xBF58476D1CE4E5B9
			z ^= z >> 27
			z *= 0x94D049BB133111EB
			return z ^ z>>31
		}
		var total float64
		var reads int
		type pending struct {
			tx  *memctrl.Tx
			enq int64
		}
		for burst := 0; burst < 64; burst++ {
			var ps []pending
			for i := 0; i < 10; i++ {
				r := next()
				loc := memctrl.Loc{
					BG:   int(r % 4),
					Bank: int(r >> 2 % 4),
					Row:  uint32(r >> 4 % 32),
					Col:  uint32(r >> 9 % 64),
				}
				if r>>15%10 < 4 {
					s.Enqueue(true, loc, nil)
				} else {
					ps = append(ps, pending{s.Enqueue(false, loc, nil), ch.Now()})
				}
			}
			for s.Pending() > 0 {
				if _, err := s.Drain(); err != nil {
					return 0, err
				}
			}
			if err := s.Idle(16); err != nil {
				return 0, err
			}
			for _, p := range ps {
				total += float64(p.tx.Done() - p.enq)
				reads++
			}
		}
		return total / float64(reads), nil
	}
	base, err := run(false)
	if err != nil {
		return nil, err
	}
	buf, err := run(true)
	if err != nil {
		return nil, err
	}
	return []AblationPoint{
		{Label: "interleaved writes", Value: base, Metric: "read latency (cycles)"},
		{Label: "posted writes", Value: buf, Metric: "read latency (cycles)"},
	}, nil
}

package sim

import "fmt"

// Collaborative GEMV (Section VIII future work): with the
// HBM3-generation's fine-grained SB / AB-PIM interleaving, the host and
// the PIM units split one matrix-vector product. The split runs along the
// inner (K) dimension — PIM kernel time is set by the number of input
// passes, so handing the host a slice of the input columns shortens the
// PIM burst while the host streams its share of the weights through the
// cache hierarchy; a cheap elementwise add combines the partial sums.
// This experiment finds the optimal split on the modeled system.

// CollabPoint is one host-share configuration.
type CollabPoint struct {
	HostFrac float64
	Ns       float64
}

// CollabResult sweeps the host share of a GEMV.
type CollabResult struct {
	M, K        int
	Points      []CollabPoint
	Best        CollabPoint
	PimOnly     float64 // ns with the whole product on PIM
	HostOnly    float64 // ns with the whole product on the host
	BestGainPct float64 // improvement of the best split over PIM-only
}

// RunCollaborativeGemv sweeps the host fraction of an M x K GEMV at batch
// 1. Both sides start together; the kernel finishes when the slower side
// does, so the optimum balances their throughputs.
func RunCollaborativeGemv(pim, hostSys *System, m, k int) (CollabResult, error) {
	if !pim.IsPIM() {
		return CollabResult{}, fmt.Errorf("sim: collaborative GEMV needs a PIM system")
	}
	res := CollabResult{M: m, K: k}
	launch := pim.Proc.KernelLaunchNs

	pimTime := func(cols int) (float64, error) {
		if cols <= 0 {
			return 0, nil
		}
		c, err := pim.PimGemvCost(m, cols)
		if err != nil {
			return 0, err
		}
		return c.Ns + launch, nil
	}
	hostTime := func(cols int) (float64, error) {
		if cols <= 0 {
			return 0, nil
		}
		c, err := hostSys.Proc.Gemv(m, cols, 1)
		if err != nil {
			return 0, err
		}
		return c.NS, nil
	}
	// Combining the two partial sums is one streamed M-element add.
	combine, err := hostSys.Proc.Eltwise(m, 1, 3)
	if err != nil {
		return res, err
	}

	var best CollabPoint
	for _, fracPct := range []int{0, 2, 4, 6, 8, 10, 12, 16, 20, 30, 50, 100} {
		hostCols := k * fracPct / 100
		// Keep PIM's share pass-aligned; the host mops up the remainder.
		hostCols = (hostCols / 8) * 8
		ht, err := hostTime(hostCols)
		if err != nil {
			return res, err
		}
		pt, err := pimTime(k - hostCols)
		if err != nil {
			return res, err
		}
		ns := ht
		if pt > ns {
			ns = pt
		}
		if hostCols > 0 && hostCols < k {
			ns += combine.NS
		}
		p := CollabPoint{HostFrac: float64(hostCols) / float64(k), Ns: ns}
		res.Points = append(res.Points, p)
		if best.Ns == 0 || p.Ns < best.Ns {
			best = p
		}
		switch fracPct {
		case 0:
			res.PimOnly = ns
		case 100:
			res.HostOnly = ns
		}
	}
	res.Best = best
	res.BestGainPct = 100 * (res.PimOnly - best.Ns) / res.PimOnly
	return res, nil
}

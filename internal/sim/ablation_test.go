package sim

import (
	"testing"

	"pimsim/internal/host"
)

func TestAblateFenceCostMonotone(t *testing.T) {
	pts, err := AblateFenceCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value {
			t.Errorf("GEMV time not monotone in fence cost: %v then %v", pts[i-1], pts[i])
		}
	}
	// The default fence (35 cycles) costs a substantial fraction of the
	// kernel: free fences must be at least 30% faster.
	if ratio := pts[3].Value / pts[0].Value; ratio < 1.3 {
		t.Errorf("fence=35 only %.2fx of fence=0; expected a visible ordering tax", ratio)
	}
}

func TestAblateRefreshRateMonotone(t *testing.T) {
	pts, err := AblateRefreshRate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value {
			t.Errorf("GEMV time not monotone in refresh rate: %v then %v", pts[i-1], pts[i])
		}
	}
	// Nominal refresh should cost only a few percent over tREFI/1... the
	// first point is nominal; the 8x point visibly more.
	if pts[len(pts)-1].Value < 1.5*pts[0].Value {
		t.Errorf("8x refresh rate added only %v -> %v", pts[0].Value, pts[len(pts)-1].Value)
	}
}

func TestAblateAddressMapping(t *testing.T) {
	pts, err := AblateAddressMapping()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	shipped, naive := pts[0].Value, pts[1].Value
	// Bank-group bits under the column bits keep streams at tCCD_S; the
	// naive order halves the cadence (tCCD_L = 2 x tCCD_S).
	if shipped < 1.5*naive {
		t.Errorf("shipped mapping %.2f GB/s vs naive %.2f: expected ~2x", shipped, naive)
	}
}

func TestAblateActivateAhead(t *testing.T) {
	pts, err := AblateActivateAhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("%d points", len(pts))
	}
	off, on := pts[0].Value, pts[1].Value
	if on < 1.2*off {
		t.Errorf("activate-ahead buys only %.2f -> %.2f GB/s on random traffic", off, on)
	}
}

func TestRunAblationsCollects(t *testing.T) {
	all, err := RunAblations()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fence-cost", "refresh-rate", "address-mapping", "activate-ahead", "write-buffer"} {
		if len(all[name]) == 0 {
			t.Errorf("missing ablation %q", name)
		}
	}
}

func TestClockCorners(t *testing.T) {
	cs, err := RunClockCorners()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("%d corners", len(cs))
	}
	lo, hi := cs[0], cs[1]
	// Table IV/V anchors at the two corners.
	between(t, "on-chip TB/s @1.0GHz", lo.OnChipTBps, 4.0, 4.2) // 4 x 1.024
	between(t, "on-chip TB/s @1.2GHz", hi.OnChipTBps, 4.8, 5.0) // 4.915
	between(t, "unit GFLOPS @1.2GHz", hi.UnitGFLOPS, 9.5, 9.7)  // 9.6
	between(t, "unit GFLOPS @1.0GHz", lo.UnitGFLOPS, 7.9, 8.1)  // 8.0
	// Kernels speed up with the clock, a bit less than linearly (fixed
	// fence nanoseconds become more cycles).
	ratio := lo.GEMV4Us / hi.GEMV4Us
	if ratio < 1.05 || ratio > 1.25 {
		t.Errorf("1.2GHz sped GEMV4 by %.2fx over 1.0GHz, expected ~1.1-1.2x", ratio)
	}
}

// TestHostModelGroundedInController cross-validates the host envelope
// model against the cycle-level machinery: the streaming efficiency the
// host model assumes must not exceed what the simulated FR-FCFS
// controller actually sustains on a sequential stream.
func TestHostModelGroundedInController(t *testing.T) {
	gbps, err := streamBandwidth(false, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	// Per-channel peak at 1.2 GHz: 32 B per tCCD_S (2 cycles) = 19.2 GB/s.
	achieved := gbps / 19.2
	assumed := host.StreamEfficiency()
	if assumed > achieved+0.05 {
		t.Errorf("host model assumes %.2f streaming efficiency but the controller delivers only %.2f",
			assumed, achieved)
	}
	if achieved < 0.7 {
		t.Errorf("controller stream efficiency %.2f is implausibly low", achieved)
	}
}

func TestAblateWriteBuffer(t *testing.T) {
	pts, err := AblateWriteBuffer()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[1].Value >= pts[0].Value {
		t.Errorf("posted writes (%.1f) did not beat interleaved (%.1f)", pts[1].Value, pts[0].Value)
	}
}

package sim

import (
	"fmt"
	"math"

	"pimsim/internal/hbm"
	"pimsim/internal/models"
)

// Fig. 12: relative power and energy of PIM-HBM, PROC-HBM and the
// hypothetical PROC-HBMx4 across GEMV, ADD and three applications.

// Fig12Row is one workload's three-system comparison, normalized to
// PROC-HBM.
type Fig12Row struct {
	Workload string

	// Execution time in ns per system.
	PimNs, HostNs, X4Ns float64

	// Average system power in watts.
	PimW, HostW, X4W float64

	// Energy-efficiency gains over PROC-HBM (>1 = better than baseline).
	PimEnergyGain float64 // paper: GEMV 8.25x, ADD 1.4x, DS2 3.2x, GNMT 1.38x, AlexNet 1.5x
	X4EnergyGain  float64 // ~1 for memory-bound kernels

	// PIM-HBM gain over PROC-HBMx4 (paper: DS2 2.8x, GNMT 1.1x, AlexNet 1.3x).
	PimOverX4 float64
}

// RunFig12 evaluates the three systems. It builds the PROC-HBMx4 system
// internally.
func RunFig12(pim, host1 *System) ([]Fig12Row, error) {
	if !pim.IsPIM() {
		return nil, fmt.Errorf("sim: fig12 needs a PIM system")
	}
	host4 := NewHostSystem(4)

	rows := make([]Fig12Row, 0, 5)

	// Microbenchmarks: the largest GEMV and a mid ADD at batch 1.
	for _, spec := range []MicroSpec{
		{Name: "GEMV", M: 8192, K: 8192},
		{Name: "ADD", N: 4 << 20},
	} {
		r1, err := RunMicro(pim, host1, spec, 1)
		if err != nil {
			return nil, err
		}
		r4, err := RunMicro(pim, host4, spec, 1)
		if err != nil {
			return nil, err
		}
		row := Fig12Row{
			Workload: spec.Name,
			PimNs:    r1.PimNs, HostNs: r1.HostNs, X4Ns: r4.HostNs,
		}
		pimJ := r1.PimProcJ + r1.PimDevJ
		hostJ := r1.HostProcJ + r1.HostDevJ
		x4J := r4.HostProcJ + r4.HostDevJ
		row.PimW = pimJ / (r1.PimNs * 1e-9)
		row.HostW = hostJ / (r1.HostNs * 1e-9)
		row.X4W = x4J / (r4.HostNs * 1e-9)
		row.PimEnergyGain = hostJ / pimJ
		row.X4EnergyGain = hostJ / x4J
		row.PimOverX4 = x4J / pimJ
		rows = append(rows, row)
	}

	for _, m := range []models.Model{models.DS2(), models.GNMT(), models.AlexNet()} {
		a1, err := EvalApp(pim, host1, m, 1)
		if err != nil {
			return nil, err
		}
		a4, err := EvalApp(pim, host4, m, 1)
		if err != nil {
			return nil, err
		}
		row := Fig12Row{
			Workload: m.Name,
			PimNs:    a1.PimNs, HostNs: a1.HostNs, X4Ns: a4.HostNs,
		}
		pimJ := a1.PimProcJ + a1.PimDevJ
		hostJ := a1.HostProcJ + a1.HostDevJ
		x4J := a4.HostProcJ + a4.HostDevJ
		row.PimW = pimJ / (a1.PimNs * 1e-9)
		row.HostW = hostJ / (a1.HostNs * 1e-9)
		row.X4W = x4J / (a4.HostNs * 1e-9)
		row.PimEnergyGain = hostJ / pimJ
		row.X4EnergyGain = hostJ / x4J
		row.PimOverX4 = x4J / pimJ
		rows = append(rows, row)
	}
	return rows, nil
}

// FenceStudyResult is the Section VII-B in-order controller analysis.
type FenceStudyResult struct {
	Batch int
	// Per-microbenchmark gain of removing fences (no-fence PIM time over
	// fenced PIM time, as a speedup).
	Gains   map[string]float64
	Geomean float64 // paper reads ~2.2x/1.9x/2.0x at batch 1/2/4
}

// RunFenceStudy compares fenced and order-guaranteed PIM kernels.
func RunFenceStudy(batch int) (FenceStudyResult, error) {
	res := FenceStudyResult{Batch: batch, Gains: map[string]float64{}}

	fenced, err := NewPIMSystem(hbm.VariantBase)
	if err != nil {
		return res, err
	}
	free, err := NewPIMSystem(hbm.VariantBase)
	if err != nil {
		return res, err
	}
	free.SetGuaranteeOrder(true)

	prod := 1.0
	n := 0
	for _, spec := range TableVI() {
		var fNs, oNs float64
		if spec.IsGemv() {
			fc, err := fenced.PimGemvCost(spec.M, spec.K)
			if err != nil {
				return res, err
			}
			oc, err := free.PimGemvCost(spec.M, spec.K)
			if err != nil {
				return res, err
			}
			fNs, oNs = float64(batch)*fc.Ns, float64(batch)*oc.Ns
		} else {
			fc, err := fenced.PimEltCost("add", spec.N*batch)
			if err != nil {
				return res, err
			}
			oc, err := free.PimEltCost("add", spec.N*batch)
			if err != nil {
				return res, err
			}
			fNs, oNs = fc.Ns, oc.Ns
		}
		g := fNs / oNs
		res.Gains[spec.Name] = g
		prod *= g
		n++
	}
	res.Geomean = math.Pow(prod, 1/float64(n))
	return res, nil
}

package sim

import (
	"fmt"

	"pimsim/internal/hbm"
	"pimsim/internal/models"
)

// Application evaluation (Fig. 10 right half, Figs. 12 and 13). Each layer
// is costed on the host system and, where the runtime preprocessor deems
// it eligible (the paper offloads the LSTM and large fully connected
// layers), on the PIM system; end-to-end time is the layer sum.

// Host-side gate math costs per LSTM step: batched (streaming encoder)
// versus dispatched per step (decoder).
const (
	gateNsStreaming = 500
	gateNsPerStep   = 2000
)

// LayerTime is one layer's cost on both systems.
type LayerTime struct {
	Name          string
	Kind          models.LayerKind
	OnPIM         bool
	HostNs        float64
	PimNs         float64
	HostDRAMBytes float64 // host execution traffic (both systems when !OnPIM)
	HostProcWatts float64 // package power while the host version runs
	PimStats      hbm.Stats
}

// AppResult is one application at one batch size.
type AppResult struct {
	Model   string
	Batch   int
	Layers  []LayerTime
	HostNs  float64
	PimNs   float64
	Speedup float64

	HostProcJ, HostDevJ float64
	PimProcJ, PimDevJ   float64
}

// EnergyEffGain returns host-system energy over PIM-system energy.
func (r AppResult) EnergyEffGain() float64 {
	return (r.HostProcJ + r.HostDevJ) / (r.PimProcJ + r.PimDevJ)
}

// offloadFC reports whether the preprocessor sends an FC layer to PIM:
// only when its weights cannot live in the LLC (Section V-A; the paper
// offloads AlexNet's large FC layers but not tiny output projections).
// Per-step decoder FCs (Steps > 1, e.g. GNMT's vocabulary projection)
// stay on the host: the paper offloads only the single-shot classifier
// FCs (AlexNet) alongside the LSTMs.
func offloadFC(l models.Layer, s *System) bool {
	return l.Steps <= 1 && l.WeightBytes() > float64(s.Proc.LLCBytes)
}

// layerCost computes one layer on both systems.
func layerCost(pim, hostSys *System, l models.Layer, batch int) (LayerTime, error) {
	lt := LayerTime{Name: l.Name, Kind: l.Kind}
	launch := hostSys.Proc.KernelLaunchNs
	calls := l.Steps
	if calls <= 0 {
		calls = 1
	}

	hostOnly := func(ns, bytes, watts float64) {
		lt.HostNs, lt.PimNs = ns, ns
		lt.HostDRAMBytes = bytes
		lt.HostProcWatts = watts
	}

	switch l.Kind {
	case models.Conv:
		c, err := hostSys.Proc.Conv(2*l.MACs, l.Bytes, batch)
		if err != nil {
			return lt, err
		}
		hostOnly(c.NS, c.DRAMBytes, c.ProcWatts)

	case models.FC, models.Attention:
		c, err := hostSys.Proc.Gemv(l.M, l.K, batch)
		if err != nil {
			return lt, err
		}
		lt.HostNs = float64(calls) * c.NS
		lt.HostDRAMBytes = float64(calls) * c.DRAMBytes
		lt.HostProcWatts = c.ProcWatts
		if l.Kind == models.FC && offloadFC(l, pim) {
			pc, err := pim.PimGemvCost(l.M, l.K)
			if err != nil {
				return lt, err
			}
			lt.OnPIM = true
			lt.PimNs = float64(calls*batch) * (pc.Ns + launch)
			lt.PimStats = scaleStats(pc.Stats, int64(calls*batch))
		} else {
			lt.PimNs = lt.HostNs
		}

	case models.LSTM:
		dirs := l.Directions()
		// Host: one fused 4H x (X+H) GEMV per step and direction; the
		// streaming encoder amortizes kernel launches over the sequence.
		hc, err := hostSys.Proc.LSTMGemv(4*l.H, l.X+l.H, batch)
		if err != nil {
			return lt, err
		}
		gemvNoLaunch := hc.NS - launch
		gate := float64(gateNsPerStep)
		launches := float64(l.Steps)
		if l.Streaming {
			gate = gateNsStreaming
			launches = 1
		}
		lt.HostNs = float64(dirs) * (float64(l.Steps)*(gemvNoLaunch+gate) + launches*launch)
		lt.HostDRAMBytes = float64(dirs*l.Steps) * hc.DRAMBytes
		lt.HostProcWatts = hc.ProcWatts

		// PIM: two GEMV kernels per step (Wx and Wh), sequential per
		// batch sample; gate math stays on the host.
		gx, err := pim.PimGemvCost(4*l.H, l.X)
		if err != nil {
			return lt, err
		}
		gh, err := pim.PimGemvCost(4*l.H, l.H)
		if err != nil {
			return lt, err
		}
		perStep := gx.Ns + gh.Ns
		pimLaunches := 2 * float64(l.Steps)
		if l.Streaming {
			pimLaunches = 2
		}
		lt.OnPIM = true
		lt.PimNs = float64(dirs*batch) * (float64(l.Steps)*(perStep+gate) + pimLaunches*launch)
		perDir := int64(l.Steps)
		st := scaleStats(gx.Stats, perDir)
		st.Add(scaleStats(gh.Stats, perDir))
		lt.PimStats = scaleStats(st, int64(dirs*batch))

	case models.BN, models.ReLU, models.Residual, models.Softmax:
		streams := 2
		if l.Kind == models.Residual {
			streams = 3
		}
		c, err := hostSys.Proc.Eltwise(l.N, batch, streams)
		if err != nil {
			return lt, err
		}
		hostOnly(c.NS, c.DRAMBytes, c.ProcWatts)

	default:
		return lt, fmt.Errorf("sim: unhandled layer kind %s", l.Kind)
	}
	return lt, nil
}

// EvalApp runs one model at one batch size on both systems.
func EvalApp(pim, hostSys *System, m models.Model, batch int) (AppResult, error) {
	if err := m.Validate(); err != nil {
		return AppResult{}, err
	}
	res := AppResult{Model: m.Name, Batch: batch}
	for _, l := range m.Layers {
		lt, err := layerCost(pim, hostSys, l, batch)
		if err != nil {
			return res, fmt.Errorf("sim: %s/%s: %w", m.Name, l.Name, err)
		}
		res.Layers = append(res.Layers, lt)
		res.HostNs += lt.HostNs
		res.PimNs += lt.PimNs

		// Energy: host layers cost the same on both systems; PIM layers
		// swap to drive power + counted device activity.
		hp, hd := hostSys.hostKernelEnergyJ(lt.HostNs, lt.HostDRAMBytes, lt.HostProcWatts)
		res.HostProcJ += hp
		res.HostDevJ += hd
		if lt.OnPIM {
			pp, pd := pim.pimKernelEnergyJ(lt.PimNs, lt.PimStats)
			res.PimProcJ += pp
			res.PimDevJ += pd
		} else {
			pp, pd := pim.hostKernelEnergyJ(lt.PimNs, lt.HostDRAMBytes, lt.HostProcWatts)
			res.PimProcJ += pp
			res.PimDevJ += pd
		}
	}
	res.Speedup = res.HostNs / res.PimNs
	return res, nil
}

// PowerSegment is one step of the Fig. 13 power-over-time trace.
type PowerSegment struct {
	Layer          string
	OnPIM          bool
	StartNs, EndNs float64
	Watts          float64
}

// PowerTimeline derives the average-system-power trace of one system's
// execution of an app result. pimSide selects the PIM system's trace.
func PowerTimeline(res AppResult, s *System, pimSide bool) []PowerSegment {
	segs := make([]PowerSegment, 0, len(res.Layers))
	t := 0.0
	for _, lt := range res.Layers {
		ns := lt.HostNs
		var procJ, devJ float64
		if pimSide {
			ns = lt.PimNs
			if lt.OnPIM {
				procJ, devJ = s.pimKernelEnergyJ(ns, lt.PimStats)
			} else {
				procJ, devJ = s.hostKernelEnergyJ(ns, lt.HostDRAMBytes, lt.HostProcWatts)
			}
		} else {
			procJ, devJ = s.hostKernelEnergyJ(ns, lt.HostDRAMBytes, lt.HostProcWatts)
		}
		if ns <= 0 {
			continue
		}
		segs = append(segs, PowerSegment{
			Layer: lt.Name, OnPIM: pimSide && lt.OnPIM,
			StartNs: t, EndNs: t + ns,
			Watts: (procJ + devJ) / (ns * 1e-9),
		})
		t += ns
	}
	return segs
}

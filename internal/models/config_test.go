package models

import "testing"

func TestServingConfigsValid(t *testing.T) {
	for _, c := range ServingConfigs() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.WeightBytes() <= 0 {
			t.Errorf("%s: nonpositive weight footprint", c.Name)
		}
	}
}

// TestServingConfigDimensions pins the derived shapes: layer counts must
// match the source models' LSTM stacks, widths must be SIMD-block
// multiples, and the output heads must carry the published logit counts
// (clamped for the GNMT vocabulary).
func TestServingConfigDimensions(t *testing.T) {
	cases := []struct {
		cfg    Config
		layers int
		output int
	}{
		{DS2Small(), 6, 29},
		{RNNTSmall(), 7, 29},
		{GNMTSmall(), 16, 256},
	}
	for _, c := range cases {
		if got := len(c.cfg.Hidden); got != c.layers {
			t.Errorf("%s: %d LSTM layers, want %d", c.cfg.Name, got, c.layers)
		}
		if c.cfg.Output != c.output {
			t.Errorf("%s: output %d, want %d", c.cfg.Name, c.cfg.Output, c.output)
		}
		if c.cfg.Input%16 != 0 {
			t.Errorf("%s: input %d not a block multiple", c.cfg.Name, c.cfg.Input)
		}
		for i, h := range c.cfg.Hidden {
			if h%16 != 0 {
				t.Errorf("%s: hidden[%d] = %d not a block multiple", c.cfg.Name, i, h)
			}
		}
	}
}

func TestServingConfigByName(t *testing.T) {
	if _, ok := ServingConfigByName("ds2-small"); !ok {
		t.Error("ds2-small not resolvable")
	}
	if _, ok := ServingConfigByName("nope"); ok {
		t.Error("unknown name resolved")
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []Config{
		{Name: "", Input: 16, Hidden: []int{16}, Output: 4},
		{Name: "x", Input: 0, Hidden: []int{16}, Output: 4},
		{Name: "x", Input: 16, Hidden: nil, Output: 4},
		{Name: "x", Input: 16, Hidden: []int{16, 0}, Output: 4},
		{Name: "x", Input: 16, Hidden: []int{16}, Output: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

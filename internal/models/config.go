package models

import (
	"fmt"
	"strings"
)

// Config is a servable instantiation of one of the paper's sequence
// networks: a unidirectional LSTM stack plus an output projection, with
// concrete (scaled-down) dimensions and a weight seed. The full layer
// graphs above describe the published architectures for the timing
// model; Config is what internal/nn compiles into a resident execution
// plan on the functional simulator, where the weight footprint must fit
// the device's PIM row budget (a full-size DS2 LSTM layer alone needs
// thousands of rows per bank — see the derivation in DESIGN.md §9).
//
// The stack is strictly feed-forward between layers: layer l consumes
// layer l-1's hidden state at the same timestep, and the last hidden
// state feeds an Output x Hidden[last] projection whose logits drive
// EOS retirement. Bidirectional layers of the source models are served
// in their streaming (unidirectional) form — a known deviation, listed
// in DESIGN.md.
type Config struct {
	Name   string `json:"name"`
	Input  int    `json:"input"`  // per-frame input width
	Hidden []int  `json:"hidden"` // hidden width per LSTM layer
	Output int    `json:"output"` // output projection rows (logit count)
	Seed   int64  `json:"seed"`   // deterministic weight generation
}

// Validate checks dimensional sanity.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("models: config needs a name")
	}
	if c.Input <= 0 {
		return fmt.Errorf("models: %s: input width %d", c.Name, c.Input)
	}
	if len(c.Hidden) == 0 {
		return fmt.Errorf("models: %s: no LSTM layers", c.Name)
	}
	for i, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("models: %s: layer %d hidden width %d", c.Name, i, h)
		}
	}
	if c.Output <= 0 {
		return fmt.Errorf("models: %s: output width %d", c.Name, c.Output)
	}
	return nil
}

// WeightBytes is the FP16 parameter footprint: per LSTM layer the
// 4H x X input and 4H x H recurrent matrices plus the 4H bias, then the
// output projection.
func (c Config) WeightBytes() int64 {
	var elems int64
	in := c.Input
	for _, h := range c.Hidden {
		elems += int64(4*h) * int64(in+h+1)
		in = h
	}
	elems += int64(c.Output) * int64(in)
	return 2 * elems
}

// servingScale divides the published dimensions down to something the
// simulated device's PIM row region holds with replication headroom.
const servingScale = 16

// scaleDim shrinks a published dimension by servingScale and rounds to
// the nearest multiple of 16 (one SIMD block), floored at 16.
func scaleDim(d int) int {
	s := (d/servingScale + 8) / 16 * 16
	if s < 16 {
		return 16
	}
	return s
}

// ServingConfig derives a scaled-down serving Config from a layer-graph
// Model: the LSTM layers in order (hidden widths scaled; the inter-layer
// input widths are implied by the stack), the first LSTM's input width
// scaled, and the last FC layer's output rows (scaled and clamped to 256
// when vocabulary-sized, kept as-is when already small).
func ServingConfig(m Model, seed int64) (Config, error) {
	cfg := Config{
		Name: strings.ToLower(strings.ReplaceAll(m.Name, "-", "")) + "-small",
		Seed: seed,
	}
	for _, l := range m.Layers {
		switch l.Kind {
		case LSTM:
			if cfg.Input == 0 {
				cfg.Input = scaleDim(l.X)
			}
			cfg.Hidden = append(cfg.Hidden, scaleDim(l.H))
		case FC:
			// Last FC wins: DS2 fc_out, RNN-T joint_fc2, GNMT projection.
			if l.M <= 64 {
				cfg.Output = l.M
			} else if cfg.Output = scaleDim(l.M); cfg.Output > 256 {
				cfg.Output = 256
			}
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("models: deriving serving config from %s: %w", m.Name, err)
	}
	return cfg, nil
}

// DS2Small is the serving-scale DeepSpeech2: six LSTM layers and the
// 29-character output head.
func DS2Small() Config {
	c, err := ServingConfig(DS2(), 7001)
	if err != nil {
		panic(err)
	}
	return c
}

// RNNTSmall is the serving-scale RNN-T stack (encoder + prediction
// layers flattened into one feed-forward stack, joint output head).
func RNNTSmall() Config {
	c, err := ServingConfig(RNNT(), 7002)
	if err != nil {
		panic(err)
	}
	return c
}

// GNMTSmall is the serving-scale GNMT stack (16 LSTM layers, clamped
// vocabulary projection).
func GNMTSmall() Config {
	c, err := ServingConfig(GNMT(), 7003)
	if err != nil {
		panic(err)
	}
	return c
}

// ServingConfigs returns every predefined serving config.
func ServingConfigs() []Config {
	return []Config{DS2Small(), RNNTSmall(), GNMTSmall()}
}

// ServingConfigByName resolves a predefined serving config.
func ServingConfigByName(name string) (Config, bool) {
	for _, c := range ServingConfigs() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

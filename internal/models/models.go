// Package models defines the five evaluation workloads of Section VII-A
// as layer graphs: Baidu DeepSpeech2, Google RNN-T (the MLPerf variant),
// Google NMT, AlexNet and ResNet-50. Layer dimensions follow the
// published model architectures; the sim package turns them into host and
// PIM execution times.
package models

import "fmt"

// LayerKind classifies how a layer executes.
type LayerKind int

const (
	Conv      LayerKind = iota // compute-bound dense convolution
	FC                         // fully connected: a GEMV per sample
	LSTM                       // recurrent layer: two GEMVs per step (+ gate math)
	BN                         // batch normalization (elementwise, memory-bound)
	ReLU                       // elementwise activation
	Residual                   // elementwise add (skip connection)
	Attention                  // decoder attention: score GEMV + context combine
	Softmax                    // output softmax (host, elementwise-ish)
)

var kindNames = [...]string{"Conv", "FC", "LSTM", "BN", "ReLU", "Residual", "Attention", "Softmax"}

func (k LayerKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Layer is one layer of a model.
type Layer struct {
	Kind LayerKind
	Name string

	// FC / Attention: output rows M, input columns K.
	M, K int

	// LSTM: input width X, hidden width H, sequence Steps; Bidir doubles
	// the directions. Streaming marks encoder-style layers whose inputs
	// are all available up front, so kernel launches amortize over the
	// sequence (the GNMT encoder-vs-decoder distinction, Section VII-B).
	X, H, Steps int
	Bidir       bool
	Streaming   bool

	// Elementwise: N elements.
	N int

	// Conv: multiply-accumulate count and memory footprint per sample.
	MACs  float64
	Bytes float64
}

// Directions returns 2 for bidirectional LSTM layers, else 1.
func (l Layer) Directions() int {
	if l.Bidir {
		return 2
	}
	return 1
}

// WeightBytes estimates the layer's parameter footprint (FP16).
func (l Layer) WeightBytes() float64 {
	switch l.Kind {
	case FC, Attention:
		return 2 * float64(l.M) * float64(l.K)
	case LSTM:
		per := 4 * float64(l.H) * (float64(l.X) + float64(l.H))
		return 2 * per * float64(l.Directions())
	case Conv:
		return l.Bytes * 0.2 // rough split; convs are activation heavy
	}
	return 0
}

// Model is a named layer sequence.
type Model struct {
	Name   string
	Layers []Layer
}

// MemoryBoundLayers returns the layers the paper offloads to PIM: LSTMs,
// FCs and the elementwise band (BN / ReLU / Residual / Attention).
func (m Model) MemoryBoundLayers() []Layer {
	var out []Layer
	for _, l := range m.Layers {
		switch l.Kind {
		case FC, LSTM, BN, ReLU, Residual, Attention:
			out = append(out, l)
		}
	}
	return out
}

// Validate checks dimensional sanity.
func (m Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("models: %s has no layers", m.Name)
	}
	for i, l := range m.Layers {
		switch l.Kind {
		case Conv:
			if l.MACs <= 0 || l.Bytes <= 0 {
				return fmt.Errorf("models: %s layer %d (%s): conv needs MACs and Bytes", m.Name, i, l.Name)
			}
		case FC, Attention:
			if l.M <= 0 || l.K <= 0 {
				return fmt.Errorf("models: %s layer %d (%s): FC needs MxK", m.Name, i, l.Name)
			}
		case LSTM:
			if l.X <= 0 || l.H <= 0 || l.Steps <= 0 {
				return fmt.Errorf("models: %s layer %d (%s): LSTM needs X,H,Steps", m.Name, i, l.Name)
			}
		case BN, ReLU, Residual, Softmax:
			if l.N <= 0 {
				return fmt.Errorf("models: %s layer %d (%s): eltwise needs N", m.Name, i, l.Name)
			}
		}
	}
	return nil
}

// DS2 is Baidu DeepSpeech2: two strided convolutions, six bidirectional
// LSTM layers, and a character-output fully connected layer. Input is the
// linear spectrogram of a 2-second clip (161 bins x 200 frames), 100
// frames after the convolution striding.
func DS2() Model {
	const steps = 100
	layers := []Layer{
		{Kind: Conv, Name: "conv1", MACs: 117e6, Bytes: 1.6e6},
		{Kind: Conv, Name: "conv2", MACs: 970e6, Bytes: 3.1e6},
	}
	// conv output: 32 channels x 41 bins -> 1312 features per frame.
	x := 1312
	for i := 0; i < 6; i++ {
		layers = append(layers, Layer{
			Kind: LSTM, Name: fmt.Sprintf("lstm%d", i+1),
			X: x, H: 1760, Steps: steps, Bidir: true, Streaming: true,
		})
		x = 2 * 1760 // bidirectional concat feeds the next layer
	}
	layers = append(layers,
		Layer{Kind: FC, Name: "fc_out", M: 29, K: 2 * 1760},
		Layer{Kind: Softmax, Name: "softmax", N: 29 * steps},
	)
	return Model{Name: "DS2", Layers: layers}
}

// RNNT is the MLPerf RNN Transducer: a 5-layer LSTM encoder with time
// reduction, a 2-layer LSTM prediction network, and two joint-network
// fully connected layers with ReLU.
func RNNT() Model {
	const (
		encSteps  = 100 // 2 s of 20 ms frames after stacking
		redSteps  = 50  // after 2x time reduction
		outTokens = 20
	)
	layers := []Layer{
		{Kind: LSTM, Name: "enc1", X: 240, H: 1024, Steps: encSteps, Streaming: true},
		{Kind: LSTM, Name: "enc2", X: 1024, H: 1024, Steps: encSteps, Streaming: true},
		{Kind: LSTM, Name: "enc3", X: 2048, H: 1024, Steps: redSteps, Streaming: true},
		{Kind: LSTM, Name: "enc4", X: 1024, H: 1024, Steps: redSteps, Streaming: true},
		{Kind: LSTM, Name: "enc5", X: 1024, H: 1024, Steps: redSteps, Streaming: true},
		{Kind: LSTM, Name: "pred1", X: 320, H: 320, Steps: outTokens},
		{Kind: LSTM, Name: "pred2", X: 320, H: 320, Steps: outTokens},
	}
	layers = append(layers,
		Layer{Kind: FC, Name: "joint_fc1", M: 512, K: 1024 + 320, Steps: outTokens},
		Layer{Kind: ReLU, Name: "joint_relu", N: 512 * outTokens},
		Layer{Kind: FC, Name: "joint_fc2", M: 29, K: 512, Steps: outTokens},
	)
	return Model{Name: "RNN-T", Layers: layers}
}

// GNMT is Google's NMT: 8 encoder LSTMs (first bidirectional), an
// attention module, 8 decoder LSTMs, and the vocabulary projection.
// Sentences of ~50 words on both sides.
func GNMT() Model {
	const (
		srcLen = 50
		dstLen = 50
		hidden = 1024
		vocab  = 32000
	)
	layers := []Layer{
		{Kind: LSTM, Name: "enc1", X: hidden, H: hidden, Steps: srcLen, Bidir: true, Streaming: true},
	}
	for i := 2; i <= 8; i++ {
		x := hidden
		if i == 2 {
			x = 2 * hidden // bidirectional concat
		}
		layers = append(layers, Layer{
			Kind: LSTM, Name: fmt.Sprintf("enc%d", i),
			X: x, H: hidden, Steps: srcLen, Streaming: true,
		})
	}
	for i := 1; i <= 8; i++ {
		x := hidden
		if i == 1 {
			x = 2 * hidden // embedding + attention context
		}
		layers = append(layers, Layer{
			Kind: LSTM, Name: fmt.Sprintf("dec%d", i),
			X: x, H: hidden, Steps: dstLen, // decoder: one kernel call per step
		})
	}
	layers = append(layers,
		Layer{Kind: Attention, Name: "attention", M: srcLen, K: hidden, Steps: dstLen},
		Layer{Kind: FC, Name: "projection", M: vocab, K: hidden, Steps: dstLen},
		Layer{Kind: Softmax, Name: "softmax", N: vocab * dstLen},
	)
	return Model{Name: "GNMT", Layers: layers}
}

// EncoderOnly returns the model restricted to its streaming encoder
// layers (the 6.2x GNMT encoder study, Section VII-B).
func (m Model) EncoderOnly() Model {
	var out []Layer
	for _, l := range m.Layers {
		if l.Kind == LSTM && l.Streaming {
			out = append(out, l)
		}
	}
	return Model{Name: m.Name + "-encoder", Layers: out}
}

// AlexNet: five convolutions and three fully connected layers on a
// 224x224x3 image.
func AlexNet() Model {
	return Model{Name: "AlexNet", Layers: []Layer{
		{Kind: Conv, Name: "conv1", MACs: 105e6, Bytes: 1.3e6},
		{Kind: ReLU, Name: "relu1", N: 290400},
		{Kind: Conv, Name: "conv2", MACs: 224e6, Bytes: 1.4e6},
		{Kind: ReLU, Name: "relu2", N: 186624},
		{Kind: Conv, Name: "conv3", MACs: 150e6, Bytes: 2.2e6},
		{Kind: ReLU, Name: "relu3", N: 64896},
		{Kind: Conv, Name: "conv4", MACs: 112e6, Bytes: 1.8e6},
		{Kind: ReLU, Name: "relu4", N: 64896},
		{Kind: Conv, Name: "conv5", MACs: 75e6, Bytes: 1.2e6},
		{Kind: ReLU, Name: "relu5", N: 43264},
		{Kind: FC, Name: "fc6", M: 4096, K: 9216},
		{Kind: ReLU, Name: "relu6", N: 4096},
		{Kind: FC, Name: "fc7", M: 4096, K: 4096},
		{Kind: ReLU, Name: "relu7", N: 4096},
		{Kind: FC, Name: "fc8", M: 1000, K: 4096},
		{Kind: Softmax, Name: "softmax", N: 1000},
	}}
}

// ResNet50: the stages are modeled as per-block convolution aggregates
// with their batch-norm, ReLU and identity-shortcut elementwise layers —
// the memory-bound band PIM could serve, dominated by compute-bound
// convolutions (the paper's "PIM does not hurt compute-bound apps" case).
func ResNet50() Model {
	layers := []Layer{
		{Kind: Conv, Name: "conv1", MACs: 118e6, Bytes: 3.5e6},
		{Kind: BN, Name: "bn1", N: 802816},
		{Kind: ReLU, Name: "relu1", N: 802816},
	}
	stages := []struct {
		name   string
		blocks int
		macs   float64 // per block
		actN   int     // output activation elements per block
	}{
		{"stage2", 3, 130e6, 802816},
		{"stage3", 4, 120e6, 401408},
		{"stage4", 6, 110e6, 200704},
		{"stage5", 3, 110e6, 100352},
	}
	for _, s := range stages {
		for b := 1; b <= s.blocks; b++ {
			name := fmt.Sprintf("%s_b%d", s.name, b)
			layers = append(layers,
				Layer{Kind: Conv, Name: name + "_convs", MACs: s.macs, Bytes: float64(s.actN) * 6},
				Layer{Kind: BN, Name: name + "_bn", N: s.actN},
				Layer{Kind: Residual, Name: name + "_add", N: s.actN},
				Layer{Kind: ReLU, Name: name + "_relu", N: s.actN},
			)
		}
	}
	layers = append(layers,
		Layer{Kind: FC, Name: "fc", M: 1000, K: 2048},
		Layer{Kind: Softmax, Name: "softmax", N: 1000},
	)
	return Model{Name: "ResNet-50", Layers: layers}
}

// All returns the five evaluation models in the paper's order.
func All() []Model {
	return []Model{DS2(), RNNT(), GNMT(), AlexNet(), ResNet50()}
}

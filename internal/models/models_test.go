package models

import "testing"

func TestAllModelsValidate(t *testing.T) {
	ms := All()
	if len(ms) != 5 {
		t.Fatalf("got %d models, want the paper's 5", len(ms))
	}
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestDS2Structure(t *testing.T) {
	m := DS2()
	convs, lstms, fcs := 0, 0, 0
	for _, l := range m.Layers {
		switch l.Kind {
		case Conv:
			convs++
		case LSTM:
			lstms++
			if !l.Bidir || !l.Streaming {
				t.Errorf("%s: DS2 LSTMs are bidirectional and streaming", l.Name)
			}
			if l.H != 1760 {
				t.Errorf("%s: hidden %d, want 1760", l.Name, l.H)
			}
		case FC:
			fcs++
		}
	}
	// Paper: 2 convolutions, 6 bidirectional LSTMs, 1 FC.
	if convs != 2 || lstms != 6 || fcs != 1 {
		t.Errorf("DS2 structure: %d convs, %d lstms, %d fcs", convs, lstms, fcs)
	}
	// Later layers consume the bidirectional concat.
	if m.Layers[3].X != 2*1760 {
		t.Errorf("lstm2 input %d, want 3520", m.Layers[3].X)
	}
}

func TestRNNTStructure(t *testing.T) {
	m := RNNT()
	enc, pred, fcs := 0, 0, 0
	for _, l := range m.Layers {
		switch {
		case l.Kind == LSTM && l.Streaming:
			enc++
		case l.Kind == LSTM:
			pred++
			if l.H != 320 {
				t.Errorf("%s: prediction hidden %d, want 320", l.Name, l.H)
			}
		case l.Kind == FC:
			fcs++
		}
	}
	// Paper: 5 encoder LSTMs, 2 prediction LSTMs, 2 joint FCs.
	if enc != 5 || pred != 2 || fcs != 2 {
		t.Errorf("RNN-T structure: %d enc, %d pred, %d fc", enc, pred, fcs)
	}
}

func TestGNMTStructure(t *testing.T) {
	m := GNMT()
	encs, decs := 0, 0
	hasAttention, hasProjection := false, false
	for _, l := range m.Layers {
		switch {
		case l.Kind == LSTM && l.Streaming:
			encs++
		case l.Kind == LSTM:
			decs++
			if l.Steps <= 1 {
				t.Errorf("%s: decoder must run per step", l.Name)
			}
		case l.Kind == Attention:
			hasAttention = true
		case l.Kind == FC && l.M == 32000:
			hasProjection = true
			if l.Steps != 50 {
				t.Errorf("projection steps %d, want one per output token", l.Steps)
			}
		}
	}
	// Paper: 8 encoders (first bidirectional), 8 decoders, attention.
	if encs != 8 || decs != 8 || !hasAttention || !hasProjection {
		t.Errorf("GNMT structure: enc=%d dec=%d attn=%v proj=%v", encs, decs, hasAttention, hasProjection)
	}
	if !m.Layers[0].Bidir {
		t.Error("first encoder layer is bidirectional")
	}
}

func TestEncoderOnly(t *testing.T) {
	enc := GNMT().EncoderOnly()
	if len(enc.Layers) != 8 {
		t.Fatalf("encoder-only has %d layers, want 8", len(enc.Layers))
	}
	for _, l := range enc.Layers {
		if l.Kind != LSTM || !l.Streaming {
			t.Errorf("%s leaked into the encoder view", l.Name)
		}
	}
}

func TestAlexNetStructure(t *testing.T) {
	m := AlexNet()
	convs, fcs := 0, 0
	var convMACs float64
	for _, l := range m.Layers {
		switch l.Kind {
		case Conv:
			convs++
			convMACs += l.MACs
		case FC:
			fcs++
		}
	}
	if convs != 5 || fcs != 3 {
		t.Errorf("AlexNet: %d convs, %d fcs", convs, fcs)
	}
	// ~666M MACs in the convolutions (the canonical count).
	if convMACs < 0.5e9 || convMACs > 0.9e9 {
		t.Errorf("conv MACs = %g", convMACs)
	}
	// FC6 dominates the weights.
	var fc6 Layer
	for _, l := range m.Layers {
		if l.Name == "fc6" {
			fc6 = l
		}
	}
	if fc6.M != 4096 || fc6.K != 9216 {
		t.Errorf("fc6 = %dx%d", fc6.M, fc6.K)
	}
	if fc6.WeightBytes() != 2*4096*9216 {
		t.Errorf("fc6 weights = %g", fc6.WeightBytes())
	}
}

func TestResNet50Structure(t *testing.T) {
	m := ResNet50()
	var convMACs float64
	blocks := 0
	for _, l := range m.Layers {
		if l.Kind == Conv {
			convMACs += l.MACs
		}
		if l.Kind == Residual {
			blocks++
		}
	}
	// ~2 GMACs (4 GFLOPs) total, 16 residual blocks.
	if convMACs < 1.5e9 || convMACs > 2.5e9 {
		t.Errorf("ResNet-50 conv MACs = %g, want ~2e9", convMACs)
	}
	if blocks != 16 {
		t.Errorf("residual blocks = %d, want 16", blocks)
	}
	// Nothing in ResNet-50 should be a PIM-offloadable FC except the tiny
	// classifier (weights below any reasonable LLC threshold).
	for _, l := range m.Layers {
		if l.Kind == FC && l.WeightBytes() > 8<<20 {
			t.Errorf("%s: unexpectedly large FC", l.Name)
		}
	}
}

func TestMemoryBoundLayers(t *testing.T) {
	ds2 := DS2()
	mb := ds2.MemoryBoundLayers()
	for _, l := range mb {
		if l.Kind == Conv || l.Kind == Softmax {
			t.Errorf("%s classified memory-bound", l.Name)
		}
	}
	if len(mb) != 7 { // 6 LSTM + 1 FC
		t.Errorf("DS2 memory-bound layers = %d, want 7", len(mb))
	}
}

func TestValidateCatchesBadLayers(t *testing.T) {
	bad := []Model{
		{Name: "empty"},
		{Name: "conv", Layers: []Layer{{Kind: Conv, Name: "c"}}},
		{Name: "fc", Layers: []Layer{{Kind: FC, Name: "f", M: 0, K: 8}}},
		{Name: "lstm", Layers: []Layer{{Kind: LSTM, Name: "l", X: 8, H: 8}}},
		{Name: "elt", Layers: []Layer{{Kind: ReLU, Name: "r"}}},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s validated", m.Name)
		}
	}
}

func TestDirectionsAndWeights(t *testing.T) {
	l := Layer{Kind: LSTM, X: 100, H: 200, Steps: 10, Bidir: true}
	if l.Directions() != 2 {
		t.Error("bidir directions")
	}
	// 4H x (X+H) per direction, FP16.
	want := 2.0 * 4 * 200 * (100 + 200) * 2
	if got := l.WeightBytes(); got != want {
		t.Errorf("LSTM weights = %g, want %g", got, want)
	}
}

package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCleanDecode(t *testing.T) {
	for _, w := range []uint64{0, 1, ^uint64(0), 0xDEADBEEFCAFEF00D} {
		got, st := Decode(w, Encode(w))
		if st != OK || got != w {
			t.Errorf("clean word %#x decoded as %s / %#x", w, st, got)
		}
	}
}

func TestSingleBitCorrectionExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 64; trial++ {
		w := rng.Uint64()
		p := Encode(w)
		// Every data-bit flip must correct back.
		for bit := 0; bit < 64; bit++ {
			got, st := Decode(w^(1<<bit), p)
			if st != Corrected || got != w {
				t.Fatalf("word %#x bit %d: %s / %#x", w, bit, st, got)
			}
		}
		// Every parity-bit flip must be tolerated (data already intact).
		for bit := 0; bit < 8; bit++ {
			got, st := Decode(w, p^(1<<bit))
			if st != Corrected || got != w {
				t.Fatalf("word %#x parity bit %d: %s / %#x", w, bit, st, got)
			}
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		w := rng.Uint64()
		p := Encode(w)
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		if b1 == b2 {
			continue
		}
		_, st := Decode(w^(1<<b1)^(1<<b2), p)
		if st != Uncorrectable {
			t.Fatalf("word %#x bits %d,%d: %s, want uncorrectable", w, b1, b2, st)
		}
	}
}

func TestDataPlusParityDoubleError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		w := rng.Uint64()
		p := Encode(w)
		db := rng.Intn(64)
		pb := rng.Intn(8)
		got, st := Decode(w^(1<<db), p^(1<<pb))
		// Two flips split across data and parity must never silently
		// return wrong data as OK/Corrected-to-wrong-value.
		if st == OK {
			t.Fatalf("double error decoded as clean")
		}
		if st == Corrected && got != w {
			t.Fatalf("double error mis-corrected to %#x (want %#x)", got, w)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(w uint64) bool {
		got, st := Decode(w, Encode(w))
		return st == OK && got == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSingleFlip(t *testing.T) {
	f := func(w uint64, bit uint8) bool {
		b := int(bit) % 64
		got, st := Decode(w^(1<<b), Encode(w))
		return st == Corrected && got == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestBlockEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 32)
	rng.Read(data)
	p := EncodeBlock(data)

	// Clean block.
	clean := append([]byte(nil), data...)
	if c, u := DecodeBlock(clean, p); c != 0 || u {
		t.Fatalf("clean block: corrected=%d uncorrectable=%v", c, u)
	}

	// One flipped bit per word: four corrections.
	damaged := append([]byte(nil), data...)
	for w := 0; w < WordsPerBlock; w++ {
		damaged[8*w+3] ^= 0x10
	}
	c, u := DecodeBlock(damaged, p)
	if c != 4 || u {
		t.Fatalf("corrected=%d uncorrectable=%v", c, u)
	}
	for i := range data {
		if damaged[i] != data[i] {
			t.Fatalf("byte %d not restored", i)
		}
	}

	// Two flips in one word: uncorrectable flagged.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0x01
	bad[1] ^= 0x01
	if _, u := DecodeBlock(bad, p); !u {
		t.Fatal("double error not detected")
	}
}

func TestParityBitsDistinct(t *testing.T) {
	// Sanity on the construction: all data positions are distinct and
	// none is a power of two.
	seen := map[uint8]bool{}
	for _, pos := range position {
		if pos == 0 || pos&(pos-1) == 0 {
			t.Fatalf("data bit at parity position %d", pos)
		}
		if seen[pos] {
			t.Fatalf("duplicate position %d", pos)
		}
		seen[pos] = true
	}
}

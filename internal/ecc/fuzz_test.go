package ecc

import "testing"

// flipCodeword flips one bit of the 72-bit codeword: positions 0..63 are
// data bits, 64..71 are the stored parity bits (71 being the overall
// parity). This is the fault model the hbm read path exercises — a flip
// can land anywhere in the stored word, parity included.
func flipCodeword(w uint64, p uint8, pos int) (uint64, uint8) {
	if pos < 64 {
		return w ^ (1 << pos), p
	}
	return w, p ^ (1 << (pos - 64))
}

// TestAllPairsDoubleBitDetection proves the DED half of SEC-DED
// exhaustively: every one of the C(72,2) = 2556 distinct bit pairs in
// the codeword must decode as Uncorrectable — never as OK (silent
// corruption) and never as Corrected (miscorrection into a third wrong
// word). The random-pair test covers the same property statistically;
// this one closes it.
func TestAllPairsDoubleBitDetection(t *testing.T) {
	words := []uint64{0, ^uint64(0), 0xA5A5A5A5A5A5A5A5, 0x0123456789ABCDEF}
	for _, w := range words {
		p := Encode(w)
		for i := 0; i < 72; i++ {
			for j := i + 1; j < 72; j++ {
				cw, cp := flipCodeword(w, p, i)
				cw, cp = flipCodeword(cw, cp, j)
				if _, st := Decode(cw, cp); st != Uncorrectable {
					t.Fatalf("word %#x, flips at %d+%d: status %v, want uncorrectable", w, i, j, st)
				}
			}
		}
	}
}

// FuzzDecode drives the full SEC-DED contract from arbitrary words and
// flip positions: a clean codeword decodes OK, any single flip (data or
// parity) is corrected back to the original data, and any two distinct
// flips are detected as uncorrectable. The seed corpus in
// testdata/fuzz/FuzzDecode pins the boundary positions (bit 0, the
// data/parity seam at 63/64, the overall parity bit 71).
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0), byte(0), byte(0))
	f.Add(^uint64(0), byte(71), byte(71))
	f.Add(uint64(0xDEADBEEFCAFEF00D), byte(63), byte(64))
	f.Add(uint64(1), byte(3), byte(12))
	f.Fuzz(func(t *testing.T, w uint64, b1, b2 byte) {
		p1, p2 := int(b1)%72, int(b2)%72
		p := Encode(w)

		if got, st := Decode(w, p); st != OK || got != w {
			t.Fatalf("clean decode of %#x: (%#x, %v), want (%#x, ok)", w, got, st, w)
		}

		cw, cp := flipCodeword(w, p, p1)
		got, st := Decode(cw, cp)
		if st != Corrected {
			t.Fatalf("single flip at %d in %#x: status %v, want corrected", p1, w, st)
		}
		if got != w {
			t.Fatalf("single flip at %d in %#x: corrected to %#x, want %#x", p1, w, got, w)
		}

		if p1 == p2 {
			return // same bit twice is no error at all, covered above
		}
		cw, cp = flipCodeword(cw, cp, p2)
		if _, st := Decode(cw, cp); st != Uncorrectable {
			t.Fatalf("double flip at %d+%d in %#x: status %v, want uncorrectable", p1, p2, w, st)
		}
	})
}

// Package ecc implements the single-error-correct, double-error-detect
// (SEC-DED) on-die ECC that Section VIII sketches for the HBM3-generation
// PIM-HBM: "DRAM began to have on-die ECC including HBM3... PIM may
// leverage the on-die ECC engine to generate and check the ECC parity
// bits even in PIM mode." The code is a (72,64) Hsiao-style construction:
// 8 parity bits protect each 64-bit word, the granularity on-die ECC
// engines use.
//
// Because each PIM execution unit reads and writes at the same 32-byte
// granularity as the host (Section VIII), the same engine serves both
// paths: a 32-byte column access checks four words (WordsPerBlock).
//
// Code word layout: 72 bits per word — positions 0..63 carry data,
// 64..70 the seven Hamming check bits, 71 the overall parity bit that
// upgrades single-error-correct to double-error-detect. Decode's
// guarantees, exercised exhaustively by the tests:
//
//   - a clean word decodes OK and returns the data unchanged;
//   - any single flipped bit (data or parity) decodes Corrected and
//     returns the original data;
//   - any two distinct flipped bits decode Uncorrectable — all
//     C(72,2) = 2556 pairs, pinned by TestAllPairsDoubleBitDetection;
//   - three or more flips are outside the guarantee (may miscorrect),
//     as for any SEC-DED code.
//
// The device's read path (hbm's ECC datapath) decodes after fault
// injection and scrubs on correction: a corrected word is written back
// with fresh parity, so a transient flip is healed while a stuck cell
// simply re-corrupts the next read. Uncorrectable words abort the
// access with a typed hbm.UncorrectableError naming the location —
// corrupt data is never forwarded. See docs/FAULTS.md for the
// system-level story.
package ecc

import "math/bits"

// Status classifies a decode.
type Status int

const (
	OK            Status = iota // parity clean
	Corrected                   // single-bit error corrected
	Uncorrectable               // double-bit (or worse) error detected
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	default:
		return "uncorrectable"
	}
}

// The check-bit masks: parity bit i covers the data bits set in mask[i].
// This is the classic Hamming construction extended with an overall
// parity bit: data bit j is covered by the parity bits matching the
// binary expansion of its codeword position. Positions 1..72 excluding
// powers of two hold data bits.
var (
	masks    [8]uint64 // masks[0..6]: Hamming check bits; masks[7] unused (overall parity)
	position [64]uint8 // codeword position of each data bit (1-based)
)

func init() {
	// Assign data bits to non-power-of-two codeword positions 3..72.
	j := 0
	for pos := uint8(1); j < 64; pos++ {
		if pos&(pos-1) == 0 { // powers of two are parity positions
			continue
		}
		position[j] = pos
		for b := 0; b < 7; b++ {
			if pos&(1<<b) != 0 {
				masks[b] |= 1 << j
			}
		}
		j++
	}
}

// Encode computes the 8 parity bits for a 64-bit word: 7 Hamming check
// bits plus an overall parity bit that upgrades SEC to SEC-DED.
func Encode(word uint64) uint8 {
	var p uint8
	for b := 0; b < 7; b++ {
		p |= uint8(bits.OnesCount64(word&masks[b])&1) << b
	}
	// Overall parity over data and the 7 check bits.
	overall := uint8(bits.OnesCount64(word)&1) ^ uint8(bits.OnesCount8(p&0x7F)&1)
	return p | overall<<7
}

// Decode checks word against its stored parity and corrects a single-bit
// error in either the data or the parity. It returns the (possibly
// corrected) word and the decode status.
func Decode(word uint64, parity uint8) (uint64, Status) {
	// Syndrome: recomputed check bits against the received check bits.
	var calc uint8
	for b := 0; b < 7; b++ {
		calc |= uint8(bits.OnesCount64(word&masks[b])&1) << b
	}
	syndrome := (parity ^ calc) & 0x7F

	// Overall parity spans the whole received codeword: data plus the
	// received check bits. An odd total number of flipped bits shows up
	// here regardless of where they landed.
	overallRecv := parity >> 7
	overallCalc := uint8(bits.OnesCount64(word)&1) ^ uint8(bits.OnesCount8(parity&0x7F)&1)
	overallErr := overallRecv != overallCalc

	switch {
	case syndrome == 0 && !overallErr:
		return word, OK
	case syndrome == 0 && overallErr:
		// The overall parity bit itself flipped.
		return word, Corrected
	case overallErr:
		// Odd number of errors with a nonzero syndrome: a single error at
		// the codeword position given by the syndrome.
		for j, pos := range position {
			if uint8(syndrome) == pos {
				return word ^ (1 << j), Corrected
			}
		}
		// The syndrome points at a parity position: the error was in a
		// check bit, the data is intact.
		return word, Corrected
	default:
		// Nonzero syndrome with even overall parity: two errors.
		return word, Uncorrectable
	}
}

// WordsPerBlock is how many 64-bit words one 32-byte DRAM access covers.
const WordsPerBlock = 4

// EncodeBlock computes the parity bytes for a 32-byte block (little
// endian words). It panics if data is shorter than 32 bytes.
func EncodeBlock(data []byte) [WordsPerBlock]uint8 {
	var out [WordsPerBlock]uint8
	for w := 0; w < WordsPerBlock; w++ {
		out[w] = Encode(le64(data[8*w:]))
	}
	return out
}

// DecodeBlock checks and corrects a 32-byte block in place. It returns
// the number of corrected words and whether any word was uncorrectable.
func DecodeBlock(data []byte, parity [WordsPerBlock]uint8) (corrected int, uncorrectable bool) {
	for w := 0; w < WordsPerBlock; w++ {
		word, st := Decode(le64(data[8*w:]), parity[w])
		switch st {
		case Corrected:
			corrected++
			putLE64(data[8*w:], word)
		case Uncorrectable:
			uncorrectable = true
		}
	}
	return corrected, uncorrectable
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Package dse runs the Fig. 14 design space exploration: three enhanced
// PIM microarchitectures that could not be fabricated — PIM-HBM-2x
// (doubled resources), PIM-HBM-2BA (simultaneous even/odd bank access)
// and PIM-HBM-SRW (simultaneous column read and write) — evaluated on the
// microbenchmarks plus batch normalization, as performance over the HBM
// baseline. Like the paper's DRAMSim2 study, these are simulator-derived
// bounds; the 2BA datapath is timing-only.
package dse

import (
	"fmt"
	"math"

	"pimsim/internal/hbm"
	"pimsim/internal/sim"
)

// Benchmarks returns the Fig. 14 workload set: the Table VI
// microbenchmarks plus the BN kernels with the ADD input sizes.
func Benchmarks() []sim.MicroSpec {
	return append(sim.TableVI(), sim.BNSpecs()...)
}

// Result is one variant's evaluation.
type Result struct {
	Variant hbm.Variant
	// Speedups over the HBM host baseline, by benchmark name.
	Speedups map[string]float64
	Geomean  float64
	// GeomeanOverBase is the variant's geomean improvement over the
	// fabricated PIM-HBM (paper: 2x ~ +40%, 2BA ~ +20%, SRW ~ +10%).
	GeomeanOverBase float64
}

// Run evaluates the baseline and all three variants at batch 1.
func Run() ([]Result, error) {
	hostSys := sim.NewHostSystem(1)
	variants := []hbm.Variant{hbm.VariantBase, hbm.Variant2X, hbm.Variant2BA, hbm.VariantSRW}
	out := make([]Result, 0, len(variants))
	var baseGeo float64

	for _, v := range variants {
		pimSys, err := sim.NewPIMSystem(v)
		if err != nil {
			return nil, fmt.Errorf("dse: %s: %w", v, err)
		}
		r := Result{Variant: v, Speedups: map[string]float64{}}
		logSum, n := 0.0, 0
		for _, spec := range Benchmarks() {
			mr, err := runOne(pimSys, hostSys, spec)
			if err != nil {
				return nil, fmt.Errorf("dse: %s %s: %w", v, spec.Name, err)
			}
			r.Speedups[spec.Name] = mr
			logSum += math.Log(mr)
			n++
		}
		r.Geomean = math.Exp(logSum / float64(n))
		if v == hbm.VariantBase {
			baseGeo = r.Geomean
			r.GeomeanOverBase = 1
		} else {
			r.GeomeanOverBase = r.Geomean / baseGeo
		}
		out = append(out, r)
	}
	return out, nil
}

// runOne returns the variant's speedup over the host for one benchmark.
func runOne(pimSys, hostSys *sim.System, spec sim.MicroSpec) (float64, error) {
	launch := pimSys.Proc.KernelLaunchNs
	if spec.IsGemv() {
		hc, err := hostSys.Proc.Gemv(spec.M, spec.K, 1)
		if err != nil {
			return 0, err
		}
		pc, err := pimSys.PimGemvCost(spec.M, spec.K)
		if err != nil {
			return 0, err
		}
		return hc.NS / (pc.Ns + launch), nil
	}
	op, streams := "add", 3
	if spec.Name[:2] == "BN" {
		op, streams = "bn", 2
	}
	hc, err := hostSys.Proc.Eltwise(spec.N, 1, streams)
	if err != nil {
		return 0, err
	}
	pc, err := pimSys.PimEltCost(op, spec.N)
	if err != nil {
		return 0, err
	}
	return hc.NS / (pc.Ns + launch), nil
}

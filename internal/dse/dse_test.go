package dse

import (
	"testing"

	"pimsim/internal/hbm"
)

func TestFig14Shapes(t *testing.T) {
	rs, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d variants", len(rs))
	}
	by := map[hbm.Variant]Result{}
	for _, r := range rs {
		by[r.Variant] = r
	}
	base := by[hbm.VariantBase]
	v2x := by[hbm.Variant2X]
	v2ba := by[hbm.Variant2BA]
	vsrw := by[hbm.VariantSRW]

	// Every enhanced variant improves on the product geomean.
	for _, r := range []Result{v2x, v2ba, vsrw} {
		if r.GeomeanOverBase <= 1 {
			t.Errorf("%s geomean gain %.2f, want > 1", r.Variant, r.GeomeanOverBase)
		}
	}

	// Paper ordering: 2x (~+40%) > SRW/2BA; our model reproduces the
	// ordering with 2x on top.
	if v2x.GeomeanOverBase <= v2ba.GeomeanOverBase {
		t.Errorf("2x (%.2f) should beat 2BA (%.2f)", v2x.GeomeanOverBase, v2ba.GeomeanOverBase)
	}
	if v2x.GeomeanOverBase < 1.25 || v2x.GeomeanOverBase > 2.0 {
		t.Errorf("2x gain %.2f, expected roughly +40%% or more", v2x.GeomeanOverBase)
	}

	// 2BA is useful especially for ADD (GRF-pressure relief), not GEMV.
	addGain := v2ba.Speedups["ADD2"] / base.Speedups["ADD2"]
	gemvGain := v2ba.Speedups["GEMV4"] / base.Speedups["GEMV4"]
	if addGain < 1.2 {
		t.Errorf("2BA ADD gain %.2f, want > 1.2", addGain)
	}
	if gemvGain > 1.05 {
		t.Errorf("2BA GEMV gain %.2f, expected ~none", gemvGain)
	}

	// SRW helps GEMV specifically (merged vector load), not ADD.
	srwGemv := vsrw.Speedups["GEMV4"] / base.Speedups["GEMV4"]
	srwAdd := vsrw.Speedups["ADD2"] / base.Speedups["ADD2"]
	if srwGemv < 1.2 {
		t.Errorf("SRW GEMV gain %.2f, want > 1.2", srwGemv)
	}
	if srwAdd > 1.05 {
		t.Errorf("SRW ADD gain %.2f, expected ~none", srwAdd)
	}

	// BN behaves like a streaming kernel on every variant.
	for _, r := range rs {
		for _, n := range []string{"BN1", "BN2", "BN3", "BN4"} {
			if s := r.Speedups[n]; s < 1.2 || s > 4.5 {
				t.Errorf("%s %s speedup %.2f out of plausible band", r.Variant, n, s)
			}
		}
	}
}

func TestBenchmarkSet(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 12 {
		t.Fatalf("got %d benchmarks, want 12 (8 microbenchmarks + 4 BN)", len(bs))
	}
}

package hbm

import "fmt"

// Device is one HBM2 or PIM-HBM stack: a set of independent pseudo
// channels sharing a configuration.
type Device struct {
	cfg  Config
	pchs []*PseudoChannel
}

// NewDevice builds a device from cfg.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg, pchs: make([]*PseudoChannel, cfg.PseudoChannels)}
	for i := range d.pchs {
		d.pchs[i] = newPCH(&d.cfg, i)
	}
	return d, nil
}

// MustNewDevice panics on configuration errors (for tests and fixed
// experiment setups).
func MustNewDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// PCH returns pseudo channel i.
func (d *Device) PCH(i int) *PseudoChannel {
	if i < 0 || i >= len(d.pchs) {
		panic(fmt.Sprintf("hbm: pseudo channel %d out of range", i))
	}
	return d.pchs[i]
}

// NumPCH returns the number of pseudo channels.
func (d *Device) NumPCH() int { return len(d.pchs) }

// AttachFault connects a fault injector to every pseudo channel's
// readout path (nil detaches). Channel indices passed to the injector
// are the device's pseudo-channel indices.
func (d *Device) AttachFault(f ReadFault) {
	for _, p := range d.pchs {
		p.fault = f
	}
}

// Stats sums the counters across all pseudo channels.
func (d *Device) Stats() Stats {
	var s Stats
	for _, p := range d.pchs {
		s.Add(p.Stats())
	}
	return s
}

// ResetStats zeroes all pseudo channels' counters.
func (d *Device) ResetStats() {
	for _, p := range d.pchs {
		p.ResetStats()
	}
}

package hbm

import (
	"math/rand"
	"testing"
)

// The timing oracle is an independent, brute-force re-implementation of
// the JEDEC inter-command constraints: it keeps the full command history
// and checks every pairwise rule on each issue. Random SB-mode traffic
// driven through EarliestIssue/Issue must never violate it — if the
// incremental state machine in bank.go/pch.go ever disagrees with the
// written-out rules, this test finds the sequence.

type oracleCmd struct {
	kind  CmdKind
	bg, b int
	cycle int64
}

type oracle struct {
	t    *testing.T
	tm   Timing
	hist []oracleCmd
	open map[[2]int]bool
}

func newOracle(t *testing.T, tm Timing) *oracle {
	return &oracle{t: t, tm: tm, open: map[[2]int]bool{}}
}

func (o *oracle) sameBank(a, b oracleCmd) bool { return a.bg == b.bg && a.b == b.b }

// check validates cmd at cycle t against the entire history, then appends.
func (o *oracle) check(kind CmdKind, bg, b int, t64 int64) {
	o.t.Helper()
	tm := o.tm
	c := oracleCmd{kind: kind, bg: bg, b: b, cycle: t64}
	req := func(prev oracleCmd, min int, rule string) {
		if t64-prev.cycle < int64(min) {
			o.t.Fatalf("%s at %d violates %s: %s at %d needs +%d",
				kind, t64, rule, prev.kind, prev.cycle, min)
		}
	}

	var acts []oracleCmd
	for _, p := range o.hist {
		switch {
		case kind == CmdACT && p.kind == CmdACT:
			acts = append(acts, p)
			if o.sameBank(p, c) {
				req(p, tm.RC, "tRC")
			}
			if p.bg == bg {
				req(p, tm.RRDL, "tRRD_L")
			}
			req(p, tm.RRDS, "tRRD_S")
		case kind == CmdACT && p.kind == CmdPRE && o.sameBank(p, c):
			req(p, tm.RP, "tRP")
		case kind == CmdACT && p.kind == CmdPREA:
			req(p, tm.RP, "tRP(A)")
		case kind == CmdACT && p.kind == CmdREF:
			req(p, tm.RFC, "tRFC")

		case kind.IsColumn() && p.kind.IsColumn():
			if p.bg == bg {
				req(p, tm.CCDL, "tCCD_L")
			} else {
				req(p, tm.CCDS, "tCCD_S")
			}
			if kind == CmdRD && p.kind == CmdWR {
				wtr := tm.WTRS
				if p.bg == bg {
					wtr = tm.WTRL
				}
				req(p, tm.WL+tm.BL/2+wtr, "tWTR")
			}
			if kind == CmdWR && p.kind == CmdRD {
				req(p, tm.RTW, "tRTW")
			}
		case kind.IsColumn() && p.kind == CmdACT && o.sameBank(p, c):
			// Only the most recent ACT of this bank matters; older ones
			// are satisfied transitively. Track via acts list below.
		case kind == CmdPRE && o.sameBank(p, c):
			switch p.kind {
			case CmdACT:
				req(p, tm.RAS, "tRAS")
			case CmdRD:
				req(p, tm.RTP, "tRTP")
			case CmdWR:
				req(p, tm.WL+tm.BL/2+tm.WR, "tWR")
			}
		case kind == CmdREF && p.kind == CmdPRE && o.sameBank(p, oracleCmd{bg: p.bg, b: p.b}):
			req(p, tm.RP, "tRP before REF")
		case kind == CmdREF && p.kind == CmdPREA:
			req(p, tm.RP, "tRP before REF")
		}
	}

	// tRCD: the latest ACT of this bank must be tRCD old for a column.
	if kind.IsColumn() {
		var last *oracleCmd
		for i := range o.hist {
			p := o.hist[i]
			if p.kind == CmdACT && o.sameBank(p, c) {
				last = &o.hist[i]
			}
		}
		if last == nil {
			o.t.Fatalf("%s at %d on a never-activated bank", kind, t64)
		}
		req(*last, tm.RCD, "tRCD")
	}

	// tFAW: at most 4 ACTs in any tFAW window.
	if kind == CmdACT {
		inWindow := 0
		for _, p := range acts {
			if t64-p.cycle < int64(tm.FAW) {
				inWindow++
			}
		}
		if inWindow >= 4 {
			o.t.Fatalf("ACT at %d is the 5th inside tFAW=%d", t64, tm.FAW)
		}
	}

	// Row-buffer state discipline.
	key := [2]int{bg, b}
	switch kind {
	case CmdACT:
		if o.open[key] {
			o.t.Fatalf("ACT at %d to open bank %v", t64, key)
		}
		o.open[key] = true
	case CmdPRE:
		if !o.open[key] {
			o.t.Fatalf("PRE at %d to idle bank %v", t64, key)
		}
		o.open[key] = false
	case CmdPREA:
		for k := range o.open {
			o.open[k] = false
		}
	case CmdRD, CmdWR:
		if !o.open[key] {
			o.t.Fatalf("%s at %d to idle bank %v", kind, t64, key)
		}
	case CmdREF:
		for k, v := range o.open {
			if v {
				o.t.Fatalf("REF at %d with bank %v open", t64, k)
			}
		}
	}
	o.hist = append(o.hist, c)
}

func TestTimingOracleRandomTraffic(t *testing.T) {
	for _, mhz := range []int{1000, 1200} {
		cfg := HBM2Config(mhz)
		cfg.Functional = false
		dev := MustNewDevice(cfg)
		p := dev.PCH(0)
		o := newOracle(t, cfg.Timing)
		rng := rand.New(rand.NewSource(int64(mhz)))

		type bankState struct {
			open bool
			row  uint32
		}
		banks := map[[2]int]*bankState{}
		for bg := 0; bg < cfg.BankGroups; bg++ {
			for b := 0; b < cfg.BanksPerGroup; b++ {
				banks[[2]int{bg, b}] = &bankState{}
			}
		}

		var now int64
		issue := func(cmd Command) {
			t.Helper()
			at, err := p.EarliestIssue(cmd, now)
			if err != nil {
				t.Fatalf("EarliestIssue(%s): %v", cmd, err)
			}
			if _, err := p.Issue(cmd, at); err != nil {
				t.Fatalf("Issue(%s): %v", cmd, err)
			}
			o.check(cmd.Kind, cmd.BG, cmd.Bank, at)
			now = at + int64(rng.Intn(3)) // issue promptly or dawdle a little
		}

		for step := 0; step < 4000; step++ {
			bg := rng.Intn(cfg.BankGroups)
			b := rng.Intn(cfg.BanksPerGroup)
			st := banks[[2]int{bg, b}]
			switch r := rng.Float64(); {
			case r < 0.02:
				// Refresh: close everything first.
				anyOpen := false
				for _, s := range banks {
					anyOpen = anyOpen || s.open
				}
				if anyOpen {
					issue(Command{Kind: CmdPREA})
					for _, s := range banks {
						s.open = false
					}
				}
				issue(Command{Kind: CmdREF})
			case !st.open:
				st.row = uint32(rng.Intn(64))
				issue(Command{Kind: CmdACT, BG: bg, Bank: b, Row: st.row})
				st.open = true
			case r < 0.25:
				issue(Command{Kind: CmdPRE, BG: bg, Bank: b})
				st.open = false
			case r < 0.65:
				issue(Command{Kind: CmdRD, BG: bg, Bank: b, Col: uint32(rng.Intn(cfg.ColumnsPerRow()))})
			default:
				issue(Command{Kind: CmdWR, BG: bg, Bank: b, Col: uint32(rng.Intn(cfg.ColumnsPerRow()))})
			}
		}
	}
}

// TestEarliestIssueIsTight spot-checks that EarliestIssue is not merely
// safe but minimal for the basic rules: issuing one cycle earlier than
// the reported cycle must be rejected whenever any constraint binds.
func TestEarliestIssueIsTight(t *testing.T) {
	cfg := HBM2Config(1000)
	cfg.Functional = false
	dev := MustNewDevice(cfg)
	p := dev.PCH(0)
	rng := rand.New(rand.NewSource(42))

	var now int64
	open := map[[2]int]bool{}
	for step := 0; step < 2000; step++ {
		bg := rng.Intn(cfg.BankGroups)
		b := rng.Intn(cfg.BanksPerGroup)
		key := [2]int{bg, b}
		var cmd Command
		switch {
		case !open[key]:
			cmd = Command{Kind: CmdACT, BG: bg, Bank: b, Row: uint32(rng.Intn(64))}
		case rng.Float64() < 0.2:
			cmd = Command{Kind: CmdPRE, BG: bg, Bank: b}
		case rng.Float64() < 0.6:
			cmd = Command{Kind: CmdRD, BG: bg, Bank: b, Col: uint32(rng.Intn(64))}
		default:
			cmd = Command{Kind: CmdWR, BG: bg, Bank: b, Col: uint32(rng.Intn(64))}
		}
		at, err := p.EarliestIssue(cmd, now)
		if err != nil {
			t.Fatal(err)
		}
		if at > now {
			// Some rule binds: one cycle earlier must fail.
			if _, err := p.Issue(cmd, at-1); err == nil {
				t.Fatalf("step %d: %s accepted at %d, one cycle before its earliest %d", step, cmd, at-1, at)
			}
		}
		if _, err := p.Issue(cmd, at); err != nil {
			t.Fatal(err)
		}
		switch cmd.Kind {
		case CmdACT:
			open[key] = true
		case CmdPRE:
			open[key] = false
		}
		now = at
	}
}

// Package hbm models an HBM2 (and PIM-HBM) DRAM device at command and
// cycle granularity: pseudo channels, bank groups, banks with JEDEC timing
// state machines, row-buffer data storage, the SB/AB/AB-PIM operating modes
// of Section III-B, and the memory-mapped PIM configuration space.
//
// The model is event driven: callers ask a pseudo channel for the earliest
// legal issue cycle of a command and then issue it at (or after) that
// cycle; there is no per-cycle tick loop, which keeps multi-million-command
// simulations fast while enforcing every inter-command constraint.
package hbm

import "fmt"

// Timing holds JEDEC-style DRAM timing parameters in memory-clock cycles
// (tCK). Values follow the HBM2 generation the paper builds on (JESD235,
// Sohn et al. 20nm 307 GB/s HBM DRAM) at 1.0 GHz; Scale derives other
// frequencies.
type Timing struct {
	TCKps int // clock period in picoseconds

	BL   int // burst length (column access transfers BL x 64 bits)
	RCD  int // ACT to column command
	RP   int // PRE to ACT
	RAS  int // ACT to PRE
	RC   int // ACT to ACT, same bank
	RL   int // read latency (column RD to first data)
	WL   int // write latency (column WR to first data)
	CCDS int // column to column, different bank group
	CCDL int // column to column, same bank group
	RRDS int // ACT to ACT, different bank group
	RRDL int // ACT to ACT, same bank group
	FAW  int // four-activate window
	WR   int // write recovery (end of write data to PRE)
	RTP  int // read to precharge
	WTRS int // end of write data to read, different bank group
	WTRL int // end of write data to read, same bank group
	RTW  int // read command to write command turnaround
	REFI int // average refresh interval
	RFC  int // refresh cycle time (all-bank)
}

// HBM2Timing returns HBM2 timing at the given memory clock in MHz
// (1000-1200 for the paper's parts). Fixed-nanosecond parameters are
// rescaled; fixed-cycle parameters (BL, CCD) are not.
func HBM2Timing(mhz int) Timing {
	// Base values at 1000 MHz (1 ns per cycle).
	t := Timing{
		TCKps: 1000000 / mhz,
		BL:    4,
		RCD:   14,
		RP:    14,
		RAS:   33,
		RC:    47,
		RL:    14,
		WL:    4,
		CCDS:  2,
		CCDL:  4,
		RRDS:  4,
		RRDL:  6,
		FAW:   16,
		WR:    15,
		RTP:   5,
		WTRS:  3,
		WTRL:  8,
		RTW:   8,
		REFI:  3900,
		RFC:   260,
	}
	if mhz != 1000 {
		s := func(ns int) int { return (ns*mhz + 999) / 1000 }
		t.RCD, t.RP, t.RAS, t.RC = s(t.RCD), s(t.RP), s(t.RAS), s(t.RC)
		t.RL, t.WL = s(t.RL), s(t.WL)
		t.RRDS, t.RRDL, t.FAW = s(t.RRDS), s(t.RRDL), s(t.FAW)
		t.WR, t.RTP = s(t.WR), s(t.RTP)
		t.WTRS, t.WTRL, t.RTW = s(t.WTRS), s(t.WTRL), s(t.RTW)
		t.REFI, t.RFC = s(t.REFI), s(t.RFC)
	}
	return t
}

// DataCycles is the data-bus occupancy of one column access: BL beats at
// double data rate.
func (t Timing) DataCycles() int { return t.BL / 2 }

// Validate sanity-checks parameter relationships.
func (t Timing) Validate() error {
	switch {
	case t.TCKps <= 0:
		return fmt.Errorf("hbm: non-positive tCK")
	case t.BL <= 0 || t.BL%2 != 0:
		return fmt.Errorf("hbm: burst length %d must be positive and even", t.BL)
	case t.RC < t.RAS+t.RP:
		return fmt.Errorf("hbm: tRC %d < tRAS %d + tRP %d", t.RC, t.RAS, t.RP)
	case t.CCDL < t.CCDS:
		return fmt.Errorf("hbm: tCCD_L %d < tCCD_S %d", t.CCDL, t.CCDS)
	case t.RRDL < t.RRDS:
		return fmt.Errorf("hbm: tRRD_L %d < tRRD_S %d", t.RRDL, t.RRDS)
	case t.FAW < t.RRDS:
		return fmt.Errorf("hbm: tFAW %d < tRRD_S %d", t.FAW, t.RRDS)
	case t.REFI <= t.RFC:
		return fmt.Errorf("hbm: tREFI %d <= tRFC %d leaves no issue slots", t.REFI, t.RFC)
	}
	return nil
}

// CyclesToNs converts a cycle count to nanoseconds under this timing.
func (t Timing) CyclesToNs(cycles int64) float64 {
	return float64(cycles) * float64(t.TCKps) / 1000.0
}

// CyclesToSec converts a cycle count to seconds.
func (t Timing) CyclesToSec(cycles int64) float64 {
	return float64(cycles) * float64(t.TCKps) * 1e-12
}

package hbm

import (
	"bytes"
	"errors"
	"testing"

	"pimsim/internal/fault"
)

func eccConfig() Config {
	cfg := PIMHBMConfig(1000)
	cfg.ECC = true
	return cfg
}

func TestECCValidation(t *testing.T) {
	cfg := eccConfig()
	cfg.Functional = false
	if err := cfg.Validate(); err == nil {
		t.Error("ECC on a timing-only device accepted")
	}
	if err := eccConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestECCSingleBitCorrectedAndScrubbed(t *testing.T) {
	s := newTestPCH(t, eccConfig())
	payload := bytes.Repeat([]byte{0xA5, 0x3C}, 16)
	s.issue(Command{Kind: CmdACT, BG: 1, Bank: 2, Row: 10})
	s.issue(Command{Kind: CmdWR, BG: 1, Bank: 2, Col: 4, Data: payload})

	if err := s.p.InjectBitError(1, 2, 10, 4, 77); err != nil {
		t.Fatal(err)
	}
	res := s.issue(Command{Kind: CmdRD, BG: 1, Bank: 2, Col: 4})
	if !bytes.Equal(res.Data, payload) {
		t.Fatalf("corrected read = %x", res.Data)
	}
	if got := s.p.Stats().ECCCorrected; got != 1 {
		t.Errorf("corrected count = %d", got)
	}
	// The scrub rewrote the array: a second read is clean.
	res = s.issue(Command{Kind: CmdRD, BG: 1, Bank: 2, Col: 4})
	if !bytes.Equal(res.Data, payload) {
		t.Fatalf("post-scrub read = %x", res.Data)
	}
	if got := s.p.Stats().ECCCorrected; got != 1 {
		t.Errorf("scrub did not stick: corrected count = %d", got)
	}
}

func TestECCDoubleBitRejected(t *testing.T) {
	s := newTestPCH(t, eccConfig())
	payload := make([]byte, 32)
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 3})
	s.issue(Command{Kind: CmdWR, BG: 0, Bank: 0, Col: 0, Data: payload})
	// Two flips in the same 64-bit word.
	if err := s.p.InjectBitError(0, 0, 3, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.p.InjectBitError(0, 0, 3, 0, 17); err != nil {
		t.Fatal(err)
	}
	err := s.issueErr(Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 0})
	if err == nil {
		t.Fatal("poisoned data forwarded silently")
	}
	var ue *UncorrectableError
	if !errors.As(err, &ue) {
		t.Fatalf("error is %T, want *UncorrectableError", err)
	}
	if ue.Channel != 0 || ue.Bank != 0 || ue.Row != 3 || ue.Col != 0 {
		t.Errorf("error fields %+v, want ch0 bank0 row3 col0", ue)
	}
	if got := s.p.Stats().ECCUncorrectable; got != 1 {
		t.Errorf("uncorrectable count = %d", got)
	}
}

// An attached injector that flips one bit per word corrupts only the
// readout: ECC corrects every word, the stored array stays clean, and
// the error counters account each correction.
func TestReadFaultHookCorrectedByECC(t *testing.T) {
	s := newTestPCH(t, eccConfig())
	payload := bytes.Repeat([]byte{0x5A, 0xC3}, 16)
	s.issue(Command{Kind: CmdACT, BG: 1, Bank: 2, Row: 10})
	s.issue(Command{Kind: CmdWR, BG: 1, Bank: 2, Col: 4, Data: payload})

	s.p.AttachFault(fault.New(fault.Config{Seed: 9, FlipRate: 1.0}))
	res := s.issue(Command{Kind: CmdRD, BG: 1, Bank: 2, Col: 4})
	if !bytes.Equal(res.Data, payload) {
		t.Fatalf("injected flips not corrected: %x", res.Data)
	}
	if got := s.p.Stats().ECCCorrected; got != 4 {
		t.Errorf("corrected count = %d, want 4 (one per code word)", got)
	}
	// Readout-only corruption: detach the injector and the data is clean
	// (the array was never touched, so nothing needed scrubbing).
	s.p.AttachFault(nil)
	res = s.issue(Command{Kind: CmdRD, BG: 1, Bank: 2, Col: 4})
	if !bytes.Equal(res.Data, payload) {
		t.Fatalf("stored array corrupted by readout injection: %x", res.Data)
	}
	if got := s.p.Stats().ECCCorrected; got != 4 {
		t.Errorf("clean re-read corrected something: count = %d", got)
	}
}

// Two stuck bits in one code word are persistently uncorrectable: every
// read of that block fails with the typed error carrying the address,
// and scrubbing cannot fix it (the corruption rides the readout).
func TestReadFaultStuckUncorrectable(t *testing.T) {
	s := newTestPCH(t, eccConfig())
	s.issue(Command{Kind: CmdACT, BG: 1, Bank: 2, Row: 20})
	s.issue(Command{Kind: CmdWR, BG: 1, Bank: 2, Col: 3, Data: make([]byte, 32)})
	flatBank := 1*4 + 2
	s.p.AttachFault(fault.New(fault.Config{Seed: 1, Stuck: []fault.StuckBit{
		{Shard: -1, Channel: -1, Bank: flatBank, Row: 20, Col: 3, Bit: 64},
		{Shard: -1, Channel: -1, Bank: flatBank, Row: 20, Col: 3, Bit: 70},
	}}))
	for attempt := 0; attempt < 2; attempt++ {
		err := s.issueErr(Command{Kind: CmdRD, BG: 1, Bank: 2, Col: 3})
		var ue *UncorrectableError
		if !errors.As(err, &ue) {
			t.Fatalf("attempt %d: error is %T (%v), want *UncorrectableError", attempt, err, err)
		}
		if ue.Channel != 0 || ue.Bank != flatBank || ue.Row != 20 || ue.Col != 3 {
			t.Fatalf("attempt %d: error fields %+v", attempt, ue)
		}
	}
	if got := s.p.Stats().ECCUncorrectable; got != 2 {
		t.Errorf("uncorrectable count = %d, want 2 (stuck cell persists)", got)
	}
}

func TestECCCleanPathNoFalsePositives(t *testing.T) {
	s := newTestPCH(t, eccConfig())
	s.issue(Command{Kind: CmdACT, BG: 2, Bank: 1, Row: 8})
	for col := uint32(0); col < 8; col++ {
		data := bytes.Repeat([]byte{byte(col), ^byte(col)}, 16)
		s.issue(Command{Kind: CmdWR, BG: 2, Bank: 1, Col: col, Data: data})
		res := s.issue(Command{Kind: CmdRD, BG: 2, Bank: 1, Col: col})
		if !bytes.Equal(res.Data, data) {
			t.Fatalf("col %d: %x", col, res.Data)
		}
	}
	st := s.p.Stats()
	if st.ECCCorrected != 0 || st.ECCUncorrectable != 0 {
		t.Errorf("clean traffic produced ECC events: %+v", st)
	}
}

func TestECCUntouchedRowsReadClean(t *testing.T) {
	// Never-written rows are all zero with zero parity — a valid codeword.
	s := newTestPCH(t, eccConfig())
	s.issue(Command{Kind: CmdACT, BG: 3, Bank: 3, Row: 123})
	res := s.issue(Command{Kind: CmdRD, BG: 3, Bank: 3, Col: 9})
	if !bytes.Equal(res.Data, make([]byte, 32)) {
		t.Fatalf("fresh row = %x", res.Data)
	}
}

func TestInjectBitErrorValidation(t *testing.T) {
	s := newTestPCH(t, eccConfig())
	if err := s.p.InjectBitError(0, 0, 0, 0, 256); err == nil {
		t.Error("out-of-range bit accepted")
	}
	cfg := PIMHBMConfig(1000)
	cfg.Functional = false
	d := MustNewDevice(cfg)
	if err := d.PCH(0).InjectBitError(0, 0, 0, 0, 0); err == nil {
		t.Error("fault injection on a timing-only device accepted")
	}
}

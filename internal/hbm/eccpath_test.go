package hbm

import (
	"bytes"
	"testing"
)

func eccConfig() Config {
	cfg := PIMHBMConfig(1000)
	cfg.ECC = true
	return cfg
}

func TestECCValidation(t *testing.T) {
	cfg := eccConfig()
	cfg.Functional = false
	if err := cfg.Validate(); err == nil {
		t.Error("ECC on a timing-only device accepted")
	}
	if err := eccConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestECCSingleBitCorrectedAndScrubbed(t *testing.T) {
	s := newTestPCH(t, eccConfig())
	payload := bytes.Repeat([]byte{0xA5, 0x3C}, 16)
	s.issue(Command{Kind: CmdACT, BG: 1, Bank: 2, Row: 10})
	s.issue(Command{Kind: CmdWR, BG: 1, Bank: 2, Col: 4, Data: payload})

	if err := s.p.InjectBitError(1, 2, 10, 4, 77); err != nil {
		t.Fatal(err)
	}
	res := s.issue(Command{Kind: CmdRD, BG: 1, Bank: 2, Col: 4})
	if !bytes.Equal(res.Data, payload) {
		t.Fatalf("corrected read = %x", res.Data)
	}
	if got := s.p.Stats().ECCCorrected; got != 1 {
		t.Errorf("corrected count = %d", got)
	}
	// The scrub rewrote the array: a second read is clean.
	res = s.issue(Command{Kind: CmdRD, BG: 1, Bank: 2, Col: 4})
	if !bytes.Equal(res.Data, payload) {
		t.Fatalf("post-scrub read = %x", res.Data)
	}
	if got := s.p.Stats().ECCCorrected; got != 1 {
		t.Errorf("scrub did not stick: corrected count = %d", got)
	}
}

func TestECCDoubleBitRejected(t *testing.T) {
	s := newTestPCH(t, eccConfig())
	payload := make([]byte, 32)
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 3})
	s.issue(Command{Kind: CmdWR, BG: 0, Bank: 0, Col: 0, Data: payload})
	// Two flips in the same 64-bit word.
	if err := s.p.InjectBitError(0, 0, 3, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.p.InjectBitError(0, 0, 3, 0, 17); err != nil {
		t.Fatal(err)
	}
	if err := s.issueErr(Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 0}); err == nil {
		t.Fatal("poisoned data forwarded silently")
	}
	if got := s.p.Stats().ECCUncorrectable; got != 1 {
		t.Errorf("uncorrectable count = %d", got)
	}
}

func TestECCCleanPathNoFalsePositives(t *testing.T) {
	s := newTestPCH(t, eccConfig())
	s.issue(Command{Kind: CmdACT, BG: 2, Bank: 1, Row: 8})
	for col := uint32(0); col < 8; col++ {
		data := bytes.Repeat([]byte{byte(col), ^byte(col)}, 16)
		s.issue(Command{Kind: CmdWR, BG: 2, Bank: 1, Col: col, Data: data})
		res := s.issue(Command{Kind: CmdRD, BG: 2, Bank: 1, Col: col})
		if !bytes.Equal(res.Data, data) {
			t.Fatalf("col %d: %x", col, res.Data)
		}
	}
	st := s.p.Stats()
	if st.ECCCorrected != 0 || st.ECCUncorrectable != 0 {
		t.Errorf("clean traffic produced ECC events: %+v", st)
	}
}

func TestECCUntouchedRowsReadClean(t *testing.T) {
	// Never-written rows are all zero with zero parity — a valid codeword.
	s := newTestPCH(t, eccConfig())
	s.issue(Command{Kind: CmdACT, BG: 3, Bank: 3, Row: 123})
	res := s.issue(Command{Kind: CmdRD, BG: 3, Bank: 3, Col: 9})
	if !bytes.Equal(res.Data, make([]byte, 32)) {
		t.Fatalf("fresh row = %x", res.Data)
	}
}

func TestInjectBitErrorValidation(t *testing.T) {
	s := newTestPCH(t, eccConfig())
	if err := s.p.InjectBitError(0, 0, 0, 0, 256); err == nil {
		t.Error("out-of-range bit accepted")
	}
	cfg := PIMHBMConfig(1000)
	cfg.Functional = false
	d := MustNewDevice(cfg)
	if err := d.PCH(0).InjectBitError(0, 0, 0, 0, 0); err == nil {
		t.Error("fault injection on a timing-only device accepted")
	}
}

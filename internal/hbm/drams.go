package hbm

// Other standard DRAM families. Section III opens with: "Although it is
// illustrated based on HBM2 in this paper, it is applicable to any
// standard DRAM such as DDR, LPDDR, and GDDR DRAM with a few changes."
// These presets are representative JEDEC-class configurations of two such
// families with PIM units at the bank I/O boundary; the rest of the stack
// (ISA, execution units, runtime, BLAS) is geometry-agnostic and runs on
// them unchanged — which is the point.

// GDDR6Timing returns representative GDDR6 timing at the given command
// clock in MHz (the CA clock; data runs much faster on WCK). Values
// follow JESD250-class parts.
func GDDR6Timing(mhz int) Timing {
	t := Timing{
		TCKps: 1000000 / mhz,
		BL:    16, // BL16 on a 16-bit channel moves 32 bytes
		RCD:   epsRound(18, mhz),
		RP:    epsRound(18, mhz),
		RAS:   epsRound(32, mhz),
		RC:    epsRound(50, mhz),
		RL:    epsRound(18, mhz),
		WL:    epsRound(6, mhz),
		CCDS:  2,
		CCDL:  4,
		RRDS:  epsRound(5, mhz),
		RRDL:  epsRound(7, mhz),
		FAW:   epsRound(22, mhz),
		WR:    epsRound(15, mhz),
		RTP:   epsRound(6, mhz),
		WTRS:  epsRound(4, mhz),
		WTRL:  epsRound(8, mhz),
		RTW:   epsRound(9, mhz),
		REFI:  epsRound(3900, mhz),
		RFC:   epsRound(280, mhz),
	}
	return t
}

// LPDDR5Timing returns representative LPDDR5 timing at the given command
// clock in MHz (JESD209-5-class).
func LPDDR5Timing(mhz int) Timing {
	t := Timing{
		TCKps: 1000000 / mhz,
		BL:    8, // BL16 on x16 halves; modeled as 8 beats of 32 bits
		RCD:   epsRound(18, mhz),
		RP:    epsRound(21, mhz),
		RAS:   epsRound(42, mhz),
		RC:    epsRound(63, mhz),
		RL:    epsRound(20, mhz),
		WL:    epsRound(10, mhz),
		CCDS:  4,
		CCDL:  8,
		RRDS:  epsRound(7, mhz),
		RRDL:  epsRound(10, mhz),
		FAW:   epsRound(30, mhz),
		WR:    epsRound(18, mhz),
		RTP:   epsRound(7, mhz),
		WTRS:  epsRound(6, mhz),
		WTRL:  epsRound(12, mhz),
		RTW:   epsRound(12, mhz),
		REFI:  epsRound(3900, mhz),
		RFC:   epsRound(380, mhz),
	}
	return t
}

// epsRound converts nanoseconds to cycles at mhz, rounding up.
func epsRound(ns, mhz int) int { return (ns*mhz + 999) / 1000 }

// GDDR6PIMConfig models a GDDR6 accelerator-in-memory part (the class
// the paper's related work calls Newton/AiM): two channels per device,
// 16 banks per channel, one PIM unit per bank.
func GDDR6PIMConfig(mhz int) Config {
	return Config{
		PseudoChannels: 2,
		BankGroups:     4,
		BanksPerGroup:  4,
		Rows:           8192,
		RowBytes:       2048,
		AccessBytes:    32,
		Timing:         GDDR6Timing(mhz),
		PIMUnits:       16, // one per bank
		Functional:     true,
	}
}

// LPDDR5PIMConfig models a mobile PIM part: one channel per die, 16
// banks, one PIM unit per four banks (tighter area budget).
func LPDDR5PIMConfig(mhz int) Config {
	return Config{
		PseudoChannels: 1,
		BankGroups:     4,
		BanksPerGroup:  4,
		Rows:           16384,
		RowBytes:       2048,
		AccessBytes:    32,
		Timing:         LPDDR5Timing(mhz),
		PIMUnits:       4,
		Functional:     true,
	}
}

package hbm

import "fmt"

// Variant selects the PIM microarchitecture evaluated in Fig. 14's design
// space exploration on top of the baseline product configuration.
type Variant uint8

const (
	// VariantBase is the fabricated product: one PIM unit per two banks,
	// single bank access per instruction, separate RD/WR datapaths.
	VariantBase Variant = iota
	// Variant2X doubles the PIM resources (one unit per bank and twice the
	// GRF), doubling on-chip compute bandwidth and the AAM reorder window
	// at a 24% die-size cost (PIM-HBM-2x).
	Variant2X
	// Variant2BA lets one PIM instruction read the even and odd banks
	// simultaneously, supplying two bank operands per command at a 60%
	// power premium (PIM-HBM-2BA).
	Variant2BA
	// VariantSRW overlaps a column WR with a column RD so an instruction
	// can take one operand from the write datapath and one from the bank
	// (PIM-HBM-SRW).
	VariantSRW
)

var variantNames = [...]string{"PIM-HBM", "PIM-HBM-2x", "PIM-HBM-2BA", "PIM-HBM-SRW"}

func (v Variant) String() string {
	if int(v) < len(variantNames) {
		return variantNames[v]
	}
	return fmt.Sprintf("Variant(%d)", uint8(v))
}

// Config describes one HBM2 or PIM-HBM device (stack).
type Config struct {
	PseudoChannels int // per device (16 for HBM2)
	BankGroups     int // per pseudo channel (4)
	BanksPerGroup  int // (4)
	Rows           int // rows per bank (includes the reserved PIM_CONF rows)
	RowBytes       int // row-buffer size (2048 for HBM2 pseudo channels)
	AccessBytes    int // bytes per column access (32: 256 bits)

	Timing Timing

	// PIM configuration. PIMUnits is the number of PIM execution units per
	// pseudo channel (8 in the product: one per two banks); 0 models a
	// plain HBM2 device. Variant selects a Fig. 14 DSE microarchitecture.
	PIMUnits int
	Variant  Variant

	// Functional enables data storage and real FP16 execution. When false
	// the device is timing-only: commands advance clocks and counters but
	// move no bytes, which large benchmark sweeps use.
	Functional bool

	// ECC enables the on-die SEC-DED engine of the HBM3-generation design
	// (Section VIII): every 32-byte bank access is checked and corrected
	// in both host and PIM modes. Functional mode only.
	ECC bool
}

// HBM2Config returns the plain HBM2 device of the paper's baseline system
// at the given memory clock (MHz).
func HBM2Config(mhz int) Config {
	return Config{
		PseudoChannels: 16,
		BankGroups:     4,
		BanksPerGroup:  4,
		Rows:           8192, // 16MB banks: 4 x 8Gb dies = 4 GiB per stack
		RowBytes:       2048,
		AccessBytes:    32,
		Timing:         HBM2Timing(mhz),
		PIMUnits:       0,
		Functional:     true,
	}
}

// PIMHBMConfig returns the fabricated PIM-HBM device: identical timing and
// external behaviour to HBM2 (a drop-in replacement), with 8 PIM units per
// pseudo channel and half the sub-arrays (half the rows) to make floorplan
// room for them (Section VI).
func PIMHBMConfig(mhz int) Config {
	c := HBM2Config(mhz)
	c.Rows = 4096 // half the sub-arrays make room for the PIM units
	c.PIMUnits = 8
	return c
}

// Banks returns the number of banks per pseudo channel.
func (c Config) Banks() int { return c.BankGroups * c.BanksPerGroup }

// ColumnsPerRow returns the number of column addresses per row.
func (c Config) ColumnsPerRow() int { return c.RowBytes / c.AccessBytes }

// BankBytes returns the capacity of one bank.
func (c Config) BankBytes() int64 { return int64(c.Rows) * int64(c.RowBytes) }

// DeviceBytes returns the capacity of the whole device.
func (c Config) DeviceBytes() int64 {
	return c.BankBytes() * int64(c.Banks()) * int64(c.PseudoChannels)
}

// OffChipGBps returns the peak off-chip I/O bandwidth of the device in
// GB/s: 64 data bits per pseudo channel at double data rate.
func (c Config) OffChipGBps() float64 {
	freqGHz := 1000.0 / float64(c.Timing.TCKps)
	pinGbps := 2 * freqGHz
	return pinGbps * 64 / 8 * float64(c.PseudoChannels)
}

// OnChipGBps returns the peak on-chip compute bandwidth exposed to the PIM
// units: each column command moves AccessBytes per operating bank (one
// bank per PIM unit) every tCCD_L.
func (c Config) OnChipGBps() float64 {
	if c.PIMUnits == 0 {
		return 0
	}
	units := c.PIMUnits
	bytesPerCmd := float64(units * c.AccessBytes)
	if c.Variant == Variant2BA {
		bytesPerCmd *= 2
	}
	secPerCmd := float64(c.Timing.CCDL) * float64(c.Timing.TCKps) * 1e-12
	return bytesPerCmd / secPerCmd * float64(c.PseudoChannels) / 1e9
}

// AAMWindow is the number of arithmetic PIM instructions that may execute
// between ordering fences: limited by the GRF depth (Section VII-B).
func (c Config) AAMWindow() int {
	if c.Variant == Variant2X {
		return 2 * 8
	}
	return 8
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	switch {
	case c.PseudoChannels <= 0 || c.BankGroups <= 0 || c.BanksPerGroup <= 0:
		return fmt.Errorf("hbm: non-positive geometry")
	case c.RowBytes <= 0 || c.AccessBytes <= 0 || c.RowBytes%c.AccessBytes != 0:
		return fmt.Errorf("hbm: row %dB not a multiple of access %dB", c.RowBytes, c.AccessBytes)
	case c.Rows <= NumConfRows:
		return fmt.Errorf("hbm: %d rows leave no space beside the %d PIM_CONF rows", c.Rows, NumConfRows)
	case c.PIMUnits < 0 || (c.PIMUnits > 0 && c.Banks()%c.PIMUnits != 0):
		return fmt.Errorf("hbm: %d PIM units do not divide %d banks", c.PIMUnits, c.Banks())
	case c.PIMUnits == 0 && c.Variant != VariantBase:
		return fmt.Errorf("hbm: DSE variant on a non-PIM device")
	case c.ECC && !c.Functional:
		return fmt.Errorf("hbm: the ECC engine needs a functional device")
	case c.ECC && c.AccessBytes%8 != 0:
		return fmt.Errorf("hbm: ECC needs 64-bit-aligned accesses")
	}
	return nil
}

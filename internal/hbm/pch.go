package hbm

import "fmt"

// Mode is the operating mode of a pseudo channel (Section III-B, Fig. 3).
type Mode uint8

const (
	ModeSB    Mode = iota // single-bank: standard DRAM behaviour
	ModeAB                // all-bank: commands broadcast to all banks
	ModeABPIM             // all-bank PIM: column commands trigger PIM instructions
)

var modeNames = [...]string{"SB", "AB", "AB-PIM"}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// PIM configuration space: the top NumConfRows rows of every bank are
// reserved (PIM CONF, the gray region of Fig. 3). The device driver keeps
// application data out of them.
const NumConfRows = 4

// RegSpace identifies which PIM register file a configuration-row access
// targets.
type RegSpace uint8

const (
	RegMode RegSpace = iota // mode row: ABMR / SBMR handshakes + PIM_OP_MODE
	RegCRF                  // instruction buffer
	RegGRF                  // vector registers
	RegSRF                  // scalar registers
)

// Mode-row column assignments.
const (
	ColPIMOpMode = 2 // WR with data[0]&1 enters/exits AB-PIM mode
)

// Conf-row placement within a bank.
func (c Config) ModeRow() uint32 { return uint32(c.Rows - 1) }
func (c Config) CRFRow() uint32  { return uint32(c.Rows - 2) }
func (c Config) GRFRow() uint32  { return uint32(c.Rows - 3) }
func (c Config) SRFRow() uint32  { return uint32(c.Rows - 4) }

// confSpace maps a row to its register space, or ok=false for normal rows.
// Plain HBM2 devices have no PIM configuration space: every row is an
// ordinary array row. Pointer receiver with the Mode/CRF/GRF/SRF row
// arithmetic inlined: it runs on every column command, where the value
// receivers' Config copies dominated the timing-only profile.
func (c *Config) confSpace(row uint32) (RegSpace, bool) {
	if c.PIMUnits == 0 {
		return 0, false
	}
	switch top := uint32(c.Rows); row {
	case top - 1: // ModeRow
		return RegMode, true
	case top - 2: // CRFRow
		return RegCRF, true
	case top - 3: // GRFRow
		return RegGRF, true
	case top - 4: // SRFRow
		return RegSRF, true
	}
	return 0, false
}

// Mode-transition handshake banks: ACT+PRE on the mode row of bank group
// 0, bank 0 enters AB mode (the ABMR address); on bank 1 it returns to SB
// (SBMR). The PIM device driver reserves these addresses (Section V-A).
const (
	ABMRBank = 0
	SBMRBank = 1

	abmrBank = ABMRBank
	sbmrBank = SBMRBank
)

// BankAccess lets an attached PIM executor move data to and from the row
// buffers of the banks its units sit between. The row is implicit: the
// currently open row of the addressed bank.
type BankAccess interface {
	// ReadBank copies the 32-byte block at the open row's column col of
	// bank bankIdx (a flat index, bg*BanksPerGroup+bank) into buf.
	ReadBank(bankIdx int, col uint32, buf []byte) error
	// WriteBank stores data at the open row's column col of bank bankIdx.
	WriteBank(bankIdx int, col uint32, data []byte) error
}

// BankAccessReplicator is the bulk-accounting extension of BankAccess.
// In timing-only mode every PIM unit of a channel executes the same
// microkernel slot against banks in the same state (broadcast column
// commands require all banks active, and register broadcasts give every
// unit identical control state), so an executor may step one
// representative unit and account the remaining units' identical bank
// traffic in one call instead of replaying it. Implementations bump the
// same counters ReadBank/WriteBank would have.
type BankAccessReplicator interface {
	// ReplicateBankAccess accounts `times` further copies of an access
	// pattern of `reads` bank reads and `writes` bank writes.
	ReplicateBankAccess(reads, writes, times int64)
}

// TriggerContext describes one AB-PIM column command to the executor.
type TriggerContext struct {
	Kind    CmdKind // CmdRD or CmdWR
	BankSel int     // 0: even banks of each pair, 1: odd banks
	Row     uint32  // the open row (implicit operand row address)
	Col     uint32  // the triggering column address
	WrData  []byte  // host payload on the write datapath (CmdWR only)
	Access  BankAccess
	Variant Variant
	Cycle   int64 // issue cycle of the triggering command (observability)
	// Functional mirrors Config.Functional: when false the executor should
	// sequence instructions (and touch banks for the stat counters) but
	// skip the FP16 math.
	Functional bool
}

// TriggerInfo reports what the executor did for one trigger.
type TriggerInfo struct {
	Instructions int // instructions executed across all units
	Arithmetic   int // of which arithmetic (FPU active)
	DataMoves    int // of which MOV/FILL (register datapath active)
}

// PIMExecutor is the execution layer attached to a pseudo channel. The pim
// package provides the implementation; the hbm package only defines the
// contract so the device model stays independent of the datapath.
type PIMExecutor interface {
	// RegisterWrite stores a 32-byte block into unit's register space.
	RegisterWrite(unit int, space RegSpace, col uint32, data []byte) error
	// RegisterRead loads a 32-byte block from unit's register space.
	RegisterRead(unit int, space RegSpace, col uint32, buf []byte) error
	// Trigger executes the next PIM instruction on every unit in lock
	// step, in response to one AB-PIM column command. The context is
	// only valid for the duration of the call (the device reuses it).
	Trigger(ctx *TriggerContext) (TriggerInfo, error)
	// ResetPPC rewinds all units' program counters (AB-PIM entry).
	ResetPPC()
}

// PseudoChannel models one HBM2 pseudo channel: 16 banks in 4 bank groups
// behind a 64-bit data path, plus the PIM mode logic.
type PseudoChannel struct {
	cfg   *Config
	id    int    // channel index within the device (labels ECC errors)
	banks []bank // flat: bg*BanksPerGroup + bank
	mode  Mode

	exec  PIMExecutor
	fault ReadFault // nil: no injection (one pointer compare per readout)

	// Channel- and group-level timing state.
	colAllowedS int64   // next column under tCCD_S (channel-wide)
	colAllowedL []int64 // next column per bank group under tCCD_L
	wrAllowed   int64   // RD->WR turnaround
	rdAllowedS  int64   // WR->RD turnaround, different bank group
	rdAllowedL  []int64 // WR->RD turnaround, same bank group
	actWindow   faw     // tFAW tracking
	rrdAllowed  int64   // tRRD_S
	rrdAllowedL []int64 // tRRD_L per bank group
	busyUntil   int64   // refresh blackout

	// Incrementally maintained timing aggregates (the event-driven core).
	// Broadcast legality used to scan all banks on every broadcast command;
	// these running maxima make it O(1). Every bank timer is monotonically
	// nondecreasing (all raises go through maxi64), so the all-bank maxima
	// only need updating at the handful of raise sites. earliestBrute keeps
	// the scan as a debug oracle; SetTimingCrossCheck makes every legality
	// verdict compare the two.
	activeBanks int   // banks currently in bankActive state
	aggACT      int64 // max over all banks of actAllowed
	aggRD       int64 // max over all banks of rdAllowed
	aggWR       int64 // max over all banks of wrAllowed
	// aggPre is the max effective preAllowed over *active* banks. Unlike
	// the all-bank maxima it shrinks when a bank leaves the active set, so
	// a single-bank PRE that retires a potential max holder marks it dirty
	// and the next broadcast-PRE/PREA legality check rescans (rare).
	aggPre   int64
	preDirty bool
	// preFloor is the precharge fence a broadcast column command imposes on
	// every bank, stored once instead of written into every bank. Broadcast
	// columns require all banks active; a bank that later precharges (at a
	// cycle >= preFloor, by PRE legality) and re-activates lands at
	// preAllowed >= preFloor+tRP+tRAS, so folding the floor into every
	// preAllowed read is exact without per-bank writes.
	preFloor int64
	// Bank-group aggregates and floors for the tCCD_L / tWTR_L arrays:
	// aggColL/aggRdL track the maxima raised by single-bank columns, while
	// broadcast raises live once in colAllowedS (same value, so it already
	// covers every group) and rdFloorL (folded into rdAllowedL reads).
	aggColL  int64
	aggRdL   int64
	rdFloorL int64

	// checkTiming arms the aggregate-vs-brute-force oracle cross-check on
	// every legality verdict (randomized property tests; panics on drift).
	checkTiming bool

	stats   Stats
	bankOps []BankOps // per-bank command observations (utilization balance)
	// bcastOps counts broadcast (AB/AB-PIM) commands once instead of
	// touching all 16 bankOps entries per command; a broadcast reaches
	// every bank equally, so BankOps() folds it back in exactly.
	bcastOps BankOps

	// Mode residency: cycles spent in each operating mode, attributed at
	// mode-switch command issue cycles.
	modeSince  int64
	modeCycles [3]int64

	// Reusable scratch so the column-command hot path allocates nothing.
	// colBuf backs IssueResult.Data (valid only until the next Issue, see
	// the IssueResult contract); regBuf absorbs register reads from units
	// beyond the first, whose data never reaches the I/O mux; allBanks is
	// the 0..Banks-1 index slice broadcast register accesses iterate;
	// oneBank holds the single index of a single-bank register access.
	colBuf   []byte
	regBuf   []byte
	allBanks []int
	oneBank  [1]int

	// trig is the reusable per-trigger context handed to the PIM executor
	// (by pointer, so the per-command hot path copies no structs). Its
	// constant fields (Access, Variant, Functional) are filled once.
	trig TriggerContext

	// Address-range limits precomputed off Config so the per-command
	// addrCheck performs no division (RowBytes/AccessBytes).
	numRows uint32
	numCols uint32
}

// BankOps counts the commands one bank observed: its demand profile for
// bank-utilization metrics. Broadcast (AB/AB-PIM) commands count into
// every bank, exactly as every bank's row decoder and IOSA fire.
type BankOps struct {
	ACT int64
	RD  int64
	WR  int64
}

// newPCH builds pseudo channel id for cfg.
func newPCH(cfg *Config, id int) *PseudoChannel {
	p := &PseudoChannel{
		cfg:         cfg,
		id:          id,
		banks:       make([]bank, cfg.Banks()),
		colAllowedL: make([]int64, cfg.BankGroups),
		rdAllowedL:  make([]int64, cfg.BankGroups),
		rrdAllowedL: make([]int64, cfg.BankGroups),
		bankOps:     make([]BankOps, cfg.Banks()),
		colBuf:      make([]byte, cfg.AccessBytes),
		regBuf:      make([]byte, cfg.AccessBytes),
		allBanks:    make([]int, cfg.Banks()),
	}
	for i := range p.allBanks {
		p.allBanks[i] = i
	}
	p.trig.Access = (*pchBankAccess)(p)
	p.trig.Variant = cfg.Variant
	p.trig.Functional = cfg.Functional
	p.numRows = uint32(cfg.Rows)
	p.numCols = uint32(cfg.RowBytes / cfg.AccessBytes)
	// Seed the four-activate window in the distant past so the first four
	// ACTs are unconstrained.
	for i := range p.actWindow.times {
		p.actWindow.times[i] = -(1 << 40)
	}
	return p
}

// AttachPIM connects the execution layer. It must be called before any
// AB-PIM activity on a PIM-enabled configuration.
func (p *PseudoChannel) AttachPIM(e PIMExecutor) { p.exec = e }

// AttachFault connects a fault injector to the readout path (nil
// detaches it). With no injector attached the read path is unchanged.
func (p *PseudoChannel) AttachFault(f ReadFault) { p.fault = f }

// Mode returns the current operating mode.
func (p *PseudoChannel) Mode() Mode { return p.mode }

// OpenRow reports the open row of a bank, or ok == false when the bank is
// precharged. Controllers use this to track row-buffer state without
// shadowing it.
func (p *PseudoChannel) OpenRow(bg, bank int) (row uint32, ok bool) {
	b := &p.banks[p.flat(bg, bank)]
	if b.state != bankActive {
		return 0, false
	}
	return b.openRow, true
}

// Stats returns the accumulated counters.
func (p *PseudoChannel) Stats() Stats { return p.stats }

// ResetStats zeroes the counters.
func (p *PseudoChannel) ResetStats() { p.stats = Stats{} }

// BankOps returns a copy of the per-bank command counts (flat bank index),
// with broadcast commands — accumulated once in bcastOps — folded into
// every bank, exactly as every bank's row decoder and IOSA fired.
func (p *PseudoChannel) BankOps() []BankOps {
	out := append([]BankOps(nil), p.bankOps...)
	if p.bcastOps != (BankOps{}) {
		for i := range out {
			out[i].ACT += p.bcastOps.ACT
			out[i].RD += p.bcastOps.RD
			out[i].WR += p.bcastOps.WR
		}
	}
	return out
}

// ModeResidency returns the cycles spent in each operating mode (indexed
// by Mode) up to cycle now, including the currently open residency span.
func (p *PseudoChannel) ModeResidency(now int64) [3]int64 {
	out := p.modeCycles
	if now > p.modeSince {
		out[p.mode] += now - p.modeSince
	}
	return out
}

// switchMode moves the channel to mode m at cycle at, closing the
// residency span of the previous mode.
func (p *PseudoChannel) switchMode(m Mode, at int64) {
	if at > p.modeSince {
		p.modeCycles[p.mode] += at - p.modeSince
		p.modeSince = at
	}
	p.mode = m
	p.stats.ModeSwitches++
}

// flat returns the flat bank index for a command address.
func (p *PseudoChannel) flat(bg, b int) int { return bg*p.cfg.BanksPerGroup + b }

// addrCheck validates cmd's addresses against the precomputed geometry
// limits; Config.addrCheck recomputes a division per column command, so
// the per-command path uses the cached limits and only delegates to the
// Config method to format the (identical) error.
func (p *PseudoChannel) addrCheck(cmd *Command) error {
	switch cmd.Kind {
	case CmdACT:
		if cmd.Row >= p.numRows {
			return p.cfg.addrCheck(cmd)
		}
	case CmdRD, CmdWR:
		if cmd.Col >= p.numCols {
			return p.cfg.addrCheck(cmd)
		}
	}
	switch cmd.Kind {
	case CmdACT, CmdPRE, CmdRD, CmdWR:
		if uint(cmd.BG) >= uint(p.cfg.BankGroups) || uint(cmd.Bank) >= uint(p.cfg.BanksPerGroup) {
			return p.cfg.addrCheck(cmd)
		}
	}
	return nil
}

// unitFor maps a flat bank index to its PIM unit.
func (p *PseudoChannel) unitFor(bankIdx int) int {
	banksPerUnit := p.cfg.Banks() / p.cfg.PIMUnits
	return bankIdx / banksPerUnit
}

// EarliestIssue returns the earliest cycle >= now at which cmd may legally
// issue. It does not change state and returns an error for commands that
// are illegal regardless of timing (bad address, closed row, wrong mode).
func (p *PseudoChannel) EarliestIssue(cmd Command, now int64) (int64, error) {
	at, _, err := p.earliest(&cmd, now)
	if p.checkTiming {
		p.crossCheck(cmd, now, at, err)
	}
	return at, err
}

// earliest is EarliestIssue's implementation; it additionally reports
// whether the command broadcasts, so issue paths that just computed the
// legality verdict can reuse it without re-deriving the handshake check.
func (p *PseudoChannel) earliest(cmd *Command, now int64) (int64, bool, error) {
	if err := p.addrCheck(cmd); err != nil {
		return 0, false, err
	}
	t := maxi64(now, p.busyUntil)
	tm := &p.cfg.Timing

	broadcast := p.mode != ModeSB && !p.isModeHandshake(cmd)

	switch cmd.Kind {
	case CmdACT:
		if broadcast {
			if cmd.Row >= uint32(p.cfg.Rows)-1 { // ModeRow() without the Config copy
				return 0, false, fmt.Errorf("hbm: broadcast ACT to the mode row is illegal")
			}
			return maxi64(t, p.aggACT), broadcast, nil
		}
		b := &p.banks[p.flat(cmd.BG, cmd.Bank)]
		if b.state == bankActive {
			return 0, false, fmt.Errorf("hbm: ACT to open bank bg%d b%d", cmd.BG, cmd.Bank)
		}
		t = maxi64(t, b.earliestACT())
		t = maxi64(t, p.rrdAllowed)
		t = maxi64(t, p.rrdAllowedL[cmd.BG])
		t = maxi64(t, p.actWindow.earliest(int64(tm.FAW)))
		return t, broadcast, nil

	case CmdPRE:
		if broadcast {
			return maxi64(t, p.aggPreNow()), broadcast, nil
		}
		b := &p.banks[p.flat(cmd.BG, cmd.Bank)]
		if b.state != bankActive {
			return 0, false, fmt.Errorf("hbm: PRE to idle bank bg%d b%d", cmd.BG, cmd.Bank)
		}
		return maxi64(t, maxi64(b.preAllowed, p.preFloor)), broadcast, nil

	case CmdPREA:
		return maxi64(t, p.aggPreNow()), broadcast, nil

	case CmdRD, CmdWR:
		t = maxi64(t, p.colAllowedS)
		if cmd.Kind == CmdWR {
			t = maxi64(t, p.wrAllowed)
		} else {
			t = maxi64(t, p.rdAllowedS)
		}
		if broadcast {
			if p.activeBanks != len(p.banks) {
				// Error path only: rescan to name the first idle bank.
				for i := range p.banks {
					if p.banks[i].state != bankActive {
						return 0, false, fmt.Errorf("hbm: broadcast %s with bank %d idle", cmd.Kind, i)
					}
				}
			}
			t = maxi64(t, p.aggColL)
			if cmd.Kind == CmdRD {
				t = maxi64(t, maxi64(p.aggRdL, p.rdFloorL))
				t = maxi64(t, p.aggRD)
			} else {
				t = maxi64(t, p.aggWR)
			}
			return t, broadcast, nil
		}
		t = maxi64(t, p.colAllowedL[cmd.BG])
		if cmd.Kind == CmdRD {
			t = maxi64(t, maxi64(p.rdAllowedL[cmd.BG], p.rdFloorL))
		}
		b := &p.banks[p.flat(cmd.BG, cmd.Bank)]
		if b.state != bankActive {
			return 0, false, fmt.Errorf("hbm: %s to idle bank bg%d b%d", cmd.Kind, cmd.BG, cmd.Bank)
		}
		return maxi64(t, b.earliestCol(cmd.Kind)), broadcast, nil

	case CmdREF:
		if p.activeBanks > 0 {
			// Error path only: rescan to name the first active bank.
			for i := range p.banks {
				if p.banks[i].state == bankActive {
					return 0, false, fmt.Errorf("hbm: REF with bank %d active", i)
				}
			}
		}
		return maxi64(t, p.aggACT), broadcast, nil
	}
	return 0, false, fmt.Errorf("hbm: unknown command kind %d", cmd.Kind)
}

// aggPreNow returns the maximum effective preAllowed over active banks,
// rescanning first when a single-bank PRE invalidated the running maximum.
func (p *PseudoChannel) aggPreNow() int64 {
	if p.preDirty {
		p.rescanAggPre()
	}
	return p.aggPre
}

// rescanAggPre recomputes aggPre exactly from per-bank state.
func (p *PseudoChannel) rescanAggPre() {
	var agg int64
	for i := range p.banks {
		if p.banks[i].state == bankActive {
			agg = maxi64(agg, maxi64(p.banks[i].preAllowed, p.preFloor))
		}
	}
	p.aggPre = agg
	p.preDirty = false
}

// earliestBrute recomputes earliest's verdict by scanning every bank and
// bank group — the pre-aggregate implementation kept as a debug oracle.
// Per-bank preAllowed reads fold in preFloor and per-group rdAllowedL
// reads fold in rdFloorL (broadcast raises live in the floors now); the
// tCCD_L raise of a broadcast column lives in colAllowedS, which the
// column cases already take. This is the ground truth the O(1) aggregate
// path must match, cycle for cycle and error for error.
func (p *PseudoChannel) earliestBrute(cmd *Command, now int64) (int64, bool, error) {
	if err := p.cfg.addrCheck(cmd); err != nil {
		return 0, false, err
	}
	t := maxi64(now, p.busyUntil)
	tm := &p.cfg.Timing

	broadcast := p.mode != ModeSB && !p.isModeHandshake(cmd)

	switch cmd.Kind {
	case CmdACT:
		if broadcast {
			if cmd.Row >= uint32(p.cfg.Rows)-1 {
				return 0, false, fmt.Errorf("hbm: broadcast ACT to the mode row is illegal")
			}
			for i := range p.banks {
				t = maxi64(t, p.banks[i].earliestACT())
			}
			return t, broadcast, nil
		}
		b := &p.banks[p.flat(cmd.BG, cmd.Bank)]
		if b.state == bankActive {
			return 0, false, fmt.Errorf("hbm: ACT to open bank bg%d b%d", cmd.BG, cmd.Bank)
		}
		t = maxi64(t, b.earliestACT())
		t = maxi64(t, p.rrdAllowed)
		t = maxi64(t, p.rrdAllowedL[cmd.BG])
		t = maxi64(t, p.actWindow.earliest(int64(tm.FAW)))
		return t, broadcast, nil

	case CmdPRE:
		if broadcast {
			for i := range p.banks {
				if p.banks[i].state == bankActive {
					t = maxi64(t, maxi64(p.banks[i].preAllowed, p.preFloor))
				}
			}
			return t, broadcast, nil
		}
		b := &p.banks[p.flat(cmd.BG, cmd.Bank)]
		if b.state != bankActive {
			return 0, false, fmt.Errorf("hbm: PRE to idle bank bg%d b%d", cmd.BG, cmd.Bank)
		}
		return maxi64(t, maxi64(b.preAllowed, p.preFloor)), broadcast, nil

	case CmdPREA:
		for i := range p.banks {
			if p.banks[i].state == bankActive {
				t = maxi64(t, maxi64(p.banks[i].preAllowed, p.preFloor))
			}
		}
		return t, broadcast, nil

	case CmdRD, CmdWR:
		t = maxi64(t, p.colAllowedS)
		if cmd.Kind == CmdWR {
			t = maxi64(t, p.wrAllowed)
		} else {
			t = maxi64(t, p.rdAllowedS)
		}
		if broadcast {
			for bg := range p.colAllowedL {
				t = maxi64(t, p.colAllowedL[bg])
				if cmd.Kind == CmdRD {
					t = maxi64(t, maxi64(p.rdAllowedL[bg], p.rdFloorL))
				}
			}
			for i := range p.banks {
				if p.banks[i].state != bankActive {
					return 0, false, fmt.Errorf("hbm: broadcast %s with bank %d idle", cmd.Kind, i)
				}
				t = maxi64(t, p.banks[i].earliestCol(cmd.Kind))
			}
			return t, broadcast, nil
		}
		t = maxi64(t, p.colAllowedL[cmd.BG])
		if cmd.Kind == CmdRD {
			t = maxi64(t, maxi64(p.rdAllowedL[cmd.BG], p.rdFloorL))
		}
		b := &p.banks[p.flat(cmd.BG, cmd.Bank)]
		if b.state != bankActive {
			return 0, false, fmt.Errorf("hbm: %s to idle bank bg%d b%d", cmd.Kind, cmd.BG, cmd.Bank)
		}
		return maxi64(t, b.earliestCol(cmd.Kind)), broadcast, nil

	case CmdREF:
		for i := range p.banks {
			if p.banks[i].state == bankActive {
				return 0, false, fmt.Errorf("hbm: REF with bank %d active", i)
			}
			t = maxi64(t, p.banks[i].earliestACT())
		}
		return t, broadcast, nil
	}
	return 0, false, fmt.Errorf("hbm: unknown command kind %d", cmd.Kind)
}

// NextTimerExpiry returns the earliest cycle strictly after now at which
// any timing constraint of this pseudo channel expires — the soonest
// moment a command blocked purely on timing could become legal. It
// returns now itself when every constraint has already expired (the
// channel is quiescent and only new commands can change its state).
// Controllers use it to jump their clock across dead cycles; it scans the
// bank array (it is a sleep-time query, not an issue-time one).
func (p *PseudoChannel) NextTimerExpiry(now int64) int64 {
	const horizon = int64(1) << 62
	next := horizon
	consider := func(t int64) {
		if t > now && t < next {
			next = t
		}
	}
	consider(p.busyUntil)
	consider(p.colAllowedS)
	consider(p.wrAllowed)
	consider(p.rdAllowedS)
	consider(p.rrdAllowed)
	consider(p.rdFloorL)
	consider(p.actWindow.earliest(int64(p.cfg.Timing.FAW)))
	for bg := range p.colAllowedL {
		consider(p.colAllowedL[bg])
		consider(p.rdAllowedL[bg])
		consider(p.rrdAllowedL[bg])
	}
	for i := range p.banks {
		b := &p.banks[i]
		consider(b.actAllowed)
		consider(b.rdAllowed)
		consider(b.wrAllowed)
		if b.state == bankActive {
			consider(maxi64(b.preAllowed, p.preFloor))
		}
	}
	if next == horizon {
		return now
	}
	return next
}

// SetTimingCrossCheck arms (or disarms) the debug oracle: every legality
// verdict computed from the incremental aggregates is re-derived by the
// brute-force bank scan and any disagreement panics. Test-only — it makes
// every command O(banks) again.
func (p *PseudoChannel) SetTimingCrossCheck(on bool) { p.checkTiming = on }

// crossCheck compares one aggregate verdict against the brute-force
// oracle. It must run before apply mutates state. It takes the command by
// value so the hot entry points' stack copies do not escape through the
// (cold, test-only) panic formatting.
func (p *PseudoChannel) crossCheck(cmd Command, now, at int64, err error) {
	bat, _, berr := p.earliestBrute(&cmd, now)
	switch {
	case (err == nil) != (berr == nil),
		err == nil && at != bat,
		err != nil && berr != nil && err.Error() != berr.Error():
		panic(fmt.Sprintf("hbm: timing aggregate mismatch for %s at cycle %d: aggregates say (%d, %v), brute force says (%d, %v)",
			cmd, now, at, err, bat, berr))
	}
}

// isModeHandshake reports whether cmd is part of the single-bank
// mode-transition handshake (ACT/PRE/WR on the mode row of bank group 0,
// bank 0 or 1).
func (p *PseudoChannel) isModeHandshake(cmd *Command) bool {
	if p.cfg.PIMUnits == 0 {
		return false
	}
	if cmd.BG != 0 || (cmd.Bank != abmrBank && cmd.Bank != sbmrBank) {
		return false
	}
	modeRow := uint32(p.cfg.Rows) - 1 // ModeRow() without the Config copy
	switch cmd.Kind {
	case CmdACT:
		return cmd.Row == modeRow
	case CmdPRE, CmdRD, CmdWR:
		b := &p.banks[p.flat(cmd.BG, cmd.Bank)]
		return b.state == bankActive && b.openRow == modeRow
	}
	return false
}

// Issue executes cmd at cycle `at`. `at` must be at or after the cycle
// EarliestIssue reports; Issue re-validates and errors otherwise, so a
// controller bug cannot silently violate timing.
func (p *PseudoChannel) Issue(cmd Command, at int64) (IssueResult, error) {
	earliest, broadcast, err := p.earliest(&cmd, at)
	if p.checkTiming {
		p.crossCheck(cmd, at, earliest, err)
	}
	if err != nil {
		return IssueResult{}, err
	}
	if at < earliest {
		return IssueResult{}, fmt.Errorf("hbm: %s issued at %d before earliest legal cycle %d", cmd, at, earliest)
	}
	res := IssueResult{Cycle: at}
	err = p.apply(&cmd, at, broadcast, &res)
	return res, err
}

// IssueEarliest issues *cmd at the earliest legal cycle at or after now —
// EarliestIssue's computation and Issue's execution in a single
// validation pass, filling *res in place. Controllers with no delay hook
// between scheduling and issue use it; the chosen cycle comes back in
// res.Cycle. The pointer forms keep the per-command fast path free of
// Command/IssueResult struct copies through the controller layers.
func (p *PseudoChannel) IssueEarliest(cmd *Command, now int64, res *IssueResult) error {
	at, broadcast, err := p.earliest(cmd, now)
	if p.checkTiming {
		p.crossCheck(*cmd, now, at, err)
	}
	if err != nil {
		*res = IssueResult{}
		return err
	}
	*res = IssueResult{Cycle: at}
	return p.apply(cmd, at, broadcast, res)
}

// apply executes an already-validated command at cycle at, filling res
// (pre-set to {Cycle: at}) in place — an out parameter, so the hot
// command path returns no multi-word structs through its call chain.
func (p *PseudoChannel) apply(cmd *Command, at int64, broadcast bool, res *IssueResult) error {
	tm := &p.cfg.Timing

	switch cmd.Kind {
	case CmdACT:
		if broadcast {
			for i := range p.banks {
				p.banks[i].activate(cmd.Row, at, tm)
			}
			// Every bank took the same raises; fold them into the running
			// maxima once, and recompute aggPre exactly (previously idle
			// banks rejoin the active set; broadcast ACT is rare).
			p.activeBanks = len(p.banks)
			p.aggACT = maxi64(p.aggACT, at+int64(tm.RC))
			p.aggRD = maxi64(p.aggRD, at+int64(tm.RCD))
			p.aggWR = maxi64(p.aggWR, at+int64(tm.RCD))
			p.rescanAggPre()
			p.bcastOps.ACT++
			p.stats.ABACT++
			return nil
		}
		b := &p.banks[p.flat(cmd.BG, cmd.Bank)]
		b.activate(cmd.Row, at, tm)
		p.activeBanks++ // earliest rejected ACT to an open bank
		p.aggACT = maxi64(p.aggACT, b.actAllowed)
		p.aggRD = maxi64(p.aggRD, b.rdAllowed)
		p.aggWR = maxi64(p.aggWR, b.wrAllowed)
		// A re-activated bank's preAllowed (>= precharge+tRP+tRAS) always
		// clears preFloor (<= its precharge cycle), so no floor fold here.
		p.aggPre = maxi64(p.aggPre, b.preAllowed)
		if !p.isModeHandshake(cmd) {
			// Handshake ACTs address the mode row, not the array; they
			// would skew per-bank utilization counts.
			p.bankOps[p.flat(cmd.BG, cmd.Bank)].ACT++
		}
		p.actWindow.record(at)
		p.rrdAllowed = maxi64(p.rrdAllowed, at+int64(tm.RRDS))
		p.rrdAllowedL[cmd.BG] = maxi64(p.rrdAllowedL[cmd.BG], at+int64(tm.RRDL))
		p.stats.ACT++
		return nil

	case CmdPRE:
		if broadcast {
			p.prechargeAll(at, tm, false)
			p.stats.ABPRE++
			return nil
		}
		idx := p.flat(cmd.BG, cmd.Bank)
		wasHandshake := p.isModeHandshake(cmd)
		b := &p.banks[idx]
		eff := maxi64(b.preAllowed, p.preFloor)
		b.precharge(at, tm)
		p.aggACT = maxi64(p.aggACT, b.actAllowed)
		p.activeBanks--
		if p.activeBanks == 0 {
			p.aggPre, p.preDirty = 0, false
		} else if eff >= p.aggPre {
			// This bank may have held the active-set maximum; recompute
			// lazily at the next broadcast-PRE/PREA legality check.
			p.preDirty = true
		}
		p.stats.PRE++
		if wasHandshake {
			p.completeHandshake(cmd.Bank, at)
		}
		return nil

	case CmdPREA:
		p.prechargeAll(at, tm, true)
		return nil

	case CmdRD, CmdWR:
		p.updateColumnTiming(cmd, at, broadcast)
		if broadcast {
			return p.issueBroadcastColumn(cmd, res)
		}
		return p.issueSBColumn(cmd, res)

	case CmdREF:
		until := at + int64(tm.RFC)
		for i := range p.banks {
			p.banks[i].blockUntil(until)
		}
		// REF legality required every bank idle, so aggPre (active banks
		// only) is untouched; the all-bank maxima take the blockUntil raise.
		p.aggACT = maxi64(p.aggACT, until)
		p.aggRD = maxi64(p.aggRD, until)
		p.aggWR = maxi64(p.aggWR, until)
		p.busyUntil = maxi64(p.busyUntil, until)
		p.stats.REF++
		return nil
	}
	return fmt.Errorf("hbm: unknown command kind %d", cmd.Kind)
}

// prechargeAll closes every active bank (broadcast PRE and PREA) and
// resets the active-set aggregates. countEach selects PREA's per-bank
// stats.PRE accounting over broadcast PRE's single ABPRE (counted by the
// caller).
func (p *PseudoChannel) prechargeAll(at int64, tm *Timing, countEach bool) {
	if p.activeBanks > 0 {
		for i := range p.banks {
			if p.banks[i].state == bankActive {
				p.banks[i].precharge(at, tm)
				if countEach {
					p.stats.PRE++
				}
			}
		}
		p.aggACT = maxi64(p.aggACT, at+int64(tm.RP))
		p.activeBanks = 0
	}
	p.aggPre, p.preDirty = 0, false
}

// updateColumnTiming applies bus occupancy and turnaround bookkeeping for
// a column command issued at cycle at.
func (p *PseudoChannel) updateColumnTiming(cmd *Command, at int64, broadcast bool) {
	tm := &p.cfg.Timing
	p.colAllowedS = maxi64(p.colAllowedS, at+int64(tm.CCDS))
	if broadcast {
		// All bank groups are occupied; the next column command of any kind
		// waits tCCD_L. The raise is identical for every group, so it is
		// stored once in colAllowedS (which every column case takes)
		// instead of written into each colAllowedL slot.
		p.colAllowedS = maxi64(p.colAllowedS, at+int64(tm.CCDL))
	} else {
		v := at + int64(tm.CCDL)
		p.colAllowedL[cmd.BG] = maxi64(p.colAllowedL[cmd.BG], v)
		p.aggColL = maxi64(p.aggColL, v)
	}
	if cmd.Kind == CmdRD {
		p.wrAllowed = maxi64(p.wrAllowed, at+int64(tm.RTW))
	} else {
		dataEnd := at + int64(tm.WL+tm.BL/2)
		p.rdAllowedS = maxi64(p.rdAllowedS, dataEnd+int64(tm.WTRS))
		if broadcast {
			// Same-group turnaround for every group: one floor write.
			p.rdFloorL = maxi64(p.rdFloorL, dataEnd+int64(tm.WTRL))
		} else {
			v := dataEnd + int64(tm.WTRL)
			p.rdAllowedL[cmd.BG] = maxi64(p.rdAllowedL[cmd.BG], v)
			p.aggRdL = maxi64(p.aggRdL, v)
		}
	}
}

// issueSBColumn performs a single-bank column access: either a normal data
// access through the I/O PHY or a PIM register access when the open row is
// in the configuration space.
func (p *PseudoChannel) issueSBColumn(cmd *Command, res *IssueResult) error {
	idx := p.flat(cmd.BG, cmd.Bank)
	b := &p.banks[idx]
	b.column(cmd.Kind, res.Cycle, &p.cfg.Timing)
	p.aggPre = maxi64(p.aggPre, b.preAllowed) // bank is active (legality)
	p.stats.OffChipBytes += int64(p.cfg.AccessBytes)
	if cmd.Kind == CmdRD {
		p.stats.RD++
		p.bankOps[idx].RD++
	} else {
		p.stats.WR++
		p.bankOps[idx].WR++
	}

	if space, ok := p.cfg.confSpace(b.openRow); ok {
		p.oneBank[0] = idx
		return p.registerAccess(cmd, res, space, p.oneBank[:])
	}

	// Normal array access.
	if cmd.Kind == CmdRD {
		p.stats.BankReads++
		if p.cfg.Functional {
			if err := p.bankReadData(b, idx, cmd.Col, p.colBuf); err != nil {
				return err
			}
			res.Data = p.colBuf
		}
		return nil
	}
	p.stats.BankWrites++
	if p.cfg.Functional {
		if err := p.bankWriteData(b, cmd.Col, cmd.Data); err != nil {
			return err
		}
	}
	return nil
}

// issueBroadcastColumn performs an AB or AB-PIM column access.
func (p *PseudoChannel) issueBroadcastColumn(cmd *Command, res *IssueResult) error {
	openRow := p.banks[0].openRow
	// Every bank takes the same precharge fence; it is stored once in the
	// channel-level preFloor (folded into every preAllowed read) instead
	// of written into all 16 banks — the hottest block of the timing-only
	// profile before the aggregate refactor.
	tm := &p.cfg.Timing
	var pre int64
	if cmd.Kind == CmdRD {
		pre = res.Cycle + int64(tm.RTP)
		p.bcastOps.RD++
		p.stats.ABRD++
	} else {
		pre = res.Cycle + int64(tm.WL+tm.BL/2+tm.WR)
		p.bcastOps.WR++
		p.stats.ABWR++
	}
	if pre > p.preFloor {
		p.preFloor = pre
	}
	if pre > p.aggPre { // all banks active: the fence joins the active max
		p.aggPre = pre
	}

	// Register space: broadcast to every PIM unit.
	if space, ok := p.cfg.confSpace(openRow); ok {
		return p.registerAccess(cmd, res, space, p.allBanks)
	}

	if p.mode == ModeABPIM {
		if p.exec == nil {
			return fmt.Errorf("hbm: AB-PIM column with no PIM executor attached")
		}
		// The reusable context's constant fields (Access, Variant,
		// Functional) were filled at construction.
		p.trig.Kind = cmd.Kind
		p.trig.BankSel = cmd.Bank & 1
		p.trig.Row = openRow
		p.trig.Col = cmd.Col
		p.trig.WrData = cmd.Data
		p.trig.Cycle = res.Cycle
		info, err := p.exec.Trigger(&p.trig)
		if err != nil {
			return err
		}
		if cmd.Kind == CmdWR {
			// A WR trigger still carries a 32-byte payload across the I/O
			// PHY (operand loading); an RD trigger moves nothing off chip.
			p.stats.OffChipBytes += int64(p.cfg.AccessBytes)
		}
		res.PIMSteps = info.Instructions
		p.stats.PIMInstr += int64(info.Instructions)
		p.stats.PIMArith += int64(info.Arithmetic)
		p.stats.PIMMove += int64(info.DataMoves)
		return nil
	}

	// Plain AB data access: a write broadcasts the payload to all banks
	// (how operands are replicated across banks); a read drives every
	// bank's IOSA but only bank 0's data reaches the I/O mux.
	p.stats.OffChipBytes += int64(p.cfg.AccessBytes)
	if cmd.Kind == CmdWR {
		p.stats.BankWrites += int64(len(p.banks))
		if p.cfg.Functional {
			for i := range p.banks {
				if err := p.bankWriteData(&p.banks[i], cmd.Col, cmd.Data); err != nil {
					return err
				}
			}
		}
		return nil
	}
	p.stats.BankReads += int64(len(p.banks))
	if p.cfg.Functional {
		if err := p.bankReadData(&p.banks[0], 0, cmd.Col, p.colBuf); err != nil {
			return err
		}
		res.Data = p.colBuf
	}
	return nil
}

// registerAccess routes a column command on a configuration row.
func (p *PseudoChannel) registerAccess(cmd *Command, res *IssueResult, space RegSpace, bankIdxs []int) error {
	if space == RegMode {
		if cmd.Kind == CmdWR && cmd.Col == ColPIMOpMode {
			return p.setPIMOpMode(len(cmd.Data) > 0 && cmd.Data[0]&1 == 1, res.Cycle)
		}
		// Other mode-row accesses read back zero / are ignored.
		if cmd.Kind == CmdRD && p.cfg.Functional {
			clear(p.colBuf)
			res.Data = p.colBuf
		}
		return nil
	}
	if p.cfg.PIMUnits == 0 || p.exec == nil {
		return fmt.Errorf("hbm: PIM register access on a device without PIM units")
	}
	var seen uint64 // unit-visited bitmask; PIMUnits <= Banks <= 64
	for _, idx := range bankIdxs {
		u := p.unitFor(idx)
		if seen&(1<<u) != 0 {
			continue
		}
		seen |= 1 << u
		switch cmd.Kind {
		case CmdWR:
			p.stats.RegWrites++
			if err := p.exec.RegisterWrite(u, space, cmd.Col, cmd.Data); err != nil {
				return err
			}
		case CmdRD:
			// Every unit drives its read, but only the first one's data
			// reaches the I/O mux; later units land in discard scratch.
			buf := p.colBuf
			if res.Data != nil {
				buf = p.regBuf
			}
			if err := p.exec.RegisterRead(u, space, cmd.Col, buf); err != nil {
				return err
			}
			if res.Data == nil {
				res.Data = buf
			}
		}
	}
	return nil
}

// setPIMOpMode handles the PIM_OP_MODE register (Fig. 3c).
func (p *PseudoChannel) setPIMOpMode(on bool, at int64) error {
	switch {
	case p.mode == ModeSB:
		return fmt.Errorf("hbm: PIM_OP_MODE write in SB mode; enter AB mode first")
	case on && p.mode == ModeAB:
		if p.cfg.PIMUnits == 0 {
			return fmt.Errorf("hbm: AB-PIM mode on a device without PIM units")
		}
		if p.exec == nil {
			return fmt.Errorf("hbm: AB-PIM mode with no PIM executor attached")
		}
		p.switchMode(ModeABPIM, at)
		p.exec.ResetPPC()
	case !on && p.mode == ModeABPIM:
		p.switchMode(ModeAB, at)
	}
	return nil
}

// completeHandshake finishes an ACT+PRE mode-transition sequence.
func (p *PseudoChannel) completeHandshake(bankAddr int, at int64) {
	switch {
	case bankAddr == abmrBank && p.mode == ModeSB:
		p.switchMode(ModeAB, at)
	case bankAddr == sbmrBank && p.mode != ModeSB:
		p.switchMode(ModeSB, at)
	}
}

// pchBankAccess adapts the pseudo channel to the BankAccess interface with
// stat accounting for PIM-side row-buffer traffic.
type pchBankAccess PseudoChannel

func (a *pchBankAccess) ReadBank(bankIdx int, col uint32, buf []byte) error {
	p := (*PseudoChannel)(a)
	if bankIdx < 0 || bankIdx >= len(p.banks) {
		return fmt.Errorf("hbm: bank index %d out of range", bankIdx)
	}
	b := &p.banks[bankIdx]
	if b.state != bankActive {
		return fmt.Errorf("hbm: PIM read from idle bank %d", bankIdx)
	}
	p.stats.BankReads++
	if p.cfg.Functional {
		return p.bankReadData(b, bankIdx, col, buf)
	}
	return nil
}

// ReplicateBankAccess implements BankAccessReplicator: in timing-only
// mode a bank access is exactly one counter bump (the data path is
// skipped), so replicating units [1, n) of a lockstep executor is pure
// arithmetic on the same counters.
func (a *pchBankAccess) ReplicateBankAccess(reads, writes, times int64) {
	p := (*PseudoChannel)(a)
	p.stats.BankReads += reads * times
	p.stats.BankWrites += writes * times
}

func (a *pchBankAccess) WriteBank(bankIdx int, col uint32, data []byte) error {
	p := (*PseudoChannel)(a)
	if bankIdx < 0 || bankIdx >= len(p.banks) {
		return fmt.Errorf("hbm: bank index %d out of range", bankIdx)
	}
	b := &p.banks[bankIdx]
	if b.state != bankActive {
		return fmt.Errorf("hbm: PIM write to idle bank %d", bankIdx)
	}
	p.stats.BankWrites++
	if p.cfg.Functional {
		return p.bankWriteData(b, col, data)
	}
	return nil
}

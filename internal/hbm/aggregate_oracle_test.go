package hbm

import (
	"math/rand"
	"testing"
)

// Property test for the incremental timing aggregates: with the
// cross-check armed, every legality verdict (cycle and error alike) the
// O(1) aggregate path produces is re-derived by the brute-force all-bank
// scan (earliestBrute), and any disagreement panics with the command and
// both verdicts. The fuzzer drives thousands of short command streams
// through every mode (SB, AB, AB-PIM via the mode-row handshake), under
// refresh pressure, with deliberately illegal commands mixed in so error
// verdicts are compared too. Runs under -race in the golden gate (make
// race-goldens).

// aggregateOracleStreams is the fuzz budget: total fuzzed streams across
// the frequency variants. The race-goldens gate runs the full budget;
// -short keeps the default test loop quick.
const aggregateOracleStreams = 10000

func TestAggregateEarliestMatchesBruteForce(t *testing.T) {
	streams := aggregateOracleStreams
	if testing.Short() {
		streams = 1000
	}
	freqs := []int{1000, 1200}
	var cov fuzzCoverage
	for i := 0; i < streams; i++ {
		seed := int64(i)
		cfg := PIMHBMConfig(freqs[i%len(freqs)])
		cfg.Functional = false
		fuzzAggregateStream(t, cfg, seed, &cov)
	}
	// Generator self-check: the fuzz must keep reaching every mode and
	// the refresh path, or the property quietly stops covering them.
	if cov.modeSwitches == 0 || cov.triggers == 0 || cov.refreshes == 0 {
		t.Fatalf("fuzz coverage collapsed: %d mode switches, %d AB-PIM triggers, %d refreshes",
			cov.modeSwitches, cov.triggers, cov.refreshes)
	}
	t.Logf("coverage over %d streams: %d mode switches, %d AB-PIM triggers, %d refreshes",
		streams, cov.modeSwitches, cov.triggers, cov.refreshes)
}

type fuzzCoverage struct {
	modeSwitches int64
	triggers     int64
	refreshes    int64
}

func fuzzAggregateStream(t *testing.T, cfg Config, seed int64, cov *fuzzCoverage) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("stream seed %d: %v", seed, r)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	dev := MustNewDevice(cfg)
	p := dev.PCH(0)
	exec := newFakeExec()
	p.AttachPIM(exec)
	p.SetTimingCrossCheck(true)
	defer func() {
		st := p.Stats()
		cov.modeSwitches += st.ModeSwitches
		cov.triggers += int64(len(exec.triggers))
		cov.refreshes += st.REF
	}()

	modeRow := cfg.ModeRow()
	cols := uint32(cfg.ColumnsPerRow())
	var now int64

	// try probes the verdict (cross-checked inside EarliestIssue) and
	// issues when legal. Illegal commands are the point, not a failure:
	// their error verdicts must match the oracle's too. Issue may still
	// reject a timing-legal command on semantic grounds the legality scan
	// does not see (register-space rules like PIM_OP_MODE outside AB);
	// those leave no state behind and the stream simply moves on.
	try := func(cmd Command) {
		at, err := p.EarliestIssue(cmd, now)
		if err != nil {
			return
		}
		if _, err := p.Issue(cmd, at); err != nil {
			return
		}
		now = at + 1 + int64(rng.Intn(4))
	}

	steps := 24 + rng.Intn(24)
	for s := 0; s < steps; s++ {
		bg := rng.Intn(cfg.BankGroups)
		b := rng.Intn(cfg.BanksPerGroup)
		row := uint32(rng.Intn(cfg.Rows)) // includes conf rows and the mode row
		col := uint32(rng.Intn(int(cols)))
		switch r := rng.Float64(); {
		case r < 0.05:
			// Refresh pressure: close everything, then REF.
			try(Command{Kind: CmdPREA})
			try(Command{Kind: CmdREF})
		case r < 0.09:
			try(Command{Kind: CmdREF}) // often illegal (banks open)
		case r < 0.17:
			// Mode-row handshake toward AB (bank 0) or SB (bank 1),
			// sometimes flipping PIM_OP_MODE while the mode row is open.
			hsBank := ABMRBank
			if rng.Intn(2) == 0 {
				hsBank = SBMRBank
			}
			try(Command{Kind: CmdACT, BG: 0, Bank: hsBank, Row: modeRow})
			if hsBank == ABMRBank && rng.Intn(2) == 0 {
				data := make([]byte, cfg.AccessBytes)
				data[0] = byte(rng.Intn(2))
				try(Command{Kind: CmdWR, BG: 0, Bank: hsBank, Col: ColPIMOpMode, Data: data})
			}
			try(Command{Kind: CmdPRE, BG: 0, Bank: hsBank})
		case r < 0.22:
			// Fully random command: exercises the error verdicts.
			kinds := []CmdKind{CmdACT, CmdPRE, CmdPREA, CmdRD, CmdWR, CmdREF}
			try(Command{Kind: kinds[rng.Intn(len(kinds))], BG: bg, Bank: b, Row: row, Col: col})
		case p.Mode() == ModeSB:
			if openRow, open := p.OpenRow(bg, b); open {
				switch rng.Intn(4) {
				case 0:
					try(Command{Kind: CmdPRE, BG: bg, Bank: b})
				case 1:
					try(Command{Kind: CmdWR, BG: bg, Bank: b, Col: col})
				default:
					_ = openRow
					try(Command{Kind: CmdRD, BG: bg, Bank: b, Col: col})
				}
			} else {
				try(Command{Kind: CmdACT, BG: bg, Bank: b, Row: row})
			}
		default:
			// AB / AB-PIM: broadcast traffic, including the occasional
			// illegal broadcast ACT to the mode row and columns with banks
			// idle.
			switch rng.Intn(5) {
			case 0:
				try(Command{Kind: CmdACT, Row: row})
			case 1:
				try(Command{Kind: CmdPRE})
			case 2:
				try(Command{Kind: CmdWR, Bank: rng.Intn(2), Col: col})
			case 3:
				try(Command{Kind: CmdPREA})
			default:
				try(Command{Kind: CmdRD, Bank: rng.Intn(2), Col: col})
			}
		}
		// Probe-only check: a random command's verdict is cross-checked
		// even when it is never issued.
		kinds := []CmdKind{CmdACT, CmdPRE, CmdPREA, CmdRD, CmdWR, CmdREF}
		probe := Command{
			Kind: kinds[rng.Intn(len(kinds))],
			BG:   rng.Intn(cfg.BankGroups), Bank: rng.Intn(cfg.BanksPerGroup),
			Row: uint32(rng.Intn(cfg.Rows)), Col: uint32(rng.Intn(int(cols))),
		}
		_, _ = p.EarliestIssue(probe, now)
	}
}

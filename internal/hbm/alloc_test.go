package hbm

import "testing"

// TestIssueColumnZeroAlloc pins the steady-state column path: once a
// row's functional storage exists, SB-mode RD and WR must not allocate.
// RD results live in per-pseudo-channel scratch (see IssueResult.Data),
// so a cycle-level loop issuing millions of column commands runs
// allocation free.
func TestIssueColumnZeroAlloc(t *testing.T) {
	cfg := PIMHBMConfig(1200)
	cfg.Functional = true
	s := newTestPCH(t, cfg)
	buf := make([]byte, cfg.AccessBytes)

	s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 3})
	// First touch lazily allocates the row and its ECC parity storage.
	s.issue(Command{Kind: CmdWR, BG: 0, Bank: 0, Col: 0, Data: buf})
	s.issue(Command{Kind: CmdWR, BG: 0, Bank: 0, Col: 1, Data: buf})
	s.issue(Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 0})

	rd := Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 0}
	wr := Command{Kind: CmdWR, BG: 0, Bank: 0, Col: 1, Data: buf}
	if avg := testing.AllocsPerRun(200, func() {
		s.issue(rd)
		s.issue(wr)
	}); avg != 0 {
		t.Errorf("SB column RD+WR allocates %v objects per pair, want 0", avg)
	}
}

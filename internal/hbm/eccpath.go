package hbm

import (
	"fmt"

	"pimsim/internal/ecc"
)

// The on-die ECC datapath (Section VIII). Every functional 32-byte bank
// access funnels through bankReadData / bankWriteData so the same engine
// serves host reads, broadcast accesses and the PIM execution units —
// possible precisely because PIM accesses memory at the host's
// granularity.

// bankWriteData stores a 32-byte block at the open row's column,
// generating ECC check bits when the engine is enabled.
func (p *PseudoChannel) bankWriteData(b *bank, col uint32, data []byte) error {
	if len(data) != p.cfg.AccessBytes {
		return fmt.Errorf("hbm: write payload %dB, want %dB", len(data), p.cfg.AccessBytes)
	}
	off := int(col) * p.cfg.AccessBytes
	copy(b.row(b.openRow, p.cfg.RowBytes)[off:], data)
	if p.cfg.ECC {
		par := ecc.EncodeBlock(data)
		copy(b.parityRow(b.openRow, p.cfg.RowBytes)[off/8:], par[:])
	}
	return nil
}

// bankReadData loads a 32-byte block from the open row's column into buf,
// checking and correcting through the ECC engine when enabled. A
// double-bit error is reported as a device error (the poisoned data is
// not forwarded silently).
func (p *PseudoChannel) bankReadData(b *bank, col uint32, buf []byte) error {
	off := int(col) * p.cfg.AccessBytes
	copy(buf[:p.cfg.AccessBytes], b.row(b.openRow, p.cfg.RowBytes)[off:])
	if !p.cfg.ECC {
		return nil
	}
	var par [ecc.WordsPerBlock]uint8
	copy(par[:], b.parityRow(b.openRow, p.cfg.RowBytes)[off/8:])
	corrected, uncorrectable := ecc.DecodeBlock(buf[:p.cfg.AccessBytes], par)
	p.stats.ECCCorrected += int64(corrected)
	if uncorrectable {
		p.stats.ECCUncorrectable++
		return fmt.Errorf("hbm: uncorrectable ECC error at row %d col %d", b.openRow, col)
	}
	if corrected > 0 {
		// Scrub: write the corrected data (and fresh parity) back.
		copy(b.row(b.openRow, p.cfg.RowBytes)[off:], buf[:p.cfg.AccessBytes])
		fresh := ecc.EncodeBlock(buf[:p.cfg.AccessBytes])
		copy(b.parityRow(b.openRow, p.cfg.RowBytes)[off/8:], fresh[:])
	}
	return nil
}

// InjectBitError flips one stored data bit without touching the check
// bits — a fault-injection hook for ECC testing. bit indexes into the
// 256-bit block (0-255).
func (p *PseudoChannel) InjectBitError(bg, bankAddr int, row, col uint32, bit int) error {
	if !p.cfg.Functional {
		return fmt.Errorf("hbm: fault injection needs a functional device")
	}
	if bit < 0 || bit >= 8*p.cfg.AccessBytes {
		return fmt.Errorf("hbm: bit %d out of range", bit)
	}
	b := &p.banks[p.flat(bg, bankAddr)]
	data := b.row(row, p.cfg.RowBytes)
	off := int(col)*p.cfg.AccessBytes + bit/8
	data[off] ^= 1 << (bit % 8)
	return nil
}

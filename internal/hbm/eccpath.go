package hbm

import (
	"fmt"

	"pimsim/internal/ecc"
)

// The on-die ECC datapath (Section VIII). Every functional 32-byte bank
// access funnels through bankReadData / bankWriteData so the same engine
// serves host reads, broadcast accesses and the PIM execution units —
// possible precisely because PIM accesses memory at the host's
// granularity.

// UncorrectableError reports a multi-bit error the SEC-DED engine
// detected but could not correct. The poisoned data is never forwarded;
// the error propagates up through memctrl, the runtime and blas to the
// serving layer, which treats it as retryable (another shard holds a
// clean replica of the same weights).
type UncorrectableError struct {
	Channel int    // pseudo channel index within the device
	Bank    int    // flat bank index (bg*BanksPerGroup + bank)
	Row     uint32 // open row the readout came from
	Col     uint32 // 32-byte column within the row
}

func (e *UncorrectableError) Error() string {
	return fmt.Sprintf("hbm: uncorrectable ECC error at ch%d bank %d row %d col %d",
		e.Channel, e.Bank, e.Row, e.Col)
}

// ReadFault is the fault-injection hook on the row-buffer readout path.
// When attached (AttachFault), it is invoked for every functional
// 32-byte readout with the freshly copied data, after the array read
// and before the ECC decode — corrupting the readout, never the stored
// cells, exactly like a transient upset or weak cell. seq is the
// channel's monotonically increasing BankReads count, giving the
// injector a deterministic, scheduling-independent stream position.
// Implementations must be safe for concurrent calls from different
// channels. internal/fault provides the standard implementation.
type ReadFault interface {
	CorruptReadout(channel, bank int, row, col uint32, seq int64, data []byte)
}

// bankWriteData stores a 32-byte block at the open row's column,
// generating ECC check bits when the engine is enabled.
func (p *PseudoChannel) bankWriteData(b *bank, col uint32, data []byte) error {
	if len(data) != p.cfg.AccessBytes {
		return fmt.Errorf("hbm: write payload %dB, want %dB", len(data), p.cfg.AccessBytes)
	}
	off := int(col) * p.cfg.AccessBytes
	copy(b.row(b.openRow, p.cfg.RowBytes)[off:], data)
	if p.cfg.ECC {
		par := ecc.EncodeBlock(data)
		copy(b.parityRow(b.openRow, p.cfg.RowBytes)[off/8:], par[:])
	}
	return nil
}

// bankReadData loads a 32-byte block from the open row's column into buf,
// applying the attached fault injector to the readout copy and then
// checking and correcting through the ECC engine when enabled. A
// double-bit error is reported as a typed *UncorrectableError (the
// poisoned data is not forwarded silently).
func (p *PseudoChannel) bankReadData(b *bank, bankIdx int, col uint32, buf []byte) error {
	off := int(col) * p.cfg.AccessBytes
	copy(buf[:p.cfg.AccessBytes], b.row(b.openRow, p.cfg.RowBytes)[off:])
	if p.fault != nil {
		p.fault.CorruptReadout(p.id, bankIdx, b.openRow, col, p.stats.BankReads, buf[:p.cfg.AccessBytes])
	}
	if !p.cfg.ECC {
		return nil
	}
	var par [ecc.WordsPerBlock]uint8
	copy(par[:], b.parityRow(b.openRow, p.cfg.RowBytes)[off/8:])
	corrected, uncorrectable := ecc.DecodeBlock(buf[:p.cfg.AccessBytes], par)
	p.stats.ECCCorrected += int64(corrected)
	if uncorrectable {
		p.stats.ECCUncorrectable++
		return &UncorrectableError{Channel: p.id, Bank: bankIdx, Row: b.openRow, Col: col}
	}
	if corrected > 0 {
		// Scrub: write the corrected data (and fresh parity) back.
		copy(b.row(b.openRow, p.cfg.RowBytes)[off:], buf[:p.cfg.AccessBytes])
		fresh := ecc.EncodeBlock(buf[:p.cfg.AccessBytes])
		copy(b.parityRow(b.openRow, p.cfg.RowBytes)[off/8:], fresh[:])
	}
	return nil
}

// InjectBitError flips one stored data bit without touching the check
// bits — a fault-injection hook for ECC testing. bit indexes into the
// 256-bit block (0-255).
func (p *PseudoChannel) InjectBitError(bg, bankAddr int, row, col uint32, bit int) error {
	if !p.cfg.Functional {
		return fmt.Errorf("hbm: fault injection needs a functional device")
	}
	if bit < 0 || bit >= 8*p.cfg.AccessBytes {
		return fmt.Errorf("hbm: bit %d out of range", bit)
	}
	b := &p.banks[p.flat(bg, bankAddr)]
	data := b.row(row, p.cfg.RowBytes)
	off := int(col)*p.cfg.AccessBytes + bit/8
	data[off] ^= 1 << (bit % 8)
	return nil
}

package hbm

import (
	"bytes"
	"testing"
)

func TestBankOpsCounting(t *testing.T) {
	s := newTestPCH(t, HBM2Config(1000))
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 1})
	s.issue(Command{Kind: CmdWR, BG: 0, Bank: 0, Col: 0, Data: make([]byte, 32)})
	s.issue(Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 0})
	s.issue(Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 1})
	s.issue(Command{Kind: CmdPRE, BG: 0, Bank: 0})
	s.issue(Command{Kind: CmdACT, BG: 1, Bank: 2, Row: 3})
	s.issue(Command{Kind: CmdRD, BG: 1, Bank: 2, Col: 0})

	ops := s.p.BankOps()
	if got := ops[s.p.flat(0, 0)]; got != (BankOps{ACT: 1, RD: 2, WR: 1}) {
		t.Errorf("bank (0,0) ops = %+v", got)
	}
	if got := ops[s.p.flat(1, 2)]; got != (BankOps{ACT: 1, RD: 1}) {
		t.Errorf("bank (1,2) ops = %+v", got)
	}
	var rest BankOps
	for i, o := range ops {
		if i == s.p.flat(0, 0) || i == s.p.flat(1, 2) {
			continue
		}
		rest.ACT += o.ACT
		rest.RD += o.RD
		rest.WR += o.WR
	}
	if rest != (BankOps{}) {
		t.Errorf("untouched banks accumulated %+v", rest)
	}

	// BankOps returns a copy — callers cannot corrupt the live counters.
	ops[0].ACT = 999
	if got := s.p.BankOps()[0].ACT; got == 999 {
		t.Error("BankOps exposed internal state")
	}
}

func TestBankOpsBroadcastTouchesEveryBank(t *testing.T) {
	s := newTestPCH(t, PIMHBMConfig(1000))
	enterAB(s)
	s.issue(Command{Kind: CmdACT, Row: 9}) // broadcast ACT
	s.issue(Command{Kind: CmdWR, Col: 3, Data: bytes.Repeat([]byte{0xAB}, 32)})
	s.issue(Command{Kind: CmdRD, Col: 3})
	for i, o := range s.p.BankOps() {
		if o.ACT != 1 || o.RD != 1 || o.WR != 1 {
			t.Fatalf("bank %d after broadcast: %+v, want 1/1/1", i, o)
		}
	}
}

func TestModeResidencyAccountsSwitches(t *testing.T) {
	s := newTestPCH(t, PIMHBMConfig(1000))
	enterAB(s)
	mid := s.now
	exitAB(s)
	end := s.now + 10
	res := s.p.ModeResidency(end)
	if res[ModeSB]+res[ModeAB]+res[ModeABPIM] != end {
		t.Errorf("residency %v does not sum to now=%d", res, end)
	}
	if res[ModeAB] == 0 {
		t.Error("no AB residency recorded across the handshakes")
	}
	if res[ModeSB] <= res[ModeAB] && mid < end {
		// SB covers the pre-handshake span plus everything after exit.
		t.Logf("residency %v (mid=%d end=%d)", res, mid, end)
	}
	if res[ModeABPIM] != 0 {
		t.Errorf("AB-PIM residency %d without SetPIMOpMode", res[ModeABPIM])
	}
	// Querying earlier than the last switch must not go negative.
	early := s.p.ModeResidency(0)
	for m, c := range early {
		if c < 0 {
			t.Errorf("mode %d residency negative: %d", m, c)
		}
	}
}

package hbm

import "fmt"

// bankState is the row-buffer state of one bank.
type bankState uint8

const (
	bankIdle bankState = iota // all rows precharged
	bankActive
)

// bank is one DRAM bank: a timing state machine plus (in functional mode)
// lazily allocated row storage.
type bank struct {
	state   bankState
	openRow uint32

	// Earliest cycles at which each command class may issue, maintained
	// incrementally as commands are issued.
	actAllowed int64
	rdAllowed  int64
	wrAllowed  int64
	preAllowed int64

	rows   map[uint32][]byte // functional storage, row -> RowBytes
	parity map[uint32][]byte // on-die ECC check bits, row -> RowBytes/8
}

// parityRow returns the parity storage for a row, allocated on first
// touch (one byte per 64-bit data word).
func (b *bank) parityRow(r uint32, rowBytes int) []byte {
	if b.parity == nil {
		b.parity = make(map[uint32][]byte)
	}
	data, ok := b.parity[r]
	if !ok {
		data = make([]byte, rowBytes/8)
		b.parity[r] = data
	}
	return data
}

// row returns the storage for a row, allocating it zeroed on first touch.
func (b *bank) row(r uint32, rowBytes int) []byte {
	if b.rows == nil {
		b.rows = make(map[uint32][]byte)
	}
	data, ok := b.rows[r]
	if !ok {
		data = make([]byte, rowBytes)
		b.rows[r] = data
	}
	return data
}

// earliestACT returns the earliest legal ACT cycle considering only
// bank-local constraints (tRC after previous ACT, tRP after PRE).
func (b *bank) earliestACT() int64 { return b.actAllowed }

// earliestCol returns the earliest legal column command cycle.
func (b *bank) earliestCol(kind CmdKind) int64 {
	if kind == CmdRD {
		return b.rdAllowed
	}
	return b.wrAllowed
}

// activate opens a row at cycle t.
func (b *bank) activate(row uint32, t int64, tm *Timing) {
	b.state = bankActive
	b.openRow = row
	b.rdAllowed = maxi64(b.rdAllowed, t+int64(tm.RCD))
	b.wrAllowed = maxi64(b.wrAllowed, t+int64(tm.RCD))
	b.preAllowed = maxi64(b.preAllowed, t+int64(tm.RAS))
	b.actAllowed = maxi64(b.actAllowed, t+int64(tm.RC))
}

// column updates bank timing for a RD or WR issued at t.
func (b *bank) column(kind CmdKind, t int64, tm *Timing) {
	if kind == CmdRD {
		b.preAllowed = maxi64(b.preAllowed, t+int64(tm.RTP))
	} else {
		// Write recovery: data arrives WL later, occupies BL/2, then tWR.
		b.preAllowed = maxi64(b.preAllowed, t+int64(tm.WL+tm.BL/2+tm.WR))
	}
}

// precharge closes the bank at cycle t.
func (b *bank) precharge(t int64, tm *Timing) {
	b.state = bankIdle
	b.actAllowed = maxi64(b.actAllowed, t+int64(tm.RP))
}

// blockUntil freezes the bank until cycle t (used by refresh).
func (b *bank) blockUntil(t int64) {
	b.actAllowed = maxi64(b.actAllowed, t)
	b.rdAllowed = maxi64(b.rdAllowed, t)
	b.wrAllowed = maxi64(b.wrAllowed, t)
	b.preAllowed = maxi64(b.preAllowed, t)
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// faw tracks the four-activate window with a ring of the last 4 ACT times.
type faw struct {
	times [4]int64
	idx   int
}

// earliest returns the earliest cycle a new ACT may issue under tFAW.
func (f *faw) earliest(window int64) int64 {
	return f.times[f.idx] + window
}

// record notes an ACT at cycle t.
func (f *faw) record(t int64) {
	f.times[f.idx] = t
	f.idx = (f.idx + 1) % len(f.times)
}

// addrCheck validates addresses against the geometry. Pointer receiver
// and parameter: it runs once per issued command, where copying the
// ~300-byte Config (and the command) dominated the timing-only profile.
func (c *Config) addrCheck(cmd *Command) error {
	switch cmd.Kind {
	case CmdACT:
		if cmd.Row >= uint32(c.Rows) {
			return fmt.Errorf("hbm: row %d out of range (%d rows)", cmd.Row, c.Rows)
		}
	case CmdRD, CmdWR:
		if cmd.Col >= uint32(c.RowBytes/c.AccessBytes) {
			return fmt.Errorf("hbm: column %d out of range (%d columns)", cmd.Col, c.RowBytes/c.AccessBytes)
		}
	}
	switch cmd.Kind {
	case CmdACT, CmdPRE, CmdRD, CmdWR:
		if cmd.BG < 0 || cmd.BG >= c.BankGroups || cmd.Bank < 0 || cmd.Bank >= c.BanksPerGroup {
			return fmt.Errorf("hbm: bank address bg%d b%d out of range", cmd.BG, cmd.Bank)
		}
	}
	return nil
}

// CheckCommand validates cmd's addresses against the geometry without
// issuing it. Trace replay uses this to reject malformed input up front
// instead of failing deep inside the channel model.
func (c Config) CheckCommand(cmd Command) error { return c.addrCheck(&cmd) }

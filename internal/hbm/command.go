package hbm

import "fmt"

// CmdKind is a DRAM command type. The set is exactly the standard HBM2
// command vocabulary: PIM-HBM is controlled with unmodified JEDEC commands
// (Section III-A).
type CmdKind uint8

const (
	CmdACT  CmdKind = iota // activate a row
	CmdPRE                 // precharge one bank
	CmdPREA                // precharge all banks
	CmdRD                  // column read
	CmdWR                  // column write
	CmdREF                 // all-bank refresh
)

var cmdNames = [...]string{"ACT", "PRE", "PREA", "RD", "WR", "REF"}

func (k CmdKind) String() string {
	if int(k) < len(cmdNames) {
		return cmdNames[k]
	}
	return fmt.Sprintf("CMD(%d)", uint8(k))
}

// IsColumn reports whether k is a column (data) command.
func (k CmdKind) IsColumn() bool { return k == CmdRD || k == CmdWR }

// Command is one DRAM command addressed to a pseudo channel.
//
// In SB mode BG/Bank select a single bank. In AB and AB-PIM modes the
// command is broadcast: BG is ignored and only Bank's least-significant
// bit matters for column commands, selecting the even or odd bank of each
// PIM unit pair (Section IV-A).
type Command struct {
	Kind CmdKind
	BG   int
	Bank int
	Row  uint32
	Col  uint32

	// Data carries the 32-byte write payload for WR. For RD, Issue fills
	// in the data read (functional mode only).
	Data []byte
}

func (c Command) String() string {
	switch c.Kind {
	case CmdACT:
		return fmt.Sprintf("ACT bg%d b%d row%d", c.BG, c.Bank, c.Row)
	case CmdPRE:
		return fmt.Sprintf("PRE bg%d b%d", c.BG, c.Bank)
	case CmdPREA, CmdREF:
		return c.Kind.String()
	default:
		return fmt.Sprintf("%s bg%d b%d col%d", c.Kind, c.BG, c.Bank, c.Col)
	}
}

// IssueResult reports what a command did.
//
// Data aliases a per-pseudo-channel scratch buffer and is only valid until
// the next Issue on the same pseudo channel; callers that retain read data
// across commands must copy it first. This keeps the column hot path free
// of per-command allocation.
type IssueResult struct {
	Cycle    int64  // the cycle the command issued at
	Data     []byte // data returned by an SB-mode RD (functional mode)
	PIMSteps int    // PIM instructions executed by this command (AB-PIM mode)
}

// Stats counts issued commands and data movement for one pseudo channel.
// The energy model converts these into component energies.
type Stats struct {
	ACT, PRE, RD, WR, REF int64 // SB-mode commands (PREA counts per bank into PRE)
	ABACT, ABPRE          int64 // broadcast commands (counted once each)
	ABRD, ABWR            int64 // AB/AB-PIM column commands (counted once each)
	PIMInstr              int64 // PIM instructions executed
	PIMArith              int64 // of which arithmetic (FPU active)
	PIMMove               int64 // of which MOV/FILL data movement
	BankReads             int64 // per-bank 32B row-buffer reads (all modes)
	BankWrites            int64 // per-bank 32B row-buffer writes
	OffChipBytes          int64 // bytes that crossed the device I/O PHY
	RegWrites             int64 // writes into the PIM configuration space
	ModeSwitches          int64
	ECCCorrected          int64 // single-bit errors corrected by on-die ECC
	ECCUncorrectable      int64 // double-bit errors detected (data poisoned)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.ACT += o.ACT
	s.PRE += o.PRE
	s.RD += o.RD
	s.WR += o.WR
	s.REF += o.REF
	s.ABACT += o.ABACT
	s.ABPRE += o.ABPRE
	s.ABRD += o.ABRD
	s.ABWR += o.ABWR
	s.PIMInstr += o.PIMInstr
	s.PIMArith += o.PIMArith
	s.PIMMove += o.PIMMove
	s.BankReads += o.BankReads
	s.BankWrites += o.BankWrites
	s.OffChipBytes += o.OffChipBytes
	s.RegWrites += o.RegWrites
	s.ModeSwitches += o.ModeSwitches
	s.ECCCorrected += o.ECCCorrected
	s.ECCUncorrectable += o.ECCUncorrectable
}
